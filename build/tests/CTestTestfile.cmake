# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_hash[1]_include.cmake")
include("/root/repo/build/tests/test_aes[1]_include.cmake")
include("/root/repo/build/tests/test_ed25519[1]_include.cmake")
include("/root/repo/build/tests/test_x25519[1]_include.cmake")
include("/root/repo/build/tests/test_tangle[1]_include.cmake")
include("/root/repo/build/tests/test_ledger[1]_include.cmake")
include("/root/repo/build/tests/test_tip_selection[1]_include.cmake")
include("/root/repo/build/tests/test_consensus[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_auth[1]_include.cmake")
include("/root/repo/build/tests/test_keydist[1]_include.cmake")
include("/root/repo/build/tests/test_chain[1]_include.cmake")
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_milestones[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_restore[1]_include.cmake")
include("/root/repo/build/tests/test_consumer[1]_include.cmake")
include("/root/repo/build/tests/test_log[1]_include.cmake")
include("/root/repo/build/tests/test_crypto_properties[1]_include.cmake")
include("/root/repo/build/tests/test_cli_args[1]_include.cmake")
