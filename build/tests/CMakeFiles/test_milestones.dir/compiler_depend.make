# Empty compiler generated dependencies file for test_milestones.
# This may be replaced when dependencies are built.
