file(REMOVE_RECURSE
  "CMakeFiles/test_milestones.dir/test_milestones.cpp.o"
  "CMakeFiles/test_milestones.dir/test_milestones.cpp.o.d"
  "test_milestones"
  "test_milestones.pdb"
  "test_milestones[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_milestones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
