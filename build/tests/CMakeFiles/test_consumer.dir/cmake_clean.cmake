file(REMOVE_RECURSE
  "CMakeFiles/test_consumer.dir/test_consumer.cpp.o"
  "CMakeFiles/test_consumer.dir/test_consumer.cpp.o.d"
  "test_consumer"
  "test_consumer.pdb"
  "test_consumer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consumer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
