file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_properties.dir/test_crypto_properties.cpp.o"
  "CMakeFiles/test_crypto_properties.dir/test_crypto_properties.cpp.o.d"
  "test_crypto_properties"
  "test_crypto_properties.pdb"
  "test_crypto_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
