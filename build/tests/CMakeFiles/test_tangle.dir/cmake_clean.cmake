file(REMOVE_RECURSE
  "CMakeFiles/test_tangle.dir/test_tangle.cpp.o"
  "CMakeFiles/test_tangle.dir/test_tangle.cpp.o.d"
  "test_tangle"
  "test_tangle.pdb"
  "test_tangle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
