file(REMOVE_RECURSE
  "CMakeFiles/test_tip_selection.dir/test_tip_selection.cpp.o"
  "CMakeFiles/test_tip_selection.dir/test_tip_selection.cpp.o.d"
  "test_tip_selection"
  "test_tip_selection.pdb"
  "test_tip_selection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tip_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
