# Empty dependencies file for test_tip_selection.
# This may be replaced when dependencies are built.
