# Empty compiler generated dependencies file for test_keydist.
# This may be replaced when dependencies are built.
