file(REMOVE_RECURSE
  "CMakeFiles/test_keydist.dir/test_keydist.cpp.o"
  "CMakeFiles/test_keydist.dir/test_keydist.cpp.o.d"
  "test_keydist"
  "test_keydist.pdb"
  "test_keydist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keydist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
