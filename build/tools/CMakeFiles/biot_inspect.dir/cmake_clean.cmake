file(REMOVE_RECURSE
  "CMakeFiles/biot_inspect.dir/biot_inspect.cpp.o"
  "CMakeFiles/biot_inspect.dir/biot_inspect.cpp.o.d"
  "biot_inspect"
  "biot_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biot_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
