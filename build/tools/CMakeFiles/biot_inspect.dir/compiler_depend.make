# Empty compiler generated dependencies file for biot_inspect.
# This may be replaced when dependencies are built.
