file(REMOVE_RECURSE
  "CMakeFiles/biot_simulate.dir/biot_simulate.cpp.o"
  "CMakeFiles/biot_simulate.dir/biot_simulate.cpp.o.d"
  "biot_simulate"
  "biot_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biot_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
