# Empty compiler generated dependencies file for biot_simulate.
# This may be replaced when dependencies are built.
