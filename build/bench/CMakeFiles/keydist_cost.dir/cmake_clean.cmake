file(REMOVE_RECURSE
  "CMakeFiles/keydist_cost.dir/keydist_cost.cpp.o"
  "CMakeFiles/keydist_cost.dir/keydist_cost.cpp.o.d"
  "keydist_cost"
  "keydist_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keydist_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
