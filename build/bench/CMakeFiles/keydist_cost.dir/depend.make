# Empty dependencies file for keydist_cost.
# This may be replaced when dependencies are built.
