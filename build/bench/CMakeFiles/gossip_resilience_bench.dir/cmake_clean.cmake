file(REMOVE_RECURSE
  "CMakeFiles/gossip_resilience_bench.dir/gossip_resilience_bench.cpp.o"
  "CMakeFiles/gossip_resilience_bench.dir/gossip_resilience_bench.cpp.o.d"
  "gossip_resilience_bench"
  "gossip_resilience_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_resilience_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
