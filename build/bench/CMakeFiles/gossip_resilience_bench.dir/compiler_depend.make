# Empty compiler generated dependencies file for gossip_resilience_bench.
# This may be replaced when dependencies are built.
