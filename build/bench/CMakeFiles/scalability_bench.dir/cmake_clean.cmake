file(REMOVE_RECURSE
  "CMakeFiles/scalability_bench.dir/scalability_bench.cpp.o"
  "CMakeFiles/scalability_bench.dir/scalability_bench.cpp.o.d"
  "scalability_bench"
  "scalability_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
