# Empty dependencies file for scalability_bench.
# This may be replaced when dependencies are built.
