file(REMOVE_RECURSE
  "CMakeFiles/ablation_credit_params.dir/ablation_credit_params.cpp.o"
  "CMakeFiles/ablation_credit_params.dir/ablation_credit_params.cpp.o.d"
  "ablation_credit_params"
  "ablation_credit_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_credit_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
