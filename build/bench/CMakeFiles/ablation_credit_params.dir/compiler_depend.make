# Empty compiler generated dependencies file for ablation_credit_params.
# This may be replaced when dependencies are built.
