file(REMOVE_RECURSE
  "CMakeFiles/fig8_credit_dynamics.dir/fig8_credit_dynamics.cpp.o"
  "CMakeFiles/fig8_credit_dynamics.dir/fig8_credit_dynamics.cpp.o.d"
  "fig8_credit_dynamics"
  "fig8_credit_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_credit_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
