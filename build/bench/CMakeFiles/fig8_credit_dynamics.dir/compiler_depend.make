# Empty compiler generated dependencies file for fig8_credit_dynamics.
# This may be replaced when dependencies are built.
