file(REMOVE_RECURSE
  "CMakeFiles/quality_control_bench.dir/quality_control_bench.cpp.o"
  "CMakeFiles/quality_control_bench.dir/quality_control_bench.cpp.o.d"
  "quality_control_bench"
  "quality_control_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_control_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
