# Empty dependencies file for quality_control_bench.
# This may be replaced when dependencies are built.
