# Empty dependencies file for fig10_aes_scaling.
# This may be replaced when dependencies are built.
