file(REMOVE_RECURSE
  "CMakeFiles/tip_selection_bench.dir/tip_selection_bench.cpp.o"
  "CMakeFiles/tip_selection_bench.dir/tip_selection_bench.cpp.o.d"
  "tip_selection_bench"
  "tip_selection_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tip_selection_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
