# Empty dependencies file for tip_selection_bench.
# This may be replaced when dependencies are built.
