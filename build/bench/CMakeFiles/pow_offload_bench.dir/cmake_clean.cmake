file(REMOVE_RECURSE
  "CMakeFiles/pow_offload_bench.dir/pow_offload_bench.cpp.o"
  "CMakeFiles/pow_offload_bench.dir/pow_offload_bench.cpp.o.d"
  "pow_offload_bench"
  "pow_offload_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pow_offload_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
