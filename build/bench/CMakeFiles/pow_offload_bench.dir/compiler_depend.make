# Empty compiler generated dependencies file for pow_offload_bench.
# This may be replaced when dependencies are built.
