# Empty dependencies file for confirmation_bench.
# This may be replaced when dependencies are built.
