file(REMOVE_RECURSE
  "CMakeFiles/confirmation_bench.dir/confirmation_bench.cpp.o"
  "CMakeFiles/confirmation_bench.dir/confirmation_bench.cpp.o.d"
  "confirmation_bench"
  "confirmation_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confirmation_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
