file(REMOVE_RECURSE
  "CMakeFiles/fig9_credit_vs_pow.dir/fig9_credit_vs_pow.cpp.o"
  "CMakeFiles/fig9_credit_vs_pow.dir/fig9_credit_vs_pow.cpp.o.d"
  "fig9_credit_vs_pow"
  "fig9_credit_vs_pow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_credit_vs_pow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
