# Empty compiler generated dependencies file for fig9_credit_vs_pow.
# This may be replaced when dependencies are built.
