file(REMOVE_RECURSE
  "CMakeFiles/dag_vs_chain_throughput.dir/dag_vs_chain_throughput.cpp.o"
  "CMakeFiles/dag_vs_chain_throughput.dir/dag_vs_chain_throughput.cpp.o.d"
  "dag_vs_chain_throughput"
  "dag_vs_chain_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_vs_chain_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
