# Empty dependencies file for dag_vs_chain_throughput.
# This may be replaced when dependencies are built.
