# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dag_vs_chain_throughput.
