file(REMOVE_RECURSE
  "CMakeFiles/fig7_pow_difficulty.dir/fig7_pow_difficulty.cpp.o"
  "CMakeFiles/fig7_pow_difficulty.dir/fig7_pow_difficulty.cpp.o.d"
  "fig7_pow_difficulty"
  "fig7_pow_difficulty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_pow_difficulty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
