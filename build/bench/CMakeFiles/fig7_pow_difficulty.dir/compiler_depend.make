# Empty compiler generated dependencies file for fig7_pow_difficulty.
# This may be replaced when dependencies are built.
