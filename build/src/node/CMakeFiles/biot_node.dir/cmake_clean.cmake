file(REMOVE_RECURSE
  "CMakeFiles/biot_node.dir/consumer.cpp.o"
  "CMakeFiles/biot_node.dir/consumer.cpp.o.d"
  "CMakeFiles/biot_node.dir/coordinator.cpp.o"
  "CMakeFiles/biot_node.dir/coordinator.cpp.o.d"
  "CMakeFiles/biot_node.dir/gateway.cpp.o"
  "CMakeFiles/biot_node.dir/gateway.cpp.o.d"
  "CMakeFiles/biot_node.dir/light_node.cpp.o"
  "CMakeFiles/biot_node.dir/light_node.cpp.o.d"
  "CMakeFiles/biot_node.dir/manager.cpp.o"
  "CMakeFiles/biot_node.dir/manager.cpp.o.d"
  "CMakeFiles/biot_node.dir/rpc.cpp.o"
  "CMakeFiles/biot_node.dir/rpc.cpp.o.d"
  "libbiot_node.a"
  "libbiot_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biot_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
