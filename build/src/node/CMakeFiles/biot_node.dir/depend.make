# Empty dependencies file for biot_node.
# This may be replaced when dependencies are built.
