file(REMOVE_RECURSE
  "libbiot_node.a"
)
