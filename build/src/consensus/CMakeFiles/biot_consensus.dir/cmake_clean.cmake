file(REMOVE_RECURSE
  "CMakeFiles/biot_consensus.dir/credit.cpp.o"
  "CMakeFiles/biot_consensus.dir/credit.cpp.o.d"
  "CMakeFiles/biot_consensus.dir/detectors.cpp.o"
  "CMakeFiles/biot_consensus.dir/detectors.cpp.o.d"
  "CMakeFiles/biot_consensus.dir/pow.cpp.o"
  "CMakeFiles/biot_consensus.dir/pow.cpp.o.d"
  "libbiot_consensus.a"
  "libbiot_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biot_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
