# Empty compiler generated dependencies file for biot_consensus.
# This may be replaced when dependencies are built.
