file(REMOVE_RECURSE
  "libbiot_consensus.a"
)
