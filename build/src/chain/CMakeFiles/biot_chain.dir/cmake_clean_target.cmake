file(REMOVE_RECURSE
  "libbiot_chain.a"
)
