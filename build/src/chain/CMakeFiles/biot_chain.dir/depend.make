# Empty dependencies file for biot_chain.
# This may be replaced when dependencies are built.
