file(REMOVE_RECURSE
  "CMakeFiles/biot_chain.dir/block.cpp.o"
  "CMakeFiles/biot_chain.dir/block.cpp.o.d"
  "CMakeFiles/biot_chain.dir/blockchain.cpp.o"
  "CMakeFiles/biot_chain.dir/blockchain.cpp.o.d"
  "libbiot_chain.a"
  "libbiot_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biot_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
