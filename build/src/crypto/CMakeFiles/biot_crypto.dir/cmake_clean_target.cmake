file(REMOVE_RECURSE
  "libbiot_crypto.a"
)
