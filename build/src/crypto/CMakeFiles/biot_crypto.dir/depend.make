# Empty dependencies file for biot_crypto.
# This may be replaced when dependencies are built.
