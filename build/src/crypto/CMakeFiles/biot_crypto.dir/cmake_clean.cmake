file(REMOVE_RECURSE
  "CMakeFiles/biot_crypto.dir/aes.cpp.o"
  "CMakeFiles/biot_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/biot_crypto.dir/aes_modes.cpp.o"
  "CMakeFiles/biot_crypto.dir/aes_modes.cpp.o.d"
  "CMakeFiles/biot_crypto.dir/csprng.cpp.o"
  "CMakeFiles/biot_crypto.dir/csprng.cpp.o.d"
  "CMakeFiles/biot_crypto.dir/ed25519.cpp.o"
  "CMakeFiles/biot_crypto.dir/ed25519.cpp.o.d"
  "CMakeFiles/biot_crypto.dir/field25519.cpp.o"
  "CMakeFiles/biot_crypto.dir/field25519.cpp.o.d"
  "CMakeFiles/biot_crypto.dir/hmac.cpp.o"
  "CMakeFiles/biot_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/biot_crypto.dir/sha256.cpp.o"
  "CMakeFiles/biot_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/biot_crypto.dir/sha512.cpp.o"
  "CMakeFiles/biot_crypto.dir/sha512.cpp.o.d"
  "CMakeFiles/biot_crypto.dir/x25519.cpp.o"
  "CMakeFiles/biot_crypto.dir/x25519.cpp.o.d"
  "libbiot_crypto.a"
  "libbiot_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biot_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
