# Empty compiler generated dependencies file for biot_auth.
# This may be replaced when dependencies are built.
