file(REMOVE_RECURSE
  "CMakeFiles/biot_auth.dir/authorization.cpp.o"
  "CMakeFiles/biot_auth.dir/authorization.cpp.o.d"
  "CMakeFiles/biot_auth.dir/envelope.cpp.o"
  "CMakeFiles/biot_auth.dir/envelope.cpp.o.d"
  "CMakeFiles/biot_auth.dir/keydist.cpp.o"
  "CMakeFiles/biot_auth.dir/keydist.cpp.o.d"
  "libbiot_auth.a"
  "libbiot_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biot_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
