file(REMOVE_RECURSE
  "libbiot_auth.a"
)
