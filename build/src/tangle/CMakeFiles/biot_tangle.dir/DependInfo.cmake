
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tangle/ledger.cpp" "src/tangle/CMakeFiles/biot_tangle.dir/ledger.cpp.o" "gcc" "src/tangle/CMakeFiles/biot_tangle.dir/ledger.cpp.o.d"
  "/root/repo/src/tangle/milestones.cpp" "src/tangle/CMakeFiles/biot_tangle.dir/milestones.cpp.o" "gcc" "src/tangle/CMakeFiles/biot_tangle.dir/milestones.cpp.o.d"
  "/root/repo/src/tangle/tangle.cpp" "src/tangle/CMakeFiles/biot_tangle.dir/tangle.cpp.o" "gcc" "src/tangle/CMakeFiles/biot_tangle.dir/tangle.cpp.o.d"
  "/root/repo/src/tangle/tip_selection.cpp" "src/tangle/CMakeFiles/biot_tangle.dir/tip_selection.cpp.o" "gcc" "src/tangle/CMakeFiles/biot_tangle.dir/tip_selection.cpp.o.d"
  "/root/repo/src/tangle/transaction.cpp" "src/tangle/CMakeFiles/biot_tangle.dir/transaction.cpp.o" "gcc" "src/tangle/CMakeFiles/biot_tangle.dir/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/biot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/biot_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
