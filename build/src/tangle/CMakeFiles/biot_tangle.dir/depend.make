# Empty dependencies file for biot_tangle.
# This may be replaced when dependencies are built.
