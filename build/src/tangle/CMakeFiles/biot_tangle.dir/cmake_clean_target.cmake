file(REMOVE_RECURSE
  "libbiot_tangle.a"
)
