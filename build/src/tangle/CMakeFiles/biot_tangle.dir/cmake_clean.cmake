file(REMOVE_RECURSE
  "CMakeFiles/biot_tangle.dir/ledger.cpp.o"
  "CMakeFiles/biot_tangle.dir/ledger.cpp.o.d"
  "CMakeFiles/biot_tangle.dir/milestones.cpp.o"
  "CMakeFiles/biot_tangle.dir/milestones.cpp.o.d"
  "CMakeFiles/biot_tangle.dir/tangle.cpp.o"
  "CMakeFiles/biot_tangle.dir/tangle.cpp.o.d"
  "CMakeFiles/biot_tangle.dir/tip_selection.cpp.o"
  "CMakeFiles/biot_tangle.dir/tip_selection.cpp.o.d"
  "CMakeFiles/biot_tangle.dir/transaction.cpp.o"
  "CMakeFiles/biot_tangle.dir/transaction.cpp.o.d"
  "libbiot_tangle.a"
  "libbiot_tangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biot_tangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
