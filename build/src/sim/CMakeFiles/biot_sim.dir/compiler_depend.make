# Empty compiler generated dependencies file for biot_sim.
# This may be replaced when dependencies are built.
