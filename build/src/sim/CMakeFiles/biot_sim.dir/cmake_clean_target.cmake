file(REMOVE_RECURSE
  "libbiot_sim.a"
)
