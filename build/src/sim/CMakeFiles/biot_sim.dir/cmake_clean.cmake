file(REMOVE_RECURSE
  "CMakeFiles/biot_sim.dir/network.cpp.o"
  "CMakeFiles/biot_sim.dir/network.cpp.o.d"
  "CMakeFiles/biot_sim.dir/scheduler.cpp.o"
  "CMakeFiles/biot_sim.dir/scheduler.cpp.o.d"
  "libbiot_sim.a"
  "libbiot_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biot_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
