# Empty compiler generated dependencies file for biot_storage.
# This may be replaced when dependencies are built.
