file(REMOVE_RECURSE
  "CMakeFiles/biot_storage.dir/archive.cpp.o"
  "CMakeFiles/biot_storage.dir/archive.cpp.o.d"
  "CMakeFiles/biot_storage.dir/snapshot.cpp.o"
  "CMakeFiles/biot_storage.dir/snapshot.cpp.o.d"
  "CMakeFiles/biot_storage.dir/tangle_io.cpp.o"
  "CMakeFiles/biot_storage.dir/tangle_io.cpp.o.d"
  "libbiot_storage.a"
  "libbiot_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biot_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
