file(REMOVE_RECURSE
  "libbiot_storage.a"
)
