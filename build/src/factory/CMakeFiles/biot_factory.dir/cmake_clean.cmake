file(REMOVE_RECURSE
  "CMakeFiles/biot_factory.dir/quality.cpp.o"
  "CMakeFiles/biot_factory.dir/quality.cpp.o.d"
  "CMakeFiles/biot_factory.dir/scenario.cpp.o"
  "CMakeFiles/biot_factory.dir/scenario.cpp.o.d"
  "CMakeFiles/biot_factory.dir/sensors.cpp.o"
  "CMakeFiles/biot_factory.dir/sensors.cpp.o.d"
  "CMakeFiles/biot_factory.dir/trace.cpp.o"
  "CMakeFiles/biot_factory.dir/trace.cpp.o.d"
  "libbiot_factory.a"
  "libbiot_factory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biot_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
