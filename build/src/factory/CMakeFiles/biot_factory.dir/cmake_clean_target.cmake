file(REMOVE_RECURSE
  "libbiot_factory.a"
)
