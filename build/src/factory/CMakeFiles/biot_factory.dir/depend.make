# Empty dependencies file for biot_factory.
# This may be replaced when dependencies are built.
