file(REMOVE_RECURSE
  "CMakeFiles/biot_common.dir/bytes.cpp.o"
  "CMakeFiles/biot_common.dir/bytes.cpp.o.d"
  "CMakeFiles/biot_common.dir/clock.cpp.o"
  "CMakeFiles/biot_common.dir/clock.cpp.o.d"
  "CMakeFiles/biot_common.dir/codec.cpp.o"
  "CMakeFiles/biot_common.dir/codec.cpp.o.d"
  "CMakeFiles/biot_common.dir/log.cpp.o"
  "CMakeFiles/biot_common.dir/log.cpp.o.d"
  "CMakeFiles/biot_common.dir/rng.cpp.o"
  "CMakeFiles/biot_common.dir/rng.cpp.o.d"
  "CMakeFiles/biot_common.dir/status.cpp.o"
  "CMakeFiles/biot_common.dir/status.cpp.o.d"
  "libbiot_common.a"
  "libbiot_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biot_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
