file(REMOVE_RECURSE
  "libbiot_common.a"
)
