# Empty dependencies file for biot_common.
# This may be replaced when dependencies are built.
