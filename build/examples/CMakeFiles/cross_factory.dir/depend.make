# Empty dependencies file for cross_factory.
# This may be replaced when dependencies are built.
