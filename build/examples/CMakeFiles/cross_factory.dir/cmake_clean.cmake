file(REMOVE_RECURSE
  "CMakeFiles/cross_factory.dir/cross_factory.cpp.o"
  "CMakeFiles/cross_factory.dir/cross_factory.cpp.o.d"
  "cross_factory"
  "cross_factory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
