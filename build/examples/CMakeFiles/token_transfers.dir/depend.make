# Empty dependencies file for token_transfers.
# This may be replaced when dependencies are built.
