file(REMOVE_RECURSE
  "CMakeFiles/token_transfers.dir/token_transfers.cpp.o"
  "CMakeFiles/token_transfers.dir/token_transfers.cpp.o.d"
  "token_transfers"
  "token_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
