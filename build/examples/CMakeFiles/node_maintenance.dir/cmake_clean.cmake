file(REMOVE_RECURSE
  "CMakeFiles/node_maintenance.dir/node_maintenance.cpp.o"
  "CMakeFiles/node_maintenance.dir/node_maintenance.cpp.o.d"
  "node_maintenance"
  "node_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
