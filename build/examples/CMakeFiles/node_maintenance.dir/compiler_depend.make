# Empty compiler generated dependencies file for node_maintenance.
# This may be replaced when dependencies are built.
