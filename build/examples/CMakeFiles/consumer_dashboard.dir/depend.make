# Empty dependencies file for consumer_dashboard.
# This may be replaced when dependencies are built.
