file(REMOVE_RECURSE
  "CMakeFiles/consumer_dashboard.dir/consumer_dashboard.cpp.o"
  "CMakeFiles/consumer_dashboard.dir/consumer_dashboard.cpp.o.d"
  "consumer_dashboard"
  "consumer_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consumer_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
