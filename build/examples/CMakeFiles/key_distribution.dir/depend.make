# Empty dependencies file for key_distribution.
# This may be replaced when dependencies are built.
