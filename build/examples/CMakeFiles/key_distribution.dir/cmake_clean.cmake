file(REMOVE_RECURSE
  "CMakeFiles/key_distribution.dir/key_distribution.cpp.o"
  "CMakeFiles/key_distribution.dir/key_distribution.cpp.o.d"
  "key_distribution"
  "key_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
