// Tiny dependency-free flag parser shared by the CLI tools.
// Supports --flag value, --flag=value and boolean --flag forms.
#pragma once

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace biot::tools {

class CliArgs {
 public:
  CliArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[arg] = argv[++i];
      } else {
        flags_[arg] = "";  // boolean flag
      }
    }
  }

  bool has(const std::string& name) const { return flags_.contains(name); }

  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
  }
  long get_int(const std::string& name, long fallback) const {
    const auto it = flags_.find(name);
    return it == flags_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
  }
  double get_double(const std::string& name, double fallback) const {
    const auto it = flags_.find(name);
    return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace biot::tools
