// biot-simulate: run a configurable B-IoT smart-factory simulation from the
// command line and report metrics; optionally persist the resulting tangle
// or export it to Graphviz.
//
// Examples:
//   biot_simulate --devices 8 --gateways 2 --seconds 120
//   biot_simulate --devices 4 --attack-double 30 --attack-lazy 60 --sybils 5
//   biot_simulate --coordinator --milestone-interval 5 --save /tmp/t.bin
//   biot_simulate --devices 16 --fixed-pow --seconds 60   (original PoW)
#include <cstdio>
#include <unordered_map>

#include "cli_args.h"
#include "factory/scenario.h"
#include "factory/trace.h"
#include "node/convergence.h"
#include "obs/export.h"
#include "sim/chaos.h"
#include "storage/tangle_io.h"

using namespace biot;

namespace {
void usage() {
  std::puts(
      "biot-simulate — run a B-IoT smart-factory simulation\n"
      "\n"
      "  --devices N            light nodes (default 4)\n"
      "  --gateways N           full nodes (default 2)\n"
      "  --seconds T            simulated horizon (default 60)\n"
      "  --interval S           sensor cadence seconds (default 0.5)\n"
      "  --seed S               deterministic seed (default 1)\n"
      "  --fixed-pow            original PoW baseline instead of credit PoW\n"
      "  --difficulty D         initial/fixed difficulty (default 11)\n"
      "  --coordinator          run a milestone coordinator\n"
      "  --milestone-interval S milestone cadence (default 5)\n"
      "  --offload              devices offload PoW to gateways\n"
      "  --sybils N             unauthorized flooders (default 0)\n"
      "  --attack-double T      device 1 double-spends at time T\n"
      "  --attack-lazy T        device 1 goes lazy at time T\n"
      "  --loss P               network loss probability (default 0)\n"
      "  --chaos SPEC           run a scripted fault plan (sim/chaos.h\n"
      "                         grammar; node ids are gateway indexes), then\n"
      "                         heal, quiesce and check convergence.\n"
      "                         e.g. --chaos '0:loss:0.05;0:dup:0.05;\n"
      "                         0:reorder:0.3:0.05;5:crash:1;12:restart:1'\n"
      "                         Presets (offline-first, DESIGN.md sec 13):\n"
      "                           --chaos duty_cycle   devices duty-cycle\n"
      "                             their radios in shared dark windows and\n"
      "                             drain their outboxes on each wake\n"
      "                           --chaos flash_crowd  the whole fleet goes\n"
      "                             dark at 10%% of the horizon and heals\n"
      "                             simultaneously at 60%% (reconnect storm)\n"
      "  --outbox-capacity N    per-device store-and-forward outbox bound\n"
      "                         (default 1024 for the offline presets)\n"
      "  --sync-interval S      gateway anti-entropy cadence (default 2 when\n"
      "                         --chaos is given, else 0 = off)\n"
      "  --settle S             post-horizon quiescence before the\n"
      "                         convergence check (default 10, chaos only)\n"
      "  --trace FILE.csv       replay a recorded workload trace (see\n"
      "                         docs/PROTOCOL.md for the CSV format); one\n"
      "                         device per sensor in the trace\n"
      "  --save PATH            persist gateway 0's tangle\n"
      "  --dot PATH             export gateway 0's DAG to Graphviz\n"
      "  --metrics-out PATH     dump the fleet-wide metrics registry\n"
      "                         (gateway.g*/device.d*/net/chaos scopes) as\n"
      "                         biot-metrics-v1 JSON\n"
      "  --help                 this text");
}
}  // namespace

int main(int argc, char** argv) {
  const tools::CliArgs args(argc, argv);
  if (args.has("help")) {
    usage();
    return 0;
  }

  factory::ScenarioConfig config;
  config.num_devices = static_cast<int>(args.get_int("devices", 4));
  config.num_gateways = static_cast<int>(args.get_int("gateways", 2));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.device.collect_interval = args.get_double("interval", 0.5);
  config.device.profile = sim::DeviceProfile::pi3b_fig9();
  config.device.offload_pow = args.has("offload");
  config.enable_coordinator = args.has("coordinator");
  config.milestone_interval = args.get_double("milestone-interval", 5.0);
  if (args.has("fixed-pow"))
    config.gateway.policy = node::GatewayConfig::Policy::kFixed;

  const double horizon = args.get_double("seconds", 60.0);

  const bool chaos_on = args.has("chaos");
  const std::string chaos_spec = args.get("chaos", "");
  const bool preset_duty = chaos_spec == "duty_cycle";
  const bool preset_flash = chaos_spec == "flash_crowd";
  const bool offline_preset = preset_duty || preset_flash;
  if (offline_preset) {
    // Offline-first presets: co-located exchange ring, fast outage
    // detection (dark windows are short relative to the horizon), and IoT
    // difficulty low enough that a queued backlog can drain before the
    // horizon.
    config.wire_exchange_ring = true;
    config.device.request_timeout = 1.0;
    config.device.failback_probe_interval = 1.0;
    // Keep the probe backoff cap small relative to the dark windows so a
    // device whose backoff peaked mid-outage still reconnects (jittered)
    // within a few seconds of the heal.
    config.device.probe_interval_max = 5.0;
    config.device.outbox.capacity = static_cast<std::size_t>(
        args.get_int("outbox-capacity", 1024));
  }
  config.gateway.fixed_difficulty =
      static_cast<int>(args.get_int("difficulty", offline_preset ? 6 : 11));
  config.gateway.credit.initial_difficulty = config.gateway.fixed_difficulty;
  // Chaos without anti-entropy cannot converge (live gossip alone never
  // backfills a restarted gateway), so sync defaults on with the plan.
  config.gateway.sync_interval =
      args.get_double("sync-interval", chaos_on ? 2.0 : 0.0);

  // Trace replay: one device per recorded sensor stream.
  std::optional<factory::WorkloadTrace> trace;
  std::vector<std::shared_ptr<factory::TraceSensor>> trace_sensors;
  if (args.has("trace")) {
    auto loaded = factory::WorkloadTrace::load(args.get("trace", ""));
    if (!loaded) {
      std::printf("cannot load trace: %s\n",
                  loaded.status().to_string().c_str());
      return 1;
    }
    trace = std::move(loaded).take();
    config.num_devices = static_cast<int>(trace->sensors().size());
    std::printf("trace: %zu events over %.1f s across %d sensors\n",
                trace->events().size(), trace->duration(), config.num_devices);
  }

  factory::SmartFactory factory(config);
  if (trace) {
    const auto names = trace->sensors();
    for (std::size_t d = 0; d < names.size(); ++d) {
      auto sensor = std::make_shared<factory::TraceSensor>(
          names[d], trace->for_sensor(names[d]));
      trace_sensors.push_back(sensor);
      auto* sched_ptr = &factory.scheduler();
      factory.device(d).set_data_source([sensor, sched_ptr]() mutable {
        Rng rng(0);
        return sensor->sample(sched_ptr->now(), rng).encode();
      });
    }
  }
  factory.bootstrap();
  if (const double p = args.get_double("loss", 0.0); p > 0.0)
    factory.network().set_loss_rate(p);

  std::optional<sim::FaultPlan> plan;
  std::optional<sim::ChaosEngine> chaos;
  if (chaos_on && offline_preset) {
    // Preset plans address real device NodeIds directly — no gateway-index
    // validation or map_ids pass.
    std::vector<sim::NodeId> fleet;
    for (std::size_t d = 0; d < factory.device_count(); ++d)
      fleet.push_back(factory.device(d).node_id());
    plan.emplace();
    if (preset_flash) {
      // Whole fleet dark together, simultaneous heal: the reconnect storm.
      plan->events.push_back(sim::FaultEvent{
          horizon * 0.1, sim::FaultKind::kRadioOff, fleet, 0.0, 0.0});
      plan->events.push_back(sim::FaultEvent{
          horizon * 0.6, sim::FaultKind::kRadioOn, fleet, 0.0, 0.0});
    } else {
      // Three shared duty-cycle windows over the first 70% of the horizon:
      // dark 70% of each period, awake (draining) the rest.
      const double period = horizon * 0.7 / 3.0;
      for (int k = 0; k < 3; ++k) {
        const double off_at = horizon * 0.05 + k * period;
        plan->events.push_back(sim::FaultEvent{
            off_at, sim::FaultKind::kRadioOff, fleet, 0.0, 0.0});
        plan->events.push_back(sim::FaultEvent{
            off_at + period * 0.7, sim::FaultKind::kRadioOn, fleet, 0.0,
            0.0});
      }
    }
    std::printf("chaos: seed=%llu preset=%s (%zu devices)\n",
                static_cast<unsigned long long>(config.seed),
                chaos_spec.c_str(), fleet.size());
    chaos.emplace(factory.network());
    chaos->schedule(*plan);
    chaos->schedule_finale(horizon);
    chaos->stats().attach_to(factory.metrics().scope("chaos"));
  } else if (chaos_on) {
    auto parsed = sim::FaultPlan::parse(chaos_spec);
    if (!parsed) {
      std::printf("bad chaos plan: %s\n", parsed.status().to_string().c_str());
      return 1;
    }
    plan = std::move(parsed).take();
    for (const auto& event : plan->events) {
      for (const auto id : event.nodes) {
        if (id >= factory.gateway_count()) {
          std::printf("bad chaos plan: gateway index %u out of range "
                      "(%zu gateways)\n",
                      id, factory.gateway_count());
          return 1;
        }
      }
    }
    // Echo seed + plan so any failing run reproduces verbatim.
    std::printf("chaos: seed=%llu plan=%s\n",
                static_cast<unsigned long long>(config.seed),
                plan->to_string().c_str());
    // Spec ids are gateway indexes; the engine works in sim::NodeIds.
    std::unordered_map<sim::NodeId, std::size_t> index_of;
    for (std::size_t g = 0; g < factory.gateway_count(); ++g)
      index_of[factory.gateway(g).node_id()] = g;
    plan->map_ids(
        [&](sim::NodeId g) { return factory.gateway(g).node_id(); });
    chaos.emplace(
        factory.network(),
        [&factory, index_of](sim::NodeId id) {
          factory.crash_gateway(index_of.at(id));
        },
        [&factory, index_of](sim::NodeId id) {
          factory.restart_gateway(index_of.at(id));
        });
    chaos->schedule(*plan);
    chaos->schedule_finale(horizon);
    chaos->stats().attach_to(factory.metrics().scope("chaos"));
  }

  for (long i = 0; i < args.get_int("sybils", 0); ++i) {
    auto sybil = config.device;
    sybil.collect_interval = 0.1;
    factory.add_unauthorized_device(sybil);
  }
  if (args.has("attack-double") && config.num_devices > 1)
    factory.device(1).schedule_attack(args.get_double("attack-double", 30.0),
                                      node::AttackKind::kDoubleSpend);
  if (args.has("attack-lazy") && config.num_devices > 1)
    factory.device(1).schedule_attack(args.get_double("attack-lazy", 45.0),
                                      node::AttackKind::kLazyTips);

  std::printf("running %d devices / %d gateways for %.0f simulated seconds"
              "%s%s...\n",
              config.num_devices, config.num_gateways, horizon,
              config.enable_coordinator ? ", coordinator on" : "",
              config.device.offload_pow ? ", PoW offloaded" : "");
  factory.run_until(horizon);
  if (chaos_on) {
    // Quiesce the devices, then let the healed fleet anti-entropy back
    // together before checking convergence.
    factory.stop_devices();
    factory.run_until(horizon + args.get_double("settle", 10.0));
  }

  // ---- Report -------------------------------------------------------------
  std::printf("\n== results ==\n");
  std::printf("throughput: %.2f tx/s (accepted total %llu)\n",
              factory.throughput(horizon * 0.1, horizon),
              static_cast<unsigned long long>(factory.total_accepted()));

  for (std::size_t d = 0; d < factory.device_count(); ++d) {
    const auto& s = factory.device(d).stats();
    const auto key = factory.device(d).public_identity().sign_key;
    double pow_energy = 0.0;
    for (const auto t : s.pow_durations)
      pow_energy += t * config.device.profile.pow_power_w;
    std::printf("device %zu: accepted=%-5llu rejected=%-3llu difficulty=%-2d "
                "pow_energy=%.1fJ\n",
                d, static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.rejected),
                factory.gateway(0).required_difficulty(key), pow_energy);
  }

  for (std::size_t g = 0; g < factory.gateway_count(); ++g) {
    const auto& s = factory.gateway(g).stats();
    std::printf("gateway %zu: tangle=%zu accepted=%llu conflicts=%llu "
                "lazy=%llu unauthorized=%llu gossip=%llu\n",
                g, factory.gateway(g).tangle().size(),
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.rejected_conflict),
                static_cast<unsigned long long>(s.lazy_detected),
                static_cast<unsigned long long>(s.rejected_unauthorized),
                static_cast<unsigned long long>(s.gossip_received));
  }
  if (config.enable_coordinator) {
    std::printf("coordinator: %llu milestones, %zu txs milestone-confirmed\n",
                static_cast<unsigned long long>(
                    factory.coordinator().milestones_issued()),
                factory.gateway(0).milestones().confirmed_count());
  }
  const auto& net = factory.network().stats();
  std::printf("network: %llu msgs sent, %llu delivered, %llu lost, %.1f KB\n",
              static_cast<unsigned long long>(net.sent),
              static_cast<unsigned long long>(net.delivered),
              static_cast<unsigned long long>(net.dropped_loss),
              static_cast<double>(net.bytes_sent) / 1000.0);

  int exit_code = 0;
  if (chaos_on) {
    std::printf("faults: %llu duplicated, %llu reordered, %llu corrupted\n",
                static_cast<unsigned long long>(net.duplicated),
                static_cast<unsigned long long>(net.reordered),
                static_cast<unsigned long long>(net.corrupted));
    const auto& cs = chaos->stats();
    std::printf("chaos: %llu crashes, %llu restarts, %llu partitions, "
                "%llu heals, %llu rate changes, %llu radio changes\n",
                static_cast<unsigned long long>(cs.crashes),
                static_cast<unsigned long long>(cs.restarts),
                static_cast<unsigned long long>(cs.partitions),
                static_cast<unsigned long long>(cs.heals),
                static_cast<unsigned long long>(cs.rate_changes),
                static_cast<unsigned long long>(cs.radio_changes));
    if (offline_preset) {
      std::uint64_t enqueued = 0, drained = 0, duplicates = 0, rejected = 0,
                    dropped = 0, backoffs = 0, offline_entries = 0;
      for (std::size_t d = 0; d < factory.device_count(); ++d) {
        const auto& os = factory.device(d).outbox().stats();
        enqueued += os.enqueued;
        drained += os.drained;
        duplicates += os.duplicates;
        rejected += os.rejected;
        dropped += os.dropped;
        backoffs += os.backoff_events;
        offline_entries += factory.device(d).stats().went_offline;
      }
      std::printf("outbox: %llu queued -> %llu drained + %llu duplicates + "
                  "%llu rejected (%llu shed by policy, %llu backoffs, "
                  "%llu offline entries)\n",
                  static_cast<unsigned long long>(enqueued),
                  static_cast<unsigned long long>(drained),
                  static_cast<unsigned long long>(duplicates),
                  static_cast<unsigned long long>(rejected),
                  static_cast<unsigned long long>(dropped),
                  static_cast<unsigned long long>(backoffs),
                  static_cast<unsigned long long>(offline_entries));
    }
    node::ConvergenceChecker checker;
    for (std::size_t g = 0; g < factory.gateway_count(); ++g)
      checker.add_replica(&factory.gateway(g));
    if (offline_preset) {
      // Offline-first contract: every outbox drained, every settled
      // exchange registered on every replica.
      for (std::size_t d = 0; d < factory.device_count(); ++d)
        checker.add_device(&factory.device(d));
    }
    const auto report = checker.check();
    std::printf("%s\n", report.to_string().c_str());
    if (!report.ok()) exit_code = 2;
  }

  // ---- Optional exports ------------------------------------------------------
  if (args.has("save")) {
    const auto path = args.get("save", "");
    const auto status = storage::save_tangle(factory.gateway(0).tangle(), path);
    std::printf("tangle saved to %s: %s\n", path.c_str(),
                status.to_string().c_str());
  }
  if (args.has("dot")) {
    const auto path = args.get("dot", "");
    const auto dot = storage::to_dot(factory.gateway(0).tangle());
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(dot.data(), 1, dot.size(), f);
      std::fclose(f);
      std::printf("DAG exported to %s\n", path.c_str());
    }
  }
  if (args.has("metrics-out")) {
    const auto path = args.get("metrics-out", "");
    const auto snap = factory.metrics().snapshot();
    const auto status = obs::write_json(snap, path);
    std::printf("metrics (%zu) written to %s: %s\n", snap.metrics.size(),
                path.c_str(), status.to_string().c_str());
    if (!status.is_ok() && exit_code == 0) exit_code = 1;
  }
  return exit_code;
}
