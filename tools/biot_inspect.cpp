// biot-inspect: examine persisted B-IoT artifacts — serialized tangles
// (storage::save_tangle) and transaction archives (storage::ArchiveWriter).
//
//   biot_inspect tangle.bin            summarize a tangle file
//   biot_inspect --archive txs.arc     summarize an archive
//   biot_inspect tangle.bin --dot out.dot    also export Graphviz
//   biot_inspect tangle.bin --audit    run the invariant auditor (exit 2
//                                      when any invariant is violated)
//   biot_inspect tangle.bin --metrics  structure metrics as text; with a
//                                      path (--metrics out.json), write
//                                      biot-metrics-v1 JSON instead
#include <algorithm>
#include <cstdio>
#include <map>

#include "cli_args.h"
#include "obs/export.h"
#include "storage/archive.h"
#include "storage/tangle_io.h"
#include "tangle/audit.h"

using namespace biot;

namespace {

void summarize_transactions(
    const std::vector<std::pair<tangle::Transaction, double>>& txs) {
  std::map<std::string, std::size_t> by_type;
  std::map<std::string, std::size_t> by_sender;
  std::size_t encrypted = 0;
  double min_t = 1e300, max_t = -1e300;

  for (const auto& [tx, arrival] : txs) {
    ++by_type[std::string(tangle::tx_type_name(tx.type))];
    ++by_sender[tx.sender.hex().substr(0, 8)];
    if (tx.payload_encrypted) ++encrypted;
    min_t = std::min(min_t, arrival);
    max_t = std::max(max_t, arrival);
  }

  std::printf("transactions: %zu (%zu encrypted payloads)\n", txs.size(),
              encrypted);
  if (!txs.empty())
    std::printf("time span: %.2f .. %.2f s\n", min_t, max_t);
  std::printf("by type:\n");
  for (const auto& [type, count] : by_type)
    std::printf("  %-14s %zu\n", type.c_str(), count);

  // Top senders.
  std::vector<std::pair<std::size_t, std::string>> senders;
  for (const auto& [sender, count] : by_sender)
    senders.emplace_back(count, sender);
  std::sort(senders.rbegin(), senders.rend());
  std::printf("top senders:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, senders.size()); ++i)
    std::printf("  %s...  %zu txs\n", senders[i].second.c_str(),
                senders[i].first);
}

int inspect_tangle(const std::string& path, const tools::CliArgs& args) {
  const auto tangle = storage::load_tangle(path);
  if (!tangle) {
    std::printf("error: %s\n", tangle.status().to_string().c_str());
    return 1;
  }
  std::printf("== tangle %s ==\n", path.c_str());
  std::printf("size: %zu, tips: %zu, genesis depth: %zu\n",
              tangle.value().size(), tangle.value().tips().size(),
              tangle.value().depth(tangle.value().genesis_id()));

  std::vector<std::pair<tangle::Transaction, double>> txs;
  for (const auto& id : tangle.value().arrival_order()) {
    const auto* rec = tangle.value().find(id);
    txs.emplace_back(rec->tx, rec->arrival);
  }
  summarize_transactions(txs);

  if (args.has("dot")) {
    const auto out_path = args.get("dot", "");
    const auto dot = storage::to_dot(tangle.value());
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(dot.data(), 1, dot.size(), f);
      std::fclose(f);
      std::printf("DAG exported to %s\n", out_path.c_str());
    }
  }

  if (args.has("audit")) {
    const auto report = tangle::audit(tangle.value());
    std::printf("%s\n", report.to_string().c_str());
    if (!report.ok()) return 2;
  }

  if (args.has("metrics")) {
    // Render the replica as a metrics registry: structure gauges, per-type
    // counters and payload/arrival distributions. Text to stdout, or
    // biot-metrics-v1 JSON when the flag carries a path.
    obs::MetricsRegistry registry;
    const auto scope = registry.scope("tangle");
    scope.gauge("size").set(static_cast<double>(tangle.value().size()));
    scope.gauge("tips").set(static_cast<double>(tangle.value().tips().size()));
    scope.gauge("genesis_depth")
        .set(static_cast<double>(
            tangle.value().depth(tangle.value().genesis_id())));
    auto& payload_bytes =
        scope.histogram("payload_bytes", obs::HistogramSpec::size());
    auto& arrival_s =
        scope.histogram("arrival_sim_s", obs::HistogramSpec::timer_seconds());
    for (const auto& [tx, arrival] : txs) {
      ++scope.counter("type." + std::string(tangle::tx_type_name(tx.type)));
      payload_bytes.observe(static_cast<double>(tx.payload.size()));
      arrival_s.observe(arrival);
    }
    const auto out_path = args.get("metrics", "");
    if (out_path.empty()) {
      std::fputs(obs::to_text(registry.snapshot()).c_str(), stdout);
    } else {
      const auto status = obs::write_json(registry.snapshot(), out_path);
      std::printf("metrics written to %s: %s\n", out_path.c_str(),
                  status.to_string().c_str());
      if (!status.is_ok()) return 1;
    }
  }
  return 0;
}

int inspect_archive(const std::string& path) {
  const auto archive = storage::read_archive(path);
  if (!archive) {
    std::printf("error: %s\n", archive.status().to_string().c_str());
    return 1;
  }
  std::printf("== archive %s ==\n", path.c_str());
  std::printf("integrity: all record digests verified\n");
  std::vector<std::pair<tangle::Transaction, double>> txs;
  for (const auto& rec : archive.value()) txs.emplace_back(rec.tx, rec.arrival);
  summarize_transactions(txs);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::CliArgs args(argc, argv);
  if (args.positional().empty() || args.has("help")) {
    std::puts(
        "usage: biot_inspect [--archive] FILE [--dot OUT.dot] [--audit]\n"
        "                    [--metrics [OUT.json]]");
    return args.has("help") ? 0 : 1;
  }
  const auto& path = args.positional().front();
  return args.has("archive") ? inspect_archive(path)
                             : inspect_tangle(path, args);
}
