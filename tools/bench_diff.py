#!/usr/bin/env python3
"""Validate and diff biot-bench-v1 trajectories (bench/harness.h output).

Usage:
  bench_diff.py --validate FILE [FILE...]
      Check each file against tools/bench_schema.json. Exit 1 on any failure.

  bench_diff.py --baseline DIR --current DIR [--threshold 0.2]
      Pair BENCH_*.json files by bench name and report per-result deltas.
      Timing-unit results ("s", "s/op", "us/op", "ms/op") that got slower by
      more than the threshold are flagged as regressions. Warnings only by
      default; --fail-on-regress turns them into a non-zero exit for
      stricter pipelines.

      The STRICT_BENCHES set (hot-path crypto and PoW benches) is held to a
      harder line: a timing regression beyond --strict-threshold (default
      0.35), or the bench missing from the current run entirely, exits 1
      regardless of --fail-on-regress. These benches guard the midstate
      multi-buffer miner and the single-verify admission path, where a
      silent 35% slide means the optimization quietly fell off.

No third-party dependencies: a small interpreter covers the subset of JSON
Schema the bench schema actually uses (const/type/required/properties/
pattern/items/minItems/minimum/additionalProperties).
"""

import argparse
import glob
import json
import os
import re
import sys

SCHEMA_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "bench_schema.json")

TIMING_UNITS = {"s", "s/op", "us/op", "ms/op"}

# Benches that guard the hot-path crypto work (midstate multi-buffer PoW,
# batch verification). Regressions here hard-fail the diff even without
# --fail-on-regress.
STRICT_BENCHES = {"crypto_micro", "fig7_pow_difficulty", "pow_offload"}


def check(instance, schema, path="$"):
    """Returns a list of violation strings (empty when valid)."""
    errors = []
    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {instance!r}")
        return errors
    expected = schema.get("type")
    if expected:
        ok = {
            "object": lambda v: isinstance(v, dict),
            "array": lambda v: isinstance(v, list),
            "string": lambda v: isinstance(v, str),
            "number": lambda v: isinstance(v, (int, float))
            and not isinstance(v, bool),
            "integer": lambda v: isinstance(v, int)
            and not isinstance(v, bool),
            "boolean": lambda v: isinstance(v, bool),
        }[expected](instance)
        if not ok:
            errors.append(f"{path}: expected {expected}, got "
                          f"{type(instance).__name__}")
            return errors
    if "pattern" in schema and not re.match(schema["pattern"], instance):
        errors.append(f"{path}: {instance!r} does not match "
                      f"{schema['pattern']!r}")
    if "minimum" in schema and instance < schema["minimum"]:
        errors.append(f"{path}: {instance} < minimum {schema['minimum']}")
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        for key, value in instance.items():
            if key in props:
                errors.extend(check(value, props[key], f"{path}.{key}"))
            elif schema.get("additionalProperties") is False:
                errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            errors.append(f"{path}: {len(instance)} items < minItems "
                          f"{schema['minItems']}")
        item_schema = schema.get("items")
        if item_schema:
            for i, item in enumerate(instance):
                errors.extend(check(item, item_schema, f"{path}[{i}]"))
    return errors


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def validate(paths):
    schema = load(SCHEMA_PATH)
    failed = False
    for path in paths:
        try:
            doc = load(path)
        except (OSError, json.JSONDecodeError) as err:
            print(f"FAIL {path}: {err}")
            failed = True
            continue
        errors = check(doc, schema)
        if errors:
            failed = True
            print(f"FAIL {path}:")
            for e in errors:
                print(f"  {e}")
        else:
            print(f"OK   {path}: bench={doc['bench']} "
                  f"results={len(doc['results'])}"
                  f"{' (quick)' if doc['quick'] else ''}")
    return 1 if failed else 0


def collect(directory):
    docs = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            doc = load(path)
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping {path}: {err}")
            continue
        docs[doc.get("bench", os.path.basename(path))] = doc
    return docs


def diff(baseline_dir, current_dir, threshold, fail_on_regress,
         strict_threshold):
    base = collect(baseline_dir)
    cur = collect(current_dir)
    if not base:
        print(f"error: no BENCH_*.json under {baseline_dir}")
        return 2
    if not cur:
        print(f"error: no BENCH_*.json under {current_dir}")
        return 2

    regressions = 0
    strict_failures = 0
    for bench in sorted(set(base) | set(cur)):
        strict = bench in STRICT_BENCHES
        if bench not in cur:
            print(f"{bench}: MISSING from current run"
                  + (" [strict]" if strict else ""))
            regressions += 1
            if strict:
                strict_failures += 1
            continue
        if bench not in base:
            print(f"{bench}: new bench (no baseline)")
            continue
        base_results = {r["name"]: r for r in base[bench]["results"]}
        cur_results = {r["name"]: r for r in cur[bench]["results"]}
        for name in sorted(set(base_results) | set(cur_results)):
            if name not in cur_results:
                print(f"{bench}/{name}: result disappeared"
                      + (" [strict]" if strict else ""))
                regressions += 1
                if strict:
                    strict_failures += 1
                continue
            if name not in base_results:
                print(f"{bench}/{name}: new result "
                      f"{cur_results[name]['value']:g}")
                continue
            old, new = base_results[name], cur_results[name]
            if old["value"] == 0:
                continue
            rel = (new["value"] - old["value"]) / abs(old["value"])
            timing = old.get("unit", "") in TIMING_UNITS
            # For timing units only slower is a regression; other units are
            # reported informationally when they moved a lot either way.
            if timing and strict and rel > strict_threshold:
                print(f"{bench}/{name}: STRICT REGRESSION {old['value']:g} -> "
                      f"{new['value']:g} {old['unit']} (+{rel * 100:.0f}%)")
                regressions += 1
                strict_failures += 1
            elif timing and rel > threshold:
                print(f"{bench}/{name}: REGRESSION {old['value']:g} -> "
                      f"{new['value']:g} {old['unit']} (+{rel * 100:.0f}%)")
                regressions += 1
            elif abs(rel) > threshold:
                print(f"{bench}/{name}: changed {old['value']:g} -> "
                      f"{new['value']:g} {old.get('unit', '')} "
                      f"({rel * 100:+.0f}%)")
    if strict_failures:
        print(f"\n{strict_failures} hard failure(s) in strict benches "
              f"({', '.join(sorted(STRICT_BENCHES))}) beyond "
              f"{strict_threshold * 100:.0f}% threshold")
        return 1
    if regressions:
        print(f"\n{regressions} regression(s) beyond "
              f"{threshold * 100:.0f}% threshold")
        return 1 if fail_on_regress else 0
    print("\nno regressions beyond threshold")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--validate", nargs="+", metavar="FILE",
                        help="validate trajectories against the schema")
    parser.add_argument("--baseline", metavar="DIR")
    parser.add_argument("--current", metavar="DIR")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="relative regression threshold (default 0.2)")
    parser.add_argument("--fail-on-regress", action="store_true",
                        help="exit non-zero when regressions are found")
    parser.add_argument("--strict-threshold", type=float, default=0.35,
                        help="hard-fail threshold for STRICT_BENCHES "
                        "(default 0.35; applies regardless of "
                        "--fail-on-regress)")
    args = parser.parse_args()

    if args.validate:
        sys.exit(validate(args.validate))
    if args.baseline and args.current:
        sys.exit(diff(args.baseline, args.current, args.threshold,
                      args.fail_on_regress, args.strict_threshold))
    parser.error("use --validate FILE... or --baseline DIR --current DIR")


if __name__ == "__main__":
    main()
