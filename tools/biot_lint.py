#!/usr/bin/env python3
"""biot-lint: project-specific correctness rules clang-tidy cannot express.

Rules (each can be suppressed on a line with `// biot-lint: allow(<rule>)`,
optionally followed by a rationale — suppressions without one are rejected):

  enum-switch      Every `switch` whose cases name a guarded enum
                   (ErrorCode, Ingress, AdmissionStage, Behaviour, TxType)
                   must list every enumerator and must not contain a
                   `default:` label. A default arm is how a newly added
                   ingress class or error code silently falls into
                   somebody else's handling instead of failing to compile.

  brute-force-twin Every `*_brute_force` reference implementation declared
                   in a src/ header must sit next to its incremental twin
                   (same header, same name minus the suffix) and must be
                   exercised somewhere under tests/ — a reference path
                   nobody cross-checks against is dead weight that rots.

  checked-at       No unchecked `.at(` on the consensus / tip-selection
                   hot paths (src/consensus/*.cpp, src/tangle/
                   tip_selection.cpp). These paths walk ids received from
                   peers; an `.at()` that can throw on an unknown id is a
                   remote crash. Lookups there must go through find() /
                   contains() or carry an allow() with the invariant that
                   guarantees presence.

  include-hygiene  src/ headers start with `#pragma once`; no include path
                   contains `../`; the first project include of every
                   src/ .cpp is its own header (proves the header is
                   self-contained).

  pow-midstate     No call to the single-shot `pow_output(...)` inside
                   src/consensus/ — the miners grind through
                   tangle::PowMidstate, which caches the parents' SHA-256
                   block and compresses only the nonce block per attempt.
                   A pow_output call in a mining loop silently doubles the
                   hash work (it recompresses the constant prefix every
                   nonce). Validation outside src/consensus/ may still use
                   pow_output as the reference form.

  tangle-add       No direct `Tangle::add` / `Tangle::attach_batch` call in
                   src/ outside the admission pipeline
                   (src/node/admission.cpp), the tangle layer itself
                   (src/tangle/), or the persistence replay path
                   (src/storage/tangle_io.cpp). Every other ingress must go
                   through Gateway::admit()/admit_many() so the staged
                   checks (PoW, signature, credit, rate limits) cannot be
                   skipped. A deliberate bypass carries an allow() naming
                   why the staged checks are unnecessary there.

  drain-batch      Outbox/reconnect drain paths in src/node/ must admit
                   through Gateway::admit_many() — no per-item `admit(`
                   call inside a function whose name contains "drain".
                   Batched admission is what lets an intra-chunk parent
                   chain resolve (earlier chunk members attach before
                   later ones verify) and bounds a flash-crowd reconnect
                   to one staged pass per chunk; a per-item loop orphans
                   the chained children and re-runs the staged checks per
                   record. A deliberate single admission (e.g. a control-
                   plane probe) carries an allow() naming why it is not a
                   queue drain.

  raw-sync         No raw std::mutex / std::condition_variable /
                   std::lock_guard / std::unique_lock (or their shared /
                   recursive / scoped cousins) anywhere in src/ — all
                   synchronization goes through the capability-annotated
                   wrappers in src/common/sync.h, so Clang's Thread Safety
                   Analysis and the lock-rank checker see every acquisition.
                   src/common/sync.{h,cpp} themselves carry the justified
                   `// biot-lint: allow(raw-sync)` carve-outs (they ARE the
                   wrapper layer); any other use needs its own rationale.

  guarded-field    Heuristic: a class owning a sync::Mutex/SharedMutex must
                   annotate each non-atomic, non-const mutable data member
                   with GUARDED_BY/PT_GUARDED_BY — or carry an allow() with
                   the rationale that makes lock-free access safe (e.g.
                   written only in the constructor). The Clang analysis only
                   protects fields that are annotated; an unannotated field
                   next to a mutex is exactly where a silent race hides.

  bench-harness    Every bench/*.cpp must be built on bench/harness.h (so
                   it emits a schema-valid biot-bench-v1 trajectory) and
                   must not hand-roll timing with `std::chrono` /
                   `#include <chrono>` — measurement goes through
                   Harness::bench()/measure() or obs::WallTimer, which the
                   trajectory and the perf-smoke CI diff can see. Matches
                   the qualified forms only: bare "chrono" would false-
                   positive on words like "synchronous" in comments.

Exit status: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from dataclasses import dataclass

# Enums whose switches must be exhaustive. Maps enum name -> header that
# defines it (relative to the scan root). The enumerator list is parsed
# from the header, so adding an enumerator automatically tightens the lint.
GUARDED_ENUMS = {
    "ErrorCode": "src/common/status.h",
    "Ingress": "src/node/admission.h",
    "AdmissionStage": "src/node/admission.h",
    "Behaviour": "src/consensus/credit.h",
    "TxType": "src/tangle/transaction.h",
}

# Hot paths where a throwing map lookup on a peer-supplied id is a crash.
CHECKED_AT_PATHS = [
    re.compile(r"^src/consensus/[^/]+\.cpp$"),
    re.compile(r"^src/tangle/tip_selection\.cpp$"),
]

# Paths where the single-shot pow_output would re-hash the constant parent
# prefix on every nonce — mining code must grind through tangle::PowMidstate.
POW_MIDSTATE_PATHS = [
    re.compile(r"^src/consensus/[^/]+\.(?:h|cpp)$"),
]

# Paths that legitimately attach to the tangle directly: the admission
# pipeline's final stage, the tangle layer itself (AttachBatch, tests of
# invariants), and replay of locally persisted, already-admitted records.
TANGLE_ADD_ALLOWED_PATHS = [
    re.compile(r"^src/node/admission\.cpp$"),
    re.compile(r"^src/tangle/"),
    re.compile(r"^src/storage/tangle_io\.cpp$"),
]

# A receiver whose name starts with tangle/Tangle (member, local, accessor
# call) invoking add()/attach_batch(). AttachBatch::add via `batch->add`
# deliberately does not match: batches are only mintable from a Tangle&.
TANGLE_ADD_RE = re.compile(
    r"\b[Tt]angle\w*(?:\s*\(\s*\))?\s*(?:\.|->)\s*(?:add|attach_batch)\s*\(")

ALLOW_RE = re.compile(r"//\s*biot-lint:\s*allow\(([a-z-]+)\)\s*(\S.*)?$")

# An identifier containing "drain" followed by an argument list — matched at
# every call/definition site; check_drain_batch keeps only definitions (the
# token run between the closing paren and `{` is qualifiers-only, so call
# expressions inside conditions never open a scanned scope).
DRAIN_FN_RE = re.compile(r"\b\w*[Dd]rain\w*\s*\(")

# A bare per-item admit() call. admit_many / admit_batch_items do not match
# (no word boundary before their suffix); try_admit-style wrappers would
# need the boundary before "admit" and so stay out of scope.
ADMIT_ONE_RE = re.compile(r"\badmit\s*\(")

# Raw standard-library synchronization vocabulary. Everything here has an
# annotated wrapper in src/common/sync.h; a qualified use anywhere else in
# src/ escapes both the Thread Safety Analysis and the lock-rank checker.
RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(?:(?:recursive_|timed_|recursive_timed_|shared_)?mutex"
    r"|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b")

# A class member that is one of our annotated mutexes — the trigger for the
# guarded-field heuristic. Uppercase M keeps std::shared_mutex (raw-sync's
# business) out of scope.
MUTEX_MEMBER_RE = re.compile(
    r"\b(?:sync\s*::\s*)?(?:Shared)?Mutex\s+\w+\s*[;{=]")

# A plain member-variable declaration by repo convention: optional mutable,
# a type, a trailing-underscore name, an optional initializer. Lines with
# parens (function declarations, paren-initializers) never match the callers'
# pre-filter, so this only has to recognize the data-member shape.
MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?[A-Za-z_][\w:<>,\s*]*[\s>]\s*\w+_\s*"
    r"(?:=[^;]*|\{[^;]*\})?;")

# Member lines that need no GUARDED_BY: the synchronization primitives
# themselves, atomics (safe by type), const/static (immutable / not
# per-instance state), and references (unreassignable).
GUARDED_FIELD_EXEMPT_RE = re.compile(
    r"GUARDED_BY|PT_GUARDED_BY|\batomic\b|\bconst\b|\bstatic\b"
    r"|\bMutex\b|\bCondVar\b|&")

# Qualified uses only — `std::chrono` or the header include. A bare
# "chrono" substring would fire on "synchronous" in bench comments.
CHRONO_RE = re.compile(r"\bstd\s*::\s*chrono\b|#\s*include\s*<chrono>")


@dataclass
class Violation:
    rule: str
    path: pathlib.Path
    line: int  # 1-based; 0 when the finding is file-scoped
    message: str

    def render(self, root: pathlib.Path) -> str:
        rel = self.path.relative_to(root)
        loc = f"{rel}:{self.line}" if self.line else str(rel)
        return f"{loc}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure,
    so structural regexes (case labels, `.at(`) cannot match inside them."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
            out.append(" ")
        else:
            out.append(c)
            i += 1
    return "".join(out)


def allowed_rules(lines: list[str], line_idx: int) -> dict[str, bool]:
    """Suppressions on the given 0-based line or the line above it.
    Maps rule name -> whether a rationale was given."""
    rules: dict[str, bool] = {}
    for idx in (line_idx - 1, line_idx):
        if 0 <= idx < len(lines):
            m = ALLOW_RE.search(lines[idx])
            if m:
                rules[m.group(1)] = bool(m.group(2))
    return rules


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.violations: list[Violation] = []
        self.enums = self._parse_guarded_enums()

    def add(self, rule: str, path: pathlib.Path, line: int, message: str,
            lines: list[str] | None = None) -> None:
        if lines is not None and line:
            allows = allowed_rules(lines, line - 1)
            if rule in allows:
                if not allows[rule]:
                    self.violations.append(Violation(
                        rule, path, line,
                        f"allow({rule}) without a rationale — state the "
                        "invariant that makes this safe"))
                return
        self.violations.append(Violation(rule, path, line, message))

    # -- enum parsing --------------------------------------------------------

    def _parse_guarded_enums(self) -> dict[str, set[str]]:
        enums: dict[str, set[str]] = {}
        for name, rel in GUARDED_ENUMS.items():
            header = self.root / rel
            if not header.exists():
                continue  # layout changed; enum-switch degrades gracefully
            text = strip_comments_and_strings(header.read_text())
            m = re.search(
                rf"enum\s+class\s+{name}\b[^{{]*\{{(.*?)\}}", text, re.S)
            if not m:
                continue
            body = m.group(1)
            members = set(re.findall(r"\b(k[A-Za-z0-9_]+)\b", body))
            if members:
                enums[name] = members
        return enums

    # -- rules ---------------------------------------------------------------

    def check_enum_switch(self, path: pathlib.Path, text: str,
                          lines: list[str]) -> None:
        for m in re.finditer(r"\bswitch\s*\(", text):
            start_line = text.count("\n", 0, m.start()) + 1
            body, body_start = self._switch_body(text, m.end() - 1)
            if body is None:
                continue
            used = {name for name in self.enums
                    if re.search(rf"\bcase\s+(?:\w+::)*{name}::", body)}
            if not used:
                continue
            allows = allowed_rules(lines, start_line - 1)
            if "enum-switch" in allows:
                if not allows["enum-switch"]:
                    self.add("enum-switch", path, start_line,
                             "allow(enum-switch) without a rationale")
                continue
            if re.search(r"\bdefault\s*:", body):
                self.add("enum-switch", path, start_line,
                         f"switch over {'/'.join(sorted(used))} has a "
                         "`default:` arm — it would silently swallow newly "
                         "added enumerators; enumerate every case instead")
            for name in used:
                cased = set(re.findall(
                    rf"\bcase\s+(?:\w+::)*{name}::(k[A-Za-z0-9_]+)", body))
                missing = self.enums[name] - cased
                if missing:
                    self.add("enum-switch", path, start_line,
                             f"switch over {name} does not handle: "
                             + ", ".join(sorted(missing)))

    @staticmethod
    def _switch_body(text: str, paren_open: int):
        """Returns the brace-delimited body following switch's condition."""
        depth = 0
        i = paren_open
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        brace = text.find("{", i)
        if brace < 0:
            return None, 0
        depth = 0
        for j in range(brace, len(text)):
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    return text[brace + 1:j], brace
        return None, 0

    def check_brute_force_twins(self) -> None:
        decl_re = re.compile(r"\b(\w+)_brute_force\s*\(")
        test_text = "".join(
            p.read_text() for p in sorted((self.root / "tests").glob("*.cpp")))
        for header in sorted((self.root / "src").rglob("*.h")):
            text = strip_comments_and_strings(header.read_text())
            for m in decl_re.finditer(text):
                base = m.group(1)
                line = text.count("\n", 0, m.start()) + 1
                if not re.search(rf"\b{base}\s*\(", text.replace(
                        f"{base}_brute_force", "")):
                    self.add("brute-force-twin", header, line,
                             f"{base}_brute_force has no incremental twin "
                             f"`{base}(...)` in the same header")
                if f"{base}_brute_force" not in test_text:
                    self.add("brute-force-twin", header, line,
                             f"{base}_brute_force is never cross-checked "
                             "under tests/ — add a test comparing it against "
                             f"{base}()")

    def check_checked_at(self, rel: str, path: pathlib.Path, text: str,
                         lines: list[str]) -> None:
        if not any(p.match(rel) for p in CHECKED_AT_PATHS):
            return
        for i, line in enumerate(strip_comments_and_strings(text).split("\n")):
            if re.search(r"\.\s*at\s*\(", line):
                self.add("checked-at", path, i + 1,
                         "`.at()` on a consensus/tip-selection hot path can "
                         "throw on a peer-supplied id — use find()/contains() "
                         "or allow() with the invariant guaranteeing presence",
                         lines)

    def check_pow_midstate(self, rel: str, path: pathlib.Path, text: str,
                           lines: list[str]) -> None:
        if not any(p.match(rel) for p in POW_MIDSTATE_PATHS):
            return
        for i, line in enumerate(text.split("\n")):
            if re.search(r"\bpow_output\s*\(", line):
                self.add("pow-midstate", path, i + 1,
                         "single-shot pow_output() in src/consensus/ re-hashes "
                         "the constant parent prefix on every nonce — grind "
                         "through tangle::PowMidstate (output/output_many), or "
                         "allow() with why this call is off the mining path",
                         lines)

    def check_tangle_add(self, rel: str, path: pathlib.Path, text: str,
                         lines: list[str]) -> None:
        if any(p.match(rel) for p in TANGLE_ADD_ALLOWED_PATHS):
            return
        for i, line in enumerate(text.split("\n")):
            if TANGLE_ADD_RE.search(line):
                self.add("tangle-add", path, i + 1,
                         "direct Tangle attach bypasses the admission "
                         "pipeline's staged checks — route through "
                         "Gateway::admit()/admit_many(), or allow() with why "
                         "the staged checks are unnecessary here", lines)

    def check_drain_batch(self, rel: str, path: pathlib.Path, text: str,
                          lines: list[str]) -> None:
        if not rel.startswith("src/node/"):
            return
        n = len(text)
        for m in DRAIN_FN_RE.finditer(text):
            # Walk the argument list to its closing paren.
            i, depth = m.end() - 1, 0
            while i < n:
                if text[i] == "(":
                    depth += 1
                elif text[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            if i >= n:
                continue
            # Definition, not a call: only whitespace and qualifier tokens
            # (const, noexcept, override) may sit between `)` and the body.
            j = i + 1
            while j < n and text[j] not in "{;":
                j += 1
            if j >= n or text[j] == ";":
                continue
            if not re.fullmatch(r"[\s\w]*", text[i + 1:j]):
                continue
            # Brace-match the body and flag every per-item admit inside it.
            k, depth = j, 0
            while k < n:
                if text[k] == "{":
                    depth += 1
                elif text[k] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            base_line = text.count("\n", 0, j)
            for off, body_line in enumerate(text[j:k].split("\n")):
                if ADMIT_ONE_RE.search(body_line):
                    self.add("drain-batch", path, base_line + off + 1,
                             "per-item admit() inside a drain path — batch "
                             "the chunk through Gateway::admit_many() so "
                             "in-chunk parent chains resolve and the "
                             "reconnect storm stays one staged pass per "
                             "chunk, or allow() with why this single "
                             "admission is not a queue drain", lines)

    def check_include_hygiene(self, rel: str, path: pathlib.Path,
                              text: str, lines: list[str]) -> None:
        includes = [(i + 1, m.group(1))
                    for i, line in enumerate(lines)
                    for m in [re.match(r'\s*#include\s+"([^"]+)"', line)]
                    if m]
        for line_no, inc in includes:
            if "../" in inc:
                self.add("include-hygiene", path, line_no,
                         f'include path "{inc}" escapes the include root — '
                         "include project headers relative to src/", lines)
        if path.suffix == ".h":
            if "#pragma once" not in text:
                self.add("include-hygiene", path, 0,
                         "src/ header is missing `#pragma once`")
        elif path.suffix == ".cpp":
            own = path.with_suffix(".h")
            if own.exists() and includes:
                expected = own.relative_to(self.root / "src").as_posix()
                line_no, first = includes[0]
                if first != expected:
                    self.add("include-hygiene", path, line_no,
                             f'first project include is "{first}" but this '
                             f'file implements "{expected}" — include your '
                             "own header first to prove it is self-contained",
                             lines)

    def check_raw_sync(self, path: pathlib.Path, text: str,
                       lines: list[str]) -> None:
        for i, line in enumerate(text.split("\n")):
            if RAW_SYNC_RE.search(line):
                self.add("raw-sync", path, i + 1,
                         "raw std:: synchronization primitive — use the "
                         "capability-annotated wrappers in src/common/sync.h "
                         "(sync::Mutex / MutexLock / CondVar) so the Thread "
                         "Safety Analysis and the lock-rank checker see the "
                         "acquisition, or allow() with why the wrapper "
                         "cannot be used here", lines)

    def _class_bodies(self, text: str):
        """Yields (depth0_lines, …) per class/struct: the body lines at
        nesting depth 0 as (1-based line_no, line) pairs — member
        declarations, not inline function bodies or nested classes."""
        for m in re.finditer(r"\b(?:class|struct)\s+[A-Za-z_]\w*[^;{()]*\{",
                             text):
            if re.search(r"\benum\s+$", text[:m.start()]):
                continue  # enum class — no members to guard
            brace = m.end() - 1
            depth = 0
            end = None
            for j in range(brace, len(text)):
                if text[j] == "{":
                    depth += 1
                elif text[j] == "}":
                    depth -= 1
                    if depth == 0:
                        end = j
                        break
            if end is None:
                continue
            body = text[brace + 1:end]
            body_line = text.count("\n", 0, brace) + 1
            depth0: list[tuple[int, str]] = []
            depth = 0
            for off, bline in enumerate(body.split("\n")):
                if depth == 0:
                    depth0.append((body_line + off, bline))
                depth += bline.count("{") - bline.count("}")
            yield depth0

    def check_guarded_field(self, path: pathlib.Path, text: str,
                            lines: list[str]) -> None:
        for depth0 in self._class_bodies(text):
            if not any(MUTEX_MEMBER_RE.search(b) for _, b in depth0):
                continue
            for line_no, bline in depth0:
                if "(" in bline or ")" in bline:
                    continue  # function decls / annotated or paren-init members
                if (MEMBER_DECL_RE.match(bline)
                        and not GUARDED_FIELD_EXEMPT_RE.search(bline)):
                    self.add("guarded-field", path, line_no,
                             "class owns a Mutex but this mutable field "
                             "carries no GUARDED_BY/PT_GUARDED_BY — the "
                             "Thread Safety Analysis only protects annotated "
                             "fields; annotate it, make it atomic/const, or "
                             "allow() with why lock-free access is safe",
                             lines)

    def check_bench_harness(self) -> None:
        bench_dir = self.root / "bench"
        if not bench_dir.is_dir():
            return
        include_re = re.compile(r'^\s*#include\s+"harness\.h"', re.M)
        for path in sorted(bench_dir.glob("*.cpp")):
            raw = path.read_text()
            lines = raw.split("\n")
            if not include_re.search(raw):
                self.add("bench-harness", path, 0,
                         'bench binary does not include "harness.h" — every '
                         "bench must emit its biot-bench-v1 trajectory "
                         "through the shared harness")
            for i, line in enumerate(
                    strip_comments_and_strings(raw).split("\n")):
                if CHRONO_RE.search(line):
                    self.add("bench-harness", path, i + 1,
                             "hand-rolled `std::chrono` timing in bench/ — "
                             "measure through Harness::bench()/measure() or "
                             "obs::WallTimer so the result lands in the "
                             "trajectory", lines)

    # -- driver --------------------------------------------------------------

    def run(self) -> list[Violation]:
        for path in sorted((self.root / "src").rglob("*")):
            if path.suffix not in (".h", ".cpp"):
                continue
            raw = path.read_text()
            lines = raw.split("\n")
            stripped = strip_comments_and_strings(raw)
            rel = path.relative_to(self.root).as_posix()
            self.check_enum_switch(path, stripped, lines)
            self.check_checked_at(rel, path, raw, lines)
            self.check_pow_midstate(rel, path, stripped, lines)
            self.check_tangle_add(rel, path, stripped, lines)
            self.check_drain_batch(rel, path, stripped, lines)
            self.check_include_hygiene(rel, path, raw, lines)
            self.check_raw_sync(path, stripped, lines)
            self.check_guarded_field(path, stripped, lines)
        if (self.root / "tests").is_dir():
            self.check_brute_force_twins()
        self.check_bench_harness()
        return self.violations


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (contains src/ and tests/)")
    args = parser.parse_args(argv)
    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"biot-lint: no src/ under {root}", file=sys.stderr)
        return 2
    violations = Linter(root).run()
    for v in violations:
        print(v.render(root))
    if violations:
        print(f"biot-lint: {len(violations)} violation(s)")
        return 1
    print("biot-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
