// Robustness suite: adversarial bytes against every wire decoder (random
// truncations, single-byte mutations, pure garbage) must be rejected cleanly
// — never crash, never accept a mutated message as valid — plus
// multi-manager and tip-strategy configuration behaviour.
#include <gtest/gtest.h>

#include "auth/authorization.h"
#include "common/codec.h"
#include "factory/sensors.h"
#include "node/gateway.h"
#include "node/manager.h"
#include "node/rpc.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace biot {
namespace {

using testutil::TxFactory;

// ---- Decoder fuzzing -------------------------------------------------------

/// Applies `decode` to truncations and random single/multi-byte mutations of
/// `wire`. The decoder must either reject or produce a value that re-encodes
/// consistently; it must never crash.
template <typename DecodeFn>
void hammer_decoder(const Bytes& wire, std::uint64_t seed, DecodeFn decode) {
  // All truncations.
  for (std::size_t n = 0; n < wire.size(); ++n) {
    (void)decode(ByteView{wire.data(), n});
  }
  // Random mutations.
  Rng rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = wire;
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.index(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    (void)decode(mutated);
  }
  // Garbage of assorted sizes.
  for (const std::size_t n : {0u, 1u, 7u, 32u, 100u, 1000u}) {
    Bytes garbage(n);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    (void)decode(garbage);
  }
}

TEST(Fuzz, TransactionDecoderNeverCrashes) {
  TxFactory node(1);
  const auto g = tangle::Tangle::make_genesis().id();
  auto tx = node.make_transfer(g, g, node.key(), 42);
  hammer_decoder(tx.encode(), 101, [](ByteView wire) {
    return tangle::Transaction::decode(wire);
  });
}

TEST(Fuzz, MutatedTransactionNeverVerifies) {
  // A mutated transaction may still *decode* (e.g. a payload byte changed),
  // but then either the signature or the PoW must fail — a gateway can never
  // be convinced by a bit-flipped transaction.
  TxFactory node(2);
  const auto g = tangle::Tangle::make_genesis().id();
  const auto tx = node.make(g, g, 8, to_bytes("real reading"));
  const Bytes wire = tx.encode();

  Rng rng(202);
  int decoded_ok = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = wire;
    mutated[rng.index(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    if (mutated == wire) continue;
    const auto back = tangle::Transaction::decode(mutated);
    if (!back) continue;
    ++decoded_ok;
    EXPECT_FALSE(back.value().signature_valid() && tangle::pow_valid(back.value()))
        << "mutated transaction accepted at trial " << trial;
  }
  EXPECT_GT(decoded_ok, 0);  // the test actually exercised the interesting path
}

TEST(Fuzz, RpcDecoderNeverCrashes) {
  node::RpcMessage msg;
  msg.type = node::MsgType::kSubmitTx;
  msg.request_id = 9;
  msg.body = Bytes(50, 0xcd);
  hammer_decoder(msg.encode(), 103, [](ByteView wire) {
    return node::RpcMessage::decode(wire);
  });
}

TEST(Fuzz, TipsAndSubmitBodiesNeverCrash) {
  node::TipsResponse tips;
  tips.message = "msg";
  hammer_decoder(tips.encode(), 104, [](ByteView wire) {
    return node::TipsResponse::decode(wire);
  });
  node::SubmitResult result;
  result.message = "ok";
  hammer_decoder(result.encode(), 105, [](ByteView wire) {
    return node::SubmitResult::decode(wire);
  });
}

TEST(Fuzz, AuthorizationListDecoderNeverCrashes) {
  auth::AuthorizationList list;
  for (int i = 0; i < 3; ++i)
    list.devices.push_back(crypto::Identity::deterministic(i).public_identity());
  hammer_decoder(list.encode(), 106, [](ByteView wire) {
    return auth::AuthorizationList::decode(wire);
  });
}

TEST(Fuzz, SensorReadingDecoderNeverCrashes) {
  factory::SensorReading reading;
  reading.sensor = "temp-oven-1";
  reading.unit = "degC";
  reading.value = 180.5;
  reading.status = "ok";
  hammer_decoder(reading.encode(), 107, [](ByteView wire) {
    return factory::SensorReading::decode(wire);
  });
}

TEST(Fuzz, SnapshotStateDecoderNeverCrashes) {
  storage::SnapshotState state;
  state.taken_at = 5.0;
  TxFactory a(3);
  state.balances.emplace_back(a.key(), 7);
  state.authorized.push_back(crypto::Identity::deterministic(4).public_identity());
  hammer_decoder(state.encode(), 108, [](ByteView wire) {
    return storage::SnapshotState::decode(wire);
  });
}

TEST(Fuzz, GatewayShrugsOffGarbageTraffic) {
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(1));
  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto gateway_identity = crypto::Identity::deterministic(2);
  node::Gateway gateway(1, gateway_identity,
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), network, {});
  gateway.attach();

  Rng rng(999);
  for (int i = 0; i < 300; ++i) {
    Bytes garbage(rng.below(200));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    network.send(50, 1, std::move(garbage));
  }
  sched.run();
  EXPECT_EQ(gateway.tangle().size(), 1u);  // unmoved
  EXPECT_EQ(gateway.stats().accepted, 0u);
}

TEST(Fuzz, SyncMissingForgedCountDoesNotReserveGigabytes) {
  // A kSyncMissing body is entirely attacker-controlled. A forged
  // count=2^32-1 over an empty body used to drive txs.reserve(count) — a
  // ~4-billion-Transaction allocation (hundreds of GB) throwing
  // std::bad_alloc before a single blob was decoded. The reservation must
  // be bounded by what the body could actually carry.
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(3));
  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto gateway_identity = crypto::Identity::deterministic(2);
  node::Gateway gateway(1, gateway_identity,
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), network, {});
  gateway.attach();

  Rng rng(404);
  for (const std::size_t padding : {0u, 3u, 64u, 1000u}) {
    Writer w;
    w.u32(0xFFFFFFFFu);
    Bytes junk(padding);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    w.raw(junk);
    node::RpcMessage msg;
    msg.type = node::MsgType::kSyncMissing;
    msg.request_id = 7;
    msg.body = std::move(w).take();
    network.send(50, 1, msg.encode());
  }
  sched.run();
  EXPECT_EQ(gateway.tangle().size(), 1u);  // unmoved, and still alive
  EXPECT_EQ(gateway.stats().sync_txs_applied, 0u);
}

// ---- Duplicate / out-of-order gossip ---------------------------------------

TEST(GossipHammer, DuplicatedAndReversedGossipIsIdempotent) {
  // Hammer the RPC dispatch + admission pipeline with every valid gossip
  // message delivered three times and in child-before-parent order. The
  // orphan buffer must resolve the reordering, and duplicates must be
  // idempotent: each transaction counted exactly once in credit and weight.
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.001),
                       Rng(5));
  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto gateway_identity = crypto::Identity::deterministic(2);
  node::GatewayConfig config;
  config.credit.initial_difficulty = 4;
  node::Gateway gateway(1, gateway_identity,
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), network, config);
  node::Manager manager(2, manager_identity, gateway, network);
  gateway.attach();

  TxFactory device(100);
  ASSERT_TRUE(manager.authorize({device.identity().public_identity()}).is_ok());

  // A 30-deep chain: tx[i] approves tx[i-1], so reversed delivery forces
  // every transaction through the orphan buffer.
  constexpr int kChain = 30;
  std::vector<tangle::Transaction> txs;
  tangle::TxId prev = gateway.tangle().genesis_id();
  for (int i = 0; i < kChain; ++i) {
    txs.push_back(device.make(prev, gateway.tangle().genesis_id(), 4));
    prev = txs.back().id();
  }

  auto gossip_wire = [&](const tangle::Transaction& tx) {
    node::RpcMessage msg;
    msg.type = node::MsgType::kBroadcastTx;
    msg.sender_key = gateway_identity.public_identity().sign_key;
    msg.body = tx.encode();
    return msg.encode();
  };

  // Children first, each twice (duplicate while still an orphan)...
  for (auto it = txs.rbegin(); it != txs.rend(); ++it) {
    network.send(7, 1, gossip_wire(*it));
    network.send(7, 1, gossip_wire(*it));
  }
  // ... then the whole set again in forward order (duplicate after attach).
  for (const auto& tx : txs) network.send(7, 1, gossip_wire(tx));
  sched.run();

  const auto& stats = gateway.stats();
  EXPECT_EQ(stats.gossip_received, static_cast<std::uint64_t>(3 * kChain));
  // Genesis + authorization tx + the chain, each exactly once.
  EXPECT_EQ(gateway.tangle().size(), static_cast<std::size_t>(2 + kChain));
  EXPECT_GT(stats.orphans_adopted, 0u);
  EXPECT_EQ(gateway.orphan_count(), 0u);  // nothing left waiting

  // No double credit: the credit model saw each valid tx exactly once.
  const auto* model = gateway.credit_registry().find(device.key());
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->valid_tx_count(), static_cast<std::size_t>(kChain));

  // No double weight / index damage: the full auditor must be clean,
  // including ledger conservation (no transfers => supply 0).
  tangle::AuditInputs inputs;
  inputs.ledger = &gateway.ledger();
  inputs.expected_supply = 0;
  inputs.credit_valid_tx_count = [&](const tangle::AccountKey& key) {
    const auto* m = gateway.credit_registry().find(key);
    return m ? m->valid_tx_count() : 0;
  };
  testutil::expect_audit_clean(gateway.tangle(), inputs);
}

TEST(GossipHammer, PowOffloadRejectsAbsurdDeclaredDifficulty) {
  // An attach (PoW-offload) request declaring difficulty 255 must be
  // rejected BEFORE the gateway grinds the nonce: honouring it would wedge
  // the gateway in a ~2^255-hash search — a one-message denial of service
  // any authorized (or corrupted-in-transit) sender could trigger.
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.001),
                       Rng(6));
  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto gateway_identity = crypto::Identity::deterministic(2);
  node::GatewayConfig config;
  config.credit.initial_difficulty = 4;
  node::Gateway gateway(1, gateway_identity,
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), network, config);
  node::Manager manager(2, manager_identity, gateway, network);
  gateway.attach();

  TxFactory device(100);
  ASSERT_TRUE(manager.authorize({device.identity().public_identity()}).is_ok());

  auto tx = device.make(gateway.tangle().genesis_id(),
                        gateway.tangle().genesis_id(), 4);
  tx.difficulty = 255;  // signed by the device, so the gateway can't fix it
  tx.signature = device.identity().sign(tx.signing_bytes());

  node::RpcMessage attach;
  attach.type = node::MsgType::kAttachRequest;
  attach.request_id = 1;
  attach.sender_key = device.key();
  attach.body = tx.encode();

  const auto accepted_before = gateway.stats().accepted;  // authorization tx
  std::optional<ErrorCode> reply_status;
  network.attach(50, [&](sim::NodeId, const Bytes& wire) {
    const auto msg = node::RpcMessage::decode(wire);
    ASSERT_TRUE(msg);
    const auto result = node::SubmitResult::decode(msg.value().body);
    ASSERT_TRUE(result);
    reply_status = result.value().status;
  });
  network.send(50, 1, attach.encode());
  sched.run();  // terminates: the nonce search must never start

  ASSERT_TRUE(reply_status.has_value());
  EXPECT_EQ(*reply_status, ErrorCode::kPowInvalid);
  EXPECT_EQ(gateway.stats().rejected_difficulty, 1u);
  EXPECT_EQ(gateway.stats().accepted, accepted_before);
}

// ---- Multi-manager --------------------------------------------------------------

TEST(MultiManager, CoManagerListsMergeAndUpdateIndependently) {
  const auto mgr1 = crypto::Identity::deterministic(1);
  const auto mgr2 = crypto::Identity::deterministic(2);
  auth::AuthRegistry registry(mgr1.public_identity().sign_key);
  registry.add_manager(mgr2.public_identity().sign_key);
  EXPECT_TRUE(registry.is_manager(mgr2.public_identity().sign_key));

  auto publish = [](const crypto::Identity& mgr,
                    std::vector<crypto::PublicIdentity> devices,
                    std::uint64_t seq) {
    auth::AuthorizationList list;
    list.devices = std::move(devices);
    auto tx = auth::make_authorization_tx(mgr, list, seq, 0.0);
    tx.difficulty = 1;
    consensus::Miner miner;
    tx.nonce = miner.mine(tx.parent1, tx.parent2, 1)->nonce;
    tx.signature = mgr.sign(tx.signing_bytes());
    return tx;
  };

  const auto dev_a = crypto::Identity::deterministic(10).public_identity();
  const auto dev_b = crypto::Identity::deterministic(11).public_identity();
  ASSERT_TRUE(registry.apply(publish(mgr1, {dev_a}, 0)).is_ok());
  ASSERT_TRUE(registry.apply(publish(mgr2, {dev_b}, 0)).is_ok());
  EXPECT_TRUE(registry.is_authorized(dev_a.sign_key));
  EXPECT_TRUE(registry.is_authorized(dev_b.sign_key));

  // Manager 1 deauthorizes its device; manager 2's stays.
  ASSERT_TRUE(registry.apply(publish(mgr1, {}, 1)).is_ok());
  EXPECT_FALSE(registry.is_authorized(dev_a.sign_key));
  EXPECT_TRUE(registry.is_authorized(dev_b.sign_key));
}

TEST(MultiManager, NonRegisteredManagerStillRejected) {
  const auto mgr1 = crypto::Identity::deterministic(1);
  const auto impostor = crypto::Identity::deterministic(66);
  auth::AuthRegistry registry(mgr1.public_identity().sign_key);

  auth::AuthorizationList list;
  list.devices.push_back(crypto::Identity::deterministic(10).public_identity());
  auto tx = auth::make_authorization_tx(impostor, list, 0, 0.0);
  tx.difficulty = 1;
  consensus::Miner miner;
  tx.nonce = miner.mine(tx.parent1, tx.parent2, 1)->nonce;
  tx.signature = impostor.sign(tx.signing_bytes());
  EXPECT_EQ(registry.apply(tx).code(), ErrorCode::kUnauthorized);
}

// ---- Tip strategy configuration ----------------------------------------------------

TEST(TipStrategy, WeightedWalkGatewayServesValidTips) {
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(2));
  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto gateway_identity = crypto::Identity::deterministic(2);

  node::GatewayConfig config;
  config.tips = node::GatewayConfig::TipStrategy::kWeightedWalk;
  config.walk_alpha = 1.0;
  config.credit.initial_difficulty = 3;
  node::Gateway gateway(1, gateway_identity,
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), network, config);
  node::Manager manager(2, manager_identity, gateway, network);

  TxFactory device(100);
  ASSERT_TRUE(manager.authorize({device.identity().public_identity()}).is_ok());
  for (int i = 0; i < 15; ++i) {
    const auto [t1, t2] = gateway.select_tips();
    EXPECT_TRUE(gateway.tangle().is_tip(t1));
    EXPECT_TRUE(gateway.tangle().is_tip(t2));
    const auto tx = device.make(t1, t2,
                                gateway.required_difficulty(device.key()));
    ASSERT_TRUE(gateway.submit(tx).is_ok());
  }
  EXPECT_EQ(gateway.tangle().size(), 17u);  // genesis + auth + 15
}

}  // namespace
}  // namespace biot
