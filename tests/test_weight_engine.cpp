// Incremental weight engine: property tests proving the incrementally
// maintained cumulative weights and depths agree with the brute-force
// reference sweeps on randomized DAGs, generation-cache invalidation, and
// regression tests for the tip-selection correctness fixes (duplicate tip
// draw, null/missing-weight walk).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "tangle/milestones.h"
#include "tangle/tip_selection.h"
#include "test_util.h"

namespace biot::tangle {
namespace {

using testutil::TxFactory;

// ---- Incremental vs brute force ---------------------------------------------

TEST(WeightEngineProperty, IncrementalMatchesBruteForceOnRandomTangles) {
  // 500+ randomized tangles, each grown by a mix of arbitrary-DAG parent
  // picks (diamonds included) and uniform tip selection at difficulty 1;
  // every transaction's incremental weight and depth must equal the
  // reference sweep exactly.
  for (std::uint64_t seed = 1; seed <= 510; ++seed) {
    Tangle tangle(Tangle::make_genesis());
    TxFactory node(seed);
    Rng rng(seed * 0x9e3779b9ull + 1);
    UniformRandomTipSelector tips;
    const int txs = 5 + static_cast<int>(seed % 28);
    for (int i = 0; i < txs; ++i) {
      TxId p1, p2;
      if (rng.bernoulli(0.5)) {
        const auto& order = tangle.arrival_order();
        p1 = order[rng.index(order.size())];
        p2 = order[rng.index(order.size())];
      } else {
        std::tie(p1, p2) = tips.select(tangle, rng);
      }
      const auto tx = node.make(p1, p2, 1, {}, 0.1 * i);
      ASSERT_TRUE(tangle.add(tx, 0.1 * i).is_ok());
    }
    for (const auto& id : tangle.arrival_order()) {
      ASSERT_EQ(tangle.cumulative_weight(id),
                tangle.cumulative_weight_brute_force(id))
          << "weight mismatch, seed " << seed;
      ASSERT_EQ(tangle.depth(id), tangle.depth_brute_force(id))
          << "depth mismatch, seed " << seed;
    }
  }
}

TEST(WeightEngineProperty, AgreementHoldsAfterEveryAdd) {
  // Stronger (but smaller) sweep: check agreement after each individual add,
  // not just at the end — catches ordering bugs in the propagation.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Tangle tangle(Tangle::make_genesis());
    TxFactory node(seed);
    Rng rng(seed);
    for (int i = 0; i < 25; ++i) {
      const auto& order = tangle.arrival_order();
      const auto& p1 = order[rng.index(order.size())];
      const auto& p2 = order[rng.index(order.size())];
      const auto tx = node.make(p1, p2, 1, {}, 0.1 * i);
      ASSERT_TRUE(tangle.add(tx, 0.1 * i).is_ok());
      for (const auto& id : tangle.arrival_order()) {
        ASSERT_EQ(tangle.cumulative_weight(id),
                  tangle.cumulative_weight_brute_force(id));
        ASSERT_EQ(tangle.depth(id), tangle.depth_brute_force(id));
      }
    }
  }
}

TEST(WeightEngine, UnknownIdIsZeroForBothImplementations) {
  Tangle tangle(Tangle::make_genesis());
  TxId bogus{};
  bogus[5] = 0xaa;
  EXPECT_EQ(tangle.cumulative_weight(bogus), 0u);
  EXPECT_EQ(tangle.cumulative_weight_brute_force(bogus), 0u);
  EXPECT_EQ(tangle.depth(bogus), 0u);
  EXPECT_EQ(tangle.depth_brute_force(bogus), 0u);
}

// ---- Generation stamps / weight cache ---------------------------------------

TEST(WeightEngine, GenerationMovesOnlyOnSuccessfulAdd) {
  Tangle tangle(Tangle::make_genesis());
  TxFactory node(1);
  const auto g0 = tangle.generation();

  auto tx = node.make(tangle.genesis_id(), tangle.genesis_id(), 1);
  ASSERT_TRUE(tangle.add(tx, 0.0).is_ok());
  const auto g1 = tangle.generation();
  EXPECT_NE(g1, g0);

  // Rejected adds (duplicate) leave the generation untouched.
  EXPECT_FALSE(tangle.add(tx, 0.0).is_ok());
  EXPECT_EQ(tangle.generation(), g1);
}

TEST(WeightEngine, DistinctTanglesNeverShareAGeneration) {
  // The stamp is process-wide: two tangles built the same way still get
  // distinct generations, so a cache can never confuse them.
  Tangle a(Tangle::make_genesis());
  Tangle b(Tangle::make_genesis());
  EXPECT_NE(a.generation(), b.generation());
}

TEST(WeightEngine, ApproxWeightCacheRecomputesOnlyWhenStale) {
  Tangle tangle(Tangle::make_genesis());
  TxFactory node(1);
  auto tx = node.make(tangle.genesis_id(), tangle.genesis_id(), 1);
  ASSERT_TRUE(tangle.add(tx, 0.0).is_ok());

  ApproxWeightCache cache;
  const auto& w1 = cache.get(tangle);
  EXPECT_EQ(w1.size(), 2u);
  // Quiescent tangle: same map object, unchanged contents.
  EXPECT_EQ(&cache.get(tangle), &w1);
  EXPECT_EQ(cache.get(tangle).size(), 2u);

  auto tx2 = node.make(tx.id(), tx.id(), 1);
  ASSERT_TRUE(tangle.add(tx2, 0.1).is_ok());
  const auto& w2 = cache.get(tangle);
  EXPECT_EQ(w2.size(), 3u);
  EXPECT_DOUBLE_EQ(w2.at(tangle.genesis_id()), 3.0);
}

TEST(WeightEngine, CachedWalkMatchesUncachedDistribution) {
  // The cached selector must agree with a fresh per-call computation: same
  // seed, same tangle, same picks.
  Tangle tangle(Tangle::make_genesis());
  TxFactory node(3);
  Rng grow(3);
  UniformRandomTipSelector uniform;
  for (int i = 0; i < 40; ++i) {
    const auto [p1, p2] = uniform.select(tangle, grow);
    const auto tx = node.make(p1, p2, 1, {}, 0.1 * i);
    ASSERT_TRUE(tangle.add(tx, 0.1 * i).is_ok());
  }
  WeightedWalkTipSelector cached(0.5);
  Rng r1(9), r2(9);
  for (int i = 0; i < 20; ++i) {
    WeightedWalkTipSelector fresh(0.5);  // cold cache: recomputes per call
    const auto a = cached.select(tangle, r1);
    const auto b = fresh.select(tangle, r2);
    EXPECT_EQ(a, b);
  }
}

// ---- Regression: duplicate-tip fix ------------------------------------------

TEST(TipSelectionRegression, UniformNeverRepeatsWhenTwoTipsExist) {
  Tangle tangle(Tangle::make_genesis());
  TxFactory node(1);
  const auto g = tangle.genesis_id();
  for (int i = 0; i < 5; ++i) {
    const auto tx = node.make(g, g, 1);
    ASSERT_TRUE(tangle.add(tx, 0.0).is_ok());
  }
  ASSERT_GE(tangle.tips().size(), 2u);

  UniformRandomTipSelector selector;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const auto [t1, t2] = selector.select(tangle, rng);
    EXPECT_NE(t1, t2) << "duplicate tip drawn with a multi-tip pool";
    EXPECT_TRUE(tangle.is_tip(t1));
    EXPECT_TRUE(tangle.is_tip(t2));
  }
}

TEST(TipSelectionRegression, UniformStillCoversEveryTipPair) {
  // Without-replacement sampling must stay uniform over ordered pairs.
  Tangle tangle(Tangle::make_genesis());
  TxFactory node(2);
  const auto g = tangle.genesis_id();
  std::set<TxId> tip_set;
  for (int i = 0; i < 4; ++i) {
    const auto tx = node.make(g, g, 1);
    ASSERT_TRUE(tangle.add(tx, 0.0).is_ok());
    tip_set.insert(tx.id());
  }
  UniformRandomTipSelector selector;
  Rng rng(5);
  std::set<std::pair<TxId, TxId>> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(selector.select(tangle, rng));
  // 4 tips -> 12 ordered distinct pairs, all reachable.
  EXPECT_EQ(seen.size(), 12u);
}

// ---- Regression: null-walk / missing-weight fix -----------------------------

TEST(TipSelectionRegression, WalkFromUnknownIdFallsBackToATip) {
  Tangle tangle(Tangle::make_genesis());
  TxFactory node(1);
  const auto g = tangle.genesis_id();
  const auto tx = node.make(g, g, 1);
  ASSERT_TRUE(tangle.add(tx, 0.0).is_ok());

  WeightedWalkTipSelector selector(0.5);
  Rng rng(1);
  TxId foreign{};
  foreign[0] = 0xde;
  foreign[1] = 0xad;
  const auto weights = approximate_weights(tangle);
  const auto landed = selector.walk(tangle, foreign, weights, rng);
  EXPECT_TRUE(tangle.is_tip(landed));
}

TEST(TipSelectionRegression, WalkToleratesMissingWeightEntries) {
  // A stale/partial weight map (e.g. computed before the latest attach) must
  // not throw out of std::unordered_map::at; missing entries count as 0.
  Tangle tangle(Tangle::make_genesis());
  TxFactory node(1);
  const auto g = tangle.genesis_id();
  const auto stale_weights = approximate_weights(tangle);  // genesis only
  auto prev = g;
  for (int i = 0; i < 6; ++i) {
    const auto tx = node.make(prev, prev, 1, {}, 0.1 * i);
    ASSERT_TRUE(tangle.add(tx, 0.1 * i).is_ok());
    prev = tx.id();
  }

  WeightedWalkTipSelector selector(2.0);
  Rng rng(2);
  const auto landed = selector.walk(tangle, g, stale_weights, rng);
  EXPECT_TRUE(tangle.is_tip(landed));
}

TEST(TipSelectionRegression, WindowedWalkSelectsValidTips) {
  // The depth-windowed mode anchors each walk a bounded number of parent
  // steps behind a random tip; it must still land on real tips, for windows
  // both smaller and larger than the tangle's depth.
  Tangle tangle(Tangle::make_genesis());
  TxFactory node(1);
  UniformRandomTipSelector uniform;
  Rng grow_rng(31);
  for (int i = 0; i < 60; ++i) {
    const auto [p1, p2] = uniform.select(tangle, grow_rng);
    const auto tx = node.make(p1, p2, 1, {}, 0.1 * i);
    ASSERT_TRUE(tangle.add(tx, 0.1 * i).is_ok());
  }

  for (const std::size_t window : {std::size_t{1}, std::size_t{8},
                                   std::size_t{10000}}) {
    WeightedWalkTipSelector windowed(0.5, window);
    Rng rng(7);
    for (int i = 0; i < 20; ++i) {
      const auto [t1, t2] = windowed.select(tangle, rng);
      EXPECT_TRUE(tangle.is_tip(t1)) << "window=" << window;
      EXPECT_TRUE(tangle.is_tip(t2)) << "window=" << window;
    }
  }
}

// ---- Regression: milestone replay -------------------------------------------

TEST(MilestoneRegression, ReplayedMilestoneCountsNothing) {
  Tangle tangle(Tangle::make_genesis());
  TxFactory node(1);
  const auto g = tangle.genesis_id();
  const auto a = node.make(g, g, 1);
  ASSERT_TRUE(tangle.add(a, 0.0).is_ok());

  MilestoneTracker tracker;
  EXPECT_EQ(tracker.observe_milestone(tangle, a.id()), 2u);
  EXPECT_EQ(tracker.milestone_count(), 1u);
  // Gossip echo / restore replay of the same milestone: no-op.
  EXPECT_EQ(tracker.observe_milestone(tangle, a.id()), 0u);
  EXPECT_EQ(tracker.milestone_count(), 1u);
  EXPECT_EQ(tracker.confirmed_count(), 2u);
}

}  // namespace
}  // namespace biot::tangle
