// Tangle substrate tests: transaction encoding/signing/PoW, DAG invariants,
// tip tracking, weights, confirmation and depth.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "tangle/tangle.h"
#include "test_util.h"

namespace biot::tangle {
namespace {

using testutil::TxFactory;

class TangleTest : public ::testing::Test {
 protected:
  TangleTest() : tangle_(Tangle::make_genesis()), alice_(1), bob_(2) {}

  // Under BIOT_AUDIT=1 (sanitizer CI) every test ends with a full
  // invariant audit of whatever DAG it built.
  void TearDown() override { testutil::audit_if_enabled(tangle_); }

  Transaction attach(TxFactory& who, const TxId& p1, const TxId& p2,
                     TimePoint t = 0.0) {
    auto tx = who.make(p1, p2, 4, {}, t);
    EXPECT_TRUE(tangle_.add(tx, t).is_ok());
    return tx;
  }

  Tangle tangle_;
  TxFactory alice_;
  TxFactory bob_;
};

// ---- Transaction encoding ---------------------------------------------------

TEST_F(TangleTest, TransactionEncodeDecodeRoundTrip) {
  auto tx = alice_.make(tangle_.genesis_id(), tangle_.genesis_id(), 4,
                        to_bytes("reading 42"), 1.5);
  const auto decoded = Transaction::decode(tx.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded.value(), tx);
  EXPECT_EQ(decoded.value().id(), tx.id());
}

TEST_F(TangleTest, TransferEncodeDecodeRoundTrip) {
  auto tx = alice_.make_transfer(tangle_.genesis_id(), tangle_.genesis_id(),
                                 bob_.key(), 250);
  const auto decoded = Transaction::decode(tx.encode());
  ASSERT_TRUE(decoded);
  ASSERT_TRUE(decoded.value().transfer.has_value());
  EXPECT_EQ(decoded.value().transfer->amount, 250u);
  EXPECT_EQ(decoded.value().transfer->to, bob_.key());
}

TEST_F(TangleTest, DecodeRejectsTruncatedAndTrailing) {
  auto tx = alice_.make(tangle_.genesis_id(), tangle_.genesis_id());
  Bytes wire = tx.encode();
  EXPECT_FALSE(Transaction::decode(ByteView{wire.data(), wire.size() - 1}));
  wire.push_back(0);
  EXPECT_FALSE(Transaction::decode(wire));
}

TEST_F(TangleTest, DecodeRejectsBadTypeAndFlags) {
  auto tx = alice_.make(tangle_.genesis_id(), tangle_.genesis_id());
  Bytes wire = tx.encode();
  wire[0] = 99;  // type byte
  EXPECT_FALSE(Transaction::decode(wire));
}

TEST_F(TangleTest, SignatureCoversPayload) {
  auto tx = alice_.make(tangle_.genesis_id(), tangle_.genesis_id(), 4,
                        to_bytes("original"));
  EXPECT_TRUE(tx.signature_valid());
  tx.payload = to_bytes("tampered!");
  EXPECT_FALSE(tx.signature_valid());
}

TEST_F(TangleTest, IdChangesWithAnyField) {
  auto tx = alice_.make(tangle_.genesis_id(), tangle_.genesis_id());
  const auto id1 = tx.id();
  tx.sequence += 1;
  EXPECT_NE(tx.id(), id1);
}

// ---- PoW (Eqn 6) --------------------------------------------------------------

TEST(Pow, OutputMatchesManualHash) {
  const TxId p1 = crypto::Sha256::hash(to_bytes("p1"));
  const TxId p2 = crypto::Sha256::hash(to_bytes("p2"));
  std::uint8_t nonce_le[8] = {0x2a, 0, 0, 0, 0, 0, 0, 0};
  const auto expect =
      crypto::Sha256::hash_concat({p1.view(), p2.view(), ByteView{nonce_le, 8}});
  EXPECT_EQ(pow_output(p1, p2, 42), expect);
}

TEST(Pow, LeadingZeroBits) {
  crypto::Sha256Digest d{};  // all zero
  EXPECT_EQ(leading_zero_bits(d), 256);
  d[0] = 0x80;
  EXPECT_EQ(leading_zero_bits(d), 0);
  d[0] = 0x01;
  EXPECT_EQ(leading_zero_bits(d), 7);
  d[0] = 0x00;
  d[1] = 0x10;
  EXPECT_EQ(leading_zero_bits(d), 11);
}

TEST(Pow, ValidityRespectsDifficulty) {
  TxFactory alice(1);
  const TxId g{};
  auto tx = alice.make(g, g, 10);
  EXPECT_TRUE(pow_valid(tx));
  tx.difficulty = 40;  // same nonce, far harder target
  EXPECT_FALSE(pow_valid(tx));
}

// ---- Tangle DAG ----------------------------------------------------------------

TEST_F(TangleTest, GenesisIsInitialTip) {
  EXPECT_EQ(tangle_.size(), 1u);
  EXPECT_TRUE(tangle_.is_tip(tangle_.genesis_id()));
}

TEST_F(TangleTest, AddMovesTipSet) {
  const auto g = tangle_.genesis_id();
  const auto tx = attach(alice_, g, g);
  EXPECT_FALSE(tangle_.is_tip(g));
  EXPECT_TRUE(tangle_.is_tip(tx.id()));
  EXPECT_EQ(tangle_.tips().size(), 1u);
}

TEST_F(TangleTest, TwoChildrenBothTips) {
  const auto g = tangle_.genesis_id();
  const auto a = attach(alice_, g, g);
  const auto b = attach(bob_, g, g);
  EXPECT_TRUE(tangle_.is_tip(a.id()));
  EXPECT_TRUE(tangle_.is_tip(b.id()));
  EXPECT_EQ(tangle_.tips().size(), 2u);
}

TEST_F(TangleTest, RejectsDuplicate) {
  const auto g = tangle_.genesis_id();
  auto tx = alice_.make(g, g);
  EXPECT_TRUE(tangle_.add(tx, 0.0).is_ok());
  const auto again = tangle_.add(tx, 0.0);
  EXPECT_EQ(again.code(), ErrorCode::kRejected);
}

TEST_F(TangleTest, RejectsUnknownParent) {
  TxId bogus{};
  bogus[0] = 0xff;
  auto tx = alice_.make(bogus, bogus);
  EXPECT_EQ(tangle_.add(tx, 0.0).code(), ErrorCode::kNotFound);
}

TEST_F(TangleTest, RejectsBadSignature) {
  const auto g = tangle_.genesis_id();
  auto tx = alice_.make(g, g);
  tx.payload = to_bytes("mutated after signing");
  EXPECT_EQ(tangle_.add(tx, 0.0).code(), ErrorCode::kVerifyFailed);
}

TEST_F(TangleTest, RejectsInsufficientPow) {
  const auto g = tangle_.genesis_id();
  auto tx = alice_.make(g, g, 4);
  tx.difficulty = 60;                       // claim far more than mined
  tx.signature = alice_.identity().sign(tx.signing_bytes());
  EXPECT_EQ(tangle_.add(tx, 0.0).code(), ErrorCode::kPowInvalid);
}

TEST_F(TangleTest, RejectsZeroDifficulty) {
  const auto g = tangle_.genesis_id();
  auto tx = alice_.make(g, g, 1);
  tx.difficulty = 0;
  alice_.finalize(tx);
  EXPECT_EQ(tangle_.add(tx, 0.0).code(), ErrorCode::kPowInvalid);
}

TEST_F(TangleTest, RejectsSecondGenesis) {
  EXPECT_EQ(tangle_.add(Tangle::make_genesis(1.0), 0.0).code(),
            ErrorCode::kRejected);
}

TEST_F(TangleTest, SelfParentPairCountsOnce) {
  const auto g = tangle_.genesis_id();
  const auto tx = attach(alice_, g, g);
  (void)tx;
  EXPECT_EQ(tangle_.approver_count(g), 1u);
}

TEST_F(TangleTest, CumulativeWeightCountsDescendants) {
  const auto g = tangle_.genesis_id();
  const auto a = attach(alice_, g, g);
  const auto b = attach(bob_, a.id(), g);
  const auto c = attach(alice_, b.id(), a.id());
  // genesis is approved by everything.
  EXPECT_EQ(tangle_.cumulative_weight(g), 4u);
  EXPECT_EQ(tangle_.cumulative_weight(a.id()), 3u);
  EXPECT_EQ(tangle_.cumulative_weight(b.id()), 2u);
  EXPECT_EQ(tangle_.cumulative_weight(c.id()), 1u);
}

TEST_F(TangleTest, CumulativeWeightNoDoubleCountOnDiamond) {
  // a <- b, a <- c, (b,c) <- d : weight(a) must count d once.
  const auto g = tangle_.genesis_id();
  const auto a = attach(alice_, g, g);
  const auto b = attach(bob_, a.id(), a.id());
  const auto c = attach(alice_, a.id(), a.id());
  const auto d = attach(bob_, b.id(), c.id());
  (void)d;
  EXPECT_EQ(tangle_.cumulative_weight(a.id()), 4u);
}

TEST_F(TangleTest, ConfirmationThreshold) {
  const auto g = tangle_.genesis_id();
  const auto a = attach(alice_, g, g);
  EXPECT_FALSE(tangle_.is_confirmed(a.id(), 3));
  const auto b = attach(bob_, a.id(), a.id());
  const auto c = attach(alice_, b.id(), a.id());
  (void)c;
  EXPECT_TRUE(tangle_.is_confirmed(a.id(), 3));
}

TEST_F(TangleTest, DepthGrowsTowardGenesis) {
  const auto g = tangle_.genesis_id();
  const auto a = attach(alice_, g, g);
  const auto b = attach(bob_, a.id(), a.id());
  EXPECT_EQ(tangle_.depth(b.id()), 0u);
  EXPECT_EQ(tangle_.depth(a.id()), 1u);
  EXPECT_EQ(tangle_.depth(g), 2u);
}

TEST_F(TangleTest, ApproximateWeightsUpperBoundExact) {
  const auto g = tangle_.genesis_id();
  const auto a = attach(alice_, g, g);
  const auto b = attach(bob_, a.id(), g);
  const auto c = attach(alice_, b.id(), a.id());
  (void)c;
  const auto approx = approximate_weights(tangle_);
  for (const auto& id : tangle_.arrival_order()) {
    EXPECT_GE(approx.at(id) + 1e-9,
              static_cast<double>(tangle_.cumulative_weight(id)));
  }
}

TEST_F(TangleTest, ArrivalOrderIsInsertionOrder) {
  const auto g = tangle_.genesis_id();
  const auto a = attach(alice_, g, g);
  const auto b = attach(bob_, a.id(), g);
  ASSERT_EQ(tangle_.arrival_order().size(), 3u);
  EXPECT_EQ(tangle_.arrival_order()[0], g);
  EXPECT_EQ(tangle_.arrival_order()[1], a.id());
  EXPECT_EQ(tangle_.arrival_order()[2], b.id());
}

// Property sweep: a random tangle stays structurally consistent.
class TangleGrowthTest : public ::testing::TestWithParam<int> {};

TEST_P(TangleGrowthTest, InvariantsHoldUnderRandomGrowth) {
  Tangle tangle(Tangle::make_genesis());
  TxFactory node(GetParam());
  Rng rng(GetParam());

  for (int i = 0; i < 60; ++i) {
    // Pick two random known transactions as parents.
    const auto& order = tangle.arrival_order();
    const auto& p1 = order[rng.index(order.size())];
    const auto& p2 = order[rng.index(order.size())];
    const auto tx = node.make(p1, p2, 2, {}, 0.1 * i);
    ASSERT_TRUE(tangle.add(tx, 0.1 * i).is_ok());
  }

  EXPECT_EQ(tangle.size(), 61u);
  // Tip invariant: a tip has no approvers; a non-tip has at least one.
  for (const auto& id : tangle.arrival_order()) {
    if (tangle.is_tip(id)) {
      EXPECT_EQ(tangle.approver_count(id), 0u);
    } else {
      EXPECT_GE(tangle.approver_count(id), 1u);
    }
  }
  // Genesis dominates: its cumulative weight counts every transaction.
  EXPECT_EQ(tangle.cumulative_weight(tangle.genesis_id()), tangle.size());
  // Weight antisymmetry: child weight strictly below parent weight when the
  // child approves the parent.
  const auto& some_tip = *tangle.tips().begin();
  EXPECT_LT(tangle.cumulative_weight(some_tip),
            tangle.cumulative_weight(tangle.genesis_id()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TangleGrowthTest, ::testing::Values(1, 2, 3, 7, 11));

}  // namespace
}  // namespace biot::tangle
