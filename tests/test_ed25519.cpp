// Ed25519 against RFC 8032 test vectors, plus field/scalar/point unit tests
// and signature robustness properties.
#include <gtest/gtest.h>

#include <cstring>

#include "common/bytes.h"
#include "crypto/csprng.h"
#include "crypto/ed25519.h"
#include "crypto/field25519.h"
#include "crypto/identity.h"
#include "crypto/sha512.h"

namespace biot::crypto {
namespace {

// ---- Field ----------------------------------------------------------------

TEST(Fe, ZeroOneRoundTrip) {
  EXPECT_EQ(Fe::zero().to_bytes().hex(),
            "0000000000000000000000000000000000000000000000000000000000000000");
  EXPECT_EQ(Fe::one().to_bytes().hex(),
            "0100000000000000000000000000000000000000000000000000000000000000");
}

TEST(Fe, BytesRoundTrip) {
  // A canonical value (< p) must round-trip exactly.
  const auto b = from_hex(
      "123456789abcdef00112233445566778899aabbccddeeff01234567812345678");
  Bytes canonical = b;
  canonical[31] &= 0x7f;  // ensure < 2^255
  EXPECT_EQ(Fe::from_bytes(canonical).to_bytes().bytes(), canonical);
}

TEST(Fe, NonCanonicalReducesModP) {
  // p encodes as edff..ff7f; p + 1 must reduce to 1.
  Bytes p_plus_1 = from_hex(
      "eeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f");
  EXPECT_EQ(Fe::from_bytes(p_plus_1), Fe::one());
}

TEST(Fe, AddSubInverse) {
  const Fe a = Fe::from_u64(123456789);
  const Fe b = Fe::from_u64(987654321);
  EXPECT_EQ((a + b) - b, a);
  EXPECT_EQ(a - a, Fe::zero());
}

TEST(Fe, MulCommutesAndDistributes) {
  Csprng rng(42);
  for (int i = 0; i < 20; ++i) {
    Bytes ab = rng.bytes(32);
    ab[31] &= 0x7f;
    Bytes bb = rng.bytes(32);
    bb[31] &= 0x7f;
    Bytes cb = rng.bytes(32);
    cb[31] &= 0x7f;
    const Fe a = Fe::from_bytes(ab), b = Fe::from_bytes(bb), c = Fe::from_bytes(cb);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a.square(), a * a);
  }
}

TEST(Fe, InvertIsMultiplicativeInverse) {
  Csprng rng(43);
  for (int i = 0; i < 10; ++i) {
    Bytes ab = rng.bytes(32);
    ab[31] &= 0x7f;
    const Fe a = Fe::from_bytes(ab);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.invert(), Fe::one());
  }
}

TEST(Fe, InvertZeroIsZero) { EXPECT_EQ(Fe::zero().invert(), Fe::zero()); }

TEST(Fe, SqrtM1Squared) {
  EXPECT_EQ(fe_sqrtm1().square(), Fe::zero() - Fe::one());
}

TEST(Fe, SqrtRatioFindsRoots) {
  // 4/1 has sqrt 2 (or -2).
  Fe r;
  ASSERT_TRUE(fe_sqrt_ratio(r, Fe::from_u64(4), Fe::one()));
  EXPECT_TRUE(r == Fe::from_u64(2) || r == Fe::from_u64(2).negate());
}

TEST(Fe, SqrtRatioRejectsNonSquare) {
  // 2 is a non-square mod p (p ≡ 5 mod 8).
  Fe r;
  EXPECT_FALSE(fe_sqrt_ratio(r, Fe::from_u64(2), Fe::one()));
}

TEST(Fe, MulSmall) {
  const Fe a = Fe::from_u64(7);
  EXPECT_EQ(a.mul_small(3), Fe::from_u64(21));
  EXPECT_EQ(a.mul_small(121665), a * Fe::from_u64(121665));
}

TEST(Fe, CswapSwapsOnFlag) {
  Fe a = Fe::from_u64(1), b = Fe::from_u64(2);
  Fe::cswap(a, b, 0);
  EXPECT_EQ(a, Fe::from_u64(1));
  Fe::cswap(a, b, 1);
  EXPECT_EQ(a, Fe::from_u64(2));
  EXPECT_EQ(b, Fe::from_u64(1));
}

// ---- Scalars ----------------------------------------------------------------

TEST(Scalar, ReduceZero) {
  const Bytes zeros(64, 0);
  EXPECT_EQ(sc_reduce64(zeros).hex(),
            "0000000000000000000000000000000000000000000000000000000000000000");
}

TEST(Scalar, ReduceLItselfIsZero) {
  // L in little-endian, zero-extended to 64 bytes.
  Bytes l = from_hex(
      "edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");
  l.resize(64, 0);
  const auto r = sc_reduce64(l);
  for (auto b : r.data) EXPECT_EQ(b, 0);
}

TEST(Scalar, ReduceSmallValueUnchanged) {
  Bytes v(64, 0);
  v[0] = 42;
  EXPECT_EQ(sc_reduce64(v)[0], 42);
}

TEST(Scalar, MulAddIdentities) {
  Bytes one(32, 0);
  one[0] = 1;
  Bytes a(32, 0);
  a[0] = 77;
  Bytes zero(32, 0);
  // 1*a + 0 = a
  EXPECT_EQ(sc_muladd(one, a, zero).bytes(), a);
  // 0*a + a = a
  EXPECT_EQ(sc_muladd(zero, a, a).bytes(), a);
}

TEST(Scalar, CanonicalCheck) {
  Bytes zero(32, 0);
  EXPECT_TRUE(sc_is_canonical(zero));
  const Bytes l = from_hex(
      "edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");
  EXPECT_FALSE(sc_is_canonical(l));
  Bytes l_minus_1 = l;
  l_minus_1[0] -= 1;
  EXPECT_TRUE(sc_is_canonical(l_minus_1));
  const Bytes big(32, 0xff);
  EXPECT_FALSE(sc_is_canonical(big));
}

// ---- Points ------------------------------------------------------------------

TEST(EdPoint, BaseDecompressRecompress) {
  const auto b = EdPoint::base().compress();
  EXPECT_EQ(b.hex(),
            "5866666666666666666666666666666666666666666666666666666666666666");
}

TEST(EdPoint, IdentityIsNeutral) {
  const EdPoint B = EdPoint::base();
  EXPECT_EQ(B.add(EdPoint::identity()).compress(), B.compress());
}

TEST(EdPoint, DoubleMatchesAdd) {
  const EdPoint B = EdPoint::base();
  EXPECT_EQ(B.dbl().compress(), B.add(B).compress());
}

TEST(EdPoint, AddCommutes) {
  const EdPoint B = EdPoint::base();
  const EdPoint B2 = B.dbl();
  EXPECT_EQ(B.add(B2).compress(), B2.add(B).compress());
}

TEST(EdPoint, NegateCancels) {
  const EdPoint B = EdPoint::base();
  EXPECT_EQ(B.add(B.negate()).compress(), EdPoint::identity().compress());
}

TEST(EdPoint, ScalarMulMatchesRepeatedAdd) {
  Bytes five(32, 0);
  five[0] = 5;
  const EdPoint B = EdPoint::base();
  const EdPoint lhs = B.scalar_mul(five);
  const EdPoint rhs = B.add(B).add(B).add(B).add(B);
  EXPECT_EQ(lhs.compress(), rhs.compress());
}

TEST(EdPoint, ScalarMulByZeroIsIdentity) {
  const Bytes zero(32, 0);
  EXPECT_EQ(EdPoint::base().scalar_mul(zero).compress(),
            EdPoint::identity().compress());
}

TEST(EdPoint, OrderLTimesBaseIsIdentity) {
  const Bytes l = from_hex(
      "edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");
  EXPECT_EQ(EdPoint::base().scalar_mul(l).compress(),
            EdPoint::identity().compress());
}

TEST(EdPoint, DecompressRejectsNonCurvePoint) {
  // y = 2 gives x^2 = 3/(4d+1), check result; craft a known-bad encoding by
  // brute force over small y until decompress fails.
  bool found_invalid = false;
  for (std::uint8_t y = 2; y < 40; ++y) {
    Bytes enc(32, 0);
    enc[0] = y;
    if (!EdPoint::decompress(enc)) {
      found_invalid = true;
      break;
    }
  }
  EXPECT_TRUE(found_invalid);
}

TEST(EdPoint, DecompressRejectsBadLength) {
  EXPECT_FALSE(EdPoint::decompress(Bytes(31, 0)));
}

// ---- RFC 8032 signature vectors -------------------------------------------

struct Rfc8032Vector {
  const char* seed;
  const char* pubkey;
  const char* message;
  const char* signature;
};

// RFC 8032 section 7.1, TEST 1-3 plus SHA(abc) vector.
const Rfc8032Vector kVectors[] = {
    {"9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
     "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a", "",
     "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
     "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
    {"4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
     "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c", "72",
     "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
     "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
    {"c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
     "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
     "af82",
     "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
     "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"},
    {"833fe62409237b9d62ec77587520911e9a759cec1d19755b7da901b96dca3d42",
     "ec172b93ad5e563bf4932c70e1245034c35467ef2efd4d64ebf819683467e2bf",
     // SHA-512("abc") as the message (RFC 8032 TEST SHA(abc))
     "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
     "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f",
     "dc2a4459e7369633a52b1bf277839a00201009a3efbf3ecb69bea2186c26b589"
     "09351fc9ac90b3ecfdfbc7c66431e0303dca179c138ac17ad9bef1177331a704"},
};

class Rfc8032Test : public ::testing::TestWithParam<Rfc8032Vector> {};

TEST_P(Rfc8032Test, KeyDerivationMatches) {
  const auto& v = GetParam();
  const auto kp = Ed25519KeyPair::from_seed(Ed25519Seed::parse_hex(v.seed));
  EXPECT_EQ(kp.public_key.hex(), v.pubkey);
}

TEST_P(Rfc8032Test, SignatureMatches) {
  const auto& v = GetParam();
  const auto kp = Ed25519KeyPair::from_seed(Ed25519Seed::parse_hex(v.seed));
  const Bytes msg = from_hex(v.message);
  EXPECT_EQ(to_hex(ed25519_sign(kp, msg).view()), v.signature);
}

TEST_P(Rfc8032Test, SignatureVerifies) {
  const auto& v = GetParam();
  const auto pk = Ed25519PublicKey::parse_hex(v.pubkey);
  const Bytes msg = from_hex(v.message);
  const auto sig = Ed25519Signature::parse_hex(v.signature);
  EXPECT_TRUE(ed25519_verify(pk, msg, sig));
}

TEST_P(Rfc8032Test, TamperedMessageRejected) {
  const auto& v = GetParam();
  const auto pk = Ed25519PublicKey::parse_hex(v.pubkey);
  Bytes msg = from_hex(v.message);
  msg.push_back(0x00);  // append a byte
  const auto sig = Ed25519Signature::parse_hex(v.signature);
  EXPECT_FALSE(ed25519_verify(pk, msg, sig));
}

TEST_P(Rfc8032Test, TamperedSignatureRejected) {
  const auto& v = GetParam();
  const auto pk = Ed25519PublicKey::parse_hex(v.pubkey);
  const Bytes msg = from_hex(v.message);
  auto sig = Ed25519Signature::parse_hex(v.signature);
  sig[0] ^= 0x01;
  EXPECT_FALSE(ed25519_verify(pk, msg, sig));
  sig[0] ^= 0x01;
  sig[63] ^= 0x80;
  EXPECT_FALSE(ed25519_verify(pk, msg, sig));
}

INSTANTIATE_TEST_SUITE_P(Rfc8032, Rfc8032Test, ::testing::ValuesIn(kVectors));

// ---- Signature robustness properties ----------------------------------------

TEST(Ed25519, SignVerifyRandomMessages) {
  Csprng rng(2024);
  const auto kp = Ed25519KeyPair::from_seed(rng.fixed<32>());
  for (int i = 0; i < 8; ++i) {
    const Bytes msg = rng.bytes(i * 37);
    const auto sig = ed25519_sign(kp, msg);
    EXPECT_TRUE(ed25519_verify(kp.public_key, msg, sig));
  }
}

TEST(Ed25519, WrongKeyRejected) {
  Csprng rng(2025);
  const auto kp1 = Ed25519KeyPair::from_seed(rng.fixed<32>());
  const auto kp2 = Ed25519KeyPair::from_seed(rng.fixed<32>());
  const Bytes msg = to_bytes("authorize device 7");
  const auto sig = ed25519_sign(kp1, msg);
  EXPECT_FALSE(ed25519_verify(kp2.public_key, msg, sig));
}

TEST(Ed25519, NonCanonicalSRejected) {
  // Forge S >= L: valid sig with S replaced by S + L would pass lax verifiers.
  Csprng rng(2026);
  const auto kp = Ed25519KeyPair::from_seed(rng.fixed<32>());
  const Bytes msg = to_bytes("m");
  auto sig = ed25519_sign(kp, msg);
  Bytes all_ff(32, 0xff);
  std::copy(all_ff.begin(), all_ff.end(), sig.data.begin() + 32);
  EXPECT_FALSE(ed25519_verify(kp.public_key, msg, sig));
}

TEST(Ed25519, DeterministicSignature) {
  Csprng rng(2027);
  const auto kp = Ed25519KeyPair::from_seed(rng.fixed<32>());
  const Bytes msg = to_bytes("same message");
  EXPECT_EQ(ed25519_sign(kp, msg), ed25519_sign(kp, msg));
}

// ---- Batch verification ------------------------------------------------------

// Builds n (pk, msg, sig) triples; `corrupt` positions get a broken entry of
// rotating kind (flipped sig byte, flipped msg, non-canonical S, garbage pk).
struct BatchFixture {
  std::vector<Ed25519PublicKey> pks;
  std::vector<Bytes> msgs;
  std::vector<Ed25519Signature> sigs;
  std::vector<crypto::VerifyItem> items() const {
    std::vector<crypto::VerifyItem> out;
    for (std::size_t i = 0; i < pks.size(); ++i)
      out.push_back({&pks[i], ByteView{msgs[i]}, &sigs[i]});
    return out;
  }
};

BatchFixture make_batch(std::size_t n, const std::vector<std::size_t>& corrupt,
                        std::uint64_t seed) {
  Csprng rng(seed);
  BatchFixture f;
  for (std::size_t i = 0; i < n; ++i) {
    const auto kp = Ed25519KeyPair::from_seed(rng.fixed<32>());
    f.pks.push_back(kp.public_key);
    f.msgs.push_back(rng.bytes(11 + i * 7));
    f.sigs.push_back(ed25519_sign(kp, f.msgs.back()));
  }
  std::size_t kind = 0;
  for (const auto i : corrupt) {
    switch (kind++ % 4) {
      case 0: f.sigs[i][5] ^= 0x40; break;                  // broken sig
      case 1: f.msgs[i].push_back(0x99); break;             // broken message
      case 2:                                               // non-canonical S
        for (std::size_t b = 32; b < 64; ++b) f.sigs[i][b] = 0xff;
        break;
      default: f.pks[i] = Ed25519PublicKey{}; break;        // undecodable pk
    }
  }
  return f;
}

// The batch path must agree with per-signature verification bit-for-bit, for
// every batch size and every corrupted position.
TEST(Ed25519Batch, MatchesIndividualVerifyAcrossSizes) {
  for (const std::size_t n : {1u, 2u, 3u, 8u, 16u}) {
    const auto f = make_batch(n, {}, 3000 + n);
    const auto got = ed25519_verify_batch(f.items());
    ASSERT_EQ(got.size(), n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_TRUE(got[i]) << "n=" << n << " i=" << i;
  }
}

TEST(Ed25519Batch, CorruptedPositionsIsolated) {
  for (const std::size_t n : {2u, 3u, 8u, 16u}) {
    for (std::size_t bad = 0; bad < n; ++bad) {
      const auto f = make_batch(n, {bad}, 4000 + n * 31 + bad);
      const auto got = ed25519_verify_batch(f.items());
      ASSERT_EQ(got.size(), n);
      for (std::size_t i = 0; i < n; ++i) {
        const bool expect =
            ed25519_verify(f.pks[i], f.msgs[i], f.sigs[i]);
        EXPECT_EQ(got[i], expect) << "n=" << n << " bad=" << bad << " i=" << i;
        EXPECT_EQ(expect, i != bad);
      }
    }
  }
}

TEST(Ed25519Batch, MultipleCorruptionKindsInOneBatch) {
  // All four corruption kinds plus valid entries in a single batch.
  const auto f = make_batch(8, {1, 3, 5, 6}, 5555);
  const auto got = ed25519_verify_batch(f.items());
  ASSERT_EQ(got.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(got[i], ed25519_verify(f.pks[i], f.msgs[i], f.sigs[i])) << i;
    EXPECT_EQ(got[i], i != 1 && i != 3 && i != 5 && i != 6) << i;
  }
}

TEST(Ed25519Batch, AllInvalidAndEmpty) {
  EXPECT_TRUE(ed25519_verify_batch({}).empty());
  const auto f = make_batch(4, {0, 1, 2, 3}, 6666);
  const auto got = ed25519_verify_batch(f.items());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FALSE(got[i]) << i;
}

TEST(Ed25519Batch, CountsOneVerifyPerItemOnFastPath) {
  const auto f = make_batch(8, {}, 7777);
  const std::uint64_t before = ed25519_verify_calls();
  const auto got = ed25519_verify_batch(f.items());
  const std::uint64_t after = ed25519_verify_calls();
  for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(got[i]);
  // The combined equation replaced 8 scalar verifies; the counter still
  // accounts one logical verification per signature.
  EXPECT_EQ(after - before, 8u);
}

TEST(Ed25519Batch, CountsOneVerifyPerItemIncludingRejections) {
  // Items settled by the canonicality pre-filter, items settled by the
  // per-item fallback after a failed combined equation, and clean items
  // must each account exactly one verification — the counter reads the
  // same whether a workload arrives batched or one scalar verify at a time.
  const std::vector<std::vector<std::size_t>> corruption_sets = {
      {2}, {1, 3, 5, 6}, {0, 1, 2, 3, 4, 5, 6, 7}};
  std::uint64_t seed = 8800;
  for (const auto& corrupt : corruption_sets) {
    const auto f = make_batch(8, corrupt, seed++);
    const std::uint64_t before = ed25519_verify_calls();
    (void)ed25519_verify_batch(f.items());
    EXPECT_EQ(ed25519_verify_calls() - before, 8u)
        << "corrupt positions: " << corrupt.size();
  }
}

// ---- Cofactored rule: small-order components --------------------------------
//
// Both verification paths use the cofactored group equation
// [8]([S]B - [k]A - R) == identity. These tests pin the property that
// motivates it: for inputs whose verification residue lands in the 8-torsion
// subgroup, a cofactorless scalar check and a random-linear-combination
// batch check provably DISAGREE (the batch term z*[k]T vanishes whenever
// z*k = 0 mod 8, a condition an adversarial sync peer grinding the burst
// transcript hits in ~8 tries) — which would split admission decisions
// between sync-ingested and gossip-ingested replicas. Under the cofactored
// rule the two paths agree on every input.

// Finds a point with a nontrivial 8-torsion component: decompress random
// candidates until one works, then multiply by L. The full curve group is
// Z_L x Z_8, so [L]P lies in the torsion subgroup and is nontrivial for 7 of
// 8 random P.
EdPoint nontrivial_torsion_point(std::uint64_t seed) {
  // Group order L, 32 little-endian bytes.
  const Bytes L = from_hex(
      "edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");
  const auto identity_enc = EdPoint::identity().compress();
  Csprng rng(seed);
  for (;;) {
    const auto cand = rng.fixed<32>();
    const auto P = EdPoint::decompress(cand.view());
    if (!P) continue;
    const auto T = P->scalar_mul(L);
    if (!(T.compress() == identity_enc)) return T;
  }
}

struct TorsionFixture {
  Ed25519PublicKey pk;
  Bytes msg;
  Ed25519Signature sig;
};

// Crafts a signature whose verification residue is pure torsion: for
// A' = A + T (T nontrivial torsion, a the secret scalar of A), pick nonce r,
// R = [r]B, k = H(R ‖ A' ‖ msg), S = r + k*a mod L. Then
// [S]B - [k]A' - R = -[k]T, so the cofactored rule accepts while a
// cofactorless check would accept only when [k]T happens to vanish.
TorsionFixture make_torsioned(std::uint64_t seed) {
  Csprng rng(seed);
  const auto kp = Ed25519KeyPair::from_seed(rng.fixed<32>());
  // Re-derive the clamped secret scalar exactly as key expansion does.
  const auto h = Sha512::hash(kp.seed.view());
  FixedBytes<32> a;
  std::memcpy(a.data.data(), h.data.data(), 32);
  a[0] &= 248;
  a[31] &= 127;
  a[31] |= 64;

  const auto T = nontrivial_torsion_point(seed ^ 0x7052);
  const auto A = EdPoint::decompress(kp.public_key.view());
  TorsionFixture f;
  f.pk = A->add(T).compress();
  f.msg = rng.bytes(33);

  const Bytes nonce64 = rng.bytes(64);
  const auto r = sc_reduce64(ByteView{nonce64});
  const auto R = EdPoint::base().scalar_mul(r.view()).compress();
  const auto k = sc_reduce64(
      Sha512::hash_concat({R.view(), f.pk.view(), ByteView{f.msg}}).view());
  const auto S = sc_muladd(k.view(), a.view(), r.view());
  std::memcpy(f.sig.data.data(), R.data.data(), 32);
  std::memcpy(f.sig.data.data() + 32, S.data.data(), 32);
  return f;
}

TEST(Ed25519Cofactored, TorsionedKeyAgreesAcrossScalarAndBatchPaths) {
  const auto tf = make_torsioned(9100);
  EXPECT_TRUE(ed25519_verify(tf.pk, tf.msg, tf.sig));

  // Embedded among honest signatures at every position, the batch result
  // must match the scalar result item for item.
  for (std::size_t pos = 0; pos < 4; ++pos) {
    auto f = make_batch(4, {}, 9200 + pos);
    f.pks[pos] = tf.pk;
    f.msgs[pos] = tf.msg;
    f.sigs[pos] = tf.sig;
    const auto got = ed25519_verify_batch(f.items());
    ASSERT_EQ(got.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_EQ(got[i], ed25519_verify(f.pks[i], f.msgs[i], f.sigs[i]))
          << "pos=" << pos << " i=" << i;
  }
}

TEST(Ed25519Cofactored, CorruptTorsionedEntryRejectedOnBothPaths) {
  auto tf = make_torsioned(9300);
  tf.sig[40] ^= 0x04;  // break S: the residue is no longer pure torsion
  EXPECT_FALSE(ed25519_verify(tf.pk, tf.msg, tf.sig));

  auto f = make_batch(3, {}, 9301);
  f.pks[1] = tf.pk;
  f.msgs[1] = tf.msg;
  f.sigs[1] = tf.sig;
  const auto got = ed25519_verify_batch(f.items());
  EXPECT_TRUE(got[0]);
  EXPECT_FALSE(got[1]);
  EXPECT_TRUE(got[2]);
}

TEST(Identity, DeterministicIsStable) {
  const auto a = Identity::deterministic(5);
  const auto b = Identity::deterministic(5);
  const auto c = Identity::deterministic(6);
  EXPECT_EQ(a.public_identity(), b.public_identity());
  EXPECT_FALSE(a.public_identity() == c.public_identity());
}

TEST(Identity, SignaturesVerifyAcrossIdentity) {
  const auto id = Identity::deterministic(9);
  const Bytes msg = to_bytes("tx payload");
  EXPECT_TRUE(ed25519_verify(id.public_identity().sign_key, msg, id.sign(msg)));
}

TEST(Identity, ShortIdIsPrefixOfKey) {
  const auto id = Identity::deterministic(1).public_identity();
  EXPECT_EQ(id.short_id(), id.sign_key.hex().substr(0, 8));
}

}  // namespace
}  // namespace biot::crypto
