// SHA-256 / SHA-512 / HMAC / HKDF / ChaCha20 CSPRNG against published vectors
// (FIPS 180-4, RFC 4231, RFC 5869, RFC 8439).
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/csprng.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha256_midstate.h"
#include "crypto/sha512.h"

namespace biot::crypto {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(Sha256::hash({}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::hash(to_bytes("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(Sha256::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")).hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finish().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog etc");
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.update(ByteView{data.data(), split});
    h.update(ByteView{data.data() + split, data.size() - split});
    EXPECT_EQ(h.finish(), Sha256::hash(data)) << "split=" << split;
  }
}

TEST(Sha256, ExactBlockBoundaryLengths) {
  // 55/56/63/64/65 bytes cross the padding boundary cases.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes data(n, 0x5a);
    Sha256 one;
    one.update(data);
    Sha256 two;
    for (auto b : data) two.update(ByteView{&b, 1});
    EXPECT_EQ(one.finish(), two.finish()) << "n=" << n;
  }
}

TEST(Sha256, ResetReusesObject) {
  Sha256 h;
  h.update(to_bytes("junk"));
  (void)h.finish();
  h.reset();
  h.update(to_bytes("abc"));
  EXPECT_EQ(h.finish().hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, HashConcatEqualsHashOfConcat) {
  const Bytes a = to_bytes("foo"), b = to_bytes("bar");
  EXPECT_EQ(Sha256::hash_concat({a, b}), Sha256::hash(to_bytes("foobar")));
}

TEST(Sha512, EmptyString) {
  EXPECT_EQ(Sha512::hash({}).hex(),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(Sha512::hash(to_bytes("abc")).hex(),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, LongTwoBlockMessage) {
  EXPECT_EQ(Sha512::hash(to_bytes(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")).hex(),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, MillionA) {
  Sha512 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finish().hex(),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
            "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

TEST(Sha512, BoundaryLengths) {
  for (std::size_t n : {111u, 112u, 127u, 128u, 129u, 239u, 240u, 256u}) {
    const Bytes data(n, 0xa5);
    Sha512 one;
    one.update(data);
    Sha512 two;
    for (auto b : data) two.update(ByteView{&b, 1});
    EXPECT_EQ(one.finish(), two.finish()) << "n=" << n;
  }
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hmac_sha256(key, to_bytes("Hi There")).hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2: short key "Jefe".
TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hmac_sha256(to_bytes("Jefe"),
                        to_bytes("what do ya want for nothing?")).hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hmac_sha256(key, data).hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size.
TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hmac_sha256(key, to_bytes(
                "Test Using Larger Than Block-Size Key - Hash Key First")).hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, ConcatMatchesFlat) {
  const Bytes key = to_bytes("k");
  const Bytes a = to_bytes("aa"), b = to_bytes("bb");
  EXPECT_EQ(hmac_sha256_concat(key, {a, b}), hmac_sha256(key, to_bytes("aabb")));
}

// RFC 5869 test case 1.
TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 test case 3: zero-length salt and info.
TEST(Hkdf, Rfc5869Case3) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, ExpandRejectsOversizedOutput) {
  const auto prk = hkdf_extract({}, to_bytes("x"));
  EXPECT_THROW(hkdf_expand(prk.view(), {}, 255 * 32 + 1), std::invalid_argument);
}

// RFC 8439 section 2.3.2 block function vector.
TEST(ChaCha20, Rfc8439BlockVector) {
  std::uint32_t state[16];
  state[0] = 0x61707865; state[1] = 0x3320646e;
  state[2] = 0x79622d32; state[3] = 0x6b206574;
  // key 00 01 02 ... 1f
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = static_cast<std::uint32_t>(4 * i) |
                   (static_cast<std::uint32_t>(4 * i + 1) << 8) |
                   (static_cast<std::uint32_t>(4 * i + 2) << 16) |
                   (static_cast<std::uint32_t>(4 * i + 3) << 24);
  }
  state[12] = 1;  // counter
  state[13] = 0x09000000;
  state[14] = 0x4a000000;
  state[15] = 0x00000000;

  std::uint8_t out[64];
  chacha20_block(state, out);
  EXPECT_EQ(to_hex(ByteView{out, 64}),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// ---- SHA-256 midstate + multi-buffer lanes ---------------------------------

TEST(Sha256Midstate, FinishMatchesStreamingForAllTailLengths) {
  Csprng rng(1234);
  for (std::size_t prefix_blocks : {1u, 2u, 3u}) {
    const Bytes prefix = rng.bytes(prefix_blocks * 64);
    const Sha256Midstate mid{ByteView{prefix}};
    for (std::size_t tail_len = 0; tail_len <= 55; ++tail_len) {
      const Bytes tail = rng.bytes(tail_len);
      Bytes whole = prefix;
      whole.insert(whole.end(), tail.begin(), tail.end());
      EXPECT_EQ(mid.finish(tail), Sha256::hash(whole))
          << "prefix_blocks=" << prefix_blocks << " tail_len=" << tail_len;
    }
  }
}

TEST(Sha256Midstate, MatchesKnownVectorThroughPowShape) {
  // The PoW message shape: 64-byte prefix + 8-byte tail (Eqn 6).
  const Bytes prefix(64, 0x42);
  const Bytes tail(8, 0x17);
  Bytes whole = prefix;
  whole.insert(whole.end(), tail.begin(), tail.end());
  EXPECT_EQ(Sha256Midstate{ByteView{prefix}}.finish(tail), Sha256::hash(whole));
}

TEST(Sha256Midstate, RejectsUnalignedPrefixAndOversizedTail) {
  EXPECT_THROW(Sha256Midstate{ByteView{Bytes(63, 0)}}, std::invalid_argument);
  EXPECT_THROW(Sha256Midstate{ByteView{Bytes(65, 0)}}, std::invalid_argument);
  const Sha256Midstate mid{ByteView{Bytes(64, 0)}};
  EXPECT_THROW((void)mid.finish(Bytes(56, 0)), std::invalid_argument);
}

TEST(Sha256Midstate, FinishManyMatchesBruteForceAndStreaming) {
  // Every count that exercises full lanes, partial remainder, and the
  // scalar path must be byte-identical to both the brute-force twin and
  // the streaming hasher.
  Csprng rng(77);
  const Bytes prefix = rng.bytes(64);
  const Sha256Midstate mid{ByteView{prefix}};
  for (std::size_t tail_len : {1u, 8u, 32u, 55u}) {
    for (std::size_t count = 1; count <= 17; ++count) {
      const Bytes tails = rng.bytes(tail_len * count);
      std::vector<Sha256Digest> fast(count), slow(count);
      mid.finish_many(tails.data(), tail_len, count, fast.data());
      mid.finish_many_brute_force(tails.data(), tail_len, count, slow.data());
      for (std::size_t i = 0; i < count; ++i) {
        Bytes whole = prefix;
        whole.insert(whole.end(), tails.begin() + i * tail_len,
                     tails.begin() + (i + 1) * tail_len);
        EXPECT_EQ(fast[i], slow[i]) << "count=" << count << " i=" << i;
        EXPECT_EQ(fast[i], Sha256::hash(whole))
            << "tail_len=" << tail_len << " count=" << count << " i=" << i;
      }
    }
  }
}

TEST(Sha256Midstate, LaneCountIsSane) {
  const auto lanes = sha256_lanes();
  EXPECT_TRUE(lanes == 1 || lanes == 4 || lanes == 8);
  EXPECT_LE(lanes, kSha256MaxLanes);
}

TEST(Csprng, DeterministicWithSeed) {
  Csprng a(99), b(99);
  EXPECT_EQ(a.bytes(100), b.bytes(100));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Csprng, DifferentSeedsDiffer) {
  Csprng a(1), b(2);
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Csprng, FillSpansBlockBoundaries) {
  Csprng a(7);
  const Bytes big = a.bytes(200);
  Csprng b(7);
  Bytes parts;
  for (std::size_t taken = 0; taken < 200;) {
    const std::size_t n = std::min<std::size_t>(33, 200 - taken);
    const Bytes piece = b.bytes(n);
    parts.insert(parts.end(), piece.begin(), piece.end());
    taken += n;
  }
  EXPECT_EQ(big, parts);
}

TEST(Csprng, OsSeededStreamsDiffer) {
  Csprng a, b;
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

}  // namespace
}  // namespace biot::crypto
