// Trace-driven workload tests: CSV parsing, round-trips, replay through the
// full simulated stack.
#include <gtest/gtest.h>

#include <cstdio>

#include "factory/trace.h"
#include "node/gateway.h"
#include "node/light_node.h"
#include "node/manager.h"

namespace biot::factory {
namespace {

constexpr const char* kSampleCsv =
    "time,sensor,unit,value,status\n"
    "# comment lines are ignored\n"
    "0.5,temp-1,degC,21.5,ok\n"
    "1.0,vib-1,mm/s,1.2,ok\n"
    "1.5,temp-1,degC,21.7,ok\n"
    "2.0,temp-1,degC,99.9,fault\n";

TEST(Trace, ParsesCsvWithHeaderAndComments) {
  const auto trace = WorkloadTrace::parse(kSampleCsv);
  ASSERT_TRUE(trace) << trace.status().to_string();
  EXPECT_EQ(trace.value().events().size(), 4u);
  EXPECT_EQ(trace.value().duration(), 2.0);
  EXPECT_EQ(trace.value().sensors(),
            (std::vector<std::string>{"temp-1", "vib-1"}));
  EXPECT_EQ(trace.value().for_sensor("temp-1").size(), 3u);
}

TEST(Trace, RejectsMalformedLines) {
  EXPECT_FALSE(WorkloadTrace::parse("1.0,only,three,fields"));
  EXPECT_FALSE(WorkloadTrace::parse("not_a_number,s,u,1.0,ok"));
  EXPECT_FALSE(WorkloadTrace::parse("1.0,s,u,not_a_number,ok"));
}

TEST(Trace, EmptyInputIsEmptyTrace) {
  const auto trace = WorkloadTrace::parse("");
  ASSERT_TRUE(trace);
  EXPECT_TRUE(trace.value().empty());
}

TEST(Trace, CsvRoundTrip) {
  const auto trace = WorkloadTrace::parse(kSampleCsv);
  ASSERT_TRUE(trace);
  const auto again = WorkloadTrace::parse(trace.value().to_csv());
  ASSERT_TRUE(again);
  ASSERT_EQ(again.value().events().size(), trace.value().events().size());
  for (std::size_t i = 0; i < again.value().events().size(); ++i) {
    EXPECT_EQ(again.value().events()[i].reading.sensor,
              trace.value().events()[i].reading.sensor);
    EXPECT_DOUBLE_EQ(again.value().events()[i].reading.value,
                     trace.value().events()[i].reading.value);
  }
}

TEST(Trace, SortOrdersEvents) {
  WorkloadTrace trace;
  for (const double t : {3.0, 1.0, 2.0}) {
    TraceEvent e;
    e.time = t;
    e.reading.sensor = "s";
    trace.append(e);
  }
  trace.sort();
  EXPECT_EQ(trace.events()[0].time, 1.0);
  EXPECT_EQ(trace.events()[2].time, 3.0);
}

TEST(Trace, FileRoundTrip) {
  const std::string path = "/tmp/biot_test_trace.csv";
  const auto trace = synthesize_trace(4, 10.0, 0.5, 7);
  std::FILE* f = std::fopen(path.c_str(), "w");
  const auto csv = trace.to_csv();
  std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);

  const auto back = WorkloadTrace::load(path);
  ASSERT_TRUE(back);
  EXPECT_EQ(back.value().events().size(), trace.events().size());
  std::remove(path.c_str());
}

TEST(Trace, LoadMissingFileFails) {
  EXPECT_EQ(WorkloadTrace::load("/tmp/biot_no_such_trace.csv").code(),
            ErrorCode::kNotFound);
}

TEST(Trace, SynthesizedTraceCoversAllSensors) {
  const auto trace = synthesize_trace(4, 20.0, 1.0, 3);
  EXPECT_EQ(trace.sensors().size(), 4u);
  EXPECT_GE(trace.events().size(), 4u * 19);
}

TEST(TraceSensorTest, ReplaysRecordedValuesInOrder) {
  const auto trace = WorkloadTrace::parse(kSampleCsv);
  ASSERT_TRUE(trace);
  TraceSensor sensor("temp-1", trace.value().for_sensor("temp-1"));
  Rng rng(1);
  EXPECT_DOUBLE_EQ(sensor.sample(10.0, rng).value, 21.5);
  EXPECT_DOUBLE_EQ(sensor.sample(11.0, rng).value, 21.7);
  EXPECT_DOUBLE_EQ(sensor.sample(12.0, rng).value, 99.9);
  EXPECT_DOUBLE_EQ(sensor.sample(13.0, rng).value, 21.5);  // loops
}

TEST(TraceSensorTest, ReanchorsTimestamps) {
  const auto trace = WorkloadTrace::parse(kSampleCsv);
  TraceSensor sensor("temp-1", trace.value().for_sensor("temp-1"));
  Rng rng(1);
  EXPECT_DOUBLE_EQ(sensor.sample(42.0, rng).time, 42.0);
}

TEST(TraceSensorTest, EmptyEventsThrow) {
  EXPECT_THROW(TraceSensor("x", {}), std::invalid_argument);
}

TEST(TraceSensorTest, DrivesDeviceThroughFullStack) {
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.002), Rng(1));
  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto gateway_identity = crypto::Identity::deterministic(2);
  node::GatewayConfig gw_config;
  gw_config.credit.initial_difficulty = 4;
  node::Gateway gateway(1, gateway_identity,
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), network, gw_config);
  node::Manager manager(2, manager_identity, gateway, network);
  gateway.attach();
  manager.attach();

  node::LightNodeConfig dev_config;
  dev_config.profile.hash_rate_hz = 1e6;
  dev_config.collect_interval = 0.5;
  node::LightNode device(10, crypto::Identity::deterministic(100), 1, network,
                         dev_config);
  ASSERT_TRUE(manager.authorize({device.public_identity()}).is_ok());

  const auto trace = synthesize_trace(1, 30.0, 0.5, 9);
  auto sensor = std::make_shared<TraceSensor>("replay",
                                              trace.for_sensor(
                                                  trace.sensors().front()));
  Rng sensor_rng(5);
  device.set_data_source([sensor, &sched, rng = sensor_rng]() mutable {
    return sensor->sample(sched.now(), rng).encode();
  });
  device.start();
  sched.run_until(10.0);

  EXPECT_GT(device.stats().accepted, 10u);
  // Every on-chain payload decodes to a reading from the trace.
  for (const auto& id : gateway.tangle().arrival_order()) {
    const auto* rec = gateway.tangle().find(id);
    if (rec->tx.type != tangle::TxType::kData) continue;
    ASSERT_TRUE(SensorReading::decode(rec->tx.payload).is_ok());
  }
}

}  // namespace
}  // namespace biot::factory
