// Storage substrate tests: archive round-trip and corruption detection,
// tangle serialization/cold-start, snapshot state hashing and pruning.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "storage/archive.h"
#include "storage/snapshot.h"
#include "storage/tangle_io.h"
#include "test_util.h"

namespace biot::storage {
namespace {

using testutil::TxFactory;

/// RAII temp file path.
struct TempFile {
  std::string path;
  explicit TempFile(const char* tag)
      : path(std::string("/tmp/biot_test_") + tag + "_" +
             std::to_string(::getpid())) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

tangle::Tangle build_tangle(TxFactory& node, int txs) {
  tangle::Tangle tangle(tangle::Tangle::make_genesis());
  biot::Rng rng(1);
  for (int i = 0; i < txs; ++i) {
    const auto& order = tangle.arrival_order();
    const auto& p1 = order[rng.index(order.size())];
    const auto& p2 = order[rng.index(order.size())];
    const auto tx = node.make(p1, p2, 2, to_bytes("r" + std::to_string(i)),
                              0.5 * i);
    EXPECT_TRUE(tangle.add(tx, 0.5 * i).is_ok());
  }
  return tangle;
}

// ---- Archive -----------------------------------------------------------------

TEST(Archive, WriteReadRoundTrip) {
  TempFile file("archive");
  TxFactory node(1);
  const auto g = tangle::Tangle::make_genesis().id();

  {
    ArchiveWriter writer(file.path);
    for (int i = 0; i < 10; ++i) {
      const auto tx = node.make(g, g, 2);
      ASSERT_TRUE(writer.append(tx, 1.5 * i).is_ok());
    }
    EXPECT_EQ(writer.records_written(), 10u);
  }

  const auto back = read_archive(file.path);
  ASSERT_TRUE(back) << back.status().to_string();
  ASSERT_EQ(back.value().size(), 10u);
  EXPECT_EQ(back.value()[3].arrival, 4.5);
  EXPECT_EQ(back.value()[3].tx.sequence, 3u);
  EXPECT_TRUE(back.value()[3].tx.signature_valid());
}

TEST(Archive, AppendAcrossReopens) {
  TempFile file("archive_reopen");
  TxFactory node(2);
  const auto g = tangle::Tangle::make_genesis().id();
  {
    ArchiveWriter w(file.path);
    ASSERT_TRUE(w.append(node.make(g, g, 2), 0.0).is_ok());
  }
  {
    ArchiveWriter w(file.path);  // reopen: must not rewrite the header
    ASSERT_TRUE(w.append(node.make(g, g, 2), 1.0).is_ok());
  }
  const auto back = read_archive(file.path);
  ASSERT_TRUE(back);
  EXPECT_EQ(back.value().size(), 2u);
}

TEST(Archive, MissingFileIsNotFound) {
  EXPECT_EQ(read_archive("/tmp/biot_definitely_missing_archive").code(),
            ErrorCode::kNotFound);
}

TEST(Archive, CorruptionDetected) {
  TempFile file("archive_corrupt");
  TxFactory node(3);
  const auto g = tangle::Tangle::make_genesis().id();
  {
    ArchiveWriter w(file.path);
    ASSERT_TRUE(w.append(node.make(g, g, 2), 0.0).is_ok());
  }
  // Flip one byte in the middle of the record.
  std::FILE* f = std::fopen(file.path.c_str(), "r+b");
  std::fseek(f, 40, SEEK_SET);
  std::fputc(0x5a, f);
  std::fclose(f);

  const auto back = read_archive(file.path);
  EXPECT_FALSE(back);
}

TEST(Archive, TruncationDetected) {
  TempFile file("archive_trunc");
  TxFactory node(4);
  const auto g = tangle::Tangle::make_genesis().id();
  {
    ArchiveWriter w(file.path);
    ASSERT_TRUE(w.append(node.make(g, g, 2), 0.0).is_ok());
  }
  std::FILE* f = std::fopen(file.path.c_str(), "r+b");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(file.path.c_str(), size - 5), 0);
  EXPECT_FALSE(read_archive(file.path));
}

// ---- Tangle serialization -------------------------------------------------------

TEST(TangleIo, SerializeDeserializeRoundTrip) {
  TxFactory node(5);
  const auto tangle = build_tangle(node, 25);
  const Bytes wire = serialize_tangle(tangle);

  const auto back = deserialize_tangle(wire);
  ASSERT_TRUE(back) << back.status().to_string();
  EXPECT_EQ(back.value().size(), tangle.size());
  EXPECT_EQ(back.value().tips(), tangle.tips());
  EXPECT_EQ(back.value().genesis_id(), tangle.genesis_id());
  EXPECT_EQ(back.value().arrival_order(), tangle.arrival_order());
}

TEST(TangleIo, FileRoundTrip) {
  TempFile file("tangle");
  TxFactory node(6);
  const auto tangle = build_tangle(node, 10);
  ASSERT_TRUE(save_tangle(tangle, file.path).is_ok());
  const auto back = load_tangle(file.path);
  ASSERT_TRUE(back);
  EXPECT_EQ(back.value().size(), tangle.size());
}

TEST(TangleIo, DigestMismatchDetected) {
  TxFactory node(7);
  const auto tangle = build_tangle(node, 5);
  Bytes wire = serialize_tangle(tangle);
  wire[10] ^= 0x01;
  EXPECT_EQ(deserialize_tangle(wire).code(), ErrorCode::kVerifyFailed);
}

TEST(TangleIo, TamperedTransactionRejectedOnReload) {
  // Tamper with a transaction AND fix up the file digest: the per-tx
  // signature check during reconstruction must still catch it.
  TxFactory node(8);
  const auto tangle = build_tangle(node, 5);
  Bytes wire = serialize_tangle(tangle);
  Bytes body(wire.begin(), wire.end() - 32);
  body[body.size() / 2] ^= 0x01;
  const auto digest = crypto::Sha256::hash(body);
  Bytes forged = body;
  forged.insert(forged.end(), digest.begin(), digest.end());
  EXPECT_FALSE(deserialize_tangle(forged));
}

TEST(TangleIo, EmptyAndGarbageInputRejected) {
  EXPECT_FALSE(deserialize_tangle(Bytes{}));
  EXPECT_FALSE(deserialize_tangle(Bytes(100, 0xab)));
}

TEST(TangleIo, DotExportContainsTipsAndEdges) {
  TxFactory node(9);
  const auto tangle = build_tangle(node, 8);
  const std::string dot = to_dot(tangle);
  EXPECT_NE(dot.find("digraph tangle"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightgray"), std::string::npos);  // a tip
  EXPECT_NE(dot.find("->"), std::string::npos);                   // an edge
}

// ---- Snapshots -------------------------------------------------------------------

TEST(Snapshot, StateEncodeDecodeRoundTrip) {
  SnapshotState state;
  state.taken_at = 120.0;
  TxFactory a(10), b(11);
  state.balances.emplace_back(a.key(), 500);
  state.next_sequences.emplace_back(a.key(), 42);
  state.authorized.push_back(crypto::Identity::deterministic(12).public_identity());

  const auto back = SnapshotState::decode(state.encode());
  ASSERT_TRUE(back);
  EXPECT_EQ(back.value().taken_at, 120.0);
  ASSERT_EQ(back.value().balances.size(), 1u);
  EXPECT_EQ(back.value().balances[0].second, 500u);
  EXPECT_EQ(back.value().next_sequences[0].second, 42u);
  EXPECT_EQ(back.value().authorized.size(), 1u);
  EXPECT_EQ(back.value().state_hash(), state.state_hash());
}

TEST(Snapshot, StateHashIsOrderIndependentViaCapture) {
  tangle::Ledger ledger;
  TxFactory a(13), b(14);
  ledger.credit(a.key(), 100);
  ledger.credit(b.key(), 200);
  const auto id1 = crypto::Identity::deterministic(15).public_identity();
  const auto id2 = crypto::Identity::deterministic(16).public_identity();

  const auto s1 = capture_state(10.0, ledger, {a.key(), b.key()}, {id1, id2});
  const auto s2 = capture_state(10.0, ledger, {b.key(), a.key()}, {id2, id1});
  EXPECT_EQ(s1.state_hash(), s2.state_hash());
}

TEST(Snapshot, GenesisCommitsToState) {
  SnapshotState state;
  state.taken_at = 50.0;
  const auto genesis = make_snapshot_genesis(state);
  EXPECT_EQ(genesis.type, tangle::TxType::kGenesis);
  EXPECT_EQ(genesis.payload, state.state_hash().bytes());

  SnapshotState other = state;
  other.balances.emplace_back(tangle::AccountKey{}, 1);
  EXPECT_NE(make_snapshot_genesis(other).id(), genesis.id());
}

TEST(Snapshot, PruneSplitsAtCutoff) {
  TxFactory node(17);
  const auto tangle = build_tangle(node, 20);  // arrivals 0, 0.5, ..., 9.5

  tangle::Ledger ledger;
  const auto state = capture_state(10.0, ledger, {node.key()}, {});
  const auto result = prune(tangle, state, 5.0);

  EXPECT_EQ(result.archived.size(), 10u);   // arrivals 0..4.5
  EXPECT_EQ(result.retained, 10u);          // arrivals 5.0..9.5
  EXPECT_EQ(result.tangle.size(), 1u);      // fresh snapshot genesis only
  EXPECT_EQ(result.tangle.genesis_id(), make_snapshot_genesis(state).id());
}

TEST(Snapshot, ResumedTangleAcceptsNewTransactions) {
  TxFactory node(18);
  const auto old_tangle = build_tangle(node, 10);
  tangle::Ledger ledger;
  const auto state = capture_state(5.0, ledger, {node.key()}, {});
  auto result = prune(old_tangle, state, 100.0);

  // Devices re-anchor on the snapshot genesis and continue.
  const auto g = result.tangle.genesis_id();
  const auto tx = node.make(g, g, 2, {}, 101.0);
  EXPECT_TRUE(result.tangle.add(tx, 101.0).is_ok());
  EXPECT_EQ(result.tangle.size(), 2u);
}

TEST(Snapshot, ArchiveThenPrunePreservesEveryTransaction) {
  TempFile file("snapshot_archive");
  TxFactory node(19);
  const auto tangle = build_tangle(node, 12);
  tangle::Ledger ledger;
  const auto state = capture_state(6.0, ledger, {node.key()}, {});
  const auto result = prune(tangle, state, 3.0);

  {
    ArchiveWriter writer(file.path);
    for (const auto& id : result.archived) {
      const auto* rec = tangle.find(id);
      ASSERT_TRUE(writer.append(rec->tx, rec->arrival).is_ok());
    }
  }
  const auto archived = read_archive(file.path);
  ASSERT_TRUE(archived);
  EXPECT_EQ(archived.value().size(), result.archived.size());
  // Hot set + archive together cover the original tangle minus genesis.
  EXPECT_EQ(archived.value().size() + result.retained, tangle.size() - 1);
}

}  // namespace
}  // namespace biot::storage
