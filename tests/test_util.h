// Shared helpers for building valid (signed + mined) transactions in tests,
// plus the invariant-audit hooks (tangle/audit.h) the suites call at the end
// of scenario-building tests.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>

#include "consensus/pow.h"
#include "crypto/identity.h"
#include "tangle/audit.h"
#include "tangle/transaction.h"

namespace biot::testutil {

/// Runs the invariant auditor and fails the calling test on any violation.
/// Integration/restore suites call this unconditionally on every tangle
/// they build — an admission-path regression that corrupts incremental
/// state surfaces here even if no assertion looked at the damaged field.
inline void expect_audit_clean(const tangle::Tangle& tangle,
                               const tangle::AuditInputs& inputs = {}) {
  const auto report = tangle::audit(tangle, inputs);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

/// True when BIOT_AUDIT=1 (exported by the sanitizer CI jobs).
inline bool audit_env_enabled() {
  const char* value = std::getenv("BIOT_AUDIT");
  return value != nullptr && value[0] == '1';
}

/// Opt-in audit for the broader suites: the O(n * E) sweep only runs when
/// BIOT_AUDIT=1, so routine local runs stay fast while the sanitizer CI
/// jobs audit every tangle these call sites build.
inline void audit_if_enabled(const tangle::Tangle& tangle) {
  if (audit_env_enabled()) expect_audit_clean(tangle);
}

/// Builds correctly signed and mined transactions for one sender.
class TxFactory {
 public:
  explicit TxFactory(std::uint64_t identity_seed,
                     std::uint64_t nonce_offset = 0)
      : identity_(crypto::Identity::deterministic(identity_seed)),
        miner_(nonce_offset) {}

  const crypto::Identity& identity() const { return identity_; }
  crypto::Ed25519PublicKey key() const {
    return identity_.public_identity().sign_key;
  }
  std::uint64_t next_sequence() const { return sequence_; }

  tangle::Transaction make(const tangle::TxId& p1, const tangle::TxId& p2,
                           int difficulty = 4, Bytes payload = {},
                           TimePoint timestamp = 0.0) {
    tangle::Transaction tx;
    tx.type = tangle::TxType::kData;
    tx.sender = key();
    tx.parent1 = p1;
    tx.parent2 = p2;
    tx.sequence = sequence_++;
    tx.timestamp = timestamp;
    tx.difficulty = static_cast<std::uint8_t>(difficulty);
    tx.payload = std::move(payload);
    finalize(tx);
    return tx;
  }

  tangle::Transaction make_transfer(const tangle::TxId& p1,
                                    const tangle::TxId& p2,
                                    const tangle::AccountKey& to,
                                    std::uint64_t amount, int difficulty = 4) {
    auto tx = make(p1, p2, difficulty);
    tx.type = tangle::TxType::kTransfer;
    tx.transfer = tangle::Transfer{to, amount};
    finalize(tx);
    return tx;
  }

  /// Re-mines and re-signs after the caller mutated fields.
  void finalize(tangle::Transaction& tx) {
    const auto mined = miner_.mine(tx.parent1, tx.parent2, tx.difficulty);
    tx.nonce = mined->nonce;
    tx.signature = identity_.sign(tx.signing_bytes());
  }

 private:
  crypto::Identity identity_;
  consensus::Miner miner_;
  std::uint64_t sequence_ = 0;
};

}  // namespace biot::testutil
