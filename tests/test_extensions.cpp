// Tests for the future-work extensions: sensor data quality control
// (paper Section VIII) and gateway PoW offloading (remote attachToTangle).
#include <gtest/gtest.h>

#include "factory/quality.h"
#include "node/gateway.h"
#include "node/light_node.h"
#include "node/manager.h"

namespace biot {
namespace {

// ---- QualityMonitor ----------------------------------------------------------

factory::SensorReading reading(const char* sensor, double value) {
  factory::SensorReading r;
  r.sensor = sensor;
  r.unit = "degC";
  r.value = value;
  r.status = "ok";
  return r;
}

TEST(QualityMonitor, WarmupIsLenient) {
  factory::QualityMonitor monitor;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(monitor.score(reading("t", 20.0 + 0.1 * i)), 1.0);
  }
}

TEST(QualityMonitor, InBandReadingsScoreHigh) {
  factory::QualityMonitor monitor;
  Rng rng(1);
  for (int i = 0; i < 50; ++i)
    (void)monitor.score(reading("t", rng.gaussian(20.0, 0.5)));
  EXPECT_GT(monitor.score(reading("t", 20.3)), 0.8);
}

TEST(QualityMonitor, ExtremeOutlierScoresZero) {
  factory::QualityMonitor monitor;
  Rng rng(2);
  for (int i = 0; i < 50; ++i)
    (void)monitor.score(reading("t", rng.gaussian(20.0, 0.5)));
  EXPECT_EQ(monitor.score(reading("t", 900.0)), 0.0);
  const auto* stats = monitor.stats("t");
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->outliers, 1u);
}

TEST(QualityMonitor, OutlierDoesNotPoisonBaseline) {
  factory::QualityMonitor monitor;
  Rng rng(3);
  for (int i = 0; i < 100; ++i)
    (void)monitor.score(reading("t", rng.gaussian(20.0, 0.5)));
  // One wild spike (winsorized update), then normal readings stay in-band.
  (void)monitor.score(reading("t", 5000.0));
  EXPECT_GT(monitor.score(reading("t", 20.1)), 0.5);
}

TEST(QualityMonitor, StreamsAreIndependent) {
  factory::QualityMonitor monitor;
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    (void)monitor.score(reading("cold", rng.gaussian(4.0, 0.2)));
    (void)monitor.score(reading("hot", rng.gaussian(200.0, 5.0)));
  }
  // 200 degC is normal for "hot" but absurd for "cold".
  EXPECT_GT(monitor.score(reading("hot", 201.0)), 0.8);
  EXPECT_EQ(monitor.score(reading("cold", 201.0)), 0.0);
}

TEST(QualityMonitor, InterleavedFaultsDoNotInflateTheBand) {
  // A sensor alternating healthy/garbage must keep being flagged: outliers
  // must not feed the variance estimate (the classic self-masking bug).
  factory::QualityMonitor monitor;
  Rng rng(7);
  for (int i = 0; i < 100; ++i)
    (void)monitor.score(reading("t", rng.gaussian(20.0, 0.5)));
  int flagged = 0, faults = 0;
  for (int i = 0; i < 200; ++i) {
    const bool fault = i % 4 == 0;  // every 4th reading is garbage
    const double v = fault ? 1e6 : rng.gaussian(20.0, 0.5);
    const double s = monitor.score(reading("t", v));
    if (fault) {
      ++faults;
      if (s <= 0.0) ++flagged;
    }
  }
  EXPECT_EQ(flagged, faults);  // every single fault caught
  EXPECT_EQ(monitor.stats("t")->regime_changes, 0u);
}

TEST(QualityMonitor, RegimeChangeCounterTracksRelearn) {
  factory::QualityPolicy policy;
  policy.regime_change_after = 10;
  factory::QualityMonitor monitor(policy);
  Rng rng(8);
  for (int i = 0; i < 50; ++i)
    (void)monitor.score(reading("t", rng.gaussian(20.0, 0.5)));
  for (int i = 0; i < 15; ++i) (void)monitor.score(reading("t", 500.0));
  ASSERT_NE(monitor.stats("t"), nullptr);
  EXPECT_EQ(monitor.stats("t")->regime_changes, 1u);
}

TEST(QualityMonitor, AdaptsToRegimeChangeEventually) {
  factory::QualityPolicy policy;
  policy.ewma_alpha = 0.2;  // fast learner for the test
  factory::QualityMonitor monitor(policy);
  Rng rng(5);
  for (int i = 0; i < 50; ++i)
    (void)monitor.score(reading("t", rng.gaussian(20.0, 0.5)));
  // The process genuinely moves to a new setpoint.
  for (int i = 0; i < 200; ++i)
    (void)monitor.score(reading("t", rng.gaussian(26.0, 0.5)));
  EXPECT_GT(monitor.score(reading("t", 26.0)), 0.5);
}

// ---- Gateway quality integration -------------------------------------------------

class ExtensionSimTest : public ::testing::Test {
 protected:
  ExtensionSimTest()
      : manager_identity_(crypto::Identity::deterministic(1)),
        gateway_identity_(crypto::Identity::deterministic(2)),
        network_(sched_, std::make_unique<sim::FixedLatency>(0.002), Rng(3)),
        gateway_(1, gateway_identity_,
                 manager_identity_.public_identity().sign_key,
                 tangle::Tangle::make_genesis(), network_, gateway_config()),
        manager_(2, manager_identity_, gateway_, network_) {
    gateway_.attach();
    manager_.attach();
  }

  static node::GatewayConfig gateway_config() {
    node::GatewayConfig c;
    c.credit.initial_difficulty = 4;
    c.credit.max_difficulty = 8;
    return c;
  }

  node::LightNodeConfig device_config() {
    node::LightNodeConfig c;
    c.profile.hash_rate_hz = 1e6;
    c.collect_interval = 0.5;
    return c;
  }

  sim::Scheduler sched_;
  crypto::Identity manager_identity_;
  crypto::Identity gateway_identity_;
  sim::Network network_;
  node::Gateway gateway_;
  node::Manager manager_;
};

TEST_F(ExtensionSimTest, GarbageSensorGetsPunished) {
  auto config = device_config();
  node::LightNode device(10, crypto::Identity::deterministic(100), 1, network_,
                         config);
  ASSERT_TRUE(manager_.authorize({device.public_identity()}).is_ok());

  // Device emits a plausible stream, then breaks and emits garbage.
  device.set_data_source([this, n = 0]() mutable {
    factory::SensorReading r;
    r.sensor = "temp";
    r.unit = "degC";
    r.time = sched_.now();
    r.value = (n++ < 60) ? 20.0 + 0.01 * n : 1.0e7;  // broken sensor
    r.status = "ok";
    return r.encode();
  });

  auto monitor = std::make_shared<factory::QualityMonitor>();
  gateway_.set_quality_inspector(
      [monitor](const tangle::Transaction& tx) -> std::optional<double> {
        if (tx.payload_encrypted) return std::nullopt;
        const auto reading = factory::SensorReading::decode(tx.payload);
        if (!reading) return 0.0;  // undecodable payload = worst quality
        return monitor->score(reading.value());
      });

  device.start();
  sched_.run_until(60.0);

  EXPECT_GT(gateway_.stats().poor_quality_detected, 0u);
  // Punished through the same credit pipeline as protocol attacks.
  EXPECT_GT(gateway_.required_difficulty(device.public_identity().sign_key),
            gateway_config().credit.initial_difficulty);
}

TEST_F(ExtensionSimTest, HealthySensorUnaffectedByInspector) {
  node::LightNode device(11, crypto::Identity::deterministic(101), 1, network_,
                         device_config());
  ASSERT_TRUE(manager_.authorize({device.public_identity()}).is_ok());
  device.set_data_source([this, n = 0]() mutable {
    factory::SensorReading r;
    r.sensor = "temp";
    r.unit = "degC";
    r.time = sched_.now();
    r.value = 20.0 + 0.05 * ((n++ % 10) - 5);
    r.status = "ok";
    return r.encode();
  });

  auto monitor = std::make_shared<factory::QualityMonitor>();
  gateway_.set_quality_inspector(
      [monitor](const tangle::Transaction& tx) -> std::optional<double> {
        if (tx.payload_encrypted) return std::nullopt;
        const auto reading = factory::SensorReading::decode(tx.payload);
        if (!reading) return 0.0;
        return monitor->score(reading.value());
      });

  device.start();
  sched_.run_until(30.0);

  EXPECT_EQ(gateway_.stats().poor_quality_detected, 0u);
  EXPECT_LE(gateway_.required_difficulty(device.public_identity().sign_key),
            gateway_config().credit.initial_difficulty);
}

TEST_F(ExtensionSimTest, EncryptedPayloadsSkipInspection) {
  auto config = device_config();
  node::LightNode device(12, crypto::Identity::deterministic(102), 1, network_,
                         config);
  ASSERT_TRUE(manager_.authorize({device.public_identity()}).is_ok());
  crypto::Csprng key_rng(9);
  device.install_symmetric_key(key_rng.fixed<32>());

  bool saw_encrypted = false;
  gateway_.set_quality_inspector(
      [&saw_encrypted](const tangle::Transaction& tx) -> std::optional<double> {
        if (tx.payload_encrypted) {
          saw_encrypted = true;
          return std::nullopt;  // cannot judge ciphertext
        }
        return 0.0;  // would punish anything in the clear
      });

  device.start();
  sched_.run_until(10.0);

  EXPECT_TRUE(saw_encrypted);
  EXPECT_EQ(gateway_.stats().poor_quality_detected, 0u);
}

// ---- PoW offloading -----------------------------------------------------------

TEST_F(ExtensionSimTest, OffloadedPowAttachesTransactions) {
  auto config = device_config();
  config.offload_pow = true;
  node::LightNode device(13, crypto::Identity::deterministic(103), 1, network_,
                         config);
  ASSERT_TRUE(manager_.authorize({device.public_identity()}).is_ok());
  device.start();
  sched_.run_until(10.0);

  EXPECT_GT(device.stats().accepted, 10u);
  EXPECT_EQ(device.stats().rejected, 0u);
  // The device spent zero simulated PoW time.
  for (const auto d : device.stats().pow_durations) EXPECT_EQ(d, 0.0);
  // Attached transactions carry gateway-mined nonces that satisfy Eqn 6.
  for (const auto& id : gateway_.tangle().arrival_order()) {
    const auto* rec = gateway_.tangle().find(id);
    if (rec->tx.type == tangle::TxType::kData) {
      EXPECT_TRUE(tangle::pow_valid(rec->tx));
    }
  }
}

TEST_F(ExtensionSimTest, OffloadedDeviceIsFasterThanLocalPi) {
  auto local = device_config();
  local.profile.hash_rate_hz = 20.0;  // very constrained local miner
  node::LightNode miner_device(14, crypto::Identity::deterministic(104), 1,
                               network_, local);

  auto offload = device_config();
  offload.offload_pow = true;
  node::LightNode offload_device(15, crypto::Identity::deterministic(105), 1,
                                 network_, offload);

  ASSERT_TRUE(manager_
                  .authorize({miner_device.public_identity(),
                              offload_device.public_identity()})
                  .is_ok());
  miner_device.start();
  offload_device.start();
  sched_.run_until(30.0);

  EXPECT_GT(offload_device.stats().accepted, miner_device.stats().accepted);
}

TEST_F(ExtensionSimTest, OffloadStillSubjectToAuthorization) {
  auto config = device_config();
  config.offload_pow = true;
  node::LightNode sybil(16, crypto::Identity::deterministic(666), 1, network_,
                        config);
  sybil.start();  // never authorized
  sched_.run_until(5.0);

  EXPECT_EQ(sybil.stats().accepted, 0u);
  EXPECT_EQ(gateway_.tangle().size(), 1u);
}

TEST_F(ExtensionSimTest, OffloadedContentStillTamperProof) {
  // The gateway mines the nonce but cannot alter signed content: mutate the
  // payload in handle_attach's position by crafting a tx whose signature is
  // broken and confirm rejection.
  auto config = device_config();
  config.offload_pow = true;
  node::LightNode device(17, crypto::Identity::deterministic(106), 1, network_,
                         config);
  ASSERT_TRUE(manager_.authorize({device.public_identity()}).is_ok());

  // Hand-craft a tampered attach request.
  const auto [t1, t2] = gateway_.select_tips();
  tangle::Transaction tx;
  tx.type = tangle::TxType::kData;
  tx.sender = device.public_identity().sign_key;
  tx.parent1 = t1;
  tx.parent2 = t2;
  tx.sequence = 0;
  tx.timestamp = 0.0;
  tx.difficulty = 4;
  tx.payload = to_bytes("original");
  tx.signature = device.identity().sign(tx.signing_bytes());
  tx.payload = to_bytes("tampered");  // content changed after signing

  node::RpcMessage msg;
  msg.type = node::MsgType::kAttachRequest;
  msg.request_id = 1;
  msg.sender_key = tx.sender;
  msg.body = tx.encode();
  network_.send(99, 1, msg.encode());
  sched_.run();

  EXPECT_EQ(gateway_.tangle().size(), 2u);  // genesis + auth tx only
}

}  // namespace
}  // namespace biot
