// Offline-first suite: the store-and-forward Outbox (bounded queue, both
// overflow policies, settlement keyed on (issuer, seq), digest-framed
// persistence), the strict-parse offline codecs, the IoTLogBlock-style
// countersigned exchange between dark devices, the reconnect drain path, the
// probe de-synchronization regression, and crash-mid-drain durability.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <unordered_map>
#include <vector>

#include "factory/scenario.h"
#include "node/convergence.h"
#include "node/offline.h"
#include "node/outbox.h"
#include "test_util.h"

namespace biot {
namespace {

using node::OfflineEnvelope;
using node::OfflineKey;
using node::OfflineReceipt;
using node::OfflineRecord;
using node::Outbox;
using node::OutboxConfig;
using node::SettleKind;

OfflineRecord make_record(const crypto::Identity& issuer, std::uint64_t seq,
                          Bytes payload = to_bytes("reading")) {
  OfflineRecord record;
  record.issuer = issuer.public_identity().sign_key;
  record.outbox_seq = seq;
  record.issued_at = 1.5;
  record.payload = std::move(payload);
  record.signature = issuer.sign(record.signing_bytes());
  return record;
}

OfflineReceipt make_receipt(const crypto::Identity& witness,
                            const OfflineRecord& record) {
  OfflineReceipt receipt;
  receipt.witness = witness.public_identity().sign_key;
  receipt.record_digest = record.digest();
  receipt.witnessed_at = 2.0;
  receipt.signature = witness.sign(receipt.signing_bytes());
  return receipt;
}

// ---- Codec strict-parse -----------------------------------------------------

TEST(OfflineCodec, RecordRoundTripsAndAuthenticates) {
  const auto issuer = crypto::Identity::deterministic(21);
  const auto record = make_record(issuer, 7);
  ASSERT_TRUE(record.verify());

  const auto decoded = OfflineRecord::decode(record.encode());
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_TRUE(decoded.value().issuer == record.issuer);
  EXPECT_EQ(decoded.value().outbox_seq, 7u);
  EXPECT_EQ(decoded.value().payload, record.payload);
  EXPECT_TRUE(decoded.value().verify());
  EXPECT_TRUE(decoded.value().digest() == record.digest());

  // A tampered payload still decodes but no longer authenticates.
  auto tampered = decoded.value();
  tampered.payload[0] ^= 0xff;
  EXPECT_FALSE(tampered.verify());
}

TEST(OfflineCodec, RecordRejectsTruncationAndTrailingBytes) {
  const auto record = make_record(crypto::Identity::deterministic(22), 0);
  auto wire = record.encode();
  for (std::size_t cut = 0; cut < wire.size(); cut += 13) {
    EXPECT_FALSE(OfflineRecord::decode(ByteView(wire.data(), cut)))
        << "accepted truncation at " << cut;
  }
  wire.push_back(0);
  EXPECT_FALSE(OfflineRecord::decode(wire));
}

TEST(OfflineCodec, ReceiptRoundTripsAndRejectsForgery) {
  const auto issuer = crypto::Identity::deterministic(23);
  const auto witness = crypto::Identity::deterministic(24);
  const auto record = make_record(issuer, 3);
  const auto receipt = make_receipt(witness, record);
  ASSERT_TRUE(receipt.verify());

  const auto decoded = OfflineReceipt::decode(receipt.encode());
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_TRUE(decoded.value().record_digest == record.digest());
  EXPECT_TRUE(decoded.value().verify());

  auto wire = receipt.encode();
  wire.push_back(0);
  EXPECT_FALSE(OfflineReceipt::decode(wire));

  // A receipt re-bound to a different record must not verify.
  auto forged = receipt;
  forged.record_digest =
      make_record(issuer, 4).digest();
  EXPECT_FALSE(forged.verify());
}

TEST(OfflineCodec, EnvelopeMagicGatesTheDecode) {
  const auto issuer = crypto::Identity::deterministic(25);
  const auto witness = crypto::Identity::deterministic(26);
  const auto record = make_record(issuer, 9);

  const OfflineEnvelope bare{record, std::nullopt};
  const auto bare_wire = bare.encode();
  ASSERT_TRUE(OfflineEnvelope::is_offline_payload(bare_wire));
  const auto bare_back = OfflineEnvelope::decode(bare_wire);
  ASSERT_TRUE(bare_back) << bare_back.status().to_string();
  EXPECT_FALSE(bare_back.value().receipt.has_value());
  EXPECT_EQ(bare_back.value().record.outbox_seq, 9u);

  const OfflineEnvelope carried{record, make_receipt(witness, record)};
  const auto carried_back = OfflineEnvelope::decode(carried.encode());
  ASSERT_TRUE(carried_back);
  ASSERT_TRUE(carried_back.value().receipt.has_value());
  EXPECT_TRUE(carried_back.value().receipt->verify());

  // Ordinary sensor payloads never look like envelopes.
  EXPECT_FALSE(OfflineEnvelope::is_offline_payload(to_bytes("temp=21.4")));
  EXPECT_FALSE(OfflineEnvelope::is_offline_payload({}));
}

// ---- Outbox ----------------------------------------------------------------

TEST(Outbox, DropOldestShedsTheHeadAndCounts) {
  const auto issuer = crypto::Identity::deterministic(31);
  OutboxConfig config;
  config.capacity = 3;
  config.overflow = OutboxConfig::OverflowPolicy::kDropOldest;
  Outbox outbox(config);

  for (int i = 0; i < 5; ++i)
    EXPECT_TRUE(outbox.enqueue(make_record(issuer, outbox.next_seq()), 0.0));

  EXPECT_EQ(outbox.size(), 3u);
  EXPECT_EQ(outbox.stats().dropped.value(), 2u);
  // Freshest data wins: sequences 2, 3, 4 survive.
  EXPECT_EQ(outbox.entries().front().record.outbox_seq, 2u);
  EXPECT_EQ(outbox.entries().back().record.outbox_seq, 4u);
}

TEST(Outbox, RejectNewKeepsTheEarliestRecords) {
  const auto issuer = crypto::Identity::deterministic(32);
  OutboxConfig config;
  config.capacity = 3;
  config.overflow = OutboxConfig::OverflowPolicy::kRejectNew;
  Outbox outbox(config);

  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(outbox.enqueue(make_record(issuer, outbox.next_seq()), 0.0));
  for (int i = 0; i < 2; ++i)
    EXPECT_FALSE(outbox.enqueue(make_record(issuer, outbox.next_seq()), 0.0));

  EXPECT_EQ(outbox.size(), 3u);
  EXPECT_EQ(outbox.stats().dropped.value(), 2u);
  // Audit-log shape: the earliest records survive.
  EXPECT_EQ(outbox.entries().front().record.outbox_seq, 0u);
  EXPECT_EQ(outbox.entries().back().record.outbox_seq, 2u);
}

TEST(Outbox, SettlementIsKeyedOnIssuerAndSequence) {
  // A witness's outbox carries its own records AND evidence copies from a
  // peer whose sequence space overlaps: settling (peer, 0) must not touch
  // (own, 0).
  const auto own = crypto::Identity::deterministic(33);
  const auto peer = crypto::Identity::deterministic(34);
  Outbox outbox;
  ASSERT_TRUE(outbox.enqueue(make_record(own, 0), 1.0));
  ASSERT_TRUE(outbox.enqueue(make_record(peer, 0), 1.0));

  outbox.settle(peer.public_identity().sign_key, 0, SettleKind::kAdmitted, 2.0);
  ASSERT_EQ(outbox.size(), 1u);
  EXPECT_TRUE(outbox.entries().front().record.issuer ==
              own.public_identity().sign_key);
  EXPECT_EQ(outbox.stats().drained.value(), 1u);

  // Settling an already-gone key is a no-op (stale drain result).
  outbox.settle(peer.public_identity().sign_key, 0, SettleKind::kAdmitted, 3.0);
  EXPECT_EQ(outbox.stats().drained.value(), 1u);
  EXPECT_EQ(outbox.settled().size(), 1u);
  EXPECT_EQ(outbox.settled().front().seq, 0u);
  EXPECT_TRUE(outbox.settled().front().issuer ==
              peer.public_identity().sign_key);
}

TEST(Outbox, SerializeRestoreRoundTripsQueueSequenceAndSettlementLog) {
  const auto issuer = crypto::Identity::deterministic(35);
  const auto witness = crypto::Identity::deterministic(36);
  Outbox outbox;
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(
        outbox.enqueue(make_record(issuer, outbox.next_seq()), 0.5 * i));
  ASSERT_TRUE(
      outbox.attach_receipt(make_receipt(witness, outbox.entries()[1].record)));
  outbox.settle(issuer.public_identity().sign_key, 0, SettleKind::kAdmitted,
                9.0);
  outbox.settle(issuer.public_identity().sign_key, 3, SettleKind::kDuplicate,
                9.5);

  const auto snapshot = outbox.serialize();
  Outbox restored;
  ASSERT_TRUE(restored.restore(snapshot).is_ok());

  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.entries()[0].record.outbox_seq, 1u);
  ASSERT_TRUE(restored.entries()[0].receipt.has_value());
  EXPECT_TRUE(restored.entries()[0].receipt->verify());
  EXPECT_EQ(restored.entries()[1].record.outbox_seq, 2u);
  EXPECT_FALSE(restored.entries()[1].receipt.has_value());
  ASSERT_EQ(restored.settled().size(), 2u);
  EXPECT_EQ(restored.settled()[0].kind, SettleKind::kAdmitted);
  EXPECT_EQ(restored.settled()[1].kind, SettleKind::kDuplicate);
  // The sequence counter survives: a restarted device never reuses a slot.
  EXPECT_EQ(restored.next_seq(), 4u);
}

TEST(Outbox, RestoreRejectsCorruptSnapshots) {
  const auto issuer = crypto::Identity::deterministic(37);
  Outbox outbox;
  ASSERT_TRUE(outbox.enqueue(make_record(issuer, outbox.next_seq()), 0.0));
  auto snapshot = outbox.serialize();

  auto flipped = snapshot;
  flipped[flipped.size() / 2] ^= 0x01;
  Outbox victim;
  EXPECT_FALSE(victim.restore(flipped).is_ok());
  EXPECT_TRUE(victim.empty());  // a rejected snapshot must not half-apply

  auto truncated = snapshot;
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(victim.restore(truncated).is_ok());

  EXPECT_TRUE(victim.restore(snapshot).is_ok());
  EXPECT_EQ(victim.size(), 1u);
}

// ---- Full-stack offline scenarios ------------------------------------------

factory::ScenarioConfig offline_config(std::uint64_t seed, int gateways = 2,
                                       int devices = 4) {
  factory::ScenarioConfig config;
  config.num_gateways = gateways;
  config.num_devices = devices;
  config.distribute_keys = false;
  config.wire_exchange_ring = true;
  config.seed = seed;
  config.device.collect_interval = 0.5;
  config.device.request_timeout = 1.0;
  config.device.failback_probe_interval = 1.0;
  config.device.probe_interval_max = 5.0;
  config.gateway.sync_interval = 1.0;
  config.gateway.credit.initial_difficulty = 6;  // keep host PoW cheap
  return config;
}

void set_fleet_radio(factory::SmartFactory& factory, bool on) {
  for (std::size_t d = 0; d < factory.device_count(); ++d)
    factory.network().set_radio(factory.device(d).node_id(), on);
}

node::ConvergenceReport check_convergence(factory::SmartFactory& factory) {
  node::ConvergenceChecker checker;
  for (std::size_t g = 0; g < factory.gateway_count(); ++g)
    checker.add_replica(&factory.gateway(g));
  for (std::size_t d = 0; d < factory.device_count(); ++d)
    checker.add_device(&factory.device(d));
  return checker.check();
}

TEST(OfflineScenario, DarkFleetCountersignsQueuesAndDrainsToConvergence) {
  factory::SmartFactory factory(offline_config(41));
  factory.bootstrap();
  factory.run_until(3.0);

  // The whole fleet goes dark: every device exhausts failover, enters
  // offline mode, and keeps collecting into its outbox while countersigning
  // for its ring neighbours over the still-working short-range links.
  set_fleet_radio(factory, false);
  factory.run_until(20.0);

  std::uint64_t queued = 0, offers = 0, witnessed = 0, receipts = 0;
  for (std::size_t d = 0; d < factory.device_count(); ++d) {
    const auto& device = factory.device(d);
    EXPECT_TRUE(device.offline()) << "device " << d << " never went offline";
    EXPECT_GT(device.outbox().size(), 0u);
    queued += device.outbox().size();
    offers += device.stats().offers_sent.value();
    witnessed += device.stats().witnessed.value();
    receipts += device.outbox().stats().receipts.value();
  }
  EXPECT_GT(offers, 0u);
  EXPECT_GT(witnessed, 0u);
  EXPECT_GT(receipts, 0u);  // countersignatures attached to queued entries

  // Heal: the recovery probes find a gateway and the backlog drains.
  set_fleet_radio(factory, true);
  factory.run_until(60.0);
  factory.stop_devices();
  factory.run_until(70.0);

  for (std::size_t d = 0; d < factory.device_count(); ++d) {
    EXPECT_TRUE(factory.device(d).outbox().empty())
        << "device " << d << ": "
        << factory.device(d).outbox().size() << " records still queued";
  }
  const auto report = check_convergence(factory);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(queued, 0u);
  for (std::size_t g = 0; g < factory.gateway_count(); ++g)
    testutil::audit_if_enabled(factory.gateway(g).tangle());
}

TEST(OfflineScenario, SimultaneousHealDoesNotLazyPenalizeTheDrainRace) {
  // Regression: after a fleet-wide outage longer than
  // LazyTipPolicy::max_parent_age, the only tips in the tangle are stale,
  // and the concurrently healing devices race to approve them. The loser
  // of that race used to be priced as a lazy attacker — credit penalty,
  // difficulty spike, and the device then committed to mining one enormous
  // drain chunk with no request in flight and no watchdog armed: a silent
  // wedge with zero backoff events. The approval-grace window in the lazy
  // detector plus the drain PoW budget turn that into a normal drain.
  auto config = offline_config(17);
  config.distribute_keys = true;  // the shape the simulate presets run
  factory::SmartFactory factory(config);
  factory.bootstrap();

  factory.run_until(12.0);
  set_fleet_radio(factory, false);
  factory.run_until(72.0);  // dark 60 s: tips are well past max_parent_age
  set_fleet_radio(factory, true);

  double drained_at = -1.0;
  for (double t = 72.5; t <= 112.0; t += 0.5) {
    factory.run_until(t);
    bool all_empty = true;
    for (std::size_t d = 0; d < factory.device_count(); ++d)
      all_empty = all_empty && factory.device(d).outbox().empty();
    if (all_empty) {
      drained_at = t;
      break;
    }
  }
  EXPECT_GE(drained_at, 0.0) << "fleet failed to drain within 40 s of heal";

  factory.stop_devices();
  factory.run_until(120.0);
  const auto report = check_convergence(factory);
  EXPECT_TRUE(report.ok()) << report.to_string();
  for (std::size_t g = 0; g < factory.gateway_count(); ++g)
    testutil::audit_if_enabled(factory.gateway(g).tangle());
}

TEST(OfflineScenario, WitnessEvidenceSettlesExchangeWhenIssuerStaysDark) {
  // Only the witness reconnects: the issuer's records must still settle on
  // chain through the evidence copies the witness carried (the IoTLogBlock
  // "either party alone suffices" property).
  factory::SmartFactory factory(offline_config(43, /*gateways=*/2,
                                               /*devices=*/2));
  factory.bootstrap();
  factory.run_until(3.0);
  set_fleet_radio(factory, false);
  factory.run_until(20.0);

  auto& issuer = factory.device(0);
  auto& witness = factory.device(1);
  ASSERT_TRUE(issuer.offline());
  ASSERT_TRUE(witness.offline());
  ASSERT_GT(witness.stats().witnessed.value(), 0u);

  // Only the witness regains a radio; the issuer stays dark to the end.
  factory.network().set_radio(witness.node_id(), true);
  factory.run_until(60.0);

  const auto issuer_key = issuer.public_identity().sign_key;
  std::uint64_t evidence_settled = 0;
  for (const auto& settled : witness.outbox().settled()) {
    if (!(settled.issuer == issuer_key)) continue;
    if (settled.kind == SettleKind::kRejected) continue;
    ++evidence_settled;
    const OfflineKey key{settled.issuer, settled.seq};
    for (std::size_t g = 0; g < factory.gateway_count(); ++g) {
      EXPECT_TRUE(factory.gateway(g).offline_registry().contains(key))
          << "evidence for seq " << settled.seq << " missing on gateway " << g;
    }
  }
  EXPECT_GT(evidence_settled, 0u);
}

// ---- Probe de-synchronization (regression) ----------------------------------

TEST(OfflineScenario, RecoveryProbesDesynchronizeAndBackOff) {
  // All gateways die. The devices end up offline, probing for recovery on
  // the same configured interval — the probes must NOT arrive in lockstep
  // (jitter) and must space out over time (exponential backoff).
  auto config = offline_config(47, /*gateways=*/2, /*devices=*/4);
  config.device.probe_interval_max = 30.0;
  factory::SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(3.0);

  std::vector<sim::NodeId> dead_gateways;
  for (std::size_t g = 0; g < factory.gateway_count(); ++g) {
    dead_gateways.push_back(factory.gateway(g).node_id());
    factory.crash_gateway(g);
  }
  // Give the fleet time to exhaust failover and enter offline mode.
  factory.run_until(15.0);
  for (std::size_t d = 0; d < factory.device_count(); ++d)
    ASSERT_TRUE(factory.device(d).offline()) << "device " << d;

  // Listen on the dead gateways' addresses and record each device's probe
  // arrival times. Never answering keeps the outage going.
  std::map<sim::NodeId, std::vector<TimePoint>> probes;
  auto& sched = factory.scheduler();
  for (const auto id : dead_gateways) {
    factory.network().attach(id, [&probes, &sched](sim::NodeId from,
                                                   const Bytes&) {
      probes[from].push_back(sched.now());
    });
  }
  factory.run_until(120.0);
  for (const auto id : dead_gateways) factory.network().detach(id);

  std::vector<std::vector<Duration>> gaps(factory.device_count());
  for (std::size_t d = 0; d < factory.device_count(); ++d) {
    const auto& times = probes[factory.device(d).node_id()];
    ASSERT_GE(times.size(), 3u) << "device " << d << " barely probed";
    // Backoff: unanswered probes must space out. Compare the first gap to
    // the last one; jitter alone cannot produce a 2x stretch with these
    // knobs (factor 1.5, jitter 0.5), only compounding backoff can.
    const auto first_gap = times[1] - times[0];
    const auto last_gap = times[times.size() - 1] - times[times.size() - 2];
    EXPECT_GT(last_gap, 2.0 * first_gap) << "device " << d << " never backed off";
    for (std::size_t i = 1; i < times.size(); ++i)
      gaps[d].push_back(times[i] - times[i - 1]);
  }
  // De-sync: per-device jitter must break the fleet out of lockstep. With
  // jitter removed every device walks the identical deterministic delay
  // ladder (base * factor^k, capped), so some pair of gap sequences would
  // match to machine precision — assert every pair visibly differs.
  for (std::size_t a = 0; a < gaps.size(); ++a) {
    for (std::size_t b = a + 1; b < gaps.size(); ++b) {
      const std::size_t n = std::min(gaps[a].size(), gaps[b].size());
      bool differs = false;
      for (std::size_t i = 0; i < n && !differs; ++i)
        differs = std::abs(gaps[a][i] - gaps[b][i]) >
                  0.05 * std::max(gaps[a][i], gaps[b][i]);
      EXPECT_TRUE(differs) << "devices " << a << " and " << b
                           << " probe in lockstep";
    }
  }
}

// ---- Crash-mid-drain durability ---------------------------------------------

TEST(OfflineScenario, CrashMidDrainLosesNothingAndAdmitsNothingTwice) {
  auto config = offline_config(53, /*gateways=*/2, /*devices=*/2);
  config.wire_exchange_ring = false;  // isolate the issuer's own records
  factory::SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(3.0);

  // Device 0 alone goes dark and fills its outbox.
  auto& device = factory.device(0);
  factory.network().set_radio(device.node_id(), false);
  factory.run_until(25.0);
  ASSERT_TRUE(device.offline());
  const auto queued_before = device.outbox().size();
  ASSERT_GT(queued_before, 10u);

  // Heal, then run in small steps until the drain is provably mid-flight:
  // some records settled, some still queued.
  factory.network().set_radio(device.node_id(), true);
  TimePoint t = factory.scheduler().now();
  while (device.outbox().settled().empty() && t < 80.0) {
    t += 0.25;
    factory.run_until(t);
  }
  ASSERT_FALSE(device.outbox().settled().empty()) << "drain never started";
  ASSERT_FALSE(device.outbox().empty()) << "drain finished before the crash";

  // Power loss mid-drain: flash (sequence counter + outbox) survives, RAM
  // and in-flight requests do not.
  factory.crash_device(0);
  ASSERT_FALSE(factory.device_running(0));
  factory.run_until(t + 5.0);  // let in-flight wreckage land
  factory.restart_device(0);
  factory.run_until(t + 60.0);
  factory.stop_devices();
  factory.run_until(t + 70.0);

  // Nothing lost: the outbox fully drained and every settled exchange is
  // registered on every replica.
  EXPECT_TRUE(device.outbox().empty())
      << device.outbox().size() << " records lost in the crash window";
  const auto report = check_convergence(factory);
  EXPECT_TRUE(report.ok()) << report.to_string();

  // Nothing admitted twice: for each (issuer, seq) the converged tangle
  // holds exactly one settling transaction — a duplicate drain after the
  // restart must have been answered kReplayDetected, not re-attached.
  std::unordered_map<OfflineKey, int, node::OfflineKeyHash> copies;
  for (const auto* rec :
       factory.gateway(0).tangle().data_since(nullptr, 0.0, 1000000)) {
    if (rec->tx.payload_encrypted ||
        !OfflineEnvelope::is_offline_payload(rec->tx.payload))
      continue;
    const auto envelope = OfflineEnvelope::decode(rec->tx.payload);
    ASSERT_TRUE(envelope);
    const auto& r = envelope.value().record;
    ++copies[OfflineKey{r.issuer, r.outbox_seq}];
  }
  EXPECT_GT(copies.size(), 0u);
  for (const auto& [key, count] : copies) {
    EXPECT_EQ(count, 1) << "exchange seq " << key.seq
                        << " attached " << count << " times";
  }
  testutil::audit_if_enabled(factory.gateway(0).tangle());
}

}  // namespace
}  // namespace biot
