// Observability subsystem tests: instrument semantics, fixed-bucket
// histogram quantile/merge properties (cross-checked against the exact
// sample statistics in obs/stats.h), registry naming, attach/detach, the
// text/JSON exporters, and multi-threaded instrument updates (this binary
// carries the `concurrency` ctest label, so these run under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stats.h"
#include "obs/timer.h"

namespace biot::obs {
namespace {

TEST(Counter, ActsLikeUint64) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  ++c;
  c += 4;
  c.add();
  EXPECT_EQ(c, 6u);  // implicit conversion keeps old EXPECT_EQ idioms alive

  const Counter copy = c;
  ++c;
  EXPECT_EQ(copy.value(), 6u);  // value-snapshot copy, not aliasing
  EXPECT_EQ(c.value(), 7u);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(HistogramSpec, ExponentialAndLinearLayouts) {
  const auto exp = HistogramSpec::exponential(1.0, 2.0, 4);
  ASSERT_EQ(exp.bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(exp.bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(exp.bounds[3], 8.0);

  const auto lin = HistogramSpec::linear(10.0, 5.0, 3);
  ASSERT_EQ(lin.bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(lin.bounds[2], 20.0);
}

TEST(Histogram, EmptyReportsZeros) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

// Regression: min_/max_ start at +/-infinity so the lock-free CAS accepts
// the very first observation. A zero-initialised min_ silently ate every
// positive sample (gateway.g1.sync.rtt_sim_s reported min=0 with one
// sample of 8.7 ms).
TEST(Histogram, SingleObservationSetsMinMax) {
  Histogram h;
  h.observe(0.0087);
  EXPECT_DOUBLE_EQ(h.min(), 0.0087);
  EXPECT_DOUBLE_EQ(h.max(), 0.0087);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0087);  // clamped to [min, max]
}

TEST(Histogram, IgnoresNonFiniteObservations) {
  Histogram h;
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 0u);
  h.observe(2.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.0);
}

// Property: for random samples, the bucketed quantile estimate must land
// within one bucket width of the exact sample percentile, and inside the
// observed [min, max] range.
TEST(Histogram, QuantileTracksExactPercentileWithinBucketResolution) {
  std::mt19937 rng(42);
  std::lognormal_distribution<double> dist(-6.0, 1.5);  // latency-shaped
  const auto& spec = HistogramSpec::timer_seconds();

  Histogram h(spec);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    const double v = dist(rng);
    samples.push_back(v);
    h.observe(v);
  }

  for (const double q : {0.5, 0.9, 0.99}) {
    const double exact = percentile(samples, q * 100.0);
    const double est = h.quantile(q);
    EXPECT_GE(est, h.min());
    EXPECT_LE(est, h.max());
    // The estimate's bucket must be the exact value's bucket or a
    // neighbour: power-of-two bounds mean "within one bucket" is a 2x
    // relative window around the exact percentile.
    EXPECT_GE(est, exact / 2.0) << "q=" << q;
    EXPECT_LE(est, exact * 2.0) << "q=" << q;
  }
  EXPECT_NEAR(h.mean(), mean(samples), 1e-9);
}

// Property: sharded histograms merged together are indistinguishable from
// one histogram that saw every sample (bucket counts add losslessly).
TEST(Histogram, MergeEqualsObservingEverySample) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(1e-6, 10.0);

  Histogram shard_a, shard_b, combined;
  for (int i = 0; i < 2000; ++i) {
    const double v = dist(rng);
    (i % 2 == 0 ? shard_a : shard_b).observe(v);
    combined.observe(v);
  }

  Histogram merged(shard_a);
  ASSERT_TRUE(merged.merge(shard_b));
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_DOUBLE_EQ(merged.min(), combined.min());
  EXPECT_DOUBLE_EQ(merged.max(), combined.max());
  EXPECT_NEAR(merged.sum(), combined.sum(), 1e-9);
  for (std::size_t i = 0; i <= merged.bounds().size(); ++i)
    EXPECT_EQ(merged.bucket_count(i), combined.bucket_count(i)) << "bucket " << i;
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99})
    EXPECT_DOUBLE_EQ(merged.quantile(q), combined.quantile(q)) << "q=" << q;
}

TEST(Histogram, MergeRejectsMismatchedBounds) {
  Histogram a(HistogramSpec::exponential(1.0, 2.0, 8));
  Histogram b(HistogramSpec::linear(1.0, 1.0, 8));
  a.observe(3.0);
  b.observe(3.0);
  EXPECT_FALSE(a.merge(b));
  EXPECT_EQ(a.count(), 1u);  // nothing was folded in
}

TEST(Histogram, MergeOfEmptyIsNoOp) {
  Histogram a, b;
  a.observe(1.0);
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 1.0);
}

TEST(Registry, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.events");
  Counter& b = reg.counter("x.events");
  EXPECT_EQ(&a, &b);
  ++a;
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, KindMismatchReturnsDummyNotTheRealInstrument) {
  MetricsRegistry reg;
  Counter& real = reg.counter("x.events");
  real += 5;
  Gauge& dummy = reg.gauge("x.events");  // wrong kind for this name
  dummy.set(99.0);
  EXPECT_EQ(real.value(), 5u);  // the real counter is untouched
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 1u);
  EXPECT_EQ(snap.metrics[0].kind, MetricKind::kCounter);
  EXPECT_EQ(snap.metrics[0].value, 5.0);
}

TEST(Registry, ScopesNestAndQualifyNames) {
  MetricsRegistry reg;
  const Scope gateway = reg.scope("gateway").scope("g1");
  EXPECT_EQ(gateway.prefix(), "gateway.g1");
  ++gateway.scope("admission").counter("accepted");
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 1u);
  EXPECT_EQ(snap.metrics[0].name, "gateway.g1.admission.accepted");
}

TEST(Registry, AttachedInstrumentsSnapshotLiveAndDetachByPrefix) {
  MetricsRegistry reg;
  Counter owned_by_component;
  Gauge depth;
  reg.attach("net.delivered", &owned_by_component);
  reg.attach("net.queue_depth", &depth);
  ++reg.counter("other.events");

  owned_by_component += 3;
  depth.set(7.0);
  auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "net.delivered");
  EXPECT_EQ(snap.metrics[0].value, 3.0);
  EXPECT_EQ(snap.metrics[1].value, 7.0);

  reg.detach_prefix("net");
  snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 1u);
  EXPECT_EQ(snap.metrics[0].name, "other.events");  // owned survives detach
}

TEST(Registry, DetachPrefixMatchesWholeComponentsOnly) {
  MetricsRegistry reg;
  Counter a, b;
  reg.attach("gateway.g1.accepted", &a);
  reg.attach("gateway.g10.accepted", &b);
  reg.detach_prefix("gateway.g1");
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 1u);  // g10 must NOT match the g1 prefix
  EXPECT_EQ(snap.metrics[0].name, "gateway.g10.accepted");
}

TEST(Export, JsonRoundTripsThroughFlatParser) {
  MetricsRegistry reg;
  reg.counter("a.count") += 42;
  reg.gauge("a.depth").set(2.5);
  Histogram& h = reg.histogram("a.lat_s");
  h.observe(0.001);
  h.observe(0.004);

  const auto parsed = parse_flat_json(to_json(reg.snapshot()));
  ASSERT_TRUE(parsed.is_ok());
  const auto& flat = parsed.value();
  EXPECT_EQ(flat.at("a.count/value"), 42.0);
  EXPECT_EQ(flat.at("a.depth/value"), 2.5);
  EXPECT_EQ(flat.at("a.lat_s/count"), 2.0);
  EXPECT_DOUBLE_EQ(flat.at("a.lat_s/min"), 0.001);
  EXPECT_DOUBLE_EQ(flat.at("a.lat_s/max"), 0.004);
  EXPECT_NEAR(flat.at("a.lat_s/sum"), 0.005, 1e-12);
}

TEST(Export, TextRendersEveryMetric) {
  MetricsRegistry reg;
  reg.counter("c") += 1;
  reg.gauge("g").set(1.0);
  reg.histogram("h").observe(0.5);
  const std::string text = to_text(reg.snapshot());
  EXPECT_NE(text.find("c"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST(Export, ParserRejectsWrongSchema) {
  const auto parsed = parse_flat_json(R"({"schema":"not-metrics"})");
  EXPECT_FALSE(parsed.is_ok());
}

TEST(Stats, PercentileInterpolatesBetweenClosestRanks) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);  // rank 1.5 blends 2.0 and 3.0
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 1.75);
}

TEST(Timer, WallTimerLapAndScopedObserve) {
  WallTimer t;
  EXPECT_GE(t.elapsed(), 0.0);
  EXPECT_GE(t.lap(), 0.0);

  Histogram h;
  { ScopedWallTimer scoped(h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);
}

// Concurrency: counters, gauges and one shared histogram hammered from
// multiple threads; totals must be exact (relaxed atomics lose no updates)
// and TSan must stay quiet. Registry get-or-create races are exercised by
// having every thread resolve the instruments by name first.
TEST(Concurrency, ParallelUpdatesLoseNothing) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      Counter& c = reg.counter("shared.events");
      Histogram& h = reg.histogram("shared.lat_s");
      Gauge& g = reg.gauge("shared.depth");
      for (int i = 0; i < kIters; ++i) {
        ++c;
        h.observe(0.001 * (t + 1));
        g.set(static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(reg.counter("shared.events").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  const Histogram& h = reg.histogram("shared.lat_s");
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.001 * kThreads);
}

// Satellite pin for the atomic_min/atomic_max/atomic_add CAS retry loops in
// metrics.cpp: compare_exchange_weak reloads `cur` on failure, so no
// concurrent observe() may lose an update. Eight writers hammer ONE
// histogram with disjoint integer values (exact in a double up to 2^53), so
// the final sum/min/max/count are exact regardless of interleaving; any
// lost CAS retry shows up as a wrong total, and TSan sees the raw traffic.
TEST(Concurrency, EightThreadCasLoopsLoseNoUpdate) {
  Histogram h;
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &g, t] {
      for (int i = 1; i <= kIters; ++i) {
        // Thread t contributes values t*kIters+1 .. (t+1)*kIters, so across
        // all threads every integer in [1, kThreads*kIters] lands once.
        h.observe(static_cast<double>(t * kIters + i));
        g.set(static_cast<double>(t * kIters + i));
      }
    });
  }
  for (auto& th : threads) th.join();

  const double n = static_cast<double>(kThreads) * kIters;
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(h.sum(), n * (n + 1.0) / 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), n);
  // The gauge's final value is whichever set() landed last — all we can pin
  // is that it is one of the written values, never a torn mix.
  const double gauge = g.value();
  EXPECT_GE(gauge, 1.0);
  EXPECT_LE(gauge, n);
  EXPECT_EQ(gauge, std::floor(gauge));
}

}  // namespace
}  // namespace biot::obs
