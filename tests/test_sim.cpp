// Discrete-event substrate tests: scheduler ordering, network delivery,
// loss/partition handling, device compute profiles.
#include <gtest/gtest.h>

#include <limits>

#include "sim/device_profile.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace biot::sim {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(3.0, [&] { order.push_back(3); });
  sched.at(1.0, [&] { order.push_back(1); });
  sched.at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sched.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 3.0);
}

TEST(Scheduler, EqualTimesRunFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sched.at(1.0, [&order, i] { order.push_back(i); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  Scheduler sched;
  int fired = 0;
  sched.at(1.0, [&] {
    ++fired;
    sched.after(1.0, [&] { ++fired; });
  });
  sched.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.now(), 2.0);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int fired = 0;
  sched.at(1.0, [&] { ++fired; });
  sched.at(5.0, [&] { ++fired; });
  sched.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), 3.0);
  EXPECT_EQ(sched.pending(), 1u);
  sched.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, EventAtExactBoundaryRuns) {
  Scheduler sched;
  int fired = 0;
  sched.at(3.0, [&] { ++fired; });
  sched.run_until(3.0);
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, PastSchedulingThrows) {
  Scheduler sched;
  sched.at(5.0, [] {});
  sched.run();
  EXPECT_THROW(sched.at(1.0, [] {}), std::logic_error);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler sched;
  EXPECT_FALSE(sched.step());
}

// ---- Network ---------------------------------------------------------------

struct Inbox {
  std::vector<std::pair<NodeId, Bytes>> messages;
  Network::Handler handler() {
    return [this](NodeId from, const Bytes& b) { messages.emplace_back(from, b); };
  }
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : network_(sched_, std::make_unique<FixedLatency>(0.01), Rng(1)) {}

  Scheduler sched_;
  Network network_;
};

TEST_F(NetworkTest, DeliversAfterLatency) {
  Inbox inbox;
  network_.attach(2, inbox.handler());
  network_.send(1, 2, to_bytes("hello"));
  EXPECT_TRUE(inbox.messages.empty());
  sched_.run();
  ASSERT_EQ(inbox.messages.size(), 1u);
  EXPECT_EQ(inbox.messages[0].first, 1u);
  EXPECT_EQ(to_string(inbox.messages[0].second), "hello");
  EXPECT_NEAR(sched_.now(), 0.01, 1e-12);
}

TEST_F(NetworkTest, DetachedReceiverDropsMessage) {
  network_.send(1, 2, to_bytes("x"));
  sched_.run();
  EXPECT_EQ(network_.stats().dropped_detached, 1u);
  EXPECT_EQ(network_.stats().delivered, 0u);
}

TEST_F(NetworkTest, DetachMidFlightDrops) {
  Inbox inbox;
  network_.attach(2, inbox.handler());
  network_.send(1, 2, to_bytes("x"));
  network_.detach(2);  // crash before delivery
  sched_.run();
  EXPECT_TRUE(inbox.messages.empty());
  EXPECT_EQ(network_.stats().dropped_detached, 1u);
}

TEST_F(NetworkTest, BroadcastSkipsSender) {
  Inbox a, b, c;
  network_.attach(1, a.handler());
  network_.attach(2, b.handler());
  network_.attach(3, c.handler());
  network_.broadcast(1, to_bytes("all"));
  sched_.run();
  EXPECT_TRUE(a.messages.empty());
  EXPECT_EQ(b.messages.size(), 1u);
  EXPECT_EQ(c.messages.size(), 1u);
}

TEST_F(NetworkTest, FullLossDropsEverything) {
  Inbox inbox;
  network_.attach(2, inbox.handler());
  network_.set_loss_rate(1.0);
  for (int i = 0; i < 10; ++i) network_.send(1, 2, to_bytes("x"));
  sched_.run();
  EXPECT_TRUE(inbox.messages.empty());
  EXPECT_EQ(network_.stats().dropped_loss, 10u);
}

TEST_F(NetworkTest, PartialLossDropsSomeStatistically) {
  Inbox inbox;
  network_.attach(2, inbox.handler());
  network_.set_loss_rate(0.5);
  for (int i = 0; i < 500; ++i) network_.send(1, 2, to_bytes("x"));
  sched_.run();
  EXPECT_GT(inbox.messages.size(), 150u);
  EXPECT_LT(inbox.messages.size(), 350u);
}

TEST_F(NetworkTest, LinkDownBlocksBothDirections) {
  Inbox a, b;
  network_.attach(1, a.handler());
  network_.attach(2, b.handler());
  network_.set_link_down(1, 2, true);
  network_.send(1, 2, to_bytes("x"));
  network_.send(2, 1, to_bytes("y"));
  sched_.run();
  EXPECT_TRUE(a.messages.empty());
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(network_.stats().dropped_link, 2u);

  network_.set_link_down(1, 2, false);
  network_.send(1, 2, to_bytes("x"));
  sched_.run();
  EXPECT_EQ(b.messages.size(), 1u);
}

TEST_F(NetworkTest, PartitionSplitsGroups) {
  Inbox a, b, c;
  network_.attach(1, a.handler());
  network_.attach(2, b.handler());
  network_.attach(3, c.handler());
  network_.partition({1}, true);  // {1} vs {2,3}
  network_.send(1, 2, to_bytes("cross"));
  network_.send(2, 3, to_bytes("inside"));
  sched_.run();
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(c.messages.size(), 1u);

  network_.partition({}, false);
  network_.send(1, 2, to_bytes("healed"));
  sched_.run();
  EXPECT_EQ(b.messages.size(), 1u);
}

TEST_F(NetworkTest, BandwidthAddsTransmissionDelay) {
  Inbox inbox;
  network_.attach(2, inbox.handler());
  network_.set_bandwidth(1000.0);  // 1 KB/s
  network_.send(1, 2, Bytes(500, 0));
  sched_.run();
  // 0.01 s latency + 500/1000 s transmission.
  EXPECT_NEAR(sched_.now(), 0.51, 1e-9);
  ASSERT_EQ(inbox.messages.size(), 1u);
}

TEST_F(NetworkTest, ZeroBandwidthMeansUnconstrained) {
  Inbox inbox;
  network_.attach(2, inbox.handler());
  network_.set_bandwidth(0.0);
  network_.send(1, 2, Bytes(100000, 0));
  sched_.run();
  EXPECT_NEAR(sched_.now(), 0.01, 1e-9);  // latency only
}

TEST_F(NetworkTest, StatsCountBytes) {
  Inbox inbox;
  network_.attach(2, inbox.handler());
  network_.send(1, 2, Bytes(100, 0));
  sched_.run();
  EXPECT_EQ(network_.stats().bytes_sent, 100u);
  EXPECT_EQ(network_.stats().sent, 1u);
  EXPECT_EQ(network_.stats().delivered, 1u);
}

// ---- Adversarial link faults -------------------------------------------------

TEST_F(NetworkTest, DetachClearsPerNodeFaultState) {
  // Regression: a crashed node's severed links and partition membership must
  // not survive into its next life under the same id.
  Inbox a, b;
  network_.attach(1, a.handler());
  network_.attach(2, b.handler());
  network_.set_link_down(1, 2, true);
  network_.partition({2}, true);

  network_.detach(2);          // crash
  network_.attach(2, b.handler());  // fresh boot, same id

  network_.send(1, 2, to_bytes("x"));
  sched_.run();
  EXPECT_EQ(b.messages.size(), 1u);  // no ghost link-down / partition
  EXPECT_EQ(network_.stats().dropped_link, 0u);
}

TEST_F(NetworkTest, DetachPreservesOtherNodesFaultState) {
  Inbox a, c;
  network_.attach(1, a.handler());
  network_.attach(3, c.handler());
  network_.set_link_down(1, 3, true);
  network_.detach(2);  // unrelated node crashes
  network_.send(1, 3, to_bytes("x"));
  sched_.run();
  EXPECT_EQ(network_.stats().dropped_link, 1u);
  EXPECT_TRUE(c.messages.empty());
}

TEST(NetworkValidation, ProbabilitiesClampToUnitInterval) {
  EXPECT_EQ(Network::clamp_probability(1.5), 1.0);
  EXPECT_EQ(Network::clamp_probability(-0.5), 0.0);
  EXPECT_EQ(Network::clamp_probability(0.25), 0.25);
  EXPECT_EQ(Network::clamp_probability(
                std::numeric_limits<double>::quiet_NaN()),
            0.0);
  EXPECT_EQ(Network::clamp_probability(
                std::numeric_limits<double>::infinity()),
            0.0);
}

TEST_F(NetworkTest, OutOfRangeLossRateClampsInsteadOfSkewing) {
  Inbox inbox;
  network_.attach(2, inbox.handler());
  network_.set_loss_rate(1.7);  // clamps to 1.0: everything drops
  network_.send(1, 2, to_bytes("x"));
  sched_.run();
  EXPECT_EQ(network_.stats().dropped_loss, 1u);

  network_.set_loss_rate(-3.0);  // clamps to 0.0: everything delivers
  network_.send(1, 2, to_bytes("x"));
  sched_.run();
  EXPECT_EQ(inbox.messages.size(), 1u);
}

TEST_F(NetworkTest, DuplicationDeliversTwiceAndCounts) {
  Inbox inbox;
  network_.attach(2, inbox.handler());
  network_.set_duplication_rate(1.0);
  network_.send(1, 2, to_bytes("x"));
  sched_.run();
  EXPECT_EQ(inbox.messages.size(), 2u);
  EXPECT_EQ(network_.stats().duplicated, 1u);
  EXPECT_EQ(network_.stats().delivered, 2u);
  EXPECT_EQ(network_.stats().sent, 1u);  // one send, two deliveries
}

TEST_F(NetworkTest, ReorderingJitterOvertakesLaterSends) {
  // First message gets up to 1 s extra jitter; second is jitter-free (rate
  // toggled off) and must overtake it despite being sent later.
  std::vector<std::string> order;
  network_.attach(2, [&](NodeId, const Bytes& b) {
    order.push_back(to_string(b));
  });
  network_.set_reordering(1.0, 1.0);
  network_.send(1, 2, to_bytes("slow"));
  network_.set_reordering(0.0, 0.0);
  network_.send(1, 2, to_bytes("fast"));
  sched_.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "fast");
  EXPECT_EQ(order[1], "slow");
  EXPECT_EQ(network_.stats().reordered, 1u);
}

TEST_F(NetworkTest, CorruptionFlipsBitsAndCounts) {
  Inbox inbox;
  network_.attach(2, inbox.handler());
  network_.set_corruption_rate(1.0);
  const Bytes original(64, 0x5a);
  network_.send(1, 2, original);
  sched_.run();
  ASSERT_EQ(inbox.messages.size(), 1u);
  EXPECT_NE(inbox.messages[0].second, original);  // bits really flipped
  EXPECT_EQ(inbox.messages[0].second.size(), original.size());
  EXPECT_EQ(network_.stats().corrupted, 1u);
}

TEST_F(NetworkTest, CorruptionSkipsEmptyPayloads) {
  Inbox inbox;
  network_.attach(2, inbox.handler());
  network_.set_corruption_rate(1.0);
  network_.send(1, 2, Bytes{});
  sched_.run();
  ASSERT_EQ(inbox.messages.size(), 1u);  // no crash, delivered as-is
  EXPECT_EQ(network_.stats().corrupted, 0u);
}

// ---- Latency models ----------------------------------------------------------

TEST(Latency, FixedIsConstant) {
  FixedLatency model(0.25);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(model.sample(rng), 0.25);
}

TEST(Latency, UniformStaysInRange) {
  UniformLatency model(0.1, 0.2);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double s = model.sample(rng);
    EXPECT_GE(s, 0.1);
    EXPECT_LT(s, 0.2);
  }
}

TEST(Latency, ExponentialTailExceedsBase) {
  ExponentialTailLatency model(0.05, 0.01);
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const double s = model.sample(rng);
    EXPECT_GE(s, 0.05);
    sum += s;
  }
  EXPECT_NEAR(sum / 2000, 0.06, 0.002);
}

// ---- Device profiles -----------------------------------------------------------

TEST(DeviceProfile, ExpectedPowTimeIsExponentialInDifficulty) {
  const auto p = DeviceProfile::pi3b_fig9();
  // Doubling difficulty by 1 bit roughly doubles expected time (minus the
  // constant overhead, which is zero for this profile).
  EXPECT_NEAR(p.expected_pow_time(12) / p.expected_pow_time(11), 2.0, 1e-9);
}

TEST(DeviceProfile, Fig9CalibrationReproducesBaseline) {
  const auto p = DeviceProfile::pi3b_fig9();
  EXPECT_NEAR(p.expected_pow_time(11), 0.7, 1e-9);  // the paper's D=11 average
}

TEST(DeviceProfile, Fig7CalibrationReproducesD14Point) {
  const auto p = DeviceProfile::pi3b_fig7();
  EXPECT_NEAR(p.expected_pow_time(14), 245.3, 1e-6);
}

TEST(DeviceProfile, SampledPowTimeMatchesExpectationOnAverage) {
  const auto p = DeviceProfile::pi3b_fig9();
  Rng rng(4);
  double sum = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) sum += p.sample_pow_time(8, rng);
  EXPECT_NEAR(sum / n, p.expected_pow_time(8), p.expected_pow_time(8) * 0.1);
}

TEST(DeviceProfile, AesTimeLinearInLength) {
  const auto p = DeviceProfile::pi3b_fig7();
  const double t1 = p.aes_time(1 << 18);  // 256 KiB
  const double t2 = p.aes_time(1 << 19);
  EXPECT_NEAR(t2 / t1, 2.0, 0.01);
  // Paper's Fig 10 anchor: 256 KiB around 0.373 s on the Pi.
  EXPECT_NEAR(t1, 0.373, 0.06);
}

TEST(DeviceProfile, ServerFasterThanPi) {
  const auto pi = DeviceProfile::pi3b_fig9();
  const auto server = DeviceProfile::server();
  EXPECT_LT(server.expected_pow_time(11), pi.expected_pow_time(11));
}

}  // namespace
}  // namespace biot::sim
