// Logger behaviour: level filtering and formatting.
#include <gtest/gtest.h>

#include "common/log.h"

namespace biot {
namespace {

/// Captures stderr for the duration of a scope.
class CaptureStderr {
 public:
  CaptureStderr() { ::testing::internal::CaptureStderr(); }
  std::string stop() { return ::testing::internal::GetCapturedStderr(); }
};

class LogTest : public ::testing::Test {
 protected:
  LogTest() : saved_(log_level()) {}
  ~LogTest() override { set_log_level(saved_); }
  LogLevel saved_;
};

TEST_F(LogTest, MessagesBelowLevelSuppressed) {
  set_log_level(LogLevel::kError);
  CaptureStderr capture;
  Logger logger("test");
  logger.debug() << "invisible";
  logger.info() << "invisible";
  logger.warn() << "invisible";
  EXPECT_EQ(capture.stop(), "");
}

TEST_F(LogTest, MessagesAtLevelEmitted) {
  set_log_level(LogLevel::kInfo);
  CaptureStderr capture;
  Logger logger("gateway");
  logger.info() << "accepted tx " << 42;
  const auto out = capture.stop();
  EXPECT_NE(out.find("[info] gateway: accepted tx 42"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  CaptureStderr capture;
  Logger logger("x");
  logger.error() << "even errors";
  EXPECT_EQ(capture.stop(), "");
}

TEST_F(LogTest, StreamFormatsMixedTypes) {
  set_log_level(LogLevel::kDebug);
  CaptureStderr capture;
  Logger logger("fmt");
  logger.debug() << "a=" << 1 << " b=" << 2.5 << " c=" << "str";
  const auto out = capture.stop();
  EXPECT_NE(out.find("a=1 b=2.5 c=str"), std::string::npos);
}

TEST_F(LogTest, LogLineDirectApi) {
  set_log_level(LogLevel::kWarn);
  CaptureStderr capture;
  log_line(LogLevel::kWarn, "component", "message");
  log_line(LogLevel::kInfo, "component", "hidden");
  const auto out = capture.stop();
  EXPECT_NE(out.find("[warn] component: message"), std::string::npos);
  EXPECT_EQ(out.find("hidden"), std::string::npos);
}

}  // namespace
}  // namespace biot
