// Milestone confirmation tests: past-cone tracking, coordinator issuance,
// gateway enforcement, the confirmation-status RPC and the scenario wiring.
#include <gtest/gtest.h>

#include "factory/scenario.h"
#include "node/coordinator.h"
#include "tangle/milestones.h"
#include "test_util.h"

namespace biot {
namespace {

using testutil::TxFactory;

// ---- MilestoneTracker --------------------------------------------------------

class TrackerTest : public ::testing::Test {
 protected:
  TrackerTest() : tangle_(tangle::Tangle::make_genesis()), node_(1) {}

  tangle::TxId attach(const tangle::TxId& p1, const tangle::TxId& p2) {
    const auto tx = node_.make(p1, p2, 2);
    EXPECT_TRUE(tangle_.add(tx, 0.0).is_ok());
    return tx.id();
  }

  tangle::Tangle tangle_;
  TxFactory node_;
  tangle::MilestoneTracker tracker_;
};

TEST_F(TrackerTest, MilestoneConfirmsPastCone) {
  const auto g = tangle_.genesis_id();
  const auto a = attach(g, g);
  const auto b = attach(a, a);
  const auto side = attach(g, g);  // not an ancestor of the milestone
  // Wait: 'side' approves g which IS in the past cone, but side itself is
  // not an ancestor of b.
  const auto newly = tracker_.observe_milestone(tangle_, b);
  EXPECT_EQ(newly, 3u);  // b, a, genesis
  EXPECT_TRUE(tracker_.is_confirmed(b));
  EXPECT_TRUE(tracker_.is_confirmed(a));
  EXPECT_TRUE(tracker_.is_confirmed(g));
  EXPECT_FALSE(tracker_.is_confirmed(side));
}

TEST_F(TrackerTest, SecondMilestoneOnlyWalksNewRegion) {
  const auto g = tangle_.genesis_id();
  const auto a = attach(g, g);
  const auto m1 = attach(a, a);
  EXPECT_EQ(tracker_.observe_milestone(tangle_, m1), 3u);

  const auto c = attach(m1, m1);
  const auto m2 = attach(c, c);
  EXPECT_EQ(tracker_.observe_milestone(tangle_, m2), 2u);  // c + m2 only
  EXPECT_EQ(tracker_.confirmed_count(), 5u);
  EXPECT_EQ(tracker_.milestone_count(), 2u);
}

TEST_F(TrackerTest, UnknownMilestoneIsNoop) {
  tangle::TxId bogus{};
  bogus[0] = 1;
  EXPECT_EQ(tracker_.observe_milestone(tangle_, bogus), 0u);
  EXPECT_EQ(tracker_.milestone_count(), 0u);
}

TEST_F(TrackerTest, DiamondConfirmedOnce) {
  const auto g = tangle_.genesis_id();
  const auto a = attach(g, g);
  const auto b = attach(a, a);
  const auto c = attach(a, a);
  const auto d = attach(b, c);
  EXPECT_EQ(tracker_.observe_milestone(tangle_, d), 5u);  // no double count
}

// ---- Coordinator + gateway + RPC ----------------------------------------------

TEST(Coordinator, MilestonesConfirmDeviceTraffic) {
  factory::ScenarioConfig config;
  config.num_devices = 3;
  config.distribute_keys = false;
  config.enable_coordinator = true;
  config.milestone_interval = 3.0;
  config.device.collect_interval = 0.5;
  config.device.profile.hash_rate_hz = 1e6;
  config.gateway.credit.initial_difficulty = 4;

  factory::SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(30.0);

  EXPECT_GE(factory.coordinator().milestones_issued(), 8u);
  // Most of the tangle lies under some milestone on every replica.
  for (std::size_t g = 0; g < factory.gateway_count(); ++g) {
    const auto& gw = factory.gateway(g);
    EXPECT_GT(gw.milestones().confirmed_count(),
              gw.tangle().size() * 6 / 10)
        << "gateway " << g;
  }

  // A transaction accepted early is milestone-confirmed by now.
  const auto& tangle = factory.gateway(0).tangle();
  for (const auto& id : tangle.arrival_order()) {
    const auto* rec = tangle.find(id);
    if (rec->tx.type == tangle::TxType::kData && rec->arrival < 10.0) {
      EXPECT_TRUE(factory.gateway(0).milestones().is_confirmed(id));
      break;
    }
  }
}

TEST(Coordinator, ForgedMilestoneRejected) {
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(1));
  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto gateway_identity = crypto::Identity::deterministic(2);
  const auto coordinator_identity = crypto::Identity::deterministic(3);
  const auto impostor = crypto::Identity::deterministic(66);

  node::GatewayConfig config;
  config.credit.initial_difficulty = 3;
  node::Gateway gateway(1, gateway_identity,
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), network, config);
  gateway.set_coordinator(coordinator_identity.public_identity().sign_key);

  // Impostor crafts a structurally perfect milestone.
  consensus::Miner miner;
  tangle::Transaction tx;
  tx.type = tangle::TxType::kMilestone;
  tx.sender = impostor.public_identity().sign_key;
  tx.parent1 = gateway.tangle().genesis_id();
  tx.parent2 = gateway.tangle().genesis_id();
  tx.difficulty = 3;
  tx.signature = impostor.sign(tx.signing_bytes());
  tx.nonce = miner.mine(tx.parent1, tx.parent2, 3)->nonce;

  EXPECT_EQ(gateway.submit(tx).code(), ErrorCode::kUnauthorized);
  EXPECT_EQ(gateway.milestones().milestone_count(), 0u);
}

TEST(Coordinator, WithoutCoordinatorMilestonesAlwaysRejected) {
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(1));
  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto gateway_identity = crypto::Identity::deterministic(2);
  node::Gateway gateway(1, gateway_identity,
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), network, {});

  consensus::Miner miner;
  tangle::Transaction tx;
  tx.type = tangle::TxType::kMilestone;
  tx.sender = manager_identity.public_identity().sign_key;  // even the manager
  tx.parent1 = gateway.tangle().genesis_id();
  tx.parent2 = gateway.tangle().genesis_id();
  tx.difficulty = 3;
  tx.signature = manager_identity.sign(tx.signing_bytes());
  tx.nonce = miner.mine(tx.parent1, tx.parent2, 3)->nonce;
  EXPECT_EQ(gateway.submit(tx).code(), ErrorCode::kUnauthorized);
}

TEST_F(TrackerTest, LastMilestoneTimeTracksArrival) {
  const auto g = tangle_.genesis_id();
  const auto a = attach(g, g);
  EXPECT_EQ(tracker_.last_milestone_at(), 0.0);
  // Attach with a later arrival time and observe it.
  const auto tx = node_.make(a, a, 2, {}, 7.5);
  ASSERT_TRUE(tangle_.add(tx, 7.5).is_ok());
  tracker_.observe_milestone(tangle_, tx.id());
  EXPECT_EQ(tracker_.last_milestone_at(), 7.5);
}

TEST(ConfirmationStatus, WeightThresholdBoundary) {
  // confirmation_weight is inclusive: weight == threshold confirms.
  sim::Scheduler sched;
  sim::Network net(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(1));
  const auto manager_identity = crypto::Identity::deterministic(1);
  node::GatewayConfig config;
  config.confirmation_weight = 3;
  config.credit.initial_difficulty = 2;
  node::Gateway gateway(1, crypto::Identity::deterministic(2),
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), net, config);
  node::Manager manager(2, manager_identity, gateway, net);
  TxFactory device(100);
  ASSERT_TRUE(manager.authorize({device.identity().public_identity()}).is_ok());

  // Build a chain: target <- c1 <- c2 (weight of target reaches exactly 3).
  const auto [t1, t2] = gateway.select_tips();
  auto target = device.make(t1, t2, 2);
  ASSERT_TRUE(gateway.submit(target).is_ok());
  EXPECT_FALSE(gateway.confirmation_status(target.id()).weight_confirmed);
  auto c1 = device.make(target.id(), target.id(), 2);
  ASSERT_TRUE(gateway.submit(c1).is_ok());
  EXPECT_FALSE(gateway.confirmation_status(target.id()).weight_confirmed);
  auto c2 = device.make(c1.id(), c1.id(), 2);
  ASSERT_TRUE(gateway.submit(c2).is_ok());
  const auto info = gateway.confirmation_status(target.id());
  EXPECT_TRUE(info.weight_confirmed);
  EXPECT_EQ(info.cumulative_weight, 3u);
  EXPECT_TRUE(info.known);
  EXPECT_FALSE(info.milestone_confirmed);  // no coordinator configured
}

TEST(ConfirmationRpc, InfoRoundTrip) {
  node::ConfirmationInfo info;
  info.tx_id[0] = 7;
  info.known = true;
  info.milestone_confirmed = true;
  info.weight_confirmed = false;
  info.cumulative_weight = 12;
  const auto back = node::ConfirmationInfo::decode(info.encode());
  ASSERT_TRUE(back);
  EXPECT_EQ(back.value().tx_id, info.tx_id);
  EXPECT_TRUE(back.value().known);
  EXPECT_TRUE(back.value().milestone_confirmed);
  EXPECT_FALSE(back.value().weight_confirmed);
  EXPECT_EQ(back.value().cumulative_weight, 12u);
}

TEST(ConfirmationRpc, DeviceQueriesItsTransaction) {
  factory::ScenarioConfig config;
  config.num_devices = 2;
  config.num_gateways = 1;
  config.distribute_keys = false;
  config.enable_coordinator = true;
  config.milestone_interval = 2.0;
  config.device.collect_interval = 0.5;
  config.device.profile.hash_rate_hz = 1e6;
  config.gateway.credit.initial_difficulty = 4;

  factory::SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(20.0);

  // Pick an early data transaction of device 0 and query it.
  const auto device_key = factory.device(0).public_identity().sign_key;
  std::optional<tangle::TxId> early;
  for (const auto& id : factory.gateway(0).tangle().arrival_order()) {
    const auto* rec = factory.gateway(0).tangle().find(id);
    if (rec->tx.sender == device_key && rec->arrival < 5.0) {
      early = id;
      break;
    }
  }
  ASSERT_TRUE(early.has_value());

  factory.device(0).query_confirmation(*early);
  factory.run_until(21.0);

  const auto& answer = factory.device(0).last_confirmation();
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->tx_id, *early);
  EXPECT_TRUE(answer->known);
  EXPECT_TRUE(answer->milestone_confirmed);
  EXPECT_GT(answer->cumulative_weight, 1u);
}

TEST(ConfirmationRpc, UnknownTransactionReportedUnknown) {
  factory::ScenarioConfig config;
  config.num_devices = 1;
  config.num_gateways = 1;
  config.distribute_keys = false;
  config.device.profile.hash_rate_hz = 1e6;
  config.gateway.credit.initial_difficulty = 4;

  factory::SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(2.0);

  tangle::TxId bogus{};
  bogus[0] = 0xee;
  factory.device(0).query_confirmation(bogus);
  factory.run_until(3.0);

  const auto& answer = factory.device(0).last_confirmation();
  ASSERT_TRUE(answer.has_value());
  EXPECT_FALSE(answer->known);
  EXPECT_FALSE(answer->milestone_confirmed);
}

}  // namespace
}  // namespace biot
