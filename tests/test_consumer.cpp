// Data-consumer tests: read queries over the public tangle, per-sender
// filters, decryption with and without the key, and codec robustness.
#include <gtest/gtest.h>

#include "factory/sensors.h"
#include "node/consumer.h"
#include "node/gateway.h"
#include "node/light_node.h"
#include "node/manager.h"

namespace biot::node {
namespace {

class ConsumerTest : public ::testing::Test {
 protected:
  ConsumerTest()
      : manager_identity_(crypto::Identity::deterministic(1)),
        gateway_identity_(crypto::Identity::deterministic(2)),
        network_(sched_, std::make_unique<sim::FixedLatency>(0.002), Rng(3)),
        gateway_(1, gateway_identity_,
                 manager_identity_.public_identity().sign_key,
                 tangle::Tangle::make_genesis(), network_, gateway_config()),
        manager_(2, manager_identity_, gateway_, network_),
        consumer_(50, crypto::Identity::deterministic(500), 1, network_) {
    gateway_.attach();
    manager_.attach();
    consumer_.attach();
  }

  static GatewayConfig gateway_config() {
    GatewayConfig c;
    c.credit.initial_difficulty = 4;
    return c;
  }

  LightNode make_device(sim::NodeId id, std::uint64_t seed) {
    LightNodeConfig c;
    c.profile.hash_rate_hz = 1e6;
    c.collect_interval = 0.5;
    return LightNode(id, crypto::Identity::deterministic(seed), 1, network_, c);
  }

  sim::Scheduler sched_;
  crypto::Identity manager_identity_;
  crypto::Identity gateway_identity_;
  sim::Network network_;
  Gateway gateway_;
  Manager manager_;
  Consumer consumer_;
};

TEST_F(ConsumerTest, ReadsClearTextReadings) {
  auto device = make_device(10, 100);
  ASSERT_TRUE(manager_.authorize({device.public_identity()}).is_ok());
  device.set_data_source([n = 0]() mutable {
    factory::SensorReading r;
    r.sensor = "temp";
    r.unit = "degC";
    r.value = 20.0 + n++;
    r.status = "ok";
    return r.encode();
  });
  device.start();
  sched_.run_until(5.0);

  std::vector<RecoveredReading> got;
  consumer_.query({}, 0.0, 100, [&](auto readings) { got = std::move(readings); });
  sched_.run_until(6.0);

  ASSERT_GT(got.size(), 5u);
  for (const auto& r : got) {
    EXPECT_TRUE(r.decrypted);
    const auto reading = factory::SensorReading::decode(r.plaintext);
    ASSERT_TRUE(reading.is_ok());
    EXPECT_EQ(reading.value().sensor, "temp");
  }
}

TEST_F(ConsumerTest, SenderFilterSelects) {
  auto alice = make_device(10, 100);
  auto bob = make_device(11, 101);
  ASSERT_TRUE(manager_
                  .authorize({alice.public_identity(), bob.public_identity()})
                  .is_ok());
  alice.start();
  bob.start();
  sched_.run_until(5.0);

  std::vector<RecoveredReading> got;
  consumer_.query(alice.public_identity().sign_key, 0.0, 100,
                  [&](auto readings) { got = std::move(readings); });
  sched_.run_until(6.0);

  ASSERT_FALSE(got.empty());
  for (const auto& r : got)
    EXPECT_EQ(r.tx.sender, alice.public_identity().sign_key);
}

TEST_F(ConsumerTest, SinceAndMaxLimitResults) {
  auto device = make_device(10, 100);
  ASSERT_TRUE(manager_.authorize({device.public_identity()}).is_ok());
  device.start();
  sched_.run_until(10.0);

  std::vector<RecoveredReading> late, capped;
  consumer_.query({}, 8.0, 100, [&](auto r) { late = std::move(r); });
  consumer_.query({}, 0.0, 3, [&](auto r) { capped = std::move(r); });
  sched_.run_until(11.0);

  EXPECT_LT(late.size(), 8u);
  EXPECT_FALSE(late.empty());
  EXPECT_EQ(capped.size(), 3u);
}

TEST_F(ConsumerTest, EncryptedPayloadsNeedTheKey) {
  auto device = make_device(10, 100);
  ASSERT_TRUE(manager_.authorize({device.public_identity()}).is_ok());
  crypto::Csprng key_rng(9);
  const auto key = key_rng.fixed<32>();
  device.install_symmetric_key(key);
  device.start();
  sched_.run_until(5.0);

  // Without the key: payloads visible but opaque.
  std::vector<RecoveredReading> blind;
  consumer_.query({}, 0.0, 100, [&](auto r) { blind = std::move(r); });
  sched_.run_until(6.0);
  ASSERT_FALSE(blind.empty());
  for (const auto& r : blind) {
    EXPECT_TRUE(r.tx.payload_encrypted);
    EXPECT_FALSE(r.decrypted);
  }

  // With the key (e.g., obtained via the Fig 4 handshake): plaintext.
  consumer_.install_key(key);
  std::vector<RecoveredReading> sighted;
  consumer_.query({}, 0.0, 100, [&](auto r) { sighted = std::move(r); });
  sched_.run_until(7.0);
  ASSERT_FALSE(sighted.empty());
  for (const auto& r : sighted) {
    EXPECT_TRUE(r.decrypted);
    // Default data source: 64 random bytes per reading.
    EXPECT_EQ(r.plaintext.size(), 64u);
  }
}

TEST_F(ConsumerTest, EmptyTangleYieldsEmptyResult) {
  std::vector<RecoveredReading> got{RecoveredReading{}};  // sentinel
  consumer_.query({}, 0.0, 10, [&](auto r) { got = std::move(r); });
  sched_.run_until(1.0);
  EXPECT_TRUE(got.empty());
}

TEST(DataCodec, QueryRoundTrip) {
  DataQuery q;
  q.sender[0] = 5;
  q.since = 12.5;
  q.max_results = 7;
  const auto back = DataQuery::decode(q.encode());
  ASSERT_TRUE(back);
  EXPECT_EQ(back.value().sender, q.sender);
  EXPECT_EQ(back.value().since, 12.5);
  EXPECT_EQ(back.value().max_results, 7u);
  EXPECT_FALSE(DataQuery::decode(Bytes(10, 0)));
}

TEST(DataCodec, ResponseRoundTrip) {
  DataResponse resp;  // empty is valid
  const auto back = DataResponse::decode(resp.encode());
  ASSERT_TRUE(back);
  EXPECT_TRUE(back.value().transactions.empty());
  EXPECT_FALSE(DataResponse::decode(Bytes{1, 0, 0, 0}));  // claims 1, has none
}

}  // namespace
}  // namespace biot::node
