// Negative-compile fixture: writes a GUARDED_BY field without holding its
// mutex. Registered with WILL_FAIL — Clang's -Werror=thread-safety MUST
// reject this translation unit ("writing variable 'balance_' requires
// holding mutex 'mu_'"). If it ever compiles, the analysis gate is dead.
#include "common/sync.h"

namespace {

class Account {
 public:
  void deposit(int amount) {
    balance_ += amount;  // no lock held: the analysis must flag this write
  }

  biot::sync::Mutex mu_;

 private:
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return 0;
}
