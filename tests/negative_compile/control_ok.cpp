// Positive control for the negcompile_* ctest entries: the same shape as the
// failing fixtures but with the locking discipline intact. This file MUST
// compile under -Werror=thread-safety — it proves that when a sibling fixture
// fails, the failure came from the analysis firing, not from broken harness
// flags or include paths.
#include "common/sync.h"

namespace {

class Account {
 public:
  void deposit(int amount) {
    const biot::sync::MutexLock lock(mu_);
    balance_ += amount;
  }

  int balance() REQUIRES(mu_) { return balance_; }

  biot::sync::Mutex mu_;

 private:
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  const biot::sync::MutexLock lock(account.mu_);
  return account.balance();
}
