// Negative-compile fixture: calls a REQUIRES(mu_) method without holding the
// lock. Registered with WILL_FAIL — Clang's -Werror=thread-safety MUST
// reject this translation unit ("calling function 'balance' requires holding
// mutex 'mu_'"). If it ever compiles, the analysis gate is dead.
#include "common/sync.h"

namespace {

class Account {
 public:
  void deposit(int amount) {
    const biot::sync::MutexLock lock(mu_);
    balance_ += amount;
  }

  int balance() REQUIRES(mu_) { return balance_; }

  biot::sync::Mutex mu_;

 private:
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return account.balance();  // caller never acquires account.mu_
}
