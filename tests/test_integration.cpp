// End-to-end smart-factory integration tests: the full Fig 6 workflow,
// failure injection (gateway crash, partition), attack mitigation, and the
// sensor data pipeline.
#include <gtest/gtest.h>

#include "factory/scenario.h"
#include "obs/stats.h"
#include "test_util.h"

namespace biot::factory {
namespace {

ScenarioConfig fast_config() {
  ScenarioConfig c;
  // Host-friendly difficulties and device speeds for tests.
  c.gateway.credit.initial_difficulty = 4;
  c.gateway.credit.max_difficulty = 8;
  c.device.profile.hash_rate_hz = 1e6;
  c.device.collect_interval = 0.5;
  return c;
}

/// Runs the invariant auditor over every gateway replica the scenario
/// built, with ledger conservation (scenarios seed no balances, so the
/// total must be zero) and credit-activity cross-checks bound in.
void audit_factory(SmartFactory& factory) {
  for (std::size_t g = 0; g < factory.gateway_count(); ++g) {
    const auto& gateway = factory.gateway(g);
    tangle::AuditInputs inputs;
    inputs.ledger = &gateway.ledger();
    inputs.expected_supply = 0;
    inputs.credit_valid_tx_count =
        [&gateway](const tangle::AccountKey& key) -> std::size_t {
      const auto* model = gateway.credit_registry().find(key);
      return model == nullptr ? 0 : model->valid_tx_count();
    };
    testutil::expect_audit_clean(gateway.tangle(), inputs);
  }
}

TEST(SmartFactory, BootstrapAuthorizesAllDevices) {
  SmartFactory factory(fast_config());
  factory.bootstrap();
  factory.run_until(1.0);

  for (std::size_t g = 0; g < factory.gateway_count(); ++g) {
    EXPECT_EQ(factory.gateway(g).auth_registry().authorized_count(),
              factory.device_count());
  }
}

TEST(SmartFactory, DevicesProduceAcceptedTransactions) {
  SmartFactory factory(fast_config());
  factory.bootstrap();
  factory.run_until(20.0);

  EXPECT_GT(factory.total_accepted(), 40u);
  for (std::size_t d = 0; d < factory.device_count(); ++d) {
    EXPECT_GT(factory.device(d).stats().accepted, 0u) << "device " << d;
  }
  audit_factory(factory);
}

TEST(SmartFactory, GatewayReplicasConverge) {
  SmartFactory factory(fast_config());
  factory.bootstrap();
  factory.run_until(20.0);
  factory.run_until(21.0);  // drain gossip

  const auto size0 = factory.gateway(0).tangle().size();
  for (std::size_t g = 1; g < factory.gateway_count(); ++g) {
    EXPECT_EQ(factory.gateway(g).tangle().size(), size0);
  }
  audit_factory(factory);
}

TEST(SmartFactory, SensitiveDeviceEncryptsAfterKeyDistribution) {
  SmartFactory factory(fast_config());
  factory.bootstrap();
  factory.run_until(20.0);

  // Device 3 carries the ProcessRecipeSensor (index % 4 == 3 => sensitive).
  ASSERT_TRUE(factory.sensor(3).sensitive());
  EXPECT_TRUE(factory.device(3).has_symmetric_key());

  std::size_t encrypted = 0, cleartext = 0;
  const auto& tangle = factory.gateway(0).tangle();
  for (const auto& id : tangle.arrival_order()) {
    const auto* rec = tangle.find(id);
    if (rec->tx.type != tangle::TxType::kData) continue;
    if (rec->tx.payload_encrypted)
      ++encrypted;
    else
      ++cleartext;
  }
  EXPECT_GT(encrypted, 0u);
  EXPECT_GT(cleartext, 0u);  // non-sensitive devices post in the clear
}

TEST(SmartFactory, EncryptedPayloadsDecodeForKeyHolder) {
  SmartFactory factory(fast_config());
  factory.bootstrap();
  factory.run_until(15.0);

  const auto device3 = factory.device(3).public_identity();
  const auto& key = factory.manager().session_key(device3);

  std::size_t decoded = 0;
  const auto& tangle = factory.gateway(1).tangle();  // read from the replica
  for (const auto& id : tangle.arrival_order()) {
    const auto* rec = tangle.find(id);
    if (!rec->tx.payload_encrypted) continue;
    const auto plain = auth::envelope_open(key, rec->tx.payload);
    ASSERT_TRUE(plain.is_ok());
    const auto reading = SensorReading::decode(plain.value());
    ASSERT_TRUE(reading.is_ok());
    EXPECT_EQ(reading.value().unit, "rpm");  // the recipe sensor
    ++decoded;
  }
  EXPECT_GT(decoded, 0u);
}

TEST(SmartFactory, ClearPayloadsAreReadableSensorReadings) {
  SmartFactory factory(fast_config());
  factory.bootstrap();
  factory.run_until(10.0);

  std::size_t decoded = 0;
  const auto& tangle = factory.gateway(0).tangle();
  for (const auto& id : tangle.arrival_order()) {
    const auto* rec = tangle.find(id);
    if (rec->tx.type != tangle::TxType::kData || rec->tx.payload_encrypted)
      continue;
    ASSERT_TRUE(SensorReading::decode(rec->tx.payload).is_ok());
    ++decoded;
  }
  EXPECT_GT(decoded, 10u);
}

TEST(SmartFactory, SybilSwarmBlockedWithoutDisruptingService) {
  auto config = fast_config();
  SmartFactory factory(config);
  factory.bootstrap();
  for (int i = 0; i < 5; ++i) {
    auto sybil_config = config.device;
    sybil_config.collect_interval = 0.1;  // hammering the gateway
    factory.add_unauthorized_device(sybil_config);
  }
  factory.run_until(20.0);

  // All sybil requests refused; nothing attached from them.
  for (std::size_t s = 0; s < factory.unauthorized_count(); ++s) {
    EXPECT_EQ(factory.unauthorized_device(s).stats().accepted, 0u);
    EXPECT_GT(factory.unauthorized_device(s).stats().unauthorized, 10u);
  }
  // Honest devices keep working.
  EXPECT_GT(factory.total_accepted(), 40u);
}

TEST(SmartFactory, RateLimiterShedsFloodKeepsHonestTraffic) {
  auto config = fast_config();
  // Honest devices issue ~4 requests/s (tips + submit at 2 cycles/s);
  // allow 10/s with a small burst. Sybils fire 20 cycles/s.
  config.gateway.rate_limit_per_sender = 10.0;
  config.gateway.rate_limit_burst = 5.0;
  SmartFactory factory(config);
  factory.bootstrap();
  auto sybil_config = config.device;
  sybil_config.collect_interval = 0.05;
  sybil_config.request_timeout = 0.1;  // aggressive: re-fires despite sheds
  factory.add_unauthorized_device(sybil_config);
  factory.run_until(20.0);

  // The flood was shed at the edge...
  std::uint64_t shed = 0;
  for (std::size_t g = 0; g < factory.gateway_count(); ++g)
    shed += factory.gateway(g).stats().rate_limited;
  EXPECT_GT(shed, 50u);
  // ...while honest devices ran at full rate.
  for (std::size_t d = 0; d < factory.device_count(); ++d) {
    EXPECT_GT(factory.device(d).stats().accepted, 20u) << "device " << d;
  }
}

TEST(SmartFactory, DevicesFailOverWhenTheirGatewayDies) {
  auto config = fast_config();
  config.device.request_timeout = 1.0;  // detect the dead gateway quickly
  SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(5.0);

  // Devices 1 and 3 are homed on gateway 1 (round-robin). Kill it.
  const auto dead = factory.gateway(1).node_id();
  ASSERT_EQ(factory.device(1).current_gateway(), dead);
  factory.network().detach(dead);
  const auto before_d1 = factory.device(1).stats().accepted;

  factory.run_until(30.0);

  // They re-homed to gateway 0 and kept submitting.
  EXPECT_EQ(factory.device(1).current_gateway(), factory.gateway(0).node_id());
  EXPECT_EQ(factory.device(3).current_gateway(), factory.gateway(0).node_id());
  EXPECT_GE(factory.device(1).stats().failovers, 1u);
  EXPECT_GT(factory.device(1).stats().accepted, before_d1 + 10);
  // Full availability: every device made progress after the crash.
  for (std::size_t d = 0; d < factory.device_count(); ++d) {
    EXPECT_GT(factory.device(d).stats().accepted, 20u) << "device " << d;
  }
}

TEST(SmartFactory, SurvivesGatewayCrash) {
  // Single point of failure test: kill gateway 1; devices homed on gateway 0
  // keep submitting and the surviving replica keeps growing.
  SmartFactory factory(fast_config());
  factory.bootstrap();
  factory.run_until(5.0);
  const auto before = factory.gateway(0).tangle().size();

  factory.network().detach(factory.gateway(1).node_id());  // crash
  factory.run_until(15.0);

  EXPECT_GT(factory.gateway(0).tangle().size(), before);
  // Devices 0 and 2 are homed on gateway 0 (round-robin) and unaffected.
  EXPECT_GT(factory.device(0).stats().accepted, 5u);
  EXPECT_GT(factory.device(2).stats().accepted, 5u);
}

TEST(SmartFactory, OutOfOrderGossipIsAdoptedNotDropped) {
  // High-variance latency reorders gossip between the two gateways; the
  // orphan buffer must keep replicas converged WITHOUT anti-entropy sync.
  auto config = fast_config();
  config.gateway.sync_interval = 0.0;  // no safety net
  config.device.collect_interval = 0.1;  // fast cadence vs slow links:
  config.latency_base = 0.001;
  config.latency_tail = 0.5;  // heavy jitter — reordering is routine
  SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(30.0);
  factory.run_until(40.0);  // drain in-flight gossip

  std::uint64_t buffered = 0, adopted = 0;
  for (std::size_t g = 0; g < factory.gateway_count(); ++g) {
    buffered += factory.gateway(g).stats().orphans_buffered;
    adopted += factory.gateway(g).stats().orphans_adopted;
  }
  EXPECT_GT(buffered, 0u);       // reordering actually happened
  EXPECT_EQ(adopted, buffered);  // and every orphan found its parent
  // Devices keep producing, so a handful of gossips are always in flight;
  // replicas must agree up to that in-flight window (without the orphan
  // buffer the gap grows with every reordering instead).
  const auto s0 = factory.gateway(0).tangle().size();
  const auto s1 = factory.gateway(1).tangle().size();
  EXPECT_LE(std::max(s0, s1) - std::min(s0, s1), 8u);
  audit_factory(factory);
}

TEST(SmartFactory, AntiEntropyFullyHealsPartition) {
  // With periodic anti-entropy sync, replicas converge COMPLETELY after a
  // partition — live gossip alone cannot backfill the missed history.
  auto config = fast_config();
  config.gateway.sync_interval = 2.0;
  SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(5.0);

  std::set<sim::NodeId> island{factory.gateway(1).node_id(),
                               factory.device(1).node_id(),
                               factory.device(3).node_id()};
  factory.network().partition(island, true);
  factory.run_until(15.0);
  EXPECT_NE(factory.gateway(0).tangle().size(),
            factory.gateway(1).tangle().size());

  factory.network().partition({}, false);
  factory.run_until(25.0);  // a few sync rounds after healing

  // Same size AND same contents.
  ASSERT_EQ(factory.gateway(0).tangle().size(),
            factory.gateway(1).tangle().size());
  for (const auto& id : factory.gateway(0).tangle().arrival_order()) {
    EXPECT_TRUE(factory.gateway(1).tangle().contains(id));
  }
  EXPECT_GT(factory.gateway(0).stats().sync_txs_applied +
                factory.gateway(1).stats().sync_txs_applied,
            0u);
  // The sync path rebuilt gateway 1's history out of arrival order — the
  // hardest case for the incremental indexes; audit both replicas.
  audit_factory(factory);
}

TEST(SmartFactory, SyncIdleWhenReplicasAgree) {
  auto config = fast_config();
  config.gateway.sync_interval = 1.0;
  SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(10.0);
  factory.run_until(12.0);  // drain gossip, then more sync rounds

  // Sync ran but had (almost) nothing to ship: live gossip keeps replicas
  // current; anti-entropy only pays when histories diverge.
  EXPECT_GT(factory.gateway(0).stats().syncs_sent, 5u);
  const auto shipped = factory.gateway(0).stats().sync_txs_served +
                       factory.gateway(1).stats().sync_txs_served;
  EXPECT_LT(shipped, factory.gateway(0).tangle().size() / 4);
}

TEST(SmartFactory, PartitionHealsAndReplicasCatchUp) {
  SmartFactory factory(fast_config());
  factory.bootstrap();
  factory.run_until(5.0);

  // Partition gateway 1 (and its devices) away from gateway 0.
  std::set<sim::NodeId> island{factory.gateway(1).node_id(),
                               factory.device(1).node_id(),
                               factory.device(3).node_id()};
  factory.network().partition(island, true);
  factory.run_until(10.0);
  const auto size0 = factory.gateway(0).tangle().size();
  const auto size1 = factory.gateway(1).tangle().size();
  EXPECT_NE(size0, size1);  // replicas diverged during the partition

  factory.network().partition({}, false);
  factory.run_until(20.0);
  // New traffic gossips normally again; both replicas keep growing.
  EXPECT_GT(factory.gateway(0).tangle().size(), size0);
  EXPECT_GT(factory.gateway(1).tangle().size(), size1);
}

TEST(SmartFactory, AttackerThrottledHonestUnaffected) {
  auto config = fast_config();
  config.device.profile.hash_rate_hz = 3000.0;  // Pi-ish: punishment bites
  SmartFactory factory(config);
  factory.bootstrap();
  factory.device(1).schedule_attack(5.0, node::AttackKind::kDoubleSpend);
  factory.run_until(60.0);

  const auto& attacker = factory.device(1).stats();
  const auto& honest = factory.device(0).stats();
  EXPECT_EQ(attacker.attacks_launched, 1u);
  EXPECT_GE(factory.gateway(0).stats().rejected_conflict +
                factory.gateway(1).stats().rejected_conflict,
            1u);
  // The attacker's post-attack PoW got harder: its max sampled PoW time
  // exceeds the honest node's max.
  const auto max_of = [](const std::vector<double>& xs) {
    return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
  };
  EXPECT_GT(max_of(attacker.pow_durations), max_of(honest.pow_durations));
  // Honest devices were not slowed down.
  EXPECT_GT(honest.accepted, 20u);
}

TEST(SmartFactory, CrossGatewayDoubleSpendConvergesOnOneWinner) {
  // The attacker submits conflicting transactions to two different gateways
  // at the same instant; gossip crosses mid-flight. Both replicas must end
  // up agreeing on the same winner (deterministic id rule), and the sender
  // must be punished on both.
  auto config = fast_config();
  SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(2.0);

  // A rogue identity we control the secret key of; authorize it alongside
  // the regular devices, then hand-craft the conflicting pair against the
  // current tips of each gateway.
  crypto::Identity rogue = crypto::Identity::deterministic(5000);
  std::vector<crypto::PublicIdentity> list;
  for (std::size_t d = 0; d < factory.device_count(); ++d)
    list.push_back(factory.device(d).public_identity());
  list.push_back(rogue.public_identity());
  ASSERT_TRUE(factory.manager().authorize(list).is_ok());
  factory.run_until(3.0);

  auto craft = [&](node::Gateway& gw, const char* payload) {
    tangle::Transaction tx;
    tx.type = tangle::TxType::kData;
    tx.sender = rogue.public_identity().sign_key;
    const auto [t1, t2] = gw.select_tips();
    tx.parent1 = t1;
    tx.parent2 = t2;
    tx.sequence = 7;  // same slot in both
    tx.timestamp = factory.scheduler().now();
    tx.difficulty = static_cast<std::uint8_t>(
        gw.required_difficulty(tx.sender));
    tx.payload = to_bytes(payload);
    tx.signature = rogue.sign(tx.signing_bytes());
    consensus::Miner miner(0x7777);
    tx.nonce = miner.mine(tx.parent1, tx.parent2, tx.difficulty)->nonce;
    return tx;
  };

  const auto tx_a = craft(factory.gateway(0), "branch A");
  const auto tx_b = craft(factory.gateway(1), "branch B");
  ASSERT_TRUE(factory.gateway(0).submit(tx_a).is_ok());
  ASSERT_TRUE(factory.gateway(1).submit(tx_b).is_ok());
  factory.run_until(6.0);

  // Both replicas saw both transactions and punished the rogue.
  EXPECT_TRUE(factory.gateway(0).tangle().contains(tx_a.id()));
  EXPECT_TRUE(factory.gateway(0).tangle().contains(tx_b.id()));
  EXPECT_TRUE(factory.gateway(1).tangle().contains(tx_a.id()));
  EXPECT_TRUE(factory.gateway(1).tangle().contains(tx_b.id()));
  EXPECT_GE(factory.gateway(0).stats().rejected_conflict, 1u);
  EXPECT_GE(factory.gateway(1).stats().rejected_conflict, 1u);
  const auto rogue_key = rogue.public_identity().sign_key;
  EXPECT_EQ(factory.gateway(0).required_difficulty(rogue_key),
            config.gateway.credit.max_difficulty);
  EXPECT_EQ(factory.gateway(1).required_difficulty(rogue_key),
            config.gateway.credit.max_difficulty);
  // Conflicting history attached on both replicas — the ledger resolved the
  // slot; the tangle's incremental state must still audit clean.
  audit_factory(factory);
}

TEST(SmartFactory, ThroughputScalesWithDeviceCount) {
  auto small = fast_config();
  small.num_devices = 2;
  SmartFactory f_small(small);
  f_small.bootstrap();
  f_small.run_until(20.0);

  auto large = fast_config();
  large.num_devices = 8;
  SmartFactory f_large(large);
  f_large.bootstrap();
  f_large.run_until(20.0);

  // Asynchronous consensus: more concurrent devices => more throughput.
  EXPECT_GT(f_large.throughput(5.0, 20.0), 2.0 * f_small.throughput(5.0, 20.0));
}

TEST(SmartFactory, DeterministicGivenSeed) {
  auto config = fast_config();
  SmartFactory a(config), b(config);
  a.bootstrap();
  b.bootstrap();
  a.run_until(10.0);
  b.run_until(10.0);
  EXPECT_EQ(a.total_accepted(), b.total_accepted());
  EXPECT_EQ(a.gateway(0).tangle().size(), b.gateway(0).tangle().size());
}

TEST(Sensors, ModelsProduceDecodableReadings) {
  Rng rng(1);
  for (int i = 0; i < 8; ++i) {
    auto sensor = make_sensor(i);
    for (int t = 0; t < 20; ++t) {
      const auto reading = sensor->sample(t * 1.0, rng);
      const auto decoded = SensorReading::decode(reading.encode());
      ASSERT_TRUE(decoded.is_ok());
      EXPECT_EQ(decoded.value().sensor, sensor->name());
    }
  }
}

TEST(Sensors, TemperatureTracksSetpoint) {
  TemperatureSensor sensor("t", 180.0);
  Rng rng(2);
  double sum = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) sum += sensor.sample(i * 1.0, rng).value;
  EXPECT_NEAR(sum / n, 180.0, 3.0);
}

TEST(Sensors, RecipeSensorIsSensitive) {
  EXPECT_TRUE(ProcessRecipeSensor("r").sensitive());
  EXPECT_FALSE(TemperatureSensor("t", 20.0).sensitive());
  EXPECT_FALSE(VibrationSensor("v").sensitive());
  EXPECT_FALSE(PowerMeterSensor("p").sensitive());
  EXPECT_TRUE(DoorSensor("d").sensitive());  // access logs are sensitive
}

TEST(Sensors, PowerMeterStaysNonNegativeAndSpikes) {
  PowerMeterSensor sensor("p", 12.0);
  Rng rng(8);
  bool saw_inrush = false;
  for (int i = 0; i < 500; ++i) {
    const auto r = sensor.sample(i * 1.0, rng);
    EXPECT_GE(r.value, 0.0);
    EXPECT_EQ(r.unit, "kW");
    if (r.status == "inrush") saw_inrush = true;
  }
  EXPECT_TRUE(saw_inrush);
}

TEST(Sensors, DoorSensorEmitsAllStates) {
  DoorSensor sensor("d");
  Rng rng(9);
  std::set<std::string> states;
  for (int i = 0; i < 500; ++i) states.insert(sensor.sample(i * 1.0, rng).status);
  EXPECT_TRUE(states.contains("open"));
  EXPECT_TRUE(states.contains("closed"));
  EXPECT_TRUE(states.contains("held_open_alarm"));
}

TEST(Metrics, BasicStatistics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(obs::mean(xs), 2.5);
  EXPECT_NEAR(obs::stddev(xs), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(obs::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(obs::percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(obs::percentile(xs, 50), 2.5);
  EXPECT_EQ(obs::mean({}), 0.0);
}

}  // namespace
}  // namespace biot::factory
