// Gateway cold-start: a restarted full node rebuilds ALL derived state —
// ledger, authorization list, milestone confirmations and credit histories —
// purely from the persisted chain (the paper's "credit value ... can be
// reflected from blockchain records" made operational).
#include <gtest/gtest.h>

#include "factory/scenario.h"
#include "storage/archive.h"
#include "storage/tangle_io.h"
#include "test_util.h"

namespace biot {
namespace {

factory::ScenarioConfig restore_config() {
  factory::ScenarioConfig config;
  config.num_devices = 4;
  config.num_gateways = 2;
  config.distribute_keys = false;
  config.enable_coordinator = true;
  config.milestone_interval = 3.0;
  config.gateway.credit.initial_difficulty = 4;
  config.gateway.credit.max_difficulty = 8;
  config.device.collect_interval = 0.5;
  config.device.profile.hash_rate_hz = 1e6;
  return config;
}

class RestoreTest : public ::testing::Test {
 protected:
  RestoreTest() : factory_(restore_config()) {
    factory_.bootstrap();
    factory_.device(1).schedule_attack(5.0, node::AttackKind::kDoubleSpend);
    factory_.run_until(20.0);
  }

  /// Round-trips gateway 0's replica through serialization and rebuilds a
  /// fresh gateway from it. Both the live source replica and the restored
  /// one (whose incremental state was rebuilt by deserialize + replay) must
  /// pass the invariant audit.
  node::Gateway restore(sim::Network& network) {
    const Bytes wire = storage::serialize_tangle(factory_.gateway(0).tangle());
    auto reloaded = storage::deserialize_tangle(wire);
    EXPECT_TRUE(reloaded.is_ok());
    return node::Gateway(
        99, gateway_identity_,
        factory_.manager().public_identity().sign_key,
        std::move(reloaded).take(), network, restore_config().gateway,
        factory_.coordinator().public_identity().sign_key);
  }

  factory::SmartFactory factory_;
  crypto::Identity gateway_identity_ = crypto::Identity::deterministic(77);
};

TEST_F(RestoreTest, LiveAndRestoredReplicasAuditClean) {
  // The restored replica's incremental state (weights, depths, indexes,
  // anti-entropy summaries) was rebuilt by deserialize + pipeline replay;
  // both it and the live source must satisfy every tangle invariant.
  sim::Scheduler sched;
  sim::Network net(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(1));
  auto restored = restore(net);
  testutil::expect_audit_clean(factory_.gateway(0).tangle());
  tangle::AuditInputs inputs;
  inputs.ledger = &restored.ledger();
  inputs.expected_supply = 0;  // scenarios seed no balances
  inputs.credit_valid_tx_count =
      [&restored](const tangle::AccountKey& key) -> std::size_t {
    const auto* model = restored.credit_registry().find(key);
    return model == nullptr ? 0 : model->valid_tx_count();
  };
  testutil::expect_audit_clean(restored.tangle(), inputs);
}

TEST_F(RestoreTest, TangleIdentical) {
  sim::Scheduler sched;
  sim::Network net(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(1));
  auto restored = restore(net);
  EXPECT_EQ(restored.tangle().size(), factory_.gateway(0).tangle().size());
  EXPECT_EQ(restored.tangle().tips(), factory_.gateway(0).tangle().tips());
}

TEST_F(RestoreTest, AuthorizationListRebuilt) {
  sim::Scheduler sched;
  sim::Network net(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(1));
  auto restored = restore(net);
  EXPECT_EQ(restored.auth_registry().authorized_count(),
            factory_.device_count());
  for (std::size_t d = 0; d < factory_.device_count(); ++d) {
    EXPECT_TRUE(restored.auth_registry().is_authorized(
        factory_.device(d).public_identity().sign_key));
  }
}

TEST_F(RestoreTest, LedgerSlotsRebuilt) {
  sim::Scheduler sched;
  sim::Network net(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(1));
  auto restored = restore(net);
  for (std::size_t d = 0; d < factory_.device_count(); ++d) {
    const auto key = factory_.device(d).public_identity().sign_key;
    EXPECT_EQ(restored.ledger().next_sequence(key),
              factory_.gateway(0).ledger().next_sequence(key))
        << "device " << d;
  }
}

TEST_F(RestoreTest, MilestoneConfirmationsRebuilt) {
  sim::Scheduler sched;
  sim::Network net(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(1));
  auto restored = restore(net);
  EXPECT_EQ(restored.milestones().confirmed_count(),
            factory_.gateway(0).milestones().confirmed_count());
  EXPECT_EQ(restored.milestones().milestone_count(),
            factory_.gateway(0).milestones().milestone_count());
}

TEST_F(RestoreTest, CreditHistoryRebuiltFromChain) {
  sim::Scheduler sched;
  sim::Network net(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(1));
  auto restored = restore(net);
  // Credit is a function of wall time (the dT window); compare quotes at
  // the same instant the live gateway is at.
  sched.run_until(20.0);
  // Honest devices' positive credit reproduces: same difficulty quotes.
  // (Service-edge-rejected double-spends are NOT on chain — only the live
  // gateway saw those — so the restored attacker may look cleaner; the
  // on-chain evidence still yields consistent quotes for honest nodes.)
  for (const std::size_t d : {0u, 2u, 3u}) {
    const auto key = factory_.device(d).public_identity().sign_key;
    EXPECT_EQ(restored.required_difficulty(key),
              factory_.gateway(0).required_difficulty(key))
        << "device " << d;
  }
}

TEST_F(RestoreTest, RestoredGatewayServesTraffic) {
  // Attach the restored gateway on a fresh network and run a device on it.
  sim::Scheduler sched;
  sim::Network net(sched, std::make_unique<sim::FixedLatency>(0.002), Rng(2));
  auto restored = restore(net);
  restored.attach();

  node::LightNodeConfig dev_config;
  dev_config.profile.hash_rate_hz = 1e6;
  dev_config.collect_interval = 0.5;
  // Device 0's identity is already authorized on the restored chain; it
  // resumes its sequence counter from the rebuilt ledger, like a restarted
  // physical device reading its persisted counter.
  const auto identity =
      crypto::Identity::deterministic(restore_config().seed * 5000 + 100);
  node::LightNode device(100, identity, 99, net, dev_config);
  device.resume_sequence(
      restored.ledger().next_sequence(identity.public_identity().sign_key));
  device.start();
  sched.run_until(10.0);

  EXPECT_GT(device.stats().accepted, 10u);
}

TEST(LivePrune, GatewayPrunesAndDevicesReanchor) {
  // Single-gateway deployment (operational pruning in a multi-gateway net
  // must be coordinated — see Gateway::snapshot_and_prune docs).
  auto config = restore_config();
  config.num_gateways = 1;
  config.enable_coordinator = false;
  factory::SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(20.0);

  const auto before = factory.gateway(0).tangle().size();
  ASSERT_GT(before, 50u);
  const auto device0_key = factory.device(0).public_identity().sign_key;
  const auto seq_before = factory.gateway(0).ledger().next_sequence(device0_key);
  const int difficulty_before = factory.gateway(0).required_difficulty(device0_key);

  std::vector<std::pair<tangle::Transaction, double>> archived;
  const auto count = factory.gateway(0).snapshot_and_prune(
      15.0, [&](const tangle::Transaction& tx, TimePoint arrival) {
        archived.emplace_back(tx, arrival);
      });

  // Everything left the hot set into the archive; hot set is genesis-only.
  EXPECT_EQ(count, before - 1);
  EXPECT_EQ(archived.size(), before - 1);
  EXPECT_EQ(factory.gateway(0).tangle().size(), 1u);

  // Ledger and credit carried over: sequences keep counting. Difficulty may
  // drift up slightly — archived transactions' validation counts are no
  // longer resolvable, so their credit weight degrades to the base 1 — but
  // an honest device never exceeds the initial difficulty.
  EXPECT_EQ(factory.gateway(0).ledger().next_sequence(device0_key), seq_before);
  EXPECT_GE(factory.gateway(0).required_difficulty(device0_key),
            difficulty_before);
  EXPECT_LE(factory.gateway(0).required_difficulty(device0_key),
            config.gateway.credit.initial_difficulty);

  // Devices keep running: their next tips request re-anchors on the
  // snapshot genesis and traffic continues.
  factory.run_until(40.0);
  EXPECT_GT(factory.gateway(0).tangle().size(), 20u);
  EXPECT_GT(factory.gateway(0).ledger().next_sequence(device0_key), seq_before);
  // The pruned hot set was rebuilt around a fresh snapshot genesis; its
  // incremental state must audit clean too.
  testutil::expect_audit_clean(factory.gateway(0).tangle());
}

TEST(Lifecycle, RunPruneArchiveRestoreContinue) {
  // The whole operational story in one pass: run a factory, snapshot and
  // prune the gateway, archive the history, cold-restore a fresh gateway
  // from the pruned hot set, and keep serving devices — with the archive
  // still accounting for every pre-prune transaction.
  auto config = restore_config();
  config.num_gateways = 1;
  config.enable_coordinator = false;

  const std::string archive_path = "/tmp/biot_lifecycle_archive.bin";
  const std::string tangle_path = "/tmp/biot_lifecycle_tangle.bin";
  std::remove(archive_path.c_str());

  factory::SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(20.0);
  const auto pre_prune = factory.gateway(0).tangle().size();

  // Prune into a real archive file.
  {
    storage::ArchiveWriter archive(archive_path);
    const auto archived = factory.gateway(0).snapshot_and_prune(
        20.0, [&](const tangle::Transaction& tx, TimePoint arrival) {
          ASSERT_TRUE(archive.append(tx, arrival).is_ok());
        });
    EXPECT_EQ(archived, pre_prune - 1);
  }

  // Keep running on the pruned hot set, then persist it.
  factory.run_until(35.0);
  const auto hot = factory.gateway(0).tangle().size();
  EXPECT_GT(hot, 20u);
  ASSERT_TRUE(storage::save_tangle(factory.gateway(0).tangle(), tangle_path)
                  .is_ok());

  // Cold-restore a fresh gateway from disk; note the authorization list
  // lives in the ARCHIVED region (published at bootstrap), so the restored
  // node re-learns it from the snapshot-state replay... it cannot — the
  // snapshot genesis only commits to the hash. Re-authorize explicitly,
  // as an operator redeploying against a pruned chain would.
  sim::Scheduler sched;
  sim::Network net(sched, std::make_unique<sim::FixedLatency>(0.002), Rng(9));
  auto reloaded = storage::load_tangle(tangle_path);
  ASSERT_TRUE(reloaded.is_ok());
  const auto manager_identity = crypto::Identity::deterministic(config.seed);
  node::Gateway restored(1, crypto::Identity::deterministic(42),
                         manager_identity.public_identity().sign_key,
                         std::move(reloaded).take(), net,
                         restore_config().gateway);
  restored.attach();
  node::Manager manager(2, manager_identity, restored, net);
  manager.attach();
  EXPECT_EQ(restored.tangle().size(), hot);

  const auto device_identity =
      crypto::Identity::deterministic(config.seed * 5000 + 100);
  ASSERT_TRUE(manager.authorize({device_identity.public_identity()}).is_ok());

  node::LightNodeConfig dev_config;
  dev_config.profile.hash_rate_hz = 1e6;
  dev_config.collect_interval = 0.5;
  node::LightNode device(100, device_identity, 1, net, dev_config);
  device.resume_sequence(restored.ledger().next_sequence(
      device_identity.public_identity().sign_key));
  device.start();
  sched.run_until(10.0);
  EXPECT_GT(device.stats().accepted, 10u);

  // The archive accounts for everything pruned, fully verified.
  const auto archived = storage::read_archive(archive_path);
  ASSERT_TRUE(archived.is_ok());
  EXPECT_EQ(archived.value().size(), pre_prune - 1);
  testutil::expect_audit_clean(restored.tangle());
  std::remove(archive_path.c_str());
  std::remove(tangle_path.c_str());
}

}  // namespace
}  // namespace biot
