// Randomized end-to-end property sweeps: across seeds, device counts, loss
// rates and attack mixes, the system-wide invariants must hold.
#include <gtest/gtest.h>

#include "factory/scenario.h"

namespace biot::factory {
namespace {

struct SweepParams {
  std::uint64_t seed;
  int devices;
  double loss;
  bool attacks;
  bool coordinator;
};

std::string param_name(const ::testing::TestParamInfo<SweepParams>& info) {
  const auto& p = info.param;
  std::string name = "seed" + std::to_string(p.seed) + "_dev" +
                     std::to_string(p.devices);
  if (p.loss > 0) name += "_lossy";
  if (p.attacks) name += "_attacked";
  if (p.coordinator) name += "_coord";
  return name;
}

class ScenarioSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(ScenarioSweep, SystemInvariantsHold) {
  const auto& p = GetParam();

  ScenarioConfig config;
  config.seed = p.seed;
  config.num_devices = p.devices;
  config.num_gateways = 2;
  config.distribute_keys = true;
  config.enable_coordinator = p.coordinator;
  config.milestone_interval = 4.0;
  config.gateway.sync_interval = 3.0;  // heals lossy gossip
  config.gateway.credit.initial_difficulty = 4;
  config.gateway.credit.max_difficulty = 8;
  config.device.collect_interval = 0.5;
  config.device.profile.hash_rate_hz = 1e6;

  SmartFactory factory(config);
  factory.bootstrap();
  if (p.loss > 0) factory.network().set_loss_rate(p.loss);
  if (p.attacks) {
    factory.device(1).schedule_attack(5.0, node::AttackKind::kDoubleSpend);
    factory.device(1).schedule_attack(15.0, node::AttackKind::kLazyTips);
  }
  factory.run_until(30.0);
  factory.network().set_loss_rate(0.0);  // let anti-entropy finish the job
  factory.run_until(45.0);

  // --- Invariant 1: every attached transaction is fully valid. ------------
  const auto authorized_or_system =
      [&](const tangle::Transaction& tx) {
        if (tx.type == tangle::TxType::kGenesis) return true;
        const auto& auth = factory.gateway(0).auth_registry();
        if (auth.is_manager(tx.sender)) return true;
        if (tx.type == tangle::TxType::kMilestone) return true;  // checked below
        return auth.is_authorized(tx.sender);
      };
  const auto& tangle0 = factory.gateway(0).tangle();
  for (const auto& id : tangle0.arrival_order()) {
    const auto* rec = tangle0.find(id);
    if (rec->tx.type == tangle::TxType::kGenesis) continue;
    EXPECT_TRUE(rec->tx.signature_valid()) << id.hex();
    EXPECT_TRUE(tangle::pow_valid(rec->tx)) << id.hex();
    EXPECT_TRUE(authorized_or_system(rec->tx)) << id.hex();
    EXPECT_TRUE(tangle0.contains(rec->tx.parent1));
    EXPECT_TRUE(tangle0.contains(rec->tx.parent2));
  }

  // --- Invariant 2: replicas converge (anti-entropy closes gossip gaps). --
  ASSERT_EQ(factory.gateway(0).tangle().size(),
            factory.gateway(1).tangle().size());
  for (const auto& id : tangle0.arrival_order())
    EXPECT_TRUE(factory.gateway(1).tangle().contains(id));

  // --- Invariant 3: no duplicate (sender, sequence) slot on any replica. --
  for (std::size_t g = 0; g < factory.gateway_count(); ++g) {
    std::set<std::pair<tangle::AccountKey, std::uint64_t>> slots;
    const auto& t = factory.gateway(g).tangle();
    for (const auto& id : t.arrival_order()) {
      const auto* rec = t.find(id);
      if (rec->tx.type == tangle::TxType::kGenesis) continue;
      EXPECT_TRUE(slots.emplace(rec->tx.sender, rec->tx.sequence).second)
          << "double-spend slipped through on gateway " << g;
    }
  }

  // --- Invariant 4: difficulty policy stays within bounds. -----------------
  for (std::size_t d = 0; d < factory.device_count(); ++d) {
    const int difficulty = factory.gateway(0).required_difficulty(
        factory.device(d).public_identity().sign_key);
    EXPECT_GE(difficulty, config.gateway.credit.min_difficulty);
    EXPECT_LE(difficulty, config.gateway.credit.max_difficulty);
  }

  // --- Invariant 5: progress. Honest devices always get work through. ------
  EXPECT_GT(factory.device(0).stats().accepted, 10u);

  // --- Invariant 6: determinism — a re-run with the same config matches. ---
  SmartFactory replay(config);
  replay.bootstrap();
  if (p.loss > 0) replay.network().set_loss_rate(p.loss);
  if (p.attacks) {
    replay.device(1).schedule_attack(5.0, node::AttackKind::kDoubleSpend);
    replay.device(1).schedule_attack(15.0, node::AttackKind::kLazyTips);
  }
  replay.run_until(30.0);
  replay.network().set_loss_rate(0.0);
  replay.run_until(45.0);
  EXPECT_EQ(replay.gateway(0).tangle().size(), tangle0.size());
  EXPECT_EQ(replay.total_accepted(), factory.total_accepted());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScenarioSweep,
    ::testing::Values(SweepParams{1, 4, 0.0, false, false},
                      SweepParams{2, 4, 0.0, true, false},
                      SweepParams{3, 6, 0.05, false, false},
                      SweepParams{4, 6, 0.05, true, true},
                      SweepParams{5, 2, 0.0, false, true},
                      SweepParams{6, 8, 0.02, true, false}),
    param_name);

}  // namespace
}  // namespace biot::factory
