#pragma once

#include <cstddef>

namespace biot::tangle {
class Tangle {
 public:
  std::size_t weight(int id) const;
  // Reference twin, cross-checked in tests/.
  std::size_t weight_brute_force(int id) const;
};
}  // namespace biot::tangle
