namespace biot::node {
// The reconnect drain batches the whole chunk through admit_many; the one
// single admission is a justified control-plane case, not a queue drain.
int drain_outbox(Gateway& gateway, int chunk) {
  return gateway.admit_many(chunk);
}
int drain_probe(Gateway& gateway, int tx) {
  // biot-lint: allow(drain-batch) liveness probe tx, not an outbox drain
  return gateway.admit(tx);
}
int request_drain(Gateway& gateway);  // declaration: no body to scan
}  // namespace biot::node
