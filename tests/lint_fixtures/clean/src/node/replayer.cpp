namespace biot::node {
int restore(Tangle& tangle) {
  // biot-lint: allow(tangle-add) replays records that already passed admission
  return tangle.add(0);
}
}  // namespace biot::node
