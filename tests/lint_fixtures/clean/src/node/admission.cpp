namespace biot::node {
// Final stage of the staged pipeline — the one place in node/ that may
// attach directly.
int stage_attach(Tangle& tangle_) {
  return tangle_.add(0);
}
}  // namespace biot::node
