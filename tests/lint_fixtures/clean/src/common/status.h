// Fixture: minimal guarded-enum header. biot_lint parses ErrorCode from
// this path, so the fixture tree exercises the real lookup logic.
#pragma once

namespace biot {
enum class ErrorCode {
  kOk = 0,
  kBad,
};
}  // namespace biot
