#include "common/status.h"

namespace biot {
const char* name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kBad:
      return "bad";
  }
  return "?";
}

// Suppressed non-exhaustive switch: the allow() carries a rationale and
// sits directly above the switch statement.
const char* coarse(ErrorCode code) {
  // biot-lint: allow(enum-switch) fixture: demonstrates a justified default
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    default:
      return "error";
  }
}
}  // namespace biot
