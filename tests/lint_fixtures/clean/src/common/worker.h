// Fixture: a Mutex-owning class with the guarded-field discipline — every
// mutable member annotated or carrying a justified allow(), and the raw-sync
// carve-out path exercised with a rationale (mirrors src/common/sync.h).
#pragma once

namespace biot {
class Worker {
 public:
  void poke();

 private:
  sync::Mutex mutex_;
  int count_ GUARDED_BY(mutex_) = 0;
  // biot-lint: allow(guarded-field) written once in the constructor
  unsigned seed_ = 0;
};

// biot-lint: allow(raw-sync) fixture exercising the wrapper-layer carve-out
using RawHandle = std::mutex*;
}  // namespace biot
