#include <map>

namespace biot::consensus {
int lookup(const std::map<int, int>& m, int id) {
  auto it = m.find(id);
  if (it == m.end()) return -1;
  // Parent ids are attach-checked before insertion, so presence holds.
  return m.at(id);  // biot-lint: allow(checked-at) attach-checked above
}
unsigned validate(unsigned nonce) {
  // biot-lint: allow(pow-midstate) one-shot validity check, not a grind loop
  return pow_output(0, 0, nonce);
}
}  // namespace biot::consensus
