// A synchronous harness-based bench. The word "synchronous" and this
// comment's mention of std::chrono must NOT trip the bench-harness rule:
// comments are stripped and only qualified uses match.
#include "harness.h"

int main(int argc, char** argv) {
  biot::bench::Harness h("good", argc, argv);
  h.record("throughput", 1.0, "tx/s");
  // biot-lint: allow(bench-harness) adapting a callback API that hands us chrono durations; the measurement itself goes through the harness
  const long long ticks = std::chrono::milliseconds(1).count();
  h.record("ticks", static_cast<double>(ticks), "ms");
  return h.finish();
}
