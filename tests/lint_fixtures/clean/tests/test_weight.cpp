// Fixture test: mentions weight_brute_force so the twin rule is satisfied.
// EXPECT_EQ(t.weight(id), t.weight_brute_force(id));
