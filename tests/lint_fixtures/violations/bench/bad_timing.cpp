// Hand-rolled timing that bypasses the shared bench harness entirely.
#include <chrono>

int main() {
  const auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  return 0;
}
