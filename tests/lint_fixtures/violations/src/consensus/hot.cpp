#include <map>

namespace biot::consensus {
int lookup(const std::map<int, int>& m, int id) {
  return m.at(id);
}
int lookup2(const std::map<int, int>& m, int id) {
  return m.at(id);  // biot-lint: allow(checked-at)
}
}  // namespace biot::consensus
