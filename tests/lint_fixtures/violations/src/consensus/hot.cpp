#include <map>

namespace biot::consensus {
int lookup(const std::map<int, int>& m, int id) {
  return m.at(id);
}
int lookup2(const std::map<int, int>& m, int id) {
  return m.at(id);  // biot-lint: allow(checked-at)
}
unsigned grind(unsigned nonce) {
  return pow_output(0, 0, nonce);
}
}  // namespace biot::consensus
