namespace biot::node {
int inject(Tangle& tangle_) {
  return tangle_.add(0);
}
int inject_again(Tangle& tangle_) {
  return tangle_.add(0);  // biot-lint: allow(tangle-add)
}
}  // namespace biot::node
