#include "../common/status.h"

namespace biot::node {
// Orphan reference implementation: no incremental twin, never tested.
int score_brute_force(int id);
}  // namespace biot::node
