namespace biot::node {
int drain_outbox(Gateway& gateway, int* txs, int n) {
  int ok = 0;
  for (int i = 0; i < n; ++i) ok += gateway.admit(txs[i]);
  // biot-lint: allow(drain-batch)
  ok += gateway.admit(n);
  return ok;
}
}  // namespace biot::node
