#pragma once

namespace biot {
enum class ErrorCode {
  kOk = 0,
  kBad,
  kUgly,
};
}  // namespace biot
