#include "node/helper.h"
#include "common/status.h"

namespace biot {
const char* name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    default:
      return "error";
  }
}
}  // namespace biot
