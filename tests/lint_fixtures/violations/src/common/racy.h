#pragma once

namespace biot {
class Racy {
 public:
  void touch();

 private:
  sync::Mutex mutex_;
  int counter_ = 0;
  // biot-lint: allow(guarded-field)
  int hits_ = 0;
};
}  // namespace biot
