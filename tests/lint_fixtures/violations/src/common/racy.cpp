#include "common/racy.h"

namespace biot {
std::mutex g_raw;
void touch() {
  std::lock_guard<std::mutex> lock(g_raw);
}
// biot-lint: allow(raw-sync)
std::condition_variable g_cv;
}  // namespace biot
