// Chaos engine suite: fault-plan parsing, scripted fault execution, the
// crash -> restore -> resync gateway lifecycle, light-node failback, and the
// ConvergenceChecker that turns "the cluster survived" into an invariant.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "factory/scenario.h"
#include "node/convergence.h"
#include "sim/chaos.h"
#include "test_util.h"

namespace biot {
namespace {

// ---- FaultPlan parsing -----------------------------------------------------

TEST(FaultPlan, ParseToStringRoundTrips) {
  const std::string spec =
      "0:loss:0.05;0:dup:0.02;1:reorder:0.3:0.05;2:corrupt:0.01;"
      "3:bandwidth:5000;4:partition:1,2;6:heal;8:crash:1;12:restart:1;"
      "13:linkdown:0,2;14:linkup:0,2";
  const auto plan = sim::FaultPlan::parse(spec);
  ASSERT_TRUE(plan) << plan.status().to_string();
  EXPECT_EQ(plan.value().to_string(), spec);
  EXPECT_EQ(plan.value().events.size(), 11u);
  EXPECT_EQ(plan.value().end(), 14.0);
}

TEST(FaultPlan, ParseToleratesTrailingSeparator) {
  const auto plan = sim::FaultPlan::parse("1:heal;");
  ASSERT_TRUE(plan);
  EXPECT_EQ(plan.value().events.size(), 1u);
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  const char* bad[] = {
      "1:frobnicate",      // unknown action
      "0:loss:1.5",        // probability out of range
      "0:dup:-0.1",        // negative probability
      "-1:heal",           // negative time
      "x:heal",            // non-numeric time
      "5:crash",           // missing node id
      "5:crash:1,2",       // too many ids for crash
      "5:restart:abc",     // non-numeric id
      "1:linkdown:3",      // linkdown needs exactly two ids
      "1:partition",       // partition needs a group
      "2:heal:1",          // heal takes no arguments
      "1:reorder:0.5:-2",  // negative jitter
      "3:bandwidth:-1",    // negative bandwidth
  };
  for (const auto* spec : bad) {
    const auto plan = sim::FaultPlan::parse(spec);
    EXPECT_FALSE(plan) << "accepted malformed spec: " << spec;
    if (!plan) {
      EXPECT_EQ(plan.status().code(), ErrorCode::kInvalidArgument) << spec;
    }
  }
}

TEST(FaultPlan, MapIdsRewritesEveryNodeReference) {
  auto plan = sim::FaultPlan::parse("1:crash:0;2:partition:0,1;3:linkdown:1,2")
                  .value();
  plan.map_ids([](sim::NodeId id) { return id + 100; });
  EXPECT_EQ(plan.events[0].nodes, (std::vector<sim::NodeId>{100}));
  EXPECT_EQ(plan.events[1].nodes, (std::vector<sim::NodeId>{100, 101}));
  EXPECT_EQ(plan.events[2].nodes, (std::vector<sim::NodeId>{101, 102}));
}

TEST(FaultPlan, RandomSoakIsSeedDeterministicAndWellFormed) {
  const std::vector<sim::NodeId> nodes{1, 2, 3};
  sim::FaultPlan::SoakOptions options;
  options.crash_cycles = 3;
  options.partition_at = 10.0;

  Rng rng_a(42), rng_b(42), rng_c(43);
  const auto a = sim::FaultPlan::random_soak(nodes, rng_a, options);
  const auto b = sim::FaultPlan::random_soak(nodes, rng_b, options);
  const auto c = sim::FaultPlan::random_soak(nodes, rng_c, options);
  EXPECT_EQ(a.to_string(), b.to_string());  // same seed, same plan
  EXPECT_NE(a.to_string(), c.to_string());  // different seed, different plan

  // Sorted by time, every crash paired with a later restart of the same
  // node, all times within the horizon.
  std::map<sim::NodeId, int> down;
  TimePoint last = 0.0;
  int crashes = 0;
  for (const auto& event : a.events) {
    EXPECT_GE(event.at, last);
    last = event.at;
    EXPECT_LE(event.at, options.horizon);
    if (event.kind == sim::FaultKind::kCrash) {
      ++crashes;
      EXPECT_EQ(down[event.nodes[0]]++, 0) << "crash while already down";
    }
    if (event.kind == sim::FaultKind::kRestart) {
      EXPECT_EQ(--down[event.nodes[0]], 0) << "restart without crash";
    }
  }
  EXPECT_EQ(crashes, options.crash_cycles);
  for (const auto& [node, count] : down) EXPECT_EQ(count, 0);
}

// ---- ChaosEngine mechanics -------------------------------------------------

TEST(ChaosEngine, LifecycleHandlersFireOncePerTransition) {
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.001),
                       Rng(1));
  std::vector<sim::NodeId> crashed, restarted;
  sim::ChaosEngine engine(
      network, [&](sim::NodeId id) { crashed.push_back(id); },
      [&](sim::NodeId id) { restarted.push_back(id); });

  // Double crash and double restart: the engine tracks liveness, so each
  // handler fires exactly once per actual transition.
  const auto plan =
      sim::FaultPlan::parse("1:crash:5;2:crash:5;3:restart:5;4:restart:5")
          .value();
  engine.schedule(plan);
  sched.run();
  EXPECT_EQ(crashed, (std::vector<sim::NodeId>{5}));
  EXPECT_EQ(restarted, (std::vector<sim::NodeId>{5}));
  EXPECT_EQ(engine.stats().crashes, 1u);
  EXPECT_EQ(engine.stats().restarts, 1u);
  EXPECT_TRUE(engine.crashed().empty());
}

TEST(ChaosEngine, FinaleHealsEverythingAndRestartsLeftovers) {
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.001),
                       Rng(2));
  std::vector<sim::NodeId> restarted;
  sim::ChaosEngine engine(network, {},
                          [&](sim::NodeId id) { restarted.push_back(id); });

  const auto plan = sim::FaultPlan::parse(
                        "0:loss:0.5;0:dup:0.2;1:partition:3;2:crash:3")
                        .value();
  engine.schedule(plan);
  engine.schedule_finale(5.0);
  sched.run();

  // The plan deliberately ends with node 3 down and the network dirty; the
  // finale restarts it and restores clean delivery.
  EXPECT_EQ(restarted, (std::vector<sim::NodeId>{3}));
  EXPECT_TRUE(engine.crashed().empty());

  bool delivered = false;
  network.attach(3, [&](sim::NodeId, const Bytes&) { delivered = true; });
  for (int i = 0; i < 20; ++i) network.send(1, 3, to_bytes("after"));
  sched.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(network.stats().dropped_loss, 0u);  // loss was zeroed by finale
}

// ---- Full-stack chaos scenarios --------------------------------------------

factory::ScenarioConfig chaos_config(std::uint64_t seed, int gateways = 3,
                                     int devices = 6) {
  factory::ScenarioConfig config;
  config.num_gateways = gateways;
  config.num_devices = devices;
  config.distribute_keys = false;
  config.seed = seed;
  config.device.collect_interval = 0.5;
  config.device.request_timeout = 2.0;
  config.device.failback_probe_interval = 2.0;
  config.gateway.sync_interval = 1.0;
  config.gateway.credit.initial_difficulty = 6;  // keep host PoW cheap
  return config;
}

struct ChaosRun {
  std::vector<std::size_t> sizes;
  tangle::IdDigest digest;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t accepted = 0;
  sim::ChaosStats chaos;
  bool converged = false;
};

/// The acceptance scenario: gateway 1 crashes and restarts twice under
/// concurrent 5% loss + duplication + reordering and a 2-way partition.
ChaosRun run_acceptance(std::uint64_t seed) {
  factory::SmartFactory factory(chaos_config(seed));
  factory.bootstrap();

  auto plan = sim::FaultPlan::parse(
                  "0:loss:0.05;0:dup:0.05;0:reorder:0.3:0.05;"
                  "6:partition:1;10:heal;12:crash:1;17:restart:1;"
                  "21:crash:1;26:restart:1")
                  .value();
  plan.map_ids([&](sim::NodeId g) { return factory.gateway(g).node_id(); });
  sim::ChaosEngine engine(
      factory.network(),
      [&](sim::NodeId id) {
        for (std::size_t g = 0; g < factory.gateway_count(); ++g)
          if (factory.gateway(g).node_id() == id) factory.crash_gateway(g);
      },
      [&](sim::NodeId id) {
        for (std::size_t g = 0; g < factory.gateway_count(); ++g)
          if (factory.gateway(g).node_id() == id) factory.restart_gateway(g);
      });
  engine.schedule(plan);
  const double horizon = 32.0;
  engine.schedule_finale(horizon);
  factory.run_until(horizon);
  factory.stop_devices();
  factory.run_until(horizon + 10.0);

  node::ConvergenceChecker checker;
  for (std::size_t g = 0; g < factory.gateway_count(); ++g)
    checker.add_replica(&factory.gateway(g));
  const auto report = checker.check();
  EXPECT_TRUE(report.ok()) << report.to_string();

  ChaosRun run;
  for (std::size_t g = 0; g < factory.gateway_count(); ++g)
    run.sizes.push_back(factory.gateway(g).tangle().size());
  run.digest = factory.gateway(0).tangle().id_digest();
  run.sent = factory.network().stats().sent;
  run.delivered = factory.network().stats().delivered;
  run.accepted = factory.total_accepted();
  run.chaos = engine.stats();
  run.converged = report.ok();
  return run;
}

TEST(ChaosScenario, CrashRestartTwiceUnderAdversarialNetworkConverges) {
  const auto run = run_acceptance(7);
  EXPECT_TRUE(run.converged);
  EXPECT_EQ(run.chaos.crashes, 2u);
  EXPECT_EQ(run.chaos.restarts, 2u);
  EXPECT_EQ(run.chaos.partitions, 1u);
  EXPECT_GT(run.accepted, 0u);
  // Every replica carries the identical history.
  for (const auto size : run.sizes) EXPECT_EQ(size, run.sizes.front());
}

TEST(ChaosScenario, IdenticalSeedsReproduceIdenticalOutcomes) {
  const auto a = run_acceptance(11);
  const auto b = run_acceptance(11);
  EXPECT_TRUE(a.digest == b.digest);
  EXPECT_EQ(a.sizes, b.sizes);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.accepted, b.accepted);
}

TEST(ChaosScenario, CorruptionStormNeverAdmitsInvalidTransactions) {
  factory::SmartFactory factory(chaos_config(3, /*gateways=*/2,
                                             /*devices=*/4));
  factory.bootstrap();

  sim::ChaosEngine engine(factory.network());
  engine.schedule(
      sim::FaultPlan::parse("0:corrupt:0.25;0:dup:0.05").value());
  engine.schedule_finale(20.0);
  factory.run_until(20.0);
  factory.stop_devices();
  factory.run_until(30.0);

  // Corruption really happened, no node crashed (we got here), and every
  // replica is audit-clean: nothing invalid was admitted anywhere.
  EXPECT_GT(factory.network().stats().corrupted, 0u);
  node::ConvergenceChecker checker;
  for (std::size_t g = 0; g < factory.gateway_count(); ++g)
    checker.add_replica(&factory.gateway(g));
  const auto report = checker.check();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ChaosScenario, DevicesFailOverWhileGatewayDownAndFailBackAfterRestart) {
  factory::SmartFactory factory(chaos_config(5, /*gateways=*/2,
                                             /*devices=*/4));
  factory.bootstrap();

  factory.run_until(5.0);
  ASSERT_TRUE(factory.gateway_running(0));
  factory.crash_gateway(0);
  EXPECT_FALSE(factory.gateway_running(0));
  EXPECT_FALSE(factory.network().is_attached(factory.gateway(0).node_id()));

  // Devices homed on gateway 0 time out and re-home to gateway 1.
  factory.run_until(20.0);
  std::uint64_t failovers = 0;
  for (std::size_t d = 0; d < factory.device_count(); ++d)
    failovers += factory.device(d).stats().failovers;
  EXPECT_GT(failovers, 0u);

  factory.restart_gateway(0);
  EXPECT_TRUE(factory.gateway_running(0));

  // The failback probe notices the primary recovered and drifts devices
  // back to it.
  factory.run_until(40.0);
  std::uint64_t failbacks = 0;
  bool any_home_again = false;
  for (std::size_t d = 0; d < factory.device_count(); ++d) {
    failbacks += factory.device(d).stats().failbacks;
    if (factory.device(d).current_gateway() == factory.gateway(0).node_id())
      any_home_again = true;
  }
  EXPECT_GT(failbacks, 0u);
  EXPECT_TRUE(any_home_again);

  // And the restarted replica converges with the survivor.
  factory.stop_devices();
  factory.run_until(50.0);
  node::ConvergenceChecker checker;
  checker.add_replica(&factory.gateway(0));
  checker.add_replica(&factory.gateway(1));
  const auto report = checker.check();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ChaosScenario, ConvergenceCheckerFlagsRealDivergence) {
  // Sever the inter-gateway link with sync disabled: the two replicas MUST
  // diverge (each keeps only its own devices' transactions), and the
  // checker must say so — proof it can fail, not just rubber-stamp.
  auto config = chaos_config(9, /*gateways=*/2, /*devices=*/4);
  config.gateway.sync_interval = 0.0;
  factory::SmartFactory factory(config);
  factory.bootstrap();
  factory.network().set_link_down(factory.gateway(0).node_id(),
                                  factory.gateway(1).node_id(), true);
  factory.run_until(15.0);
  factory.stop_devices();
  factory.run_until(20.0);

  node::ConvergenceChecker checker;
  checker.add_replica(&factory.gateway(0));
  checker.add_replica(&factory.gateway(1));
  const auto report = checker.check();
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.violations.empty());
}

TEST(ChaosScenario, CheckerSkipsStoppedReplicasAndNeedsOneRunning) {
  factory::SmartFactory factory(chaos_config(13, /*gateways=*/2,
                                             /*devices=*/2));
  factory.bootstrap();
  factory.run_until(5.0);
  factory.crash_gateway(1);
  factory.stop_devices();
  factory.run_until(8.0);

  node::ConvergenceChecker checker;
  checker.add_replica(&factory.gateway(0));
  checker.add_replica(&factory.gateway(1));
  const auto report = checker.check();
  EXPECT_TRUE(report.ok()) << report.to_string();  // stopped replica skipped
  EXPECT_EQ(report.replicas_checked, 1u);
  EXPECT_EQ(report.replicas_skipped, 1u);

  factory.crash_gateway(0);
  const auto empty = checker.check();
  EXPECT_FALSE(empty.ok());  // no running replica is NOT convergence
  EXPECT_EQ(empty.replicas_checked, 0u);
}

}  // namespace
}  // namespace biot
