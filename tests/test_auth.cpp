// Data authority management tests: authorization lists (Eqn 1), symmetric
// envelopes, and sensor-data protection.
#include <gtest/gtest.h>

#include "auth/authorization.h"
#include "auth/data_protection.h"
#include "auth/envelope.h"
#include "test_util.h"

namespace biot::auth {
namespace {

crypto::Identity manager_id() { return crypto::Identity::deterministic(100); }
crypto::Identity device_id(int i) {
  return crypto::Identity::deterministic(200 + i);
}

tangle::Transaction signed_auth_tx(const crypto::Identity& signer,
                                   const AuthorizationList& list,
                                   std::uint64_t seq = 0) {
  auto tx = make_authorization_tx(signer, list, seq, 1.0);
  // Minimal valid PoW so the tx could also pass tangle checks.
  tx.difficulty = 1;
  consensus::Miner miner;
  tx.nonce = miner.mine(tx.parent1, tx.parent2, tx.difficulty)->nonce;
  tx.signature = signer.sign(tx.signing_bytes());
  return tx;
}

TEST(AuthorizationList, EncodeDecodeRoundTrip) {
  AuthorizationList list;
  for (int i = 0; i < 5; ++i) list.devices.push_back(device_id(i).public_identity());
  const auto decoded = AuthorizationList::decode(list.encode());
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded.value().devices.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(decoded.value().devices[i], list.devices[i]);
}

TEST(AuthorizationList, EmptyListRoundTrip) {
  const auto decoded = AuthorizationList::decode(AuthorizationList{}.encode());
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded.value().devices.empty());
}

TEST(AuthorizationList, DecodeRejectsTruncation) {
  AuthorizationList list;
  list.devices.push_back(device_id(0).public_identity());
  Bytes wire = list.encode();
  wire.pop_back();
  EXPECT_FALSE(AuthorizationList::decode(wire));
}

class AuthRegistryTest : public ::testing::Test {
 protected:
  AuthRegistryTest()
      : manager_(manager_id()),
        registry_(manager_.public_identity().sign_key) {}

  crypto::Identity manager_;
  AuthRegistry registry_;
};

TEST_F(AuthRegistryTest, ManagerListAuthorizesDevices) {
  AuthorizationList list;
  list.devices.push_back(device_id(1).public_identity());
  list.devices.push_back(device_id(2).public_identity());
  ASSERT_TRUE(registry_.apply(signed_auth_tx(manager_, list)).is_ok());

  EXPECT_TRUE(registry_.is_authorized(device_id(1).public_identity().sign_key));
  EXPECT_TRUE(registry_.is_authorized(device_id(2).public_identity().sign_key));
  EXPECT_FALSE(registry_.is_authorized(device_id(3).public_identity().sign_key));
  EXPECT_EQ(registry_.authorized_count(), 2u);
}

TEST_F(AuthRegistryTest, UpdateReplacesList) {
  AuthorizationList first;
  first.devices.push_back(device_id(1).public_identity());
  ASSERT_TRUE(registry_.apply(signed_auth_tx(manager_, first, 0)).is_ok());

  AuthorizationList second;
  second.devices.push_back(device_id(2).public_identity());
  ASSERT_TRUE(registry_.apply(signed_auth_tx(manager_, second, 1)).is_ok());

  // Deauthorization by omission (the paper's authorize/deauthorize flow).
  EXPECT_FALSE(registry_.is_authorized(device_id(1).public_identity().sign_key));
  EXPECT_TRUE(registry_.is_authorized(device_id(2).public_identity().sign_key));
  EXPECT_EQ(registry_.updates_applied(), 2u);
}

TEST_F(AuthRegistryTest, RejectsNonManagerPublisher) {
  const auto impostor = device_id(66);
  AuthorizationList list;
  list.devices.push_back(impostor.public_identity());
  const auto status = registry_.apply(signed_auth_tx(impostor, list));
  EXPECT_EQ(status.code(), ErrorCode::kUnauthorized);
  EXPECT_EQ(registry_.authorized_count(), 0u);
}

TEST_F(AuthRegistryTest, RejectsForgedSignature) {
  AuthorizationList list;
  list.devices.push_back(device_id(1).public_identity());
  auto tx = signed_auth_tx(manager_, list);
  tx.payload.push_back(0);  // payload no longer matches the signature
  EXPECT_EQ(registry_.apply(tx).code(), ErrorCode::kVerifyFailed);
}

TEST_F(AuthRegistryTest, RejectsWrongTxType) {
  AuthorizationList list;
  auto tx = signed_auth_tx(manager_, list);
  tx.type = tangle::TxType::kData;
  tx.signature = manager_.sign(tx.signing_bytes());
  EXPECT_EQ(registry_.apply(tx).code(), ErrorCode::kInvalidArgument);
}

TEST_F(AuthRegistryTest, BoxKeyLookup) {
  const auto dev = device_id(4);
  AuthorizationList list;
  list.devices.push_back(dev.public_identity());
  ASSERT_TRUE(registry_.apply(signed_auth_tx(manager_, list)).is_ok());

  const auto box = registry_.box_key_of(dev.public_identity().sign_key);
  ASSERT_TRUE(box.has_value());
  EXPECT_EQ(*box, dev.public_identity().box_key);
  EXPECT_FALSE(registry_.box_key_of(device_id(5).public_identity().sign_key));
}

// ---- Envelope -----------------------------------------------------------------

TEST(Envelope, SealOpenRoundTrip) {
  crypto::Csprng rng(1);
  const auto key = rng.fixed<32>();
  for (std::size_t n : {0u, 1u, 15u, 16u, 1000u}) {
    const Bytes pt = rng.bytes(n);
    const auto back = envelope_open(key, envelope_seal(key, pt, rng));
    ASSERT_TRUE(back);
    EXPECT_EQ(back.value(), pt);
  }
}

TEST(Envelope, WrongKeyFails) {
  crypto::Csprng rng(2);
  const auto k1 = rng.fixed<32>();
  const auto k2 = rng.fixed<32>();
  const auto env = envelope_seal(k1, to_bytes("secret"), rng);
  EXPECT_EQ(envelope_open(k2, env).code(), ErrorCode::kDecryptFailed);
}

TEST(Envelope, TamperAnywhereFails) {
  crypto::Csprng rng(3);
  const auto key = rng.fixed<32>();
  const Bytes env = envelope_seal(key, to_bytes("payload data here"), rng);
  for (std::size_t i = 0; i < env.size(); i += 7) {
    Bytes bad = env;
    bad[i] ^= 0x01;
    EXPECT_FALSE(envelope_open(key, bad)) << "offset " << i;
  }
}

TEST(Envelope, TruncationFails) {
  crypto::Csprng rng(4);
  const auto key = rng.fixed<32>();
  const Bytes env = envelope_seal(key, to_bytes("p"), rng);
  EXPECT_FALSE(envelope_open(key, ByteView{env.data(), env.size() - 1}));
  EXPECT_FALSE(envelope_open(key, ByteView{}));
}

TEST(Envelope, FreshIvPerSeal) {
  crypto::Csprng rng(5);
  const auto key = rng.fixed<32>();
  EXPECT_NE(envelope_seal(key, to_bytes("m"), rng),
            envelope_seal(key, to_bytes("m"), rng));
}

// ---- Sensor data protection ------------------------------------------------------

TEST(DataProtection, NoKeyPassesThrough) {
  SensorDataProtector protector;
  crypto::Csprng rng(6);
  const auto [payload, encrypted] = protector.protect(to_bytes("21.5 degC"), rng);
  EXPECT_FALSE(encrypted);
  EXPECT_EQ(to_string(payload), "21.5 degC");
  const auto back = protector.recover(payload, false);
  ASSERT_TRUE(back);
  EXPECT_EQ(to_string(back.value()), "21.5 degC");
}

TEST(DataProtection, WithKeyEncrypts) {
  crypto::Csprng rng(7);
  SensorDataProtector protector(rng.fixed<32>());
  const Bytes reading = to_bytes("recipe rpm=12000");
  const auto [payload, encrypted] = protector.protect(reading, rng);
  EXPECT_TRUE(encrypted);
  EXPECT_NE(payload, reading);
  const auto back = protector.recover(payload, true);
  ASSERT_TRUE(back);
  EXPECT_EQ(back.value(), reading);
}

TEST(DataProtection, KeyHolderOnlyDecrypts) {
  crypto::Csprng rng(8);
  const auto key = rng.fixed<32>();
  SensorDataProtector sender(key);
  SensorDataProtector authorized(key);
  SensorDataProtector outsider;  // no key

  const auto [payload, encrypted] = sender.protect(to_bytes("sensitive"), rng);
  ASSERT_TRUE(encrypted);
  EXPECT_TRUE(authorized.recover(payload, true));
  const auto denied = outsider.recover(payload, true);
  EXPECT_EQ(denied.code(), ErrorCode::kUnauthorized);
}

TEST(DataProtection, InstallKeyUpgradesDevice) {
  SensorDataProtector protector;
  EXPECT_FALSE(protector.has_key());
  crypto::Csprng rng(9);
  protector.install_key(rng.fixed<32>());
  EXPECT_TRUE(protector.has_key());
  const auto [payload, encrypted] = protector.protect(to_bytes("x"), rng);
  (void)payload;
  EXPECT_TRUE(encrypted);
}

}  // namespace
}  // namespace biot::auth
