// Fig 4 key-distribution protocol: happy path, nonce challenge-response,
// signature checks, replay and tamper resistance.
#include <gtest/gtest.h>

#include "auth/keydist.h"
#include "common/clock.h"

namespace biot::auth {
namespace {

class KeyDistTest : public ::testing::Test {
 protected:
  KeyDistTest()
      : manager_identity_(crypto::Identity::deterministic(1)),
        device_identity_(crypto::Identity::deterministic(2)),
        manager_rng_(11),
        device_rng_(22),
        manager_(manager_identity_, clock_, manager_rng_),
        device_(device_identity_, manager_identity_.public_identity().sign_key,
                clock_, device_rng_) {}

  /// Runs the full three-message handshake; returns the final status.
  Status run_handshake() {
    const Bytes m1 = manager_.start_session(device_identity_.public_identity());
    clock_.advance_by(0.1);
    auto m2 = device_.handle_m1(m1);
    if (!m2) return m2.status();
    clock_.advance_by(0.1);
    auto m3 = manager_.handle_m2(device_identity_.public_identity(), m2.value());
    if (!m3) return m3.status();
    clock_.advance_by(0.1);
    return device_.handle_m3(m3.value());
  }

  SimClock clock_;
  crypto::Identity manager_identity_;
  crypto::Identity device_identity_;
  crypto::Csprng manager_rng_;
  crypto::Csprng device_rng_;
  ManagerKeyDist manager_;
  DeviceKeyDist device_;
};

TEST_F(KeyDistTest, HappyPathEstablishesSharedKey) {
  ASSERT_TRUE(run_handshake().is_ok());
  EXPECT_TRUE(device_.established());
  EXPECT_TRUE(manager_.session_established(device_identity_.public_identity()));
  EXPECT_EQ(device_.key(),
            manager_.session_key(device_identity_.public_identity()));
}

TEST_F(KeyDistTest, KeyRotationProducesFreshKey) {
  ASSERT_TRUE(run_handshake().is_ok());
  const auto first = device_.key();
  ASSERT_TRUE(run_handshake().is_ok());
  EXPECT_NE(device_.key(), first);  // "flexible to update symmetric keys"
}

TEST_F(KeyDistTest, M1ToWrongDeviceFails) {
  const Bytes m1 = manager_.start_session(device_identity_.public_identity());
  crypto::Csprng other_rng(33);
  const auto other = crypto::Identity::deterministic(3);
  DeviceKeyDist wrong(other, manager_identity_.public_identity().sign_key,
                      clock_, other_rng);
  // ECIES to the intended device's box key: another device cannot open it.
  EXPECT_EQ(wrong.handle_m1(m1).code(), ErrorCode::kDecryptFailed);
}

TEST_F(KeyDistTest, ForgedManagerSignatureRejected) {
  // An attacker who knows the device's public key but not the manager's
  // secret key cannot produce an acceptable M1.
  crypto::Csprng attacker_rng(44);
  const auto attacker = crypto::Identity::deterministic(4);
  ManagerKeyDist fake_manager(attacker, clock_, attacker_rng);
  const Bytes m1 = fake_manager.start_session(device_identity_.public_identity());
  // Device can decrypt (sealed to its key) but the signature check fails.
  EXPECT_EQ(device_.handle_m1(m1).code(), ErrorCode::kVerifyFailed);
}

TEST_F(KeyDistTest, TamperedM1Rejected) {
  Bytes m1 = manager_.start_session(device_identity_.public_identity());
  m1[m1.size() / 2] ^= 0x01;
  EXPECT_EQ(device_.handle_m1(m1).code(), ErrorCode::kDecryptFailed);
}

TEST_F(KeyDistTest, ReplayedM1Rejected) {
  const Bytes m1 = manager_.start_session(device_identity_.public_identity());
  clock_.advance_by(0.1);
  ASSERT_TRUE(device_.handle_m1(m1));
  // Same M1 again: timestamp is not fresh anymore.
  const auto second = device_.handle_m1(m1);
  EXPECT_EQ(second.code(), ErrorCode::kReplayDetected);
}

TEST_F(KeyDistTest, StaleM1OutsideSkewRejected) {
  const Bytes m1 = manager_.start_session(device_identity_.public_identity());
  clock_.advance_by(60.0);  // way past the 5 s skew window
  EXPECT_EQ(device_.handle_m1(m1).code(), ErrorCode::kReplayDetected);
}

TEST_F(KeyDistTest, ReplayedM2Rejected) {
  const Bytes m1 = manager_.start_session(device_identity_.public_identity());
  clock_.advance_by(0.1);
  auto m2 = device_.handle_m1(m1);
  ASSERT_TRUE(m2);
  clock_.advance_by(0.1);
  ASSERT_TRUE(manager_.handle_m2(device_identity_.public_identity(), m2.value()));
  const auto replay =
      manager_.handle_m2(device_identity_.public_identity(), m2.value());
  EXPECT_EQ(replay.code(), ErrorCode::kReplayDetected);
}

TEST_F(KeyDistTest, TamperedM2Rejected) {
  const Bytes m1 = manager_.start_session(device_identity_.public_identity());
  clock_.advance_by(0.1);
  auto m2 = device_.handle_m1(m1);
  ASSERT_TRUE(m2);
  Bytes bad = m2.value();
  bad[bad.size() - 1] ^= 0x01;
  EXPECT_EQ(manager_.handle_m2(device_identity_.public_identity(), bad).code(),
            ErrorCode::kDecryptFailed);
}

TEST_F(KeyDistTest, M2WithoutSessionRejected) {
  EXPECT_EQ(manager_.handle_m2(device_identity_.public_identity(),
                               Bytes(64, 0)).code(),
            ErrorCode::kNotFound);
}

TEST_F(KeyDistTest, M2FromWrongSessionKeyFailsNonceCheck) {
  // Start two sessions; feed M2 from session A into a fresh session B. The
  // rotated SKS makes the old M2 undecipherable.
  const Bytes m1a = manager_.start_session(device_identity_.public_identity());
  clock_.advance_by(0.1);
  auto m2a = device_.handle_m1(m1a);
  ASSERT_TRUE(m2a);
  (void)manager_.start_session(device_identity_.public_identity());  // rotate
  const auto result =
      manager_.handle_m2(device_identity_.public_identity(), m2a.value());
  EXPECT_FALSE(result.status().is_ok());
}

TEST_F(KeyDistTest, M3WithoutM1Rejected) {
  EXPECT_EQ(device_.handle_m3(Bytes(96, 0)).code(), ErrorCode::kNotFound);
}

TEST_F(KeyDistTest, TamperedM3Rejected) {
  const Bytes m1 = manager_.start_session(device_identity_.public_identity());
  clock_.advance_by(0.1);
  auto m2 = device_.handle_m1(m1);
  ASSERT_TRUE(m2);
  clock_.advance_by(0.1);
  auto m3 = manager_.handle_m2(device_identity_.public_identity(), m2.value());
  ASSERT_TRUE(m3);
  Bytes bad = m3.value();
  bad[20] ^= 0x01;
  EXPECT_FALSE(device_.handle_m3(bad).is_ok());
  EXPECT_FALSE(device_.established());
}

TEST_F(KeyDistTest, KeyAccessBeforeEstablishedThrows) {
  EXPECT_THROW(device_.key(), std::logic_error);
  EXPECT_THROW(manager_.session_key(device_identity_.public_identity()),
               std::logic_error);
}

TEST_F(KeyDistTest, EstablishedKeyEncryptsSensorData) {
  ASSERT_TRUE(run_handshake().is_ok());
  crypto::Csprng rng(55);
  const Bytes reading = to_bytes("spindle 11987 rpm");
  const Bytes env = envelope_seal(device_.key(), reading, rng);
  const auto opened = envelope_open(
      manager_.session_key(device_identity_.public_identity()), env);
  ASSERT_TRUE(opened);
  EXPECT_EQ(opened.value(), reading);
}

}  // namespace
}  // namespace biot::auth
