// Tests for the capability-annotated sync layer (DESIGN.md §12): Mutex /
// MutexLock RAII (including release on exception), SharedMutex reader
// sharing, CondVar wait/notify across real threads (ctest label
// `concurrency`, so the TSan CI job runs this binary), and the lock-rank
// deadlock checker — ordered acquisition passes, out-of-order or equal-rank
// acquisition aborts with both ranks printed (pinned by death tests).
//
// The analysis itself (the compile-time half of the layer) is pinned by the
// negative-compile fixtures in tests/negative_compile/, registered as
// `negcompile_*` ctest entries when the compiler is Clang.
#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace biot::sync {
namespace {

/// Forces the lock-rank checker on/off for one test and restores "off"
/// afterwards, so test order (and the BIOT_AUDIT environment) cannot leak
/// between cases.
class ScopedRankChecking {
 public:
  explicit ScopedRankChecking(bool enabled) { set_lock_rank_checking(enabled); }
  ~ScopedRankChecking() { set_lock_rank_checking(false); }
};

TEST(MutexTest, LockUnlockAndTryLock) {
  Mutex mu;
  mu.lock();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  MutexLock lock(mu);
  std::atomic<bool> other_got_it{true};
  std::thread t([&] {
    if (mu.try_lock()) {
      mu.unlock();
    } else {
      other_got_it.store(false);
    }
  });
  t.join();
  EXPECT_FALSE(other_got_it.load());
}

TEST(MutexLockTest, ReleasesOnException) {
  Mutex mu;
  try {
    const MutexLock lock(mu);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  // The RAII destructor must have run during unwinding; the mutex is free.
  const bool reacquired = mu.try_lock();
  EXPECT_TRUE(reacquired);
  if (reacquired) mu.unlock();
}

TEST(SharedMutexTest, ReadersShareTheLock) {
  SharedMutex mu;
  std::atomic<bool> second_reader_entered{false};
  const ReaderMutexLock first(mu);
  // If readers excluded each other this join would deadlock (and the test
  // would time out) — the second reader must get in while we hold the lock.
  std::thread t([&] {
    const ReaderMutexLock second(mu);
    second_reader_entered.store(true);
  });
  t.join();
  EXPECT_TRUE(second_reader_entered.load());
}

TEST(SharedMutexTest, WriterLockIsExclusive) {
  SharedMutex mu;
  int value = 0;
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        const WriterMutexLock lock(mu);
        ++value;  // would be a TSan race if writers ever overlapped
      }
    });
  for (auto& th : writers) th.join();
  const ReaderMutexLock lock(mu);
  EXPECT_EQ(value, 4000);
}

TEST(CondVarTest, WaitNotifyHandsOffAcrossThreads) {
  Mutex mu;
  CondVar cv;
  int stage = 0;  // 0 = start, 1 = main published, 2 = consumer replied
  std::thread consumer([&] {
    MutexLock lock(mu);
    while (stage != 1) cv.wait(mu);
    stage = 2;
    cv.notify_all();
  });
  {
    MutexLock lock(mu);
    stage = 1;
    cv.notify_all();
    while (stage != 2) cv.wait(mu);
  }
  consumer.join();
  const MutexLock lock(mu);
  EXPECT_EQ(stage, 2);
}

TEST(CondVarTest, NotifyOneWakesASleeper) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread sleeper([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
  });
  {
    const MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  sleeper.join();  // hangs (and times out) on a lost wakeup
}

// ---- Lock-rank checker -----------------------------------------------------

TEST(LockRankTest, OrderedAcquisitionPasses) {
  const ScopedRankChecking checking(true);
  Mutex outer(kRankTaskGroup);
  Mutex middle(kRankExecutorQueue);
  Mutex inner(kRankLog);
  {
    const MutexLock l1(outer);
    const MutexLock l2(middle);
    const MutexLock l3(inner);
  }
  // Skipping ranks is fine — only the relative order matters.
  {
    const MutexLock l1(outer);
    const MutexLock l3(inner);
  }
  // Re-acquiring an outer rank after a full release is fine too.
  const MutexLock l1(outer);
}

TEST(LockRankTest, UnrankedMutexesOptOut) {
  const ScopedRankChecking checking(true);
  Mutex ranked(kRankMetrics);
  Mutex unranked;  // kNoRank
  const MutexLock l1(ranked);
  const MutexLock l2(unranked);  // no abort in either nesting direction
}

TEST(LockRankTest, DisabledCheckingIgnoresOrder) {
  const ScopedRankChecking checking(false);
  Mutex inner(kRankLog);
  Mutex outer(kRankMetrics);
  const MutexLock l1(inner);
  const MutexLock l2(outer);  // out of order, but the checker is off
}

TEST(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  const ScopedRankChecking checking(true);
  Mutex inner(kRankLog);
  Mutex outer(kRankMetrics);
  const MutexLock hold_inner(inner);
  EXPECT_DEATH({ const MutexLock bad(outer); }, "lock rank violation");
}

TEST(LockRankDeathTest, EqualRankAcquisitionAborts) {
  const ScopedRankChecking checking(true);
  Mutex first(kRankMiner);
  Mutex second(kRankMiner);
  const MutexLock hold_first(first);
  // Two locks of the same rank have no defined order between them, so the
  // checker treats rank ties as violations too.
  EXPECT_DEATH({ const MutexLock bad(second); }, "lock rank violation");
}

TEST(LockRankDeathTest, AbortMessageNamesBothRanks) {
  const ScopedRankChecking checking(true);
  Mutex inner(kRankLog);
  Mutex outer(kRankTaskGroup);
  const MutexLock hold_inner(inner);
  EXPECT_DEATH({ const MutexLock bad(outer); },
               "acquiring rank 10 while holding rank 50");
}

}  // namespace
}  // namespace biot::sync
