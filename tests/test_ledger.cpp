// Ledger tests: balances, sequence slots, double-spend/replay detection.
#include <gtest/gtest.h>

#include "tangle/ledger.h"
#include "tangle/tangle.h"
#include "test_util.h"

namespace biot::tangle {
namespace {

using testutil::TxFactory;

class LedgerTest : public ::testing::Test {
 protected:
  LedgerTest() : alice_(1), bob_(2) { genesis_ = Tangle::make_genesis().id(); }

  TxFactory alice_;
  TxFactory bob_;
  TxId genesis_;
  Ledger ledger_;
};

TEST_F(LedgerTest, InitialBalancesZero) {
  EXPECT_EQ(ledger_.balance(alice_.key()), 0u);
  EXPECT_EQ(ledger_.next_sequence(alice_.key()), 0u);
}

TEST_F(LedgerTest, CreditAddsBalance) {
  ledger_.credit(alice_.key(), 100);
  ledger_.credit(alice_.key(), 50);
  EXPECT_EQ(ledger_.balance(alice_.key()), 150u);
}

TEST_F(LedgerTest, DataTxConsumesSequence) {
  const auto tx = alice_.make(genesis_, genesis_);
  EXPECT_TRUE(ledger_.apply(tx).is_ok());
  EXPECT_EQ(ledger_.next_sequence(alice_.key()), 1u);
}

TEST_F(LedgerTest, TransferMovesFunds) {
  ledger_.credit(alice_.key(), 100);
  const auto tx = alice_.make_transfer(genesis_, genesis_, bob_.key(), 30);
  ASSERT_TRUE(ledger_.apply(tx).is_ok());
  EXPECT_EQ(ledger_.balance(alice_.key()), 70u);
  EXPECT_EQ(ledger_.balance(bob_.key()), 30u);
}

TEST_F(LedgerTest, InsufficientBalanceRejected) {
  ledger_.credit(alice_.key(), 10);
  const auto tx = alice_.make_transfer(genesis_, genesis_, bob_.key(), 30);
  EXPECT_EQ(ledger_.apply(tx).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(ledger_.balance(alice_.key()), 10u);
  EXPECT_EQ(ledger_.balance(bob_.key()), 0u);
}

TEST_F(LedgerTest, ExactBalanceTransferAllowed) {
  ledger_.credit(alice_.key(), 30);
  const auto tx = alice_.make_transfer(genesis_, genesis_, bob_.key(), 30);
  EXPECT_TRUE(ledger_.apply(tx).is_ok());
  EXPECT_EQ(ledger_.balance(alice_.key()), 0u);
}

TEST_F(LedgerTest, ReplaySameTxRejectedWithoutConflictFlag) {
  const auto tx = alice_.make(genesis_, genesis_);
  ASSERT_TRUE(ledger_.apply(tx).is_ok());
  const auto again = ledger_.apply(tx);
  EXPECT_EQ(again.code(), ErrorCode::kRejected);
  EXPECT_EQ(ledger_.conflicts_detected(), 0u);
}

TEST_F(LedgerTest, DoubleSpendDetectedAsConflict) {
  ledger_.credit(alice_.key(), 100);
  // Two different transactions claiming the same sequence slot.
  auto tx1 = alice_.make_transfer(genesis_, genesis_, bob_.key(), 60);
  auto tx2 = tx1;
  tx2.transfer->amount = 70;  // different content, same (sender, sequence)
  alice_.finalize(tx2);

  ASSERT_TRUE(ledger_.apply(tx1).is_ok());
  const auto second = ledger_.apply(tx2);
  EXPECT_EQ(second.code(), ErrorCode::kConflict);
  EXPECT_EQ(ledger_.conflicts_detected(), 1u);
  // Funds moved only once.
  EXPECT_EQ(ledger_.balance(bob_.key()), 60u);
}

TEST_F(LedgerTest, CheckDoesNotMutate) {
  ledger_.credit(alice_.key(), 100);
  const auto tx = alice_.make_transfer(genesis_, genesis_, bob_.key(), 60);
  EXPECT_TRUE(ledger_.check(tx).is_ok());
  EXPECT_TRUE(ledger_.check(tx).is_ok());  // still ok: nothing was recorded
  EXPECT_EQ(ledger_.balance(bob_.key()), 0u);
  EXPECT_EQ(ledger_.next_sequence(alice_.key()), 0u);
}

TEST_F(LedgerTest, SequencesNeedNotBeDense) {
  auto tx0 = alice_.make(genesis_, genesis_);  // seq 0
  auto tx1 = alice_.make(genesis_, genesis_);  // seq 1
  (void)tx0;
  // Apply out of order: the ledger keyed by slot, not strict ordering —
  // asynchronous DAG arrival order is not deterministic.
  EXPECT_TRUE(ledger_.apply(tx1).is_ok());
  EXPECT_EQ(ledger_.next_sequence(alice_.key()), 2u);
}

TEST_F(LedgerTest, IndependentAccountsDoNotInterfere) {
  const auto a = alice_.make(genesis_, genesis_);
  auto b = bob_.make(genesis_, genesis_);
  EXPECT_EQ(a.sequence, b.sequence);  // both 0
  EXPECT_TRUE(ledger_.apply(a).is_ok());
  EXPECT_TRUE(ledger_.apply(b).is_ok());  // same seq, different sender: fine
}

TEST_F(LedgerTest, ConflictCountAccumulates) {
  auto tx1 = alice_.make(genesis_, genesis_);
  auto tx2 = tx1;
  tx2.payload = to_bytes("x");
  alice_.finalize(tx2);
  auto tx3 = tx1;
  tx3.payload = to_bytes("y");
  alice_.finalize(tx3);

  ASSERT_TRUE(ledger_.apply(tx1).is_ok());
  EXPECT_FALSE(ledger_.apply(tx2));
  EXPECT_FALSE(ledger_.apply(tx3));
  EXPECT_EQ(ledger_.conflicts_detected(), 2u);
}

// ---- Replica-consistent resolution (apply_resolving) -------------------------

TEST_F(LedgerTest, ResolvingFreeSlotApplies) {
  const auto tx = alice_.make(genesis_, genesis_);
  EXPECT_EQ(ledger_.apply_resolving(tx), Ledger::ApplyOutcome::kApplied);
  EXPECT_EQ(ledger_.apply_resolving(tx), Ledger::ApplyOutcome::kReplay);
}

TEST_F(LedgerTest, ResolvingPicksSmallerIdDeterministically) {
  auto tx1 = alice_.make(genesis_, genesis_);
  auto tx2 = tx1;
  tx2.payload = to_bytes("other branch");
  alice_.finalize(tx2);
  const auto winner_id = std::min(tx1.id(), tx2.id());

  // Replica A sees tx1 first, replica B sees tx2 first.
  Ledger a, b;
  EXPECT_EQ(a.apply_resolving(tx1), Ledger::ApplyOutcome::kApplied);
  EXPECT_EQ(b.apply_resolving(tx2), Ledger::ApplyOutcome::kApplied);
  const auto a2 = a.apply_resolving(tx2);
  const auto b2 = b.apply_resolving(tx1);
  // Exactly one replica displaces, the other keeps — both end on winner_id.
  const bool a_holds_winner =
      (a2 == Ledger::ApplyOutcome::kConflictDisplaced) == (tx2.id() == winner_id);
  const bool b_holds_winner =
      (b2 == Ledger::ApplyOutcome::kConflictDisplaced) == (tx1.id() == winner_id);
  EXPECT_TRUE(a_holds_winner);
  EXPECT_TRUE(b_holds_winner);
}

TEST_F(LedgerTest, ResolvingDisplacementMovesFundsOnce) {
  TxFactory carol(3);
  ledger_.credit(alice_.key(), 100);
  auto tx_to_bob = alice_.make_transfer(genesis_, genesis_, bob_.key(), 60);
  auto tx_to_carol = tx_to_bob;
  tx_to_carol.transfer = Transfer{carol.key(), 60};
  alice_.finalize(tx_to_carol);

  ASSERT_EQ(ledger_.apply_resolving(tx_to_bob), Ledger::ApplyOutcome::kApplied);
  const auto outcome = ledger_.apply_resolving(tx_to_carol);
  // Whatever wins, exactly 60 left Alice and exactly one recipient has it.
  EXPECT_EQ(ledger_.balance(alice_.key()), 40u);
  EXPECT_EQ(ledger_.balance(bob_.key()) + ledger_.balance(carol.key()), 60u);
  if (tx_to_carol.id() < tx_to_bob.id()) {
    EXPECT_EQ(outcome, Ledger::ApplyOutcome::kConflictDisplaced);
    EXPECT_EQ(ledger_.balance(carol.key()), 60u);
  } else {
    EXPECT_EQ(outcome, Ledger::ApplyOutcome::kConflictKeptExisting);
    EXPECT_EQ(ledger_.balance(bob_.key()), 60u);
  }
}

TEST_F(LedgerTest, ResolvingRefusesUnsafeRevert) {
  // Bob receives and immediately spends; displacing the incoming transfer
  // would break conservation, so the incumbent must be kept regardless of
  // id order.
  ledger_.credit(alice_.key(), 50);
  TxFactory carol(3);
  auto incoming = alice_.make_transfer(genesis_, genesis_, bob_.key(), 50);
  ASSERT_EQ(ledger_.apply_resolving(incoming), Ledger::ApplyOutcome::kApplied);
  const auto spend = bob_.make_transfer(genesis_, genesis_, carol.key(), 50);
  ASSERT_EQ(ledger_.apply_resolving(spend), Ledger::ApplyOutcome::kApplied);

  // Craft many conflicting alternatives; every one must be kept out.
  for (int i = 0; i < 8; ++i) {
    auto rival = incoming;
    rival.payload = to_bytes("alt" + std::to_string(i));
    alice_.finalize(rival);
    EXPECT_EQ(ledger_.apply_resolving(rival),
              Ledger::ApplyOutcome::kConflictKeptExisting);
  }
  EXPECT_EQ(ledger_.balance(carol.key()), 50u);
}

TEST_F(LedgerTest, ResolvingConflictCountsTracked) {
  auto tx1 = alice_.make(genesis_, genesis_);
  auto tx2 = tx1;
  tx2.payload = to_bytes("x");
  alice_.finalize(tx2);
  ASSERT_EQ(ledger_.apply_resolving(tx1), Ledger::ApplyOutcome::kApplied);
  (void)ledger_.apply_resolving(tx2);
  EXPECT_EQ(ledger_.conflicts_detected(), 1u);
}

}  // namespace
}  // namespace biot::tangle
