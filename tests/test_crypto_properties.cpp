// Deeper algebraic property sweeps over the from-scratch crypto: field and
// scalar arithmetic laws, group-structure identities, cipher involutions.
// These are the properties the RFC vectors alone cannot establish.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/aes.h"
#include "crypto/aes_modes.h"
#include "crypto/csprng.h"
#include "crypto/ed25519.h"
#include "crypto/field25519.h"
#include "crypto/hmac.h"
#include "crypto/x25519.h"

namespace biot::crypto {
namespace {

Fe random_fe(Csprng& rng) {
  Bytes b = rng.bytes(32);
  b[31] &= 0x7f;
  return Fe::from_bytes(b);
}

FixedBytes<32> random_scalar(Csprng& rng) {
  // Reduce a 64-byte draw so the scalar is canonical (< L).
  return sc_reduce64(rng.bytes(64));
}

class FieldLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FieldLaws, RingAxiomsHold) {
  Csprng rng(GetParam());
  const Fe a = random_fe(rng), b = random_fe(rng), c = random_fe(rng);

  // Addition: commutative, associative, identity, inverse.
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a + Fe::zero(), a);
  EXPECT_EQ(a + a.negate(), Fe::zero());

  // Multiplication: commutative, associative, identity.
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * Fe::one(), a);

  // Distributivity both ways.
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ((a + b) * c, a * c + b * c);

  // Square agrees with self-product; double negation is identity.
  EXPECT_EQ(a.square(), a * a);
  EXPECT_EQ(a.negate().negate(), a);
}

TEST_P(FieldLaws, InversionAndSqrtConsistency) {
  Csprng rng(GetParam() ^ 0xf00d);
  const Fe a = random_fe(rng);
  if (!a.is_zero()) {
    EXPECT_EQ(a * a.invert(), Fe::one());
    EXPECT_EQ(a.invert().invert(), a);
  }
  // Any square has a root recoverable through fe_sqrt_ratio(sq, 1).
  const Fe sq = a.square();
  Fe root;
  ASSERT_TRUE(fe_sqrt_ratio(root, sq, Fe::one()));
  EXPECT_TRUE(root == a || root == a.negate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FieldLaws,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class ScalarLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalarLaws, MulAddAlgebra) {
  Csprng rng(GetParam());
  const auto a = random_scalar(rng);
  const auto b = random_scalar(rng);
  const auto c = random_scalar(rng);
  const Bytes zero(32, 0);
  Bytes one(32, 0);
  one[0] = 1;

  // a*b == b*a (via muladd with zero addend).
  EXPECT_EQ(sc_muladd(a.view(), b.view(), zero),
            sc_muladd(b.view(), a.view(), zero));
  // (a*b)*c == a*(b*c).
  const auto ab = sc_muladd(a.view(), b.view(), zero);
  const auto bc = sc_muladd(b.view(), c.view(), zero);
  EXPECT_EQ(sc_muladd(ab.view(), c.view(), zero),
            sc_muladd(a.view(), bc.view(), zero));
  // a*1 + 0 == a, and reduction idempotence.
  EXPECT_EQ(sc_muladd(a.view(), one, zero), a);
  Bytes widened = a.bytes();
  widened.resize(64, 0);
  EXPECT_EQ(sc_reduce64(widened), a);
  // a*b + c is canonical.
  EXPECT_TRUE(sc_is_canonical(sc_muladd(a.view(), b.view(), c.view()).view()));
}

TEST_P(ScalarLaws, GroupHomomorphism) {
  // [a+b]B == [a]B + [b]B — scalar multiplication respects addition.
  Csprng rng(GetParam() ^ 0xbeef);
  const auto a = random_scalar(rng);
  const auto b = random_scalar(rng);
  Bytes one(32, 0);
  one[0] = 1;
  const auto sum = sc_muladd(a.view(), one, b.view());  // a + b mod L

  const auto& B = EdPoint::base();
  const auto lhs = B.scalar_mul(sum.view()).compress();
  const auto rhs = B.scalar_mul(a.view()).add(B.scalar_mul(b.view())).compress();
  EXPECT_EQ(lhs, rhs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalarLaws, ::testing::Values(7, 11, 19, 42));

TEST(EdPointProps, CompressDecompressIsIdentityOnRandomPoints) {
  Csprng rng(99);
  for (int i = 0; i < 10; ++i) {
    const auto k = random_scalar(rng);
    const auto p = EdPoint::base().scalar_mul(k.view());
    const auto enc = p.compress();
    const auto back = EdPoint::decompress(enc.view());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->compress(), enc);
  }
}

TEST(EdPointProps, MixedScalarDoubleAddConsistency) {
  // [2k]B == dbl([k]B) == [k]B + [k]B for random k.
  Csprng rng(101);
  const auto k = random_scalar(rng);
  Bytes two(32, 0);
  two[0] = 2;
  const Bytes zero(32, 0);
  const auto k2 = sc_muladd(k.view(), two, zero);
  const auto kB = EdPoint::base().scalar_mul(k.view());
  EXPECT_EQ(EdPoint::base().scalar_mul(k2.view()).compress(),
            kB.dbl().compress());
  EXPECT_EQ(kB.add(kB).compress(), kB.dbl().compress());
}

TEST(X25519Props, ScalarMulIsGroupActionOnBasepoint) {
  // DH consistency for chains: x25519(a, x25519(b, G)) == x25519(b, x25519(a, G)).
  Csprng rng(103);
  for (int i = 0; i < 5; ++i) {
    const auto a = rng.fixed<32>();
    const auto b = rng.fixed<32>();
    FixedBytes<32> g{};
    g[0] = 9;
    EXPECT_EQ(x25519(a, x25519(b, g)), x25519(b, x25519(a, g)));
  }
}

TEST(AesProps, DecryptInvertsEncryptForAllKeySizes) {
  Csprng rng(105);
  for (const std::size_t key_len : {16u, 24u, 32u}) {
    const Bytes key = rng.bytes(key_len);
    const Aes aes(key);
    for (int i = 0; i < 20; ++i) {
      const Bytes pt = rng.bytes(16);
      std::uint8_t ct[16], back[16];
      aes.encrypt_block(pt.data(), ct);
      aes.decrypt_block(ct, back);
      EXPECT_TRUE(ct_equal(ByteView{back, 16}, pt));
      // Non-degenerate: ciphertext differs from plaintext.
      EXPECT_FALSE(ct_equal(ByteView{ct, 16}, pt));
    }
  }
}

TEST(AesProps, DistinctKeysGiveDistinctStreams) {
  Csprng rng(106);
  const Bytes nonce = rng.bytes(16);
  const Bytes zeros(256, 0);
  std::set<Bytes> streams;
  for (int i = 0; i < 10; ++i) {
    const Aes aes(rng.bytes(32));
    streams.insert(aes_ctr_xor(aes, nonce, zeros));
  }
  EXPECT_EQ(streams.size(), 10u);
}

TEST(HkdfProps, OutputsAreIndependentAcrossInfo) {
  Csprng rng(107);
  const Bytes ikm = rng.bytes(32);
  const auto a = hkdf({}, ikm, to_bytes("context-a"), 32);
  const auto b = hkdf({}, ikm, to_bytes("context-b"), 32);
  EXPECT_NE(a, b);
  // Prefix property: a longer expansion starts with the shorter one.
  const auto long_out = hkdf({}, ikm, to_bytes("context-a"), 64);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), long_out.begin()));
}

TEST(SignatureProps, SignaturesAreContextBound) {
  // Same message signed by N keys: all verify only under their own key.
  Csprng rng(108);
  const Bytes msg = to_bytes("shared message");
  std::vector<Ed25519KeyPair> keys;
  std::vector<Ed25519Signature> sigs;
  for (int i = 0; i < 4; ++i) {
    keys.push_back(Ed25519KeyPair::from_seed(rng.fixed<32>()));
    sigs.push_back(ed25519_sign(keys.back(), msg));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = 0; j < keys.size(); ++j) {
      EXPECT_EQ(ed25519_verify(keys[i].public_key, msg, sigs[j]), i == j);
    }
  }
}

}  // namespace
}  // namespace biot::crypto
