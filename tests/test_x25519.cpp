// X25519 against RFC 7748 vectors and ECIES envelope behaviour.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/csprng.h"
#include "crypto/x25519.h"

namespace biot::crypto {
namespace {

// RFC 7748 section 5.2, vector 1.
TEST(X25519, Rfc7748Vector1) {
  const auto scalar = FixedBytes<32>::parse_hex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const auto point = FixedBytes<32>::parse_hex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(x25519(scalar, point).hex(),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

// RFC 7748 section 5.2, vector 2.
TEST(X25519, Rfc7748Vector2) {
  const auto scalar = FixedBytes<32>::parse_hex(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const auto point = FixedBytes<32>::parse_hex(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(x25519(scalar, point).hex(),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

// RFC 7748 section 6.1 Diffie–Hellman vector.
TEST(X25519, Rfc7748DiffieHellman) {
  const auto alice_sk = FixedBytes<32>::parse_hex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const auto bob_sk = FixedBytes<32>::parse_hex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

  const auto alice_pk = x25519_public(alice_sk);
  const auto bob_pk = x25519_public(bob_sk);
  EXPECT_EQ(alice_pk.hex(),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(bob_pk.hex(),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  const auto k1 = x25519(alice_sk, bob_pk);
  const auto k2 = x25519(bob_sk, alice_pk);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1.hex(),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, SharedSecretAgreesForRandomPairs) {
  Csprng rng(77);
  for (int i = 0; i < 5; ++i) {
    const auto a = X25519KeyPair::generate(rng);
    const auto b = X25519KeyPair::generate(rng);
    EXPECT_EQ(x25519(a.secret, b.public_key), x25519(b.secret, a.public_key));
  }
}

TEST(Ecies, SealOpenRoundTrip) {
  Csprng rng(100);
  const auto recipient = X25519KeyPair::generate(rng);
  for (std::size_t n : {0u, 1u, 16u, 100u, 5000u}) {
    const Bytes pt = rng.bytes(n);
    const Bytes env = ecies_seal(recipient.public_key, pt, rng);
    const auto back = ecies_open(recipient, env);
    ASSERT_TRUE(back) << back.status().to_string();
    EXPECT_EQ(back.value(), pt);
  }
}

TEST(Ecies, WrongRecipientFails) {
  Csprng rng(101);
  const auto alice = X25519KeyPair::generate(rng);
  const auto mallory = X25519KeyPair::generate(rng);
  const Bytes env = ecies_seal(alice.public_key, to_bytes("secret key SKS"), rng);
  const auto r = ecies_open(mallory, env);
  EXPECT_FALSE(r);
  EXPECT_EQ(r.code(), ErrorCode::kDecryptFailed);
}

TEST(Ecies, TamperedCiphertextFails) {
  Csprng rng(102);
  const auto recipient = X25519KeyPair::generate(rng);
  Bytes env = ecies_seal(recipient.public_key, to_bytes("payload"), rng);
  env[40] ^= 0x01;
  EXPECT_FALSE(ecies_open(recipient, env));
}

TEST(Ecies, TamperedEphemeralKeyFails) {
  Csprng rng(103);
  const auto recipient = X25519KeyPair::generate(rng);
  Bytes env = ecies_seal(recipient.public_key, to_bytes("payload"), rng);
  env[0] ^= 0x01;
  EXPECT_FALSE(ecies_open(recipient, env));
}

TEST(Ecies, TamperedTagFails) {
  Csprng rng(104);
  const auto recipient = X25519KeyPair::generate(rng);
  Bytes env = ecies_seal(recipient.public_key, to_bytes("payload"), rng);
  env.back() ^= 0x01;
  EXPECT_FALSE(ecies_open(recipient, env));
}

TEST(Ecies, TruncatedEnvelopeFails) {
  Csprng rng(105);
  const auto recipient = X25519KeyPair::generate(rng);
  const Bytes env = ecies_seal(recipient.public_key, to_bytes("p"), rng);
  EXPECT_FALSE(ecies_open(recipient, ByteView{env.data(), 63}));
  EXPECT_FALSE(ecies_open(recipient, ByteView{}));
}

TEST(Ecies, FreshEphemeralPerSeal) {
  Csprng rng(106);
  const auto recipient = X25519KeyPair::generate(rng);
  const Bytes a = ecies_seal(recipient.public_key, to_bytes("m"), rng);
  const Bytes b = ecies_seal(recipient.public_key, to_bytes("m"), rng);
  EXPECT_NE(a, b);  // randomized encryption
}

}  // namespace
}  // namespace biot::crypto
