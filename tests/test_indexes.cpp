// Secondary-index and set-reconciliation properties: the indexed query paths
// must agree with their brute-force reference scans on randomized tangles,
// the invertible sketch must recover exact set differences (and admit
// failure on oversized ones), and the gateway sync protocol built on top of
// both must converge — through the sketch path when the difference is
// small, through the full-inventory fallback when it is not.
#include <gtest/gtest.h>

#include <unordered_set>

#include "node/gateway.h"
#include "node/manager.h"
#include "tangle/reconcile.h"
#include "tangle/tangle.h"
#include "test_util.h"

namespace biot {
namespace {

using testutil::TxFactory;

tangle::TxId random_id(Rng& rng) {
  tangle::TxId id;
  for (std::size_t i = 0; i < 32; i += 8) {
    const std::uint64_t word = rng.next();
    for (std::size_t b = 0; b < 8; ++b)
      id[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
  }
  return id;
}

// ---- data_since vs brute force ----------------------------------------------

class RandomTangleTest : public ::testing::Test {
 protected:
  /// Grows a tangle with `n` transactions from `num_senders` devices, mixing
  /// data and transfer types, random parent choices and jittered (sometimes
  /// out-of-order) arrival stamps — the adversarial input for the sorted
  /// index maintenance.
  tangle::Tangle grow(std::uint64_t seed, std::size_t n,
                      std::size_t num_senders) {
    Rng rng(seed);
    std::vector<TxFactory> devices;
    for (std::size_t d = 0; d < num_senders; ++d)
      devices.emplace_back(7000 + seed * 100 + d);

    tangle::Tangle t(tangle::Tangle::make_genesis());
    std::vector<tangle::TxId> ids{t.genesis_id()};
    TimePoint clock = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      auto& dev = devices[rng.index(devices.size())];
      const auto& p1 = ids[rng.index(ids.size())];
      const auto& p2 = ids[rng.index(ids.size())];
      auto tx = dev.make(p1, p2, 2, to_bytes("r"), clock);
      if (rng.bernoulli(0.3)) {
        tx.type = tangle::TxType::kTransfer;
        tx.transfer = tangle::Transfer{devices[0].key(), 1};
        dev.finalize(tx);
      }
      clock += rng.uniform(0.0, 1.0);
      // ~10% of arrivals land in the past (clock skew / replayed backlog):
      // exercises the positioned-insert path of the index maintenance.
      const TimePoint arrival =
          rng.bernoulli(0.1) ? clock - rng.uniform(0.0, 5.0) : clock;
      EXPECT_TRUE(t.add(tx, arrival).is_ok());
      ids.push_back(tx.id());
    }
    testutil::audit_if_enabled(t);  // BIOT_AUDIT=1: full invariant sweep
    return t;
  }
};

TEST_F(RandomTangleTest, DataSinceMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto t = grow(seed, 120, 4);
    Rng rng(seed * 31);
    std::vector<TxFactory> devices;
    for (std::size_t d = 0; d < 4; ++d)
      devices.emplace_back(7000 + seed * 100 + d);

    for (int q = 0; q < 50; ++q) {
      // Random query: any/specific/unknown sender, random window + cap.
      const tangle::AccountKey* sender = nullptr;
      tangle::AccountKey key;
      const auto pick = rng.index(6);
      if (pick < 4) {
        key = devices[pick].key();
        sender = &key;
      } else if (pick == 5) {
        key = tangle::AccountKey{};
        key[0] = 0xff;  // never seen
        sender = &key;
      }
      const TimePoint since = rng.uniform(-2.0, 80.0);
      const std::size_t max_results = 1 + rng.index(40);

      const auto indexed = t.data_since(sender, since, max_results);
      const auto brute = t.data_since_brute_force(sender, since, max_results);
      ASSERT_EQ(indexed.size(), brute.size())
          << "seed " << seed << " query " << q;
      for (std::size_t i = 0; i < indexed.size(); ++i) {
        EXPECT_EQ(indexed[i]->tx.id(), brute[i]->tx.id())
            << "seed " << seed << " query " << q << " result " << i;
      }
    }
  }
}

TEST_F(RandomTangleTest, SendersFirstSeenEnumeratesEverySenderOnce) {
  const auto t = grow(9, 80, 3);
  const auto& seen = t.senders_first_seen();
  // Genesis' zero sender leads; every on-chain sender appears exactly once.
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front(), tangle::AccountKey{});
  std::unordered_set<tangle::AccountKey, FixedBytesHash<32>> unique(
      seen.begin(), seen.end());
  EXPECT_EQ(unique.size(), seen.size());

  std::unordered_set<tangle::AccountKey, FixedBytesHash<32>> on_chain;
  for (const auto& id : t.arrival_order())
    on_chain.insert(t.find(id)->tx.sender);
  EXPECT_EQ(unique, on_chain);
}

TEST_F(RandomTangleTest, ArrivalIndexIsSortedAndComplete) {
  const auto t = grow(11, 100, 3);
  const auto& idx = t.arrival_index();
  ASSERT_EQ(idx.size(), t.size());
  for (std::size_t i = 1; i < idx.size(); ++i)
    EXPECT_LE(idx[i - 1].arrival, idx[i].arrival) << "position " << i;
  // first_at_or_after agrees with a linear scan at random cut points.
  Rng rng(12);
  for (int q = 0; q < 30; ++q) {
    const TimePoint cut = rng.uniform(-1.0, 80.0);
    const auto pos = tangle::Tangle::first_at_or_after(idx, cut);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      EXPECT_EQ(i >= pos, idx[i].arrival >= cut) << "cut " << cut;
    }
  }
}

// ---- SetSketch / IdDigest ---------------------------------------------------

TEST(SetSketch, DecodesExactSymmetricDifference) {
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    tangle::SetSketch local, remote;
    tangle::IdDigest local_digest, remote_digest;
    // Large shared core, small asymmetric edges — the anti-entropy shape.
    for (int i = 0; i < 500; ++i) {
      const auto id = random_id(rng);
      local.toggle(id);
      remote.toggle(id);
      local_digest.toggle(id);
      remote_digest.toggle(id);
    }
    using IdSet = std::unordered_set<tangle::TxId, FixedBytesHash<32>>;
    IdSet only_local, only_remote;
    for (std::size_t i = 0; i < 5 + rng.index(20); ++i) {
      const auto id = random_id(rng);
      local.toggle(id);
      local_digest.toggle(id);
      only_local.insert(id);
    }
    for (std::size_t i = 0; i < 5 + rng.index(20); ++i) {
      const auto id = random_id(rng);
      remote.toggle(id);
      remote_digest.toggle(id);
      only_remote.insert(id);
    }

    EXPECT_FALSE(local_digest == remote_digest);
    const auto diff = local.subtract_and_decode(remote);
    ASSERT_TRUE(diff.decoded) << "trial " << trial;
    EXPECT_EQ(IdSet(diff.only_local.begin(), diff.only_local.end()),
              only_local);
    EXPECT_EQ(IdSet(diff.only_remote.begin(), diff.only_remote.end()),
              only_remote);
  }
}

TEST(SetSketch, ReportsFailureOnOversizedDifference) {
  Rng rng(43);
  tangle::SetSketch local, remote;
  // Far beyond what 512 cells can peel.
  for (int i = 0; i < 2000; ++i) local.toggle(random_id(rng));
  const auto diff = local.subtract_and_decode(remote);
  EXPECT_FALSE(diff.decoded);
  EXPECT_TRUE(diff.only_local.empty());
  EXPECT_TRUE(diff.only_remote.empty());
}

TEST(SetSketch, WireRoundTrip) {
  Rng rng(44);
  tangle::SetSketch sketch;
  for (int i = 0; i < 100; ++i) sketch.toggle(random_id(rng));
  const auto decoded = tangle::SetSketch::decode(sketch.encode());
  ASSERT_TRUE(decoded.is_ok());
  // Subtracting the round-tripped copy from the original leaves nothing.
  const auto diff = sketch.subtract_and_decode(decoded.value());
  ASSERT_TRUE(diff.decoded);
  EXPECT_TRUE(diff.only_local.empty());
  EXPECT_TRUE(diff.only_remote.empty());
}

TEST(SetSketch, EmptySketchesDecodeToEmptyDiff) {
  const tangle::SetSketch a, b;
  const auto diff = a.subtract_and_decode(b);
  ASSERT_TRUE(diff.decoded);
  EXPECT_TRUE(diff.only_local.empty());
  EXPECT_TRUE(diff.only_remote.empty());
}

// ---- Gateway sync over the sketch + fallback --------------------------------

class SyncPairTest : public ::testing::Test {
 protected:
  SyncPairTest()
      : manager_identity_(crypto::Identity::deterministic(1)),
        network_(sched_, std::make_unique<sim::FixedLatency>(0.002), Rng(5)) {}

  node::GatewayConfig sync_config() {
    node::GatewayConfig c;
    c.credit.initial_difficulty = 2;
    c.credit.max_difficulty = 4;
    c.credit.min_difficulty = 1;
    c.sync_interval = 1.0;
    return c;
  }

  /// Builds gateway `id`, with a manager at `id + 10`, holding `n` locally
  /// submitted transactions from one authorized device.
  std::unique_ptr<node::Gateway> make_loaded_gateway(sim::NodeId id,
                                                     std::size_t n,
                                                     TxFactory& device) {
    auto gw = std::make_unique<node::Gateway>(
        id, gateway_identity_, manager_identity_.public_identity().sign_key,
        tangle::Tangle::make_genesis(), network_, sync_config());
    gw->attach();
    node::Manager manager(id + 10, manager_identity_, *gw, network_);
    EXPECT_TRUE(
        manager.authorize({device.identity().public_identity()}).is_ok());
    for (std::size_t i = 0; i < n; ++i) {
      const auto [t1, t2] = gw->select_tips();
      EXPECT_TRUE(gw->submit(device.make(t1, t2,
                                         gw->required_difficulty(device.key()),
                                         to_bytes("s"), sched_.now()))
                      .is_ok());
    }
    return gw;
  }

  sim::Scheduler sched_;
  crypto::Identity manager_identity_;
  crypto::Identity gateway_identity_ = crypto::Identity::deterministic(2);
  sim::Network network_;
};

TEST_F(SyncPairTest, SmallDivergenceHealsThroughSketchWithoutFallback) {
  TxFactory device(600);
  auto ahead = make_loaded_gateway(1, 25, device);
  auto behind = make_loaded_gateway(2, 0, device);
  ahead->add_peer(2);
  behind->add_peer(1);

  sched_.run_until(sched_.now() + 10.0);

  EXPECT_EQ(ahead->tangle().size(), behind->tangle().size());
  EXPECT_EQ(ahead->tangle().id_digest(), behind->tangle().id_digest());
  EXPECT_GT(behind->stats().sync_txs_applied, 0u);
  EXPECT_EQ(ahead->stats().sync_fallbacks, 0u);
  EXPECT_EQ(behind->stats().sync_fallbacks, 0u);

  // Once converged, further rounds hit the O(1) digest fast path: no more
  // transactions move.
  const auto served = ahead->stats().sync_txs_served;
  sched_.run_until(sched_.now() + 10.0);
  EXPECT_EQ(ahead->stats().sync_txs_served, served);
}

TEST_F(SyncPairTest, OversizedDivergenceHealsThroughInventoryFallback) {
  // ~450 transactions of divergence cannot peel out of a 512-cell sketch;
  // the replicas must detect that and downgrade to the explicit inventory
  // exchange — and still converge.
  TxFactory device(601);
  auto ahead = make_loaded_gateway(1, 450, device);
  auto behind = make_loaded_gateway(2, 0, device);
  ahead->add_peer(2);
  behind->add_peer(1);

  sched_.run_until(sched_.now() + 20.0);

  EXPECT_EQ(ahead->tangle().size(), behind->tangle().size());
  EXPECT_EQ(ahead->tangle().id_digest(), behind->tangle().id_digest());
  EXPECT_GT(ahead->stats().sync_fallbacks + behind->stats().sync_fallbacks,
            0u);
}

}  // namespace
}  // namespace biot
