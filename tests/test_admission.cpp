// Admission-pipeline regression tests: cold-start replay reproduces live
// derived state exactly (the unified Ingress::kReplay path), the orphan
// buffer honours its cap and re-buffers on the second missing parent, and
// the rate limiter's bucket map stays bounded under a Sybil request flood.
#include <gtest/gtest.h>

#include "common/codec.h"
#include "crypto/ed25519.h"
#include "node/gateway.h"
#include "node/manager.h"
#include "storage/tangle_io.h"
#include "test_util.h"

namespace biot::node {
namespace {

using testutil::TxFactory;

/// Deterministic payload judge: only the literal payload "bad" scores zero.
/// Pure function of the transaction, so replay judges history identically.
std::optional<double> judge_payload(const tangle::Transaction& tx) {
  return tx.payload == to_bytes("bad") ? 0.0 : 1.0;
}

GatewayConfig admission_config() {
  GatewayConfig c;
  c.credit.initial_difficulty = 4;
  c.credit.max_difficulty = 8;
  c.credit.min_difficulty = 1;
  c.quality_inspector = judge_payload;
  return c;
}

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest()
      : manager_identity_(crypto::Identity::deterministic(1)),
        gateway_identity_(crypto::Identity::deterministic(2)),
        coordinator_identity_(crypto::Identity::deterministic(3)),
        network_(sched_, std::make_unique<sim::FixedLatency>(0.001), Rng(1)),
        gateway_(1, gateway_identity_,
                 manager_identity_.public_identity().sign_key,
                 tangle::Tangle::make_genesis(), network_,
                 admission_config()),
        manager_(2, manager_identity_, gateway_, network_),
        device_(100) {
    gateway_.attach();
    manager_.attach();
    gateway_.set_coordinator(coordinator_identity_.public_identity().sign_key);
  }

  // Under BIOT_AUDIT=1 (sanitizer CI) every admission test ends with a full
  // invariant audit of the replica it drove through the pipeline.
  void TearDown() override { testutil::audit_if_enabled(gateway_.tangle()); }

  void authorize_device() {
    ASSERT_TRUE(
        manager_.authorize({device_.identity().public_identity()}).is_ok());
    run_a_little();
  }

  /// Delivers `tx` to the gateway over the wire as peer gossip — the same
  /// non-strict ingress a second gateway's broadcast would use.
  void gossip(const tangle::Transaction& tx) {
    RpcMessage msg;
    msg.type = MsgType::kBroadcastTx;
    msg.sender_key = tx.sender;
    msg.body = tx.encode();
    network_.send(200, 1, msg.encode());
    run_a_little();
  }

  void run_a_little() { sched_.run_until(sched_.now() + 0.01); }

  tangle::Transaction device_tx(Bytes payload = {}) {
    const auto [t1, t2] = gateway_.select_tips();
    return device_.make(t1, t2, gateway_.required_difficulty(device_.key()),
                        std::move(payload), sched_.now());
  }

  tangle::Transaction coordinator_milestone() {
    const auto [t1, t2] = gateway_.select_tips();
    consensus::Miner miner;
    tangle::Transaction tx;
    tx.type = tangle::TxType::kMilestone;
    tx.sender = coordinator_identity_.public_identity().sign_key;
    tx.parent1 = t1;
    tx.parent2 = t2;
    tx.timestamp = sched_.now();
    tx.difficulty = static_cast<std::uint8_t>(
        gateway_.required_difficulty(tx.sender));
    tx.nonce = miner.mine(tx.parent1, tx.parent2, tx.difficulty)->nonce;
    tx.signature = coordinator_identity_.sign(tx.signing_bytes());
    return tx;
  }

  sim::Scheduler sched_;
  crypto::Identity manager_identity_;
  crypto::Identity gateway_identity_;
  crypto::Identity coordinator_identity_;
  sim::Network network_;
  Gateway gateway_;
  Manager manager_;
  TxFactory device_;
};

// ---- Replay == live ---------------------------------------------------------

TEST_F(AdmissionTest, ReplayReproducesLiveDerivedStateExactly) {
  authorize_device();

  // Live history covering every derived-state observer: ordinary data, a
  // quality-zero payload, a transfer, an on-chain double-spend of that
  // transfer (via gossip, as a conflicting replica would deliver it) and a
  // coordinator milestone confirming the lot.
  ASSERT_TRUE(gateway_.submit(device_tx(to_bytes("ok"))).is_ok());
  run_a_little();
  ASSERT_TRUE(gateway_.submit(device_tx(to_bytes("bad"))).is_ok());
  run_a_little();

  const auto original = device_tx(to_bytes("v1"));
  ASSERT_TRUE(gateway_.submit(original).is_ok());
  run_a_little();

  // Same (sender, sequence) slot, different content: a true double-spend,
  // delivered the way a conflicting replica would deliver it.
  auto conflicting = original;
  conflicting.payload = to_bytes("v2");
  device_.finalize(conflicting);
  gossip(conflicting);
  ASSERT_TRUE(gateway_.tangle().contains(conflicting.id()));

  ASSERT_TRUE(gateway_.submit(coordinator_milestone()).is_ok());
  run_a_little();

  const TimePoint live_now = sched_.now();
  ASSERT_EQ(gateway_.stats().poor_quality_detected, 1u);
  ASSERT_EQ(gateway_.stats().rejected_conflict, 1u);
  ASSERT_GE(gateway_.milestones().milestone_count(), 1u);

  // Cold start: same config (inspector included) + coordinator key.
  const Bytes wire = storage::serialize_tangle(gateway_.tangle());
  auto reloaded = storage::deserialize_tangle(wire);
  ASSERT_TRUE(reloaded.is_ok());
  sim::Scheduler sched2;
  sim::Network net2(sched2, std::make_unique<sim::FixedLatency>(0.001),
                    Rng(2));
  Gateway restored(99, gateway_identity_,
                   manager_identity_.public_identity().sign_key,
                   std::move(reloaded).take(), net2, admission_config(),
                   coordinator_identity_.public_identity().sign_key);
  sched2.run_until(live_now);  // credit is a function of wall time

  // Stats-derived counters: the replay ran the SAME pipeline over the same
  // history, so the attach-side counters agree exactly.
  EXPECT_EQ(restored.stats().accepted, gateway_.stats().accepted);
  EXPECT_EQ(restored.stats().lazy_detected, gateway_.stats().lazy_detected);
  EXPECT_EQ(restored.stats().poor_quality_detected,
            gateway_.stats().poor_quality_detected);
  EXPECT_EQ(restored.stats().rejected_conflict,
            gateway_.stats().rejected_conflict);

  // Milestone confirmations.
  EXPECT_EQ(restored.milestones().milestone_count(),
            gateway_.milestones().milestone_count());
  EXPECT_EQ(restored.milestones().confirmed_count(),
            gateway_.milestones().confirmed_count());

  // Credit: exact value (not just the difficulty quote) at the same
  // instant, for the punished device, the coordinator and the manager.
  for (const auto& key : {device_.key(),
                          coordinator_identity_.public_identity().sign_key,
                          manager_identity_.public_identity().sign_key}) {
    EXPECT_DOUBLE_EQ(
        restored.credit_registry().credit(key, live_now,
                                          restored.weight_oracle()),
        gateway_.credit_registry().credit(key, live_now,
                                          gateway_.weight_oracle()));
    EXPECT_EQ(restored.required_difficulty(key),
              gateway_.required_difficulty(key));
  }

  // Ledger slots (the double-spend resolution carried over).
  EXPECT_EQ(restored.ledger().next_sequence(device_.key()),
            gateway_.ledger().next_sequence(device_.key()));

  // And the sync summaries agree, so two such replicas converge in O(1).
  EXPECT_EQ(restored.tangle().id_digest(), gateway_.tangle().id_digest());
}

TEST_F(AdmissionTest, ReplayStillRejectsForgedMilestones) {
  authorize_device();
  ASSERT_TRUE(gateway_.submit(device_tx()).is_ok());
  run_a_little();
  ASSERT_TRUE(gateway_.submit(coordinator_milestone()).is_ok());
  run_a_little();
  ASSERT_GE(gateway_.milestones().milestone_count(), 1u);

  const Bytes wire = storage::serialize_tangle(gateway_.tangle());
  auto reloaded = storage::deserialize_tangle(wire);
  ASSERT_TRUE(reloaded.is_ok());
  sim::Scheduler sched2;
  sim::Network net2(sched2, std::make_unique<sim::FixedLatency>(0.001),
                    Rng(2));
  // Restore WITHOUT the coordinator key: replay skips the authorize stage,
  // but the milestone observer re-checks the issuer, so a chain file
  // containing milestones yields zero confirmations here (rather than
  // honouring a checkpoint this operator never trusted).
  Gateway restored(99, gateway_identity_,
                   manager_identity_.public_identity().sign_key,
                   std::move(reloaded).take(), net2, admission_config());
  EXPECT_EQ(restored.milestones().milestone_count(), 0u);
  EXPECT_EQ(restored.tangle().size(), gateway_.tangle().size());
}

// ---- Orphan buffer edge cases ----------------------------------------------

TEST_F(AdmissionTest, OrphanBufferCapSaturationShedsAndCounts) {
  GatewayConfig config = admission_config();
  config.max_orphans = 2;
  sim::Scheduler sched;
  sim::Network net(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(3));
  Gateway tiny(7, gateway_identity_,
               manager_identity_.public_identity().sign_key,
               tangle::Tangle::make_genesis(), net, config);
  tiny.attach();

  TxFactory stranger(500);
  for (int i = 0; i < 3; ++i) {
    // Parents the gateway has never seen -> kNotFound -> buffer.
    tangle::TxId fake1, fake2;
    fake1[0] = static_cast<std::uint8_t>(0xf0 + i);
    fake2[0] = static_cast<std::uint8_t>(0xe0 + i);
    const auto orphan = stranger.make(fake1, fake2, 4, {}, sched.now());
    RpcMessage msg;
    msg.type = MsgType::kBroadcastTx;
    msg.sender_key = orphan.sender;
    msg.body = orphan.encode();
    net.send(200, 7, msg.encode());
    sched.run_until(sched.now() + 0.01);
  }

  EXPECT_EQ(tiny.orphan_count(), 2u);
  EXPECT_EQ(tiny.stats().orphans_buffered, 2u);
  EXPECT_EQ(tiny.stats().orphans_dropped, 1u);
}

TEST_F(AdmissionTest, OrphanWithBothParentsMissingRebuffersThenAdopts) {
  // Build a child whose two parents are both unknown to the gateway, then
  // deliver child, parent1, parent2 in that (worst) order.
  TxFactory stranger(501);
  const auto genesis = gateway_.tangle().genesis_id();
  const auto parent_a = stranger.make(genesis, genesis, 4, {}, 0.0);
  const auto parent_b = stranger.make(genesis, genesis, 4, {}, 0.0);
  const auto child =
      stranger.make(parent_a.id(), parent_b.id(), 4, {}, 0.0);

  gossip(child);
  EXPECT_EQ(gateway_.orphan_count(), 1u);  // waiting on parent_a
  EXPECT_FALSE(gateway_.tangle().contains(child.id()));

  gossip(parent_a);
  // Retry found parent_b still missing: the child re-buffered, not lost.
  EXPECT_EQ(gateway_.orphan_count(), 1u);
  EXPECT_EQ(gateway_.stats().orphans_buffered, 2u);
  EXPECT_FALSE(gateway_.tangle().contains(child.id()));

  gossip(parent_b);
  EXPECT_TRUE(gateway_.tangle().contains(child.id()));
  EXPECT_EQ(gateway_.orphan_count(), 0u);
  EXPECT_EQ(gateway_.stats().orphans_adopted, 1u);
}

TEST_F(AdmissionTest, OrphanRetriesAreNotDoubleCountedAsRejections) {
  // A reconnect burst replays this dance once per drained chunk: the child
  // arrives before its parents, each adopted parent triggers a retry, and
  // the retry may find the OTHER parent still missing. Only the first
  // arrival is a rejection; every kNotFound retry is a deferral and must
  // not inflate rejected_other.
  TxFactory stranger(502);
  const auto genesis = gateway_.tangle().genesis_id();
  const auto parent_a = stranger.make(genesis, genesis, 4, {}, 0.0);
  const auto parent_b = stranger.make(genesis, genesis, 4, {}, 0.0);
  const auto child = stranger.make(parent_a.id(), parent_b.id(), 4, {}, 0.0);

  gossip(child);
  EXPECT_EQ(gateway_.stats().rejected_other, 1u);  // the real first miss

  gossip(parent_a);  // adoption retry re-buffers on parent_b: not a rejection
  EXPECT_EQ(gateway_.orphan_count(), 1u);
  EXPECT_EQ(gateway_.stats().rejected_other, 1u);

  gossip(parent_b);
  EXPECT_TRUE(gateway_.tangle().contains(child.id()));
  EXPECT_EQ(gateway_.stats().rejected_other, 1u);
}

// ---- Rate-limiter bucket bounding -------------------------------------------

TEST_F(AdmissionTest, IdleRateBucketsAreEvicted) {
  GatewayConfig config = admission_config();
  config.rate_limit_per_sender = 1.0;
  config.rate_limit_burst = 2.0;  // full-refill horizon: 2 seconds
  sim::Scheduler sched;
  sim::Network net(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(4));
  Gateway limited(7, gateway_identity_,
                  manager_identity_.public_identity().sign_key,
                  tangle::Tangle::make_genesis(), net, config);
  limited.attach();

  auto probe_from = [&](std::uint32_t sender_tag) {
    RpcMessage msg;
    msg.type = MsgType::kGetTipsRequest;
    msg.sender_key[0] = static_cast<std::uint8_t>(sender_tag);
    msg.sender_key[1] = static_cast<std::uint8_t>(sender_tag >> 8);
    msg.sender_key[31] = 0x5a;  // never the all-zero key
    net.send(200, 7, msg.encode());
    sched.run_until(sched.now() + 0.01);
  };

  // A Sybil flood: 50 distinct (unauthorized) senders each probe once.
  for (std::uint32_t i = 0; i < 50; ++i) probe_from(i);
  EXPECT_EQ(limited.rate_bucket_count(), 50u);

  // Past the refill horizon every one of those buckets is indistinguishable
  // from a fresh one; the next request's amortized sweep reclaims them all.
  sched.run_until(10.0);
  probe_from(9999);
  EXPECT_EQ(limited.rate_bucket_count(), 1u);
  EXPECT_EQ(limited.stats().rate_buckets_evicted, 50u);

  // Limiting behaviour itself is unchanged: a burst from one sender is shed.
  for (int i = 0; i < 5; ++i) probe_from(9999);
  EXPECT_GT(limited.stats().rate_limited, 0u);
}

// ---- Single-verify pinning ---------------------------------------------------
//
// The admission pipeline verifies each transaction's Ed25519 signature
// exactly once, whatever the ingress. These tests pin the global
// verification counter so a future refactor that sneaks a second
// signature_valid() (or drops the only one) fails loudly.

TEST_F(AdmissionTest, ServiceWireAdmissionVerifiesExactlyOnce) {
  authorize_device();
  const auto tx = device_tx(to_bytes("svc"));
  const auto expected_id = tx.id();  // local factory tx: uncached, recomputes

  const std::uint64_t verifies0 = crypto::ed25519_verify_calls();
  const std::uint64_t ids0 = tangle::tx_id_computes();
  RpcMessage msg;
  msg.type = MsgType::kSubmitTx;
  msg.sender_key = tx.sender;
  msg.body = tx.encode();
  network_.send(200, 1, msg.encode());
  run_a_little();

  ASSERT_TRUE(gateway_.tangle().contains(expected_id));
  EXPECT_EQ(crypto::ed25519_verify_calls() - verifies0, 1u);
  // decode() hashed the wire once; every later id() read hit the cache.
  EXPECT_EQ(tangle::tx_id_computes() - ids0, 1u);
}

TEST_F(AdmissionTest, GossipAdmissionVerifiesExactlyOnce) {
  const auto tx = device_tx(to_bytes("gsp"));  // gossip skips the auth list
  const auto expected_id = tx.id();

  const std::uint64_t verifies0 = crypto::ed25519_verify_calls();
  const std::uint64_t ids0 = tangle::tx_id_computes();
  gossip(tx);

  ASSERT_TRUE(gateway_.tangle().contains(expected_id));
  EXPECT_EQ(crypto::ed25519_verify_calls() - verifies0, 1u);
  EXPECT_EQ(tangle::tx_id_computes() - ids0, 1u);
}

TEST_F(AdmissionTest, DuplicateGossipCostsNoVerification) {
  const auto tx = device_tx(to_bytes("dup"));
  gossip(tx);
  ASSERT_TRUE(gateway_.tangle().contains(tx.id()));

  // The structural precheck runs before the signature stage, so replayed
  // gossip of an already-attached transaction costs zero Ed25519 work.
  const std::uint64_t verifies0 = crypto::ed25519_verify_calls();
  gossip(tx);
  EXPECT_EQ(crypto::ed25519_verify_calls() - verifies0, 0u);
}

TEST_F(AdmissionTest, SyncBurstBatchVerifiesOncePerTransaction) {
  const auto genesis = gateway_.tangle().genesis_id();
  const auto tx1 = device_.make(genesis, genesis, 4, to_bytes("s1"));
  const auto tx2 = device_.make(tx1.id(), genesis, 4, to_bytes("s2"));
  const auto tx3 = device_.make(tx2.id(), tx1.id(), 4, to_bytes("s3"));

  Writer w;
  w.u32(3);
  for (const auto* tx : {&tx1, &tx2, &tx3}) w.blob(tx->encode());
  RpcMessage msg;
  msg.type = MsgType::kSyncMissing;
  msg.sender_key = device_.key();
  msg.body = std::move(w).take();

  const std::uint64_t verifies0 = crypto::ed25519_verify_calls();
  network_.send(200, 1, msg.encode());
  run_a_little();

  EXPECT_TRUE(gateway_.tangle().contains(tx1.id()));
  EXPECT_TRUE(gateway_.tangle().contains(tx2.id()));
  EXPECT_TRUE(gateway_.tangle().contains(tx3.id()));
  EXPECT_EQ(gateway_.stats().sync_txs_applied, 3u);
  // One batched verification accounting one call per signature — not the
  // 6 calls a verify-in-admit + verify-in-attach double-check would cost.
  EXPECT_EQ(crypto::ed25519_verify_calls() - verifies0, 3u);
}

TEST_F(AdmissionTest, OrphanBufferAndRetryVerifyTheChildExactlyOnce) {
  TxFactory stranger(502);
  const auto genesis = gateway_.tangle().genesis_id();
  const auto parent = stranger.make(genesis, genesis, 4, {}, 0.0);
  const auto child = stranger.make(parent.id(), genesis, 4, {}, 0.0);

  // Orphaned gossip fails the parent precheck BEFORE the signature stage:
  // buffering costs no verification at all.
  const std::uint64_t verifies0 = crypto::ed25519_verify_calls();
  gossip(child);
  EXPECT_EQ(gateway_.orphan_count(), 1u);
  EXPECT_EQ(crypto::ed25519_verify_calls() - verifies0, 0u);

  // Parent arrives: one verify for the parent, one for the adopted child.
  gossip(parent);
  EXPECT_TRUE(gateway_.tangle().contains(child.id()));
  EXPECT_EQ(crypto::ed25519_verify_calls() - verifies0, 2u);
}

TEST_F(AdmissionTest, ReplayAdmitsRestoredHistoryWithoutReVerifying) {
  authorize_device();
  ASSERT_TRUE(gateway_.submit(device_tx(to_bytes("r1"))).is_ok());
  run_a_little();
  ASSERT_TRUE(gateway_.submit(device_tx(to_bytes("r2"))).is_ok());
  run_a_little();

  const Bytes wire = storage::serialize_tangle(gateway_.tangle());
  // Deserialization is the trust boundary: it verifies every signature as
  // it loads. Replay through the pipeline must then add ZERO verifications.
  auto reloaded = storage::deserialize_tangle(wire);
  ASSERT_TRUE(reloaded.is_ok());

  const std::uint64_t verifies0 = crypto::ed25519_verify_calls();
  sim::Scheduler sched2;
  sim::Network net2(sched2, std::make_unique<sim::FixedLatency>(0.001),
                    Rng(2));
  Gateway restored(99, gateway_identity_,
                   manager_identity_.public_identity().sign_key,
                   std::move(reloaded).take(), net2, admission_config());
  EXPECT_EQ(restored.tangle().size(), gateway_.tangle().size());
  EXPECT_EQ(crypto::ed25519_verify_calls() - verifies0, 0u);
}

TEST_F(AdmissionTest, OffloadedPowInvalidatesTheCachedWireId) {
  authorize_device();
  auto tx = device_tx(to_bytes("offload"));
  // The device leaves the nonce to the gateway (the nonce sits outside the
  // signature, so zeroing it keeps the signature valid).
  tx.nonce = 0;

  RpcMessage msg;
  msg.type = MsgType::kAttachRequest;
  msg.sender_key = tx.sender;
  msg.body = tx.encode();
  const std::size_t size0 = gateway_.tangle().size();
  network_.send(200, 1, msg.encode());
  run_a_little();

  ASSERT_EQ(gateway_.tangle().size(), size0 + 1);
  // Regression: decode() caches the id of the nonce-LESS wire; writing the
  // mined nonce must drop that cache or the tx attaches under a stale id.
  for (const auto& id : gateway_.tangle().arrival_order()) {
    const auto* rec = gateway_.tangle().find(id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->tx.id(), id) << "record indexed under a stale id";
  }
}

}  // namespace
}  // namespace biot::node
