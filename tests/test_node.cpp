// Node layer tests: RPC codec, gateway admission pipeline, manager
// authorization flow, light-node submission cycles over the simulated net.
#include <gtest/gtest.h>

#include "node/gateway.h"
#include "node/light_node.h"
#include "node/manager.h"
#include "test_util.h"

namespace biot::node {
namespace {

using testutil::TxFactory;

GatewayConfig test_gateway_config() {
  GatewayConfig c;
  // Low difficulties keep host-side mining instant in tests.
  c.credit.initial_difficulty = 4;
  c.credit.max_difficulty = 8;
  c.credit.min_difficulty = 1;
  return c;
}

// ---- RPC codec ----------------------------------------------------------------

TEST(Rpc, MessageRoundTrip) {
  RpcMessage msg;
  msg.type = MsgType::kSubmitTx;
  msg.request_id = 77;
  msg.sender_key[0] = 0xaa;
  msg.body = to_bytes("body");
  const auto decoded = RpcMessage::decode(msg.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded.value().type, MsgType::kSubmitTx);
  EXPECT_EQ(decoded.value().request_id, 77u);
  EXPECT_EQ(decoded.value().sender_key, msg.sender_key);
  EXPECT_EQ(decoded.value().body, msg.body);
}

TEST(Rpc, RejectsBadType) {
  RpcMessage msg;
  Bytes wire = msg.encode();
  wire[0] = 0;
  EXPECT_FALSE(RpcMessage::decode(wire));
  wire[0] = 99;
  EXPECT_FALSE(RpcMessage::decode(wire));
}

TEST(Rpc, RejectsTruncation) {
  RpcMessage msg;
  msg.body = to_bytes("abc");
  Bytes wire = msg.encode();
  EXPECT_FALSE(RpcMessage::decode(ByteView{wire.data(), wire.size() - 1}));
}

TEST(Rpc, TipsResponseRoundTrip) {
  TipsResponse resp;
  resp.status = ErrorCode::kUnauthorized;
  resp.message = "nope";
  resp.tip1[0] = 1;
  resp.tip2[0] = 2;
  resp.required_difficulty = 11;
  const auto decoded = TipsResponse::decode(resp.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded.value().status, ErrorCode::kUnauthorized);
  EXPECT_EQ(decoded.value().message, "nope");
  EXPECT_EQ(decoded.value().tip1, resp.tip1);
  EXPECT_EQ(decoded.value().required_difficulty, 11);
}

TEST(Rpc, SubmitResultRoundTrip) {
  SubmitResult r;
  r.status = ErrorCode::kConflict;
  r.message = "double spend";
  r.tx_id[5] = 9;
  const auto decoded = SubmitResult::decode(r.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded.value().status, ErrorCode::kConflict);
  EXPECT_EQ(decoded.value().tx_id, r.tx_id);
}

// ---- Gateway admission pipeline -------------------------------------------------

class GatewayTest : public ::testing::Test {
 protected:
  GatewayTest()
      : manager_identity_(crypto::Identity::deterministic(1)),
        gateway_identity_(crypto::Identity::deterministic(2)),
        network_(sched_, std::make_unique<sim::FixedLatency>(0.001), Rng(1)),
        gateway_(1, gateway_identity_,
                 manager_identity_.public_identity().sign_key,
                 tangle::Tangle::make_genesis(), network_, test_gateway_config()),
        manager_(2, manager_identity_, gateway_, network_),
        device_(100) {
    gateway_.attach();
    manager_.attach();
  }

  void authorize_device() {
    ASSERT_TRUE(
        manager_.authorize({device_.identity().public_identity()}).is_ok());
  }

  tangle::Transaction device_tx(int difficulty = -1) {
    const auto [t1, t2] = gateway_.select_tips();
    const int d = difficulty < 0 ? gateway_.required_difficulty(device_.key())
                                 : difficulty;
    return device_.make(t1, t2, d, to_bytes("reading"), sched_.now());
  }

  sim::Scheduler sched_;
  crypto::Identity manager_identity_;
  crypto::Identity gateway_identity_;
  sim::Network network_;
  Gateway gateway_;
  Manager manager_;
  TxFactory device_;
};

TEST_F(GatewayTest, ManagerAuthorizationTxAccepted) {
  authorize_device();
  EXPECT_EQ(gateway_.stats().accepted, 1u);
  EXPECT_TRUE(gateway_.auth_registry().is_authorized(device_.key()));
  EXPECT_EQ(gateway_.tangle().size(), 2u);  // genesis + auth tx
}

TEST_F(GatewayTest, UnauthorizedSenderRejected) {
  const auto tx = device_tx();
  const auto status = gateway_.submit(tx);
  EXPECT_EQ(status.code(), ErrorCode::kUnauthorized);
  EXPECT_EQ(gateway_.stats().rejected_unauthorized, 1u);
}

TEST_F(GatewayTest, AuthorizedSenderAccepted) {
  authorize_device();
  EXPECT_TRUE(gateway_.submit(device_tx()).is_ok());
  EXPECT_EQ(gateway_.stats().accepted, 2u);
}

TEST_F(GatewayTest, DeauthorizedDeviceBlockedAgain) {
  authorize_device();
  ASSERT_TRUE(gateway_.submit(device_tx()).is_ok());
  ASSERT_TRUE(manager_.authorize({}).is_ok());  // empty list: deauthorize all
  EXPECT_EQ(gateway_.submit(device_tx()).code(), ErrorCode::kUnauthorized);
}

TEST_F(GatewayTest, BelowRequiredDifficultyRejected) {
  authorize_device();
  const auto tx = device_tx(2);  // required is 4 for a fresh account
  EXPECT_EQ(gateway_.submit(tx).code(), ErrorCode::kPowInvalid);
  EXPECT_EQ(gateway_.stats().rejected_difficulty, 1u);
}

TEST_F(GatewayTest, DoubleSpendPunished) {
  authorize_device();
  auto tx1 = device_tx();
  auto tx2 = tx1;
  tx2.payload = to_bytes("other");
  device_.finalize(tx2);

  ASSERT_TRUE(gateway_.submit(tx1).is_ok());
  EXPECT_EQ(gateway_.submit(tx2).code(), ErrorCode::kConflict);
  EXPECT_EQ(gateway_.stats().rejected_conflict, 1u);

  // Credit registry recorded the offence: difficulty jumps to max.
  EXPECT_EQ(gateway_.required_difficulty(device_.key()),
            test_gateway_config().credit.max_difficulty);
}

TEST_F(GatewayTest, LazyApprovalAttachedButPunished) {
  authorize_device();
  const auto old_pair = gateway_.select_tips();
  ASSERT_TRUE(gateway_.submit(device_tx()).is_ok());  // consume the old tips
  ASSERT_TRUE(gateway_.submit(device_tx()).is_ok());

  sched_.run_until(100.0);  // let the old parents age past the lazy threshold

  auto lazy = device_.make(old_pair.first, old_pair.second,
                           gateway_.required_difficulty(device_.key()), {},
                           sched_.now());
  EXPECT_TRUE(gateway_.submit(lazy).is_ok());  // attaches...
  EXPECT_EQ(gateway_.stats().lazy_detected, 1u);  // ...but is punished
  EXPECT_EQ(gateway_.required_difficulty(device_.key()),
            test_gateway_config().credit.max_difficulty);
}

TEST_F(GatewayTest, HonestActivityLowersDifficulty) {
  authorize_device();
  const int initial = gateway_.required_difficulty(device_.key());
  for (int i = 0; i < 20; ++i) {
    sched_.run_until(sched_.now() + 1.0);
    ASSERT_TRUE(gateway_.submit(device_tx()).is_ok());
  }
  EXPECT_LT(gateway_.required_difficulty(device_.key()), initial);
}

TEST_F(GatewayTest, FixedPolicyIgnoresCredit) {
  GatewayConfig c = test_gateway_config();
  c.policy = GatewayConfig::Policy::kFixed;
  c.fixed_difficulty = 5;
  Gateway fixed_gw(7, gateway_identity_,
                   manager_identity_.public_identity().sign_key,
                   tangle::Tangle::make_genesis(), network_, c);
  EXPECT_EQ(fixed_gw.required_difficulty(device_.key()), 5);
}

TEST_F(GatewayTest, GossipReplicatesAcceptedTx) {
  Gateway peer(3, gateway_identity_,
               manager_identity_.public_identity().sign_key,
               tangle::Tangle::make_genesis(), network_, test_gateway_config());
  peer.attach();
  gateway_.add_peer(3);

  authorize_device();
  ASSERT_TRUE(gateway_.submit(device_tx()).is_ok());
  sched_.run();

  EXPECT_EQ(peer.tangle().size(), gateway_.tangle().size());
  EXPECT_GE(peer.stats().gossip_received, 2u);  // auth tx + data tx
  EXPECT_TRUE(peer.auth_registry().is_authorized(device_.key()));
}

// ---- Light node over the network -------------------------------------------------

class LightNodeSimTest : public ::testing::Test {
 protected:
  LightNodeSimTest()
      : manager_identity_(crypto::Identity::deterministic(1)),
        gateway_identity_(crypto::Identity::deterministic(2)),
        network_(sched_, std::make_unique<sim::FixedLatency>(0.002), Rng(3)),
        gateway_(1, gateway_identity_,
                 manager_identity_.public_identity().sign_key,
                 tangle::Tangle::make_genesis(), network_,
                 test_gateway_config()),
        manager_(2, manager_identity_, gateway_, network_) {
    gateway_.attach();
    manager_.attach();
  }

  LightNodeConfig fast_device_config() {
    LightNodeConfig c;
    c.profile.hash_rate_hz = 1e6;  // keep simulated PoW sub-millisecond
    c.collect_interval = 0.5;
    c.start_time = 0.1;
    return c;
  }

  sim::Scheduler sched_;
  crypto::Identity manager_identity_;
  crypto::Identity gateway_identity_;
  sim::Network network_;
  Gateway gateway_;
  Manager manager_;
};

TEST_F(LightNodeSimTest, DeviceSubmitsSensorData) {
  LightNode device(10, crypto::Identity::deterministic(100), 1, network_,
                   fast_device_config());
  ASSERT_TRUE(manager_.authorize({device.public_identity()}).is_ok());
  device.start();
  sched_.run_until(10.0);

  EXPECT_GT(device.stats().accepted, 10u);
  EXPECT_EQ(device.stats().rejected, 0u);
  EXPECT_EQ(gateway_.tangle().size(), 2 + device.stats().accepted);
}

TEST_F(LightNodeSimTest, UnauthorizedDeviceNeverAttaches) {
  LightNode sybil(11, crypto::Identity::deterministic(666), 1, network_,
                  fast_device_config());
  sybil.start();
  sched_.run_until(5.0);

  EXPECT_EQ(sybil.stats().accepted, 0u);
  EXPECT_GT(sybil.stats().unauthorized, 3u);
  EXPECT_EQ(gateway_.tangle().size(), 1u);  // genesis only
}

TEST_F(LightNodeSimTest, DoubleSpendAttackDetectedAndPunished) {
  LightNode device(12, crypto::Identity::deterministic(101), 1, network_,
                   fast_device_config());
  ASSERT_TRUE(manager_.authorize({device.public_identity()}).is_ok());
  device.start();
  device.schedule_attack(2.0, AttackKind::kDoubleSpend);
  sched_.run_until(8.0);

  EXPECT_EQ(device.stats().attacks_launched, 1u);
  EXPECT_EQ(gateway_.stats().rejected_conflict, 1u);
  EXPECT_GE(device.stats().rejected, 1u);
}

TEST_F(LightNodeSimTest, LazyAttackDetected) {
  LightNode device(13, crypto::Identity::deterministic(102), 1, network_,
                   fast_device_config());
  ASSERT_TRUE(manager_.authorize({device.public_identity()}).is_ok());
  device.start();
  // Attack at t=30: the parents remembered at t~0.1 are stale by then.
  device.schedule_attack(30.0, AttackKind::kLazyTips);
  sched_.run_until(40.0);

  EXPECT_EQ(device.stats().attacks_launched, 1u);
  EXPECT_EQ(gateway_.stats().lazy_detected, 1u);
}

TEST_F(LightNodeSimTest, KeyDistributionOverNetworkInstallsKey) {
  LightNode device(14, crypto::Identity::deterministic(103), 1, network_,
                   fast_device_config());
  ASSERT_TRUE(manager_.authorize({device.public_identity()}).is_ok());
  device.enable_keydist(manager_identity_.public_identity().sign_key);
  device.start();

  sched_.run_until(1.0);
  ASSERT_TRUE(
      manager_.distribute_key(device.public_identity(), device.node_id()).is_ok());
  sched_.run_until(2.0);

  EXPECT_TRUE(device.has_symmetric_key());
  EXPECT_TRUE(manager_.session_established(device.public_identity()));

  // Subsequent transactions carry encrypted payloads the manager can read.
  sched_.run_until(5.0);
  const auto& tangle = gateway_.tangle();
  bool found_encrypted = false;
  for (const auto& id : tangle.arrival_order()) {
    const auto* rec = tangle.find(id);
    if (rec->tx.payload_encrypted) {
      found_encrypted = true;
      const auto& key = manager_.session_key(device.public_identity());
      const auto plain = auth::envelope_open(key, rec->tx.payload);
      EXPECT_TRUE(plain.is_ok());
    }
  }
  EXPECT_TRUE(found_encrypted);
}

TEST_F(LightNodeSimTest, KeyDistributionToUnauthorizedDeviceRefused) {
  LightNode device(15, crypto::Identity::deterministic(104), 1, network_,
                   fast_device_config());
  EXPECT_EQ(manager_.distribute_key(device.public_identity(), device.node_id())
                .code(),
            ErrorCode::kUnauthorized);
}

}  // namespace
}  // namespace biot::node
