// CLI argument parser tests (tools/cli_args.h).
#include <gtest/gtest.h>

#include <array>

#include "cli_args.h"

namespace biot::tools {
namespace {

CliArgs parse(std::vector<std::string> argv) {
  std::vector<char*> raw;
  static std::vector<std::string> storage;  // keep c_str() alive
  storage = std::move(argv);
  raw.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) raw.push_back(const_cast<char*>(s.c_str()));
  return CliArgs(static_cast<int>(raw.size()), raw.data());
}

TEST(CliArgs, SpaceSeparatedValues) {
  const auto args = parse({"--devices", "8", "--seconds", "60"});
  EXPECT_EQ(args.get_int("devices", 0), 8);
  EXPECT_EQ(args.get_double("seconds", 0), 60.0);
}

TEST(CliArgs, EqualsSeparatedValues) {
  const auto args = parse({"--devices=16", "--name=factory-a"});
  EXPECT_EQ(args.get_int("devices", 0), 16);
  EXPECT_EQ(args.get("name", ""), "factory-a");
}

TEST(CliArgs, BooleanFlags) {
  const auto args = parse({"--coordinator", "--offload", "--seconds", "5"});
  EXPECT_TRUE(args.has("coordinator"));
  EXPECT_TRUE(args.has("offload"));
  EXPECT_FALSE(args.has("fixed-pow"));
  EXPECT_EQ(args.get_int("seconds", 0), 5);
}

TEST(CliArgs, BooleanFollowedByFlagNotConsumed) {
  // --coordinator must not swallow the following --devices as its value.
  const auto args = parse({"--coordinator", "--devices", "3"});
  EXPECT_TRUE(args.has("coordinator"));
  EXPECT_EQ(args.get("coordinator", "x"), "");
  EXPECT_EQ(args.get_int("devices", 0), 3);
}

TEST(CliArgs, PositionalArguments) {
  const auto args = parse({"file1.bin", "--archive", "file2.bin"});
  // "--archive file2.bin" is flag+value; file1.bin is positional.
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "file1.bin");
  EXPECT_EQ(args.get("archive", ""), "file2.bin");
}

TEST(CliArgs, DefaultsWhenAbsent) {
  const auto args = parse({});
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("missing", 42), 42);
  EXPECT_EQ(args.get_double("missing", 2.5), 2.5);
}

TEST(CliArgs, LastOccurrenceWins) {
  const auto args = parse({"--seed", "1", "--seed", "2"});
  EXPECT_EQ(args.get_int("seed", 0), 2);
}

TEST(CliArgs, MetricsOutTakesPath) {
  // biot_simulate --metrics-out <path> as documented in its usage text.
  const auto args = parse({"--chaos", "5:crash:1;9:restart:1", "--metrics-out",
                           "/tmp/m.json"});
  ASSERT_TRUE(args.has("metrics-out"));
  EXPECT_EQ(args.get("metrics-out", ""), "/tmp/m.json");
  EXPECT_EQ(args.get("chaos", ""), "5:crash:1;9:restart:1");
}

TEST(CliArgs, InspectMetricsFlagBooleanOrPath) {
  // biot_inspect --metrics: bare flag dumps text...
  const auto bare = parse({"tangle.bin", "--metrics"});
  ASSERT_TRUE(bare.has("metrics"));
  EXPECT_EQ(bare.get("metrics", "x"), "");
  ASSERT_EQ(bare.positional().size(), 1u);
  // ...and with a value it names the JSON output file.
  const auto with_path = parse({"tangle.bin", "--metrics=out.json"});
  EXPECT_EQ(with_path.get("metrics", ""), "out.json");
  // A following flag must not be swallowed as the metrics path.
  const auto followed = parse({"tangle.bin", "--metrics", "--audit"});
  EXPECT_EQ(followed.get("metrics", "x"), "");
  EXPECT_TRUE(followed.has("audit"));
}

}  // namespace
}  // namespace biot::tools
