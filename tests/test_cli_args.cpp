// CLI argument parser tests (tools/cli_args.h).
#include <gtest/gtest.h>

#include <array>

#include "cli_args.h"

namespace biot::tools {
namespace {

CliArgs parse(std::vector<std::string> argv) {
  std::vector<char*> raw;
  static std::vector<std::string> storage;  // keep c_str() alive
  storage = std::move(argv);
  raw.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) raw.push_back(const_cast<char*>(s.c_str()));
  return CliArgs(static_cast<int>(raw.size()), raw.data());
}

TEST(CliArgs, SpaceSeparatedValues) {
  const auto args = parse({"--devices", "8", "--seconds", "60"});
  EXPECT_EQ(args.get_int("devices", 0), 8);
  EXPECT_EQ(args.get_double("seconds", 0), 60.0);
}

TEST(CliArgs, EqualsSeparatedValues) {
  const auto args = parse({"--devices=16", "--name=factory-a"});
  EXPECT_EQ(args.get_int("devices", 0), 16);
  EXPECT_EQ(args.get("name", ""), "factory-a");
}

TEST(CliArgs, BooleanFlags) {
  const auto args = parse({"--coordinator", "--offload", "--seconds", "5"});
  EXPECT_TRUE(args.has("coordinator"));
  EXPECT_TRUE(args.has("offload"));
  EXPECT_FALSE(args.has("fixed-pow"));
  EXPECT_EQ(args.get_int("seconds", 0), 5);
}

TEST(CliArgs, BooleanFollowedByFlagNotConsumed) {
  // --coordinator must not swallow the following --devices as its value.
  const auto args = parse({"--coordinator", "--devices", "3"});
  EXPECT_TRUE(args.has("coordinator"));
  EXPECT_EQ(args.get("coordinator", "x"), "");
  EXPECT_EQ(args.get_int("devices", 0), 3);
}

TEST(CliArgs, PositionalArguments) {
  const auto args = parse({"file1.bin", "--archive", "file2.bin"});
  // "--archive file2.bin" is flag+value; file1.bin is positional.
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "file1.bin");
  EXPECT_EQ(args.get("archive", ""), "file2.bin");
}

TEST(CliArgs, DefaultsWhenAbsent) {
  const auto args = parse({});
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("missing", 42), 42);
  EXPECT_EQ(args.get_double("missing", 2.5), 2.5);
}

TEST(CliArgs, LastOccurrenceWins) {
  const auto args = parse({"--seed", "1", "--seed", "2"});
  EXPECT_EQ(args.get_int("seed", 0), 2);
}

}  // namespace
}  // namespace biot::tools
