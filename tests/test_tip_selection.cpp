// Tip-selection strategies: uniform, weighted MCMC walk, lazy (malicious).
#include <gtest/gtest.h>

#include <map>

#include "tangle/tip_selection.h"
#include "test_util.h"

namespace biot::tangle {
namespace {

using testutil::TxFactory;

class TipSelectionTest : public ::testing::Test {
 protected:
  TipSelectionTest() : tangle_(Tangle::make_genesis()), node_(1), rng_(42) {}

  TxId attach(const TxId& p1, const TxId& p2) {
    const auto tx = node_.make(p1, p2, 2);
    EXPECT_TRUE(tangle_.add(tx, 0.0).is_ok());
    return tx.id();
  }

  Tangle tangle_;
  TxFactory node_;
  Rng rng_;
};

TEST_F(TipSelectionTest, UniformReturnsOnlyTips) {
  const auto g = tangle_.genesis_id();
  const auto a = attach(g, g);
  const auto b = attach(g, g);  // note: g no longer a tip after first attach
  (void)a;
  (void)b;
  UniformRandomTipSelector selector;
  for (int i = 0; i < 50; ++i) {
    const auto [t1, t2] = selector.select(tangle_, rng_);
    EXPECT_TRUE(tangle_.is_tip(t1));
    EXPECT_TRUE(tangle_.is_tip(t2));
  }
}

TEST_F(TipSelectionTest, UniformOnGenesisOnlyReturnsGenesisTwice) {
  UniformRandomTipSelector selector;
  const auto [t1, t2] = selector.select(tangle_, rng_);
  EXPECT_EQ(t1, tangle_.genesis_id());
  EXPECT_EQ(t2, tangle_.genesis_id());
}

TEST_F(TipSelectionTest, UniformCoversAllTips) {
  const auto g = tangle_.genesis_id();
  std::set<TxId> tips;
  for (int i = 0; i < 6; ++i) tips.insert(attach(g, g));
  // After the first attach g is consumed; subsequent attaches of (g,g) are
  // still valid structurally (parents exist) and are all tips.
  UniformRandomTipSelector selector;
  std::set<TxId> seen;
  for (int i = 0; i < 400; ++i) {
    const auto [t1, t2] = selector.select(tangle_, rng_);
    seen.insert(t1);
    seen.insert(t2);
  }
  EXPECT_EQ(seen, tangle_.tips());
}

TEST_F(TipSelectionTest, WeightedWalkReachesATip) {
  const auto g = tangle_.genesis_id();
  auto prev = attach(g, g);
  for (int i = 0; i < 10; ++i) prev = attach(prev, prev);
  WeightedWalkTipSelector selector(0.5);
  const auto [t1, t2] = selector.select(tangle_, rng_);
  EXPECT_TRUE(tangle_.is_tip(t1));
  EXPECT_TRUE(tangle_.is_tip(t2));
}

TEST_F(TipSelectionTest, HighAlphaWalkPrefersHeavyBranch) {
  // Build a heavy chain and a single light side-tip off genesis.
  const auto g = tangle_.genesis_id();
  auto heavy = attach(g, g);
  const auto light = attach(g, g);  // stays a tip, weight 1
  for (int i = 0; i < 12; ++i) heavy = attach(heavy, heavy);

  WeightedWalkTipSelector selector(5.0);
  int heavy_hits = 0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    const auto [t1, t2] = selector.select(tangle_, rng_);
    if (t1 == heavy) ++heavy_hits;
    if (t2 == heavy) ++heavy_hits;
    EXPECT_TRUE(t1 == heavy || t1 == light);
  }
  // With alpha = 5 and a weight gap of ~13 the walk should essentially
  // always leave genesis toward the heavy branch.
  EXPECT_GT(heavy_hits, 2 * trials * 9 / 10);
}

TEST_F(TipSelectionTest, ZeroAlphaWalkSplitsRoughlyEvenly) {
  // Two equal-weight branches off genesis.
  const auto g = tangle_.genesis_id();
  auto left = attach(g, g);
  auto right = attach(g, g);
  for (int i = 0; i < 5; ++i) {
    left = attach(left, left);
    right = attach(right, right);
  }

  WeightedWalkTipSelector selector(0.0);
  int left_hits = 0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    const auto [t1, t2] = selector.select(tangle_, rng_);
    if (t1 == left) ++left_hits;
    if (t2 == left) ++left_hits;
  }
  const double frac = static_cast<double>(left_hits) / (2 * trials);
  EXPECT_GT(frac, 0.35);
  EXPECT_LT(frac, 0.65);
}

TEST_F(TipSelectionTest, LazySelectorIgnoresFreshTips) {
  const auto g = tangle_.genesis_id();
  const auto old1 = attach(g, g);
  const auto old2 = attach(g, g);
  for (int i = 0; i < 5; ++i) attach(old1, old2);

  LazyTipSelector selector(old1, old2);
  const auto [t1, t2] = selector.select(tangle_, rng_);
  EXPECT_EQ(t1, old1);
  EXPECT_EQ(t2, old2);
  EXPECT_FALSE(tangle_.is_tip(t1));
}

TEST_F(TipSelectionTest, SelectionIsDeterministicGivenSeed) {
  const auto g = tangle_.genesis_id();
  for (int i = 0; i < 5; ++i) attach(g, g);
  UniformRandomTipSelector selector;
  Rng r1(7), r2(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(selector.select(tangle_, r1), selector.select(tangle_, r2));
  }
}

}  // namespace
}  // namespace biot::tangle
