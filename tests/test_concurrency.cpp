// Concurrent admission core tests (ctest label `concurrency`, so the TSan CI
// job runs this binary): executor/TaskGroup unit behaviour, the AttachBatch
// == serial-adds equivalence, and the determinism pin of the two-phase
// admit_many pipeline — the serial per-item gossip path, admit_many on an
// InlineExecutor and admit_many on ThreadPoolExecutors of several widths
// must all land on byte-identical tangle/ledger/credit/stats state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/codec.h"
#include "common/executor.h"
#include "node/gateway.h"
#include "test_util.h"

namespace biot::node {
namespace {

using testutil::TxFactory;

// ---- Executor backends ------------------------------------------------------

TEST(InlineExecutorTest, RunsTasksAtSubmitSiteInOrder) {
  InlineExecutor exec;
  std::vector<int> order;
  exec.submit([&] { order.push_back(1); });
  EXPECT_EQ(order.size(), 1u);  // ran before submit() returned
  exec.submit([&] { order.push_back(2); });
  exec.submit([&] { order.push_back(3); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(exec.concurrency(), 1u);
  EXPECT_EQ(exec.queue_depth(), 0u);
}

TEST(ThreadPoolExecutorTest, RunsEverySpawnedTask) {
  ThreadPoolExecutor pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  std::atomic<int> ran{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 256; ++i)
      group.spawn([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    group.wait();
  }
  EXPECT_EQ(ran.load(), 256);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolExecutorTest, ShutdownDrainsTheQueueBeforeJoining) {
  std::atomic<int> ran{0};
  {
    ThreadPoolExecutor pool(2);
    for (int i = 0; i < 64; ++i)
      pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    // Destructor: no submitted task may be dropped on the floor.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolExecutorTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPoolExecutor pool(0);
  EXPECT_GE(pool.concurrency(), 1u);
}

TEST(ThreadPoolExecutorTest, SubmittedCountsEveryTaskEverHanded) {
  ThreadPoolExecutor pool(2);
  EXPECT_EQ(pool.submitted(), 0u);
  {
    TaskGroup group(pool);
    for (int i = 0; i < 64; ++i) group.spawn([] {});
    group.wait();
  }
  EXPECT_EQ(pool.submitted(), 64u);
  EXPECT_EQ(pool.queue_depth(), 0u);

  InlineExecutor inline_exec;
  inline_exec.submit([] {});
  inline_exec.submit([] {});
  EXPECT_EQ(inline_exec.submitted(), 2u);
}

TEST(ThreadPoolExecutorTest, ShutdownWhileSubmittingLosesNoTask) {
  // Regression for the submit()/shutdown() race: a task handed to the pool
  // concurrently with shutdown must still run exactly once — drained by a
  // worker if it made the queue, or run inline at the submit site if it
  // arrived after the pool was marked shut down. Either way nothing is
  // dropped and nothing runs twice.
  std::atomic<int> ran{0};
  std::uint64_t handed = 0;
  ThreadPoolExecutor pool(2);
  std::atomic<bool> stop{false};
  std::thread submitter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
      ++handed;
    }
    // Keep submitting after shutdown: these must run inline, not vanish.
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
      ++handed;
    }
  });
  while (pool.submitted() < 128) std::this_thread::yield();
  pool.shutdown();  // races the submitter mid-stream
  stop.store(true, std::memory_order_relaxed);
  submitter.join();
  EXPECT_EQ(ran.load(), static_cast<int>(handed));
  EXPECT_EQ(pool.submitted(), handed);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolExecutorTest, ShutdownIsIdempotent) {
  ThreadPoolExecutor pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i)
    pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.shutdown();
  pool.shutdown();  // second call is a no-op, not a double-join
  EXPECT_EQ(ran.load(), 16);
  pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), 17);  // post-shutdown submit ran inline
}

TEST(TaskGroupTest, WaitPublishesWorkerWritesToTheCaller) {
  // Each task writes a distinct slot without synchronization of its own;
  // only the group join makes the writes visible. Under TSan this is the
  // proof the join really is a happens-before edge.
  ThreadPoolExecutor pool(4);
  std::vector<int> slots(128, 0);
  TaskGroup group(pool);
  for (std::size_t i = 0; i < slots.size(); ++i)
    group.spawn([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
  group.wait();
  for (std::size_t i = 0; i < slots.size(); ++i)
    EXPECT_EQ(slots[i], static_cast<int>(i) + 1);
}

TEST(TaskGroupTest, SpawnIsSafeFromMultipleProducerThreads) {
  // The MPMC shape: four producer threads feed one group on one pool.
  ThreadPoolExecutor pool(4);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p)
    producers.emplace_back([&] {
      for (int i = 0; i < 64; ++i)
        group.spawn([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    });
  for (auto& t : producers) t.join();
  group.wait();
  EXPECT_EQ(ran.load(), 256);
}

TEST(TaskGroupTest, WorksOnTheInlineBackendToo) {
  InlineExecutor exec;
  TaskGroup group(exec);
  int ran = 0;
  group.spawn([&] { ++ran; });
  group.spawn([&] { ++ran; });
  group.wait();
  EXPECT_EQ(ran, 2);
}

// ---- AttachBatch == serial adds ---------------------------------------------

std::vector<tangle::Transaction> batch_workload(TxFactory& factory,
                                                const tangle::TxId& genesis) {
  std::vector<tangle::Transaction> txs;
  txs.push_back(factory.make(genesis, genesis, 2, to_bytes("a")));
  txs.push_back(factory.make(txs[0].id(), genesis, 2, to_bytes("b")));
  txs.push_back(factory.make(txs[1].id(), txs[0].id(), 2, to_bytes("c")));
  txs.push_back(txs[0]);  // duplicate: must fail identically in both modes
  tangle::TxId unknown{};
  unknown[0] = 0x77;
  txs.push_back(factory.make(unknown, genesis, 2, to_bytes("d")));  // orphan
  return txs;
}

TEST(AttachBatchTest, BatchedAttachMatchesSerialAddsExactly) {
  tangle::Tangle serial(tangle::Tangle::make_genesis());
  tangle::Tangle batched(tangle::Tangle::make_genesis());
  TxFactory factory(42);
  const auto txs = batch_workload(factory, serial.genesis_id());

  std::vector<Status> serial_statuses;
  for (const auto& tx : txs)
    serial_statuses.push_back(
        serial.add(tx, 1.0, tangle::VerifiedToken::assume_valid(tx)));

  const std::size_t indexed_before = batched.arrival_index().size();
  std::vector<Status> batch_statuses;
  {
    tangle::Tangle::AttachBatch batch(batched);
    for (const auto& tx : txs)
      batch_statuses.push_back(
          batch.add(tx, 1.0, tangle::VerifiedToken::assume_valid(tx)));
    // Mid-batch: structural state is live (later members parented on earlier
    // ones above), but the deferred index still shows the pre-batch snapshot.
    EXPECT_EQ(batched.arrival_index().size(), indexed_before);
    EXPECT_EQ(batch.pending(), 3u);  // three attached, two failed
  }

  ASSERT_EQ(batch_statuses.size(), serial_statuses.size());
  for (std::size_t i = 0; i < txs.size(); ++i) {
    EXPECT_EQ(batch_statuses[i].code(), serial_statuses[i].code())
        << "item " << i;
  }

  // Byte-identical end state: digest, sketch, order, tips, per-id weights
  // and depths, and the secondary indexes (via the full invariant audit).
  EXPECT_EQ(batched.id_digest(), serial.id_digest());
  EXPECT_EQ(batched.id_sketch(), serial.id_sketch());
  EXPECT_EQ(batched.arrival_order(), serial.arrival_order());
  EXPECT_EQ(batched.tips(), serial.tips());
  EXPECT_EQ(batched.size(), serial.size());
  for (const auto& id : serial.arrival_order()) {
    EXPECT_EQ(batched.cumulative_weight(id), serial.cumulative_weight(id));
    EXPECT_EQ(batched.depth(id), serial.depth(id));
  }
  testutil::expect_audit_clean(batched);
}

TEST(AttachBatchTest, ConvenienceWrapperAndDestructorCommit) {
  tangle::Tangle reference(tangle::Tangle::make_genesis());
  tangle::Tangle wrapped(tangle::Tangle::make_genesis());
  TxFactory factory(43);
  const auto txs = batch_workload(factory, reference.genesis_id());

  std::vector<tangle::VerifiedToken> tokens;
  tokens.reserve(txs.size());
  std::vector<tangle::Tangle::BatchAttachItem> items;
  items.reserve(txs.size());
  for (const auto& tx : txs) {
    tokens.push_back(tangle::VerifiedToken::assume_valid(tx));
    items.push_back({&tx, 1.0, &tokens.back()});
    // The reference attaches per item; its two expected failures (duplicate,
    // unknown parent) leave no trace, same as the batch's.
    (void)reference.add(tx, 1.0, tokens.back());
  }
  const auto statuses = wrapped.attach_batch(items);
  ASSERT_EQ(statuses.size(), txs.size());
  EXPECT_EQ(wrapped.id_digest(), reference.id_digest());
  EXPECT_EQ(wrapped.arrival_order(), reference.arrival_order());
  testutil::expect_audit_clean(wrapped);
}

// ---- Pipeline determinism: serial vs inline vs thread pool ------------------

GatewayConfig concurrency_config(unsigned threads) {
  GatewayConfig c;
  c.admission_threads = threads;
  return c;
}

/// One gateway plus the sim plumbing it needs, with its clock pre-advanced
/// to `start` so arrival stamps line up across replicas.
struct Replica {
  explicit Replica(unsigned threads, TimePoint start = 0.001)
      : identity(crypto::Identity::deterministic(7)),
        manager_identity(crypto::Identity::deterministic(8)),
        network(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(1)),
        gateway(1, identity, manager_identity.public_identity().sign_key,
                tangle::Tangle::make_genesis(), network,
                concurrency_config(threads)) {
    gateway.attach();
    sched.run_until(start);
  }

  sim::Scheduler sched;
  crypto::Identity identity;
  crypto::Identity manager_identity;
  sim::Network network;
  Gateway gateway;
};

/// A gossip burst with intra-batch parents, an in-batch duplicate and a
/// corrupted signature — the shapes whose verdicts must not depend on the
/// executor width.
std::vector<tangle::Transaction> burst_workload(const tangle::TxId& genesis) {
  TxFactory alice(100);
  TxFactory bob(101);
  std::vector<tangle::Transaction> txs;
  txs.push_back(alice.make(genesis, genesis, 2, to_bytes("a1")));
  txs.push_back(bob.make(genesis, genesis, 2, to_bytes("b1")));
  txs.push_back(alice.make(txs[0].id(), txs[1].id(), 2, to_bytes("a2")));
  txs.push_back(bob.make(txs[2].id(), txs[0].id(), 2, to_bytes("b2")));
  txs.push_back(alice.make(txs[3].id(), txs[2].id(), 2, to_bytes("a3")));
  txs.push_back(txs[0]);  // in-batch duplicate -> kDuplicate either way
  auto forged = bob.make(txs[4].id(), txs[0].id(), 2, to_bytes("x"));
  forged.signature[0] ^= 0x01;  // valid PoW, broken Ed25519 -> kVerifyFailed
  txs.push_back(forged);
  return txs;
}

void expect_same_derived_state(const Gateway& a, const Gateway& b) {
  EXPECT_EQ(a.tangle().id_digest(), b.tangle().id_digest());
  EXPECT_EQ(a.tangle().id_sketch(), b.tangle().id_sketch());
  EXPECT_EQ(a.tangle().arrival_order(), b.tangle().arrival_order());
  EXPECT_EQ(a.tangle().tips(), b.tangle().tips());
  EXPECT_EQ(a.stats().accepted.value(), b.stats().accepted.value());
  EXPECT_EQ(a.stats().lazy_detected.value(), b.stats().lazy_detected.value());
  EXPECT_EQ(a.stats().rejected_signature.value(),
            b.stats().rejected_signature.value());
  EXPECT_EQ(a.stats().rejected_other.value(),
            b.stats().rejected_other.value());
  // Credit is a pure function of the recorded events and the query instant,
  // so identical histories price identically.
  TxFactory alice(100);
  TxFactory bob(101);
  for (const auto& key : {alice.key(), bob.key()}) {
    EXPECT_DOUBLE_EQ(a.credit_registry().credit(key, 5.0, a.weight_oracle()),
                     b.credit_registry().credit(key, 5.0, b.weight_oracle()));
  }
}

TEST(AdmitManyDeterminismTest, InlineBatchMatchesSerialGossipByteForByte) {
  Replica serial(1);
  const auto txs = burst_workload(serial.gateway.tangle().genesis_id());

  // Serial reference: per-item gossip delivery. All messages are enqueued
  // at t=0 and delivered FIFO at t=0.001, so every admit sees the same
  // arrival stamp admit_many will use below.
  sim::Scheduler feed_sched;
  sim::Network feed(feed_sched, std::make_unique<sim::FixedLatency>(0.001),
                    Rng(2));
  // Re-create the serial replica on the feed network so sends reach it.
  crypto::Identity gw_id = crypto::Identity::deterministic(7);
  crypto::Identity mgr_id = crypto::Identity::deterministic(8);
  Gateway serial_gw(1, gw_id, mgr_id.public_identity().sign_key,
                    tangle::Tangle::make_genesis(), feed,
                    concurrency_config(1));
  serial_gw.attach();
  for (const auto& tx : txs) {
    RpcMessage msg;
    msg.type = MsgType::kBroadcastTx;
    msg.sender_key = tx.sender;
    msg.body = tx.encode();
    feed.send(200, 1, msg.encode());
  }
  feed_sched.run_until(0.001);

  // Inline admit_many at the same arrival instant.
  Replica inline_replica(1);
  const auto inline_statuses =
      inline_replica.gateway.admit_many(txs, Ingress::kGossip);
  ASSERT_EQ(inline_statuses.size(), txs.size());
  EXPECT_TRUE(inline_statuses[0].is_ok());
  EXPECT_TRUE(inline_statuses[4].is_ok());
  EXPECT_EQ(inline_statuses[5].code(), ErrorCode::kRejected);  // duplicate
  EXPECT_EQ(inline_statuses[6].code(), ErrorCode::kVerifyFailed);

  expect_same_derived_state(serial_gw, inline_replica.gateway);
  testutil::expect_audit_clean(inline_replica.gateway.tangle());
}

TEST(AdmitManyDeterminismTest, ThreadPoolWidthsConvergeToTheInlineState) {
  Replica inline_replica(1);
  const auto txs =
      burst_workload(inline_replica.gateway.tangle().genesis_id());
  const auto inline_statuses =
      inline_replica.gateway.admit_many(txs, Ingress::kGossip);

  for (const unsigned threads : {2u, 4u, 8u}) {
    Replica pooled(threads);
    const auto statuses = pooled.gateway.admit_many(txs, Ingress::kGossip);
    ASSERT_EQ(statuses.size(), inline_statuses.size());
    for (std::size_t i = 0; i < statuses.size(); ++i) {
      EXPECT_EQ(statuses[i].code(), inline_statuses[i].code())
          << "threads=" << threads << " item " << i;
    }
    expect_same_derived_state(inline_replica.gateway, pooled.gateway);
    testutil::expect_audit_clean(pooled.gateway.tangle());
  }
}

TEST(AdmitManyDeterminismTest, GossipBurstStressUnderThreadPool) {
  // The TSan workhorse: repeated bursts through a 4-lane pool, sliced by a
  // small admission_max_batch so slice boundaries and orphan adoption run
  // several times, compared against an inline twin fed the same bursts.
  GatewayConfig pool_config = concurrency_config(4);
  pool_config.admission_max_batch = 16;

  Replica inline_replica(1);
  sim::Scheduler sched;
  sim::Network net(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(3));
  crypto::Identity gw_id = crypto::Identity::deterministic(7);
  crypto::Identity mgr_id = crypto::Identity::deterministic(8);
  Gateway pooled(1, gw_id, mgr_id.public_identity().sign_key,
                 tangle::Tangle::make_genesis(), net, pool_config);
  pooled.attach();
  sched.run_until(0.001);

  TxFactory alice(300);
  TxFactory bob(301);
  auto genesis = inline_replica.gateway.tangle().genesis_id();
  tangle::TxId tip1 = genesis;
  tangle::TxId tip2 = genesis;
  for (int burst = 0; burst < 3; ++burst) {
    std::vector<tangle::Transaction> txs;
    for (int i = 0; i < 24; ++i) {
      auto& factory = (i % 2 == 0) ? alice : bob;
      auto tx = factory.make(tip1, tip2, 2);
      tip2 = tip1;
      tip1 = tx.id();
      txs.push_back(std::move(tx));
    }
    const auto inline_statuses =
        inline_replica.gateway.admit_many(txs, Ingress::kGossip);
    const auto pooled_statuses = pooled.admit_many(txs, Ingress::kGossip);
    for (std::size_t i = 0; i < txs.size(); ++i) {
      EXPECT_TRUE(inline_statuses[i].is_ok()) << "burst " << burst;
      EXPECT_TRUE(pooled_statuses[i].is_ok()) << "burst " << burst;
    }
  }
  EXPECT_EQ(pooled.tangle().size(), 1u + 3u * 24u);
  EXPECT_EQ(pooled.tangle().id_digest(),
            inline_replica.gateway.tangle().id_digest());
  testutil::expect_audit_clean(pooled.tangle());
}

}  // namespace
}  // namespace biot::node
