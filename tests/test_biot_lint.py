#!/usr/bin/env python3
"""Unit tests for tools/biot_lint.py.

Runs the linter over the fixture trees in tests/lint_fixtures/: the `clean`
tree must pass (including the suppression paths — a justified allow() on an
enum switch and on a hot-path .at()), and the `violations` tree must trip
every rule with a finding at the seeded location. These negative cases are
what prove the gate gates: a linter that never fires passes CI vacuously.
"""

import pathlib
import subprocess
import sys
import unittest

REPO = pathlib.Path(__file__).resolve().parent.parent
LINT = REPO / "tools" / "biot_lint.py"
FIXTURES = REPO / "tests" / "lint_fixtures"


def run_lint(root: pathlib.Path):
    proc = subprocess.run(
        [sys.executable, str(LINT), "--root", str(root)],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout


class CleanTree(unittest.TestCase):
    def test_passes(self):
        code, out = run_lint(FIXTURES / "clean")
        self.assertEqual(code, 0, out)
        self.assertIn("biot-lint: clean", out)


class ViolationsTree(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.code, cls.out = run_lint(FIXTURES / "violations")

    def assert_finding(self, location: str, rule: str):
        needle = f"{location}: [{rule}]"
        self.assertIn(needle, self.out, f"expected {needle!r} in:\n{self.out}")

    def test_exit_code(self):
        self.assertEqual(self.code, 1, self.out)

    def test_enum_switch_default_arm(self):
        self.assert_finding("src/common/status.cpp:6", "enum-switch")
        self.assertIn("`default:` arm", self.out)

    def test_enum_switch_missing_enumerators(self):
        self.assertIn("does not handle: kBad, kUgly", self.out)

    def test_include_first_include_is_own_header(self):
        self.assert_finding("src/common/status.cpp:1", "include-hygiene")
        self.assertIn("include your own header first", self.out)

    def test_include_parent_escape(self):
        self.assert_finding("src/node/helper.h:1", "include-hygiene")
        self.assertIn("escapes the include root", self.out)

    def test_include_missing_pragma_once(self):
        self.assertIn("src/node/helper.h: [include-hygiene] src/ header is "
                      "missing `#pragma once`", self.out)

    def test_checked_at_unchecked(self):
        self.assert_finding("src/consensus/hot.cpp:5", "checked-at")

    def test_checked_at_allow_requires_rationale(self):
        self.assert_finding("src/consensus/hot.cpp:8", "checked-at")
        self.assertIn("without a rationale", self.out)

    def test_pow_midstate_in_consensus(self):
        self.assert_finding("src/consensus/hot.cpp:11", "pow-midstate")
        self.assertIn("grind through tangle::PowMidstate", self.out)

    def test_brute_force_twin_missing(self):
        self.assert_finding("src/node/helper.h:5", "brute-force-twin")
        self.assertIn("has no incremental twin", self.out)

    def test_brute_force_never_tested(self):
        self.assertIn("never cross-checked under tests/", self.out)

    def test_tangle_add_direct_call(self):
        self.assert_finding("src/node/ingress.cpp:3", "tangle-add")
        self.assertIn("bypasses the admission pipeline", self.out)

    def test_tangle_add_allow_requires_rationale(self):
        self.assert_finding("src/node/ingress.cpp:6", "tangle-add")

    def test_drain_batch_per_item_admit(self):
        self.assert_finding("src/node/drain.cpp:4", "drain-batch")
        self.assertIn("Gateway::admit_many()", self.out)

    def test_drain_batch_allow_requires_rationale(self):
        self.assert_finding("src/node/drain.cpp:6", "drain-batch")

    def test_bench_harness_missing_include(self):
        self.assertIn("bench/bad_timing.cpp: [bench-harness]", self.out)
        self.assertIn('does not include "harness.h"', self.out)

    def test_bench_harness_chrono_include(self):
        self.assert_finding("bench/bad_timing.cpp:2", "bench-harness")

    def test_bench_harness_chrono_usage(self):
        self.assert_finding("bench/bad_timing.cpp:5", "bench-harness")
        self.assertIn("hand-rolled `std::chrono`", self.out)

    def test_raw_sync_mutex(self):
        self.assert_finding("src/common/racy.cpp:4", "raw-sync")
        self.assertIn("capability-annotated wrappers", self.out)

    def test_raw_sync_lock_guard(self):
        self.assert_finding("src/common/racy.cpp:6", "raw-sync")

    def test_raw_sync_allow_requires_rationale(self):
        self.assert_finding("src/common/racy.cpp:9", "raw-sync")

    def test_guarded_field_unannotated_member(self):
        self.assert_finding("src/common/racy.h:10", "guarded-field")
        self.assertIn("no GUARDED_BY", self.out)

    def test_guarded_field_allow_requires_rationale(self):
        self.assert_finding("src/common/racy.h:12", "guarded-field")


class RealTree(unittest.TestCase):
    def test_repository_is_clean(self):
        # The gate over the real tree must hold; if this fails, a rule fired
        # on production code and either the code or an allow() needs fixing.
        code, out = run_lint(REPO)
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
