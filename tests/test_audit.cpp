// Invariant-auditor tests (tangle/audit.h): a clean tangle audits clean,
// and every class of deliberate corruption — incremental weight/depth,
// secondary indexes, order positions, anti-entropy summaries, tip set,
// ledger/credit conservation — is detected and named in the report. The
// negative tests are what prove the audit gate actually gates: a checker
// that cannot see seeded damage would pass every CI run vacuously.
#include <gtest/gtest.h>

#include <algorithm>

#include "tangle/audit.h"
#include "tangle/tangle.h"
#include "test_util.h"

namespace biot::tangle {

// Test-only backdoor (friend of Tangle) used to damage internal state that
// the public API rightly refuses to expose mutably.
struct TangleTestAccess {
  static void corrupt_weight(Tangle& t, const TxId& id, std::size_t delta) {
    t.records_.at(id).weight += delta;
  }
  static void corrupt_depth(Tangle& t, const TxId& id, std::size_t depth) {
    t.records_.at(id).depth = depth;
  }
  static void corrupt_order_pos(Tangle& t, const TxId& id) {
    t.records_.at(id).order_pos += 1;
  }
  static void drop_last_sender_entry(Tangle& t, const AccountKey& sender) {
    t.by_sender_.at(sender).pop_back();
  }
  static void swap_arrival_entries(Tangle& t) {
    ASSERT_GE(t.by_arrival_.size(), 2u);
    // First and last have strictly different arrivals in the fixture DAG,
    // so the swap genuinely breaks the sorted-by-arrival invariant.
    std::swap(t.by_arrival_.front(), t.by_arrival_.back());
  }
  static void corrupt_digest(Tangle& t) { t.id_digest_.value[0] ^= 0xff; }
  static void corrupt_sketch(Tangle& t) {
    TxId bogus{};
    bogus[0] = 0xab;
    t.id_sketch_.toggle(bogus);
  }
  static void insert_fake_tip(Tangle& t, const TxId& id) {
    t.tips_.insert(id);
  }
};

namespace {

using testutil::TxFactory;

bool has_violation(const AuditReport& report, std::string_view check) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const AuditViolation& v) { return v.check == check; });
}

class AuditTest : public ::testing::Test {
 protected:
  AuditTest() : tangle_(Tangle::make_genesis()), alice_(1), bob_(2) {
    // A small DAG with diamonds, two senders and a spread of arrivals:
    // enough structure that every audited index/invariant is non-trivial.
    TxId prev1 = tangle_.genesis_id();
    TxId prev2 = tangle_.genesis_id();
    for (int i = 0; i < 8; ++i) {
      TxFactory& who = (i % 2 != 0) ? bob_ : alice_;
      auto tx = who.make(prev1, prev2, 4, {}, 0.5 * i);
      EXPECT_TRUE(tangle_.add(tx, 0.5 * i).is_ok());
      prev2 = prev1;
      prev1 = tx.id();
    }
  }

  const TxId& mid_id() const { return tangle_.arrival_order()[4]; }

  Tangle tangle_;
  TxFactory alice_;
  TxFactory bob_;
};

TEST_F(AuditTest, CleanTangleAuditsClean) {
  const auto report = audit(tangle_);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks_run, 50u);
  EXPECT_EQ(report.to_string().substr(0, 8), "audit ok");
}

TEST_F(AuditTest, DetectsCorruptedCumulativeWeight) {
  TangleTestAccess::corrupt_weight(tangle_, mid_id(), 7);
  const auto report = audit(tangle_);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_violation(report, "weight.incremental"))
      << report.to_string();
}

TEST_F(AuditTest, DetectsCorruptedDepth) {
  TangleTestAccess::corrupt_depth(tangle_, mid_id(), 99);
  const auto report = audit(tangle_);
  EXPECT_TRUE(has_violation(report, "depth.incremental"))
      << report.to_string();
}

TEST_F(AuditTest, DetectsCorruptedOrderPos) {
  TangleTestAccess::corrupt_order_pos(tangle_, mid_id());
  EXPECT_TRUE(has_violation(audit(tangle_), "order.pos"));
}

TEST_F(AuditTest, DetectsDroppedSenderIndexEntry) {
  TangleTestAccess::drop_last_sender_entry(tangle_, alice_.key());
  EXPECT_TRUE(has_violation(audit(tangle_), "index.sender"));
}

TEST_F(AuditTest, DetectsUnsortedArrivalIndex) {
  TangleTestAccess::swap_arrival_entries(tangle_);
  EXPECT_TRUE(has_violation(audit(tangle_), "index.sorted"));
}

TEST_F(AuditTest, DetectsCorruptedDigest) {
  TangleTestAccess::corrupt_digest(tangle_);
  EXPECT_TRUE(has_violation(audit(tangle_), "summary.digest"));
}

TEST_F(AuditTest, DetectsCorruptedSketch) {
  TangleTestAccess::corrupt_sketch(tangle_);
  EXPECT_TRUE(has_violation(audit(tangle_), "summary.sketch"));
}

TEST_F(AuditTest, DetectsFakeTip) {
  TangleTestAccess::insert_fake_tip(tangle_, tangle_.genesis_id());
  EXPECT_TRUE(has_violation(audit(tangle_), "tips.set"));
}

TEST_F(AuditTest, ReportNamesTheOffendingTransaction) {
  TangleTestAccess::corrupt_weight(tangle_, mid_id(), 3);
  const auto report = audit(tangle_);
  ASSERT_FALSE(report.ok());
  // The detail must identify the transaction so the report is actionable.
  EXPECT_NE(report.to_string().find(mid_id().hex().substr(0, 12)),
            std::string::npos);
}

TEST_F(AuditTest, LedgerConservationViolationDetected) {
  Ledger ledger;
  ledger.credit(alice_.key(), 100);
  AuditInputs inputs;
  inputs.ledger = &ledger;
  inputs.expected_supply = 100;
  EXPECT_TRUE(audit(tangle_, inputs).ok());
  inputs.expected_supply = 50;  // claim half the tokens were never minted
  EXPECT_TRUE(has_violation(audit(tangle_, inputs), "ledger.conservation"));
}

TEST_F(AuditTest, CreditActivityViolationDetected) {
  AuditInputs inputs;
  // Credit claiming more valid transactions than the account ever attached.
  inputs.credit_valid_tx_count = [](const AccountKey&) {
    return std::size_t{1000};
  };
  EXPECT_TRUE(has_violation(audit(tangle_, inputs), "credit.activity"));
}

}  // namespace
}  // namespace biot::tangle
