// AES against FIPS-197 / NIST SP 800-38A vectors, plus mode and padding
// behaviour (CBC round-trips, CTR stream properties, PKCS#7 edge cases).
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/aes.h"
#include "crypto/aes_modes.h"
#include "crypto/csprng.h"

namespace biot::crypto {
namespace {

Bytes encrypt_one_block(ByteView key, ByteView pt) {
  Aes aes(key);
  Bytes out(16);
  aes.encrypt_block(pt.data(), out.data());
  return out;
}

Bytes decrypt_one_block(ByteView key, ByteView ct) {
  Aes aes(key);
  Bytes out(16);
  aes.decrypt_block(ct.data(), out.data());
  return out;
}

// FIPS-197 Appendix C.1 (AES-128).
TEST(Aes, Fips197Aes128) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  const Bytes ct = encrypt_one_block(key, pt);
  EXPECT_EQ(to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(decrypt_one_block(key, ct), pt);
}

// FIPS-197 Appendix C.2 (AES-192).
TEST(Aes, Fips197Aes192) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  const Bytes ct = encrypt_one_block(key, pt);
  EXPECT_EQ(to_hex(ct), "dda97ca4864cdfe06eaf70a0ec0d7191");
  EXPECT_EQ(decrypt_one_block(key, ct), pt);
}

// FIPS-197 Appendix C.3 (AES-256).
TEST(Aes, Fips197Aes256) {
  const Bytes key =
      from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  const Bytes ct = encrypt_one_block(key, pt);
  EXPECT_EQ(to_hex(ct), "8ea2b7ca516745bfeafc49904b496089");
  EXPECT_EQ(decrypt_one_block(key, ct), pt);
}

TEST(Aes, RejectsBadKeySize) {
  const Bytes key(17, 0);
  EXPECT_THROW(Aes{key}, std::invalid_argument);
  EXPECT_THROW(Aes{Bytes{}}, std::invalid_argument);
}

// NIST SP 800-38A F.2.1: CBC-AES128 encryption, first two blocks.
TEST(AesCbc, Sp80038aVector) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes iv = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  Aes aes(key);
  const Bytes ct = aes_cbc_encrypt(aes, iv, pt);
  // Our CBC appends a PKCS#7 padding block; the first two blocks must match.
  ASSERT_GE(ct.size(), 32u);
  EXPECT_EQ(to_hex(ByteView{ct.data(), 16}), "7649abac8119b246cee98e9b12e9197d");
  EXPECT_EQ(to_hex(ByteView{ct.data() + 16, 16}), "5086cb9b507219ee95db113a917678b2");
  const auto back = aes_cbc_decrypt(aes, iv, ct);
  ASSERT_TRUE(back);
  EXPECT_EQ(back.value(), pt);
}

// NIST SP 800-38A F.5.1: CTR-AES128, first two blocks.
TEST(AesCtr, Sp80038aVector) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes nonce = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  Aes aes(key);
  const Bytes ct = aes_ctr_xor(aes, nonce, pt);
  EXPECT_EQ(to_hex(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff");
  EXPECT_EQ(aes_ctr_xor(aes, nonce, ct), pt);  // CTR is an involution
}

TEST(Pkcs7, PadUnpadRoundTrip) {
  for (std::size_t n = 0; n <= 48; ++n) {
    const Bytes data(n, 0x11);
    const Bytes padded = pkcs7_pad(data);
    EXPECT_EQ(padded.size() % kAesBlockSize, 0u);
    EXPECT_GT(padded.size(), data.size());  // padding always added
    const auto back = pkcs7_unpad(padded);
    ASSERT_TRUE(back) << "n=" << n;
    EXPECT_EQ(back.value(), data);
  }
}

TEST(Pkcs7, RejectsEmptyAndUnaligned) {
  EXPECT_FALSE(pkcs7_unpad(Bytes{}));
  EXPECT_FALSE(pkcs7_unpad(Bytes(15, 1)));
}

TEST(Pkcs7, RejectsBadPadValues) {
  Bytes block(16, 0);
  block[15] = 0;  // pad byte 0 invalid
  EXPECT_FALSE(pkcs7_unpad(block));
  block[15] = 17;  // > block size invalid
  EXPECT_FALSE(pkcs7_unpad(block));
  block[15] = 3;
  block[14] = 3;
  block[13] = 4;  // inconsistent run
  EXPECT_FALSE(pkcs7_unpad(block));
}

TEST(AesCbc, RoundTripVariousLengthsAndKeys) {
  Csprng rng(1234);
  for (std::size_t key_len : {16u, 24u, 32u}) {
    const Bytes key = rng.bytes(key_len);
    const Bytes iv = rng.bytes(16);
    Aes aes(key);
    for (std::size_t n : {0u, 1u, 15u, 16u, 17u, 100u, 1000u}) {
      const Bytes pt = rng.bytes(n);
      const Bytes ct = aes_cbc_encrypt(aes, iv, pt);
      const auto back = aes_cbc_decrypt(aes, iv, ct);
      ASSERT_TRUE(back);
      EXPECT_EQ(back.value(), pt);
    }
  }
}

TEST(AesCbc, WrongKeyFailsOrGarbles) {
  Csprng rng(5);
  const Bytes key1 = rng.bytes(16), key2 = rng.bytes(16);
  const Bytes iv = rng.bytes(16);
  const Bytes pt = rng.bytes(64);
  Aes a1(key1), a2(key2);
  const Bytes ct = aes_cbc_encrypt(a1, iv, pt);
  const auto back = aes_cbc_decrypt(a2, iv, ct);
  // Either padding check fails, or (rarely) it "succeeds" with wrong bytes.
  if (back) {
    EXPECT_NE(back.value(), pt);
  }
}

TEST(AesCbc, TamperedCiphertextDetectedOrGarbled) {
  Csprng rng(6);
  const Bytes key = rng.bytes(32);
  const Bytes iv = rng.bytes(16);
  const Bytes pt = rng.bytes(48);
  Aes aes(key);
  Bytes ct = aes_cbc_encrypt(aes, iv, pt);
  ct[20] ^= 0x01;
  const auto back = aes_cbc_decrypt(aes, iv, ct);
  if (back) {
    EXPECT_NE(back.value(), pt);
  }
}

TEST(AesCbc, RejectsTruncatedCiphertext) {
  Csprng rng(7);
  const Bytes key = rng.bytes(16);
  const Bytes iv = rng.bytes(16);
  Aes aes(key);
  const Bytes ct = aes_cbc_encrypt(aes, iv, rng.bytes(40));
  EXPECT_FALSE(aes_cbc_decrypt(aes, iv, ByteView{ct.data(), ct.size() - 1}));
  EXPECT_FALSE(aes_cbc_decrypt(aes, iv, ByteView{}));
}

TEST(AesCbc, IvMustBe16Bytes) {
  Aes aes(Bytes(16, 0));
  EXPECT_THROW(aes_cbc_encrypt(aes, Bytes(8, 0), Bytes{1}), std::invalid_argument);
  EXPECT_THROW(aes_cbc_decrypt(aes, Bytes(8, 0), Bytes(16, 0)), std::invalid_argument);
}

TEST(AesCtr, CounterWrapsAcrossByteBoundary) {
  // Nonce ending in 0xff forces a carry into the next counter byte.
  const Bytes key(16, 0x42);
  Bytes nonce(16, 0x00);
  for (int i = 8; i < 16; ++i) nonce[i] = 0xff;
  Aes aes(key);
  const Bytes pt(80, 0x00);
  const Bytes ks = aes_ctr_xor(aes, nonce, pt);  // keystream since pt is zero
  // Blocks must all differ (counter actually changed despite the wrap).
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      EXPECT_NE(Bytes(ks.begin() + 16 * i, ks.begin() + 16 * (i + 1)),
                Bytes(ks.begin() + 16 * j, ks.begin() + 16 * (j + 1)));
    }
  }
}

// Paper Fig 10 property: encryption cost grows linearly with message length;
// here we assert the functional part — all message sizes round-trip.
TEST(AesCbc, Fig10MessageSizesRoundTrip) {
  Csprng rng(10);
  const Bytes key = rng.bytes(32);
  const Bytes iv = rng.bytes(16);
  Aes aes(key);
  for (std::size_t log2n = 6; log2n <= 16; ++log2n) {
    const Bytes pt = rng.bytes(std::size_t{1} << log2n);
    const auto back = aes_cbc_decrypt(aes, iv, aes_cbc_encrypt(aes, iv, pt));
    ASSERT_TRUE(back);
    EXPECT_EQ(back.value(), pt);
  }
}

}  // namespace
}  // namespace biot::crypto
