// Core-contribution tests: PoW miner, credit model (Eqns 2-5), difficulty
// mapping, lazy-tip detector and difficulty policies.
#include <gtest/gtest.h>

#include <cmath>

#include "consensus/credit.h"
#include "consensus/detectors.h"
#include "consensus/policy.h"
#include "consensus/pow.h"
#include "test_util.h"

namespace biot::consensus {
namespace {

using tangle::Tangle;
using tangle::TxId;
using testutil::TxFactory;

// ---- Miner -------------------------------------------------------------------

TEST(Miner, FindsValidNonce) {
  Miner miner;
  TxId p1{}, p2{};
  p1[0] = 1;
  const auto result = miner.mine(p1, p2, 8);
  ASSERT_TRUE(result);
  EXPECT_GE(tangle::leading_zero_bits(tangle::pow_output(p1, p2, result->nonce)),
            8);
}

TEST(Miner, AttemptsTrackTotals) {
  Miner miner;
  TxId p{};
  const auto r1 = miner.mine(p, p, 4);
  const auto r2 = miner.mine(p, p, 4);
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(miner.total_attempts(), r1->attempts + r2->attempts);
}

TEST(Miner, RespectsMaxAttempts) {
  Miner miner(0, 4);  // at most 4 attempts
  TxId p{};
  // Difficulty 50 is unreachable in 4 attempts (overwhelming probability).
  EXPECT_FALSE(miner.mine(p, p, 50));
}

TEST(Miner, HigherDifficultyNeedsGeometricallyMoreWork) {
  // Statistical sanity: average attempts at D=10 should exceed D=4 clearly.
  TxId p1{}, p2{};
  Miner miner;
  std::uint64_t attempts4 = 0, attempts10 = 0;
  for (int i = 0; i < 30; ++i) {
    p1[1] = static_cast<std::uint8_t>(i);
    attempts4 += miner.mine(p1, p2, 4)->attempts;
    attempts10 += miner.mine(p1, p2, 10)->attempts;
  }
  EXPECT_GT(attempts10, attempts4 * 4);
}

TEST(Miner, DifferentStartNoncesFindValidSolutions) {
  TxId p{};
  Miner a(0), b(1u << 20);
  const auto ra = a.mine(p, p, 6);
  const auto rb = b.mine(p, p, 6);
  ASSERT_TRUE(ra && rb);
  EXPECT_TRUE(tangle::leading_zero_bits(tangle::pow_output(p, p, ra->nonce)) >= 6);
  EXPECT_TRUE(tangle::leading_zero_bits(tangle::pow_output(p, p, rb->nonce)) >= 6);
}

// ---- ParallelMiner ----------------------------------------------------------

TEST(ParallelMiner, FindsValidNonceAcrossThreadCounts) {
  TxId p1{}, p2{};
  p1[0] = 7;
  for (const unsigned threads : {1u, 2u, 4u}) {
    ParallelMiner miner(threads);
    EXPECT_EQ(miner.thread_count(), threads);
    const auto result = miner.mine(p1, p2, 10);
    ASSERT_TRUE(result);
    EXPECT_GE(
        tangle::leading_zero_bits(tangle::pow_output(p1, p2, result->nonce)),
        10);
    EXPECT_GE(result->attempts, 1u);
  }
}

TEST(ParallelMiner, AttemptsAccountingStaysExact) {
  ParallelMiner miner(4);
  TxId p{};
  const auto r1 = miner.mine(p, p, 6);
  const auto r2 = miner.mine(p, p, 6);
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(miner.total_attempts(), r1->attempts + r2->attempts);
}

TEST(ParallelMiner, RespectsMaxAttempts) {
  // Difficulty 255 is unattainable; the bounded search must give up after
  // roughly the combined budget (rounded up to the thread count).
  ParallelMiner miner(4, 0, 64);
  TxId p{};
  const auto result = miner.mine(p, p, 255);
  EXPECT_FALSE(result);
  EXPECT_GE(miner.total_attempts(), 64u);
  EXPECT_LE(miner.total_attempts(), 64u + 4u);
}

TEST(ParallelMiner, ZeroThreadsPicksHardwareConcurrency) {
  ParallelMiner miner(0);
  EXPECT_GE(miner.thread_count(), 1u);
}

TEST(ParallelMiner, MatchesSerialMinerWorkDistribution) {
  // Parallel search at difficulty D should need attempts of the same order
  // as the serial miner (mean 2^D); verify the proxy stays comparable.
  TxId p1{}, p2{};
  p1[0] = 3;
  Miner serial;
  ParallelMiner parallel(4);
  std::uint64_t serial_attempts = 0, parallel_attempts = 0;
  for (int i = 0; i < 8; ++i) {
    p2[1] = static_cast<std::uint8_t>(i);
    serial_attempts += serial.mine(p1, p2, 8)->attempts;
    parallel_attempts += parallel.mine(p1, p2, 8)->attempts;
  }
  // Very loose factor-8 band: both are geometric with mean 2^8 per search.
  EXPECT_GT(parallel_attempts, serial_attempts / 8);
  EXPECT_LT(parallel_attempts, serial_attempts * 8);
}

// ---- Wedge + midstate regressions -------------------------------------------

TEST(Miner, ImpossibleDifficultyReturnsImmediately) {
  // Regression: difficulty > 256 can never be satisfied by a 256-bit digest;
  // with max_attempts == 0 (unbounded) the old loop spun forever. Both
  // miners must bail out before doing any work.
  Miner miner;  // unbounded
  TxId p1{}, p2{};
  EXPECT_FALSE(miner.mine(p1, p2, kMaxPowDifficulty + 1).has_value());
  EXPECT_FALSE(miner.mine(p1, p2, 10000).has_value());
  EXPECT_EQ(miner.total_attempts(), 0u);

  ParallelMiner parallel(4);  // unbounded
  EXPECT_FALSE(parallel.mine(p1, p2, kMaxPowDifficulty + 1).has_value());
  EXPECT_EQ(parallel.total_attempts(), 0u);
}

TEST(Miner, MaxDifficultyItselfStillSearches) {
  // 256 is astronomically hard but not structurally impossible: a bounded
  // miner must search its budget, not refuse up front.
  Miner miner(0, 8);
  TxId p1{}, p2{};
  EXPECT_FALSE(miner.mine(p1, p2, kMaxPowDifficulty).has_value());
  EXPECT_EQ(miner.total_attempts(), 8u);
}

TEST(Pow, MidstateMatchesPowOutput) {
  // PowMidstate::output / output_many are the miner's hot path; both must
  // agree byte-for-byte with the reference pow_output (Eqn 6).
  TxId p1{}, p2{};
  p1[0] = 0xab;
  p2[31] = 0xcd;
  const tangle::PowMidstate mid(p1, p2);
  for (const std::uint64_t nonce :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{42},
        std::uint64_t{0xffffffffull}, ~std::uint64_t{0}}) {
    EXPECT_EQ(mid.output(nonce), tangle::pow_output(p1, p2, nonce))
        << "nonce=" << nonce;
  }
  crypto::Sha256Digest many[13];
  mid.output_many(1000, 13, many);
  for (std::uint64_t i = 0; i < 13; ++i)
    EXPECT_EQ(many[i], tangle::pow_output(p1, p2, 1000 + i)) << i;
}

TEST(Pow, CountersTrackOneBlockPerAttempt) {
  // With the midstate cached, grinding costs ~1 compression per nonce
  // (plus 1 for the prefix per mine() call) instead of 2.
  auto& counters = pow_counters();
  const std::uint64_t attempts0 = counters.attempts;
  const std::uint64_t blocks0 = counters.sha_blocks;
  Miner miner;
  TxId p1{}, p2{};
  p1[0] = 9;
  ASSERT_TRUE(miner.mine(p1, p2, 4).has_value());
  const std::uint64_t attempts = counters.attempts - attempts0;
  const std::uint64_t blocks = counters.sha_blocks - blocks0;
  EXPECT_GE(attempts, 1u);
  // blocks = attempts rounded up to the lane stride, + 1 prefix compression.
  EXPECT_GE(blocks, attempts);
  EXPECT_LE(blocks, attempts + crypto::kSha256MaxLanes + 1);
}

// ---- Credit model --------------------------------------------------------------

WeightOracle unit_weights() {
  return [](const TxId&) { return 1.0; };
}

TxId make_id(std::uint8_t tag) {
  TxId id{};
  id[0] = tag;
  return id;
}

TEST(Credit, EmptyHistoryHasZeroCredit) {
  CreditModel m;
  EXPECT_EQ(m.credit(100.0, unit_weights()), 0.0);
}

TEST(Credit, PositiveCreditMatchesEqn3) {
  CreditParams p;
  p.delta_t = 30.0;
  CreditModel m(p);
  // Three transactions inside the window with weights 2, 3, 5.
  m.record_valid_tx(make_id(1), 80.0);
  m.record_valid_tx(make_id(2), 90.0);
  m.record_valid_tx(make_id(3), 99.0);
  const WeightOracle weights = [](const TxId& id) {
    switch (id[0]) {
      case 1: return 2.0;
      case 2: return 3.0;
      default: return 5.0;
    }
  };
  EXPECT_DOUBLE_EQ(m.positive_credit(100.0, weights), (2.0 + 3.0 + 5.0) / 30.0);
}

TEST(Credit, WindowExcludesOldTransactions) {
  CreditParams p;
  p.delta_t = 30.0;
  CreditModel m(p);
  m.record_valid_tx(make_id(1), 10.0);   // outside window at t=100
  m.record_valid_tx(make_id(2), 95.0);   // inside
  EXPECT_DOUBLE_EQ(m.positive_credit(100.0, unit_weights()), 1.0 / 30.0);
}

TEST(Credit, InactiveNodeDecaysToZeroPositiveCredit) {
  CreditModel m;
  m.record_valid_tx(make_id(1), 10.0);
  EXPECT_GT(m.positive_credit(11.0, unit_weights()), 0.0);
  EXPECT_EQ(m.positive_credit(100.0, unit_weights()), 0.0);
}

TEST(Credit, NegativeCreditMatchesEqn4) {
  CreditParams p;
  p.delta_t = 30.0;
  p.alpha_lazy = 0.5;
  p.alpha_double = 1.0;
  CreditModel m(p);
  m.record_malicious(Behaviour::kLazyTips, 10.0);
  m.record_malicious(Behaviour::kDoubleSpend, 20.0);
  // At t = 40: lazy term 0.5*30/30 = 0.5, double term 1*30/20 = 1.5.
  EXPECT_DOUBLE_EQ(m.negative_credit(40.0), -(0.5 + 1.5));
}

TEST(Credit, FreshOffenceClampsDivisor) {
  CreditParams p;
  p.min_elapsed = 0.5;
  CreditModel m(p);
  m.record_malicious(Behaviour::kLazyTips, 50.0);
  // Immediately after: divisor clamped to 0.5 -> 0.5*30/0.5 = 30.
  EXPECT_DOUBLE_EQ(m.negative_credit(50.0), -30.0);
}

TEST(Credit, PenaltyDecaysButNeverVanishes) {
  CreditModel m;
  m.record_malicious(Behaviour::kDoubleSpend, 0.0);
  const double early = m.negative_credit(1.0);
  const double later = m.negative_credit(1000.0);
  EXPECT_LT(early, later);  // both negative; later is closer to 0
  EXPECT_LT(later, 0.0);    // the impact cannot be eliminated (Section IV-B)
}

TEST(Credit, CombinedCreditUsesLambdas) {
  CreditParams p;
  p.lambda1 = 1.0;
  p.lambda2 = 0.5;
  p.delta_t = 30.0;
  CreditModel m(p);
  m.record_valid_tx(make_id(1), 99.0);
  m.record_malicious(Behaviour::kLazyTips, 70.0);
  const double crp = m.positive_credit(100.0, unit_weights());
  const double crn = m.negative_credit(100.0);
  EXPECT_DOUBLE_EQ(m.credit(100.0, unit_weights()), crp + 0.5 * crn);
}

TEST(Credit, StricterLambda2PunishesHarder) {
  CreditParams strict;
  strict.lambda2 = 2.0;
  CreditParams lax;
  lax.lambda2 = 0.1;
  CreditModel ms(strict), ml(lax);
  for (auto* m : {&ms, &ml}) {
    m->record_valid_tx(make_id(1), 99.0);
    m->record_malicious(Behaviour::kDoubleSpend, 95.0);
  }
  EXPECT_LT(ms.credit(100.0, unit_weights()), ml.credit(100.0, unit_weights()));
}

// ---- Difficulty mapping ---------------------------------------------------------

TEST(Difficulty, NewNodeGetsInitialDifficulty) {
  CreditModel m;
  EXPECT_EQ(m.difficulty(0.0, unit_weights()), m.params().initial_difficulty);
}

TEST(Difficulty, ActiveHonestNodeGetsEasierPow) {
  CreditParams p;  // defaults: dT = 30, ref credit 4, initial 11
  CreditModel m(p);
  // Strong honest activity: 30 txs of weight 6 inside the window.
  for (int i = 0; i < 30; ++i) m.record_valid_tx(make_id(1), 70.0 + i);
  const WeightOracle w6 = [](const TxId&) { return 6.0; };
  const int d = m.difficulty(100.0, w6);
  EXPECT_LT(d, p.initial_difficulty);
  EXPECT_GE(d, p.min_difficulty);
}

TEST(Difficulty, HonestNodeNeverExceedsInitial) {
  CreditParams p;
  CreditModel m(p);
  m.record_valid_tx(make_id(1), 99.0);  // tiny activity -> tiny credit
  EXPECT_LE(m.difficulty(100.0, unit_weights()), p.initial_difficulty);
}

TEST(Difficulty, AttackerJumpsToMaximum) {
  CreditParams p;
  CreditModel m(p);
  for (int i = 0; i < 10; ++i) m.record_valid_tx(make_id(1), 90.0 + i);
  m.record_malicious(Behaviour::kDoubleSpend, 99.9);
  EXPECT_EQ(m.difficulty(100.0, unit_weights()), p.max_difficulty);
}

TEST(Difficulty, AttackerRecoversGradually) {
  CreditParams p;
  CreditModel m(p);
  m.record_malicious(Behaviour::kLazyTips, 100.0);
  const int right_after = m.difficulty(100.5, unit_weights());
  EXPECT_EQ(right_after, p.max_difficulty);

  // Keep submitting honestly; difficulty should fall once credit recovers.
  for (int i = 0; i < 200; ++i) m.record_valid_tx(make_id(2), 100.0 + i);
  const WeightOracle w4 = [](const TxId&) { return 4.0; };
  const int later = m.difficulty(300.0, w4);
  EXPECT_LT(later, p.max_difficulty);
}

TEST(Difficulty, MonotoneInCredit) {
  // Sanity: more weight in window -> no harder difficulty.
  CreditParams p;
  CreditModel m(p);
  for (int i = 0; i < 10; ++i) m.record_valid_tx(make_id(1), 95.0);
  const WeightOracle w2 = [](const TxId&) { return 2.0; };
  const WeightOracle w8 = [](const TxId&) { return 8.0; };
  EXPECT_GE(m.difficulty(100.0, w2), m.difficulty(100.0, w8));
}

TEST(Registry, UnknownAccountGetsDefaults) {
  CreditRegistry reg;
  tangle::AccountKey key{};
  key[0] = 9;
  EXPECT_EQ(reg.credit(key, 0.0, unit_weights()), 0.0);
  EXPECT_EQ(reg.difficulty(key, 0.0, unit_weights()),
            reg.params().initial_difficulty);
}

TEST(Registry, TracksPerAccountIndependently) {
  CreditRegistry reg;
  tangle::AccountKey honest{}, attacker{};
  honest[0] = 1;
  attacker[0] = 2;
  reg.record_valid_tx(honest, make_id(1), 99.0);
  reg.record_malicious(attacker, Behaviour::kDoubleSpend, 99.0);
  EXPECT_GT(reg.credit(honest, 100.0, unit_weights()),
            reg.credit(attacker, 100.0, unit_weights()));
  EXPECT_EQ(reg.difficulty(attacker, 100.0, unit_weights()),
            reg.params().max_difficulty);
}

// ---- Lazy detector ----------------------------------------------------------------

class LazyDetectorTest : public ::testing::Test {
 protected:
  LazyDetectorTest() : tangle_(Tangle::make_genesis()), node_(1) {}

  TxId attach(const TxId& p1, const TxId& p2, TimePoint t) {
    const auto tx = node_.make(p1, p2, 2, {}, t);
    EXPECT_TRUE(tangle_.add(tx, t).is_ok());
    return tx.id();
  }

  Tangle tangle_;
  TxFactory node_;
  LazyTipPolicy policy_;  // max age 20 s, require approved
};

TEST_F(LazyDetectorTest, FreshTipsAreNotLazy) {
  const auto g = tangle_.genesis_id();
  const auto a = attach(g, g, 1.0);
  const auto tx = node_.make(a, a, 2, {}, 2.0);
  EXPECT_FALSE(is_lazy_approval(tangle_, tx, 2.0, policy_));
}

TEST_F(LazyDetectorTest, OldApprovedParentsAreLazy) {
  const auto g = tangle_.genesis_id();
  const auto old1 = attach(g, g, 0.0);
  const auto old2 = attach(g, g, 0.0);
  attach(old1, old2, 1.0);  // both old parents now approved
  const auto tx = node_.make(old1, old2, 2, {}, 60.0);
  EXPECT_TRUE(is_lazy_approval(tangle_, tx, 60.0, policy_));
}

TEST_F(LazyDetectorTest, OldButUnapprovedParentIsNotLazy) {
  // A genuinely old tip that nobody approved: slow network, not an attack.
  const auto g = tangle_.genesis_id();
  const auto lonely = attach(g, g, 0.0);
  const auto tx = node_.make(lonely, lonely, 2, {}, 60.0);
  EXPECT_FALSE(is_lazy_approval(tangle_, tx, 60.0, policy_));
}

TEST_F(LazyDetectorTest, OneFreshParentIsNotLazy) {
  const auto g = tangle_.genesis_id();
  const auto old1 = attach(g, g, 0.0);
  const auto old2 = attach(g, g, 0.0);
  attach(old1, old2, 1.0);
  const auto fresh = attach(old1, old2, 59.5);
  const auto tx = node_.make(old1, fresh, 2, {}, 60.0);
  EXPECT_FALSE(is_lazy_approval(tangle_, tx, 60.0, policy_));
}

TEST_F(LazyDetectorTest, ApprovalThatRacedInRecentlyIsNotLazy) {
  // Post-outage shape: the only tips in the tangle are old, and a
  // concurrent submitter approved them moments before us. Losing that race
  // is a timing accident, not a lazy choice — but once the approval has
  // stood for the grace window, the same parents ARE a lazy choice.
  const auto g = tangle_.genesis_id();
  const auto old1 = attach(g, g, 0.0);
  const auto old2 = attach(g, g, 0.0);
  attach(old1, old2, 59.0);  // raced in 1 s before our submission
  const auto tx = node_.make(old1, old2, 2, {}, 60.0);
  EXPECT_FALSE(is_lazy_approval(tangle_, tx, 60.0, policy_));
  EXPECT_TRUE(is_lazy_approval(tangle_, tx, 66.0, policy_));
}

TEST_F(LazyDetectorTest, PolicyAgeIsRespected) {
  const auto g = tangle_.genesis_id();
  const auto old1 = attach(g, g, 0.0);
  const auto old2 = attach(g, g, 0.0);
  attach(old1, old2, 1.0);
  LazyTipPolicy lenient;
  lenient.max_parent_age = 1000.0;
  const auto tx = node_.make(old1, old2, 2, {}, 60.0);
  EXPECT_FALSE(is_lazy_approval(tangle_, tx, 60.0, lenient));
}

// ---- Policies ---------------------------------------------------------------------

TEST(Policy, FixedReturnsConstant) {
  FixedDifficultyPolicy policy(11);
  tangle::AccountKey any{};
  EXPECT_EQ(policy.required_difficulty(any, 0.0, unit_weights()), 11);
  EXPECT_EQ(policy.required_difficulty(any, 1e6, unit_weights()), 11);
}

TEST(Policy, CreditPolicyFollowsRegistry) {
  CreditRegistry reg;
  CreditDifficultyPolicy policy(reg);
  tangle::AccountKey attacker{};
  attacker[0] = 5;
  EXPECT_EQ(policy.required_difficulty(attacker, 100.0, unit_weights()),
            reg.params().initial_difficulty);
  reg.record_malicious(attacker, Behaviour::kDoubleSpend, 99.0);
  EXPECT_EQ(policy.required_difficulty(attacker, 100.0, unit_weights()),
            reg.params().max_difficulty);
}

// Parameter sweep: the paper tunes alpha per behaviour (Eqn 5); verify the
// punishment coefficient scales the penalty.
class AlphaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweepTest, PenaltyScalesWithAlpha) {
  CreditParams p;
  p.alpha_double = GetParam();
  CreditModel m(p);
  m.record_malicious(Behaviour::kDoubleSpend, 0.0);
  EXPECT_DOUBLE_EQ(m.negative_credit(10.0), -GetParam() * p.delta_t / 10.0);
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweepTest,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace biot::consensus
