// Chain-structured baseline: block hashing/PoW, longest-chain resolution,
// k-deep confirmation, orphan accounting.
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "test_util.h"

namespace biot::chain {
namespace {

using testutil::TxFactory;

class ChainTest : public ::testing::Test {
 protected:
  ChainTest() : chain_(Blockchain::make_genesis()), alice_(1) {
    miner_key_ = crypto::Identity::deterministic(50).public_identity().sign_key;
  }

  Block make_block(const BlockId& prev, std::uint64_t height,
                   std::vector<tangle::Transaction> txs = {},
                   int difficulty = 4) {
    Block b;
    b.prev = prev;
    b.height = height;
    b.timestamp = static_cast<double>(height);
    b.miner = miner_key_;
    b.difficulty = static_cast<std::uint8_t>(difficulty);
    b.transactions = std::move(txs);
    mine_block(b, next_nonce_);
    next_nonce_ += 1u << 20;
    return b;
  }

  Blockchain chain_;
  TxFactory alice_;
  crypto::Ed25519PublicKey miner_key_;
  std::uint64_t next_nonce_ = 0;
};

TEST_F(ChainTest, GenesisIsHead) {
  EXPECT_EQ(chain_.height(), 0u);
  EXPECT_EQ(chain_.size(), 1u);
  EXPECT_EQ(chain_.main_chain().size(), 1u);
}

TEST_F(ChainTest, MinedBlockSatisfiesPow) {
  const auto b = make_block(chain_.head(), 1, {}, 8);
  EXPECT_TRUE(b.pow_valid());
  EXPECT_GE(tangle::leading_zero_bits(b.id()), 8);
}

TEST_F(ChainTest, AppendsExtendHead) {
  auto b1 = make_block(chain_.head(), 1);
  ASSERT_TRUE(chain_.add(b1).is_ok());
  EXPECT_EQ(chain_.head(), b1.id());
  auto b2 = make_block(b1.id(), 2);
  ASSERT_TRUE(chain_.add(b2).is_ok());
  EXPECT_EQ(chain_.height(), 2u);
}

TEST_F(ChainTest, RejectsDuplicateBlock) {
  auto b1 = make_block(chain_.head(), 1);
  ASSERT_TRUE(chain_.add(b1).is_ok());
  EXPECT_EQ(chain_.add(b1).code(), ErrorCode::kRejected);
}

TEST_F(ChainTest, RejectsUnknownPrev) {
  BlockId bogus{};
  bogus[0] = 1;
  auto b = make_block(bogus, 1);
  EXPECT_EQ(chain_.add(b).code(), ErrorCode::kNotFound);
}

TEST_F(ChainTest, RejectsWrongHeight) {
  auto b = make_block(chain_.head(), 5);
  EXPECT_EQ(chain_.add(b).code(), ErrorCode::kInvalidArgument);
}

TEST_F(ChainTest, RejectsInsufficientPow) {
  Block b;
  b.prev = chain_.head();
  b.height = 1;
  b.miner = miner_key_;
  b.difficulty = 30;
  b.nonce = 0;  // unmined
  if (b.pow_valid()) GTEST_SKIP() << "freak nonce";
  EXPECT_EQ(chain_.add(b).code(), ErrorCode::kPowInvalid);
}

TEST_F(ChainTest, RejectsBelowMinimumDifficulty) {
  chain_.set_min_difficulty(8);
  auto b = make_block(chain_.head(), 1, {}, 4);
  EXPECT_EQ(chain_.add(b).code(), ErrorCode::kPowInvalid);
}

TEST_F(ChainTest, RejectsBadTransactionSignature) {
  auto tx = alice_.make(tangle::TxId{}, tangle::TxId{});
  tx.payload = to_bytes("tampered");
  auto b = make_block(chain_.head(), 1, {tx});
  EXPECT_EQ(chain_.add(b).code(), ErrorCode::kVerifyFailed);
}

TEST_F(ChainTest, BlockIdCommitsToTransactions) {
  auto tx = alice_.make(tangle::TxId{}, tangle::TxId{});
  auto b = make_block(chain_.head(), 1, {tx});
  const auto id_before = b.id();
  b.transactions[0].payload = to_bytes("swap");
  EXPECT_NE(b.id(), id_before);  // tx_root changed
}

TEST_F(ChainTest, ForkResolvesToLongestChain) {
  auto a1 = make_block(chain_.head(), 1);
  ASSERT_TRUE(chain_.add(a1).is_ok());
  // Competing fork from genesis.
  auto b1 = make_block(chain_.main_chain().front(), 1);
  ASSERT_TRUE(chain_.add(b1).is_ok());
  EXPECT_EQ(chain_.head(), a1.id());  // first-seen wins at equal height

  auto b2 = make_block(b1.id(), 2);
  ASSERT_TRUE(chain_.add(b2).is_ok());
  EXPECT_EQ(chain_.head(), b2.id());  // longer fork takes over
  EXPECT_EQ(chain_.orphaned_blocks(), 1u);  // a1 orphaned
}

TEST_F(ChainTest, ConfirmationRequiresDepth) {
  auto tx = alice_.make(tangle::TxId{}, tangle::TxId{});
  auto b1 = make_block(chain_.head(), 1, {tx});
  ASSERT_TRUE(chain_.add(b1).is_ok());
  EXPECT_FALSE(chain_.is_confirmed(tx.id(), 2));

  auto prev = b1.id();
  for (std::uint64_t h = 2; h <= 3; ++h) {
    auto b = make_block(prev, h);
    ASSERT_TRUE(chain_.add(b).is_ok());
    prev = b.id();
  }
  EXPECT_TRUE(chain_.is_confirmed(tx.id(), 2));
  EXPECT_FALSE(chain_.is_confirmed(tx.id(), 6));
}

TEST_F(ChainTest, OrphanedTransactionNotConfirmed) {
  auto tx = alice_.make(tangle::TxId{}, tangle::TxId{});
  auto a1 = make_block(chain_.head(), 1, {tx});
  ASSERT_TRUE(chain_.add(a1).is_ok());

  // A longer competing fork that does NOT contain tx.
  auto b1 = make_block(chain_.main_chain().front(), 1);
  auto b2 = make_block(b1.id(), 2);
  auto b3 = make_block(b2.id(), 3);
  ASSERT_TRUE(chain_.add(b1).is_ok());
  ASSERT_TRUE(chain_.add(b2).is_ok());
  ASSERT_TRUE(chain_.add(b3).is_ok());

  EXPECT_FALSE(chain_.containing_height(tx.id()).has_value());
  EXPECT_FALSE(chain_.is_confirmed(tx.id(), 1));
}

TEST_F(ChainTest, MainChainOrderedFromGenesis) {
  auto b1 = make_block(chain_.head(), 1);
  ASSERT_TRUE(chain_.add(b1).is_ok());
  auto b2 = make_block(b1.id(), 2);
  ASSERT_TRUE(chain_.add(b2).is_ok());
  const auto mc = chain_.main_chain();
  ASSERT_EQ(mc.size(), 3u);
  EXPECT_EQ(chain_.find(mc[0])->height, 0u);
  EXPECT_EQ(chain_.find(mc[1])->height, 1u);
  EXPECT_EQ(chain_.find(mc[2])->height, 2u);
}

}  // namespace
}  // namespace biot::chain
