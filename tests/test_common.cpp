// Unit tests for the common substrate: bytes/hex, codec, status, rng, clock.
#include <gtest/gtest.h>

#include <cmath>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/codec.h"
#include "common/rng.h"
#include "common/status.h"

namespace biot {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsBadDigit) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, StringRoundTrip) {
  const std::string s = "sensor-42";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
}

TEST(Bytes, XorInto) {
  Bytes a = {0xff, 0x00, 0x55};
  const Bytes b = {0x0f, 0xf0, 0x55};
  xor_into(a, b);
  EXPECT_EQ(a, (Bytes{0xf0, 0xf0, 0x00}));
}

TEST(Bytes, XorSizeMismatchThrows) {
  Bytes a = {1};
  const Bytes b = {1, 2};
  EXPECT_THROW(xor_into(a, b), std::invalid_argument);
}

TEST(Bytes, Concat) {
  const Bytes a = {1, 2};
  const Bytes b = {3};
  EXPECT_EQ(concat({a, b, a}), (Bytes{1, 2, 3, 1, 2}));
}

TEST(FixedBytes, RoundTripAndCompare) {
  auto a = FixedBytes<4>::parse_hex("00112233");
  auto b = FixedBytes<4>::parse_hex("00112233");
  auto c = FixedBytes<4>::parse_hex("00112234");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a.hex(), "00112233");
}

TEST(FixedBytes, FromViewSizeMismatchThrows) {
  const Bytes data = {1, 2, 3};
  EXPECT_THROW(FixedBytes<4>::from_view(data), std::invalid_argument);
}

TEST(Codec, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(3.25);
  w.blob(Bytes{9, 8, 7});
  w.str("hello");

  Reader r(w.bytes());
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_EQ(r.f64().value(), 3.25);
  EXPECT_EQ(r.blob().value(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.str().value(), "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, TruncatedInputFails) {
  Writer w;
  w.u32(7);
  Reader r(w.bytes());
  EXPECT_TRUE(r.u16());
  EXPECT_TRUE(r.u16());
  EXPECT_FALSE(r.u8());
  EXPECT_EQ(r.u8().code(), ErrorCode::kInvalidArgument);
}

TEST(Codec, BlobLengthBeyondDataFails) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8(1);
  Reader r(w.bytes());
  EXPECT_FALSE(r.blob());
}

TEST(Codec, RawReadsExactCount) {
  Writer w;
  w.raw(Bytes{1, 2, 3, 4});
  Reader r(w.bytes());
  EXPECT_EQ(r.raw(2).value(), (Bytes{1, 2}));
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(Status, OkAndError) {
  EXPECT_TRUE(Status::ok());
  const auto s = Status::error(ErrorCode::kConflict, "double spend");
  EXPECT_FALSE(s);
  EXPECT_EQ(s.code(), ErrorCode::kConflict);
  EXPECT_EQ(s.to_string(), "conflict: double spend");
}

TEST(Result, ValueAccess) {
  Result<int> r = 42;
  EXPECT_TRUE(r);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.code(), ErrorCode::kOk);
}

TEST(Result, ErrorAccess) {
  Result<int> r = Status::error(ErrorCode::kNotFound, "missing");
  EXPECT_FALSE(r);
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
  EXPECT_THROW(r.value(), std::runtime_error);
}

TEST(Result, OkStatusIntoResultThrows) {
  EXPECT_THROW((Result<int>{Status::ok()}), std::logic_error);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, GaussianMoments) {
  Rng rng(4);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, GeometricMeanMatchesInverseP) {
  Rng rng(5);
  const double p = 1.0 / 64.0;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  EXPECT_NEAR(sum / n, 64.0, 4.0);
}

TEST(Rng, GeometricEdgeCases) {
  Rng rng(6);
  EXPECT_EQ(rng.geometric(1.0), 1u);
  EXPECT_GE(rng.geometric(0.5), 1u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(7);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.advance_to(1.5);
  EXPECT_EQ(clock.now(), 1.5);
  clock.advance_by(0.5);
  EXPECT_EQ(clock.now(), 2.0);
  EXPECT_THROW(clock.advance_to(1.0), std::logic_error);
}

TEST(WallClock, MovesForward) {
  WallClock clock;
  const auto a = clock.now();
  const auto b = clock.now();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace biot
