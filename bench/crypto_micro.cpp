// Crypto microbenchmarks.
//
// Backs the paper's Section IV-C design argument: "symmetric key encryption
// is much faster (about 100~1000 times faster) than public key encryption,
// which is beneficial for power-constrained devices" — compare the aes.*
// results against ecies.* at the same message size.
#include <cstdio>

#include "auth/envelope.h"
#include "crypto/aes.h"
#include "crypto/aes_modes.h"
#include "crypto/csprng.h"
#include "crypto/ed25519.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "crypto/x25519.h"
#include "harness.h"
#include "tangle/transaction.h"

namespace {
using namespace biot;
using namespace biot::crypto;

void report(const char* name, double s_per_op, std::size_t bytes) {
  if (bytes > 0)
    std::printf("%-28s %12.3f us/op %10.1f MB/s\n", name, s_per_op * 1e6,
                static_cast<double>(bytes) / s_per_op / 1e6);
  else
    std::printf("%-28s %12.3f us/op\n", name, s_per_op * 1e6);
}

void hash_benches(bench::Harness& h) {
  for (const std::size_t n : {std::size_t{64}, std::size_t{1024},
                              std::size_t{65536}}) {
    Csprng rng(1);
    const Bytes data = rng.bytes(n);
    const auto name = "sha256." + std::to_string(n);
    report(name.c_str(),
           h.bench(name, [&] { bench::do_not_optimize(Sha256::hash(data)); }),
           n);
  }
  for (const std::size_t n : {std::size_t{64}, std::size_t{65536}}) {
    Csprng rng(2);
    const Bytes data = rng.bytes(n);
    const auto name = "sha512." + std::to_string(n);
    report(name.c_str(),
           h.bench(name, [&] { bench::do_not_optimize(Sha512::hash(data)); }),
           n);
  }
  for (const std::size_t n : {std::size_t{256}, std::size_t{65536}}) {
    Csprng rng(3);
    const Bytes key = rng.bytes(32);
    const Bytes data = rng.bytes(n);
    const auto name = "hmac_sha256." + std::to_string(n);
    report(name.c_str(), h.bench(name, [&] {
             bench::do_not_optimize(hmac_sha256(key, data));
           }),
           n);
  }
}

void aes_benches(bench::Harness& h) {
  Csprng rng(4);
  const Bytes key = rng.bytes(32);
  const Bytes iv = rng.bytes(16);
  const Aes aes(key);
  for (const std::size_t n : {std::size_t{64}, std::size_t{4096},
                              std::size_t{262144}}) {
    const Bytes data = rng.bytes(n);
    const auto name = "aes_cbc_encrypt." + std::to_string(n);
    report(name.c_str(), h.bench(name, [&] {
             bench::do_not_optimize(aes_cbc_encrypt(aes, iv, data));
           }),
           n);
  }
  for (const std::size_t n : {std::size_t{64}, std::size_t{262144}}) {
    const Bytes nonce = rng.bytes(16);
    const Bytes data = rng.bytes(n);
    const auto name = "aes_ctr." + std::to_string(n);
    report(name.c_str(), h.bench(name, [&] {
             bench::do_not_optimize(aes_ctr_xor(aes, nonce, data));
           }),
           n);
  }
  for (const std::size_t n : {std::size_t{64}, std::size_t{4096}}) {
    Csprng env_rng(6);
    const auto env_key = env_rng.fixed<32>();
    const Bytes data = env_rng.bytes(n);
    const auto name = "envelope_seal." + std::to_string(n);
    report(name.c_str(), h.bench(name, [&] {
             bench::do_not_optimize(auth::envelope_seal(env_key, data, env_rng));
           }),
           n);
  }
}

void public_key_benches(bench::Harness& h) {
  {
    Csprng rng(7);
    const auto kp = Ed25519KeyPair::from_seed(rng.fixed<32>());
    const Bytes msg = rng.bytes(256);
    report("ed25519_sign", h.bench("ed25519_sign", [&] {
             bench::do_not_optimize(ed25519_sign(kp, msg));
           }),
           0);
    const auto sig = ed25519_sign(kp, msg);
    report("ed25519_verify", h.bench("ed25519_verify", [&] {
             bench::do_not_optimize(ed25519_verify(kp.public_key, msg, sig));
           }),
           0);
  }
  {
    Csprng rng(9);
    const auto a = X25519KeyPair::generate(rng);
    const auto b = X25519KeyPair::generate(rng);
    report("x25519_shared_secret", h.bench("x25519_shared_secret", [&] {
             bench::do_not_optimize(x25519(a.secret, b.public_key));
           }),
           0);
  }
  // Public-key encryption of a sensor payload — compare against
  // aes_cbc_encrypt.64 and .4096 for the paper's 100-1000x claim.
  for (const std::size_t n : {std::size_t{64}, std::size_t{4096}}) {
    Csprng rng(10);
    const auto recipient = X25519KeyPair::generate(rng);
    const Bytes data = rng.bytes(n);
    const auto name = "ecies_seal." + std::to_string(n);
    report(name.c_str(), h.bench(name, [&] {
             bench::do_not_optimize(ecies_seal(recipient.public_key, data, rng));
           }),
           n);
  }
  {
    Csprng rng(11);
    const auto recipient = X25519KeyPair::generate(rng);
    const Bytes env = ecies_seal(recipient.public_key, rng.bytes(64), rng);
    report("ecies_open", h.bench("ecies_open", [&] {
             bench::do_not_optimize(ecies_open(recipient, env));
           }),
           0);
  }
  {
    Csprng rng(12);
    const tangle::TxId p1 = rng.fixed<32>();
    const tangle::TxId p2 = rng.fixed<32>();
    std::uint64_t nonce = 0;
    const double eqn6 =
        h.bench("tx_hash_eqn6", [&] {
          bench::do_not_optimize(tangle::pow_output(p1, p2, nonce++));
        });
    report("tx_hash_eqn6", eqn6, 0);

    // The miner's actual hot path: midstate-cached prefix + 8-wide
    // multi-buffer nonce blocks. Reported per hash, so the speedup ratio
    // against tx_hash_eqn6 is the midstate+lanes win directly.
    const tangle::PowMidstate mid(p1, p2);
    crypto::Sha256Digest out[8];
    std::uint64_t base_nonce = 0;
    const double grind8 =
        h.bench("tx_hash_midstate_x8", [&] {
          mid.output_many(base_nonce, 8, out);
          base_nonce += 8;
          bench::do_not_optimize(out[0]);
        }) /
        8.0;
    report("tx_hash_midstate_x8", grind8, 0);
    h.record("tx_hash_midstate_speedup", grind8 > 0 ? eqn6 / grind8 : 0.0,
             "ratio");
    std::printf("%-28s %12.2fx\n", "midstate speedup",
                grind8 > 0 ? eqn6 / grind8 : 0.0);
  }
  {
    // Batched gossip/sync-burst verification vs. one-at-a-time.
    Csprng rng(13);
    constexpr std::size_t kBatch = 8;
    std::vector<Ed25519PublicKey> pks;
    std::vector<Bytes> msgs;
    std::vector<Ed25519Signature> sigs;
    for (std::size_t i = 0; i < kBatch; ++i) {
      const auto kp = Ed25519KeyPair::from_seed(rng.fixed<32>());
      pks.push_back(kp.public_key);
      msgs.push_back(rng.bytes(256));
      sigs.push_back(ed25519_sign(kp, msgs.back()));
    }
    std::vector<VerifyItem> items;
    for (std::size_t i = 0; i < kBatch; ++i)
      items.push_back({&pks[i], ByteView{msgs[i]}, &sigs[i]});

    const double single =
        h.bench("ed25519_verify_single8", [&] {
          for (std::size_t i = 0; i < kBatch; ++i)
            bench::do_not_optimize(ed25519_verify(pks[i], msgs[i], sigs[i]));
        });
    report("ed25519_verify_single8", single, 0);
    const double batch = h.bench("ed25519_verify_batch8", [&] {
      bench::do_not_optimize(ed25519_verify_batch(items));
    });
    report("ed25519_verify_batch8", batch, 0);
    h.record("ed25519_batch_speedup", batch > 0 ? single / batch : 0.0,
             "ratio");
    std::printf("%-28s %12.2fx\n", "batch verify speedup",
                batch > 0 ? single / batch : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("crypto_micro", argc, argv);
  std::printf("# Crypto microbenchmarks (from-scratch primitives)\n");
  hash_benches(h);
  aes_benches(h);
  public_key_benches(h);
  return h.finish();
}
