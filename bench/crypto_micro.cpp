// Crypto microbenchmarks (google-benchmark).
//
// Backs the paper's Section IV-C design argument: "symmetric key encryption
// is much faster (about 100~1000 times faster) than public key encryption,
// which is beneficial for power-constrained devices" — compare the
// AES-* benches against EciesSeal/EciesOpen at the same message size.
#include <benchmark/benchmark.h>

#include "auth/envelope.h"
#include "crypto/aes.h"
#include "crypto/aes_modes.h"
#include "crypto/csprng.h"
#include "crypto/ed25519.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "crypto/x25519.h"
#include "tangle/transaction.h"

namespace {
using namespace biot;
using namespace biot::crypto;

void BM_Sha256(benchmark::State& state) {
  Csprng rng(1);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha512(benchmark::State& state) {
  Csprng rng(2);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  Csprng rng(3);
  const Bytes key = rng.bytes(32);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(256)->Arg(65536);

void BM_AesCbcEncrypt(benchmark::State& state) {
  Csprng rng(4);
  const Bytes key = rng.bytes(32);
  const Bytes iv = rng.bytes(16);
  const Aes aes(key);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes_cbc_encrypt(aes, iv, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCbcEncrypt)->Arg(64)->Arg(4096)->Arg(262144);

void BM_AesCtr(benchmark::State& state) {
  Csprng rng(5);
  const Bytes key = rng.bytes(32);
  const Bytes nonce = rng.bytes(16);
  const Aes aes(key);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes_ctr_xor(aes, nonce, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(64)->Arg(262144);

void BM_EnvelopeSeal(benchmark::State& state) {
  Csprng rng(6);
  const auto key = rng.fixed<32>();
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(auth::envelope_seal(key, data, rng));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EnvelopeSeal)->Arg(64)->Arg(4096);

void BM_Ed25519Sign(benchmark::State& state) {
  Csprng rng(7);
  const auto kp = Ed25519KeyPair::from_seed(rng.fixed<32>());
  const Bytes msg = rng.bytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519_sign(kp, msg));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  Csprng rng(8);
  const auto kp = Ed25519KeyPair::from_seed(rng.fixed<32>());
  const Bytes msg = rng.bytes(256);
  const auto sig = ed25519_sign(kp, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519_verify(kp.public_key, msg, sig));
  }
}
BENCHMARK(BM_Ed25519Verify);

void BM_X25519SharedSecret(benchmark::State& state) {
  Csprng rng(9);
  const auto a = X25519KeyPair::generate(rng);
  const auto b = X25519KeyPair::generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x25519(a.secret, b.public_key));
  }
}
BENCHMARK(BM_X25519SharedSecret);

// Public-key encryption of a sensor payload — compare against
// BM_AesCbcEncrypt/64 and /4096 for the paper's 100-1000x claim.
void BM_EciesSeal(benchmark::State& state) {
  Csprng rng(10);
  const auto recipient = X25519KeyPair::generate(rng);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecies_seal(recipient.public_key, data, rng));
  }
}
BENCHMARK(BM_EciesSeal)->Arg(64)->Arg(4096);

void BM_EciesOpen(benchmark::State& state) {
  Csprng rng(11);
  const auto recipient = X25519KeyPair::generate(rng);
  const Bytes env = ecies_seal(recipient.public_key, rng.bytes(64), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecies_open(recipient, env));
  }
}
BENCHMARK(BM_EciesOpen);

void BM_TransactionHashEqn6(benchmark::State& state) {
  Csprng rng(12);
  const tangle::TxId p1 = rng.fixed<32>();
  const tangle::TxId p2 = rng.fixed<32>();
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tangle::pow_output(p1, p2, nonce++));
  }
}
BENCHMARK(BM_TransactionHashEqn6);

}  // namespace

BENCHMARK_MAIN();
