// Secondary indexes + set-reconciliation sketches vs the seed's full scans.
//
// Two read paths used to sweep the whole DAG per request: consumer data
// queries (kDataQuery filtered arrival_order) and anti-entropy sync diffing
// (every summary carried the full id inventory, every receiver re-scanned
// it). The tangle now maintains by-sender/by-type/by-arrival indexes and a
// constant-size invertible sketch incrementally on add. This bench measures
// both paths at growing tangle sizes against the retained brute-force
// reference implementations — the acceptance bar is >= 10x at 10k txs.
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "consensus/pow.h"
#include "crypto/identity.h"
#include "harness.h"
#include "tangle/tangle.h"
#include "tangle/tip_selection.h"

namespace {
using namespace biot;

constexpr int kSenders = 16;
constexpr int kSyncLag = 50;  // txs the lagging replica is missing

/// One workload: `ahead` holds every transaction, `behind` all but the last
/// kSyncLag — the steady-state anti-entropy shape.
struct Bed {
  tangle::Tangle ahead{tangle::Tangle::make_genesis()};
  tangle::Tangle behind{tangle::Tangle::make_genesis()};
  std::vector<crypto::Identity> identities;
  std::vector<tangle::AccountKey> senders;
  double build_seconds = 0.0;

  void grow(int txs, Rng& rng) {
    consensus::Miner miner;
    std::vector<std::uint64_t> seq(kSenders, 0);
    for (int d = 0; d < kSenders; ++d) {
      identities.push_back(crypto::Identity::deterministic(100 + d));
      senders.push_back(identities.back().public_identity().sign_key);
    }
    tangle::UniformRandomTipSelector uniform;
    const obs::WallTimer timer;
    for (int i = 0; i < txs; ++i) {
      const int d = static_cast<int>(rng.index(kSenders));
      const auto [p1, p2] = uniform.select(ahead, rng);
      tangle::Transaction tx;
      tx.type = tangle::TxType::kData;
      tx.sender = senders[d];
      tx.parent1 = p1;
      tx.parent2 = p2;
      tx.sequence = seq[d]++;
      tx.timestamp = 0.1 * i;
      tx.difficulty = 1;
      tx.nonce = miner.mine(p1, p2, 1)->nonce;
      tx.signature = identities[d].sign(tx.signing_bytes());
      if (!ahead.add(tx, 0.1 * i).is_ok()) std::abort();
      if (i < txs - kSyncLag && !behind.add(tx, 0.1 * i).is_ok()) std::abort();
    }
    build_seconds = timer.elapsed();
  }
};

void data_query_path(const Bed& bed, double* brute_us, double* indexed_us) {
  // The kDataQuery workload: per-sender reads over a recent window, capped —
  // what a consumer polling "everything since my last read" issues.
  const int queries = 200;
  const double horizon = 0.1 * static_cast<double>(bed.ahead.size());
  Rng rng(7);

  for (int pass = 0; pass < 2; ++pass) {
    Rng qrng(99);  // identical query mix for both implementations
    const obs::WallTimer timer;
    std::size_t results = 0;
    for (int q = 0; q < queries; ++q) {
      const auto& sender = bed.senders[qrng.index(kSenders)];
      const double since = qrng.uniform(0.0, horizon);
      const auto out = pass == 0
                           ? bed.ahead.data_since_brute_force(&sender, since, 64)
                           : bed.ahead.data_since(&sender, since, 64);
      results += out.size();
    }
    bench::do_not_optimize(results);
    const double us = timer.elapsed() * 1e6 / queries;
    *(pass == 0 ? brute_us : indexed_us) = us;
  }
  (void)rng;
}

void sync_diff_path(const Bed& bed, double* brute_us, double* indexed_us) {
  // One anti-entropy round at the receiving gateway, both protocols:
  //   v1 (brute): peer ships its full inventory; receiver hashes it into a
  //       set and scans its own arrival order for ids the peer lacks.
  //   v2 (indexed): peer ships a constant-size sketch; receiver subtracts
  //       its own incrementally-maintained sketch and peels the difference.
  const int rounds = 50;

  {
    const obs::WallTimer timer;
    std::size_t shipped = 0;
    for (int r = 0; r < rounds; ++r) {
      std::unordered_set<tangle::TxId, FixedBytesHash<32>> peer_has(
          bed.behind.arrival_order().begin(), bed.behind.arrival_order().end());
      for (const auto& id : bed.ahead.arrival_order())
        if (!peer_has.contains(id)) ++shipped;
    }
    bench::do_not_optimize(shipped);
    *brute_us = timer.elapsed() * 1e6 / rounds;
  }
  {
    const obs::WallTimer timer;
    std::size_t shipped = 0;
    for (int r = 0; r < rounds; ++r) {
      // Wire-faithful: decode the peer's encoded sketch, then subtract.
      const auto peer = tangle::SetSketch::decode(bed.behind.id_sketch().encode());
      if (!peer.is_ok()) std::abort();
      const auto diff = bed.ahead.id_sketch().subtract_and_decode(peer.value());
      if (!diff.decoded) std::abort();
      shipped += diff.only_local.size();
    }
    bench::do_not_optimize(shipped);
    *indexed_us = timer.elapsed() * 1e6 / rounds;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("index", argc, argv);
  std::printf("# Secondary-index + sketch reconciliation vs full scans\n");
  std::printf("# %d senders; sync lag %d txs; data query cap 64 results\n\n",
              kSenders, kSyncLag);
  std::printf("%8s | %12s %12s %8s | %12s %12s %8s\n", "txs", "query-scan",
              "query-index", "speedup", "diff-invent", "diff-sketch",
              "speedup");
  std::printf("%8s | %12s %12s %8s | %12s %12s %8s\n", "", "us/query",
              "us/query", "", "us/round", "us/round", "");

  for (const int txs : h.quick() ? std::vector<int>{1000, 3000}
                                  : std::vector<int>{1000, 3000, 10000, 30000}) {
    Bed bed;
    Rng rng(42);
    bed.grow(txs, rng);

    double q_brute = 0, q_index = 0, s_brute = 0, s_index = 0;
    data_query_path(bed, &q_brute, &q_index);
    sync_diff_path(bed, &s_brute, &s_index);

    std::printf("%8d | %12.2f %12.2f %7.1fx | %12.2f %12.2f %7.1fx\n", txs,
                q_brute, q_index, q_brute / q_index, s_brute, s_index,
                s_brute / s_index);
    const auto tag = ".n" + std::to_string(txs);
    h.record("query_us.brute" + tag, q_brute, "us/op");
    h.record("query_us.indexed" + tag, q_index, "us/op");
    h.record("sync_us.inventory" + tag, s_brute, "us/op");
    h.record("sync_us.sketch" + tag, s_index, "us/op");
  }
  return h.finish();
}
