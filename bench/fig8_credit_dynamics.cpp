// Fig 8 reproduction: credit value changes based on a node's behaviour.
//
// Paper setup (Section VI-A): lambda1 = 1, lambda2 = 0.5, dT = 30 s,
// alpha_lazy = 0.5, alpha_double = 1, initial difficulty 11, horizon 100 s
// (~3 dT). A malicious attack at t = 24 s makes CrN spike sharply negative
// and the node needs tens of seconds to recover its normal transaction rate
// (37 s in the paper's run); two attacks (Fig 8b) dig a deeper hole.
//
// We run the full simulated stack (gateway + light node at Raspberry-Pi
// speed) and sample Cr / CrP / CrN each second, plus the per-second sum of
// the node's transaction weights (the bar series in the figure).
#include <cstdio>
#include <map>

#include "harness.h"
#include "node/gateway.h"
#include "node/light_node.h"
#include "node/manager.h"

namespace {
using namespace biot;

void run_trace(bench::Harness& h, const char* title, int num_attacks) {
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.002), Rng(7));

  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto gateway_identity = crypto::Identity::deterministic(2);

  node::GatewayConfig gw_config;  // paper defaults: dT=30, lambdas, alphas, D 1..14
  node::Gateway gateway(1, gateway_identity,
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), network, gw_config);
  node::Manager manager(2, manager_identity, gateway, network);
  gateway.attach();
  manager.attach();

  node::LightNodeConfig dev_config;
  dev_config.profile = sim::DeviceProfile::pi3b_fig9();  // ~2926 H/s
  dev_config.collect_interval = 0.5;
  dev_config.start_time = 0.5;
  node::LightNode device(10, crypto::Identity::deterministic(100), 1, network,
                         dev_config);
  if (!manager.authorize({device.public_identity()}).is_ok()) std::abort();
  device.start();

  if (num_attacks >= 1) device.schedule_attack(24.0, node::AttackKind::kDoubleSpend);
  if (num_attacks >= 2) device.schedule_attack(40.0, node::AttackKind::kDoubleSpend);

  const auto device_key = device.public_identity().sign_key;

  struct Sample {
    double crp, crn, cr;
    int difficulty;
  };
  std::map<int, Sample> samples;
  for (int t = 1; t <= 100; ++t) {
    sched.at(static_cast<double>(t), [&, t] {
      const auto* model = gateway.credit_registry().find(device_key);
      Sample s{0.0, 0.0, 0.0, gw_config.credit.initial_difficulty};
      if (model != nullptr) {
        const auto oracle = gateway.weight_oracle();
        s.crp = model->positive_credit(sched.now(), oracle);
        s.crn = model->negative_credit(sched.now());
        s.cr = model->credit(sched.now(), oracle);
        s.difficulty = model->difficulty(sched.now(), oracle);
      }
      samples[t] = s;
    });
  }

  sched.run_until(100.0);

  // Per-second sum of the node's transaction weights (final tangle state),
  // mirroring the figure's bar series. Weights use the same definition the
  // credit mechanism uses: 1 + direct validations received.
  std::map<int, double> weight_bars;
  for (const auto& id : gateway.tangle().arrival_order()) {
    const auto* rec = gateway.tangle().find(id);
    if (rec->tx.sender != device_key) continue;
    weight_bars[static_cast<int>(rec->arrival)] +=
        1.0 + static_cast<double>(gateway.tangle().approver_count(id));
  }

  std::printf("\n# %s\n", title);
  std::printf("%-6s %10s %10s %10s %10s %6s\n", "t_s", "w_sum", "CrP", "CrN",
              "Cr", "D");
  for (int t = 1; t <= 100; ++t) {
    const auto& s = samples.at(t);
    const double w = weight_bars.contains(t) ? weight_bars.at(t) : 0.0;
    std::printf("%-6d %10.2f %10.3f %10.3f %10.3f %6d\n", t, w, s.crp, s.crn,
                s.cr, s.difficulty);
  }

  // Recovery summary: the punished span is from the first sample at max
  // difficulty until difficulty first returns to (at or below) the initial
  // value; the paper's Fig 8a shows a 37 s gap before the normal rate
  // resumes.
  if (num_attacks > 0) {
    int punished_at = -1, recovered_at = -1;
    for (int t = 1; t <= 100; ++t) {
      const int d = samples.at(t).difficulty;
      if (punished_at < 0) {
        if (d >= gw_config.credit.max_difficulty) punished_at = t;
      } else if (d <= gw_config.credit.initial_difficulty) {
        recovered_at = t;
        break;
      }
    }
    if (punished_at > 0 && recovered_at > 0) {
      std::printf("# recovery: D hit max at t=%d s, back to <= initial %d at "
                  "t=%d s (%d s punished span; paper Fig 8a: 37 s outage)\n",
                  punished_at, gw_config.credit.initial_difficulty,
                  recovered_at, recovered_at - punished_at);
      h.record("punished_span_s." + std::to_string(num_attacks) + "attack",
               static_cast<double>(recovered_at - punished_at), "s");
    } else if (punished_at > 0)
      std::printf("# recovery: D hit max at t=%d s, not back to initial "
                  "within the 100 s horizon (still throttled)\n",
                  punished_at);
  }
  std::printf("# device: accepted=%llu rejected=%llu attacks=%llu\n",
              static_cast<unsigned long long>(device.stats().accepted),
              static_cast<unsigned long long>(device.stats().rejected),
              static_cast<unsigned long long>(device.stats().attacks_launched));
  h.record("accepted." + std::to_string(num_attacks) + "attack",
           static_cast<double>(device.stats().accepted), "txs");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("fig8_credit_dynamics", argc, argv);
  std::printf("# Fig 8 — credit value changes based on node behaviour\n");
  std::printf("# params: lambda1=1 lambda2=0.5 dT=30s alpha_l=0.5 alpha_d=1, "
              "D in [1,14], initial 11, Pi 3B profile\n");
  run_trace(h, "Fig 8(a): one malicious attack at t=24s", 1);
  if (!h.quick()) run_trace(h, "Fig 8(b): two malicious attacks (t=24s, t=40s)", 2);
  return h.finish();
}
