// Chaos soak: randomized (but seeded) fault plans — crash/restart cycles,
// a partition window, sustained loss + duplication + reordering + payload
// corruption — against a live smart factory, reporting adversarial-fault
// stats and how long the fleet takes to re-converge after the final heal.
// The ConvergenceChecker verdict is the headline: replicas that survived a
// soak must be audit-clean and digest-identical, or the run is a failure.
#include <cstdio>

#include "factory/scenario.h"
#include "harness.h"
#include "node/convergence.h"
#include "sim/chaos.h"

namespace {
using namespace biot;

struct Preset {
  const char* name;
  sim::FaultPlan::SoakOptions soak;
};

struct Row {
  double tps = 0.0;
  sim::NetworkStats net;
  sim::ChaosStats chaos;
  std::uint64_t sync_fallbacks = 0;
  double convergence_s = -1.0;  // post-heal seconds until digest equality
  bool converged = false;       // full ConvergenceChecker verdict
};

bool digests_equal(factory::SmartFactory& factory) {
  const auto& ref = factory.gateway(0).tangle();
  for (std::size_t g = 1; g < factory.gateway_count(); ++g) {
    const auto& t = factory.gateway(g).tangle();
    if (t.size() != ref.size() || !(t.id_digest() == ref.id_digest()))
      return false;
  }
  return true;
}

Row run(const Preset& preset, std::uint64_t seed) {
  factory::ScenarioConfig config;
  config.num_devices = 6;
  config.num_gateways = 3;
  config.distribute_keys = false;
  config.seed = seed;
  config.device.collect_interval = 0.5;
  config.device.profile = sim::DeviceProfile::pi3b_fig9();
  config.gateway.sync_interval = 1.0;

  factory::SmartFactory factory(config);
  factory.bootstrap();

  std::vector<sim::NodeId> gateways;
  for (std::size_t g = 0; g < factory.gateway_count(); ++g)
    gateways.push_back(factory.gateway(g).node_id());

  Rng rng(seed * 0xc4a05ull + 7);
  const auto plan =
      sim::FaultPlan::random_soak(gateways, rng, preset.soak);

  std::unordered_map<sim::NodeId, std::size_t> index_of;
  for (std::size_t g = 0; g < factory.gateway_count(); ++g)
    index_of[factory.gateway(g).node_id()] = g;
  sim::ChaosEngine engine(
      factory.network(),
      [&](sim::NodeId id) { factory.crash_gateway(index_of.at(id)); },
      [&](sim::NodeId id) { factory.restart_gateway(index_of.at(id)); });
  engine.schedule(plan);

  const double horizon = preset.soak.horizon;
  engine.schedule_finale(horizon);
  factory.run_until(horizon);
  factory.stop_devices();

  Row row;
  row.tps = factory.throughput(horizon * 0.1, horizon);

  // Post-heal convergence time: step the clock until every replica carries
  // the same id set (digest + size), in 0.25 s increments.
  const double step = 0.25, cap = 60.0;
  for (double t = 0.0; t <= cap; t += step) {
    factory.run_until(horizon + t);
    if (digests_equal(factory)) {
      row.convergence_s = t;
      break;
    }
  }

  node::ConvergenceChecker checker;
  for (std::size_t g = 0; g < factory.gateway_count(); ++g)
    checker.add_replica(&factory.gateway(g));
  const auto report = checker.check();
  row.converged = report.ok();
  if (!row.converged)
    std::printf("-- %s seed=%llu:\n%s\n", preset.name,
                static_cast<unsigned long long>(seed),
                report.to_string().c_str());

  row.net = factory.network().stats();
  row.chaos = engine.stats();
  for (std::size_t g = 0; g < factory.gateway_count(); ++g)
    row.sync_fallbacks += factory.gateway(g).stats().sync_fallbacks;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("chaos_soak", argc, argv);
  Preset mild{"mild", {}};
  mild.soak.partition_at = 20.0;

  Preset harsh{"harsh", {}};
  harsh.soak.loss = 0.15;
  harsh.soak.duplication = 0.10;
  harsh.soak.reorder = 0.40;
  harsh.soak.corruption = 0.05;
  harsh.soak.crash_cycles = 3;
  harsh.soak.max_downtime = 8.0;
  // Partition persists into the finale, so the post-heal convergence time
  // actually measures anti-entropy repairing a freshly healed split.
  harsh.soak.partition_at = 45.0;
  harsh.soak.partition_for = 30.0;

  std::printf("# Randomized chaos soak (60 s horizon, 3 gateways, "
              "6 devices, sync every 1 s; convergence measured after the "
              "final heal)\n");
  std::printf("%-7s %-5s | %7s %9s %6s %8s %8s %7s %9s %10s %s\n", "preset",
              "seed", "tps", "delivered", "dup", "reorder", "corrupt",
              "crashes", "fallbacks", "conv_time", "verdict");

  bool all_ok = true;
  double worst_convergence = 0.0;
  for (const auto& preset : {mild, harsh}) {
    for (const std::uint64_t seed :
         h.quick() ? std::vector<std::uint64_t>{1ull}
                   : std::vector<std::uint64_t>{1ull, 2ull, 3ull}) {
      const auto row = run(preset, seed);
      all_ok = all_ok && row.converged;
      if (row.convergence_s > worst_convergence)
        worst_convergence = row.convergence_s;
      char conv[32];
      if (row.convergence_s >= 0.0)
        std::snprintf(conv, sizeof conv, "%.2fs", row.convergence_s);
      else
        std::snprintf(conv, sizeof conv, ">60s");
      std::printf("%-7s %-5llu | %7.2f %9llu %6llu %8llu %8llu %7llu %9llu "
                  "%10s %s\n",
                  preset.name, static_cast<unsigned long long>(seed), row.tps,
                  static_cast<unsigned long long>(row.net.delivered),
                  static_cast<unsigned long long>(row.net.duplicated),
                  static_cast<unsigned long long>(row.net.reordered),
                  static_cast<unsigned long long>(row.net.corrupted),
                  static_cast<unsigned long long>(row.chaos.crashes),
                  static_cast<unsigned long long>(row.sync_fallbacks), conv,
                  row.converged ? "CONVERGED" : "FAILED");
    }
  }

  std::printf("\n# expected: every row CONVERGED — corruption is rejected at "
              "decode/signature/PoW, duplicates are idempotent, and "
              "anti-entropy heals crash gaps and partitions within a few "
              "sync rounds of the final heal.\n");
  h.record("all_converged", all_ok ? 1.0 : 0.0, "bool");
  h.record("worst_convergence_s", worst_convergence, "s");
  const int emit = h.finish();
  return all_ok ? emit : 1;
}
