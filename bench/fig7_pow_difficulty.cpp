// Fig 7 reproduction: running time of the PoW algorithm as difficulty grows.
//
// Paper (Raspberry Pi 3B): D=1 -> 0.162 s, D=12 -> 10.98 s, D=14 -> 245.3 s;
// "running time increases exponentially when the difficulty is larger
// than 11".
//
// We report three series per difficulty:
//   host      — really grinding SHA-256 nonces on this machine (averaged)
//   pi-model  — expected time under the Pi 3B profile calibrated on the
//               paper's own D=14 point (sim/device_profile.h)
//   paper     — the paper's measured value where given
// The absolute host numbers are orders of magnitude faster than the Pi; the
// reproduction claim is the exponential *shape* (ratio ~2 per bit).
#include <cstdio>

#include "common/rng.h"
#include "consensus/pow.h"
#include "crypto/sha256.h"
#include "harness.h"
#include "sim/device_profile.h"

namespace {

using namespace biot;

double host_mine_seconds(int difficulty, int repetitions) {
  consensus::Miner miner(0x5eedull * difficulty);
  tangle::TxId p1{}, p2{};
  const obs::WallTimer timer;
  for (int r = 0; r < repetitions; ++r) {
    p1[0] = static_cast<std::uint8_t>(r);
    p1[1] = static_cast<std::uint8_t>(difficulty);
    bench::do_not_optimize(miner.mine(p1, p2, difficulty));
  }
  return timer.elapsed() / repetitions;
}

double paper_value(int difficulty) {
  switch (difficulty) {
    case 1: return 0.162;
    case 12: return 10.98;
    case 14: return 245.3;
    default: return -1.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("fig7_pow_difficulty", argc, argv);
  std::printf("# Fig 7 — running time of PoW algorithm vs difficulty\n");
  std::printf("# host: measured on this machine; pi-model: calibrated Pi 3B "
              "profile; paper: Fig 7 data points\n");
  std::printf("%-6s %14s %14s %14s\n", "D", "host_s", "pi_model_s", "paper_s");

  const auto pi = sim::DeviceProfile::pi3b_fig7();
  const int scale_down = h.scale(1, 10);
  const auto& pow_counters = consensus::pow_counters();
  const std::uint64_t attempts0 = pow_counters.attempts;
  const std::uint64_t blocks0 = pow_counters.sha_blocks;
  for (int d = 1; d <= 14; ++d) {
    // More repetitions at low difficulty for stable averages.
    const int reps =
        std::max(1, (d <= 8 ? 2000 : (d <= 11 ? 200 : 30)) / scale_down);
    const double host = host_mine_seconds(d, reps);
    const double model = pi.expected_pow_time(d);
    const double paper = paper_value(d);
    if (paper > 0)
      std::printf("%-6d %14.6f %14.3f %14.3f\n", d, host, model, paper);
    else
      std::printf("%-6d %14.6f %14.3f %14s\n", d, host, model, "-");
    if (d == 1 || d == 11 || d == 14)
      h.record("host_mine_s.D" + std::to_string(d), host, "s");
  }

  // Midstate accounting: with the parents' block cached, grinding costs
  // ~1 SHA-256 compression per nonce examined (2.0 would mean the prefix
  // is being re-hashed every attempt — the pre-midstate behaviour).
  const std::uint64_t attempts = pow_counters.attempts - attempts0;
  const std::uint64_t blocks = pow_counters.sha_blocks - blocks0;
  const double blocks_per_attempt =
      attempts > 0 ? static_cast<double>(blocks) / attempts : 0.0;
  std::printf("\n# sha blocks per attempt: %.4f (midstate caches the parent "
              "block; 2.0 = no caching)\n", blocks_per_attempt);
  h.record("pow_blocks_per_attempt", blocks_per_attempt, "ratio");

  // Shape check: doubling per extra bit once past the fixed overhead.
  std::printf("\n# shape: pi-model ratio t(D)/t(D-1) for D in 12..14: ");
  for (int d = 12; d <= 14; ++d) {
    std::printf("%.2f ", pi.expected_pow_time(d) / pi.expected_pow_time(d - 1));
  }
  std::printf("(exponential regime, paper: 'increases exponentially when D > 11')\n");
  h.record("pi_model_ratio.D14_over_D13",
           pi.expected_pow_time(14) / pi.expected_pow_time(13), "ratio");
  return h.finish();
}
