// Fig 10 reproduction: impact of the symmetric encryption algorithm (AES)
// on transaction efficiency — running time vs message length, 64 B to 1 MB.
//
// Paper (Raspberry Pi 3B, AES): 64 B -> 0.205 ms, 256 KiB -> 0.373 s,
// 1 MB -> 1.491 s; linear growth on the log-log plot.
//
// Series: host (really encrypting with our from-scratch AES-256-CBC),
// pi-model (linear cost model fit to the paper's points), paper anchors.
#include <chrono>
#include <cstdio>

#include "crypto/aes.h"
#include "crypto/aes_modes.h"
#include "crypto/csprng.h"
#include "sim/device_profile.h"

namespace {
using namespace biot;

double host_encrypt_seconds(const crypto::Aes& aes, const Bytes& iv,
                            const Bytes& message, int repetitions) {
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repetitions; ++r) {
    const auto ct = crypto::aes_cbc_encrypt(aes, iv, message);
    if (ct.empty()) std::abort();  // keep the optimizer honest
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count() / repetitions;
}

double paper_value(std::size_t log2n) {
  switch (log2n) {
    case 6: return 0.000205;
    case 16: return 0.09322;
    case 18: return 0.373;
    case 20: return 1.491;
    default: return -1.0;
  }
}
}  // namespace

int main() {
  std::printf("# Fig 10 — AES encryption time vs message length\n");
  std::printf("%-14s %14s %14s %14s\n", "bytes(log2)", "host_s", "pi_model_s",
              "paper_s");

  crypto::Csprng rng(1);
  const Bytes key = rng.bytes(32);
  const Bytes iv = rng.bytes(16);
  const crypto::Aes aes(key);
  const auto pi = sim::DeviceProfile::pi3b_fig7();

  for (std::size_t log2n = 6; log2n <= 20; ++log2n) {
    const std::size_t n = std::size_t{1} << log2n;
    const Bytes message = rng.bytes(n);
    const int reps = n <= (1u << 12) ? 400 : (n <= (1u << 16) ? 40 : 4);
    const double host = host_encrypt_seconds(aes, iv, message, reps);
    const double model = pi.aes_time(n);
    const double paper = paper_value(log2n);
    if (paper > 0)
      std::printf("2^%-12zu %14.6f %14.6f %14.6f\n", log2n, host, model, paper);
    else
      std::printf("2^%-12zu %14.6f %14.6f %14s\n", log2n, host, model, "-");
  }

  std::printf("\n# linearity: host time per byte at 1 KiB vs 1 MiB should "
              "be within ~2x (paper: linear in message length)\n");
  return 0;
}
