// Fig 10 reproduction: impact of the symmetric encryption algorithm (AES)
// on transaction efficiency — running time vs message length, 64 B to 1 MB.
//
// Paper (Raspberry Pi 3B, AES): 64 B -> 0.205 ms, 256 KiB -> 0.373 s,
// 1 MB -> 1.491 s; linear growth on the log-log plot.
//
// Series: host (really encrypting with our from-scratch AES-256-CBC),
// pi-model (linear cost model fit to the paper's points), paper anchors.
#include <cstdio>

#include "crypto/aes.h"
#include "crypto/aes_modes.h"
#include "crypto/csprng.h"
#include "harness.h"
#include "sim/device_profile.h"

namespace {
using namespace biot;

double host_encrypt_seconds(const crypto::Aes& aes, const Bytes& iv,
                            const Bytes& message, int repetitions) {
  const obs::WallTimer timer;
  for (int r = 0; r < repetitions; ++r)
    bench::do_not_optimize(crypto::aes_cbc_encrypt(aes, iv, message));
  return timer.elapsed() / repetitions;
}

double paper_value(std::size_t log2n) {
  switch (log2n) {
    case 6: return 0.000205;
    case 16: return 0.09322;
    case 18: return 0.373;
    case 20: return 1.491;
    default: return -1.0;
  }
}
}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("fig10_aes_scaling", argc, argv);
  std::printf("# Fig 10 — AES encryption time vs message length\n");
  std::printf("%-14s %14s %14s %14s\n", "bytes(log2)", "host_s", "pi_model_s",
              "paper_s");

  crypto::Csprng rng(1);
  const Bytes key = rng.bytes(32);
  const Bytes iv = rng.bytes(16);
  const crypto::Aes aes(key);
  const auto pi = sim::DeviceProfile::pi3b_fig7();

  const std::size_t max_log2n = h.scale<std::size_t>(20, 16);
  const int scale_down = h.scale(1, 10);
  for (std::size_t log2n = 6; log2n <= max_log2n; ++log2n) {
    const std::size_t n = std::size_t{1} << log2n;
    const Bytes message = rng.bytes(n);
    const int reps = std::max(
        1, (n <= (1u << 12) ? 400 : (n <= (1u << 16) ? 40 : 4)) / scale_down);
    const double host = host_encrypt_seconds(aes, iv, message, reps);
    const double model = pi.aes_time(n);
    const double paper = paper_value(log2n);
    if (paper > 0)
      std::printf("2^%-12zu %14.6f %14.6f %14.6f\n", log2n, host, model, paper);
    else
      std::printf("2^%-12zu %14.6f %14.6f %14s\n", log2n, host, model, "-");
    if (log2n == 6 || log2n == 16 || log2n == 20)
      h.record("host_encrypt_s.2e" + std::to_string(log2n), host, "s");
  }

  std::printf("\n# linearity: host time per byte at 1 KiB vs 1 MiB should "
              "be within ~2x (paper: linear in message length)\n");
  return h.finish();
}
