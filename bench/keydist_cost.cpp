// Fig 4 key-distribution cost. The paper argues the handshake's "impact on
// transaction [efficiency] can be ignored" because it runs once (or rarely).
// This bench measures the real cryptographic cost of each protocol message
// and the whole three-message handshake on the host, plus the projected
// Raspberry-Pi-scale cost from the measured public-key-operation counts.
#include <benchmark/benchmark.h>

#include "auth/keydist.h"
#include "common/clock.h"

namespace {
using namespace biot;
using namespace biot::auth;

struct Parties {
  WallClock clock;
  crypto::Identity manager_identity = crypto::Identity::deterministic(1);
  crypto::Identity device_identity = crypto::Identity::deterministic(2);
  crypto::Csprng manager_rng{11};
  crypto::Csprng device_rng{22};
  ManagerKeyDist manager{manager_identity, clock, manager_rng};
  DeviceKeyDist device{device_identity,
                       manager_identity.public_identity().sign_key, clock,
                       device_rng};
};

void BM_KeyDistM1_ManagerSide(benchmark::State& state) {
  Parties p;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p.manager.start_session(p.device_identity.public_identity()));
  }
}
BENCHMARK(BM_KeyDistM1_ManagerSide);

void BM_KeyDistM2_DeviceSide(benchmark::State& state) {
  Parties p;
  const Bytes m1 = p.manager.start_session(p.device_identity.public_identity());
  for (auto _ : state) {
    // Re-handle the same M1; replay protection is timestamp-based with a
    // wall clock, and each benchmark iteration is "later", so reuse a fresh
    // device each round instead.
    state.PauseTiming();
    crypto::Csprng rng(33);
    DeviceKeyDist device(p.device_identity,
                         p.manager_identity.public_identity().sign_key,
                         p.clock, rng);
    const Bytes m1_fresh =
        p.manager.start_session(p.device_identity.public_identity());
    state.ResumeTiming();
    benchmark::DoNotOptimize(device.handle_m1(m1_fresh));
  }
}
BENCHMARK(BM_KeyDistM2_DeviceSide);

void BM_KeyDistFullHandshake(benchmark::State& state) {
  for (auto _ : state) {
    Parties p;
    const Bytes m1 =
        p.manager.start_session(p.device_identity.public_identity());
    auto m2 = p.device.handle_m1(m1);
    auto m3 = p.manager.handle_m2(p.device_identity.public_identity(),
                                  m2.value());
    const auto status = p.device.handle_m3(m3.value());
    if (!status.is_ok()) state.SkipWithError(status.to_string().c_str());
    benchmark::DoNotOptimize(p.device.established());
  }
}
BENCHMARK(BM_KeyDistFullHandshake);

// Once the key is established, per-reading protection is symmetric-only —
// the cost the device actually pays per transaction afterwards.
void BM_PerReadingProtectionAfterHandshake(benchmark::State& state) {
  Parties p;
  const Bytes m1 = p.manager.start_session(p.device_identity.public_identity());
  auto m2 = p.device.handle_m1(m1);
  auto m3 = p.manager.handle_m2(p.device_identity.public_identity(), m2.value());
  if (!p.device.handle_m3(m3.value()).is_ok()) std::abort();

  crypto::Csprng rng(44);
  const Bytes reading = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(envelope_seal(p.device.key(), reading, rng));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PerReadingProtectionAfterHandshake)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
