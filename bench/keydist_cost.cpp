// Fig 4 key-distribution cost. The paper argues the handshake's "impact on
// transaction [efficiency] can be ignored" because it runs once (or rarely).
// This bench measures the real cryptographic cost of each protocol message
// and the whole three-message handshake on the host, plus the symmetric-only
// per-reading cost the device pays afterwards.
#include <cstdio>

#include "auth/keydist.h"
#include "common/clock.h"
#include "harness.h"

namespace {
using namespace biot;
using namespace biot::auth;

struct Parties {
  WallClock clock;
  crypto::Identity manager_identity = crypto::Identity::deterministic(1);
  crypto::Identity device_identity = crypto::Identity::deterministic(2);
  crypto::Csprng manager_rng{11};
  crypto::Csprng device_rng{22};
  ManagerKeyDist manager{manager_identity, clock, manager_rng};
  DeviceKeyDist device{device_identity,
                       manager_identity.public_identity().sign_key, clock,
                       device_rng};
};

void report(const char* name, double s_per_op) {
  std::printf("%-34s %12.3f us/op\n", name, s_per_op * 1e6);
}

void m1_manager_side(bench::Harness& h) {
  Parties p;
  report("m1.manager_start_session", h.bench("m1.manager_start_session", [&] {
           bench::do_not_optimize(
               p.manager.start_session(p.device_identity.public_identity()));
         }));
}

void m2_device_side(bench::Harness& h) {
  // Replay protection is timestamp-based, so each handled M1 must hit a
  // fresh device. Setup is excluded from the timed span: per sample we
  // build the device and M1 untimed, then time only handle_m1.
  Parties p;
  const int samples = h.scale(400, 50);
  std::vector<double> per_op;
  per_op.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    crypto::Csprng rng(33);
    DeviceKeyDist device(p.device_identity,
                         p.manager_identity.public_identity().sign_key,
                         p.clock, rng);
    const Bytes m1 =
        p.manager.start_session(p.device_identity.public_identity());
    obs::WallTimer timer;
    bench::do_not_optimize(device.handle_m1(m1));
    per_op.push_back(timer.elapsed());
  }
  const double avg = obs::mean(per_op);
  h.record_samples("m2.device_handle_m1", std::move(per_op), "s/op");
  report("m2.device_handle_m1", avg);
}

void full_handshake(bench::Harness& h) {
  report("handshake.full", h.bench("handshake.full", [&] {
           Parties p;
           const Bytes m1 =
               p.manager.start_session(p.device_identity.public_identity());
           auto m2 = p.device.handle_m1(m1);
           auto m3 = p.manager.handle_m2(p.device_identity.public_identity(),
                                         m2.value());
           if (!p.device.handle_m3(m3.value()).is_ok()) std::abort();
           bench::do_not_optimize(p.device.established());
         }));
}

// Once the key is established, per-reading protection is symmetric-only —
// the cost the device actually pays per transaction afterwards.
void per_reading_after_handshake(bench::Harness& h) {
  Parties p;
  const Bytes m1 = p.manager.start_session(p.device_identity.public_identity());
  auto m2 = p.device.handle_m1(m1);
  auto m3 = p.manager.handle_m2(p.device_identity.public_identity(), m2.value());
  if (!p.device.handle_m3(m3.value()).is_ok()) std::abort();

  crypto::Csprng rng(44);
  for (const std::size_t n : {std::size_t{64}, std::size_t{4096}}) {
    const Bytes reading = rng.bytes(n);
    const auto name = "per_reading_seal." + std::to_string(n);
    report(name.c_str(), h.bench(name, [&] {
             bench::do_not_optimize(envelope_seal(p.device.key(), reading, rng));
           }));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("keydist_cost", argc, argv);
  std::printf("# Key-distribution handshake cost (Fig 4 protocol)\n");
  m1_manager_side(h);
  m2_device_side(h);
  full_handshake(h);
  per_reading_after_handshake(h);
  return h.finish();
}
