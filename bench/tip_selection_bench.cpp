// Tip-selection ablation: cost and lazy-tip resistance of the strategies.
//
// Background (Section III, "lazy tips"): an attacker inflates the tip pool
// with transactions approving a fixed old pair, hoping honest nodes then
// waste validations on them. The IOTA-style weighted walk starves such
// side-branches; uniform selection falls for them in proportion to their
// share of the tip pool. This bench quantifies both, plus the raw cost per
// selection as the tangle grows.
#include <cstdio>

#include "consensus/pow.h"
#include "crypto/identity.h"
#include "harness.h"
#include "tangle/tip_selection.h"

namespace {
using namespace biot;

struct TestBed {
  tangle::Tangle tangle{tangle::Tangle::make_genesis()};
  crypto::Identity identity = crypto::Identity::deterministic(1);
  consensus::Miner miner;
  std::uint64_t seq = 0;

  tangle::TxId attach(const tangle::TxId& p1, const tangle::TxId& p2,
                      TimePoint t) {
    tangle::Transaction tx;
    tx.type = tangle::TxType::kData;
    tx.sender = identity.public_identity().sign_key;
    tx.parent1 = p1;
    tx.parent2 = p2;
    tx.sequence = seq++;
    tx.timestamp = t;
    tx.difficulty = 1;
    tx.nonce = miner.mine(p1, p2, 1)->nonce;
    tx.signature = identity.sign(tx.signing_bytes());
    if (!tangle.add(tx, t).is_ok()) std::abort();
    return tx.id();
  }
};

// Builds a tangle with `honest` transactions grown by uniform selection and
// `lazy` attacker transactions all approving one fixed ancient pair.
// `stale_pair` receives the pair the attacker keeps re-approving.
TestBed build_infested(int honest, int lazy, Rng& rng,
                       tangle::TipPair* stale_pair = nullptr) {
  TestBed bed;
  const auto g = bed.tangle.genesis_id();
  const auto old1 = bed.attach(g, g, 0.0);
  const auto old2 = bed.attach(g, g, 0.0);
  if (stale_pair != nullptr) *stale_pair = {old1, old2};

  tangle::UniformRandomTipSelector uniform;
  for (int i = 0; i < honest; ++i) {
    const auto [t1, t2] = uniform.select(bed.tangle, rng);
    bed.attach(t1, t2, 1.0 + i * 0.1);
  }
  const double lazy_time = 1.0 + honest * 0.1;
  for (int i = 0; i < lazy; ++i)
    bed.attach(old1, old2, lazy_time + i * 0.01);  // inflate the tip pool
  return bed;
}

void lazy_resistance(bench::Harness& h) {
  std::printf("\n## lazy-tip resistance: fraction of selections landing on "
              "attacker tips\n");
  std::printf("# tangle: 200 honest txs + 100 lazy-attack tips off one stale pair\n");
  std::printf("%-26s %14s\n", "selector", "lazy_fraction");

  Rng build_rng(1);
  tangle::TipPair stale;
  TestBed bed = build_infested(h.scale(200, 60), h.scale(100, 30), build_rng,
                               &stale);

  // Attacker tips are exactly those approving the stale pair.
  std::set<tangle::TxId> lazy_tips;
  for (const auto& tip : bed.tangle.tips()) {
    const auto* rec = bed.tangle.find(tip);
    if (rec->tx.parent1 == stale.first && rec->tx.parent2 == stale.second)
      lazy_tips.insert(tip);
  }
  std::printf("# tip pool: %zu total, %zu lazy (share %.2f)\n",
              bed.tangle.tips().size(), lazy_tips.size(),
              static_cast<double>(lazy_tips.size()) /
                  static_cast<double>(bed.tangle.tips().size()));

  const int trials = h.scale(1000, 200);
  auto measure = [&](const tangle::TipSelector& selector) {
    Rng rng(7);
    int hits = 0;
    for (int i = 0; i < trials; ++i) {
      const auto [t1, t2] = selector.select(bed.tangle, rng);
      if (lazy_tips.contains(t1)) ++hits;
      if (lazy_tips.contains(t2)) ++hits;
    }
    return static_cast<double>(hits) / (2 * trials);
  };

  const tangle::UniformRandomTipSelector uniform;
  const double uniform_frac = measure(uniform);
  std::printf("%-26s %14.3f\n", "uniform", uniform_frac);
  h.record("lazy_fraction.uniform", uniform_frac, "ratio");
  for (const double alpha : {0.0, 0.1, 0.5, 2.0}) {
    const tangle::WeightedWalkTipSelector walk(alpha);
    const double frac = measure(walk);
    char name[32];
    std::snprintf(name, sizeof name, "mcmc-walk alpha=%.1f", alpha);
    std::printf("%-26s %14.3f\n", name, frac);
    if (alpha == 0.5) h.record("lazy_fraction.walk_a0.5", frac, "ratio");
  }
  std::printf("# expected: uniform ~= lazy share of the tip pool; walk "
              "fraction drops toward 0 as alpha grows\n");
}

void selection_cost(bench::Harness& h) {
  std::printf("\n## selection cost vs tangle size (microseconds/selection)\n");
  std::printf("%-10s %14s %14s\n", "txs", "uniform_us", "walk_us");

  for (const int n : h.quick() ? std::vector<int>{100, 500}
                                : std::vector<int>{100, 500, 2000, 8000}) {
    Rng build_rng(2);
    TestBed bed = build_infested(n, 0, build_rng);

    auto time_us = [&](const tangle::TipSelector& selector, int reps) {
      Rng rng(3);
      const obs::WallTimer timer;
      for (int i = 0; i < reps; ++i)
        bench::do_not_optimize(selector.select(bed.tangle, rng));
      return timer.elapsed() * 1e6 / reps;
    };

    const tangle::UniformRandomTipSelector uniform;
    const tangle::WeightedWalkTipSelector walk(0.5);
    const double uniform_us = time_us(uniform, h.scale(200, 50));
    const double walk_us = time_us(walk, h.scale(20, 5));
    std::printf("%-10d %14.2f %14.2f\n", n, uniform_us, walk_us);
    h.record("select_us.uniform.n" + std::to_string(n), uniform_us, "us/op");
    h.record("select_us.walk.n" + std::to_string(n), walk_us, "us/op");
  }
  std::printf("# uniform is O(tips); the walk's weight map is generation-"
              "cached, so on a quiescent tangle repeated selections cost "
              "O(walk length) — only the first selection after an attach "
              "pays the O(n) weight pass (see weight_cache_bench)\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("tip_selection", argc, argv);
  std::printf("# Tip-selection strategies: lazy-tip resistance and cost\n");
  lazy_resistance(h);
  selection_cost(h);
  return h.finish();
}
