// Shared bench harness: every binary under bench/ runs its workload through
// this header instead of hand-rolling std::chrono loops and volatile sinks.
//
// What it provides:
//   - flag parsing common to all benches:
//       --quick        scaled-down workload for CI smoke runs (Harness::quick,
//                      Harness::scale pick the sizes)
//       --repeat N     timed samples per measurement (default 5; 2 in quick)
//       --warmup N     untimed runs before sampling (default 1; 0 in quick)
//       --out PATH     where to write the JSON trajectory
//                      (default BENCH_<name>.json in the working directory)
//   - timing built on obs::WallTimer, percentiles on obs::percentile
//   - do_not_optimize / clobber_memory in place of volatile sinks
//   - a persisted result trajectory: finish() writes one biot-bench-v1
//     JSON document (tools/bench_schema.json) that tools/bench_diff.py
//     validates and diffs across commits.
//
// Typical use:
//   int main(int argc, char** argv) {
//     biot::bench::Harness h("tip_selection", argc, argv);
//     const int n = h.scale(8000, 500);
//     h.measure("select.walk_s", [&] { ... one selection pass ... });
//     h.record("lazy_fraction", fraction, "ratio");
//     return h.finish();
//   }
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/stats.h"
#include "obs/timer.h"

namespace biot::bench {

/// Keeps `value` alive in the eyes of the optimizer without the data-race
/// and codegen baggage of a file-scope volatile sink.
template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Forces pending writes to be considered observed (pairs with
/// do_not_optimize when the workload mutates memory instead of producing
/// a value).
inline void clobber_memory() { asm volatile("" : : : "memory"); }

/// One named result in the bench trajectory: a value plus the sample
/// distribution it was reduced from (samples == 1 for derived scalars).
struct BenchResult {
  std::string name;
  std::string unit;
  double value = 0.0;  // mean over samples
  std::size_t samples = 1;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
};

class Harness {
 public:
  Harness(std::string name, int argc, char** argv)
      : name_(std::move(name)), out_path_("BENCH_" + name_ + ".json") {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> const char* {
        return i + 1 < argc ? argv[++i] : "";
      };
      if (arg == "--quick") {
        quick_ = true;
      } else if (arg == "--repeat") {
        repeat_ = std::atoi(next());
      } else if (arg.rfind("--repeat=", 0) == 0) {
        repeat_ = std::atoi(arg.c_str() + 9);
      } else if (arg == "--warmup") {
        warmup_ = std::atoi(next());
      } else if (arg.rfind("--warmup=", 0) == 0) {
        warmup_ = std::atoi(arg.c_str() + 9);
      } else if (arg == "--out") {
        out_path_ = next();
      } else if (arg.rfind("--out=", 0) == 0) {
        out_path_ = arg.substr(6);
      } else if (arg == "--help") {
        std::printf(
            "usage: %s [--quick] [--repeat N] [--warmup N] [--out PATH]\n",
            argv[0]);
        std::exit(0);
      }
    }
    if (repeat_ < 0) repeat_ = quick_ ? 2 : 5;
    if (warmup_ < 0) warmup_ = quick_ ? 0 : 1;
    if (repeat_ < 1) repeat_ = 1;
  }

  const std::string& name() const { return name_; }
  bool quick() const { return quick_; }
  int repeat() const { return repeat_; }
  int warmup() const { return warmup_; }

  /// Workload size selector: the full value normally, the reduced one under
  /// --quick.
  template <typename T>
  T scale(T full, T quick_value) const {
    return quick_ ? quick_value : full;
  }

  /// Record a derived scalar (a throughput, a fraction, a count).
  void record(const std::string& metric, double value,
              const std::string& unit) {
    BenchResult r;
    r.name = metric;
    r.unit = unit;
    r.value = r.min = r.max = r.p50 = r.p90 = value;
    r.samples = 1;
    results_.push_back(std::move(r));
  }

  /// Record a pre-collected sample distribution (unit applies per sample).
  void record_samples(const std::string& metric, std::vector<double> samples,
                      const std::string& unit) {
    if (samples.empty()) return;
    BenchResult r;
    r.name = metric;
    r.unit = unit;
    r.samples = samples.size();
    r.value = obs::mean(samples);
    r.min = *std::min_element(samples.begin(), samples.end());
    r.max = *std::max_element(samples.begin(), samples.end());
    r.p50 = obs::percentile(samples, 50.0);
    r.p90 = obs::percentile(samples, 90.0);
    results_.push_back(std::move(r));
  }

  /// Time `fn` (one full workload pass per call): warmup() untimed runs,
  /// then repeat() timed samples. Records the distribution in seconds and
  /// returns the mean.
  template <typename Fn>
  double measure(const std::string& metric, Fn&& fn) {
    for (int w = 0; w < warmup_; ++w) fn();
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(repeat_));
    obs::WallTimer timer;
    for (int r = 0; r < repeat_; ++r) {
      timer.reset();
      fn();
      samples.push_back(timer.elapsed());
    }
    const double avg = obs::mean(samples);
    record_samples(metric, std::move(samples), "s");
    return avg;
  }

  /// Microbenchmark: calibrates an inner iteration count until one batch
  /// runs at least min_batch_seconds(), then takes repeat() batch samples.
  /// Records and returns seconds per op.
  template <typename Fn>
  double bench(const std::string& metric, Fn&& fn) {
    obs::WallTimer timer;
    std::uint64_t iters = 1;
    double batch_s = 0.0;
    for (;;) {
      timer.reset();
      for (std::uint64_t i = 0; i < iters; ++i) fn();
      batch_s = timer.elapsed();
      if (batch_s >= min_batch_seconds() || iters >= (1ull << 30)) break;
      // Aim past the threshold in one step once the timing is meaningful.
      if (batch_s < min_batch_seconds() / 16.0) {
        iters *= 16;
      } else {
        iters *= 2;
      }
    }
    std::vector<double> per_op;
    per_op.reserve(static_cast<std::size_t>(repeat_));
    per_op.push_back(batch_s / static_cast<double>(iters));
    for (int r = 1; r < repeat_; ++r) {
      timer.reset();
      for (std::uint64_t i = 0; i < iters; ++i) fn();
      per_op.push_back(timer.elapsed() / static_cast<double>(iters));
    }
    const double avg = obs::mean(per_op);
    record_samples(metric, std::move(per_op), "s/op");
    return avg;
  }

  /// Write the biot-bench-v1 trajectory. Returns 0 on success — bench main()
  /// should end with `return h.finish();` (or fold its own failure bit in).
  int finish() {
    if (results_.empty()) {
      std::fprintf(stderr, "%s: no results recorded, refusing to emit %s\n",
                   name_.c_str(), out_path_.c_str());
      return 1;
    }
    std::string json = "{\n  \"schema\": \"biot-bench-v1\",\n  \"bench\": \"" +
                       name_ + "\",\n  \"quick\": " +
                       (quick_ ? "true" : "false") + ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const auto& r = results_[i];
      json += "    {\"name\": \"" + r.name + "\", \"unit\": \"" + r.unit +
              "\", \"value\": " + fmt(r.value) +
              ", \"samples\": " + std::to_string(r.samples) +
              ", \"min\": " + fmt(r.min) + ", \"max\": " + fmt(r.max) +
              ", \"p50\": " + fmt(r.p50) + ", \"p90\": " + fmt(r.p90) + "}";
      json += i + 1 < results_.size() ? ",\n" : "\n";
    }
    json += "  ]\n}\n";

    std::FILE* f = std::fopen(out_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot open %s for writing\n", name_.c_str(),
                   out_path_.c_str());
      return 1;
    }
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    if (!ok) return 1;
    std::printf("\n# trajectory: %zu results -> %s%s\n", results_.size(),
                out_path_.c_str(), quick_ ? " (quick)" : "");
    return 0;
  }

 private:
  double min_batch_seconds() const { return quick_ ? 0.002 : 0.02; }

  static std::string fmt(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // JSON has no inf/nan literals; clamp to a sentinel instead.
    if (std::strstr(buf, "inf") != nullptr || std::strstr(buf, "nan") != nullptr)
      return "0";
    return buf;
  }

  std::string name_;
  std::string out_path_;
  bool quick_ = false;
  int repeat_ = -1;
  int warmup_ = -1;
  std::vector<BenchResult> results_;
};

}  // namespace biot::bench
