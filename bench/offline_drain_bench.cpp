// Offline drain bench: end-to-end confirmation latency of store-and-forward
// records versus how long the fleet stayed dark (10 s / 10 min / 2 h), plus
// how long the reconnect drain takes to clear every outbox after the heal.
//
// The whole device fleet loses its radio for the dark window while the
// gateways stay up; devices exhaust failover, queue signed records into
// their outboxes and countersign for ring neighbours. On heal the recovery
// probes (jittered exponential backoff) find a gateway and the queues drain
// through Gateway::admit_many in bounded chunks. Confirmation latency is
// enqueue -> admitted on the device's own clock, so it is dominated by the
// outage itself — the point of the trajectory is that the drain tail stays
// flat (bounded chunks, no backlog collapse) while the dark window grows by
// three orders of magnitude.
#include <cstdio>
#include <string>
#include <vector>

#include "factory/scenario.h"
#include "harness.h"
#include "node/convergence.h"
#include "obs/metrics.h"

namespace {
using namespace biot;

struct Row {
  double dark_s = 0.0;
  std::uint64_t queued = 0;      // records enqueued across the fleet
  std::uint64_t drained = 0;     // settled as admitted
  std::uint64_t duplicates = 0;  // settled via the witness's evidence copy
  std::uint64_t backoffs = 0;    // drain backoff events
  double confirm_mean_s = 0.0;   // enqueue -> admitted, fleet-wide
  double confirm_p50_s = 0.0;
  double confirm_max_s = 0.0;
  double drain_completion_s = -1.0;  // heal -> every outbox empty
  bool converged = false;
};

Row run(double dark_s, double collect_interval, std::uint64_t seed) {
  factory::ScenarioConfig config;
  config.num_gateways = 2;
  config.num_devices = 4;
  config.distribute_keys = false;
  config.wire_exchange_ring = true;
  config.seed = seed;
  config.device.collect_interval = collect_interval;
  config.device.request_timeout = 1.0;
  config.device.failback_probe_interval = 1.0;
  config.device.probe_interval_max = 30.0;
  config.device.outbox.capacity = 4096;  // never shed: measure latency only
  config.gateway.sync_interval = 1.0;
  config.gateway.credit.initial_difficulty = 6;  // keep host PoW cheap

  factory::SmartFactory factory(config);
  factory.bootstrap();

  const double dark_at = 5.0;
  factory.run_until(dark_at);
  for (std::size_t d = 0; d < factory.device_count(); ++d)
    factory.network().set_radio(factory.device(d).node_id(), false);
  factory.run_until(dark_at + dark_s);
  for (std::size_t d = 0; d < factory.device_count(); ++d)
    factory.network().set_radio(factory.device(d).node_id(), true);
  const double heal_at = dark_at + dark_s;

  // Step until every outbox drained (or give up after a generous cap — a
  // non-terminating drain is itself the regression this bench guards).
  Row row;
  row.dark_s = dark_s;
  const double step = 0.5, cap = 300.0;
  for (double t = step; t <= cap; t += step) {
    factory.run_until(heal_at + t);
    bool all_empty = true;
    for (std::size_t d = 0; d < factory.device_count(); ++d)
      all_empty = all_empty && factory.device(d).outbox().empty();
    if (all_empty) {
      row.drain_completion_s = t;
      break;
    }
  }
  factory.stop_devices();
  factory.run_until(heal_at + cap + 10.0);

  obs::Histogram confirm;
  for (std::size_t d = 0; d < factory.device_count(); ++d) {
    const auto& stats = factory.device(d).outbox().stats();
    row.queued += stats.enqueued.value();
    row.drained += stats.drained.value();
    row.duplicates += stats.duplicates.value();
    row.backoffs += stats.backoff_events.value();
    confirm.merge(stats.drain_latency_s);
  }
  row.confirm_mean_s = confirm.mean();
  row.confirm_p50_s = confirm.quantile(0.5);
  row.confirm_max_s = confirm.max();

  node::ConvergenceChecker checker;
  for (std::size_t g = 0; g < factory.gateway_count(); ++g)
    checker.add_replica(&factory.gateway(g));
  for (std::size_t d = 0; d < factory.device_count(); ++d)
    checker.add_device(&factory.device(d));
  const auto report = checker.check();
  row.converged = report.ok();
  if (!row.converged)
    std::printf("-- dark=%gs:\n%s\n", dark_s, report.to_string().c_str());
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("offline_drain", argc, argv);

  // Scenario set fixed across quick/full (identical metric names for
  // bench_diff); --quick thins the record volume per window instead, via a
  // coarser collection interval.
  struct Window {
    const char* tag;
    double dark_s;
  };
  const Window windows[] = {
      {"dark_10s", 10.0}, {"dark_600s", 600.0}, {"dark_7200s", 7200.0}};
  const double records_per_device = h.scale(120.0, 30.0);

  std::printf("# Offline drain: fleet of 4 devices dark for a window, then a "
              "simultaneous heal; confirmation latency is enqueue->admitted "
              "(dominated by the outage), drain completion is heal->all "
              "outboxes empty.\n");
  std::printf("%-11s | %7s %7s %5s %8s | %9s %9s %9s %9s %s\n", "window",
              "queued", "drain", "dup", "backoff", "conf_p50", "conf_max",
              "complete", "", "verdict");

  bool all_ok = true;
  for (const auto& window : windows) {
    const double interval =
        std::max(0.5, window.dark_s / records_per_device);
    const auto row = run(window.dark_s, interval, /*seed=*/1);
    all_ok = all_ok && row.converged && row.drain_completion_s >= 0.0;
    const std::string tag = window.tag;
    h.record(tag + ".confirm_mean_s", row.confirm_mean_s, "s");
    h.record(tag + ".confirm_p50_s", row.confirm_p50_s, "s");
    h.record(tag + ".confirm_max_s", row.confirm_max_s, "s");
    h.record(tag + ".drain_completion_s", row.drain_completion_s, "s");
    h.record(tag + ".drained", static_cast<double>(row.drained), "count");
    h.record(tag + ".duplicates", static_cast<double>(row.duplicates),
             "count");
    h.record(tag + ".backoff_events", static_cast<double>(row.backoffs),
             "count");
    std::printf("%-11s | %7llu %7llu %5llu %8llu | %8.2fs %8.2fs %8.2fs %9s "
                "%s\n",
                window.tag, static_cast<unsigned long long>(row.queued),
                static_cast<unsigned long long>(row.drained),
                static_cast<unsigned long long>(row.duplicates),
                static_cast<unsigned long long>(row.backoffs),
                row.confirm_p50_s, row.confirm_max_s, row.drain_completion_s,
                "", row.converged ? "CONVERGED" : "FAILED");
  }

  std::printf("\n# expected: confirmation latency tracks the dark window "
              "(records wait out the outage) while drain completion stays "
              "within tens of seconds for every window — the reconnect "
              "pipeline is bounded by queue volume, not outage length.\n");
  h.record("all_converged", all_ok ? 1.0 : 0.0, "bool");
  const int emit = h.finish();
  return all_ok ? emit : 1;
}
