// Fig 9 reproduction: average PoW time per transaction over a 90 s window
// (3 dT) for four control experiments:
//
//   1. original PoW              (fixed difficulty 11)        paper: 0.700 s
//   2. credit PoW, honest        (no attacks)                 paper: 0.118 s
//   3. credit PoW, one attack    (double-spend at t=24 s)     paper: 1.667 s
//   4. credit PoW, two attacks   (t=24 s and t=40 s)          paper: 3.750 s
//
// The claims under reproduction: honest nodes get *faster* than original
// PoW, attackers get *slower*, and the penalty grows steeply with repeated
// attacks. Absolute values depend on the Pi calibration; the ordering and
// rough ratios are the result.
#include <cstdio>
#include <vector>

#include "harness.h"
#include "node/gateway.h"
#include "node/light_node.h"
#include "node/manager.h"

namespace {
using namespace biot;

struct ExperimentResult {
  double avg_pow_s = 0.0;
  double energy_per_tx_j = 0.0;  // paper motivation: power consumption
  std::uint64_t transactions = 0;
  std::uint64_t rejected = 0;
};

ExperimentResult run(node::GatewayConfig::Policy policy, int num_attacks) {
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.002), Rng(9));

  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto gateway_identity = crypto::Identity::deterministic(2);

  node::GatewayConfig gw_config;
  gw_config.policy = policy;
  gw_config.fixed_difficulty = 11;  // the paper's initial difficulty
  node::Gateway gateway(1, gateway_identity,
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), network, gw_config);
  node::Manager manager(2, manager_identity, gateway, network);
  gateway.attach();
  manager.attach();

  node::LightNodeConfig dev_config;
  dev_config.profile = sim::DeviceProfile::pi3b_fig9();
  // Sensor cadence of 0.5 s bounds the submission rate; the PoW time adds
  // on top (the paper's light node is likewise API-rate-limited).
  dev_config.collect_interval = 0.5;
  dev_config.start_time = 0.1;
  node::LightNode device(10, crypto::Identity::deterministic(100), 1, network,
                         dev_config);
  if (!manager.authorize({device.public_identity()}).is_ok()) std::abort();
  device.start();

  if (num_attacks >= 1) device.schedule_attack(24.0, node::AttackKind::kDoubleSpend);
  if (num_attacks >= 2) device.schedule_attack(40.0, node::AttackKind::kDoubleSpend);

  sched.run_until(90.0);

  ExperimentResult result;
  result.transactions = device.stats().pow_durations.size();
  result.rejected = device.stats().rejected;
  result.avg_pow_s = obs::mean(device.stats().pow_durations);
  result.energy_per_tx_j = result.avg_pow_s * dev_config.profile.pow_power_w;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("fig9_credit_vs_pow", argc, argv);
  std::printf("# Fig 9 — average PoW time per transaction, four control "
              "experiments (90 s window, initial difficulty 11, Pi 3B)\n");
  std::printf("%-34s %12s %12s %8s %8s %12s\n", "experiment", "avg_pow_s",
              "energy_J/tx", "txs", "rej", "paper_s");

  struct Row {
    const char* name;
    node::GatewayConfig::Policy policy;
    int attacks;
    double paper;
  };
  const Row rows[] = {
      {"original PoW (fixed D=11)", node::GatewayConfig::Policy::kFixed, 0, 0.700},
      {"credit PoW, normal", node::GatewayConfig::Policy::kCredit, 0, 0.118},
      {"credit PoW, 1 attack", node::GatewayConfig::Policy::kCredit, 1, 1.667},
      {"credit PoW, 2 attacks", node::GatewayConfig::Policy::kCredit, 2, 3.750},
  };

  const char* tags[] = {"original", "credit_normal", "credit_1attack",
                        "credit_2attack"};
  std::vector<double> measured;
  for (const auto& row : rows) {
    const auto r = run(row.policy, row.attacks);
    measured.push_back(r.avg_pow_s);
    h.record(std::string("avg_pow_s.") + tags[measured.size() - 1],
             r.avg_pow_s, "s");
    std::printf("%-34s %12.3f %12.2f %8llu %8llu %12.3f\n", row.name,
                r.avg_pow_s, r.energy_per_tx_j,
                static_cast<unsigned long long>(r.transactions),
                static_cast<unsigned long long>(r.rejected), row.paper);
  }

  std::printf("\n# shape checks (paper ordering: normal < original < 1 attack "
              "< 2 attacks)\n");
  std::printf("# normal/original speedup: %.2fx (paper %.2fx)\n",
              measured[0] / measured[1], 0.700 / 0.118);
  std::printf("# 1-attack slowdown vs original: %.2fx (paper %.2fx)\n",
              measured[2] / measured[0], 1.667 / 0.700);
  std::printf("# 2-attack vs 1-attack: %.2fx (paper %.2fx)\n",
              measured[3] / measured[2], 3.750 / 1.667);
  const bool ordering = measured[1] < measured[0] && measured[0] < measured[2] &&
                        measured[2] < measured[3];
  std::printf("# ordering reproduced: %s\n", ordering ? "YES" : "NO");
  h.record("ordering_reproduced", ordering ? 1.0 : 0.0, "bool");
  const int emit = h.finish();
  return ordering ? emit : 1;
}
