// Confirmation-rule ablation: weight-threshold vs milestone confirmation.
//
// The paper's background section ties tangle security to transaction weight
// ("the larger value of weight is, the more difficult of the transaction to
// be tampered" — the six-block-security analogue), while the IOTA network it
// deploys on actually confirmed via Coordinator milestones in 2019. This
// bench runs the same smart-factory workload under both rules and reports
// coverage and latency as the milestone interval varies.
#include <cstdio>
#include <deque>
#include <unordered_set>

#include "factory/scenario.h"
#include "harness.h"

namespace {
using namespace biot;

struct Coverage {
  double confirmed_fraction = 0.0;
  double mean_latency = 0.0;
};

// Weight-rule latency: time until the (threshold-1)-th distinct descendant
// arrived (post-hoc over the final DAG).
Coverage weight_rule(const tangle::Tangle& tangle, std::size_t threshold,
                     double horizon) {
  std::vector<double> latencies;
  std::size_t data_txs = 0, confirmed = 0;
  for (const auto& id : tangle.arrival_order()) {
    const auto* rec = tangle.find(id);
    if (rec->tx.type != tangle::TxType::kData) continue;
    ++data_txs;
    std::vector<double> arrivals;
    std::deque<tangle::TxId> frontier{id};
    std::unordered_set<tangle::TxId, FixedBytesHash<32>> seen{id};
    while (!frontier.empty()) {
      const auto cur = frontier.front();
      frontier.pop_front();
      for (const auto& ap : tangle.find(cur)->approvers) {
        if (seen.insert(ap).second) {
          arrivals.push_back(tangle.find(ap)->arrival);
          frontier.push_back(ap);
        }
      }
    }
    if (arrivals.size() + 1 < threshold) continue;
    std::sort(arrivals.begin(), arrivals.end());
    ++confirmed;
    latencies.push_back(arrivals[threshold - 2] - rec->arrival);
  }
  (void)horizon;
  return Coverage{data_txs == 0 ? 0.0
                                : static_cast<double>(confirmed) / data_txs,
                  obs::mean(latencies)};
}

// Milestone-rule latency: time from a data tx's arrival to the arrival of
// the first milestone whose past cone contains it.
Coverage milestone_rule(const tangle::Tangle& tangle) {
  // Collect milestones in arrival order; incrementally confirm cones.
  tangle::MilestoneTracker tracker;
  std::unordered_map<tangle::TxId, double, FixedBytesHash<32>> confirm_time;
  for (const auto& id : tangle.arrival_order()) {
    const auto* rec = tangle.find(id);
    if (rec->tx.type != tangle::TxType::kMilestone) continue;
    // Snapshot which txs the tracker confirms with this milestone.
    const auto before = tracker.confirmed_count();
    tracker.observe_milestone(tangle, id);
    if (tracker.confirmed_count() == before) continue;
    for (const auto& tid : tangle.arrival_order()) {
      if (tracker.is_confirmed(tid) && !confirm_time.contains(tid))
        confirm_time.emplace(tid, rec->arrival);
    }
  }

  std::vector<double> latencies;
  std::size_t data_txs = 0, confirmed = 0;
  for (const auto& id : tangle.arrival_order()) {
    const auto* rec = tangle.find(id);
    if (rec->tx.type != tangle::TxType::kData) continue;
    ++data_txs;
    const auto it = confirm_time.find(id);
    if (it == confirm_time.end()) continue;
    ++confirmed;
    latencies.push_back(it->second - rec->arrival);
  }
  return Coverage{data_txs == 0 ? 0.0
                                : static_cast<double>(confirmed) / data_txs,
                  obs::mean(latencies)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("confirmation", argc, argv);
  std::printf("# Confirmation rules on the same 60 s smart-factory workload "
              "(4 devices)\n");
  std::printf("%-22s | %12s %12s | %12s %12s\n", "setup", "w5_frac",
              "w5_lat_s", "ms_frac", "ms_lat_s");

  const double horizon = h.scale(60.0, 30.0);
  for (const double interval : h.quick() ? std::vector<double>{5.0}
                                         : std::vector<double>{2.0, 5.0,
                                                               10.0}) {
    factory::ScenarioConfig config;
    config.num_devices = 4;
    config.num_gateways = 2;
    config.distribute_keys = false;
    config.enable_coordinator = true;
    config.milestone_interval = interval;
    config.device.collect_interval = 0.5;
    config.device.profile = sim::DeviceProfile::pi3b_fig9();

    factory::SmartFactory factory(config);
    factory.bootstrap();
    factory.run_until(horizon);

    const auto& tangle = factory.gateway(0).tangle();
    const auto weight = weight_rule(tangle, 5, horizon);
    const auto milestone = milestone_rule(tangle);
    std::printf("milestones every %-4.0fs | %12.2f %12.2f | %12.2f %12.2f\n",
                interval, weight.confirmed_fraction, weight.mean_latency,
                milestone.confirmed_fraction, milestone.mean_latency);
    if (interval == 5.0) {
      h.record("weight5.confirmed_fraction", weight.confirmed_fraction,
               "ratio");
      h.record("weight5.mean_latency_s", weight.mean_latency, "s");
      h.record("milestone5.confirmed_fraction", milestone.confirmed_fraction,
               "ratio");
      h.record("milestone5.mean_latency_s", milestone.mean_latency, "s");
    }
  }

  std::printf("\n# weight-5 confirmation is workload-driven (latency falls "
              "with traffic); milestone confirmation is checkpoint-driven "
              "(latency ~ interval/2 + cone depth) but confirms the deep "
              "past deterministically.\n");
  return h.finish();
}
