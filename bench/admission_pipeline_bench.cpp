// Concurrent admission core: whole-gateway throughput of the two-phase
// batch pipeline (Gateway::admit_many, DESIGN.md section 11) on a
// gossip-burst workload, across admission_threads 1/2/4/8.
//
// Configurations measured:
//   t1       the deterministic serial reference: admission_threads=1 AND
//            admission_max_batch=1, i.e. every transaction runs the staged
//            pipeline per item (scalar Ed25519 verify, per-item attach
//            maintenance) — the pre-batch gateway behaviour.
//   t2/4/8   the concurrent pipeline: ThreadPoolExecutor(N) read fan-out,
//            one batched Ed25519 verification per chunk, one AttachBatch
//            per slice (admission_max_batch=256).
//
// On a single-core host the t2/t4/t8 columns measure the amortization win
// (batch verification + batched attach maintenance); on multi-core hosts
// the read fan-out overlaps on top of it. Attach p50/p99 come from the
// gateway's own admission-stage histograms (obs), so the bench reports
// exactly what production metrics would.
#include <cstdio>
#include <memory>
#include <vector>

#include "harness.h"
#include "node/gateway.h"

namespace {
using namespace biot;

/// A linear gossip burst: tx_i approves the two previous transactions.
/// Signed and mined (difficulty 1) up front so the measured region is
/// admission only, not workload construction.
std::vector<tangle::Transaction> build_burst(const tangle::TxId& genesis,
                                             std::size_t count) {
  crypto::Identity device = crypto::Identity::deterministic(77);
  consensus::Miner miner;
  std::vector<tangle::Transaction> txs;
  txs.reserve(count);
  tangle::TxId p1 = genesis;
  tangle::TxId p2 = genesis;
  for (std::size_t i = 0; i < count; ++i) {
    tangle::Transaction tx;
    tx.type = tangle::TxType::kData;
    tx.sender = device.public_identity().sign_key;
    tx.parent1 = p1;
    tx.parent2 = p2;
    tx.sequence = i;
    tx.timestamp = 0.0;
    tx.difficulty = 1;
    tx.nonce = miner.mine(p1, p2, tx.difficulty)->nonce;
    tx.signature = device.sign(tx.signing_bytes());
    p2 = p1;
    p1 = tx.id();
    txs.push_back(std::move(tx));
  }
  return txs;
}

struct GatewayRig {
  explicit GatewayRig(unsigned threads, std::size_t max_batch)
      : identity(crypto::Identity::deterministic(1)),
        manager(crypto::Identity::deterministic(2)),
        network(sched, std::make_unique<sim::FixedLatency>(0.001), Rng(1)),
        gateway(1, identity, manager.public_identity().sign_key,
                tangle::Tangle::make_genesis(), network, config(threads,
                                                               max_batch)) {
    sched.run_until(0.001);
  }

  static node::GatewayConfig config(unsigned threads, std::size_t max_batch) {
    node::GatewayConfig c;
    c.admission_threads = threads;
    c.admission_max_batch = max_batch;
    return c;
  }

  sim::Scheduler sched;
  crypto::Identity identity;
  crypto::Identity manager;
  sim::Network network;
  node::Gateway gateway;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("admission_pipeline", argc, argv);
  const std::size_t burst = h.scale<std::size_t>(1536, 192);

  // The workload parents on the genesis every gateway replica shares, so
  // one pre-built burst feeds every configuration.
  const auto genesis_tx = tangle::Tangle::make_genesis();
  const auto txs = build_burst(tangle::Tangle(genesis_tx).genesis_id(), burst);

  std::printf("# admission pipeline: %zu-tx gossip burst per pass\n", burst);
  std::printf("%-8s | %14s %12s %12s\n", "config", "admissions/s", "attach p50",
              "attach p99");

  double throughput_t1 = 0.0;
  double throughput_t4 = 0.0;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    // t1 is the serial per-item reference (slice = 1 transaction); wider
    // configs run the batched two-phase pipeline.
    const std::size_t max_batch = threads == 1 ? 1 : 256;
    std::unique_ptr<GatewayRig> rig;
    const std::string tag = "t" + std::to_string(threads);
    const double pass_s = h.measure("admit_burst_s." + tag, [&] {
      rig = std::make_unique<GatewayRig>(threads, max_batch);
      const auto statuses =
          rig->gateway.admit_many(txs, node::Ingress::kGossip);
      for (const auto& s : statuses)
        if (!s.is_ok()) std::abort();  // the burst is valid by construction
      bench::do_not_optimize(statuses);
    });
    const double admissions_per_s = static_cast<double>(burst) / pass_s;
    // Stage histograms accumulated across every timed pass of this config.
    const auto& attach =
        rig->gateway.metrics().admission.attach_wall_s;
    const double p50 = attach.quantile(0.5);
    const double p99 = attach.quantile(0.99);
    h.record("admissions_per_s." + tag, admissions_per_s, "ops/s");
    h.record("attach_p50_s." + tag, p50, "s");
    h.record("attach_p99_s." + tag, p99, "s");
    if (threads == 1) throughput_t1 = admissions_per_s;
    if (threads == 4) throughput_t4 = admissions_per_s;
    std::printf("%-8s | %14.0f %10.2fus %10.2fus\n", tag.c_str(),
                admissions_per_s, p50 * 1e6, p99 * 1e6);
  }

  // Headline: batched pipeline at 4 lanes vs the serial per-item reference.
  const double speedup =
      throughput_t1 > 0.0 ? throughput_t4 / throughput_t1 : 0.0;
  h.record("throughput_speedup_t4_vs_t1", speedup, "ratio");
  std::printf("# t4 vs t1 throughput: %.2fx\n", speedup);
  return h.finish();
}
