// Scalability sweep — the paper's first contribution bullet promises a
// "general, scalable and secure blockchain system for IoT". This bench
// measures how throughput and per-transaction network overhead behave as
// the deployment grows along both axes: devices (workload) and gateways
// (replication factor).
#include <cstdio>

#include "factory/scenario.h"
#include "harness.h"

namespace {
using namespace biot;

struct Cell {
  double tps = 0.0;
  double msgs_per_tx = 0.0;
  double kb_per_tx = 0.0;
};

Cell run(int devices, int gateways, double horizon) {
  factory::ScenarioConfig config;
  config.num_devices = devices;
  config.num_gateways = gateways;
  config.distribute_keys = false;
  config.device.collect_interval = 0.5;
  config.device.profile = sim::DeviceProfile::pi3b_fig9();

  factory::SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(horizon);

  Cell cell;
  cell.tps = factory.throughput(horizon * 0.15, horizon);
  const auto accepted = factory.total_accepted();
  if (accepted > 0) {
    cell.msgs_per_tx = static_cast<double>(factory.network().stats().sent) /
                       static_cast<double>(accepted);
    cell.kb_per_tx = static_cast<double>(factory.network().stats().bytes_sent) /
                     static_cast<double>(accepted) / 1000.0;
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("scalability", argc, argv);
  std::printf("# Scalability: throughput and network overhead vs deployment "
              "size (45 s horizon, Pi 3B devices at 0.5 s cadence)\n");
  std::printf("%-9s %-9s | %9s %12s %10s\n", "devices", "gateways", "tps",
              "msgs/tx", "KB/tx");

  const double horizon = h.scale(45.0, 20.0);
  for (const int gateways : h.quick() ? std::vector<int>{1, 2}
                                      : std::vector<int>{1, 2, 4}) {
    for (const int devices : h.quick() ? std::vector<int>{4, 16}
                                       : std::vector<int>{4, 16, 64}) {
      const auto cell = run(devices, gateways, horizon);
      std::printf("%-9d %-9d | %9.2f %12.1f %10.2f\n", devices, gateways,
                  cell.tps, cell.msgs_per_tx, cell.kb_per_tx);
      const auto tag =
          ".d" + std::to_string(devices) + ".g" + std::to_string(gateways);
      h.record("tps" + tag, cell.tps, "tx/s");
      h.record("msgs_per_tx" + tag, cell.msgs_per_tx, "msgs");
    }
  }

  std::printf("\n# expected: tps tracks devices (async consensus, no global "
              "bottleneck); msgs/tx grows with the gossip fan-out "
              "(~gateways-1 relays per acceptance) — the replication cost "
              "of losing the single point of failure.\n");
  return h.finish();
}
