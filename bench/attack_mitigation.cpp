// Security-analysis quantification (paper Section VI-C): measures what each
// defence actually buys on a running smart factory.
//
//   1. Sybil / DDoS: a swarm of unauthorized devices hammers a gateway; the
//      authorization list blocks them and honest throughput is unaffected.
//   2. Double-spend throttling: an attacker's sustained double-spend rate
//      with credit PoW vs with the original (fixed) PoW.
//   3. Single point of failure: throughput before/after one of the two
//      gateways crashes.
#include <cstdio>

#include "factory/scenario.h"
#include "harness.h"

namespace {
using namespace biot;

factory::ScenarioConfig base_config() {
  factory::ScenarioConfig config;
  config.num_devices = 4;
  config.num_gateways = 2;
  config.distribute_keys = false;
  config.device.collect_interval = 0.5;
  config.device.profile = sim::DeviceProfile::pi3b_fig9();
  return config;
}

void sybil_experiment(bench::Harness& h) {
  std::printf("\n## 1. Sybil / DDoS admission control\n");

  auto run = [](int sybils) {
    factory::SmartFactory factory(base_config());
    factory.bootstrap();
    for (int i = 0; i < sybils; ++i) {
      auto config = base_config().device;
      config.collect_interval = 0.05;  // 20 requests/s each
      factory.add_unauthorized_device(config);
    }
    factory.run_until(40.0);
    std::uint64_t refused = 0;
    for (std::size_t i = 0; i < factory.unauthorized_count(); ++i)
      refused += factory.unauthorized_device(i).stats().unauthorized;
    std::printf("  sybils=%-3d honest_tps=%6.2f refused_requests=%llu "
                "sybil_txs_attached=0\n",
                sybils, factory.throughput(5.0, 40.0),
                static_cast<unsigned long long>(refused));
    return factory.throughput(5.0, 40.0);
  };

  const double clean = run(0);
  const double under_attack = run(h.scale(20, 8));
  std::printf("  honest throughput under sybil flood: %.1f%% of baseline\n",
              100.0 * under_attack / clean);
  h.record("sybil.honest_tps_ratio", under_attack / clean, "ratio");
}

void double_spend_experiment(bench::Harness& h) {
  std::printf("\n## 2. Double-spend throttling (credit vs original PoW)\n");

  auto run = [](node::GatewayConfig::Policy policy) {
    auto config = base_config();
    config.num_devices = 2;
    config.gateway.policy = policy;
    config.gateway.fixed_difficulty = 11;
    factory::SmartFactory factory(config);
    factory.bootstrap();
    // Device 1 double-spends every ~10 s.
    for (int k = 0; k < 9; ++k)
      factory.device(1).schedule_attack(5.0 + 10.0 * k,
                                        node::AttackKind::kDoubleSpend);
    factory.run_until(90.0);
    const auto& attacker = factory.device(1).stats();
    const std::uint64_t conflicts =
        factory.gateway(0).stats().rejected_conflict +
        factory.gateway(1).stats().rejected_conflict;
    std::printf("  policy=%-8s attacker_accepted=%-4llu attacks_executed=%llu "
                "conflicts_caught=%llu honest_accepted=%llu\n",
                policy == node::GatewayConfig::Policy::kCredit ? "credit"
                                                               : "fixed",
                static_cast<unsigned long long>(attacker.accepted),
                static_cast<unsigned long long>(attacker.attacks_launched),
                static_cast<unsigned long long>(conflicts),
                static_cast<unsigned long long>(
                    factory.device(0).stats().accepted));
    return attacker.accepted;
  };

  const auto fixed_rate = run(node::GatewayConfig::Policy::kFixed);
  const auto credit_rate = run(node::GatewayConfig::Policy::kCredit);
  h.record("double_spend.throttle_factor",
           static_cast<double>(fixed_rate) /
               static_cast<double>(std::max<std::uint64_t>(credit_rate, 1)),
           "ratio");
  std::printf("  attacker transaction rate throttled %.1fx by credit PoW "
              "(%llu -> %llu accepted in 90 s) while the honest device "
              "got faster\n",
              static_cast<double>(fixed_rate) /
                  static_cast<double>(std::max<std::uint64_t>(credit_rate, 1)),
              static_cast<unsigned long long>(fixed_rate),
              static_cast<unsigned long long>(credit_rate));
}

void failover_experiment(bench::Harness& h) {
  std::printf("\n## 3. Single point of failure (gateway crash at t=20 s)\n");

  auto config = base_config();
  config.device.request_timeout = 2.0;  // fast dead-gateway detection
  factory::SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(20.0);
  const double before = factory.throughput(5.0, 20.0);
  factory.network().detach(factory.gateway(1).node_id());
  factory.run_until(30.0);
  const double during = factory.throughput(20.0, 30.0);
  factory.run_until(60.0);
  const double after = factory.throughput(30.0, 60.0);

  std::uint64_t failovers = 0;
  for (std::size_t d = 0; d < factory.device_count(); ++d)
    failovers += factory.device(d).stats().failovers;

  std::printf("  tps before crash: %.2f; during failover window: %.2f; "
              "after re-homing: %.2f\n",
              before, during, after);
  std::printf("  %llu devices failed over to the surviving gateway; its "
              "replica keeps all data (%zu txs)\n",
              static_cast<unsigned long long>(failovers),
              factory.gateway(0).tangle().size());
  std::printf("  (a central-server design loses everything; B-IoT degrades "
              "for seconds and recovers to full throughput)\n");
  h.record("failover.tps_before", before, "tx/s");
  h.record("failover.tps_after", after, "tx/s");
  h.record("failover.devices_failed_over", static_cast<double>(failovers),
           "devices");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("attack_mitigation", argc, argv);
  std::printf("# Attack mitigation on a running smart factory "
              "(Section VI-C security analysis, quantified)\n");
  sybil_experiment(h);
  double_spend_experiment(h);
  failover_experiment(h);
  return h.finish();
}
