// Ablation: local PoW on the device vs offloaded PoW at the gateway
// (the remote-attachToTangle pattern; the paper's light nodes had to extend
// PyOTA with *local* PoW precisely because difficulty had to be adjustable —
// this bench quantifies what each choice costs the device).
//
// Same Pi 3B device profile and workload; reported per initial difficulty:
// accepted transactions in 60 s and the device-side PoW energy proxy
// (total simulated seconds the device spent hashing).
#include <cstdio>
#include <numeric>
#include <thread>

#include "harness.h"
#include "node/gateway.h"
#include "node/light_node.h"
#include "node/manager.h"

namespace {
using namespace biot;

struct Outcome {
  std::uint64_t accepted = 0;
  double device_pow_seconds = 0.0;
};

// Wall-clock cost of the gateway-side nonce grind, serial Miner vs
// ParallelMiner at various thread counts (sharded nonce ranges,
// first-found-wins). This is the real CPU time a server-class gateway
// spends per offloaded attach request.
void parallel_grind_table(bench::Harness& h) {
  std::printf(
      "\n# Gateway-side grind wall clock (ms/mine, 20 mines each, "
      "%u hardware threads on this host)\n",
      std::thread::hardware_concurrency());
  std::printf("%-6s | %10s %10s %10s %10s\n", "D", "serial", "2thr", "4thr",
              "8thr");
  for (const int d : h.quick() ? std::vector<int>{14} :
                                 std::vector<int>{14, 16, 18}) {
    std::printf("%-6d |", d);
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      const int reps = h.scale(20, 5);
      double total_ms = 0.0;
      for (int i = 0; i < reps; ++i) {
        tangle::TxId p1{}, p2{};
        p1[0] = static_cast<std::uint8_t>(i);
        p2[0] = static_cast<std::uint8_t>(d);
        obs::WallTimer timer;
        if (threads == 1) {
          consensus::Miner miner(std::uint64_t{0xbe7ull} * (i + 1));
          if (!miner.mine(p1, p2, d)) std::abort();
        } else {
          consensus::ParallelMiner miner(threads,
                                         std::uint64_t{0xbe7ull} * (i + 1));
          if (!miner.mine(p1, p2, d)) std::abort();
        }
        total_ms += timer.elapsed() * 1e3;
      }
      std::printf(" %10.2f", total_ms / reps);
      if (d == 14 && (threads == 1 || threads == 4))
        h.record("grind_ms.D14." + std::to_string(threads) + "thr",
                 total_ms / reps, "ms/op");
    }
    std::printf("\n");
  }
  std::printf("# expected: near-linear scaling with *physical* cores while "
              "the search dominates thread startup (flat on a single-core "
              "host); the winning nonce may differ per thread count but "
              "attempts accounting stays exact.\n");
}

Outcome run(int initial_difficulty, bool offload) {
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.002), Rng(4));

  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto gateway_identity = crypto::Identity::deterministic(2);

  node::GatewayConfig gw_config;
  gw_config.policy = node::GatewayConfig::Policy::kFixed;  // isolate the variable
  gw_config.fixed_difficulty = initial_difficulty;
  // Server-class gateway: grind offloaded nonces on all cores. Simulated
  // outcomes are unchanged (any valid nonce attaches); only wall clock moves.
  if (offload) gw_config.pow_threads = 0;
  node::Gateway gateway(1, gateway_identity,
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), network, gw_config);
  node::Manager manager(2, manager_identity, gateway, network);
  gateway.attach();
  manager.attach();

  node::LightNodeConfig dev_config;
  dev_config.profile = sim::DeviceProfile::pi3b_fig9();
  dev_config.collect_interval = 0.5;
  dev_config.offload_pow = offload;
  node::LightNode device(10, crypto::Identity::deterministic(100), 1, network,
                         dev_config);
  if (!manager.authorize({device.public_identity()}).is_ok()) std::abort();
  device.start();
  sched.run_until(60.0);

  Outcome out;
  out.accepted = device.stats().accepted;
  out.device_pow_seconds =
      std::accumulate(device.stats().pow_durations.begin(),
                      device.stats().pow_durations.end(), 0.0);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("pow_offload", argc, argv);
  std::printf("# Local vs offloaded PoW on a Pi 3B light node (60 s, fixed "
              "difficulty policy)\n");
  std::printf("%-6s | %12s %16s | %12s %16s\n", "D", "local_txs",
              "local_pow_s", "offload_txs", "offload_pow_s");
  for (const int d : h.quick() ? std::vector<int>{11}
                               : std::vector<int>{8, 10, 11, 12, 13}) {
    const auto local = run(d, false);
    const auto off = run(d, true);
    std::printf("%-6d | %12llu %16.2f | %12llu %16.2f\n", d,
                static_cast<unsigned long long>(local.accepted),
                local.device_pow_seconds,
                static_cast<unsigned long long>(off.accepted),
                off.device_pow_seconds);
    if (d == 11) {
      h.record("accepted.local.D11", static_cast<double>(local.accepted),
               "txs");
      h.record("accepted.offload.D11", static_cast<double>(off.accepted),
               "txs");
      h.record("device_pow_s.local.D11", local.device_pow_seconds, "s");
    }
  }
  std::printf("\n# offloading frees the device of all PoW energy and keeps "
              "the submission rate flat as difficulty rises; the price is "
              "trusting the gateway with attachment (content stays "
              "signature-protected either way).\n");
  parallel_grind_table(h);
  return h.finish();
}
