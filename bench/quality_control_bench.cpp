// Quality-control characterization (the Section VIII future-work item we
// implemented): detection rate on genuinely broken sensors vs false-positive
// rate on healthy ones, across the z-threshold, plus the end-to-end effect —
// how quickly the credit mechanism throttles a garbage-spewing device.
#include <cstdio>

#include "factory/quality.h"
#include "harness.h"
#include "node/gateway.h"
#include "node/light_node.h"
#include "node/manager.h"

namespace {
using namespace biot;

struct Rates {
  double false_positive = 0.0;  // outlier flags on a healthy stream
  double detection = 0.0;       // outlier flags on a broken stream
};

Rates characterize(double z_threshold) {
  factory::QualityPolicy policy;
  policy.z_threshold = z_threshold;

  Rng rng(42);
  const int n = 2000;

  // Healthy: Gaussian around a setpoint.
  factory::QualityMonitor healthy(policy);
  int fp = 0;
  for (int i = 0; i < n; ++i) {
    factory::SensorReading r;
    r.sensor = "ok";
    r.value = rng.gaussian(180.0, 1.0);
    if (healthy.score(r) <= 0.0) ++fp;
  }

  // Broken: after warm-up the sensor fails into a stuck-at-garbage regime
  // 20% of the time.
  factory::QualityMonitor broken(policy);
  int detected = 0, faults = 0;
  for (int i = 0; i < n; ++i) {
    factory::SensorReading r;
    r.sensor = "bad";
    const bool fault = i > 200 && rng.bernoulli(0.2);
    r.value = fault ? rng.uniform(1e6, 2e6) : rng.gaussian(180.0, 1.0);
    const bool flagged = broken.score(r) <= 0.0;
    if (fault) {
      ++faults;
      if (flagged) ++detected;
    }
  }

  Rates rates;
  rates.false_positive = static_cast<double>(fp) / n;
  rates.detection = faults == 0 ? 0.0 : static_cast<double>(detected) / faults;
  return rates;
}

double time_to_throttle() {
  // End to end: a device breaks at t=30; how long until the credit
  // mechanism has raised its difficulty above the initial value?
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.002), Rng(7));
  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto gateway_identity = crypto::Identity::deterministic(2);

  node::Gateway gateway(1, gateway_identity,
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), network, {});
  node::Manager manager(2, manager_identity, gateway, network);
  gateway.attach();
  manager.attach();

  node::LightNodeConfig dev_config;
  dev_config.profile = sim::DeviceProfile::pi3b_fig9();
  dev_config.collect_interval = 0.5;
  node::LightNode device(10, crypto::Identity::deterministic(100), 1, network,
                         dev_config);
  if (!manager.authorize({device.public_identity()}).is_ok()) std::abort();

  auto* sched_ptr = &sched;
  device.set_data_source([sched_ptr, n = 0]() mutable {
    factory::SensorReading r;
    r.sensor = "t";
    r.unit = "degC";
    r.time = sched_ptr->now();
    r.value = sched_ptr->now() < 30.0 ? 180.0 + 0.01 * (n++ % 7) : 1.0e9;
    r.status = "ok";
    return r.encode();
  });

  auto monitor = std::make_shared<factory::QualityMonitor>();
  gateway.set_quality_inspector(
      [monitor](const tangle::Transaction& tx) -> std::optional<double> {
        if (tx.payload_encrypted) return std::nullopt;
        const auto reading = factory::SensorReading::decode(tx.payload);
        if (!reading) return 0.0;
        return monitor->score(reading.value());
      });

  device.start();
  const auto key = device.public_identity().sign_key;
  const int initial = gateway.required_difficulty(key);
  for (double t = 30.0; t <= 120.0; t += 0.5) {
    sched.run_until(t);
    if (gateway.required_difficulty(key) > initial) return t - 30.0;
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("quality_control", argc, argv);
  std::printf("# Sensor data quality control (Section VIII future-work "
              "implementation)\n\n");
  std::printf("## detector characterization (2000 samples per stream)\n");
  std::printf("%-12s %16s %14s\n", "z_thresh", "false_pos_rate", "detect_rate");
  for (const double z : h.quick() ? std::vector<double>{4.5}
                                  : std::vector<double>{3.0, 4.5, 6.0, 9.0}) {
    const auto rates = characterize(z);
    std::printf("%-12.1f %16.4f %14.3f\n", z, rates.false_positive,
                rates.detection);
    if (z == 4.5) {
      h.record("false_positive_rate.z4.5", rates.false_positive, "ratio");
      h.record("detection_rate.z4.5", rates.detection, "ratio");
    }
  }

  const double latency = time_to_throttle();
  std::printf("\n## end to end: device breaks at t=30 s; credit mechanism "
              "raises its PoW difficulty %.1f s later\n",
              latency);
  std::printf("# garbage data is punished through the exact Eqn 4/5 pipeline "
              "as protocol attacks (alpha_q = 0.25 by default)\n");
  h.record("throttle_latency_s", latency, "s");
  const int emit = h.finish();
  return latency >= 0 ? emit : 1;
}
