// Incremental weight engine vs brute-force sweeps.
//
// The consensus loop leans entirely on cumulative weight: tip selection
// walks the DAG by weight and confirmation is a weight threshold. The seed
// implementation re-swept the whole DAG on every query (O(n) per call,
// O(n^2) across a run); the tangle now maintains weights/depths
// incrementally on add and memoizes the approximate-weight map behind a
// generation stamp. This bench quantifies the win on the two hot read
// paths at growing tangle sizes — the acceptance bar is >= 10x at 10k txs.
#include <chrono>
#include <cstdio>

#include "consensus/pow.h"
#include "crypto/identity.h"
#include "tangle/tip_selection.h"

namespace {
using namespace biot;

volatile std::size_t benchmark_sink = 0;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct Bed {
  tangle::Tangle tangle{tangle::Tangle::make_genesis()};
  crypto::Identity identity = crypto::Identity::deterministic(1);
  consensus::Miner miner;
  std::uint64_t seq = 0;
  double build_seconds = 0.0;

  void grow_uniform(int txs, Rng& rng) {
    tangle::UniformRandomTipSelector uniform;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < txs; ++i) {
      const auto [p1, p2] = uniform.select(tangle, rng);
      tangle::Transaction tx;
      tx.type = tangle::TxType::kData;
      tx.sender = identity.public_identity().sign_key;
      tx.parent1 = p1;
      tx.parent2 = p2;
      tx.sequence = seq++;
      tx.timestamp = 0.1 * i;
      tx.difficulty = 1;
      tx.nonce = miner.mine(p1, p2, 1)->nonce;
      tx.signature = identity.sign(tx.signing_bytes());
      if (!tangle.add(tx, 0.1 * i).is_ok()) std::abort();
    }
    build_seconds = seconds_since(start);
  }
};

void confirmation_path(const Bed& bed, double* brute_us, double* incr_us) {
  // Confirmation queries over a spread of transactions (old and new alike),
  // exactly what Gateway::confirmation_status serves per kConfirmQuery.
  const auto& order = bed.tangle.arrival_order();
  const int queries = 200;

  auto run = [&](auto&& weight_fn) {
    const auto start = std::chrono::steady_clock::now();
    for (int q = 0; q < queries; ++q) {
      const auto& id = order[(q * 7919) % order.size()];
      benchmark_sink = benchmark_sink + weight_fn(id);
    }
    return seconds_since(start) * 1e6 / queries;
  };

  *brute_us = run([&](const tangle::TxId& id) {
    return bed.tangle.cumulative_weight_brute_force(id);
  });
  *incr_us =
      run([&](const tangle::TxId& id) { return bed.tangle.cumulative_weight(id); });
}

void tip_selection_path(const Bed& bed, double* brute_us, double* cached_us,
                        double* windowed_us) {
  const int selections = 50;

  {  // Brute force: a cold selector per call recomputes the weight map.
    Rng rng(11);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < selections; ++i) {
      const tangle::WeightedWalkTipSelector cold(0.5);
      benchmark_sink = benchmark_sink + cold.select(bed.tangle, rng).first[0];
    }
    *brute_us = seconds_since(start) * 1e6 / selections;
  }
  {  // Cached: one selector, generation cache hits on the quiescent tangle.
    Rng rng(11);
    const tangle::WeightedWalkTipSelector warm(0.5);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < selections; ++i)
      benchmark_sink = benchmark_sink + warm.select(bed.tangle, rng).first[0];
    *cached_us = seconds_since(start) * 1e6 / selections;
  }
  {  // Windowed: cached map + depth-bounded anchored walk (O(64) per walk).
    Rng rng(11);
    const tangle::WeightedWalkTipSelector windowed(0.5, 64);
    benchmark_sink = benchmark_sink +
                     windowed.select(bed.tangle, rng).first[0];  // warm cache
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < selections; ++i)
      benchmark_sink =
          benchmark_sink + windowed.select(bed.tangle, rng).first[0];
    *windowed_us = seconds_since(start) * 1e6 / selections;
  }
}

}  // namespace

int main() {
  std::printf("# Incremental weight engine vs brute-force DAG sweeps\n");
  std::printf("%-8s %9s | %12s %12s %9s | %12s %12s %12s %9s\n", "txs",
              "build_s", "confirm_bf", "confirm_inc", "speedup", "select_bf",
              "select_cache", "select_win", "speedup");
  std::printf("#        (us/query unless noted)\n");

  for (const int n : {1000, 5000, 10000}) {
    Bed bed;
    Rng rng(42);
    bed.grow_uniform(n, rng);

    double confirm_bf = 0, confirm_inc = 0, select_bf = 0, select_cached = 0,
           select_win = 0;
    confirmation_path(bed, &confirm_bf, &confirm_inc);
    tip_selection_path(bed, &select_bf, &select_cached, &select_win);

    std::printf(
        "%-8d %9.2f | %12.3f %12.3f %8.0fx | %12.1f %12.1f %12.1f %8.0fx\n", n,
        bed.build_seconds, confirm_bf, confirm_inc,
        confirm_inc > 0 ? confirm_bf / confirm_inc : 0.0, select_bf,
        select_cached, select_win,
        select_win > 0 ? select_bf / select_win : 0.0);
  }

  std::printf(
      "\n# confirm_inc is an O(1) record lookup (the add path already paid "
      "the +1 cone propagation); select_cache recomputes the weight map only "
      "when the tangle's generation stamp moves; select_win additionally "
      "bounds each walk to a 64-deep anchored window, so walk cost stops "
      "scaling with tangle size. Acceptance: confirm and windowed-select "
      "speedups >= 10x at 10000 txs.\n");
  return 0;
}
