// Incremental weight engine vs brute-force sweeps.
//
// The consensus loop leans entirely on cumulative weight: tip selection
// walks the DAG by weight and confirmation is a weight threshold. The seed
// implementation re-swept the whole DAG on every query (O(n) per call,
// O(n^2) across a run); the tangle now maintains weights/depths
// incrementally on add and memoizes the approximate-weight map behind a
// generation stamp. This bench quantifies the win on the two hot read
// paths at growing tangle sizes — the acceptance bar is >= 10x at 10k txs.
#include <cstdio>

#include "consensus/pow.h"
#include "crypto/identity.h"
#include "harness.h"
#include "tangle/tip_selection.h"

namespace {
using namespace biot;

struct Bed {
  tangle::Tangle tangle{tangle::Tangle::make_genesis()};
  crypto::Identity identity = crypto::Identity::deterministic(1);
  consensus::Miner miner;
  std::uint64_t seq = 0;
  double build_seconds = 0.0;

  void grow_uniform(int txs, Rng& rng) {
    tangle::UniformRandomTipSelector uniform;
    const obs::WallTimer timer;
    for (int i = 0; i < txs; ++i) {
      const auto [p1, p2] = uniform.select(tangle, rng);
      tangle::Transaction tx;
      tx.type = tangle::TxType::kData;
      tx.sender = identity.public_identity().sign_key;
      tx.parent1 = p1;
      tx.parent2 = p2;
      tx.sequence = seq++;
      tx.timestamp = 0.1 * i;
      tx.difficulty = 1;
      tx.nonce = miner.mine(p1, p2, 1)->nonce;
      tx.signature = identity.sign(tx.signing_bytes());
      if (!tangle.add(tx, 0.1 * i).is_ok()) std::abort();
    }
    build_seconds = timer.elapsed();
  }
};

void confirmation_path(const Bed& bed, double* brute_us, double* incr_us) {
  // Confirmation queries over a spread of transactions (old and new alike),
  // exactly what Gateway::confirmation_status serves per kConfirmQuery.
  const auto& order = bed.tangle.arrival_order();
  const int queries = 200;

  auto run = [&](auto&& weight_fn) {
    const obs::WallTimer timer;
    for (int q = 0; q < queries; ++q) {
      const auto& id = order[(q * 7919) % order.size()];
      bench::do_not_optimize(weight_fn(id));
    }
    return timer.elapsed() * 1e6 / queries;
  };

  *brute_us = run([&](const tangle::TxId& id) {
    return bed.tangle.cumulative_weight_brute_force(id);
  });
  *incr_us =
      run([&](const tangle::TxId& id) { return bed.tangle.cumulative_weight(id); });
}

void tip_selection_path(const Bed& bed, double* brute_us, double* cached_us,
                        double* windowed_us) {
  const int selections = 50;

  {  // Brute force: a cold selector per call recomputes the weight map.
    Rng rng(11);
    const obs::WallTimer timer;
    for (int i = 0; i < selections; ++i) {
      const tangle::WeightedWalkTipSelector cold(0.5);
      bench::do_not_optimize(cold.select(bed.tangle, rng));
    }
    *brute_us = timer.elapsed() * 1e6 / selections;
  }
  {  // Cached: one selector, generation cache hits on the quiescent tangle.
    Rng rng(11);
    const tangle::WeightedWalkTipSelector warm(0.5);
    const obs::WallTimer timer;
    for (int i = 0; i < selections; ++i)
      bench::do_not_optimize(warm.select(bed.tangle, rng));
    *cached_us = timer.elapsed() * 1e6 / selections;
  }
  {  // Windowed: cached map + depth-bounded anchored walk (O(64) per walk).
    Rng rng(11);
    const tangle::WeightedWalkTipSelector windowed(0.5, 64);
    bench::do_not_optimize(windowed.select(bed.tangle, rng));  // warm cache
    const obs::WallTimer timer;
    for (int i = 0; i < selections; ++i)
      bench::do_not_optimize(windowed.select(bed.tangle, rng));
    *windowed_us = timer.elapsed() * 1e6 / selections;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("weight_cache", argc, argv);
  std::printf("# Incremental weight engine vs brute-force DAG sweeps\n");
  std::printf("%-8s %9s | %12s %12s %9s | %12s %12s %12s %9s\n", "txs",
              "build_s", "confirm_bf", "confirm_inc", "speedup", "select_bf",
              "select_cache", "select_win", "speedup");
  std::printf("#        (us/query unless noted)\n");

  for (const int n : h.quick() ? std::vector<int>{500, 2000}
                                : std::vector<int>{1000, 5000, 10000}) {
    Bed bed;
    Rng rng(42);
    bed.grow_uniform(n, rng);

    double confirm_bf = 0, confirm_inc = 0, select_bf = 0, select_cached = 0,
           select_win = 0;
    confirmation_path(bed, &confirm_bf, &confirm_inc);
    tip_selection_path(bed, &select_bf, &select_cached, &select_win);

    std::printf(
        "%-8d %9.2f | %12.3f %12.3f %8.0fx | %12.1f %12.1f %12.1f %8.0fx\n", n,
        bed.build_seconds, confirm_bf, confirm_inc,
        confirm_inc > 0 ? confirm_bf / confirm_inc : 0.0, select_bf,
        select_cached, select_win,
        select_win > 0 ? select_bf / select_win : 0.0);
    const auto tag = ".n" + std::to_string(n);
    h.record("confirm_us.brute" + tag, confirm_bf, "us/op");
    h.record("confirm_us.incremental" + tag, confirm_inc, "us/op");
    h.record("select_us.brute" + tag, select_bf, "us/op");
    h.record("select_us.windowed" + tag, select_win, "us/op");
  }

  std::printf(
      "\n# confirm_inc is an O(1) record lookup (the add path already paid "
      "the +1 cone propagation); select_cache recomputes the weight map only "
      "when the tangle's generation stamp moves; select_win additionally "
      "bounds each walk to a 64-deep anchored window, so walk cost stops "
      "scaling with tangle size. Acceptance: confirm and windowed-select "
      "speedups >= 10x at 10000 txs.\n");
  return h.finish();
}
