// DAG-vs-chain throughput comparison — the quantitative claim behind the
// paper's Sections II and IV: "the synchronous consensus model in
// chain-structured blockchains cannot make full use of bandwidth in IoT
// systems" / "we utilize the DAG-structured blockchain ... which can achieve
// a high throughput".
//
// Both systems are driven by the same smart-factory workload (N devices,
// sensor cadence 0.5 s) on the same simulated clock:
//
//  - tangle: the full B-IoT stack (gateways, credit PoW, gossip). Every
//    device attaches its own transaction after its own PoW — concurrency
//    scales with the device count.
//  - chain: a satoshi-style baseline where a gateway-class miner produces
//    blocks of at most B transactions at a target interval; a transaction
//    confirms k blocks deep. Throughput saturates at B / interval no matter
//    how many devices submit.
//
// Reported per device count: accepted TPS, confirmed TPS and mean
// confirmation latency.
#include <cstdio>
#include <deque>
#include <unordered_set>
#include <vector>

#include "chain/blockchain.h"
#include "factory/scenario.h"
#include "harness.h"

namespace {
using namespace biot;

struct TangleResult {
  double tps = 0.0;
  double confirm_tps = 0.0;
  double mean_confirm_latency = 0.0;
};

// Confirmation in the tangle: cumulative weight >= threshold. Computed
// post-hoc from the final DAG: for each transaction, the time at which its
// (threshold)-th distinct descendant arrived.
TangleResult run_tangle(int num_devices, double horizon,
                        std::size_t weight_threshold) {
  factory::ScenarioConfig config;
  config.num_devices = num_devices;
  config.num_gateways = 2;
  config.distribute_keys = false;  // throughput measurement only
  config.device.collect_interval = 0.5;
  config.device.profile = sim::DeviceProfile::pi3b_fig9();
  factory::SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(horizon);

  TangleResult result;
  const double window = horizon - 10.0;  // skip warm-up
  result.tps = factory.throughput(10.0, horizon);

  // Confirmation latency over the final replica of gateway 0.
  const auto& tangle = factory.gateway(0).tangle();
  const auto& order = tangle.arrival_order();
  std::vector<double> latencies;
  std::size_t confirmed = 0;
  for (const auto& id : order) {
    const auto* rec = tangle.find(id);
    if (rec->tx.type != tangle::TxType::kData) continue;
    if (rec->arrival < 10.0) continue;
    // BFS over approvers collecting descendant arrival times.
    std::vector<double> arrivals;
    std::deque<tangle::TxId> frontier{id};
    std::unordered_set<tangle::TxId, FixedBytesHash<32>> seen{id};
    while (!frontier.empty()) {
      const auto cur = frontier.front();
      frontier.pop_front();
      for (const auto& ap : tangle.find(cur)->approvers) {
        if (seen.insert(ap).second) {
          arrivals.push_back(tangle.find(ap)->arrival);
          frontier.push_back(ap);
        }
      }
    }
    if (arrivals.size() + 1 < weight_threshold) continue;  // never confirmed
    std::sort(arrivals.begin(), arrivals.end());
    const double confirm_time = arrivals[weight_threshold - 2];
    latencies.push_back(confirm_time - rec->arrival);
    ++confirmed;
  }
  result.confirm_tps = static_cast<double>(confirmed) / window;
  result.mean_confirm_latency = obs::mean(latencies);
  return result;
}

struct ChainResult {
  double tps = 0.0;           // transactions placed into main-chain blocks /s
  double confirm_tps = 0.0;   // k-deep confirmed /s
  double mean_confirm_latency = 0.0;
  std::size_t mempool_backlog = 0;
};

// Synchronous baseline: devices enqueue transactions; a single gateway-class
// miner seals blocks of <= block_capacity txs at exponential intervals.
ChainResult run_chain(int num_devices, double horizon, double block_interval,
                      std::size_t block_capacity, std::uint64_t k_confirm) {
  sim::Scheduler sched;
  Rng rng(42);
  chain::Blockchain blockchain(chain::Blockchain::make_genesis());
  const auto miner_key =
      crypto::Identity::deterministic(7).public_identity().sign_key;

  // Pre-built device transactions are expensive to sign at scale; reuse one
  // signed tx per device and count submissions abstractly instead. For the
  // ledger-of-record we still seal real blocks with real PoW.
  struct Pending {
    double submit_time;
  };
  std::deque<Pending> mempool;
  std::vector<double> block_times;         // per tx: time it entered a block
  std::vector<double> submit_times;        // matching submit time
  std::vector<std::uint64_t> tx_heights;   // matching containing height
  std::vector<double> height_mined_at{0.0};  // height -> sealing time
  std::uint64_t mined_height = 0;
  chain::BlockId head = blockchain.head();

  // Device submission processes (Poisson-ish around the sensor cadence).
  for (int d = 0; d < num_devices; ++d) {
    // Stagger starts; each device submits every ~0.5 s.
    double t = 0.1 + 0.01 * d;
    while (t < horizon) {
      sched.at(t, [&mempool, t] { mempool.push_back(Pending{t}); });
      t += 0.45 + 0.1 * rng.uniform();
    }
  }

  // Miner process.
  std::function<void()> mine_next = [&] {
    const double interval = rng.exponential(block_interval);
    sched.after(interval, [&] {
      chain::Block block;
      block.prev = head;
      block.height = ++mined_height;
      block.timestamp = sched.now();
      block.miner = miner_key;
      block.difficulty = 8;  // gateway-class miner, fast host mining
      const std::size_t take = std::min(block_capacity, mempool.size());
      for (std::size_t i = 0; i < take; ++i) {
        block_times.push_back(sched.now());
        submit_times.push_back(mempool.front().submit_time);
        tx_heights.push_back(mined_height);
        mempool.pop_front();
      }
      chain::mine_block(block, mined_height << 24);
      if (!blockchain.add(block).is_ok()) std::abort();
      head = block.id();
      height_mined_at.push_back(sched.now());
      // Mine past the workload horizon so in-window blocks reach k depth.
      if (sched.now() < horizon + (k_confirm + 2) * block_interval) mine_next();
    });
  };
  mine_next();

  sched.run_until(horizon + (k_confirm + 3) * block_interval);

  ChainResult result;
  const double window = horizon - 10.0;
  std::size_t placed = 0, confirmed = 0;
  std::vector<double> latencies;
  for (std::size_t i = 0; i < block_times.size(); ++i) {
    // Throughput: transactions sealed into blocks during the window.
    if (block_times[i] >= 10.0 && block_times[i] <= horizon) ++placed;
    // Confirmation: the tx's block is k blocks deep; latency from submit.
    if (submit_times[i] < 10.0 || submit_times[i] > horizon) continue;
    const std::uint64_t deep = tx_heights[i] + k_confirm;
    if (deep < height_mined_at.size()) {
      ++confirmed;
      latencies.push_back(height_mined_at[deep] - submit_times[i]);
    }
  }
  result.tps = static_cast<double>(placed) / window;
  result.confirm_tps = static_cast<double>(confirmed) / window;
  result.mean_confirm_latency = obs::mean(latencies);
  result.mempool_backlog = mempool.size();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("dag_vs_chain", argc, argv);
  std::printf("# DAG (B-IoT tangle) vs chain-structured baseline under the "
              "same smart-factory workload\n");
  std::printf("# chain: 10 s expected block interval, 20 txs/block, 6-block "
              "confirmation; tangle: weight-5 confirmation\n");
  std::printf("%-9s | %9s %12s %12s | %9s %12s %12s %9s\n", "devices",
              "dag_tps", "dag_ctps", "dag_lat_s", "chain_tps", "chain_ctps",
              "chain_lat_s", "backlog");

  const double horizon = h.scale(60.0, 30.0);
  for (const int devices : h.quick() ? std::vector<int>{2, 8}
                                     : std::vector<int>{2, 4, 8, 16, 32}) {
    const auto dag = run_tangle(devices, horizon, 5);
    const auto chain = run_chain(devices, horizon, 10.0, 20, 6);
    std::printf("%-9d | %9.2f %12.2f %12.2f | %9.2f %12.2f %12.2f %9zu\n",
                devices, dag.tps, dag.confirm_tps, dag.mean_confirm_latency,
                chain.tps, chain.confirm_tps, chain.mean_confirm_latency,
                chain.mempool_backlog);
    const auto tag = ".d" + std::to_string(devices);
    h.record("dag_tps" + tag, dag.tps, "tx/s");
    h.record("chain_tps" + tag, chain.tps, "tx/s");
  }

  std::printf("\n# expected shape: dag_tps grows ~linearly with devices; "
              "chain_tps saturates at capacity/interval = 2.0 tps and the "
              "mempool backlog explodes; dag confirmation latency stays "
              "seconds-scale vs the chain's k*interval floor (60 s).\n");
  return h.finish();
}
