// Gossip resilience under message loss: how much replica divergence does a
// lossy wireless network cause, and how completely does anti-entropy sync
// close it? (Supports the availability claims of Section VI-C on networks
// far worse than the paper's lab LAN.)
#include <cstdio>

#include "factory/scenario.h"
#include "harness.h"

namespace {
using namespace biot;

struct Row {
  std::size_t replica0 = 0;
  std::size_t replica1 = 0;
  std::size_t divergence = 0;   // ids on 0 missing from 1 and vice versa
  std::size_t healed = 0;       // divergence after sync rounds
  double tps = 0.0;
};

std::size_t divergence(const node::Gateway& a, const node::Gateway& b) {
  std::size_t missing = 0;
  for (const auto& id : a.tangle().arrival_order())
    if (!b.tangle().contains(id)) ++missing;
  for (const auto& id : b.tangle().arrival_order())
    if (!a.tangle().contains(id)) ++missing;
  return missing;
}

Row run(double loss, bool with_sync) {
  factory::ScenarioConfig config;
  config.num_devices = 6;
  config.num_gateways = 2;
  config.distribute_keys = false;
  config.device.collect_interval = 0.5;
  config.device.profile = sim::DeviceProfile::pi3b_fig9();
  config.gateway.sync_interval = with_sync ? 3.0 : 0.0;

  factory::SmartFactory factory(config);
  factory.bootstrap();
  factory.network().set_loss_rate(loss);
  factory.run_until(45.0);

  Row row;
  row.tps = factory.throughput(5.0, 45.0);
  row.divergence = divergence(factory.gateway(0), factory.gateway(1));

  // Stop the loss (or just give sync time) and measure residual divergence.
  factory.network().set_loss_rate(0.0);
  factory.run_until(60.0);
  row.healed = divergence(factory.gateway(0), factory.gateway(1));
  row.replica0 = factory.gateway(0).tangle().size();
  row.replica1 = factory.gateway(1).tangle().size();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("gossip_resilience", argc, argv);
  std::printf("# Replica divergence under message loss, with and without "
              "anti-entropy (45 s lossy + 15 s clean tail)\n");
  std::printf("%-8s %-6s | %8s %10s %12s %12s\n", "loss", "sync", "tps",
              "diverged", "after_tail", "replicas");

  for (const double loss : h.quick() ? std::vector<double>{0.0, 0.15}
                                     : std::vector<double>{0.0, 0.05, 0.15,
                                                           0.30}) {
    for (const bool sync : {false, true}) {
      const auto row = run(loss, sync);
      std::printf("%-8.2f %-6s | %8.2f %10zu %12zu %7zu/%zu\n", loss,
                  sync ? "on" : "off", row.tps, row.divergence, row.healed,
                  row.replica0, row.replica1);
      if (loss == 0.15) {
        const char* tag = sync ? "sync" : "nosync";
        h.record(std::string("tps.loss15.") + tag, row.tps, "tx/s");
        h.record(std::string("residual_divergence.loss15.") + tag,
                 static_cast<double>(row.healed), "txs");
      }
    }
  }

  std::printf("\n# expected: without sync, loss leaves permanent divergence "
              "(gossip is fire-and-forget); with sync, divergence collapses "
              "to 0 once the inventory exchange runs — at any loss rate.\n");
  return h.finish();
}
