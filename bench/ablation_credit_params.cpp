// Ablation over the credit mechanism's tunable parameters (Section IV-B:
// "We can distribute the weight of these two parts by adjusting lambda1 and
// lambda2. If we want to adopt strict punishment strategy ... set lambda2
// larger"; Eqn 5: alpha_l / alpha_d "can be adjusted according to the
// requirement of sensitivity to malicious behaviours").
//
// For each parameter setting we run the closed-loop single-device scenario,
// inject one double-spend at t=24 s, and report:
//   punished_span — seconds between D hitting max and returning <= initial
//   avg_pow       — average PoW seconds per transaction over the 90 s window
//   honest_avg    — same metric for an attack-free run (reward-side effect)
#include <cstdio>

#include "harness.h"
#include "node/gateway.h"
#include "node/light_node.h"
#include "node/manager.h"

namespace {
using namespace biot;

struct Outcome {
  double punished_span = -1.0;  // -1: never recovered in the horizon
  double avg_pow = 0.0;
};

Outcome run(const consensus::CreditParams& params, bool attack) {
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.002), Rng(5));

  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto gateway_identity = crypto::Identity::deterministic(2);

  node::GatewayConfig gw_config;
  gw_config.credit = params;
  node::Gateway gateway(1, gateway_identity,
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), network, gw_config);
  node::Manager manager(2, manager_identity, gateway, network);
  gateway.attach();
  manager.attach();

  node::LightNodeConfig dev_config;
  dev_config.profile = sim::DeviceProfile::pi3b_fig9();
  dev_config.collect_interval = 0.5;
  node::LightNode device(10, crypto::Identity::deterministic(100), 1, network,
                         dev_config);
  if (!manager.authorize({device.public_identity()}).is_ok()) std::abort();
  device.start();
  if (attack) device.schedule_attack(24.0, node::AttackKind::kDoubleSpend);

  // Sample the required difficulty every second for the recovery metric.
  const auto key = device.public_identity().sign_key;
  double punished_from = -1.0, recovered_at = -1.0;
  for (int t = 1; t <= 90; ++t) {
    sched.at(static_cast<double>(t), [&, t] {
      const int d = gateway.required_difficulty(key);
      if (punished_from < 0) {
        if (d >= params.max_difficulty) punished_from = t;
      } else if (recovered_at < 0 && d <= params.initial_difficulty) {
        recovered_at = t;
      }
    });
  }

  sched.run_until(90.0);

  Outcome out;
  out.avg_pow = obs::mean(device.stats().pow_durations);
  if (punished_from > 0 && recovered_at > 0)
    out.punished_span = recovered_at - punished_from;
  else if (punished_from > 0)
    out.punished_span = -1.0;
  return out;
}

void sweep_lambda2(bench::Harness& h) {
  std::printf("\n## lambda2 sweep (punishment weight; paper default 0.5)\n");
  std::printf("%-10s %14s %12s %12s\n", "lambda2", "punished_s", "avg_pow_s",
              "honest_avg_s");
  for (const double lambda2 : h.quick() ? std::vector<double>{0.5}
                                        : std::vector<double>{0.1, 0.25, 0.5,
                                                              1.0, 2.0}) {
    consensus::CreditParams p;
    p.lambda2 = lambda2;
    const auto attacked = run(p, true);
    const auto honest = run(p, false);
    if (attacked.punished_span >= 0)
      std::printf("%-10.2f %14.0f %12.3f %12.3f\n", lambda2,
                  attacked.punished_span, attacked.avg_pow, honest.avg_pow);
    else
      std::printf("%-10.2f %14s %12.3f %12.3f\n", lambda2, ">horizon",
                  attacked.avg_pow, honest.avg_pow);
    if (lambda2 == 0.5) {
      h.record("punished_span_s.lambda2_default", attacked.punished_span, "s");
      h.record("honest_avg_pow_s.lambda2_default", honest.avg_pow, "s");
    }
  }
}

void sweep_alpha_double(bench::Harness& h) {
  std::printf("\n## alpha_d sweep (double-spend coefficient; paper default 1)\n");
  std::printf("%-10s %14s %12s\n", "alpha_d", "punished_s", "avg_pow_s");
  for (const double alpha : h.quick() ? std::vector<double>{1.0}
                                      : std::vector<double>{0.25, 0.5, 1.0,
                                                            2.0, 4.0}) {
    consensus::CreditParams p;
    p.alpha_double = alpha;
    const auto attacked = run(p, true);
    if (attacked.punished_span >= 0)
      std::printf("%-10.2f %14.0f %12.3f\n", alpha, attacked.punished_span,
                  attacked.avg_pow);
    else
      std::printf("%-10.2f %14s %12.3f\n", alpha, ">horizon", attacked.avg_pow);
    if (alpha == 1.0)
      h.record("punished_span_s.alpha_d_default", attacked.punished_span, "s");
  }
}

void sweep_delta_t(bench::Harness& h) {
  std::printf("\n## dT sweep (credit window; paper default 30 s)\n");
  std::printf("%-10s %14s %12s %12s\n", "dT_s", "punished_s", "avg_pow_s",
              "honest_avg_s");
  for (const double dt : h.quick() ? std::vector<double>{30.0}
                                   : std::vector<double>{10.0, 20.0, 30.0,
                                                         60.0}) {
    consensus::CreditParams p;
    p.delta_t = dt;
    const auto attacked = run(p, true);
    const auto honest = run(p, false);
    if (attacked.punished_span >= 0)
      std::printf("%-10.0f %14.0f %12.3f %12.3f\n", dt, attacked.punished_span,
                  attacked.avg_pow, honest.avg_pow);
    else
      std::printf("%-10.0f %14s %12.3f %12.3f\n", dt, ">horizon",
                  attacked.avg_pow, honest.avg_pow);
    if (dt == 30.0)
      h.record("punished_span_s.dT_default", attacked.punished_span, "s");
  }
}

void sweep_slope(bench::Harness& h) {
  std::printf("\n## difficulty_slope sweep (reward steepness; ours, not in "
              "the paper)\n");
  std::printf("%-10s %12s\n", "slope", "honest_avg_s");
  for (const double s : h.quick() ? std::vector<double>{2.0}
                                  : std::vector<double>{0.5, 1.0, 2.0, 3.0}) {
    consensus::CreditParams p;
    p.difficulty_slope = s;
    const auto honest = run(p, false);
    std::printf("%-10.1f %12.3f\n", s, honest.avg_pow);
    if (s == 2.0) h.record("honest_avg_pow_s.slope2", honest.avg_pow, "s");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("ablation_credit_params", argc, argv);
  std::printf("# Credit-mechanism parameter ablation (one double-spend at "
              "t=24 s, 90 s horizon, Pi 3B profile)\n");
  sweep_lambda2(h);
  sweep_alpha_double(h);
  sweep_delta_t(h);
  sweep_slope(h);
  return h.finish();
}
