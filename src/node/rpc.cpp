#include "node/rpc.h"

#include "common/codec.h"

namespace biot::node {

Bytes RpcMessage::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(request_id);
  w.raw(sender_key.view());
  w.blob(body);
  return std::move(w).take();
}

Result<RpcMessage> RpcMessage::decode(ByteView wire) {
  Reader r(wire);
  RpcMessage msg;

  const auto type_byte = r.u8();
  if (!type_byte) return type_byte.status();
  if (type_byte.value() < 1 ||
      type_byte.value() > static_cast<std::uint8_t>(MsgType::kOfflineDrainResult))
    return Status::error(ErrorCode::kInvalidArgument, "rpc: bad message type");
  msg.type = static_cast<MsgType>(type_byte.value());

  const auto rid = r.u64();
  if (!rid) return rid.status();
  msg.request_id = rid.value();

  const auto key = r.raw(32);
  if (!key) return key.status();
  msg.sender_key = crypto::Ed25519PublicKey::from_view(key.value());

  auto body = r.blob();
  if (!body) return body.status();
  msg.body = std::move(body).take();

  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "rpc: trailing bytes");
  return msg;
}

Bytes TipsResponse::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(status));
  w.str(message);
  w.raw(tip1.view());
  w.raw(tip2.view());
  w.u8(required_difficulty);
  return std::move(w).take();
}

Result<TipsResponse> TipsResponse::decode(ByteView wire) {
  Reader r(wire);
  TipsResponse out;
  const auto st = r.u8();
  if (!st) return st.status();
  out.status = static_cast<ErrorCode>(st.value());
  auto msg = r.str();
  if (!msg) return msg.status();
  out.message = std::move(msg).take();
  const auto t1 = r.raw(32);
  if (!t1) return t1.status();
  out.tip1 = tangle::TxId::from_view(t1.value());
  const auto t2 = r.raw(32);
  if (!t2) return t2.status();
  out.tip2 = tangle::TxId::from_view(t2.value());
  const auto d = r.u8();
  if (!d) return d.status();
  out.required_difficulty = d.value();
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "tips: trailing bytes");
  return out;
}

Bytes ConfirmationInfo::encode() const {
  Writer w;
  w.raw(tx_id.view());
  w.u8(known ? 1 : 0);
  w.u8(milestone_confirmed ? 1 : 0);
  w.u8(weight_confirmed ? 1 : 0);
  w.u64(cumulative_weight);
  return std::move(w).take();
}

Result<ConfirmationInfo> ConfirmationInfo::decode(ByteView wire) {
  Reader r(wire);
  ConfirmationInfo out;
  const auto id = r.raw(32);
  if (!id) return id.status();
  out.tx_id = tangle::TxId::from_view(id.value());
  const auto known = r.u8();
  if (!known) return known.status();
  out.known = known.value() != 0;
  const auto by_milestone = r.u8();
  if (!by_milestone) return by_milestone.status();
  out.milestone_confirmed = by_milestone.value() != 0;
  const auto by_weight = r.u8();
  if (!by_weight) return by_weight.status();
  out.weight_confirmed = by_weight.value() != 0;
  const auto weight = r.u64();
  if (!weight) return weight.status();
  out.cumulative_weight = weight.value();
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "confirm: trailing bytes");
  return out;
}

Bytes DataQuery::encode() const {
  Writer w;
  w.raw(sender.view());
  w.f64(since);
  w.u32(max_results);
  return std::move(w).take();
}

Result<DataQuery> DataQuery::decode(ByteView wire) {
  Reader r(wire);
  DataQuery out;
  const auto sender = r.raw(32);
  if (!sender) return sender.status();
  out.sender = crypto::Ed25519PublicKey::from_view(sender.value());
  const auto since = r.f64();
  if (!since) return since.status();
  out.since = since.value();
  const auto max = r.u32();
  if (!max) return max.status();
  out.max_results = max.value();
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "query: trailing bytes");
  return out;
}

Bytes DataResponse::encode() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(transactions.size()));
  for (const auto& tx : transactions) w.blob(tx.encode());
  return std::move(w).take();
}

Result<DataResponse> DataResponse::decode(ByteView wire) {
  Reader r(wire);
  const auto count = r.u32();
  if (!count) return count.status();
  DataResponse out;
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    const auto tx_wire = r.blob();
    if (!tx_wire) return tx_wire.status();
    auto tx = tangle::Transaction::decode(tx_wire.value());
    if (!tx) return tx.status();
    out.transactions.push_back(std::move(tx).take());
  }
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "data: trailing bytes");
  return out;
}

Bytes OfflineDrainRequest::encode() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(transactions.size()));
  for (const auto& tx : transactions) w.blob(tx.encode());
  return std::move(w).take();
}

Result<OfflineDrainRequest> OfflineDrainRequest::decode(ByteView wire) {
  Reader r(wire);
  const auto count = r.u32();
  if (!count) return count.status();
  OfflineDrainRequest out;
  // Attacker-controlled count: bound the reserve by what the body could
  // physically carry (every blob costs at least its length prefix).
  out.transactions.reserve(std::min<std::size_t>(
      count.value(), r.remaining() / sizeof(std::uint32_t)));
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    const auto tx_wire = r.blob();
    if (!tx_wire) return tx_wire.status();
    auto tx = tangle::Transaction::decode(tx_wire.value());
    if (!tx) return tx.status();
    out.transactions.push_back(std::move(tx).take());
  }
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "drain: trailing bytes");
  return out;
}

Bytes OfflineDrainResult::encode() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& item : items) {
    w.u8(static_cast<std::uint8_t>(item.status));
    w.raw(item.tx_id.view());
  }
  return std::move(w).take();
}

Result<OfflineDrainResult> OfflineDrainResult::decode(ByteView wire) {
  Reader r(wire);
  const auto count = r.u32();
  if (!count) return count.status();
  OfflineDrainResult out;
  out.items.reserve(std::min<std::size_t>(count.value(), r.remaining() / 33));
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    OfflineDrainResult::Item item;
    const auto st = r.u8();
    if (!st) return st.status();
    item.status = static_cast<ErrorCode>(st.value());
    const auto id = r.raw(32);
    if (!id) return id.status();
    item.tx_id = tangle::TxId::from_view(id.value());
    out.items.push_back(item);
  }
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument,
                         "drain result: trailing bytes");
  return out;
}

Bytes SubmitResult::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(status));
  w.str(message);
  w.raw(tx_id.view());
  return std::move(w).take();
}

Result<SubmitResult> SubmitResult::decode(ByteView wire) {
  Reader r(wire);
  SubmitResult out;
  const auto st = r.u8();
  if (!st) return st.status();
  out.status = static_cast<ErrorCode>(st.value());
  auto msg = r.str();
  if (!msg) return msg.status();
  out.message = std::move(msg).take();
  const auto id = r.raw(32);
  if (!id) return id.status();
  out.tx_id = tangle::TxId::from_view(id.value());
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "submit: trailing bytes");
  return out;
}

}  // namespace biot::node
