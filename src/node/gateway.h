// Gateway (full node). Maintains a tangle replica, enforces admission
// control against the manager-published authorization list, enforces the
// difficulty policy, detects malicious behaviours (feeding the credit
// model), applies the ledger, answers light-node RPCs and gossips accepted
// transactions to peer gateways (paper Section IV-A "Gateways").
//
// All five transaction ingress paths — service submission, offloaded
// attach, gossip, anti-entropy sync and cold-start replay — run the SAME
// staged AdmissionPipeline (node/admission.h); the gateway itself only owns
// transport concerns: RPC framing, rate limiting, gossip relay, orphan
// buffering and the sync protocol.
#pragma once

#include <memory>
#include <vector>

#include "auth/authorization.h"
#include "consensus/credit.h"
#include "consensus/detectors.h"
#include "consensus/policy.h"
#include "consensus/pow.h"
#include "node/admission.h"
#include "node/offline.h"
#include "node/rpc.h"
#include "sim/network.h"
#include "tangle/ledger.h"
#include "tangle/milestones.h"
#include "tangle/tangle.h"
#include "tangle/tip_selection.h"

namespace biot::node {

/// Hot-path latency/size distributions owned by the gateway (the counter
/// side lives in GatewayStats). The time domain is part of each name:
/// _wall_s histograms measure real CPU cost, _sim_s ones measure protocol
/// latency on the simulated clock.
struct GatewayMetrics {
  AdmissionMetrics admission;      // per-stage wall latencies
  BatchAdmissionMetrics admission_batch;  // admit_many phase split + sizes
  obs::Histogram pow_grind_wall_s; // offloaded-PoW grind (handle_attach)
  obs::Histogram sync_rtt_sim_s;   // summary sent -> missing txs received
  obs::Histogram tip_walk_steps{obs::HistogramSpec::size()};

  /// Registers everything under `scope` (e.g. "gateway.g0").
  void attach_to(const obs::Scope& scope) const;
};

struct GatewayConfig {
  /// Difficulty policy: kCredit (the paper's mechanism) or kFixed baseline.
  enum class Policy { kCredit, kFixed } policy = Policy::kCredit;
  int fixed_difficulty = 11;  // used when policy == kFixed
  consensus::CreditParams credit;
  consensus::LazyTipPolicy lazy;
  /// Cumulative-weight threshold for confirmation queries.
  std::size_t confirmation_weight = 5;
  /// Tip selection handed to light nodes: uniform random over tips, or the
  /// IOTA-style alpha-weighted MCMC walk (lazy-tip resistant; its weight map
  /// is generation-cached, so a selection costs O(walk) unless the tangle
  /// changed — see bench/weight_cache_bench).
  enum class TipStrategy { kUniform, kWeightedWalk } tips = TipStrategy::kUniform;
  double walk_alpha = 0.5;  // used when tips == kWeightedWalk
  /// Worker threads for offloaded-PoW attach requests (sharded nonce ranges,
  /// first-found-wins). 1 = serial mining with a deterministic nonce; >1
  /// trades nonce determinism for wall-clock speed (attempt accounting stays
  /// exact either way); 0 = hardware concurrency.
  unsigned pow_threads = 1;
  /// Worker lanes for the admission read phase (structural precheck +
  /// batched Ed25519 verification fanned out by admit_many). 1 = the
  /// deterministic InlineExecutor — every batch runs the read phase at the
  /// call site, byte-identical to the serial reference, the sim/test
  /// default; >1 = a ThreadPoolExecutor with that many workers (the commit
  /// phase stays serialized either way, so verdicts and state are identical
  /// at any width); 0 = hardware concurrency.
  unsigned admission_threads = 1;
  /// Upper bound on one admit_many slice. Bursts larger than this are
  /// split, bounding token/scratch memory per batch and keeping the batch
  /// latency histograms meaningful; orphan adoption runs between slices.
  std::size_t admission_max_batch = 256;
  /// Anti-entropy: every `sync_interval` seconds each gateway sends its
  /// constant-size inventory summary (count + XOR digest + invertible
  /// sketch, tangle/reconcile.h) to one peer (round-robin); the peer decodes
  /// the exact difference and ships whatever the sender is missing, falling
  /// back to a full-inventory exchange when the difference exceeds the
  /// sketch capacity. Heals partitions completely where live gossip alone
  /// cannot backfill missed history. 0 disables.
  Duration sync_interval = 0.0;
  /// Per-sender request rate limit (token bucket, requests/second) applied
  /// to the service edge before any other processing — even replying
  /// "unauthorized" costs cycles, so a DDoS flood is shed here. 0 disables.
  double rate_limit_per_sender = 0.0;
  double rate_limit_burst = 10.0;
  /// Gossip can deliver a child before its parents (per-message latency is
  /// random); such orphans are buffered and retried when the parent lands
  /// instead of being dropped. Bounds memory under attack.
  std::size_t max_orphans = 256;
  /// Sensor-data quality inspector (future-work extension, Section VIII).
  /// Configured here (not only via set_quality_inspector) so that a
  /// cold-start replay judges historical payloads exactly as the live
  /// gateway did — required for credit re-derivability. A zero score is
  /// recorded as Behaviour::kPoorQuality against the sender; the
  /// transaction still attaches (bad data is not a protocol violation),
  /// but the sender's PoW gets harder.
  QualityInspector quality_inspector;
};

class Gateway {
 public:
  Gateway(sim::NodeId id, const crypto::Identity& identity,
          const crypto::Ed25519PublicKey& manager_key,
          const tangle::Transaction& genesis, sim::Network& network,
          GatewayConfig config = {});

  /// Cold start from a persisted replica (storage::load_tangle). All derived
  /// state — ledger slots and balances, the authorization list, milestone
  /// confirmations, stats counters and every node's credit history — is
  /// REBUILT by running the restored history through the same
  /// AdmissionPipeline as live traffic (Ingress::kReplay), in arrival
  /// order. This is the paper's tamper-proof credit property made
  /// operational: "the credit value is calculated based on transaction
  /// weight and abnormal behaviours, which can be reflected from blockchain
  /// records" — a restarted gateway derives it from chain.
  /// The coordinator key (when used) must be passed here so historical
  /// milestones are honoured during the replay.
  Gateway(sim::NodeId id, const crypto::Identity& identity,
          const crypto::Ed25519PublicKey& manager_key,
          tangle::Tangle restored, sim::Network& network,
          GatewayConfig config = {},
          const std::optional<crypto::Ed25519PublicKey>& coordinator = {});

  /// Registers the gateway's message handler with the network.
  void attach();

  /// Crash: detaches from the network and drops all in-flight state
  /// (orphan buffer, rate-limiter buckets, pending sync ticks). The tangle
  /// replica itself is left in place only so the driver can serialize it —
  /// a real crash persists exactly the admitted history, nothing else.
  /// Idempotent; restart() or attach() brings the gateway back.
  void stop();

  /// Cold restart from a persisted replica, in place: every derived-state
  /// member is reset and the restored history is re-run through a fresh
  /// AdmissionPipeline (Ingress::kReplay), exactly like the restore
  /// constructor — then the gateway re-attaches and resumes sync ticks.
  /// In-place (rather than destroying the object) because Manager and
  /// Coordinator hold references to this gateway across the outage.
  void restart(const tangle::Tangle& restored);

  /// False between stop() and the next restart()/attach().
  bool running() const { return running_; }

  sim::NodeId node_id() const { return id_; }
  void add_peer(sim::NodeId peer) { peers_.push_back(peer); }

  const tangle::Tangle& tangle() const { return tangle_; }
  const tangle::Ledger& ledger() const { return ledger_; }
  tangle::Ledger& ledger() { return ledger_; }
  const auth::AuthRegistry& auth_registry() const { return auth_; }
  /// Registers a co-manager (the paper permits several per factory).
  void add_manager(const crypto::Ed25519PublicKey& key) { auth_.add_manager(key); }

  /// Registers the Coordinator key: only this identity may attach milestone
  /// transactions. Milestone-based confirmation is disabled until set.
  void set_coordinator(const crypto::Ed25519PublicKey& key) {
    coordinator_key_ = key;
  }
  const tangle::MilestoneTracker& milestones() const { return milestones_; }

  /// Confirmation status under both rules (weight threshold + milestones).
  ConfirmationInfo confirmation_status(const tangle::TxId& id) const;
  const consensus::CreditRegistry& credit_registry() const { return credit_; }
  /// Settled offline exchanges, (issuer, outbox_seq) -> settling tx.
  /// Derived from the tangle by OfflineSettlementObserver, so it is
  /// replica-convergent and rebuilt by restart() like all derived state.
  const OfflineRegistry& offline_registry() const { return offline_registry_; }
  const GatewayStats& stats() const { return stats_; }
  const GatewayMetrics& metrics() const { return metrics_; }

  /// Exports this gateway's stats and metrics under `scope` (the
  /// SmartFactory binds "gateway.g<i>"). Instruments are attached by
  /// address, so one bind survives restart()'s in-place stats reset.
  void bind_metrics(const obs::Scope& scope) const {
    stats_.attach_to(scope);
    metrics_.attach_to(scope);
  }

  /// Weight oracle over this gateway's tangle replica: weight(tx) = 1 +
  /// direct approvals received so far.
  consensus::WeightOracle weight_oracle() const;

  /// Difficulty currently required of `sender` under the active policy.
  int required_difficulty(const tangle::AccountKey& sender) const;

  /// Local (non-RPC) submission path used by in-process callers and tests.
  /// Performs the exact same admission pipeline as a kSubmitTx message.
  [[nodiscard]] Status submit(const tangle::Transaction& tx);

  /// Batch ingress: admits `txs` through the two-phase pipeline
  /// (AdmissionPipeline::admit_many on admission_threads lanes) in slices
  /// of at most admission_max_batch, preserving input order; returns one
  /// status per transaction. Sync backfill bursts route through this, and
  /// in-process callers (benches, bulk feeds) can use it directly. Orphans
  /// unblocked by a newly attached transaction are adopted after its slice
  /// commits.
  [[nodiscard]] std::vector<Status> admit_many(
      const std::vector<tangle::Transaction>& txs, Ingress ingress);

  /// Installs (or replaces) the data-quality inspector post-construction.
  /// Prefer GatewayConfig::quality_inspector so cold-start replay sees it.
  void set_quality_inspector(QualityInspector inspector) {
    quality_inspector_ = std::move(inspector);
  }

  /// Registers an additional derived-state observer on the admission
  /// pipeline (metrics, tracing, extra detectors). Runs after the built-in
  /// observers, in registration order.
  void add_attach_observer(std::unique_ptr<AttachObserver> observer) {
    pipeline_->add_observer(std::move(observer));
  }

  /// Tip pair this gateway would hand out right now.
  tangle::TipPair select_tips();

  /// Live token buckets held by the rate limiter (bounded: idle buckets are
  /// evicted once they would have refilled completely).
  std::size_t rate_bucket_count() const { return buckets_.size(); }
  /// Out-of-order transactions currently buffered awaiting a parent.
  std::size_t orphan_count() const { return orphan_count_; }

  /// Operational local snapshot (the "storage limitations" future-work item,
  /// live): archives every transaction older than `cutoff` through
  /// `archive_tx` (arrival order), then swaps the hot tangle for one rooted
  /// at a snapshot genesis committing to the current ledger/authorization
  /// state. Ledger and credit state carry over untouched; devices re-anchor
  /// on the snapshot genesis at their next tips request. In a multi-gateway
  /// deployment all replicas must prune at an agreed point (e.g. a
  /// milestone) or gossip for in-flight history will dangle. Returns the
  /// number of archived transactions.
  std::size_t snapshot_and_prune(
      TimePoint cutoff,
      const std::function<void(const tangle::Transaction&, TimePoint)>&
          archive_tx);

 private:
  void build_pipeline();
  void on_message(sim::NodeId from, const Bytes& wire);
  void handle_get_tips(sim::NodeId from, const RpcMessage& msg);
  void handle_submit(sim::NodeId from, const RpcMessage& msg);
  void handle_attach(sim::NodeId from, const RpcMessage& msg);
  void handle_confirm_query(sim::NodeId from, const RpcMessage& msg);
  void handle_data_query(sim::NodeId from, const RpcMessage& msg);
  void handle_offline_drain(sim::NodeId from, const RpcMessage& msg);
  void handle_gossip(const RpcMessage& msg);
  void handle_sync_summary(sim::NodeId from, const RpcMessage& msg);
  void handle_sync_inventory_request(sim::NodeId from, const RpcMessage& msg);
  void handle_sync_inventory(sim::NodeId from, const RpcMessage& msg);
  void handle_sync_missing(const RpcMessage& msg);
  void sync_tick();
  /// Schedules the next sync tick, tagged with the current lifecycle epoch
  /// so ticks scheduled before a stop()/restart() die silently instead of
  /// running against the reborn gateway.
  void schedule_sync();
  /// Re-admits `restored`'s history through the pipeline (Ingress::kReplay);
  /// shared by the restore constructor and restart().
  void replay(const tangle::Tangle& restored);
  /// Ships `ids` (which this replica holds and `to` lacks) in arrival order.
  void ship_missing(sim::NodeId to, std::uint64_t request_id,
                    std::vector<tangle::TxId> ids);
  /// Token-bucket check for a service request; false = shed.
  bool rate_limit_allows(const crypto::Ed25519PublicKey& sender);
  /// Amortized sweep dropping buckets idle past the full-refill horizon.
  void evict_idle_buckets(TimePoint now);
  /// Buffers an out-of-order gossiped transaction awaiting `missing_parent`.
  void buffer_orphan(const tangle::TxId& missing_parent,
                     tangle::Transaction tx);
  /// Retries orphans that were waiting for `arrived`.
  void adopt_orphans(const tangle::TxId& arrived);
  /// Runs the staged admission pipeline, then retries any orphans the new
  /// transaction unblocks. `pre_verified` forwards a caller-held proof that
  /// the signature was already checked (batch sync, replay).
  [[nodiscard]] Status admit(const tangle::Transaction& tx, Ingress ingress,
                             const tangle::VerifiedToken* pre_verified =
                                 nullptr);
  /// Shared batch driver behind admit_many() and replay(): slices `items`
  /// by admission_max_batch, runs each slice through the pipeline on the
  /// admission executor, then adopts orphans for every attached id.
  std::vector<Status> admit_batch_items(
      const std::vector<AdmissionBatchItem>& items, Ingress ingress);
  void reply(sim::NodeId to, MsgType type, std::uint64_t request_id,
             const Bytes& body);
  TimePoint now() const { return network_.scheduler().now(); }

  sim::NodeId id_;
  const crypto::Identity& identity_;
  sim::Network& network_;
  GatewayConfig config_;
  crypto::Ed25519PublicKey manager_key_;  // kept for restart() auth rebuild
  bool running_ = false;
  // Bumped on every stop(); epoch-tagged sync lambdas from a previous life
  // compare against it and expire.
  std::uint64_t lifecycle_epoch_ = 0;

  tangle::Tangle tangle_;
  tangle::Ledger ledger_;
  auth::AuthRegistry auth_;
  consensus::CreditRegistry credit_;
  std::unique_ptr<consensus::DifficultyPolicy> policy_;
  std::unique_ptr<tangle::TipSelector> tip_selector_;
  consensus::Miner miner_;  // serves offloaded-PoW attach requests
  // Threaded variant, engaged when config.pow_threads != 1.
  std::unique_ptr<consensus::ParallelMiner> parallel_miner_;
  // Read-phase lanes for admit_many: InlineExecutor (admission_threads ==
  // 1, deterministic) or ThreadPoolExecutor (> 1, or 0 = hardware width).
  std::unique_ptr<Executor> admission_executor_;
  Rng rng_;

  struct TokenBucket {
    double tokens = 0.0;
    TimePoint last_refill = 0.0;
  };
  std::unordered_map<crypto::Ed25519PublicKey, TokenBucket, FixedBytesHash<32>>
      buckets_;
  TimePoint last_bucket_sweep_ = 0.0;

  std::vector<sim::NodeId> peers_;
  std::size_t next_sync_peer_ = 0;
  // Sim-time send stamps of in-flight sync summaries, keyed by request id;
  // matched (and erased) by the kSyncMissing reply for the RTT histogram.
  // Converged peers never reply, so stale entries are pruned every tick.
  std::unordered_map<std::uint64_t, TimePoint> sync_sent_at_;
  std::uint64_t next_sync_request_id_ = 1;
  // missing parent id -> transactions waiting on it
  std::unordered_map<tangle::TxId, std::vector<tangle::Transaction>,
                     FixedBytesHash<32>>
      orphans_;
  std::size_t orphan_count_ = 0;
  QualityInspector quality_inspector_;
  std::optional<crypto::Ed25519PublicKey> coordinator_key_;
  tangle::MilestoneTracker milestones_;
  OfflineRegistry offline_registry_;
  GatewayStats stats_;
  GatewayMetrics metrics_;
  std::unique_ptr<AdmissionPipeline> pipeline_;
};

}  // namespace biot::node
