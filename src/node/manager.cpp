#include "node/manager.h"

#include "common/log.h"

namespace biot::node {

namespace {
Logger logger("manager");
}

Manager::Manager(sim::NodeId id, const crypto::Identity& identity,
                 Gateway& gateway, sim::Network& network)
    : id_(id),
      identity_(identity),
      gateway_(gateway),
      network_(network),
      csprng_(0x3a3aull * (id + 1)),
      miner_(std::uint64_t{id} << 40),
      keydist_(identity_, network.scheduler().clock(), csprng_) {}

void Manager::attach() {
  network_.attach(id_, [this](sim::NodeId from, const Bytes& wire) {
    on_message(from, wire);
  });
}

Status Manager::authorize(const std::vector<crypto::PublicIdentity>& devices) {
  auth::AuthorizationList list;
  list.devices = devices;
  auto tx = auth::make_authorization_tx(identity_, list, sequence_++, now());

  const auto [t1, t2] = gateway_.select_tips();
  tx.parent1 = t1;
  tx.parent2 = t2;
  tx.difficulty = static_cast<std::uint8_t>(
      gateway_.required_difficulty(identity_.public_identity().sign_key));
  const auto mined = miner_.mine(tx.parent1, tx.parent2, tx.difficulty);
  tx.nonce = mined->nonce;
  tx.signature = identity_.sign(tx.signing_bytes());

  return gateway_.submit(tx);
}

Status Manager::distribute_key(const crypto::PublicIdentity& device,
                               sim::NodeId device_node) {
  if (!gateway_.auth_registry().is_authorized(device.sign_key))
    return Status::error(ErrorCode::kUnauthorized,
                         "manager: device not authorized; publish the list first");

  pending_devices_[device.sign_key] = device;

  RpcMessage msg;
  msg.type = MsgType::kKeyDistM1;
  msg.request_id = next_request_id_++;
  msg.sender_key = identity_.public_identity().sign_key;
  msg.body = keydist_.start_session(device);
  network_.send(id_, device_node, msg.encode());
  return Status::ok();
}

void Manager::on_message(sim::NodeId from, const Bytes& wire) {
  const auto msg = RpcMessage::decode(wire);
  if (!msg || msg.value().type != MsgType::kKeyDistM2) return;

  const auto it = pending_devices_.find(msg.value().sender_key);
  if (it == pending_devices_.end()) {
    logger.warn() << "M2 from unknown device";
    return;
  }

  auto m3 = keydist_.handle_m2(it->second, msg.value().body);
  if (!m3) {
    logger.warn() << "M2 rejected: " << m3.status().to_string();
    return;
  }

  RpcMessage out;
  out.type = MsgType::kKeyDistM3;
  out.request_id = msg.value().request_id;
  out.sender_key = identity_.public_identity().sign_key;
  out.body = std::move(m3).take();
  network_.send(id_, from, out.encode());
}

}  // namespace biot::node
