#include "node/outbox.h"

#include <algorithm>

#include "common/codec.h"
#include "crypto/ed25519.h"
#include "storage/blob_io.h"

namespace biot::node {

// ---- OfflineRecord ---------------------------------------------------------

Bytes OfflineRecord::signing_bytes() const {
  Writer w;
  w.raw(issuer.view());
  w.u64(outbox_seq);
  w.f64(issued_at);
  w.blob(payload);
  w.u8(payload_encrypted ? 1 : 0);
  return std::move(w).take();
}

Bytes OfflineRecord::encode() const {
  Writer w;
  w.raw(signing_bytes());
  w.raw(signature.view());
  return std::move(w).take();
}

Result<OfflineRecord> OfflineRecord::decode(ByteView wire) {
  Reader r(wire);
  OfflineRecord out;
  const auto issuer = r.raw(32);
  if (!issuer) return issuer.status();
  out.issuer = crypto::Ed25519PublicKey::from_view(issuer.value());
  const auto seq = r.u64();
  if (!seq) return seq.status();
  out.outbox_seq = seq.value();
  const auto at = r.f64();
  if (!at) return at.status();
  out.issued_at = at.value();
  auto payload = r.blob();
  if (!payload) return payload.status();
  out.payload = std::move(payload).take();
  const auto enc = r.u8();
  if (!enc) return enc.status();
  if (enc.value() > 1)
    return Status::error(ErrorCode::kInvalidArgument, "record: bad flag");
  out.payload_encrypted = enc.value() != 0;
  const auto sig = r.raw(64);
  if (!sig) return sig.status();
  out.signature = crypto::Ed25519Signature::from_view(sig.value());
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "record: trailing bytes");
  return out;
}

crypto::Sha256Digest OfflineRecord::digest() const {
  return crypto::Sha256::hash(signing_bytes());
}

bool OfflineRecord::verify() const {
  return crypto::ed25519_verify(issuer, signing_bytes(), signature);
}

// ---- OfflineReceipt --------------------------------------------------------

Bytes OfflineReceipt::signing_bytes() const {
  Writer w;
  w.raw(witness.view());
  w.raw(record_digest.view());
  w.f64(witnessed_at);
  return std::move(w).take();
}

Bytes OfflineReceipt::encode() const {
  Writer w;
  w.raw(signing_bytes());
  w.raw(signature.view());
  return std::move(w).take();
}

Result<OfflineReceipt> OfflineReceipt::decode(ByteView wire) {
  Reader r(wire);
  OfflineReceipt out;
  const auto witness = r.raw(32);
  if (!witness) return witness.status();
  out.witness = crypto::Ed25519PublicKey::from_view(witness.value());
  const auto digest = r.raw(32);
  if (!digest) return digest.status();
  out.record_digest = crypto::Sha256Digest::from_view(digest.value());
  const auto at = r.f64();
  if (!at) return at.status();
  out.witnessed_at = at.value();
  const auto sig = r.raw(64);
  if (!sig) return sig.status();
  out.signature = crypto::Ed25519Signature::from_view(sig.value());
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument,
                         "receipt: trailing bytes");
  return out;
}

bool OfflineReceipt::verify() const {
  return crypto::ed25519_verify(witness, signing_bytes(), signature);
}

// ---- Outbox ----------------------------------------------------------------

void OutboxStats::attach_to(const obs::Scope& scope) const {
  scope.attach("enqueued", &enqueued);
  scope.attach("dropped", &dropped);
  scope.attach("drained", &drained);
  scope.attach("duplicates", &duplicates);
  scope.attach("rejected", &rejected);
  scope.attach("receipts", &receipts);
  scope.attach("backoff_events", &backoff_events);
  scope.attach("depth", &depth);
  scope.attach("drain_latency_s", &drain_latency_s);
}

bool Outbox::enqueue(OfflineRecord record, TimePoint now) {
  if (entries_.size() >= config_.capacity) {
    ++stats_.dropped;
    if (config_.overflow == OutboxConfig::OverflowPolicy::kRejectNew) {
      stats_.depth.set(static_cast<double>(entries_.size()));
      return false;
    }
    entries_.pop_front();  // freshest data wins
  }
  entries_.push_back(OutboxEntry{std::move(record), std::nullopt, now});
  ++stats_.enqueued;
  stats_.depth.set(static_cast<double>(entries_.size()));
  return true;
}

bool Outbox::attach_receipt(OfflineReceipt receipt) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&receipt](const OutboxEntry& e) {
                                 return e.record.digest() ==
                                        receipt.record_digest;
                               });
  if (it == entries_.end()) return false;
  it->receipt = std::move(receipt);
  ++stats_.receipts;
  return true;
}

std::vector<const OutboxEntry*> Outbox::peek(std::size_t limit) const {
  std::vector<const OutboxEntry*> out;
  out.reserve(std::min(limit, entries_.size()));
  for (const auto& entry : entries_) {
    if (out.size() >= limit) break;
    out.push_back(&entry);
  }
  return out;
}

void Outbox::settle(const crypto::Ed25519PublicKey& issuer, std::uint64_t seq,
                    SettleKind kind, TimePoint now) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&issuer, seq](const OutboxEntry& e) {
                                 return e.record.outbox_seq == seq &&
                                        e.record.issuer == issuer;
                               });
  if (it == entries_.end()) return;
  if (kind == SettleKind::kAdmitted) {
    ++stats_.drained;
    stats_.drain_latency_s.observe(now - it->enqueued_at);
  } else if (kind == SettleKind::kDuplicate) {
    ++stats_.duplicates;
  } else {
    ++stats_.rejected;
  }
  settled_.push_back(SettledRecord{issuer, seq, kind});
  entries_.erase(it);
  stats_.depth.set(static_cast<double>(entries_.size()));
}

Bytes Outbox::serialize() const {
  Writer w;
  w.u64(next_seq_);
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& entry : entries_) {
    w.blob(entry.record.encode());
    w.u8(entry.receipt ? 1 : 0);
    if (entry.receipt) w.blob(entry.receipt->encode());
    w.f64(entry.enqueued_at);
  }
  w.u32(static_cast<std::uint32_t>(settled_.size()));
  for (const auto& rec : settled_) {
    w.raw(rec.issuer.view());
    w.u64(rec.seq);
    w.u8(static_cast<std::uint8_t>(rec.kind));
  }
  return storage::frame_blob(w.bytes());
}

Status Outbox::restore(ByteView wire) {
  auto body = storage::unframe_blob(wire);
  if (!body) return body.status();
  Reader r(body.value());

  const auto next = r.u64();
  if (!next) return next.status();
  const auto count = r.u32();
  if (!count) return count.status();
  std::deque<OutboxEntry> entries;
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    OutboxEntry entry;
    const auto record_wire = r.blob();
    if (!record_wire) return record_wire.status();
    auto record = OfflineRecord::decode(record_wire.value());
    if (!record) return record.status();
    entry.record = std::move(record).take();
    const auto has_receipt = r.u8();
    if (!has_receipt) return has_receipt.status();
    if (has_receipt.value() > 1)
      return Status::error(ErrorCode::kInvalidArgument, "outbox: bad flag");
    if (has_receipt.value() == 1) {
      const auto receipt_wire = r.blob();
      if (!receipt_wire) return receipt_wire.status();
      auto receipt = OfflineReceipt::decode(receipt_wire.value());
      if (!receipt) return receipt.status();
      entry.receipt = std::move(receipt).take();
    }
    const auto at = r.f64();
    if (!at) return at.status();
    entry.enqueued_at = at.value();
    entries.push_back(std::move(entry));
  }

  const auto settled_count = r.u32();
  if (!settled_count) return settled_count.status();
  std::vector<SettledRecord> settled;
  settled.reserve(
      std::min<std::size_t>(settled_count.value(), r.remaining() / 41));
  for (std::uint32_t i = 0; i < settled_count.value(); ++i) {
    SettledRecord rec;
    const auto issuer = r.raw(32);
    if (!issuer) return issuer.status();
    rec.issuer = crypto::Ed25519PublicKey::from_view(issuer.value());
    const auto seq = r.u64();
    if (!seq) return seq.status();
    rec.seq = seq.value();
    const auto kind = r.u8();
    if (!kind) return kind.status();
    if (kind.value() > static_cast<std::uint8_t>(SettleKind::kRejected))
      return Status::error(ErrorCode::kInvalidArgument, "outbox: bad settle");
    rec.kind = static_cast<SettleKind>(kind.value());
    settled.push_back(rec);
  }
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "outbox: trailing bytes");

  next_seq_ = next.value();
  entries_ = std::move(entries);
  settled_ = std::move(settled);
  stats_.depth.set(static_cast<double>(entries_.size()));
  return Status::ok();
}

}  // namespace biot::node
