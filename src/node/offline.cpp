#include "node/offline.h"

#include "common/codec.h"

namespace biot::node {

namespace {
constexpr std::uint8_t kMagic[4] = {'O', 'F', 'X', '1'};
}  // namespace

Bytes OfflineEnvelope::encode() const {
  Writer w;
  w.raw(ByteView{kMagic, sizeof kMagic});
  w.blob(record.encode());
  w.u8(receipt ? 1 : 0);
  if (receipt) w.blob(receipt->encode());
  return std::move(w).take();
}

bool OfflineEnvelope::is_offline_payload(ByteView payload) {
  if (payload.size() < sizeof kMagic) return false;
  for (std::size_t i = 0; i < sizeof kMagic; ++i)
    if (payload[i] != kMagic[i]) return false;
  return true;
}

Result<OfflineEnvelope> OfflineEnvelope::decode(ByteView payload) {
  if (!is_offline_payload(payload))
    return Status::error(ErrorCode::kInvalidArgument, "envelope: bad magic");
  Reader r(payload.subspan(sizeof kMagic));
  OfflineEnvelope out;
  const auto record_wire = r.blob();
  if (!record_wire) return record_wire.status();
  auto record = OfflineRecord::decode(record_wire.value());
  if (!record) return record.status();
  out.record = std::move(record).take();
  const auto has_receipt = r.u8();
  if (!has_receipt) return has_receipt.status();
  if (has_receipt.value() > 1)
    return Status::error(ErrorCode::kInvalidArgument, "envelope: bad flag");
  if (has_receipt.value() == 1) {
    const auto receipt_wire = r.blob();
    if (!receipt_wire) return receipt_wire.status();
    auto receipt = OfflineReceipt::decode(receipt_wire.value());
    if (!receipt) return receipt.status();
    out.receipt = std::move(receipt).take();
  }
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument,
                         "envelope: trailing bytes");
  return out;
}

void OfflineRegistry::record(const OfflineKey& key,
                             const tangle::TxId& settled_by) {
  const auto [it, inserted] = entries_.try_emplace(key, settled_by);
  // Smallest-id-wins makes the winner independent of attach order, so every
  // replica converges on the same registry whatever order gossip delivered
  // the competing carriers in.
  if (!inserted && settled_by < it->second) it->second = settled_by;
}

std::optional<tangle::TxId> OfflineRegistry::find(const OfflineKey& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void OfflineSettlementObserver::on_attach(AttachEvent& event) {
  if (event.tx.payload_encrypted) return;
  if (!OfflineEnvelope::is_offline_payload(event.tx.payload)) return;
  const auto envelope = OfflineEnvelope::decode(event.tx.payload);
  if (!envelope) return;  // malformed magic-bearing payload: plain data tx
  // The record signature authenticates the (issuer, seq) claim — without it
  // any device could squat a peer's sequence slot and censor its drain.
  if (!envelope.value().record.verify()) return;
  registry_.record(OfflineKey{envelope.value().record.issuer,
                              envelope.value().record.outbox_seq},
                   event.tx.id());
}

}  // namespace biot::node
