// Store-and-forward outbox for offline-first light nodes.
//
// When a device exhausts failover (no reachable gateway at all) it keeps
// collecting sensor data: each reading becomes a signed OfflineRecord queued
// here under a monotonic per-device outbox sequence number. Co-located peers
// may countersign a record (the IoTLogBlock two-party exchange, LCN 2019) and
// the receipt rides along with it, so either party can later submit evidence
// of the exchange. On reconnect the queue drains to a gateway in bounded
// chunks (light_node.cpp) and every entry is settled exactly once: admitted,
// explicitly rejected, or recognized as a duplicate of an already-settled
// copy.
//
// The queue is bounded: overflow either drops the oldest entry (freshest-data
// wins, the sensor default) or rejects the new one, per OverflowPolicy, and
// counts what it shed — never unbounded growth during a multi-hour outage.
// serialize()/restore() persist the queue through the storage codec with a
// trailing digest, so a crash mid-outage or mid-drain loses nothing.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"
#include "crypto/identity.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"

namespace biot::node {

/// One transaction's worth of sensor data issued while offline. Signed by
/// the issuing device over signing_bytes(), so a countersigning peer (and
/// later the gateway) can authenticate it without trusting the carrier.
struct OfflineRecord {
  crypto::Ed25519PublicKey issuer{};
  std::uint64_t outbox_seq = 0;  // per-issuer monotone; replay/dedup key
  TimePoint issued_at = 0.0;
  Bytes payload;
  bool payload_encrypted = false;
  crypto::Ed25519Signature signature{};

  /// Canonical encoding of everything except the signature.
  Bytes signing_bytes() const;
  Bytes encode() const;
  static Result<OfflineRecord> decode(ByteView wire);

  /// SHA-256 over signing_bytes() — what a receipt countersigns, so the
  /// receipt stays valid however the record is later framed.
  crypto::Sha256Digest digest() const;
  bool verify() const;
};

/// A peer's countersignature over an OfflineRecord: proof the exchange
/// happened while both parties were dark. The witness keeps its own copy of
/// the record, so either side alone suffices to settle the exchange later.
struct OfflineReceipt {
  crypto::Ed25519PublicKey witness{};
  crypto::Sha256Digest record_digest{};
  TimePoint witnessed_at = 0.0;
  crypto::Ed25519Signature signature{};

  Bytes signing_bytes() const;
  Bytes encode() const;
  static Result<OfflineReceipt> decode(ByteView wire);
  bool verify() const;
};

/// What ultimately happened to a drained outbox entry.
enum class SettleKind : std::uint8_t {
  kAdmitted = 0,   // attached to the gateway's tangle
  kDuplicate = 1,  // another copy (peer evidence / pre-crash drain) already
                   // settled this (issuer, seq); explicit, not silent
  kRejected = 2,   // terminal gateway rejection (unauthorized, conflict, ...)
};

struct OutboxConfig {
  std::size_t capacity = 256;
  enum class OverflowPolicy : std::uint8_t {
    kDropOldest = 0,  // freshest data wins (sensor default)
    kRejectNew = 1,   // earliest data wins (audit-log shape)
  } overflow = OverflowPolicy::kDropOldest;
};

struct OutboxStats {
  obs::Counter enqueued;
  obs::Counter dropped;     // shed by the overflow policy (either end)
  obs::Counter drained;     // settled as admitted
  obs::Counter duplicates;  // settled as already-known duplicates
  obs::Counter rejected;    // settled as terminal rejections
  obs::Counter receipts;    // peer countersignatures attached
  obs::Counter backoff_events;  // drain attempts delayed by backoff
  obs::Gauge depth;             // live queue depth
  obs::Histogram drain_latency_s;  // enqueue -> admitted (sim seconds)

  /// Registers everything under `scope` (e.g. "device.d3.outbox").
  void attach_to(const obs::Scope& scope) const;
};

struct OutboxEntry {
  OfflineRecord record;
  std::optional<OfflineReceipt> receipt;
  TimePoint enqueued_at = 0.0;
};

class Outbox {
 public:
  explicit Outbox(OutboxConfig config = {}) : config_(config) {}

  /// Next record sequence number (monotone across restore()).
  std::uint64_t next_seq() { return next_seq_++; }

  /// Queues a record; returns false when the overflow policy rejected it
  /// (kRejectNew on a full queue). kDropOldest always accepts, shedding the
  /// head instead.
  bool enqueue(OfflineRecord record, TimePoint now);

  /// Attaches a peer countersignature to the queued entry whose record
  /// matches receipt.record_digest. False when the entry is gone (already
  /// settled or shed).
  bool attach_receipt(OfflineReceipt receipt);

  /// The first `limit` entries, front (oldest) first — one drain chunk.
  std::vector<const OutboxEntry*> peek(std::size_t limit) const;

  /// One settled exchange: who issued it, its slot, what happened. Keyed on
  /// (issuer, seq) — NOT seq alone — because an outbox holding witness
  /// evidence carries other issuers' records whose sequence spaces overlap
  /// this device's own.
  struct SettledRecord {
    crypto::Ed25519PublicKey issuer{};
    std::uint64_t seq = 0;
    SettleKind kind = SettleKind::kAdmitted;
  };

  /// Removes the entry for (issuer, seq) and records its outcome. No-op when
  /// the entry is gone (duplicate drain result after a crash window).
  void settle(const crypto::Ed25519PublicKey& issuer, std::uint64_t seq,
              SettleKind kind, TimePoint now);

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::deque<OutboxEntry>& entries() const { return entries_; }
  /// Settlement log, in settle order.
  const std::vector<SettledRecord>& settled() const { return settled_; }

  OutboxStats& stats() { return stats_; }
  const OutboxStats& stats() const { return stats_; }
  const OutboxConfig& config() const { return config_; }

  /// Digest-framed snapshot of the queue, the sequence counter and the
  /// settlement log (storage::frame_blob) — what a device persists.
  Bytes serialize() const;
  /// Replaces this outbox's state from a serialize() snapshot.
  [[nodiscard]] Status restore(ByteView wire);

 private:
  OutboxConfig config_;
  std::deque<OutboxEntry> entries_;
  std::uint64_t next_seq_ = 0;
  std::vector<SettledRecord> settled_;
  OutboxStats stats_;
};

}  // namespace biot::node
