#include "node/convergence.h"

#include "tangle/audit.h"

namespace biot::node {

namespace {

std::string replica_tag(const Gateway& g) {
  return "gateway " + std::to_string(g.node_id());
}

}  // namespace

std::string ConvergenceReport::to_string() const {
  std::string out;
  if (ok()) {
    out = "converged (" + std::to_string(replicas_checked) + " replicas";
    if (replicas_skipped > 0)
      out += ", " + std::to_string(replicas_skipped) + " stopped";
    out += ")";
    return out;
  }
  if (replicas_checked == 0) return "convergence: no running replica";
  out = "convergence FAILED (" + std::to_string(violations.size()) +
        " violations across " + std::to_string(replicas_checked) +
        " replicas)";
  for (const auto& v : violations) out += "\n  " + v;
  return out;
}

ConvergenceReport ConvergenceChecker::check() const {
  ConvergenceReport report;
  std::vector<const Gateway*> running;
  for (const auto* g : replicas_) {
    if (g->running())
      running.push_back(g);
    else
      ++report.replicas_skipped;
  }
  report.replicas_checked = running.size();
  if (running.empty()) return report;

  if (options_.audit_replicas) {
    for (const auto* g : running) {
      tangle::AuditInputs inputs;
      inputs.ledger = &g->ledger();
      inputs.expected_supply = options_.expected_supply;
      inputs.credit_valid_tx_count = [g](const tangle::AccountKey& key) {
        const auto* model = g->credit_registry().find(key);
        return model ? model->valid_tx_count() : 0;
      };
      const auto audit = tangle::audit(g->tangle(), inputs);
      for (const auto& v : audit.violations)
        report.violations.push_back(replica_tag(*g) + ": " + v.check + ": " +
                                    v.detail);
    }
  }

  // Pairwise agreement against the first running replica. Digest + sketch
  // + size agreeing pins the id *set*; ledger total and the milestone
  // frontier pin the derived state the paper's consumers act on.
  const auto& ref = *running.front();
  for (std::size_t i = 1; i < running.size(); ++i) {
    const auto& g = *running[i];
    const auto mismatch = [&](const std::string& what, auto a, auto b) {
      report.violations.push_back(
          replica_tag(g) + ": " + what + " " + std::to_string(b) +
          " != " + std::to_string(a) + " on " + replica_tag(ref));
    };
    if (g.tangle().size() != ref.tangle().size())
      mismatch("tangle size", ref.tangle().size(), g.tangle().size());
    if (!(g.tangle().id_digest() == ref.tangle().id_digest()))
      report.violations.push_back(replica_tag(g) + ": id digest differs from " +
                                  replica_tag(ref));
    if (!(g.tangle().id_sketch() == ref.tangle().id_sketch()))
      report.violations.push_back(replica_tag(g) + ": id sketch differs from " +
                                  replica_tag(ref));
    if (g.ledger().total_balance() != ref.ledger().total_balance())
      mismatch("ledger total", ref.ledger().total_balance(),
               g.ledger().total_balance());
    if (g.milestones().milestone_count() != ref.milestones().milestone_count())
      mismatch("milestone count", ref.milestones().milestone_count(),
               g.milestones().milestone_count());
    if (g.milestones().confirmed_count() != ref.milestones().confirmed_count())
      mismatch("confirmed frontier", ref.milestones().confirmed_count(),
               g.milestones().confirmed_count());

    // Offline-exchange registry: derived state, so replicas that agree on
    // the id set must agree here too — checked explicitly because a
    // divergence pinpoints the settlement layer, not just "digest differs".
    if (g.offline_registry().size() != ref.offline_registry().size()) {
      mismatch("offline registry size", ref.offline_registry().size(),
               g.offline_registry().size());
    } else {
      for (const auto& [key, tx_id] : ref.offline_registry().entries()) {
        const auto other = g.offline_registry().find(key);
        if (!other || !(*other == tx_id)) {
          report.violations.push_back(replica_tag(g) +
                                      ": offline registry entry differs from " +
                                      replica_tag(ref));
          break;
        }
      }
    }
  }

  // Offline-first contract per device: the outbox fully drained, and every
  // exchange the device saw settle as admitted/duplicate is registered on
  // EVERY running replica (explicit verdict, cluster-wide).
  for (const auto* d : devices_) {
    const auto device_tag = "device " + std::to_string(d->node_id());
    if (!d->outbox().empty()) {
      report.violations.push_back(
          device_tag + ": outbox not drained (" +
          std::to_string(d->outbox().size()) + " records queued)");
    }
    for (const auto& settled : d->outbox().settled()) {
      if (settled.kind == SettleKind::kRejected) continue;  // explicit verdict
      const OfflineKey key{settled.issuer, settled.seq};
      for (const auto* g : running) {
        if (!g->offline_registry().contains(key)) {
          report.violations.push_back(
              device_tag + ": settled exchange seq " +
              std::to_string(settled.seq) + " missing from " +
              replica_tag(*g) + " offline registry");
        }
      }
    }
  }
  return report;
}

}  // namespace biot::node
