// Offline exchange settlement: the gateway-side half of the outbox protocol.
//
// A drained outbox entry rides inside a normal data transaction whose payload
// is an OfflineEnvelope: the signed OfflineRecord plus (when a peer
// countersigned it) the OfflineReceipt. Because a record can reach the tangle
// through two independent carriers — the issuer draining its own outbox, or
// the witness submitting its evidence copy — settlement must be idempotent on
// (issuer, outbox_seq). The OfflineRegistry tracks which key settled under
// which transaction; it is DERIVED state, rebuilt from the tangle by the
// OfflineExchangeObserver on every attach (live, gossip, sync and cold-start
// replay alike), so all replicas converge on the same registry and a
// restarted gateway re-derives it from chain like credit and the ledger.
//
// When the same key is attached by more than one transaction (two carriers
// raced through different gateways before gossip converged), every replica
// deterministically keeps the smallest transaction id as the settling one —
// an order-independent rule, so replicas agree regardless of arrival order.
#pragma once

#include <optional>
#include <unordered_map>

#include "node/admission.h"
#include "node/outbox.h"
#include "tangle/transaction.h"

namespace biot::node {

/// Payload framing for a drained outbox entry. is_offline_payload() is a
/// cheap magic check so the attach path only pays a decode for real
/// envelopes.
struct OfflineEnvelope {
  OfflineRecord record;
  std::optional<OfflineReceipt> receipt;

  Bytes encode() const;
  static bool is_offline_payload(ByteView payload);
  static Result<OfflineEnvelope> decode(ByteView payload);
};

/// Replay/dedup key of an offline exchange.
struct OfflineKey {
  crypto::Ed25519PublicKey issuer{};
  std::uint64_t seq = 0;

  friend bool operator==(const OfflineKey&, const OfflineKey&) = default;
};

struct OfflineKeyHash {
  std::size_t operator()(const OfflineKey& key) const {
    return FixedBytesHash<32>{}(key.issuer) ^
           (key.seq * 0x9e3779b97f4a7c15ull);
  }
};

/// (issuer, seq) -> the transaction that settled it. Deterministic across
/// replicas: ties (same key settled by several carriers) keep the smallest
/// transaction id.
class OfflineRegistry {
 public:
  /// Records `settled_by` for `key`; keeps the smaller id on collision.
  void record(const OfflineKey& key, const tangle::TxId& settled_by);

  bool contains(const OfflineKey& key) const { return entries_.contains(key); }
  std::optional<tangle::TxId> find(const OfflineKey& key) const;
  std::size_t size() const { return entries_.size(); }

  const std::unordered_map<OfflineKey, tangle::TxId, OfflineKeyHash>& entries()
      const {
    return entries_;
  }

 private:
  std::unordered_map<OfflineKey, tangle::TxId, OfflineKeyHash> entries_;
};

/// Admission observer feeding the registry: every attached transaction whose
/// payload is an offline envelope settles its (issuer, seq). Runs on every
/// ingress — service, gossip, sync, orphan retry and replay — which is what
/// makes the registry replica-convergent and restart-derivable.
class OfflineSettlementObserver : public AttachObserver {
 public:
  explicit OfflineSettlementObserver(OfflineRegistry& registry)
      : registry_(registry) {}
  void on_attach(AttachEvent& event) override;

 private:
  OfflineRegistry& registry_;
};

}  // namespace biot::node
