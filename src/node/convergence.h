// Convergence checker: turns "the cluster survived the chaos run" into a
// checkable invariant (DESIGN.md section 8).
//
// After a fault plan ends (partition healed, rates zeroed, crashed gateways
// restarted) and the anti-entropy protocol has had time to quiesce, every
// surviving replica must (a) individually pass the full tangle::audit —
// its incremental state re-derivable from scratch, ledger supply conserved,
// credit counts consistent — and (b) agree with every other replica on the
// identity of the history: transaction count, XOR id-digest, reconciliation
// sketch, ledger total and the confirmed-milestone frontier. Stopped
// replicas are skipped (a plan may deliberately end with a node down); at
// least one replica must be running.
//
// Offline-first invariant (DESIGN.md section 13): registered light nodes
// extend the check with the store-and-forward contract — after the finale
// heal every device outbox must have fully drained (no queued record left
// behind), every replica must agree on the offline-exchange registry, and
// every exchange a device settled as admitted-or-duplicate must be present
// in every replica's registry. Together these say: no offline transaction
// was lost, and every countersigned exchange ended in an explicit verdict
// visible cluster-wide.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "node/gateway.h"
#include "node/light_node.h"

namespace biot::node {

struct ConvergenceOptions {
  /// Run tangle::audit on every running replica (O(n*E) each). Disable only
  /// for very large soaks where pairwise digest agreement is enough.
  bool audit_replicas = true;
  /// When set, every replica's ledger must sum to exactly this supply.
  std::optional<std::uint64_t> expected_supply;
};

struct ConvergenceReport {
  std::size_t replicas_checked = 0;  // running replicas examined
  std::size_t replicas_skipped = 0;  // stopped (crashed, never restarted)
  std::vector<std::string> violations;

  bool ok() const { return violations.empty() && replicas_checked > 0; }
  /// One-line verdict plus one line per violation.
  std::string to_string() const;
};

class ConvergenceChecker {
 public:
  explicit ConvergenceChecker(ConvergenceOptions options = {})
      : options_(options) {}

  /// Registers a replica; stopped gateways are recorded and skipped at
  /// check() time, so registering the whole fleet up front is fine.
  void add_replica(const Gateway* gateway) { replicas_.push_back(gateway); }

  /// Registers a light node for the offline-first invariant: drained outbox
  /// and cluster-wide settlement of everything it settled. Devices stopped
  /// for the finale are still checked — the outbox contract holds across
  /// stop().
  void add_device(const LightNode* device) { devices_.push_back(device); }

  /// Audits every running replica and compares each against the first
  /// running one. Cheap digest comparisons run even when audits are off.
  ConvergenceReport check() const;

 private:
  ConvergenceOptions options_;
  std::vector<const Gateway*> replicas_;
  std::vector<const LightNode*> devices_;
};

}  // namespace biot::node
