// Data consumer: any party reading sensor data off the public tangle —
// a dashboard, an analytics pipeline, or another factory (paper Section
// IV-A's data-sharing story). Consumers query a gateway for data
// transactions and decrypt the sensitive ones they hold keys for; everything
// else is readable in the clear by design.
//
// Reads need no authorization (the tangle is public); confidentiality of
// sensitive payloads rests on the data authority management method.
#pragma once

#include <functional>

#include "auth/data_protection.h"
#include "crypto/identity.h"
#include "node/rpc.h"
#include "sim/network.h"

namespace biot::node {

/// A reading recovered from the chain: the raw transaction plus the
/// plaintext payload when recoverable.
struct RecoveredReading {
  tangle::Transaction tx;
  Bytes plaintext;        // empty when the payload could not be decrypted
  bool decrypted = false; // false for encrypted payloads without the key
};

class Consumer {
 public:
  Consumer(sim::NodeId id, crypto::Identity identity, sim::NodeId gateway,
           sim::Network& network);

  /// Registers the consumer's message handler.
  void attach();

  /// Installs a symmetric key (obtained from a manager via the Fig 4
  /// handshake) enabling decryption of that key's sensitive payloads.
  void install_key(const auth::SymmetricKey& key) {
    protector_.install_key(key);
  }

  /// Result callback type for queries.
  using Callback = std::function<void(std::vector<RecoveredReading>)>;

  /// Asynchronously fetches data transactions matching the filter; the
  /// callback fires when the gateway's response arrives. An all-zero
  /// `sender` matches every account.
  void query(const crypto::Ed25519PublicKey& sender, TimePoint since,
             std::uint32_t max_results, Callback callback);

  std::uint64_t queries_sent() const { return queries_sent_; }

 private:
  void on_message(sim::NodeId from, const Bytes& wire);

  sim::NodeId id_;
  crypto::Identity identity_;
  sim::NodeId gateway_;
  sim::Network& network_;
  auth::SensorDataProtector protector_;

  std::uint64_t next_request_id_ = 1;
  std::unordered_map<std::uint64_t, Callback> pending_;
  std::uint64_t queries_sent_ = 0;
};

}  // namespace biot::node
