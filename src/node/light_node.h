// Light node: a power-constrained IoT device (paper Section IV-A).
//
// It keeps no tangle replica. Each submission cycle follows Fig 6 steps 4-5:
// request two tips from its gateway, validate them, run PoW binding the new
// transaction to the tips, and submit. PoW really grinds nonces (host time)
// while the *simulated* duration comes from the device's compute profile, so
// the discrete-event clock reproduces Raspberry-Pi-scale timings.
//
// Offline-first operation (DESIGN.md section 13): when failover exhausts —
// every known gateway unreachable — the device keeps collecting. Readings
// become signed OfflineRecords queued in a bounded node::Outbox, optionally
// countersigned by a co-located peer (the IoTLogBlock exchange), and on the
// first successful probe the queue drains to the gateway in bounded chunks
// through batch admission, with exponential backoff + jitter so a healing
// flash crowd cannot wedge the admission pipeline.
//
// Attack behaviours from the threat model are built in and schedulable:
// lazy tips (approve a fixed stale pair) and double-spending (submit two
// transactions on the same sequence slot).
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "auth/data_protection.h"
#include "auth/keydist.h"
#include "consensus/pow.h"
#include "crypto/identity.h"
#include "node/offline.h"
#include "node/outbox.h"
#include "node/rpc.h"
#include "obs/metrics.h"
#include "tangle/tip_selection.h"
#include "sim/device_profile.h"
#include "sim/network.h"

namespace biot::node {

enum class AttackKind : std::uint8_t { kLazyTips = 0, kDoubleSpend = 1 };

struct LightNodeConfig {
  sim::DeviceProfile profile = sim::DeviceProfile::pi3b_fig9();
  /// Seconds between sensor collections; ignored when continuous.
  Duration collect_interval = 2.0;
  /// Continuous mode: begin the next cycle as soon as the previous resolves
  /// (used by the Fig 9 average-time-per-transaction experiments).
  bool continuous = false;
  /// Simulated cost of validating the two fetched tips.
  Duration tip_validation_s = 0.02;
  /// Offload PoW to the gateway (remote attachToTangle): the device signs
  /// and ships the transaction, the gateway grinds the nonce. Spares the
  /// device the 2^D hash search at the price of trusting the gateway with
  /// attachment (the signature still protects the content).
  bool offload_pow = false;
  /// Payload size when using the default random data source.
  std::size_t payload_size = 64;
  /// First cycle fires at this simulated time.
  TimePoint start_time = 0.1;
  /// Give up on a cycle if the gateway has not answered within this long
  /// (lost/shed messages must not wedge the device). 0 disables.
  Duration request_timeout = 10.0;
  /// After this many consecutive timeouts the device assumes its gateway is
  /// down and fails over to the next backup gateway (see add_backup_gateway).
  std::uint32_t failover_after_timeouts = 2;
  /// Failback: with failover alone a device never returns to its primary
  /// gateway even after it recovers, so restarts concentrate the whole fleet
  /// on the surviving gateways forever. When > 0, a re-homed device probes
  /// its primary every roughly this many seconds (a plain tips request
  /// outside the submission cycle) and fails back on the first answer. The
  /// same loop is the recovery path out of offline mode, where it probes all
  /// known gateways round-robin. 0 disables both.
  Duration failback_probe_interval = 5.0;
  /// Consecutive unanswered probes multiply the interval by this factor
  /// (capped at probe_interval_max), and every delay is stretched by a
  /// uniform [0, probe_jitter] fraction from the device's own stream — a
  /// fleet that lost its gateway together must NOT probe it in lockstep
  /// when it returns (the reconnect thundering herd).
  double probe_backoff_factor = 1.5;
  Duration probe_interval_max = 60.0;
  double probe_jitter = 0.5;
  /// Upper bound on the PoW difficulty the device will honour from a tips
  /// response. The field arrives over an unauthenticated wire, so a
  /// corrupted (or forged) response could otherwise demand an absurd
  /// difficulty and wedge the device in a 2^255-hash grind; anything above
  /// this bound is dropped as malformed and the cycle watchdog retries.
  /// Default comfortably exceeds CreditConfig::max_difficulty (14).
  int max_difficulty = 20;

  // ---- Offline-first (DESIGN.md section 13) -------------------------------
  /// Store-and-forward queue bounds and overflow policy.
  OutboxConfig outbox;
  /// Outbox entries drained per reconnect chunk (one kOfflineDrainRequest
  /// carrying up to this many transactions through Gateway::admit_many).
  std::size_t drain_chunk = 16;
  /// Cap on the simulated PoW time a single drain chunk may commit to
  /// before shipping (the chunk shrinks to fit). Without it, a difficulty
  /// spike — a credit penalty mid-reconnect — would have the device
  /// silently grinding a full chunk for minutes with no request in flight
  /// and no watchdog armed, indistinguishable from a wedge.
  Duration drain_pow_budget = 2.0;
  /// Exponential backoff applied between drain attempts after a retryable
  /// rejection or a drain timeout: base, doubling per consecutive failure,
  /// capped, jittered like the probe loop.
  Duration drain_backoff_base = 1.0;
  Duration drain_backoff_max = 60.0;
  /// Keep a countersigned evidence copy of every record this device
  /// witnesses for a peer, drained later as this device's own submission
  /// (either party alone settles the exchange; the registry deduplicates).
  bool store_witness_evidence = true;
};

struct LightNodeStats {
  obs::Counter cycles_started;
  obs::Counter accepted;
  obs::Counter rejected;
  obs::Counter unauthorized;
  obs::Counter attacks_launched;
  obs::Counter timeouts;   // cycles abandoned waiting for the gateway
  obs::Counter failovers;  // times the device re-homed to a backup
  obs::Counter failbacks;  // times it returned to its recovered primary
  obs::Counter went_offline;   // times failover exhausted into offline mode
  obs::Counter offers_sent;    // offline records offered to peers
  obs::Counter witnessed;      // peer records countersigned (receipts sent)
  /// Simulated PoW seconds spent, one entry per mined transaction.
  std::vector<Duration> pow_durations;
  /// Simulated times at which submissions were accepted.
  std::vector<TimePoint> accepted_times;
  /// Distribution view of pow_durations (same observations, O(buckets)
  /// memory) — what the registry exports; the vector stays for the energy
  /// and Fig 9 per-sample computations.
  obs::Histogram pow_sim_s;

  /// Registers everything under `scope` (the SmartFactory binds
  /// "device.d<i>").
  void attach_to(const obs::Scope& scope) const;
};

class LightNode {
 public:
  LightNode(sim::NodeId id, crypto::Identity identity, sim::NodeId gateway,
            sim::Network& network, LightNodeConfig config = {});

  /// Registers with the network and schedules the first cycle.
  void start();

  /// Powers the device off: detaches from the network and cancels future
  /// cycles/probes (pending scheduler lambdas become no-ops). Used by chaos
  /// drivers to quiesce traffic before checking convergence.
  void stop();
  bool running() const { return running_; }

  /// Queues an attack to replace the next honest cycle at/after `at`.
  void schedule_attack(TimePoint at, AttackKind kind);

  /// Registers an alternative gateway; after `failover_after_timeouts`
  /// consecutive unanswered cycles the device re-homes to the next backup
  /// (round-robin through home + backups). Models the paper's "resilient
  /// for failure of one or more nodes" availability claim end to end.
  void add_backup_gateway(sim::NodeId gateway) {
    backup_gateways_.push_back(gateway);
  }
  sim::NodeId current_gateway() const { return gateway_; }

  /// Registers a co-located peer device for the offline exchange: while
  /// offline, each queued record is offered (round-robin) to one peer for
  /// countersigning.
  void add_exchange_peer(sim::NodeId peer) { exchange_peers_.push_back(peer); }

  /// True while failover is exhausted and the device is queueing to its
  /// outbox instead of submitting.
  bool offline() const { return offline_; }
  const Outbox& outbox() const { return outbox_; }
  Outbox& outbox() { return outbox_; }

  /// Persistent offline state (ledger sequence counter + outbox), digest-
  /// framed: what a real device keeps on flash across power loss. restore
  /// must run before start().
  Bytes serialize_offline_state() const;
  [[nodiscard]] Status restore_offline_state(ByteView wire);

  /// Data source override (default: random bytes of config.payload_size).
  void set_data_source(std::function<Bytes()> source) {
    data_source_ = std::move(source);
  }

  /// Installs the symmetric key (sensitive-data devices) — normally done by
  /// the Fig 4 handshake, exposed for direct setup in tests.
  void install_symmetric_key(const auth::SymmetricKey& key) {
    protector_.install_key(key);
  }
  bool has_symmetric_key() const { return protector_.has_key(); }
  const auth::SensorDataProtector& protector() const { return protector_; }

  /// Wires up the device side of the key-distribution handshake.
  void enable_keydist(const crypto::Ed25519PublicKey& manager_key);

  /// Asks the gateway whether a transaction is confirmed; the answer lands
  /// in last_confirmation() after the simulated round trip.
  void query_confirmation(const tangle::TxId& id);
  const std::optional<ConfirmationInfo>& last_confirmation() const {
    return last_confirmation_;
  }

  const crypto::Identity& identity() const { return identity_; }
  crypto::PublicIdentity public_identity() const {
    return identity_.public_identity();
  }
  sim::NodeId node_id() const { return id_; }
  const LightNodeStats& stats() const { return stats_; }

  /// Exports stats plus the outbox instruments under `scope` (the
  /// SmartFactory binds "device.d<i>"; the outbox lands under ".outbox").
  void bind_metrics(const obs::Scope& scope) const {
    stats_.attach_to(scope);
    outbox_.stats().attach_to(scope.scope("outbox"));
  }

  /// Resumes the per-sender sequence counter after a device restart — the
  /// ledger's slot for this account continues where history left off
  /// (query Gateway::ledger().next_sequence()). Devices persist this in
  /// practice; reusing an old slot reads as a double-spend.
  void resume_sequence(std::uint64_t next) { sequence_ = next; }

 private:
  void on_message(sim::NodeId from, const Bytes& wire);
  void begin_cycle();
  void schedule_next_cycle(Duration extra_delay = 0.0);
  /// Periodic primary-recovery / offline-recovery probe loop (see
  /// failback_probe_interval and the probe_backoff_* knobs).
  void schedule_failback_probe();
  void on_tips(const TipsResponse& tips);
  void on_result(const SubmitResult& result);
  void handle_keydist(const RpcMessage& msg, sim::NodeId from);
  /// Any response from the current gateway proves it is alive.
  void note_gateway_alive();
  /// Shared timeout accounting for the cycle and drain watchdogs; performs
  /// failover, and returns true when failover was exhausted and the device
  /// went offline (the caller must not reschedule).
  bool note_timeout_maybe_failover();

  // ---- Offline mode --------------------------------------------------------
  /// Failover exhausted: switch collection cycles to the outbox.
  void enter_offline();
  /// A gateway answered a probe: resume cycles (the first one drains).
  void exit_offline(sim::NodeId reachable_gateway);
  /// One offline collection: sign a record, queue it, offer it to a peer.
  void offline_cycle();
  /// Builds and ships one drain chunk bound to the fetched tips.
  void drain_outbox(const TipsResponse& tips);
  void on_drain_result(const OfflineDrainResult& result);
  void handle_offline_offer(sim::NodeId from, const RpcMessage& msg);
  void handle_offline_receipt(const RpcMessage& msg);
  /// Current probe delay under exponential backoff + jitter.
  Duration probe_delay();
  /// Current drain retry delay under exponential backoff + jitter.
  Duration drain_backoff();

  tangle::Transaction build_tx(const tangle::TipPair& parents, int difficulty,
                               std::uint64_t sequence, Bytes payload,
                               bool encrypted);
  void mine_and_submit(tangle::Transaction tx);
  void send(MsgType type, const Bytes& body);
  TimePoint now() const { return network_.scheduler().now(); }

  sim::NodeId id_;
  crypto::Identity identity_;
  sim::NodeId gateway_;
  sim::NodeId home_gateway_;  // primary; failback target after a failover
  sim::Network& network_;
  LightNodeConfig config_;
  bool running_ = false;
  /// Bumped on every stop(); scheduled lambdas from a previous life compare
  /// against it and expire (a restarted device must not inherit its dead
  /// predecessor's timers).
  std::uint64_t lifecycle_epoch_ = 0;

  crypto::Csprng csprng_;
  Rng rng_;
  consensus::Miner miner_;
  auth::SensorDataProtector protector_;
  std::optional<auth::DeviceKeyDist> keydist_;
  std::function<Bytes()> data_source_;

  std::uint64_t sequence_ = 0;
  std::uint64_t next_request_id_ = 1;
  bool cycle_in_flight_ = false;
  std::uint64_t awaiting_results_ = 0;
  std::uint64_t cycle_serial_ = 0;  // distinguishes cycles for the timeout

  /// Stale pair remembered from the first tips response (lazy-attack fodder).
  std::optional<tangle::TipPair> stale_parents_;
  struct PlannedAttack {
    TimePoint at;
    AttackKind kind;
  };
  std::deque<PlannedAttack> attack_plan_;

  std::optional<ConfirmationInfo> last_confirmation_;
  std::vector<sim::NodeId> backup_gateways_;
  std::size_t next_backup_ = 0;
  std::uint32_t consecutive_timeouts_ = 0;
  /// Failovers since the last successful gateway contact; once it exceeds
  /// the number of known gateways the whole list was tried and the device
  /// goes offline instead of spinning through dead backups.
  std::uint32_t outage_failovers_ = 0;
  /// Request id of the in-flight failback/offline probe (0 = none); its
  /// response triggers failback or offline recovery instead of feeding the
  /// submission cycle.
  std::uint64_t probe_request_id_ = 0;
  sim::NodeId probe_target_ = 0;
  std::uint32_t probe_attempts_ = 0;  // consecutive unanswered probes
  std::size_t next_probe_gateway_ = 0;  // offline round-robin cursor

  // ---- Offline state -------------------------------------------------------
  bool offline_ = false;
  Outbox outbox_;
  std::vector<sim::NodeId> exchange_peers_;
  std::size_t next_exchange_peer_ = 0;
  /// (issuer, seq) pairs this device has countersigned — replay/duplicate
  /// protection for the exchange protocol.
  std::unordered_set<OfflineKey, OfflineKeyHash> witnessed_keys_;
  /// In-flight drain chunk: request id + the records it carries, in order
  /// (matched against the OfflineDrainResult items).
  std::uint64_t drain_request_id_ = 0;
  std::vector<OfflineKey> drain_in_flight_;
  std::uint32_t drain_failures_ = 0;  // consecutive, drives the backoff

  LightNodeStats stats_;
};

}  // namespace biot::node
