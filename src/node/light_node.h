// Light node: a power-constrained IoT device (paper Section IV-A).
//
// It keeps no tangle replica. Each submission cycle follows Fig 6 steps 4-5:
// request two tips from its gateway, validate them, run PoW binding the new
// transaction to the tips, and submit. PoW really grinds nonces (host time)
// while the *simulated* duration comes from the device's compute profile, so
// the discrete-event clock reproduces Raspberry-Pi-scale timings.
//
// Attack behaviours from the threat model are built in and schedulable:
// lazy tips (approve a fixed stale pair) and double-spending (submit two
// transactions on the same sequence slot).
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "auth/data_protection.h"
#include "auth/keydist.h"
#include "consensus/pow.h"
#include "crypto/identity.h"
#include "node/rpc.h"
#include "obs/metrics.h"
#include "tangle/tip_selection.h"
#include "sim/device_profile.h"
#include "sim/network.h"

namespace biot::node {

enum class AttackKind : std::uint8_t { kLazyTips = 0, kDoubleSpend = 1 };

struct LightNodeConfig {
  sim::DeviceProfile profile = sim::DeviceProfile::pi3b_fig9();
  /// Seconds between sensor collections; ignored when continuous.
  Duration collect_interval = 2.0;
  /// Continuous mode: begin the next cycle as soon as the previous resolves
  /// (used by the Fig 9 average-time-per-transaction experiments).
  bool continuous = false;
  /// Simulated cost of validating the two fetched tips.
  Duration tip_validation_s = 0.02;
  /// Offload PoW to the gateway (remote attachToTangle): the device signs
  /// and ships the transaction, the gateway grinds the nonce. Spares the
  /// device the 2^D hash search at the price of trusting the gateway with
  /// attachment (the signature still protects the content).
  bool offload_pow = false;
  /// Payload size when using the default random data source.
  std::size_t payload_size = 64;
  /// First cycle fires at this simulated time.
  TimePoint start_time = 0.1;
  /// Give up on a cycle if the gateway has not answered within this long
  /// (lost/shed messages must not wedge the device). 0 disables.
  Duration request_timeout = 10.0;
  /// After this many consecutive timeouts the device assumes its gateway is
  /// down and fails over to the next backup gateway (see add_backup_gateway).
  std::uint32_t failover_after_timeouts = 2;
  /// Failback: with failover alone a device never returns to its primary
  /// gateway even after it recovers, so restarts concentrate the whole fleet
  /// on the surviving gateways forever. When > 0, a re-homed device probes
  /// its primary every this many seconds (a plain tips request outside the
  /// submission cycle) and fails back on the first answer. 0 disables.
  Duration failback_probe_interval = 5.0;
  /// Upper bound on the PoW difficulty the device will honour from a tips
  /// response. The field arrives over an unauthenticated wire, so a
  /// corrupted (or forged) response could otherwise demand an absurd
  /// difficulty and wedge the device in a 2^255-hash grind; anything above
  /// this bound is dropped as malformed and the cycle watchdog retries.
  /// Default comfortably exceeds CreditConfig::max_difficulty (14).
  int max_difficulty = 20;
};

struct LightNodeStats {
  obs::Counter cycles_started;
  obs::Counter accepted;
  obs::Counter rejected;
  obs::Counter unauthorized;
  obs::Counter attacks_launched;
  obs::Counter timeouts;   // cycles abandoned waiting for the gateway
  obs::Counter failovers;  // times the device re-homed to a backup
  obs::Counter failbacks;  // times it returned to its recovered primary
  /// Simulated PoW seconds spent, one entry per mined transaction.
  std::vector<Duration> pow_durations;
  /// Simulated times at which submissions were accepted.
  std::vector<TimePoint> accepted_times;
  /// Distribution view of pow_durations (same observations, O(buckets)
  /// memory) — what the registry exports; the vector stays for the energy
  /// and Fig 9 per-sample computations.
  obs::Histogram pow_sim_s;

  /// Registers everything under `scope` (the SmartFactory binds
  /// "device.d<i>").
  void attach_to(const obs::Scope& scope) const;
};

class LightNode {
 public:
  LightNode(sim::NodeId id, crypto::Identity identity, sim::NodeId gateway,
            sim::Network& network, LightNodeConfig config = {});

  /// Registers with the network and schedules the first cycle.
  void start();

  /// Powers the device off: detaches from the network and cancels future
  /// cycles/probes (pending scheduler lambdas become no-ops). Used by chaos
  /// drivers to quiesce traffic before checking convergence.
  void stop();
  bool running() const { return running_; }

  /// Queues an attack to replace the next honest cycle at/after `at`.
  void schedule_attack(TimePoint at, AttackKind kind);

  /// Registers an alternative gateway; after `failover_after_timeouts`
  /// consecutive unanswered cycles the device re-homes to the next backup
  /// (round-robin through home + backups). Models the paper's "resilient
  /// for failure of one or more nodes" availability claim end to end.
  void add_backup_gateway(sim::NodeId gateway) {
    backup_gateways_.push_back(gateway);
  }
  sim::NodeId current_gateway() const { return gateway_; }

  /// Data source override (default: random bytes of config.payload_size).
  void set_data_source(std::function<Bytes()> source) {
    data_source_ = std::move(source);
  }

  /// Installs the symmetric key (sensitive-data devices) — normally done by
  /// the Fig 4 handshake, exposed for direct setup in tests.
  void install_symmetric_key(const auth::SymmetricKey& key) {
    protector_.install_key(key);
  }
  bool has_symmetric_key() const { return protector_.has_key(); }
  const auth::SensorDataProtector& protector() const { return protector_; }

  /// Wires up the device side of the key-distribution handshake.
  void enable_keydist(const crypto::Ed25519PublicKey& manager_key);

  /// Asks the gateway whether a transaction is confirmed; the answer lands
  /// in last_confirmation() after the simulated round trip.
  void query_confirmation(const tangle::TxId& id);
  const std::optional<ConfirmationInfo>& last_confirmation() const {
    return last_confirmation_;
  }

  const crypto::Identity& identity() const { return identity_; }
  crypto::PublicIdentity public_identity() const {
    return identity_.public_identity();
  }
  sim::NodeId node_id() const { return id_; }
  const LightNodeStats& stats() const { return stats_; }

  /// Resumes the per-sender sequence counter after a device restart — the
  /// ledger's slot for this account continues where history left off
  /// (query Gateway::ledger().next_sequence()). Devices persist this in
  /// practice; reusing an old slot reads as a double-spend.
  void resume_sequence(std::uint64_t next) { sequence_ = next; }

 private:
  void on_message(sim::NodeId from, const Bytes& wire);
  void begin_cycle();
  void schedule_next_cycle();
  /// Periodic primary-recovery probe loop (see failback_probe_interval).
  void schedule_failback_probe();
  void on_tips(const TipsResponse& tips);
  void on_result(const SubmitResult& result);
  void handle_keydist(const RpcMessage& msg, sim::NodeId from);

  tangle::Transaction build_tx(const tangle::TipPair& parents, int difficulty,
                               std::uint64_t sequence, Bytes payload,
                               bool encrypted);
  void mine_and_submit(tangle::Transaction tx);
  void send(MsgType type, const Bytes& body);
  TimePoint now() const { return network_.scheduler().now(); }

  sim::NodeId id_;
  crypto::Identity identity_;
  sim::NodeId gateway_;
  sim::NodeId home_gateway_;  // primary; failback target after a failover
  sim::Network& network_;
  LightNodeConfig config_;
  bool running_ = false;

  crypto::Csprng csprng_;
  Rng rng_;
  consensus::Miner miner_;
  auth::SensorDataProtector protector_;
  std::optional<auth::DeviceKeyDist> keydist_;
  std::function<Bytes()> data_source_;

  std::uint64_t sequence_ = 0;
  std::uint64_t next_request_id_ = 1;
  bool cycle_in_flight_ = false;
  std::uint64_t awaiting_results_ = 0;
  std::uint64_t cycle_serial_ = 0;  // distinguishes cycles for the timeout

  /// Stale pair remembered from the first tips response (lazy-attack fodder).
  std::optional<tangle::TipPair> stale_parents_;
  struct PlannedAttack {
    TimePoint at;
    AttackKind kind;
  };
  std::deque<PlannedAttack> attack_plan_;

  std::optional<ConfirmationInfo> last_confirmation_;
  std::vector<sim::NodeId> backup_gateways_;
  std::size_t next_backup_ = 0;
  std::uint32_t consecutive_timeouts_ = 0;
  /// Request id of the in-flight failback probe (0 = none); its response
  /// triggers the failback instead of feeding the submission cycle.
  std::uint64_t probe_request_id_ = 0;
  LightNodeStats stats_;
};

}  // namespace biot::node
