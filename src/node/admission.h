// Staged transaction admission — the single entry point through which EVERY
// transaction reaches a gateway's tangle replica.
//
// The paper's gateway (Section IV-A) is one admission point enforcing
// authorization, credit-difficulty, conflict and lazy-tip rules. Our node
// layer reaches that logic from five directions: live device service,
// peer gossip, anti-entropy sync backfill, orphan-buffer retries and
// cold-start replay of a persisted chain. Each direction is an `Ingress`
// class declaring which pipeline stages apply to it; the stages themselves
// are shared, so the paths cannot drift apart — in particular, cold-start
// replay is literally "run the pipeline over the restored arrival order",
// which is what makes the paper's "credit is re-derivable from chain
// records" property hold by construction (see tests/test_admission.cpp,
// ReplayEqualsLive).
//
// Stages (in order): authorize → difficulty-policy → conflict-check →
// precheck+verify → lazy-detect → attach → derived-state. The verify stage
// performs the ONE Ed25519 verification per transaction (or accepts a
// caller-supplied VerifiedToken); Tangle::add consumes the token instead of
// re-verifying. The derived-state stage does not
// mutate subsystems inline; it emits one typed AttachEvent to an ordered
// observer list (ledger, quality, credit, milestones, authorization,
// stats). Rejections emit a RejectEvent naming the failing stage. New
// derived state (metrics, tracing, detectors) plugs in as another observer
// without touching admission logic. Ordering/annotation contract:
// DESIGN.md section 9.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "auth/authorization.h"
#include "common/executor.h"
#include "consensus/credit.h"
#include "consensus/detectors.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "tangle/ledger.h"
#include "tangle/milestones.h"
#include "tangle/tangle.h"

namespace biot::node {

/// Where a transaction entered the gateway.
enum class Ingress : std::uint8_t {
  kService = 0,      // live device submission (submit / offloaded attach)
  kGossip = 1,       // peer gateway broadcast
  kSync = 2,         // anti-entropy backfill from a peer
  kOrphanRetry = 3,  // re-admission of a buffered out-of-order transaction
  kReplay = 4,       // cold-start replay of a persisted chain
};

std::string_view ingress_name(Ingress ingress) noexcept;

/// Which stages apply to an ingress class. Gossip/sync/orphan transactions
/// were already authorized and policy-checked by the accepting gateway
/// (re-checking would race with credit drift between replicas — Section
/// IV-A: the tangle itself is public); replay additionally trusts the
/// persisted chain outright, since everything on it passed a live pipeline
/// before being persisted.
struct IngressTraits {
  bool authorize = false;          // service-edge authorization-list gate
  bool enforce_difficulty = false; // credit/fixed difficulty floor
  bool strict_conflict = false;    // pre-check ledger; reject + punish
  bool gate_milestone_issuer = false;  // reject milestones not from the
                                       // coordinator (holds for gossip too —
                                       // a forged checkpoint would confirm
                                       // arbitrary history)
};

constexpr IngressTraits ingress_traits(Ingress ingress) {
  switch (ingress) {
    case Ingress::kService:
      return {.authorize = true, .enforce_difficulty = true,
              .strict_conflict = true, .gate_milestone_issuer = true};
    case Ingress::kGossip:
    case Ingress::kSync:
    case Ingress::kOrphanRetry:
      return {.gate_milestone_issuer = true};
    case Ingress::kReplay:
      // The milestone observer still verifies the issuer before confirming,
      // so a tampered chain file cannot smuggle confirmations in.
      return {};
  }
  return {};
}

/// The pipeline stage that rejected a transaction.
enum class AdmissionStage : std::uint8_t {
  kAuthorize = 0,
  kDifficulty = 1,
  kConflictCheck = 2,
  kAttach = 3,
  kVerify = 4,  // signature verification (runs between conflict and attach)
};

/// Emitted once per successful attach, after the transaction is in the
/// tangle. Observers run in registration order; the annotation fields are
/// written by earlier observers for later ones (ledger outcome before
/// credit, quality before credit) — see DESIGN.md section 9.
struct AttachEvent {
  const tangle::Transaction& tx;
  tangle::TxId id;
  TimePoint arrival = 0.0;
  Ingress ingress = Ingress::kService;
  bool lazy = false;  // set by the pipeline's lazy-detect stage

  // Annotations:
  tangle::Ledger::ApplyOutcome ledger_outcome =
      tangle::Ledger::ApplyOutcome::kApplied;  // LedgerObserver
  bool conflicted = false;                     // LedgerObserver
  bool poor_quality = false;                   // QualityObserver
};

/// Emitted when a stage rejects the transaction (it never attached).
struct RejectEvent {
  const tangle::Transaction& tx;
  TimePoint arrival = 0.0;
  Ingress ingress = Ingress::kService;
  AdmissionStage stage = AdmissionStage::kAuthorize;
  ErrorCode code = ErrorCode::kRejected;
};

class AttachObserver {
 public:
  virtual ~AttachObserver() = default;
  virtual void on_attach(AttachEvent& event) { (void)event; }
  virtual void on_reject(const RejectEvent& event) { (void)event; }
};

/// Sensor-data quality inspector (future-work extension, Section VIII).
/// Returns a quality score in [0, 1] for a transaction's payload, or
/// nullopt when the payload cannot be judged (e.g. encrypted).
using QualityInspector =
    std::function<std::optional<double>(const tangle::Transaction&)>;

/// Gateway operation counters. Mutated only by StatsObserver and the
/// gateway's transport edge (rate limiter, gossip/sync/orphan plumbing).
/// Fields are obs::Counter — value-identical to the raw integers they
/// replaced for readers, and exportable through a MetricsRegistry scope
/// via attach_to() (gateway.h binds "gateway.g<i>.admission").
struct GatewayStats {
  obs::Counter tips_served;
  obs::Counter accepted;
  obs::Counter rejected_unauthorized;
  obs::Counter rejected_difficulty;
  obs::Counter rejected_pow;        // client-submitted PoW failed validation
  obs::Counter pow_offload_exhausted;  // gateway-side nonce search gave up
  obs::Counter rejected_conflict;   // double-spends caught
  obs::Counter rejected_signature;  // invalid Ed25519 signatures
  obs::Counter rejected_other;
  obs::Counter lazy_detected;
  obs::Counter poor_quality_detected;
  obs::Counter gossip_received;
  obs::Counter syncs_sent;
  obs::Counter sync_txs_served;    // txs shipped to lagging peers
  obs::Counter sync_txs_applied;   // txs backfilled from peers
  obs::Counter sync_fallbacks;     // sketch undecodable -> full inventory
  obs::Counter rate_limited;       // service requests shed at the edge
  obs::Counter rate_buckets_evicted;  // idle token buckets reclaimed
  obs::Counter orphans_buffered;   // out-of-order gossip held back
  obs::Counter orphans_adopted;    // later attached successfully
  obs::Counter orphans_dropped;    // shed because the buffer was full
  obs::Counter drain_requests;     // outbox drain chunks received
  obs::Counter offline_drained;    // offline-envelope txs admitted via drain
  obs::Counter offline_duplicates; // drain items answered "already settled"

  /// Registers every counter under `scope` (e.g. "gateway.g0.admission").
  void attach_to(const obs::Scope& scope) const;
};

/// Wall-clock latency of each admission stage plus the whole admit() call.
/// Owned by the gateway next to its GatewayStats; the pipeline takes an
/// optional pointer and skips all timing when none is installed.
struct AdmissionMetrics {
  obs::Histogram authorize_wall_s;
  obs::Histogram difficulty_wall_s;
  obs::Histogram conflict_wall_s;
  obs::Histogram verify_wall_s;
  obs::Histogram lazy_wall_s;
  obs::Histogram attach_wall_s;
  obs::Histogram observers_wall_s;
  obs::Histogram admit_wall_s;  // end-to-end, accepted and rejected alike

  /// Registers every histogram under `scope` (e.g. "gateway.g0.admission").
  void attach_to(const obs::Scope& scope) const;
};

/// Instrumentation of the batch ingress (admit_many): how big the bursts
/// are, how the wall time splits between the parallel read phase and the
/// serialized commit phase, and how deep the executor queue ran while the
/// read fan-out was in flight. Owned by the gateway next to
/// AdmissionMetrics; nullptr disables all of it.
struct BatchAdmissionMetrics {
  obs::Histogram batch_size{obs::HistogramSpec::size()};
  obs::Histogram read_wall_s;    // phase A: precheck + batch signature verify
  obs::Histogram commit_wall_s;  // phase B: serialized stages + batched attach
  obs::Gauge read_queue_depth;   // executor backlog sampled mid-fan-out

  /// Registers everything under `scope` (e.g. "gateway.g0.admission.batch").
  void attach_to(const obs::Scope& scope) const;
};

// ---- Built-in derived-state observers (registration order matters) --------

/// Applies the transaction to the account ledger and annotates the event
/// with the outcome. Service-edge transactions passed the strict
/// conflict-check stage, so plain apply cannot fail; every other ingress
/// uses the replica-consistent resolving rule (Ledger::apply_resolving).
class LedgerObserver : public AttachObserver {
 public:
  explicit LedgerObserver(tangle::Ledger& ledger) : ledger_(ledger) {}
  void on_attach(AttachEvent& event) override;

 private:
  tangle::Ledger& ledger_;
};

/// Scores data payloads through the installed inspector; a zero score marks
/// the event poor-quality (the transaction still attaches — bad data is not
/// a protocol violation; the credit observer prices it).
class QualityObserver : public AttachObserver {
 public:
  explicit QualityObserver(const QualityInspector& inspector)
      : inspector_(inspector) {}
  void on_attach(AttachEvent& event) override;

 private:
  const QualityInspector& inspector_;  // gateway-owned; may be re-installed
};

/// Feeds the credit model (Eqns 3-5): valid activity, lazy tips, conflicts
/// and poor quality — including strict-stage conflict rejections, which are
/// punished even though nothing attached.
class CreditObserver : public AttachObserver {
 public:
  explicit CreditObserver(consensus::CreditRegistry& credit)
      : credit_(credit) {}
  void on_attach(AttachEvent& event) override;
  void on_reject(const RejectEvent& event) override;

 private:
  consensus::CreditRegistry& credit_;
};

/// Confirms the past cone of coordinator-signed milestones. Verifies the
/// issuer itself so replay (which skips the authorize stage) cannot honour
/// a forged checkpoint.
class MilestoneObserver : public AttachObserver {
 public:
  MilestoneObserver(tangle::MilestoneTracker& milestones,
                    const tangle::Tangle& tangle,
                    const std::optional<crypto::Ed25519PublicKey>& coordinator)
      : milestones_(milestones), tangle_(tangle), coordinator_(coordinator) {}
  void on_attach(AttachEvent& event) override;

 private:
  tangle::MilestoneTracker& milestones_;
  const tangle::Tangle& tangle_;
  const std::optional<crypto::Ed25519PublicKey>& coordinator_;
};

/// Applies on-chain authorization-list updates (Eqn 1).
class AuthObserver : public AttachObserver {
 public:
  explicit AuthObserver(auth::AuthRegistry& auth) : auth_(auth) {}
  void on_attach(AttachEvent& event) override;

 private:
  auth::AuthRegistry& auth_;
};

/// Translates events into GatewayStats counters. Registered last so it sees
/// every annotation.
class StatsObserver : public AttachObserver {
 public:
  explicit StatsObserver(GatewayStats& stats) : stats_(stats) {}
  void on_attach(AttachEvent& event) override;
  void on_reject(const RejectEvent& event) override;

 private:
  GatewayStats& stats_;
};

// ---- The pipeline ----------------------------------------------------------

/// One transaction of a batch ingress (admit_many). `pre_verified` follows
/// the same contract as AdmissionPipeline::admit: a token covering tx.id()
/// skips the pipeline's own signature verification (replay of a persisted
/// chain arrives with one per transaction).
struct AdmissionBatchItem {
  const tangle::Transaction* tx = nullptr;
  TimePoint arrival = 0.0;
  const tangle::VerifiedToken* pre_verified = nullptr;
};

class AdmissionPipeline {
 public:
  /// Difficulty the active policy currently requires of a sender (the
  /// gateway binds its policy + weight oracle + clock here).
  using DifficultyFn = std::function<int(const tangle::AccountKey&)>;

  AdmissionPipeline(tangle::Tangle& tangle, const auth::AuthRegistry& auth,
                    const tangle::Ledger& ledger,
                    const std::optional<crypto::Ed25519PublicKey>& coordinator,
                    consensus::LazyTipPolicy lazy_policy,
                    DifficultyFn required_difficulty)
      : tangle_(tangle),
        auth_(auth),
        ledger_(ledger),
        coordinator_(coordinator),
        lazy_policy_(lazy_policy),
        required_difficulty_(std::move(required_difficulty)) {}

  /// Observers run in registration order on every event.
  void add_observer(std::unique_ptr<AttachObserver> observer) {
    observers_.push_back(std::move(observer));
  }

  /// Installs per-stage latency histograms (nullptr disables timing).
  void set_metrics(AdmissionMetrics* metrics) { metrics_ = metrics; }

  /// Runs the staged admission of one transaction. `arrival` is the
  /// gateway's current time for live ingresses and the recorded arrival
  /// for replay — it is the timestamp every stage and observer sees, which
  /// is exactly why replay reproduces live derived state.
  ///
  /// `pre_verified` (optional) is a token proving the signature was already
  /// checked (batch-verified sync burst, replay of a previously admitted
  /// chain). When it covers tx.id() the pipeline skips its own verification;
  /// each transaction is Ed25519-verified exactly once either way.
  [[nodiscard]] Status admit(const tangle::Transaction& tx, TimePoint arrival,
                             Ingress ingress,
                             const tangle::VerifiedToken* pre_verified =
                                 nullptr);

  /// Two-phase batch admission of a gossip/sync burst or a replay slice.
  ///
  /// Phase A (read): the items are chunked across `executor` and each chunk
  /// runs the read-mostly work against a stable read view of the tangle —
  /// the structural precheck (so duplicates cost no Ed25519 work; unknown
  /// parents still verify, since the parent may attach earlier in this very
  /// batch) and ONE batched signature verification
  /// (crypto::ed25519_verify_batch) minting a VerifiedToken per valid item.
  /// Nothing mutates until every read task has joined.
  ///
  /// Phase B (commit): the items run the full staged pipeline serially, in
  /// input order, inside one Tangle::AttachBatch — byte-identical stage
  /// semantics, verdicts and observer order to calling admit() per item,
  /// with the secondary-index/digest/sketch maintenance amortized across
  /// the batch. Items whose signature failed phase A carry no token and are
  /// rejected by the normal kVerify stage, exactly as the serial path
  /// rejects them.
  ///
  /// Determinism: phase A is pure per-item work (the only shared state is
  /// the frozen tangle), so the returned statuses — and every byte of
  /// tangle/ledger/credit state — are identical for InlineExecutor and any
  /// ThreadPoolExecutor width, pinned by tests/test_concurrency.cpp.
  [[nodiscard]] std::vector<Status> admit_many(
      const std::vector<AdmissionBatchItem>& items, Ingress ingress,
      Executor& executor);

  /// Installs batch-ingress instrumentation (nullptr disables it).
  void set_batch_metrics(BatchAdmissionMetrics* metrics) {
    batch_metrics_ = metrics;
  }

 private:
  Status reject(const tangle::Transaction& tx, TimePoint arrival,
                Ingress ingress, AdmissionStage stage, Status status);

  /// The staged admission body shared by admit() and admit_many(): when
  /// `batch` is non-null the attach stage goes through it (deferred index
  /// maintenance) instead of Tangle::add.
  Status admit_one(const tangle::Transaction& tx, TimePoint arrival,
                   Ingress ingress,
                   const tangle::VerifiedToken* pre_verified,
                   tangle::Tangle::AttachBatch* batch);

  /// Phase A worker: precheck + batched signature verification of
  /// items[begin, end), writing minted tokens into `tokens`. Runs on
  /// executor threads; touches only the frozen tangle and its own slice.
  void verify_chunk(const std::vector<AdmissionBatchItem>& items,
                    std::size_t begin, std::size_t end,
                    std::vector<std::optional<tangle::VerifiedToken>>& tokens)
      const;

  tangle::Tangle& tangle_;
  const auth::AuthRegistry& auth_;
  const tangle::Ledger& ledger_;  // strict pre-check only; writes go through
                                  // LedgerObserver
  const std::optional<crypto::Ed25519PublicKey>& coordinator_;
  consensus::LazyTipPolicy lazy_policy_;
  DifficultyFn required_difficulty_;
  std::vector<std::unique_ptr<AttachObserver>> observers_;
  AdmissionMetrics* metrics_ = nullptr;
  BatchAdmissionMetrics* batch_metrics_ = nullptr;
};

}  // namespace biot::node
