// Typed RPC messages between light nodes, gateways and the manager.
// Substitutes for the paper's RESTful HTTP interface between PyOTA light
// nodes and IRI full nodes (Section V): the same request/response shapes,
// serialized through the canonical codec and carried by sim::Network.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/ed25519.h"
#include "tangle/transaction.h"

namespace biot::node {

enum class MsgType : std::uint8_t {
  kGetTipsRequest = 1,   // device -> gateway: step 4 of Fig 6
  kGetTipsResponse = 2,  // gateway -> device: two tips + required difficulty
  kSubmitTx = 3,         // device -> gateway: step 5 of Fig 6
  kSubmitResult = 4,     // gateway -> device
  kBroadcastTx = 5,      // gateway -> gateway gossip
  kKeyDistM1 = 6,        // manager -> device (Fig 4)
  kKeyDistM2 = 7,        // device -> manager
  kKeyDistM3 = 8,        // manager -> device
  kAttachRequest = 9,    // device -> gateway: signed tx, PoW offloaded
  kAttachResult = 10,    // gateway -> device (SubmitResult body)
  kConfirmQuery = 11,    // device -> gateway: is my transaction confirmed?
  kConfirmResponse = 12, // gateway -> device
  kSyncSummary = 13,     // gateway -> gateway: anti-entropy digest + sketch
  kSyncMissing = 14,     // gateway -> gateway: transactions the peer lacked
  kDataQuery = 15,       // consumer -> gateway: read sensor data off chain
  kDataResponse = 16,    // gateway -> consumer
  kSyncInventoryRequest = 17,  // gateway -> gateway: sketch undecodable,
                               // request the full id inventory (fallback)
  kSyncInventory = 18,   // gateway -> gateway: full id inventory
  kOfflineOffer = 19,    // device -> device: signed OfflineRecord, offered
                         // for countersigning while both are dark
  kOfflineReceipt = 20,  // device -> device: countersignature over the offer
  kOfflineDrainRequest = 21,  // device -> gateway: one outbox drain chunk
  kOfflineDrainResult = 22,   // gateway -> device: per-item drain verdicts
};

/// Envelope for every message on the wire.
struct RpcMessage {
  MsgType type = MsgType::kGetTipsRequest;
  std::uint64_t request_id = 0;
  /// Sender's on-chain identity; gateways use it for authorization checks
  /// and credit lookups.
  crypto::Ed25519PublicKey sender_key{};
  Bytes body;

  Bytes encode() const;
  static Result<RpcMessage> decode(ByteView wire);
};

/// Body of kGetTipsResponse.
struct TipsResponse {
  ErrorCode status = ErrorCode::kOk;
  std::string message;
  tangle::TxId tip1{};
  tangle::TxId tip2{};
  std::uint8_t required_difficulty = 0;

  Bytes encode() const;
  static Result<TipsResponse> decode(ByteView wire);
};

/// Body of kConfirmResponse (kConfirmQuery's body is the raw 32-byte TxId).
struct ConfirmationInfo {
  tangle::TxId tx_id{};
  bool known = false;            // attached to the gateway's replica at all
  bool milestone_confirmed = false;
  bool weight_confirmed = false; // cumulative weight >= config threshold
  std::uint64_t cumulative_weight = 0;

  Bytes encode() const;
  static Result<ConfirmationInfo> decode(ByteView wire);
};

/// Body of kDataQuery: which data transactions to read back.
struct DataQuery {
  /// All-zero = any sender; otherwise only this account's transactions.
  crypto::Ed25519PublicKey sender{};
  TimePoint since = 0.0;        // gateway arrival time lower bound
  std::uint32_t max_results = 100;

  Bytes encode() const;
  static Result<DataQuery> decode(ByteView wire);
};

/// Body of kDataResponse: matching data transactions, arrival order.
struct DataResponse {
  std::vector<tangle::Transaction> transactions;

  Bytes encode() const;
  static Result<DataResponse> decode(ByteView wire);
};

/// Body of kOfflineDrainRequest: one bounded chunk of outbox transactions
/// (kOfflineOffer/kOfflineReceipt bodies are a bare OfflineRecord /
/// OfflineReceipt encoding — see node/outbox.h).
struct OfflineDrainRequest {
  std::vector<tangle::Transaction> transactions;

  Bytes encode() const;
  static Result<OfflineDrainRequest> decode(ByteView wire);
};

/// Body of kOfflineDrainResult: one verdict per drained transaction, in
/// request order.
struct OfflineDrainResult {
  struct Item {
    ErrorCode status = ErrorCode::kOk;
    tangle::TxId tx_id{};
  };
  std::vector<Item> items;

  Bytes encode() const;
  static Result<OfflineDrainResult> decode(ByteView wire);
};

/// Body of kSubmitResult.
struct SubmitResult {
  ErrorCode status = ErrorCode::kOk;
  std::string message;
  tangle::TxId tx_id{};

  Bytes encode() const;
  static Result<SubmitResult> decode(ByteView wire);
};

}  // namespace biot::node
