#include "node/light_node.h"

#include "common/log.h"

namespace biot::node {

namespace {
Logger logger("light_node");
}

void LightNodeStats::attach_to(const obs::Scope& scope) const {
  scope.attach("cycles_started", &cycles_started);
  scope.attach("accepted", &accepted);
  scope.attach("rejected", &rejected);
  scope.attach("unauthorized", &unauthorized);
  scope.attach("attacks_launched", &attacks_launched);
  scope.attach("timeouts", &timeouts);
  scope.attach("failovers", &failovers);
  scope.attach("failbacks", &failbacks);
  scope.attach("pow_sim_s", &pow_sim_s);
}

LightNode::LightNode(sim::NodeId id, crypto::Identity identity,
                     sim::NodeId gateway, sim::Network& network,
                     LightNodeConfig config)
    : id_(id),
      identity_(std::move(identity)),
      gateway_(gateway),
      home_gateway_(gateway),
      network_(network),
      config_(config),
      csprng_(0xb107ull * (id + 1)),
      rng_(0x11aull * (id + 1)),
      miner_(std::uint64_t{id} << 32) {
  data_source_ = [this] { return csprng_.bytes(config_.payload_size); };
}

void LightNode::start() {
  running_ = true;
  network_.attach(id_, [this](sim::NodeId from, const Bytes& wire) {
    on_message(from, wire);
  });
  network_.scheduler().at(config_.start_time, [this] { begin_cycle(); });
  schedule_failback_probe();
}

void LightNode::stop() {
  if (!running_) return;
  running_ = false;
  network_.detach(id_);
  cycle_in_flight_ = false;
  awaiting_results_ = 0;
  probe_request_id_ = 0;
}

void LightNode::schedule_failback_probe() {
  if (config_.failback_probe_interval <= 0.0) return;
  network_.scheduler().after(config_.failback_probe_interval, [this] {
    if (!running_) return;
    if (gateway_ != home_gateway_) {
      // Probe the primary with a plain tips request; ANY answer (even
      // "unauthorized" — the auth list may still be resyncing) proves it is
      // back. Sent outside the submission cycle so a dead primary costs
      // nothing but this message.
      probe_request_id_ = next_request_id_++;
      RpcMessage msg;
      msg.type = MsgType::kGetTipsRequest;
      msg.request_id = probe_request_id_;
      msg.sender_key = identity_.public_identity().sign_key;
      network_.send(id_, home_gateway_, msg.encode());
    }
    schedule_failback_probe();
  });
}

void LightNode::schedule_attack(TimePoint at, AttackKind kind) {
  attack_plan_.push_back(PlannedAttack{at, kind});
}

void LightNode::enable_keydist(const crypto::Ed25519PublicKey& manager_key) {
  keydist_.emplace(identity_, manager_key, network_.scheduler().clock(), csprng_);
}

void LightNode::query_confirmation(const tangle::TxId& id) {
  send(MsgType::kConfirmQuery, id.bytes());
}

void LightNode::send(MsgType type, const Bytes& body) {
  RpcMessage msg;
  msg.type = type;
  msg.request_id = next_request_id_++;
  msg.sender_key = identity_.public_identity().sign_key;
  msg.body = body;
  network_.send(id_, gateway_, msg.encode());
}

void LightNode::begin_cycle() {
  if (!running_ || cycle_in_flight_) return;
  cycle_in_flight_ = true;
  ++stats_.cycles_started;
  ++cycle_serial_;
  send(MsgType::kGetTipsRequest, {});

  // Watchdog: a shed or lost reply must not wedge the device forever; and
  // repeated silence means the gateway is likely down — fail over.
  if (config_.request_timeout > 0.0) {
    network_.scheduler().after(
        config_.request_timeout, [this, serial = cycle_serial_] {
          if (running_ && cycle_in_flight_ && cycle_serial_ == serial) {
            ++stats_.timeouts;
            awaiting_results_ = 0;
            if (++consecutive_timeouts_ >= config_.failover_after_timeouts &&
                !backup_gateways_.empty()) {
              gateway_ = backup_gateways_[next_backup_++ %
                                          backup_gateways_.size()];
              consecutive_timeouts_ = 0;
              ++stats_.failovers;
              logger.info() << "node " << id_ << " failing over to gateway "
                            << gateway_;
            }
            schedule_next_cycle();
          }
        });
  }
}

void LightNode::schedule_next_cycle() {
  cycle_in_flight_ = false;
  if (config_.continuous) {
    network_.scheduler().after(0.0, [this] { begin_cycle(); });
  } else {
    network_.scheduler().after(config_.collect_interval, [this] { begin_cycle(); });
  }
}

void LightNode::on_message(sim::NodeId from, const Bytes& wire) {
  const auto msg = RpcMessage::decode(wire);
  if (!msg) {
    logger.warn() << "node " << id_ << ": malformed message";
    return;
  }
  switch (msg.value().type) {
    case MsgType::kGetTipsResponse: {
      if (probe_request_id_ != 0 &&
          msg.value().request_id == probe_request_id_) {
        // Failback probe answered: the primary is back. Not fed to on_tips —
        // probes must not start a submission outside the cycle.
        probe_request_id_ = 0;
        if (gateway_ != home_gateway_) {
          gateway_ = home_gateway_;
          consecutive_timeouts_ = 0;
          ++stats_.failbacks;
          logger.info() << "node " << id_ << " failing back to gateway "
                        << gateway_;
        }
        break;
      }
      const auto tips = TipsResponse::decode(msg.value().body);
      if (!tips) break;
      if (tips.value().required_difficulty > config_.max_difficulty) {
        // Corrupted/forged difficulty: honouring it would wedge the device
        // in an unbounded nonce grind. Drop it; the watchdog retries.
        logger.warn() << "node " << id_ << ": implausible difficulty "
                      << static_cast<int>(tips.value().required_difficulty)
                      << " in tips response, dropping";
        break;
      }
      on_tips(tips.value());
      break;
    }
    case MsgType::kSubmitResult:
    case MsgType::kAttachResult: {
      const auto result = SubmitResult::decode(msg.value().body);
      if (result) on_result(result.value());
      break;
    }
    case MsgType::kConfirmResponse: {
      const auto info = ConfirmationInfo::decode(msg.value().body);
      if (info) last_confirmation_ = info.value();
      break;
    }
    case MsgType::kKeyDistM1:
    case MsgType::kKeyDistM3:
      handle_keydist(msg.value(), from);
      break;
    default:
      break;
  }
}

tangle::Transaction LightNode::build_tx(const tangle::TipPair& parents,
                                        int difficulty, std::uint64_t sequence,
                                        Bytes payload, bool encrypted) {
  tangle::Transaction tx;
  tx.type = tangle::TxType::kData;
  tx.sender = identity_.public_identity().sign_key;
  tx.parent1 = parents.first;
  tx.parent2 = parents.second;
  tx.sequence = sequence;
  tx.timestamp = now();
  tx.difficulty = static_cast<std::uint8_t>(difficulty);
  tx.payload = std::move(payload);
  tx.payload_encrypted = encrypted;
  return tx;
}

void LightNode::mine_and_submit(tangle::Transaction tx) {
  if (config_.offload_pow) {
    // Remote attachment: sign and ship; the gateway grinds the nonce. The
    // device pays only the tip-validation time.
    tx.signature = identity_.sign(tx.signing_bytes());
    stats_.pow_durations.push_back(0.0);
    stats_.pow_sim_s.observe(0.0);
    ++awaiting_results_;
    network_.scheduler().after(
        config_.tip_validation_s,
        [this, wire = tx.encode()] { send(MsgType::kAttachRequest, wire); });
    return;
  }

  // Local PoW: really grind the nonce (cheap on the host at IoT
  // difficulties) ...
  const auto mined = miner_.mine(tx.parent1, tx.parent2, tx.difficulty);
  tx.nonce = mined->nonce;
  tx.signature = identity_.sign(tx.signing_bytes());

  // ... but account for it at device speed on the simulated clock.
  const Duration pow_time =
      config_.profile.sample_pow_time(tx.difficulty, rng_);
  stats_.pow_durations.push_back(pow_time);
  stats_.pow_sim_s.observe(pow_time);

  ++awaiting_results_;
  network_.scheduler().after(
      config_.tip_validation_s + pow_time,
      [this, wire = tx.encode()] { send(MsgType::kSubmitTx, wire); });
}

void LightNode::on_tips(const TipsResponse& tips) {
  if (tips.status != ErrorCode::kOk) {
    ++stats_.unauthorized;
    schedule_next_cycle();
    return;
  }

  if (!stale_parents_) stale_parents_ = {tips.tip1, tips.tip2};

  // Pull due attacks off the plan.
  std::optional<AttackKind> attack;
  if (!attack_plan_.empty() && attack_plan_.front().at <= now()) {
    attack = attack_plan_.front().kind;
    attack_plan_.pop_front();
  }

  const auto [payload, encrypted] = protector_.protect(data_source_(), csprng_);

  if (attack == AttackKind::kLazyTips) {
    // Approve the remembered stale pair instead of the fresh tips.
    ++stats_.attacks_launched;
    mine_and_submit(build_tx(*stale_parents_, tips.required_difficulty,
                             sequence_++, payload, encrypted));
    return;
  }

  if (attack == AttackKind::kDoubleSpend) {
    // Two distinct transactions claiming the same sequence slot.
    ++stats_.attacks_launched;
    const std::uint64_t seq = sequence_++;
    auto tx1 = build_tx({tips.tip1, tips.tip2}, tips.required_difficulty, seq,
                        payload, encrypted);
    const auto [payload2, encrypted2] = protector_.protect(data_source_(), csprng_);
    auto tx2 = build_tx({tips.tip2, tips.tip1}, tips.required_difficulty, seq,
                        payload2, encrypted2);
    mine_and_submit(std::move(tx1));
    mine_and_submit(std::move(tx2));
    return;
  }

  mine_and_submit(build_tx({tips.tip1, tips.tip2}, tips.required_difficulty,
                           sequence_++, payload, encrypted));
}

void LightNode::on_result(const SubmitResult& result) {
  consecutive_timeouts_ = 0;  // the gateway is alive
  if (result.status == ErrorCode::kOk) {
    ++stats_.accepted;
    stats_.accepted_times.push_back(now());
  } else {
    ++stats_.rejected;
  }
  if (!cycle_in_flight_) return;  // stale reply after a watchdog timeout
  if (awaiting_results_ > 0) --awaiting_results_;
  if (awaiting_results_ == 0) schedule_next_cycle();
}

void LightNode::handle_keydist(const RpcMessage& msg, sim::NodeId from) {
  if (!keydist_) return;
  if (msg.type == MsgType::kKeyDistM1) {
    auto m2 = keydist_->handle_m1(msg.body);
    if (!m2) {
      logger.warn() << "node " << id_ << ": M1 rejected: "
                    << m2.status().to_string();
      return;
    }
    RpcMessage out;
    out.type = MsgType::kKeyDistM2;
    out.request_id = msg.request_id;
    out.sender_key = identity_.public_identity().sign_key;
    out.body = std::move(m2).take();
    network_.send(id_, from, out.encode());
  } else if (msg.type == MsgType::kKeyDistM3) {
    const auto status = keydist_->handle_m3(msg.body);
    if (status.is_ok()) {
      protector_.install_key(keydist_->key());
    } else {
      logger.warn() << "node " << id_ << ": M3 rejected: " << status.to_string();
    }
  }
}

}  // namespace biot::node
