#include "node/light_node.h"

#include <algorithm>

#include "common/codec.h"
#include "common/log.h"
#include "storage/blob_io.h"

namespace biot::node {

namespace {
Logger logger("light_node");
}

void LightNodeStats::attach_to(const obs::Scope& scope) const {
  scope.attach("cycles_started", &cycles_started);
  scope.attach("accepted", &accepted);
  scope.attach("rejected", &rejected);
  scope.attach("unauthorized", &unauthorized);
  scope.attach("attacks_launched", &attacks_launched);
  scope.attach("timeouts", &timeouts);
  scope.attach("failovers", &failovers);
  scope.attach("failbacks", &failbacks);
  scope.attach("went_offline", &went_offline);
  scope.attach("offers_sent", &offers_sent);
  scope.attach("witnessed", &witnessed);
  scope.attach("pow_sim_s", &pow_sim_s);
}

LightNode::LightNode(sim::NodeId id, crypto::Identity identity,
                     sim::NodeId gateway, sim::Network& network,
                     LightNodeConfig config)
    : id_(id),
      identity_(std::move(identity)),
      gateway_(gateway),
      home_gateway_(gateway),
      network_(network),
      config_(config),
      csprng_(0xb107ull * (id + 1)),
      rng_(0x11aull * (id + 1)),
      miner_(std::uint64_t{id} << 32),
      outbox_(config.outbox) {
  data_source_ = [this] { return csprng_.bytes(config_.payload_size); };
}

void LightNode::start() {
  running_ = true;
  network_.attach(id_, [this](sim::NodeId from, const Bytes& wire) {
    on_message(from, wire);
  });
  // max() because a restarted device re-enters an already-advanced clock.
  network_.scheduler().at(std::max(config_.start_time, now()),
                          [this, epoch = lifecycle_epoch_] {
                            if (running_ && lifecycle_epoch_ == epoch)
                              begin_cycle();
                          });
  schedule_failback_probe();
}

void LightNode::stop() {
  if (!running_) return;
  running_ = false;
  // Timers scheduled by this life must not fire into the next one: every
  // scheduled lambda captured the current epoch and expires on mismatch.
  ++lifecycle_epoch_;
  network_.detach(id_);
  cycle_in_flight_ = false;
  awaiting_results_ = 0;
  probe_request_id_ = 0;
  probe_attempts_ = 0;
  drain_request_id_ = 0;
  drain_in_flight_.clear();
  offline_ = false;
}

Duration LightNode::probe_delay() {
  Duration delay = config_.failback_probe_interval;
  for (std::uint32_t i = 0; i < probe_attempts_; ++i) {
    delay *= config_.probe_backoff_factor;
    if (delay >= config_.probe_interval_max) break;
  }
  delay = std::min(delay, config_.probe_interval_max);
  // Per-device jitter: a fleet that lost its gateway together must not hammer
  // it in lockstep when it returns.
  return delay * (1.0 + config_.probe_jitter * rng_.uniform());
}

Duration LightNode::drain_backoff() {
  Duration delay = config_.drain_backoff_base;
  for (std::uint32_t i = 1; i < drain_failures_; ++i) {
    delay *= 2.0;
    if (delay >= config_.drain_backoff_max) break;
  }
  delay = std::min(delay, config_.drain_backoff_max);
  return delay * (1.0 + config_.probe_jitter * rng_.uniform());
}

void LightNode::schedule_failback_probe() {
  if (config_.failback_probe_interval <= 0.0) return;
  network_.scheduler().after(probe_delay(), [this, epoch = lifecycle_epoch_] {
    if (!running_ || lifecycle_epoch_ != epoch) return;
    if (probe_request_id_ != 0) {
      // The previous probe went unanswered; widen the next delay.
      probe_request_id_ = 0;
      ++probe_attempts_;
    }
    if (offline_) {
      // Recovery probe: round-robin over every known gateway — any answer
      // ends the outage.
      const std::size_t known = 1 + backup_gateways_.size();
      const std::size_t pick = next_probe_gateway_++ % known;
      probe_target_ = pick == 0 ? home_gateway_ : backup_gateways_[pick - 1];
    } else if (gateway_ != home_gateway_) {
      // Failback probe: poke the primary with a plain tips request; ANY
      // answer (even "unauthorized" — the auth list may still be resyncing)
      // proves it is back. Sent outside the submission cycle so a dead
      // primary costs nothing but this message.
      probe_target_ = home_gateway_;
    } else {
      probe_attempts_ = 0;
      schedule_failback_probe();
      return;  // homed and online: nothing to probe
    }
    probe_request_id_ = next_request_id_++;
    RpcMessage msg;
    msg.type = MsgType::kGetTipsRequest;
    msg.request_id = probe_request_id_;
    msg.sender_key = identity_.public_identity().sign_key;
    network_.send(id_, probe_target_, msg.encode());
    schedule_failback_probe();
  });
}

void LightNode::schedule_attack(TimePoint at, AttackKind kind) {
  attack_plan_.push_back(PlannedAttack{at, kind});
}

void LightNode::enable_keydist(const crypto::Ed25519PublicKey& manager_key) {
  keydist_.emplace(identity_, manager_key, network_.scheduler().clock(), csprng_);
}

void LightNode::query_confirmation(const tangle::TxId& id) {
  send(MsgType::kConfirmQuery, id.bytes());
}

void LightNode::send(MsgType type, const Bytes& body) {
  RpcMessage msg;
  msg.type = type;
  msg.request_id = next_request_id_++;
  msg.sender_key = identity_.public_identity().sign_key;
  msg.body = body;
  network_.send(id_, gateway_, msg.encode());
}

void LightNode::note_gateway_alive() {
  consecutive_timeouts_ = 0;
  outage_failovers_ = 0;
}

bool LightNode::note_timeout_maybe_failover() {
  ++stats_.timeouts;
  if (++consecutive_timeouts_ >= config_.failover_after_timeouts &&
      !backup_gateways_.empty()) {
    if (outage_failovers_ >= backup_gateways_.size()) {
      // Every backup was tried since the last successful contact: failover
      // is exhausted, switch to store-and-forward.
      enter_offline();
      return true;
    }
    ++outage_failovers_;
    gateway_ = backup_gateways_[next_backup_++ % backup_gateways_.size()];
    consecutive_timeouts_ = 0;
    ++stats_.failovers;
    logger.info() << "node " << id_ << " failing over to gateway " << gateway_;
  }
  return false;
}

void LightNode::begin_cycle() {
  if (!running_ || offline_ || cycle_in_flight_) return;
  cycle_in_flight_ = true;
  ++stats_.cycles_started;
  ++cycle_serial_;
  send(MsgType::kGetTipsRequest, {});

  // Watchdog: a shed or lost reply must not wedge the device forever; and
  // repeated silence means the gateway is likely down — fail over.
  if (config_.request_timeout > 0.0) {
    network_.scheduler().after(
        config_.request_timeout,
        [this, epoch = lifecycle_epoch_, serial = cycle_serial_] {
          if (running_ && lifecycle_epoch_ == epoch && cycle_in_flight_ &&
              cycle_serial_ == serial) {
            awaiting_results_ = 0;
            if (!note_timeout_maybe_failover()) schedule_next_cycle();
          }
        });
  }
}

void LightNode::schedule_next_cycle(Duration extra_delay) {
  cycle_in_flight_ = false;
  Duration delay = config_.continuous ? 0.0 : config_.collect_interval;
  // A non-empty outbox is backlog: keep draining chunk after chunk instead
  // of waiting out the collect interval (backoff arrives via extra_delay).
  if (!offline_ && !outbox_.empty()) delay = 0.0;
  delay += extra_delay;
  network_.scheduler().after(delay, [this, epoch = lifecycle_epoch_] {
    if (running_ && lifecycle_epoch_ == epoch) begin_cycle();
  });
}

// ---- Offline mode ----------------------------------------------------------

void LightNode::enter_offline() {
  if (offline_) return;
  offline_ = true;
  ++stats_.went_offline;
  cycle_in_flight_ = false;
  awaiting_results_ = 0;
  ++cycle_serial_;  // expire any in-flight cycle/drain watchdog
  consecutive_timeouts_ = 0;
  drain_request_id_ = 0;
  drain_in_flight_.clear();
  logger.info() << "node " << id_
                << " offline: failover exhausted, queueing to outbox";
  network_.scheduler().after(0.0, [this, epoch = lifecycle_epoch_] {
    if (running_ && lifecycle_epoch_ == epoch) offline_cycle();
  });
}

void LightNode::exit_offline(sim::NodeId reachable_gateway) {
  offline_ = false;
  gateway_ = reachable_gateway;
  consecutive_timeouts_ = 0;
  outage_failovers_ = 0;
  drain_failures_ = 0;
  if (reachable_gateway == home_gateway_) ++stats_.failbacks;
  logger.info() << "node " << id_ << " back online via gateway "
                << reachable_gateway << ", " << outbox_.size()
                << " records queued";
  network_.scheduler().after(0.0, [this, epoch = lifecycle_epoch_] {
    if (running_ && lifecycle_epoch_ == epoch) begin_cycle();
  });
}

void LightNode::offline_cycle() {
  if (!running_ || !offline_) return;
  OfflineRecord record;
  record.issuer = identity_.public_identity().sign_key;
  record.outbox_seq = outbox_.next_seq();
  record.issued_at = now();
  auto [payload, encrypted] = protector_.protect(data_source_(), csprng_);
  record.payload = std::move(payload);
  record.payload_encrypted = encrypted;
  record.signature = identity_.sign(record.signing_bytes());

  const Bytes record_wire = record.encode();
  outbox_.enqueue(std::move(record), now());

  // Offer the record to a co-located peer for countersigning (IoTLogBlock
  // exchange) — round-robin so one peer does not carry all the evidence.
  if (!exchange_peers_.empty()) {
    const auto peer =
        exchange_peers_[next_exchange_peer_++ % exchange_peers_.size()];
    RpcMessage msg;
    msg.type = MsgType::kOfflineOffer;
    msg.request_id = next_request_id_++;
    msg.sender_key = identity_.public_identity().sign_key;
    msg.body = record_wire;
    network_.send(id_, peer, msg.encode());
    ++stats_.offers_sent;
  }

  // Offline collection always paces at collect_interval, even in continuous
  // mode: there is no gateway round trip to self-clock against, and an
  // unpaced loop would spin the outbox at simulator speed.
  network_.scheduler().after(config_.collect_interval,
                             [this, epoch = lifecycle_epoch_] {
                               if (running_ && lifecycle_epoch_ == epoch)
                                 offline_cycle();
                             });
}

void LightNode::drain_outbox(const TipsResponse& tips) {
  const auto chunk = outbox_.peek(config_.drain_chunk);
  if (chunk.empty()) {
    schedule_next_cycle();
    return;
  }
  OfflineDrainRequest request;
  request.transactions.reserve(chunk.size());
  drain_in_flight_.clear();
  drain_in_flight_.reserve(chunk.size());
  Duration total_pow = 0.0;
  // The chunk chains: each transaction approves the one built before it
  // (admit_many attaches in input order, so in-batch parents resolve).
  // Re-approving one fixed tip pair sixteen times would read as lazy-tips
  // misbehaviour after the first two attach, tanking the device's credit
  // and spiralling its required difficulty mid-drain.
  tangle::TipPair parents{tips.tip1, tips.tip2};
  for (const auto* entry : chunk) {
    // Budgeted commitment: stop growing the chunk once its simulated PoW
    // cost is spent (always ship at least one transaction). A difficulty
    // spike then costs one short round instead of one enormous one, and
    // the per-round watchdog keeps covering the whole mine.
    if (!request.transactions.empty() &&
        total_pow >= config_.drain_pow_budget) {
      break;
    }
    OfflineEnvelope envelope{entry->record, entry->receipt};
    auto tx = build_tx(parents, tips.required_difficulty,
                       sequence_++, envelope.encode(), /*encrypted=*/false);
    const auto mined = miner_.mine(tx.parent1, tx.parent2, tx.difficulty);
    tx.nonce = mined->nonce;
    tx.signature = identity_.sign(tx.signing_bytes());
    parents = {tx.id(), tx.parent1};
    const Duration pow_time =
        config_.profile.sample_pow_time(tx.difficulty, rng_);
    stats_.pow_durations.push_back(pow_time);
    stats_.pow_sim_s.observe(pow_time);
    total_pow += pow_time;
    drain_in_flight_.push_back(
        OfflineKey{entry->record.issuer, entry->record.outbox_seq});
    request.transactions.push_back(std::move(tx));
  }

  // The chunk mines for total_pow simulated seconds before it can ship, so
  // the begin_cycle watchdog (armed at request_timeout) would fire mid-mine.
  // Bump the serial to expire it and arm a fresh one sized to the real
  // round trip.
  ++cycle_serial_;
  drain_request_id_ = next_request_id_++;
  const Duration send_delay = config_.tip_validation_s + total_pow;
  network_.scheduler().after(
      send_delay, [this, epoch = lifecycle_epoch_, rid = drain_request_id_,
                   wire = request.encode()] {
        if (!running_ || lifecycle_epoch_ != epoch) return;
        if (drain_request_id_ != rid) return;  // expired by a timeout
        RpcMessage msg;
        msg.type = MsgType::kOfflineDrainRequest;
        msg.request_id = rid;
        msg.sender_key = identity_.public_identity().sign_key;
        msg.body = wire;
        network_.send(id_, gateway_, msg.encode());
      });
  if (config_.request_timeout > 0.0) {
    network_.scheduler().after(
        send_delay + config_.request_timeout,
        [this, epoch = lifecycle_epoch_, serial = cycle_serial_] {
          if (!running_ || lifecycle_epoch_ != epoch || !cycle_in_flight_ ||
              cycle_serial_ != serial) {
            return;
          }
          // Drain chunk went unanswered. Entries stay queued (nothing was
          // settled) and the next attempt backs off.
          drain_request_id_ = 0;
          drain_in_flight_.clear();
          ++drain_failures_;
          ++outbox_.stats().backoff_events;
          if (!note_timeout_maybe_failover())
            schedule_next_cycle(drain_backoff());
        });
  }
}

void LightNode::on_drain_result(const OfflineDrainResult& result) {
  note_gateway_alive();
  bool retry_needed = false;
  bool progressed = false;
  const std::size_t n =
      std::min(result.items.size(), drain_in_flight_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& key = drain_in_flight_[i];
    const auto code = result.items[i].status;
    if (code == ErrorCode::kOk) {
      outbox_.settle(key.issuer, key.seq, SettleKind::kAdmitted, now());
      progressed = true;
    } else if (code == ErrorCode::kReplayDetected) {
      // Another carrier (peer evidence, or our own pre-crash drain) already
      // settled this exchange — explicit duplicate, not a loss.
      outbox_.settle(key.issuer, key.seq, SettleKind::kDuplicate, now());
      progressed = true;
    } else if (code == ErrorCode::kPowInvalid || code == ErrorCode::kTimeout ||
               code == ErrorCode::kNotFound || code == ErrorCode::kInternal) {
      // Transient: stale difficulty, missing parents, or gateway-side
      // pressure. Keep the entry queued and retry.
      retry_needed = true;
    } else {
      outbox_.settle(key.issuer, key.seq, SettleKind::kRejected, now());
      progressed = true;
    }
  }
  drain_in_flight_.clear();
  drain_request_id_ = 0;
  if (!cycle_in_flight_) return;  // the drain watchdog already gave up
  Duration extra = 0.0;
  if (retry_needed && !progressed) {
    // Nothing in the chunk settled: the gateway is refusing or overwhelmed,
    // so hammering it again immediately only feeds the storm — back off.
    ++drain_failures_;
    ++outbox_.stats().backoff_events;
    extra = drain_backoff();
  } else if (progressed) {
    // The queue moved (a chunk tail can legitimately bounce with kNotFound
    // when a mid-chunk duplicate broke the parent chain) — keep draining at
    // full speed and re-chunk from the survivors.
    drain_failures_ = 0;
  }
  schedule_next_cycle(extra);
}

void LightNode::handle_offline_offer(sim::NodeId from, const RpcMessage& msg) {
  auto decoded = OfflineRecord::decode(msg.body);
  if (!decoded) return;
  const auto& record = decoded.value();
  if (record.issuer == identity_.public_identity().sign_key) return;
  if (!(record.issuer == msg.sender_key)) return;  // only the issuer offers
  if (!record.verify()) return;

  OfflineReceipt receipt;
  receipt.witness = identity_.public_identity().sign_key;
  receipt.record_digest = record.digest();
  receipt.witnessed_at = now();
  receipt.signature = identity_.sign(receipt.signing_bytes());

  // First sighting of this (issuer, seq): optionally keep an evidence copy in
  // our own outbox so either party alone can settle the exchange later.
  // Repeat offers (the peer may have lost our receipt) are countersigned
  // again but never re-stored.
  const OfflineKey key{record.issuer, record.outbox_seq};
  if (witnessed_keys_.insert(key).second) {
    ++stats_.witnessed;
    if (config_.store_witness_evidence) {
      if (outbox_.enqueue(record, now())) outbox_.attach_receipt(receipt);
    }
  }

  RpcMessage out;
  out.type = MsgType::kOfflineReceipt;
  out.request_id = msg.request_id;
  out.sender_key = identity_.public_identity().sign_key;
  out.body = receipt.encode();
  network_.send(id_, from, out.encode());
}

void LightNode::handle_offline_receipt(const RpcMessage& msg) {
  auto decoded = OfflineReceipt::decode(msg.body);
  if (!decoded) return;
  auto receipt = std::move(decoded).take();
  if (!(receipt.witness == msg.sender_key)) return;
  if (!receipt.verify()) return;
  outbox_.attach_receipt(std::move(receipt));
}

// ---- Message handling ------------------------------------------------------

void LightNode::on_message(sim::NodeId from, const Bytes& wire) {
  const auto msg = RpcMessage::decode(wire);
  if (!msg) {
    logger.warn() << "node " << id_ << ": malformed message";
    return;
  }
  switch (msg.value().type) {
    case MsgType::kGetTipsResponse: {
      if (probe_request_id_ != 0 &&
          msg.value().request_id == probe_request_id_) {
        // Probe answered. Not fed to on_tips — probes must not start a
        // submission outside the cycle.
        probe_request_id_ = 0;
        probe_attempts_ = 0;
        if (offline_) {
          exit_offline(probe_target_);
          break;
        }
        if (gateway_ != home_gateway_) {
          gateway_ = home_gateway_;
          note_gateway_alive();
          ++stats_.failbacks;
          logger.info() << "node " << id_ << " failing back to gateway "
                        << gateway_;
        }
        break;
      }
      const auto tips = TipsResponse::decode(msg.value().body);
      if (!tips) break;
      if (tips.value().required_difficulty > config_.max_difficulty) {
        // Corrupted/forged difficulty: honouring it would wedge the device
        // in an unbounded nonce grind. Drop it; the watchdog retries.
        logger.warn() << "node " << id_ << ": implausible difficulty "
                      << static_cast<int>(tips.value().required_difficulty)
                      << " in tips response, dropping";
        break;
      }
      on_tips(tips.value());
      break;
    }
    case MsgType::kSubmitResult:
    case MsgType::kAttachResult: {
      const auto result = SubmitResult::decode(msg.value().body);
      if (result) on_result(result.value());
      break;
    }
    case MsgType::kOfflineDrainResult: {
      const auto result = OfflineDrainResult::decode(msg.value().body);
      if (result && drain_request_id_ != 0 &&
          msg.value().request_id == drain_request_id_) {
        on_drain_result(result.value());
      }
      break;
    }
    case MsgType::kOfflineOffer:
      handle_offline_offer(from, msg.value());
      break;
    case MsgType::kOfflineReceipt:
      handle_offline_receipt(msg.value());
      break;
    case MsgType::kConfirmResponse: {
      const auto info = ConfirmationInfo::decode(msg.value().body);
      if (info) last_confirmation_ = info.value();
      break;
    }
    case MsgType::kKeyDistM1:
    case MsgType::kKeyDistM3:
      handle_keydist(msg.value(), from);
      break;
    default:
      break;
  }
}

tangle::Transaction LightNode::build_tx(const tangle::TipPair& parents,
                                        int difficulty, std::uint64_t sequence,
                                        Bytes payload, bool encrypted) {
  tangle::Transaction tx;
  tx.type = tangle::TxType::kData;
  tx.sender = identity_.public_identity().sign_key;
  tx.parent1 = parents.first;
  tx.parent2 = parents.second;
  tx.sequence = sequence;
  tx.timestamp = now();
  tx.difficulty = static_cast<std::uint8_t>(difficulty);
  tx.payload = std::move(payload);
  tx.payload_encrypted = encrypted;
  return tx;
}

void LightNode::mine_and_submit(tangle::Transaction tx) {
  if (config_.offload_pow) {
    // Remote attachment: sign and ship; the gateway grinds the nonce. The
    // device pays only the tip-validation time.
    tx.signature = identity_.sign(tx.signing_bytes());
    stats_.pow_durations.push_back(0.0);
    stats_.pow_sim_s.observe(0.0);
    ++awaiting_results_;
    network_.scheduler().after(
        config_.tip_validation_s,
        [this, epoch = lifecycle_epoch_, wire = tx.encode()] {
          if (running_ && lifecycle_epoch_ == epoch)
            send(MsgType::kAttachRequest, wire);
        });
    return;
  }

  // Local PoW: really grind the nonce (cheap on the host at IoT
  // difficulties) ...
  const auto mined = miner_.mine(tx.parent1, tx.parent2, tx.difficulty);
  tx.nonce = mined->nonce;
  tx.signature = identity_.sign(tx.signing_bytes());

  // ... but account for it at device speed on the simulated clock.
  const Duration pow_time =
      config_.profile.sample_pow_time(tx.difficulty, rng_);
  stats_.pow_durations.push_back(pow_time);
  stats_.pow_sim_s.observe(pow_time);

  ++awaiting_results_;
  network_.scheduler().after(
      config_.tip_validation_s + pow_time,
      [this, epoch = lifecycle_epoch_, wire = tx.encode()] {
        if (running_ && lifecycle_epoch_ == epoch)
          send(MsgType::kSubmitTx, wire);
      });
}

void LightNode::on_tips(const TipsResponse& tips) {
  if (tips.status != ErrorCode::kOk) {
    ++stats_.unauthorized;
    schedule_next_cycle();
    return;
  }
  note_gateway_alive();

  // Reconnect backlog first: queued offline records drain in bounded chunks
  // before fresh collection resumes.
  if (!outbox_.empty()) {
    drain_outbox(tips);
    return;
  }

  if (!stale_parents_) stale_parents_ = {tips.tip1, tips.tip2};

  // Pull due attacks off the plan.
  std::optional<AttackKind> attack;
  if (!attack_plan_.empty() && attack_plan_.front().at <= now()) {
    attack = attack_plan_.front().kind;
    attack_plan_.pop_front();
  }

  const auto [payload, encrypted] = protector_.protect(data_source_(), csprng_);

  if (attack == AttackKind::kLazyTips) {
    // Approve the remembered stale pair instead of the fresh tips.
    ++stats_.attacks_launched;
    mine_and_submit(build_tx(*stale_parents_, tips.required_difficulty,
                             sequence_++, payload, encrypted));
    return;
  }

  if (attack == AttackKind::kDoubleSpend) {
    // Two distinct transactions claiming the same sequence slot.
    ++stats_.attacks_launched;
    const std::uint64_t seq = sequence_++;
    auto tx1 = build_tx({tips.tip1, tips.tip2}, tips.required_difficulty, seq,
                        payload, encrypted);
    const auto [payload2, encrypted2] = protector_.protect(data_source_(), csprng_);
    auto tx2 = build_tx({tips.tip2, tips.tip1}, tips.required_difficulty, seq,
                        payload2, encrypted2);
    mine_and_submit(std::move(tx1));
    mine_and_submit(std::move(tx2));
    return;
  }

  mine_and_submit(build_tx({tips.tip1, tips.tip2}, tips.required_difficulty,
                           sequence_++, payload, encrypted));
}

void LightNode::on_result(const SubmitResult& result) {
  note_gateway_alive();  // the gateway is alive
  if (result.status == ErrorCode::kOk) {
    ++stats_.accepted;
    stats_.accepted_times.push_back(now());
  } else {
    ++stats_.rejected;
  }
  if (!cycle_in_flight_) return;  // stale reply after a watchdog timeout
  if (awaiting_results_ > 0) --awaiting_results_;
  if (awaiting_results_ == 0) schedule_next_cycle();
}

void LightNode::handle_keydist(const RpcMessage& msg, sim::NodeId from) {
  if (!keydist_) return;
  if (msg.type == MsgType::kKeyDistM1) {
    auto m2 = keydist_->handle_m1(msg.body);
    if (!m2) {
      logger.warn() << "node " << id_ << ": M1 rejected: "
                    << m2.status().to_string();
      return;
    }
    RpcMessage out;
    out.type = MsgType::kKeyDistM2;
    out.request_id = msg.request_id;
    out.sender_key = identity_.public_identity().sign_key;
    out.body = std::move(m2).take();
    network_.send(id_, from, out.encode());
  } else if (msg.type == MsgType::kKeyDistM3) {
    const auto status = keydist_->handle_m3(msg.body);
    if (status.is_ok()) {
      protector_.install_key(keydist_->key());
    } else {
      logger.warn() << "node " << id_ << ": M3 rejected: " << status.to_string();
    }
  }
}

// ---- Offline persistence ---------------------------------------------------

Bytes LightNode::serialize_offline_state() const {
  Writer w;
  w.u64(sequence_);
  w.blob(outbox_.serialize());
  return storage::frame_blob(w.bytes());
}

Status LightNode::restore_offline_state(ByteView wire) {
  auto body = storage::unframe_blob(wire);
  if (!body) return body.status();
  Reader r(body.value());
  const auto seq = r.u64();
  if (!seq) return seq.status();
  const auto outbox_wire = r.blob();
  if (!outbox_wire) return outbox_wire.status();
  const auto status = outbox_.restore(outbox_wire.value());
  if (!status.is_ok()) return status;
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument,
                         "offline state: trailing bytes");
  sequence_ = seq.value();
  return Status::ok();
}

}  // namespace biot::node
