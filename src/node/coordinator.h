// Coordinator: issues periodic signed milestone transactions.
//
// The public IOTA tangle the paper deploys on used exactly this mechanism
// in 2019 — a well-known identity checkpointing the DAG so everything in a
// milestone's past cone counts as confirmed. The coordinator is co-located
// with a gateway (it is a full-node role, like the manager) and its
// milestones flow through the ordinary admission pipeline: tips, PoW,
// signature, ledger sequence, gossip.
#pragma once

#include "consensus/pow.h"
#include "node/gateway.h"

namespace biot::node {

class Coordinator {
 public:
  Coordinator(const crypto::Identity& identity, Gateway& gateway,
              sim::Scheduler& sched, Duration interval = 5.0);

  /// Registers the coordinator key with its gateway and schedules periodic
  /// milestone issuance (first one after `interval`).
  void start();

  /// Issues one milestone immediately; returns the admission status.
  [[nodiscard]] Status issue_milestone();

  crypto::PublicIdentity public_identity() const {
    return identity_.public_identity();
  }
  std::uint64_t milestones_issued() const { return issued_; }

 private:
  void tick();

  const crypto::Identity& identity_;
  Gateway& gateway_;
  sim::Scheduler& sched_;
  Duration interval_;
  consensus::Miner miner_;
  std::uint64_t sequence_ = 0;
  std::uint64_t issued_ = 0;
  bool running_ = false;
};

}  // namespace biot::node
