// Manager: the specific full node responsible for device administration
// (paper Section IV-A). Its public key is fixed at genesis; it publishes the
// authorization list as signed transactions (Eqn 1) and runs the Fig 4
// symmetric-key distribution handshake with sensitive-data devices.
//
// The manager is co-located with its own gateway (it IS a full node), so
// administrative transactions enter the tangle through the normal admission
// pipeline — tips, PoW and all.
#pragma once

#include <unordered_map>
#include <vector>

#include "auth/keydist.h"
#include "consensus/pow.h"
#include "node/gateway.h"

namespace biot::node {

class Manager {
 public:
  Manager(sim::NodeId id, const crypto::Identity& identity, Gateway& gateway,
          sim::Network& network);

  /// Registers the manager's message handler (for key-distribution M2s).
  void attach();

  /// Publishes `devices` as the new authorization list: builds the Eqn 1
  /// transaction, fetches tips, mines at the required difficulty and submits
  /// through the co-located gateway.
  [[nodiscard]] Status authorize(const std::vector<crypto::PublicIdentity>& devices);

  /// Starts the Fig 4 handshake with an authorized device. The device must
  /// have called LightNode::enable_keydist.
  [[nodiscard]] Status distribute_key(const crypto::PublicIdentity& device,
                                      sim::NodeId device_node);

  bool session_established(const crypto::PublicIdentity& device) const {
    return keydist_.session_established(device);
  }
  const auth::SymmetricKey& session_key(const crypto::PublicIdentity& device) const {
    return keydist_.session_key(device);
  }

  const crypto::Identity& identity() const { return identity_; }
  crypto::PublicIdentity public_identity() const {
    return identity_.public_identity();
  }
  sim::NodeId node_id() const { return id_; }

 private:
  void on_message(sim::NodeId from, const Bytes& wire);
  TimePoint now() const { return network_.scheduler().now(); }

  sim::NodeId id_;
  const crypto::Identity& identity_;
  Gateway& gateway_;
  sim::Network& network_;

  crypto::Csprng csprng_;
  consensus::Miner miner_;
  auth::ManagerKeyDist keydist_;
  std::uint64_t sequence_ = 0;
  std::uint64_t next_request_id_ = 1;

  /// Devices we are distributing keys to, keyed by signing key (M2 routing).
  std::unordered_map<crypto::Ed25519PublicKey, crypto::PublicIdentity,
                     FixedBytesHash<32>>
      pending_devices_;
};

}  // namespace biot::node
