#include "node/admission.h"

#include <algorithm>

#include "common/log.h"
#include "crypto/ed25519.h"

namespace biot::node {

namespace {
Logger logger("admission");
}

void GatewayStats::attach_to(const obs::Scope& scope) const {
  // Grouped by subsystem so the exported tree reads as
  // gateway.g<i>.{admission,sync,edge}.<counter>.
  const auto admission = scope.scope("admission");
  admission.attach("accepted", &accepted);
  admission.attach("rejected_unauthorized", &rejected_unauthorized);
  admission.attach("rejected_difficulty", &rejected_difficulty);
  admission.attach("rejected_pow", &rejected_pow);
  admission.attach("pow_offload_exhausted", &pow_offload_exhausted);
  admission.attach("rejected_conflict", &rejected_conflict);
  admission.attach("rejected_signature", &rejected_signature);
  admission.attach("rejected_other", &rejected_other);
  admission.attach("lazy_detected", &lazy_detected);
  admission.attach("poor_quality_detected", &poor_quality_detected);
  const auto sync = scope.scope("sync");
  sync.attach("summaries_sent", &syncs_sent);
  sync.attach("txs_served", &sync_txs_served);
  sync.attach("txs_applied", &sync_txs_applied);
  sync.attach("fallbacks", &sync_fallbacks);
  const auto edge = scope.scope("edge");
  edge.attach("tips_served", &tips_served);
  edge.attach("gossip_received", &gossip_received);
  edge.attach("rate_limited", &rate_limited);
  edge.attach("rate_buckets_evicted", &rate_buckets_evicted);
  edge.attach("orphans_buffered", &orphans_buffered);
  edge.attach("orphans_adopted", &orphans_adopted);
  edge.attach("orphans_dropped", &orphans_dropped);
  const auto offline = scope.scope("offline");
  offline.attach("drain_requests", &drain_requests);
  offline.attach("drained", &offline_drained);
  offline.attach("duplicates", &offline_duplicates);
}

void AdmissionMetrics::attach_to(const obs::Scope& scope) const {
  scope.attach("authorize_wall_s", &authorize_wall_s);
  scope.attach("difficulty_wall_s", &difficulty_wall_s);
  scope.attach("conflict_wall_s", &conflict_wall_s);
  scope.attach("verify_wall_s", &verify_wall_s);
  scope.attach("lazy_wall_s", &lazy_wall_s);
  scope.attach("attach_wall_s", &attach_wall_s);
  scope.attach("observers_wall_s", &observers_wall_s);
  scope.attach("admit_wall_s", &admit_wall_s);
}

void BatchAdmissionMetrics::attach_to(const obs::Scope& scope) const {
  scope.attach("batch_size", &batch_size);
  scope.attach("read_wall_s", &read_wall_s);
  scope.attach("commit_wall_s", &commit_wall_s);
  scope.attach("read_queue_depth", &read_queue_depth);
}

std::string_view ingress_name(Ingress ingress) noexcept {
  switch (ingress) {
    case Ingress::kService: return "service";
    case Ingress::kGossip: return "gossip";
    case Ingress::kSync: return "sync";
    case Ingress::kOrphanRetry: return "orphan-retry";
    case Ingress::kReplay: return "replay";
  }
  return "unknown";
}

// ---- Observers -------------------------------------------------------------

void LedgerObserver::on_attach(AttachEvent& event) {
  if (ingress_traits(event.ingress).strict_conflict) {
    (void)ledger_.apply(event.tx);  // cannot fail: conflict-check stage passed
    event.ledger_outcome = tangle::Ledger::ApplyOutcome::kApplied;
    return;
  }
  // Replicas may legitimately see conflicting transactions in different
  // orders (the attacker hit two gateways before gossip met); the ledger
  // resolves the slot with a replica-consistent rule after attachment.
  event.ledger_outcome = ledger_.apply_resolving(event.tx);
  event.conflicted =
      event.ledger_outcome ==
          tangle::Ledger::ApplyOutcome::kConflictKeptExisting ||
      event.ledger_outcome == tangle::Ledger::ApplyOutcome::kConflictDisplaced;
}

void QualityObserver::on_attach(AttachEvent& event) {
  if (!inspector_ || event.tx.type != tangle::TxType::kData) return;
  const auto score = inspector_(event.tx);
  if (score.has_value() && *score <= 0.0) event.poor_quality = true;
}

void CreditObserver::on_attach(AttachEvent& event) {
  const auto& sender = event.tx.sender;
  if (event.conflicted)
    credit_.record_malicious(sender, consensus::Behaviour::kDoubleSpend,
                             event.arrival);
  if (event.poor_quality)
    credit_.record_malicious(sender, consensus::Behaviour::kPoorQuality,
                             event.arrival);
  if (event.lazy)
    credit_.record_malicious(sender, consensus::Behaviour::kLazyTips,
                             event.arrival);
  else if (!event.conflicted)
    credit_.record_valid_tx(sender, event.id, event.arrival);
}

void CreditObserver::on_reject(const RejectEvent& event) {
  // A double-spend caught at the service edge is punished (alpha_d) even
  // though the transaction never attached.
  if (event.stage == AdmissionStage::kConflictCheck &&
      event.code == ErrorCode::kConflict)
    credit_.record_malicious(event.tx.sender,
                             consensus::Behaviour::kDoubleSpend,
                             event.arrival);
}

void MilestoneObserver::on_attach(AttachEvent& event) {
  if (event.tx.type != tangle::TxType::kMilestone) return;
  if (!coordinator_.has_value() || event.tx.sender != *coordinator_) return;
  milestones_.observe_milestone(tangle_, event.id);
}

void AuthObserver::on_attach(AttachEvent& event) {
  if (event.tx.type != tangle::TxType::kAuthorization) return;
  // The pipeline verified the signature before attaching (it is what minted
  // the AttachEvent), so the registry must not verify a second time.
  if (auto s = auth_.apply(event.tx, auth::SigCheck::kPreVerified); !s) {
    // Another factory's manager publishing its own list arrives via
    // gossip and is expected to be ignored here — only log real failures.
    if (s.code() == ErrorCode::kUnauthorized)
      logger.info() << "ignoring foreign authorization list";
    else
      logger.warn() << "authorization tx attached but not applied: "
                    << s.to_string();
  }
}

void StatsObserver::on_attach(AttachEvent& event) {
  ++stats_.accepted;
  if (event.lazy) ++stats_.lazy_detected;
  if (event.poor_quality) ++stats_.poor_quality_detected;
  if (event.conflicted) ++stats_.rejected_conflict;
}

void StatsObserver::on_reject(const RejectEvent& event) {
  switch (event.stage) {
    case AdmissionStage::kAuthorize:
      ++stats_.rejected_unauthorized;
      break;
    case AdmissionStage::kDifficulty:
      ++stats_.rejected_difficulty;
      break;
    case AdmissionStage::kConflictCheck:
      if (event.code == ErrorCode::kConflict)
        ++stats_.rejected_conflict;
      else
        ++stats_.rejected_other;
      break;
    case AdmissionStage::kAttach:
      if (event.code == ErrorCode::kPowInvalid) {
        ++stats_.rejected_pow;
      } else if (event.code == ErrorCode::kNotFound &&
                 event.ingress == Ingress::kOrphanRetry) {
        // Deferral, not rejection: the transaction re-buffers on its other
        // missing parent (orphans_buffered counts that) and will be retried.
        // It was already counted once when it first arrived; counting every
        // retry would inflate rejected_other per reconnect burst.
      } else {
        ++stats_.rejected_other;
      }
      break;
    case AdmissionStage::kVerify:
      ++stats_.rejected_signature;
      break;
  }
}

// ---- Pipeline --------------------------------------------------------------

Status AdmissionPipeline::reject(const tangle::Transaction& tx,
                                 TimePoint arrival, Ingress ingress,
                                 AdmissionStage stage, Status status) {
  const RejectEvent event{tx, arrival, ingress, stage, status.code()};
  for (const auto& observer : observers_) observer->on_reject(event);
  return status;
}

Status AdmissionPipeline::admit(const tangle::Transaction& tx,
                                TimePoint arrival, Ingress ingress,
                                const tangle::VerifiedToken* pre_verified) {
  // The serial reference path: the staged body, attaching directly through
  // Tangle::add. admit_many runs the SAME body per item (phase B), so the
  // two cannot drift apart.
  return admit_one(tx, arrival, ingress, pre_verified, /*batch=*/nullptr);
}

Status AdmissionPipeline::admit_one(const tangle::Transaction& tx,
                                    TimePoint arrival, Ingress ingress,
                                    const tangle::VerifiedToken* pre_verified,
                                    tangle::Tangle::AttachBatch* batch) {
  // Stage latency instrumentation: one clock read per stage boundary
  // (WallTimer::lap), all gated so an uninstrumented pipeline pays only
  // the two reads of the idle timers.
  obs::WallTimer total_timer;
  obs::WallTimer stage_timer;
  const auto lap = [&](obs::Histogram AdmissionMetrics::* hist) {
    if (metrics_ != nullptr) (metrics_->*hist).observe(stage_timer.lap());
  };
  const auto done = [&](Status status) {
    if (metrics_ != nullptr)
      metrics_->admit_wall_s.observe(total_timer.elapsed());
    return status;
  };

  const auto traits = ingress_traits(ingress);
  const auto& sender = tx.sender;
  const bool is_coordinator =
      coordinator_.has_value() && sender == *coordinator_;

  // Stage 1: authorize. Milestones are only ever acceptable from the
  // registered Coordinator — a forged checkpoint would confirm arbitrary
  // history, so this holds for gossip too. The authorization list guards
  // the *service* edge only: gossip relays the public tangle, which may
  // carry transactions admitted by other factories' gateways under their
  // own lists (Section IV-A).
  if (traits.gate_milestone_issuer &&
      tx.type == tangle::TxType::kMilestone && !is_coordinator)
    return done(reject(tx, arrival, ingress, AdmissionStage::kAuthorize,
                       Status::error(
                           ErrorCode::kUnauthorized,
                           "milestone not issued by the coordinator")));
  if (traits.authorize && !auth_.is_manager(sender) && !is_coordinator &&
      !auth_.is_authorized(sender))
    return done(reject(tx, arrival, ingress, AdmissionStage::kAuthorize,
                       Status::error(ErrorCode::kUnauthorized,
                                     "sender not in authorization list")));
  lap(&AdmissionMetrics::authorize_wall_s);

  // Stage 2: difficulty policy.
  if (traits.enforce_difficulty &&
      tx.difficulty < required_difficulty_(sender))
    return done(reject(tx, arrival, ingress, AdmissionStage::kDifficulty,
                       Status::error(ErrorCode::kPowInvalid,
                                     "declared difficulty below required")));
  lap(&AdmissionMetrics::difficulty_wall_s);

  // Stage 3: strict conflict check. At the service edge a double-spend is
  // rejected outright (and the credit observer punishes it).
  if (traits.strict_conflict) {
    if (auto s = ledger_.check(tx); !s)
      return done(reject(tx, arrival, ingress,
                         AdmissionStage::kConflictCheck, std::move(s)));
  }
  lap(&AdmissionMetrics::conflict_wall_s);

  // Stage 4: structural precheck, then the SINGLE signature verification.
  // The cheap duplicate/unknown-parent checks run first so duplicate or
  // orphaned gossip costs no Ed25519 work; then the signature is verified
  // exactly once — here, unless the caller already did it (batch-verified
  // sync burst, replay of a previously admitted chain) — and the resulting
  // token authorizes a verification-free Tangle::add.
  if (auto s = tangle_.attach_precheck(tx); !s)
    return done(reject(tx, arrival, ingress, AdmissionStage::kAttach,
                       std::move(s)));
  std::optional<tangle::VerifiedToken> token;
  if (pre_verified != nullptr && pre_verified->covers(tx.id()))
    token = *pre_verified;
  else
    token = tangle::VerifiedToken::check(tx);
  if (!token)
    return done(reject(tx, arrival, ingress, AdmissionStage::kVerify,
                       Status::error(ErrorCode::kVerifyFailed,
                                     "bad transaction signature")));
  lap(&AdmissionMetrics::verify_wall_s);

  // Stage 5: lazy-tip detection, BEFORE attaching (the parents' tip and
  // approval state changes once the transaction attaches). Lazy
  // transactions are structurally valid — they attach, but the credit
  // observer prices the behaviour (alpha_l).
  AttachEvent event{tx, token->id(), arrival, ingress};
  event.lazy = consensus::is_lazy_approval(tangle_, tx, arrival, lazy_policy_);
  lap(&AdmissionMetrics::lazy_wall_s);

  // Stage 6: attach (structural validation lives in Tangle::add; the token
  // replaces its signature check). Batch admission routes through the
  // AttachBatch so the index/digest/sketch maintenance is paid once per
  // batch; the structural outcome is identical either way.
  if (auto s = batch != nullptr ? batch->add(tx, arrival, *token)
                                : tangle_.add(tx, arrival, *token);
      !s)
    return done(reject(tx, arrival, ingress, AdmissionStage::kAttach,
                       std::move(s)));
  lap(&AdmissionMetrics::attach_wall_s);

  // Stage 7: derived state, via the ordered observer list.
  for (const auto& observer : observers_) observer->on_attach(event);
  lap(&AdmissionMetrics::observers_wall_s);
  return done(Status::ok());
}

void AdmissionPipeline::verify_chunk(
    const std::vector<AdmissionBatchItem>& items, std::size_t begin,
    std::size_t end,
    std::vector<std::optional<tangle::VerifiedToken>>& tokens) const {
  // Pre-verified items (replay of a persisted chain) keep their caller-held
  // token; everything else runs the cheap structural precheck first, so
  // duplicates cost no Ed25519 work. kNotFound still verifies: the missing
  // parent may be an earlier member of this very batch, attached by the
  // time phase B reaches this item.
  std::vector<std::size_t> need;
  need.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    const auto& item = items[i];
    if (item.pre_verified != nullptr &&
        item.pre_verified->covers(item.tx->id())) {
      tokens[i] = *item.pre_verified;
      continue;
    }
    const auto precheck = tangle_.attach_precheck(*item.tx);
    if (precheck.is_ok() || precheck.code() == ErrorCode::kNotFound)
      need.push_back(i);
  }
  if (need.empty()) return;

  std::vector<Bytes> messages;
  messages.reserve(need.size());
  for (const auto i : need) messages.push_back(items[i].tx->signing_bytes());
  std::vector<crypto::VerifyItem> to_verify;
  to_verify.reserve(need.size());
  for (std::size_t k = 0; k < need.size(); ++k)
    to_verify.push_back(crypto::VerifyItem{&items[need[k]].tx->sender,
                                           ByteView{messages[k]},
                                           &items[need[k]].tx->signature});
  const auto valid = crypto::ed25519_verify_batch(to_verify);
  // Failed signatures mint no token; phase B re-runs them through the
  // normal kVerify stage so stats and observers see the rejection exactly
  // as the serial path reports it.
  for (std::size_t k = 0; k < need.size(); ++k) {
    if (valid[k])
      tokens[need[k]] =
          tangle::VerifiedToken::assume_valid(*items[need[k]].tx);
  }
}

std::vector<Status> AdmissionPipeline::admit_many(
    const std::vector<AdmissionBatchItem>& items, Ingress ingress,
    Executor& executor) {
  std::vector<Status> out(items.size());
  if (items.empty()) return out;

  // Phase A: chunked read fan-out. One chunk per executor lane; each task
  // reads the frozen tangle (no mutation happens until every task joined)
  // and writes only its own slice of `tokens`, so the fan-out is race-free
  // by partitioning — and with InlineExecutor it degenerates to a plain
  // in-order loop, which is what makes the equivalence pin exact.
  obs::WallTimer phase_timer;
  std::vector<std::optional<tangle::VerifiedToken>> tokens(items.size());
  const std::size_t lanes = std::max<std::size_t>(1, executor.concurrency());
  const std::size_t chunk = (items.size() + lanes - 1) / lanes;
  {
    TaskGroup group(executor);
    for (std::size_t begin = 0; begin < items.size(); begin += chunk) {
      const std::size_t end = std::min(items.size(), begin + chunk);
      group.spawn([this, &items, &tokens, begin, end] {
        verify_chunk(items, begin, end, tokens);
      });
    }
    if (batch_metrics_ != nullptr)
      batch_metrics_->read_queue_depth.set(
          static_cast<double>(executor.queue_depth()));
    group.wait();
  }
  if (batch_metrics_ != nullptr) {
    batch_metrics_->batch_size.observe(static_cast<double>(items.size()));
    batch_metrics_->read_wall_s.observe(phase_timer.lap());
  }

  // Phase B: the serialized commit — every item runs the full staged body
  // in input order (so verdicts, observer order and all derived state match
  // the serial reference byte for byte), attaching through one AttachBatch.
  {
    tangle::Tangle::AttachBatch batch(tangle_);
    for (std::size_t i = 0; i < items.size(); ++i) {
      out[i] = admit_one(*items[i].tx, items[i].arrival, ingress,
                         tokens[i].has_value() ? &*tokens[i] : nullptr,
                         &batch);
    }
  }
  if (batch_metrics_ != nullptr)
    batch_metrics_->commit_wall_s.observe(phase_timer.lap());
  return out;
}

}  // namespace biot::node
