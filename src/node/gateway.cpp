#include "node/gateway.h"

#include "common/codec.h"
#include "common/log.h"

#include <algorithm>
#include <unordered_set>

#include "storage/snapshot.h"

namespace biot::node {

namespace {
Logger logger("gateway");
}

Gateway::Gateway(sim::NodeId id, const crypto::Identity& identity,
                 const crypto::Ed25519PublicKey& manager_key,
                 const tangle::Transaction& genesis, sim::Network& network,
                 GatewayConfig config)
    : id_(id),
      identity_(identity),
      network_(network),
      config_(config),
      tangle_(genesis),
      auth_(manager_key),
      credit_(config.credit),
      miner_((std::uint64_t{id} << 48) | 0xa77ull),
      rng_(0x6a77ull ^ id) {
  if (config_.policy == GatewayConfig::Policy::kCredit)
    policy_ = std::make_unique<consensus::CreditDifficultyPolicy>(credit_);
  else
    policy_ = std::make_unique<consensus::FixedDifficultyPolicy>(
        config_.fixed_difficulty);

  if (config_.tips == GatewayConfig::TipStrategy::kWeightedWalk)
    tip_selector_ =
        std::make_unique<tangle::WeightedWalkTipSelector>(config_.walk_alpha);
  else
    tip_selector_ = std::make_unique<tangle::UniformRandomTipSelector>();

  if (config_.pow_threads != 1)
    parallel_miner_ = std::make_unique<consensus::ParallelMiner>(
        config_.pow_threads, (std::uint64_t{id} << 48) | 0xa77ull);
}

Gateway::Gateway(sim::NodeId id, const crypto::Identity& identity,
                 const crypto::Ed25519PublicKey& manager_key,
                 tangle::Tangle restored, sim::Network& network,
                 GatewayConfig config,
                 const std::optional<crypto::Ed25519PublicKey>& coordinator)
    : Gateway(id, identity, manager_key,
              restored.find(restored.genesis_id())->tx, network, config) {
  coordinator_key_ = coordinator;

  // Replay history in arrival order; structural validity was already
  // re-checked when the tangle loaded (deserialize_tangle runs every
  // signature and PoW through Tangle::add).
  const auto restored_order = restored.arrival_order();
  for (const auto& id_in_order : restored_order) {
    const auto* rec = restored.find(id_in_order);
    const auto& tx = rec->tx;
    if (tx.type == tangle::TxType::kGenesis) continue;

    // Lazy detection against the partially-rebuilt tangle, exactly as the
    // original admission did.
    const bool lazy =
        consensus::is_lazy_approval(tangle_, tx, rec->arrival, config_.lazy);
    if (!tangle_.add(tx, rec->arrival).is_ok()) continue;  // defensive

    const auto outcome = ledger_.apply_resolving(tx);
    const bool conflicted =
        outcome == tangle::Ledger::ApplyOutcome::kConflictKeptExisting ||
        outcome == tangle::Ledger::ApplyOutcome::kConflictDisplaced;
    if (conflicted)
      credit_.record_malicious(tx.sender, consensus::Behaviour::kDoubleSpend,
                               rec->arrival);
    if (lazy)
      credit_.record_malicious(tx.sender, consensus::Behaviour::kLazyTips,
                               rec->arrival);
    else if (!conflicted)
      credit_.record_valid_tx(tx.sender, tx.id(), rec->arrival);

    if (tx.type == tangle::TxType::kMilestone && coordinator_key_ &&
        tx.sender == *coordinator_key_)
      milestones_.observe_milestone(tangle_, tx.id());
    if (tx.type == tangle::TxType::kAuthorization) (void)auth_.apply(tx);
  }
}

void Gateway::attach() {
  network_.attach(id_, [this](sim::NodeId from, const Bytes& wire) {
    on_message(from, wire);
  });
  if (config_.sync_interval > 0.0)
    network_.scheduler().after(config_.sync_interval, [this] { sync_tick(); });
}

void Gateway::sync_tick() {
  if (!peers_.empty()) {
    // Round-robin one peer per tick; ship our whole id inventory. For the
    // factory-scale tangles of this system an explicit inventory is small
    // (32 B per tx); larger deployments would swap in a Merkle summary
    // without changing the protocol shape.
    const auto peer = peers_[next_sync_peer_++ % peers_.size()];
    Writer w;
    const auto& order = tangle_.arrival_order();
    w.u32(static_cast<std::uint32_t>(order.size()));
    for (const auto& id : order) w.raw(id.view());

    RpcMessage msg;
    msg.type = MsgType::kSyncSummary;
    msg.request_id = 0;
    msg.sender_key = identity_.public_identity().sign_key;
    msg.body = std::move(w).take();
    network_.send(id_, peer, msg.encode());
    ++stats_.syncs_sent;
  }
  network_.scheduler().after(config_.sync_interval, [this] { sync_tick(); });
}

void Gateway::handle_sync_summary(sim::NodeId from, const RpcMessage& msg) {
  Reader r(msg.body);
  const auto count = r.u32();
  if (!count) return;
  std::unordered_set<tangle::TxId, FixedBytesHash<32>> peer_has;
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    const auto id = r.raw(32);
    if (!id) return;
    peer_has.insert(tangle::TxId::from_view(id.value()));
  }

  // Ship everything the peer lacks, in arrival order so parents precede
  // children and the peer can attach in one pass.
  Writer w;
  std::uint32_t missing = 0;
  Writer txs;
  for (const auto& id : tangle_.arrival_order()) {
    if (peer_has.contains(id)) continue;
    const auto* rec = tangle_.find(id);
    if (rec->tx.type == tangle::TxType::kGenesis) continue;
    txs.blob(rec->tx.encode());
    ++missing;
  }
  if (missing == 0) return;
  w.u32(missing);
  w.raw(std::move(txs).take());
  stats_.sync_txs_served += missing;

  RpcMessage out;
  out.type = MsgType::kSyncMissing;
  out.request_id = msg.request_id;
  out.sender_key = identity_.public_identity().sign_key;
  out.body = std::move(w).take();
  network_.send(id_, from, out.encode());
}

void Gateway::handle_sync_missing(const RpcMessage& msg) {
  Reader r(msg.body);
  const auto count = r.u32();
  if (!count) return;
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    const auto wire = r.blob();
    if (!wire) return;
    const auto tx = tangle::Transaction::decode(wire.value());
    if (!tx) continue;
    if (admit(tx.value(), /*from_gossip=*/true).is_ok())
      ++stats_.sync_txs_applied;
  }
}

bool Gateway::rate_limit_allows(const crypto::Ed25519PublicKey& sender) {
  if (config_.rate_limit_per_sender <= 0.0) return true;
  const TimePoint t = now();
  auto [it, inserted] = buckets_.try_emplace(
      sender, TokenBucket{config_.rate_limit_burst, t});  // start full
  auto& bucket = it->second;
  bucket.tokens = std::min(
      config_.rate_limit_burst,
      bucket.tokens + (t - bucket.last_refill) * config_.rate_limit_per_sender);
  bucket.last_refill = t;
  if (bucket.tokens < 1.0) {
    ++stats_.rate_limited;
    return false;
  }
  bucket.tokens -= 1.0;
  return true;
}

consensus::WeightOracle Gateway::weight_oracle() const {
  // Weight of a transaction = "the number of validation to this transaction"
  // (Section IV-B): its own weight of 1 plus the direct approvals it has
  // received so far. Direct counts keep CrP bounded by the node's real
  // validation service to the tangle; cumulative weight would grow
  // quadratically in the window and swamp the Eqn 4 penalty.
  return [this](const tangle::TxId& id) {
    return 1.0 + static_cast<double>(tangle_.approver_count(id));
  };
}

int Gateway::required_difficulty(const tangle::AccountKey& sender) const {
  return policy_->required_difficulty(sender, now(), weight_oracle());
}

tangle::TipPair Gateway::select_tips() {
  ++stats_.tips_served;
  return tip_selector_->select(tangle_, rng_);
}

void Gateway::on_message(sim::NodeId from, const Bytes& wire) {
  const auto msg = RpcMessage::decode(wire);
  if (!msg) {
    logger.warn() << "dropping malformed message from node " << from;
    return;
  }
  switch (msg.value().type) {
    // Service-edge requests pass the per-sender token bucket first; a flood
    // is shed silently (no reply — replying would amplify the attack).
    case MsgType::kGetTipsRequest:
      if (rate_limit_allows(msg.value().sender_key))
        handle_get_tips(from, msg.value());
      break;
    case MsgType::kSubmitTx:
      if (rate_limit_allows(msg.value().sender_key))
        handle_submit(from, msg.value());
      break;
    case MsgType::kAttachRequest:
      if (rate_limit_allows(msg.value().sender_key))
        handle_attach(from, msg.value());
      break;
    case MsgType::kConfirmQuery:
      if (rate_limit_allows(msg.value().sender_key))
        handle_confirm_query(from, msg.value());
      break;
    case MsgType::kDataQuery:
      if (rate_limit_allows(msg.value().sender_key))
        handle_data_query(from, msg.value());
      break;
    case MsgType::kBroadcastTx:
      handle_gossip(msg.value());
      break;
    case MsgType::kSyncSummary:
      handle_sync_summary(from, msg.value());
      break;
    case MsgType::kSyncMissing:
      handle_sync_missing(msg.value());
      break;
    default:
      logger.warn() << "unexpected message type from node " << from;
  }
}

void Gateway::handle_get_tips(sim::NodeId from, const RpcMessage& msg) {
  TipsResponse resp;
  const bool is_manager = auth_.is_manager(msg.sender_key);
  if (!is_manager && !auth_.is_authorized(msg.sender_key)) {
    // Admission control: unauthorized devices are refused service outright
    // (Sybil / DDoS defence, Section VI-C).
    ++stats_.rejected_unauthorized;
    resp.status = ErrorCode::kUnauthorized;
    resp.message = "device not in authorization list";
  } else {
    const auto [t1, t2] = select_tips();
    resp.tip1 = t1;
    resp.tip2 = t2;
    resp.required_difficulty = static_cast<std::uint8_t>(
        required_difficulty(msg.sender_key));
  }
  reply(from, MsgType::kGetTipsResponse, msg.request_id, resp.encode());
}

ConfirmationInfo Gateway::confirmation_status(const tangle::TxId& id) const {
  ConfirmationInfo info;
  info.tx_id = id;
  info.known = tangle_.contains(id);
  if (!info.known) return info;
  info.milestone_confirmed = milestones_.is_confirmed(id);
  // O(1): the tangle maintains cumulative weight incrementally, so serving
  // confirmation queries never re-sweeps the DAG (bench/weight_cache_bench).
  info.cumulative_weight = tangle_.cumulative_weight(id);
  info.weight_confirmed = info.cumulative_weight >= config_.confirmation_weight;
  return info;
}

void Gateway::handle_confirm_query(sim::NodeId from, const RpcMessage& msg) {
  if (msg.body.size() != 32) return;  // malformed query: drop
  const auto info =
      confirmation_status(tangle::TxId::from_view(msg.body));
  reply(from, MsgType::kConfirmResponse, msg.request_id, info.encode());
}

std::size_t Gateway::snapshot_and_prune(
    TimePoint cutoff,
    const std::function<void(const tangle::Transaction&, TimePoint)>&
        archive_tx) {
  // Capture the derived state the snapshot genesis must commit to.
  std::vector<tangle::AccountKey> accounts;
  std::vector<crypto::PublicIdentity> authorized = auth_.authorized_devices();
  std::unordered_set<tangle::AccountKey, FixedBytesHash<32>> seen;
  for (const auto& id : tangle_.arrival_order()) {
    const auto* rec = tangle_.find(id);
    if (seen.insert(rec->tx.sender).second) accounts.push_back(rec->tx.sender);
  }
  const auto state = storage::capture_state(now(), ledger_, accounts, authorized);
  auto pruned = storage::prune(tangle_, state, cutoff);

  for (const auto& id : pruned.archived) {
    const auto* rec = tangle_.find(id);
    archive_tx(rec->tx, rec->arrival);
  }
  // Recent transactions reference pruned parents and cannot carry over
  // verbatim (parents are inside the signature); archive them too so no
  // history is lost, then restart from the snapshot genesis.
  for (const auto& id : tangle_.arrival_order()) {
    const auto* rec = tangle_.find(id);
    if (rec->tx.type == tangle::TxType::kGenesis) continue;
    if (rec->arrival >= cutoff) archive_tx(rec->tx, rec->arrival);
  }

  const std::size_t archived = tangle_.size() - 1;
  tangle_ = std::move(pruned.tangle);
  milestones_ = tangle::MilestoneTracker{};  // confirmations restart
  return archived;
}

void Gateway::handle_data_query(sim::NodeId from, const RpcMessage& msg) {
  const auto query = DataQuery::decode(msg.body);
  if (!query) return;

  // Reading the ledger is open to any party — the tangle is a public
  // blockchain; confidentiality of sensitive payloads comes from the data
  // authority management method (AES envelopes), not from access control
  // on reads (paper Section IV-C).
  const tangle::AccountKey zero{};
  DataResponse response;
  for (const auto& id : tangle_.arrival_order()) {
    if (response.transactions.size() >= query.value().max_results) break;
    const auto* rec = tangle_.find(id);
    if (rec->tx.type != tangle::TxType::kData) continue;
    if (rec->arrival < query.value().since) continue;
    if (query.value().sender != zero && rec->tx.sender != query.value().sender)
      continue;
    response.transactions.push_back(rec->tx);
  }
  reply(from, MsgType::kDataResponse, msg.request_id, response.encode());
}

Status Gateway::admit(const tangle::Transaction& tx, bool from_gossip) {
  const auto sender = tx.sender;
  const bool is_manager = auth_.is_manager(sender);
  const bool is_coordinator =
      coordinator_key_.has_value() && sender == *coordinator_key_;

  // Milestones are only ever acceptable from the registered Coordinator —
  // a forged checkpoint would confirm arbitrary history, so this holds for
  // gossip too.
  if (tx.type == tangle::TxType::kMilestone && !is_coordinator) {
    ++stats_.rejected_unauthorized;
    return Status::error(ErrorCode::kUnauthorized,
                         "milestone not issued by the coordinator");
  }

  // Admission control guards the *service* edge: requests from devices.
  // Gossip between full nodes relays the public tangle, which may carry
  // transactions admitted by other factories' gateways under their own
  // authorization lists (Section IV-A: "the tangle network ... is a public
  // blockchain network, any party can access the network").
  if (!from_gossip && !is_manager && !is_coordinator &&
      !auth_.is_authorized(sender)) {
    ++stats_.rejected_unauthorized;
    return Status::error(ErrorCode::kUnauthorized,
                         "sender not in authorization list");
  }

  // Difficulty policy enforcement. Gossiped transactions were already
  // policy-checked by the accepting gateway; re-checking here would race
  // with credit drift between replicas, so gossip only revalidates structure.
  if (!from_gossip) {
    const int required = required_difficulty(sender);
    if (tx.difficulty < required) {
      ++stats_.rejected_difficulty;
      return Status::error(ErrorCode::kPowInvalid,
                           "declared difficulty below required");
    }
  }

  // Ledger conflict handling differs by path. At the service edge a
  // double-spend is rejected outright and punished (alpha_d). Gossiped
  // transactions may legitimately conflict with something this replica
  // already applied (the attacker hit two gateways before gossip met);
  // those attach structurally and the ledger resolves the slot with a
  // replica-consistent rule after attachment — see Ledger::apply_resolving.
  if (!from_gossip) {
    if (auto s = ledger_.check(tx); !s) {
      if (s.code() == ErrorCode::kConflict) {
        ++stats_.rejected_conflict;
        credit_.record_malicious(sender, consensus::Behaviour::kDoubleSpend,
                                 now());
      } else {
        ++stats_.rejected_other;
      }
      return s;
    }
  }

  // Lazy-tip detection BEFORE attaching (the parents' tip/approval state
  // changes once the transaction attaches). Lazy transactions are still
  // structurally valid — they attach, but the sender is punished (alpha_l).
  const bool lazy = consensus::is_lazy_approval(tangle_, tx, now(), config_.lazy);

  if (auto s = tangle_.add(tx, now()); !s) {
    if (s.code() == ErrorCode::kPowInvalid)
      ++stats_.rejected_pow;
    else
      ++stats_.rejected_other;
    return s;
  }

  bool conflicted = false;
  if (from_gossip) {
    const auto outcome = ledger_.apply_resolving(tx);
    if (outcome == tangle::Ledger::ApplyOutcome::kConflictKeptExisting ||
        outcome == tangle::Ledger::ApplyOutcome::kConflictDisplaced) {
      conflicted = true;
      ++stats_.rejected_conflict;
      credit_.record_malicious(sender, consensus::Behaviour::kDoubleSpend,
                               now());
    }
  } else {
    (void)ledger_.apply(tx);  // cannot fail: check() passed above
  }

  if (lazy) {
    ++stats_.lazy_detected;
    credit_.record_malicious(sender, consensus::Behaviour::kLazyTips, now());
  } else if (!conflicted) {
    credit_.record_valid_tx(sender, tx.id(), now());
  }

  // Quality control (future-work extension): judge the payload when an
  // inspector is installed; a zero score is a poor-quality event.
  if (quality_inspector_ && tx.type == tangle::TxType::kData) {
    if (const auto score = quality_inspector_(tx);
        score.has_value() && *score <= 0.0) {
      ++stats_.poor_quality_detected;
      credit_.record_malicious(sender, consensus::Behaviour::kPoorQuality,
                               now());
    }
  }

  if (tx.type == tangle::TxType::kMilestone)
    milestones_.observe_milestone(tangle_, tx.id());

  if (tx.type == tangle::TxType::kAuthorization) {
    if (auto s = auth_.apply(tx); !s) {
      // Another factory's manager publishing its own list arrives via
      // gossip and is expected to be ignored here — only log real failures.
      if (s.code() == ErrorCode::kUnauthorized)
        logger.info() << "ignoring foreign authorization list";
      else
        logger.warn() << "authorization tx attached but not applied: "
                      << s.to_string();
    }
  }

  ++stats_.accepted;

  // A newly attached transaction may be the parent some buffered
  // out-of-order gossip was waiting for.
  adopt_orphans(tx.id());
  return Status::ok();
}

Status Gateway::submit(const tangle::Transaction& tx) {
  const auto status = admit(tx, /*from_gossip=*/false);
  if (status.is_ok()) {
    RpcMessage gossip;
    gossip.type = MsgType::kBroadcastTx;
    gossip.sender_key = identity_.public_identity().sign_key;
    gossip.body = tx.encode();
    const Bytes wire = gossip.encode();
    for (const auto peer : peers_) network_.send(id_, peer, wire);
  }
  return status;
}

void Gateway::handle_submit(sim::NodeId from, const RpcMessage& msg) {
  SubmitResult result;
  const auto tx = tangle::Transaction::decode(msg.body);
  if (!tx) {
    result.status = ErrorCode::kInvalidArgument;
    result.message = "undecodable transaction";
  } else if (tx.value().sender != msg.sender_key) {
    result.status = ErrorCode::kUnauthorized;
    result.message = "transaction sender differs from RPC sender";
  } else {
    const auto status = submit(tx.value());
    result.status = status.code();
    result.message = status.message();
    result.tx_id = tx.value().id();
  }
  reply(from, MsgType::kSubmitResult, msg.request_id, result.encode());
}

void Gateway::handle_attach(sim::NodeId from, const RpcMessage& msg) {
  // Offloaded PoW (the remote attachToTangle pattern): the device signed the
  // transaction but left the nonce to us. Grind it at the difficulty the
  // credit policy demands of the *device*, then run the normal admission
  // pipeline. The gateway is a server-class node, so this is cheap for it —
  // and the credit mechanism still prices the device's behaviour, because
  // the required difficulty follows the device's credit either way.
  SubmitResult result;
  auto tx = tangle::Transaction::decode(msg.body);
  if (!tx) {
    result.status = ErrorCode::kInvalidArgument;
    result.message = "undecodable transaction";
  } else if (tx.value().sender != msg.sender_key) {
    result.status = ErrorCode::kUnauthorized;
    result.message = "transaction sender differs from RPC sender";
  } else {
    auto& t = tx.value();
    // The declared difficulty is signed by the device, so it cannot be
    // adjusted here; if it fell behind the policy (credit moved since the
    // tips response), the device must refresh and re-sign.
    const int required = required_difficulty(t.sender);
    if (t.difficulty < required) {
      ++stats_.rejected_difficulty;
      result.status = ErrorCode::kPowInvalid;
      result.message = "declared difficulty below required";
    } else {
      const auto mined =
          parallel_miner_
              ? parallel_miner_->mine(t.parent1, t.parent2, t.difficulty)
              : miner_.mine(t.parent1, t.parent2, t.difficulty);
      t.nonce = mined->nonce;
      const auto status = submit(t);
      result.status = status.code();
      result.message = status.message();
      result.tx_id = t.id();
    }
  }
  reply(from, MsgType::kAttachResult, msg.request_id, result.encode());
}

void Gateway::buffer_orphan(const tangle::TxId& missing_parent,
                            tangle::Transaction tx) {
  if (orphan_count_ >= config_.max_orphans) return;  // bounded under attack
  orphans_[missing_parent].push_back(std::move(tx));
  ++orphan_count_;
  ++stats_.orphans_buffered;
}

void Gateway::adopt_orphans(const tangle::TxId& arrived) {
  const auto it = orphans_.find(arrived);
  if (it == orphans_.end()) return;
  auto waiting = std::move(it->second);
  orphans_.erase(it);
  orphan_count_ -= waiting.size();
  for (auto& tx : waiting) {
    // Re-admission may re-orphan on the OTHER parent; that re-buffers.
    if (admit(tx, /*from_gossip=*/true).is_ok()) ++stats_.orphans_adopted;
  }
}

void Gateway::handle_gossip(const RpcMessage& msg) {
  ++stats_.gossip_received;
  const auto tx = tangle::Transaction::decode(msg.body);
  if (!tx) return;
  const auto status = admit(tx.value(), /*from_gossip=*/true);
  if (status.is_ok()) {
    // Relay onward so the tangle converges across >2 gateways; duplicates
    // are rejected by the tangle, which stops the flood.
    RpcMessage relay = msg;
    const Bytes wire = relay.encode();
    for (const auto peer : peers_) network_.send(id_, peer, wire);
  } else if (status.code() == ErrorCode::kNotFound) {
    // Random per-message latency reorders gossip: hold the child until its
    // missing parent lands rather than dropping it.
    const auto& t = tx.value();
    const auto missing = tangle_.contains(t.parent1) ? t.parent2 : t.parent1;
    buffer_orphan(missing, t);
  }
}

void Gateway::reply(sim::NodeId to, MsgType type, std::uint64_t request_id,
                    const Bytes& body) {
  RpcMessage msg;
  msg.type = type;
  msg.request_id = request_id;
  msg.sender_key = identity_.public_identity().sign_key;
  msg.body = body;
  network_.send(id_, to, msg.encode());
}

}  // namespace biot::node
