#include "node/gateway.h"

#include "common/codec.h"
#include "common/log.h"
#include "crypto/ed25519.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "storage/snapshot.h"

namespace biot::node {

namespace {
Logger logger("gateway");

// Anti-entropy summary wire format version (see tangle/reconcile.h). v2 is
// the constant-size digest + sketch summary; the full-inventory exchange
// survives as the kSyncInventory fallback for oversized differences.
constexpr std::uint8_t kSyncSummaryV2 = 2;
}  // namespace

void GatewayMetrics::attach_to(const obs::Scope& scope) const {
  admission.attach_to(scope.scope("admission"));
  admission_batch.attach_to(scope.scope("admission").scope("batch"));
  scope.attach("pow.grind_wall_s", &pow_grind_wall_s);
  scope.attach("sync.rtt_sim_s", &sync_rtt_sim_s);
  scope.attach("tips.walk_steps", &tip_walk_steps);
}

Gateway::Gateway(sim::NodeId id, const crypto::Identity& identity,
                 const crypto::Ed25519PublicKey& manager_key,
                 const tangle::Transaction& genesis, sim::Network& network,
                 GatewayConfig config)
    : id_(id),
      identity_(identity),
      network_(network),
      config_(std::move(config)),
      manager_key_(manager_key),
      tangle_(genesis),
      auth_(manager_key),
      credit_(config_.credit),
      miner_((std::uint64_t{id} << 48) | 0xa77ull),
      rng_(0x6a77ull ^ id),
      quality_inspector_(config_.quality_inspector) {
  if (config_.policy == GatewayConfig::Policy::kCredit)
    policy_ = std::make_unique<consensus::CreditDifficultyPolicy>(credit_);
  else
    policy_ = std::make_unique<consensus::FixedDifficultyPolicy>(
        config_.fixed_difficulty);

  if (config_.tips == GatewayConfig::TipStrategy::kWeightedWalk)
    tip_selector_ =
        std::make_unique<tangle::WeightedWalkTipSelector>(config_.walk_alpha);
  else
    tip_selector_ = std::make_unique<tangle::UniformRandomTipSelector>();

  if (config_.pow_threads != 1)
    parallel_miner_ = std::make_unique<consensus::ParallelMiner>(
        config_.pow_threads, (std::uint64_t{id} << 48) | 0xa77ull);

  if (config_.admission_threads == 1)
    admission_executor_ = std::make_unique<InlineExecutor>();
  else
    admission_executor_ =
        std::make_unique<ThreadPoolExecutor>(config_.admission_threads);

  build_pipeline();
}

void Gateway::build_pipeline() {
  pipeline_ = std::make_unique<AdmissionPipeline>(
      tangle_, auth_, ledger_, coordinator_key_, config_.lazy,
      [this](const tangle::AccountKey& sender) {
        return required_difficulty(sender);
      });
  // Registration order is the annotation contract (DESIGN.md section 9):
  // ledger resolves the slot, quality scores the payload, credit prices
  // both plus laziness, then confirmations/authorization, stats last.
  pipeline_->add_observer(std::make_unique<LedgerObserver>(ledger_));
  pipeline_->add_observer(
      std::make_unique<QualityObserver>(quality_inspector_));
  pipeline_->add_observer(std::make_unique<CreditObserver>(credit_));
  pipeline_->add_observer(std::make_unique<MilestoneObserver>(
      milestones_, tangle_, coordinator_key_));
  pipeline_->add_observer(std::make_unique<AuthObserver>(auth_));
  pipeline_->add_observer(
      std::make_unique<OfflineSettlementObserver>(offline_registry_));
  pipeline_->add_observer(std::make_unique<StatsObserver>(stats_));
  pipeline_->set_metrics(&metrics_.admission);
  pipeline_->set_batch_metrics(&metrics_.admission_batch);
}

Gateway::Gateway(sim::NodeId id, const crypto::Identity& identity,
                 const crypto::Ed25519PublicKey& manager_key,
                 tangle::Tangle restored, sim::Network& network,
                 GatewayConfig config,
                 const std::optional<crypto::Ed25519PublicKey>& coordinator)
    : Gateway(id, identity, manager_key,
              restored.find(restored.genesis_id())->tx, network,
              std::move(config)) {
  coordinator_key_ = coordinator;

  // Cold start = the SAME pipeline over the restored arrival order
  // (Ingress::kReplay) — every derived-state observer, stats included,
  // re-runs exactly as it did live, so live/restore divergence is
  // impossible by construction. Structural validity was already re-checked
  // when the tangle loaded (deserialize_tangle runs every signature and
  // PoW through Tangle::add).
  replay(restored);
}

void Gateway::replay(const tangle::Tangle& restored) {
  // Every member of `restored` already passed a verifying Tangle::add
  // (deserialize_tangle re-checks each signature as it loads), so replay
  // admits with an assume_valid token per transaction instead of verifying
  // a second time — batch ingress with zero Ed25519 work. The batch runs
  // the same staged pipeline per item, in the recorded arrival order, so
  // every derived-state observer re-runs exactly as it did live.
  std::vector<tangle::VerifiedToken> tokens;
  std::vector<AdmissionBatchItem> items;
  tokens.reserve(restored.size());
  items.reserve(restored.size());
  for (const auto& id_in_order : restored.arrival_order()) {
    const auto* rec = restored.find(id_in_order);
    if (rec->tx.type == tangle::TxType::kGenesis) continue;
    tokens.push_back(tangle::VerifiedToken::assume_valid(rec->tx));
    items.push_back(AdmissionBatchItem{&rec->tx, rec->arrival, &tokens.back()});
  }
  (void)admit_batch_items(items, Ingress::kReplay);
}

void Gateway::stop() {
  if (!running_) return;
  running_ = false;
  ++lifecycle_epoch_;  // expire pending sync ticks from this life
  network_.detach(id_);
  // In-flight state dies with the process: buffered orphans, rate-limiter
  // buckets. Only what the pipeline admitted (the tangle) survives a crash,
  // via whatever snapshot the driver persisted.
  orphans_.clear();
  orphan_count_ = 0;
  buckets_.clear();
  last_bucket_sweep_ = 0.0;
  sync_sent_at_.clear();
}

void Gateway::restart(const tangle::Tangle& restored) {
  stop();  // no-op if already stopped; guarantees a clean slate either way
  // Reset every derived-state member in place (Manager/Coordinator hold
  // references to this object, so no destroy-and-reconstruct), then rebuild
  // the pipeline over the fresh members and re-derive everything from the
  // restored history — the same tamper-proof-credit replay as the restore
  // constructor.
  tangle_ = tangle::Tangle(restored.find(restored.genesis_id())->tx);
  ledger_ = tangle::Ledger{};
  auth_ = auth::AuthRegistry(manager_key_);
  credit_ = consensus::CreditRegistry(config_.credit);
  milestones_ = tangle::MilestoneTracker{};
  offline_registry_ = OfflineRegistry{};
  stats_ = GatewayStats{};
  build_pipeline();
  replay(restored);
  attach();
}

void Gateway::attach() {
  running_ = true;
  network_.attach(id_, [this](sim::NodeId from, const Bytes& wire) {
    on_message(from, wire);
  });
  schedule_sync();
}

void Gateway::schedule_sync() {
  if (config_.sync_interval <= 0.0) return;
  network_.scheduler().after(
      config_.sync_interval, [this, epoch = lifecycle_epoch_] {
        // A tick scheduled before a stop() must not fire against the reborn
        // gateway (it would double the tick cadence after every restart).
        if (!running_ || epoch != lifecycle_epoch_) return;
        sync_tick();
      });
}

void Gateway::sync_tick() {
  if (!peers_.empty()) {
    // Round-robin one peer per tick; ship a constant-size summary (count +
    // XOR digest + invertible sketch) instead of the full id inventory —
    // the peer decodes the exact difference locally (tangle/reconcile.h).
    const auto peer = peers_[next_sync_peer_++ % peers_.size()];
    Writer w;
    w.u8(kSyncSummaryV2);
    w.u64(tangle_.size());
    w.raw(tangle_.id_digest().value.view());
    w.blob(tangle_.id_sketch().encode());

    RpcMessage msg;
    msg.type = MsgType::kSyncSummary;
    // Fresh id per tick so the eventual kSyncMissing reply (which echoes it
    // through both the sketch and inventory-fallback paths) can be matched
    // to this send for the round-trip-time histogram.
    msg.request_id = next_sync_request_id_++;
    msg.sender_key = identity_.public_identity().sign_key;
    msg.body = std::move(w).take();
    sync_sent_at_[msg.request_id] = now();
    network_.send(id_, peer, msg.encode());
    ++stats_.syncs_sent;

    // Converged peers answer a summary with silence, so stamps without a
    // reply accumulate; drop anything older than a few intervals (a real
    // straggler reply that late would be a stale RTT sample anyway).
    const TimePoint cutoff = now() - 8.0 * config_.sync_interval;
    std::erase_if(sync_sent_at_,
                  [cutoff](const auto& kv) { return kv.second < cutoff; });
  }
  schedule_sync();
}

void Gateway::handle_sync_summary(sim::NodeId from, const RpcMessage& msg) {
  Reader r(msg.body);
  const auto version = r.u8();
  if (!version || version.value() != kSyncSummaryV2) return;
  const auto count = r.u64();
  const auto digest_raw = r.raw(32);
  const auto sketch_wire = r.blob();
  if (!count || !digest_raw || !sketch_wire) return;

  // O(1) fast path: identical digest + identical size means identical id
  // sets (w.h.p.) — converged replicas exchange 23 KB and do no work.
  const tangle::IdDigest peer_digest{
      tangle::TxId::from_view(digest_raw.value())};
  if (peer_digest == tangle_.id_digest() && count.value() == tangle_.size())
    return;

  auto peer_sketch = tangle::SetSketch::decode(sketch_wire.value());
  if (!peer_sketch) return;
  auto diff = tangle_.id_sketch().subtract_and_decode(peer_sketch.value());
  if (!diff.decoded) {
    // Difference exceeded the sketch capacity (fresh peer, long partition):
    // fall back to the full-inventory exchange.
    ++stats_.sync_fallbacks;
    reply(from, MsgType::kSyncInventoryRequest, msg.request_id, {});
    return;
  }
  // diff.only_local = ids we hold that the peer lacks; diff.only_remote is
  // the converse and will be backfilled when OUR next tick reaches them.
  ship_missing(from, msg.request_id, std::move(diff.only_local));
}

void Gateway::handle_sync_inventory_request(sim::NodeId from,
                                            const RpcMessage& msg) {
  Writer w;
  const auto& order = tangle_.arrival_order();
  w.u32(static_cast<std::uint32_t>(order.size()));
  for (const auto& id : order) w.raw(id.view());
  reply(from, MsgType::kSyncInventory, msg.request_id, std::move(w).take());
}

void Gateway::handle_sync_inventory(sim::NodeId from, const RpcMessage& msg) {
  // Reference/fallback diff path: explicit inventory, full scan. The sketch
  // path must produce exactly this result whenever it decodes (property-
  // tested in tests/test_indexes.cpp).
  Reader r(msg.body);
  const auto count = r.u32();
  if (!count) return;
  std::unordered_set<tangle::TxId, FixedBytesHash<32>> peer_has;
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    const auto id = r.raw(32);
    if (!id) return;
    peer_has.insert(tangle::TxId::from_view(id.value()));
  }

  std::vector<tangle::TxId> missing;
  for (const auto& id : tangle_.arrival_order()) {
    if (!peer_has.contains(id)) missing.push_back(id);
  }
  ship_missing(from, msg.request_id, std::move(missing));
}

void Gateway::ship_missing(sim::NodeId to, std::uint64_t request_id,
                           std::vector<tangle::TxId> ids) {
  // Ship in arrival order so parents precede children and the peer can
  // attach in one pass (order_pos is the arrival_order position).
  std::vector<const tangle::TxRecord*> recs;
  recs.reserve(ids.size());
  for (const auto& id : ids) {
    const auto* rec = tangle_.find(id);  // sketch decode is probabilistic —
    if (rec == nullptr) continue;        // drop anything we don't truly hold
    if (rec->tx.type == tangle::TxType::kGenesis) continue;
    recs.push_back(rec);
  }
  if (recs.empty()) return;
  std::sort(recs.begin(), recs.end(),
            [](const tangle::TxRecord* a, const tangle::TxRecord* b) {
              return a->order_pos < b->order_pos;
            });

  Writer w;
  w.u32(static_cast<std::uint32_t>(recs.size()));
  for (const auto* rec : recs) w.blob(rec->tx.encode());
  stats_.sync_txs_served += recs.size();

  RpcMessage out;
  out.type = MsgType::kSyncMissing;
  out.request_id = request_id;
  out.sender_key = identity_.public_identity().sign_key;
  out.body = std::move(w).take();
  network_.send(id_, to, out.encode());
}

void Gateway::handle_sync_missing(const RpcMessage& msg) {
  // RTT of the anti-entropy exchange this reply closes (sim time; covers
  // both the sketch-decode path and the inventory fallback, which adds a
  // full extra round trip).
  if (const auto it = sync_sent_at_.find(msg.request_id);
      it != sync_sent_at_.end()) {
    metrics_.sync_rtt_sim_s.observe(now() - it->second);
    sync_sent_at_.erase(it);
  }
  Reader r(msg.body);
  const auto count = r.u32();
  if (!count) return;
  // Decode the whole burst first so the signatures can be checked with one
  // batched Ed25519 verification instead of one scalar verify per tx; the
  // admission pipeline then accepts each batch-verified tx via its token.
  // The count is attacker-controlled wire data: never reserve off it
  // directly (a forged 2^32-1 would ask for hundreds of GB up front).
  // Every blob costs at least its u32 length prefix, so the remaining body
  // bounds how many transactions the message can actually carry.
  std::vector<tangle::Transaction> txs;
  txs.reserve(std::min<std::size_t>(count.value(),
                                    r.remaining() / sizeof(std::uint32_t)));
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    const auto wire = r.blob();
    if (!wire) break;
    auto tx = tangle::Transaction::decode(wire.value());
    if (!tx) continue;
    txs.push_back(std::move(tx).value());
  }
  // The pipeline's batch ingress does the rest: its read phase checks the
  // whole burst with one batched Ed25519 verification per chunk (invalid
  // signatures fall through to the normal kVerify rejection), and its
  // commit phase attaches in shipped order — parents precede children, so
  // a burst of linked history lands in one pass.
  const auto statuses = admit_many(txs, Ingress::kSync);
  for (const auto& status : statuses)
    if (status.is_ok()) ++stats_.sync_txs_applied;
}

bool Gateway::rate_limit_allows(const crypto::Ed25519PublicKey& sender) {
  if (config_.rate_limit_per_sender <= 0.0) return true;
  const TimePoint t = now();
  evict_idle_buckets(t);
  auto [it, inserted] = buckets_.try_emplace(
      sender, TokenBucket{config_.rate_limit_burst, t});  // start full
  auto& bucket = it->second;
  bucket.tokens = std::min(
      config_.rate_limit_burst,
      bucket.tokens + (t - bucket.last_refill) * config_.rate_limit_per_sender);
  bucket.last_refill = t;
  if (bucket.tokens < 1.0) {
    ++stats_.rate_limited;
    return false;
  }
  bucket.tokens -= 1.0;
  return true;
}

void Gateway::evict_idle_buckets(TimePoint t) {
  // A bucket untouched for burst/rate seconds has fully refilled, so
  // evicting it is indistinguishable from keeping it (try_emplace recreates
  // it full). Sweeping once per horizon bounds the map by the senders seen
  // in the last two horizons — an unauthorized-sender Sybil flood can no
  // longer grow gateway memory without bound.
  const Duration horizon =
      config_.rate_limit_burst / config_.rate_limit_per_sender;
  if (t - last_bucket_sweep_ < horizon) return;
  last_bucket_sweep_ = t;
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    if (t - it->second.last_refill >= horizon) {
      it = buckets_.erase(it);
      ++stats_.rate_buckets_evicted;
    } else {
      ++it;
    }
  }
}

consensus::WeightOracle Gateway::weight_oracle() const {
  // Weight of a transaction = "the number of validation to this transaction"
  // (Section IV-B): its own weight of 1 plus the direct approvals it has
  // received so far. Direct counts keep CrP bounded by the node's real
  // validation service to the tangle; cumulative weight would grow
  // quadratically in the window and swamp the Eqn 4 penalty.
  return [this](const tangle::TxId& id) {
    return 1.0 + static_cast<double>(tangle_.approver_count(id));
  };
}

int Gateway::required_difficulty(const tangle::AccountKey& sender) const {
  return policy_->required_difficulty(sender, now(), weight_oracle());
}

tangle::TipPair Gateway::select_tips() {
  ++stats_.tips_served;
  const auto tips = tip_selector_->select(tangle_, rng_);
  if (const auto steps = tip_selector_->last_walk_steps(); steps > 0)
    metrics_.tip_walk_steps.observe(static_cast<double>(steps));
  return tips;
}

void Gateway::on_message(sim::NodeId from, const Bytes& wire) {
  const auto msg = RpcMessage::decode(wire);
  if (!msg) {
    logger.warn() << "dropping malformed message from node " << from;
    return;
  }
  switch (msg.value().type) {
    // Service-edge requests pass the per-sender token bucket first; a flood
    // is shed silently (no reply — replying would amplify the attack).
    case MsgType::kGetTipsRequest:
      if (rate_limit_allows(msg.value().sender_key))
        handle_get_tips(from, msg.value());
      break;
    case MsgType::kSubmitTx:
      if (rate_limit_allows(msg.value().sender_key))
        handle_submit(from, msg.value());
      break;
    case MsgType::kAttachRequest:
      if (rate_limit_allows(msg.value().sender_key))
        handle_attach(from, msg.value());
      break;
    case MsgType::kConfirmQuery:
      if (rate_limit_allows(msg.value().sender_key))
        handle_confirm_query(from, msg.value());
      break;
    case MsgType::kDataQuery:
      if (rate_limit_allows(msg.value().sender_key))
        handle_data_query(from, msg.value());
      break;
    case MsgType::kOfflineDrainRequest:
      // One token per CHUNK, not per transaction: a healing flash crowd is
      // exactly when the rate limiter must not starve the drain path.
      if (rate_limit_allows(msg.value().sender_key))
        handle_offline_drain(from, msg.value());
      break;
    case MsgType::kBroadcastTx:
      handle_gossip(msg.value());
      break;
    case MsgType::kSyncSummary:
      handle_sync_summary(from, msg.value());
      break;
    case MsgType::kSyncInventoryRequest:
      handle_sync_inventory_request(from, msg.value());
      break;
    case MsgType::kSyncInventory:
      handle_sync_inventory(from, msg.value());
      break;
    case MsgType::kSyncMissing:
      handle_sync_missing(msg.value());
      break;
    default:
      logger.warn() << "unexpected message type from node " << from;
  }
}

void Gateway::handle_get_tips(sim::NodeId from, const RpcMessage& msg) {
  TipsResponse resp;
  const bool is_manager = auth_.is_manager(msg.sender_key);
  if (!is_manager && !auth_.is_authorized(msg.sender_key)) {
    // Admission control: unauthorized devices are refused service outright
    // (Sybil / DDoS defence, Section VI-C).
    ++stats_.rejected_unauthorized;
    resp.status = ErrorCode::kUnauthorized;
    resp.message = "device not in authorization list";
  } else {
    const auto [t1, t2] = select_tips();
    resp.tip1 = t1;
    resp.tip2 = t2;
    resp.required_difficulty = static_cast<std::uint8_t>(
        required_difficulty(msg.sender_key));
  }
  reply(from, MsgType::kGetTipsResponse, msg.request_id, resp.encode());
}

ConfirmationInfo Gateway::confirmation_status(const tangle::TxId& id) const {
  ConfirmationInfo info;
  info.tx_id = id;
  info.known = tangle_.contains(id);
  if (!info.known) return info;
  info.milestone_confirmed = milestones_.is_confirmed(id);
  // O(1): the tangle maintains cumulative weight incrementally, so serving
  // confirmation queries never re-sweeps the DAG (bench/weight_cache_bench).
  info.cumulative_weight = tangle_.cumulative_weight(id);
  info.weight_confirmed = info.cumulative_weight >= config_.confirmation_weight;
  return info;
}

void Gateway::handle_confirm_query(sim::NodeId from, const RpcMessage& msg) {
  if (msg.body.size() != 32) return;  // malformed query: drop
  const auto info =
      confirmation_status(tangle::TxId::from_view(msg.body));
  reply(from, MsgType::kConfirmResponse, msg.request_id, info.encode());
}

std::size_t Gateway::snapshot_and_prune(
    TimePoint cutoff,
    const std::function<void(const tangle::Transaction&, TimePoint)>&
        archive_tx) {
  // Capture the derived state the snapshot genesis must commit to. Account
  // enumeration comes from the tangle's first-seen sender index — no DAG
  // sweep.
  const auto state = storage::capture_state(
      now(), ledger_, tangle_.senders_first_seen(), auth_.authorized_devices());
  auto pruned = storage::prune(tangle_, state, cutoff);

  for (const auto& id : pruned.archived) {
    const auto* rec = tangle_.find(id);
    archive_tx(rec->tx, rec->arrival);
  }
  // Recent transactions reference pruned parents and cannot carry over
  // verbatim (parents are inside the signature); archive them too so no
  // history is lost, then restart from the snapshot genesis. The arrival
  // index hands us exactly the >= cutoff suffix.
  const auto& by_arrival = tangle_.arrival_index();
  for (std::size_t i = tangle::Tangle::first_at_or_after(by_arrival, cutoff);
       i < by_arrival.size(); ++i) {
    if (by_arrival[i].type == tangle::TxType::kGenesis) continue;
    const auto* rec = tangle_.find(by_arrival[i].id);
    archive_tx(rec->tx, rec->arrival);
  }

  const std::size_t archived = tangle_.size() - 1;
  tangle_ = std::move(pruned.tangle);
  milestones_ = tangle::MilestoneTracker{};  // confirmations restart
  return archived;
}

void Gateway::handle_data_query(sim::NodeId from, const RpcMessage& msg) {
  const auto query = DataQuery::decode(msg.body);
  if (!query) return;

  // Reading the ledger is open to any party — the tangle is a public
  // blockchain; confidentiality of sensitive payloads comes from the data
  // authority management method (AES envelopes), not from access control
  // on reads (paper Section IV-C). Served from the by-sender / by-type
  // secondary indexes: O(log n + results), never a DAG sweep.
  const tangle::AccountKey zero{};
  const bool any_sender = query.value().sender == zero;
  DataResponse response;
  for (const auto* rec :
       tangle_.data_since(any_sender ? nullptr : &query.value().sender,
                          query.value().since, query.value().max_results))
    response.transactions.push_back(rec->tx);
  reply(from, MsgType::kDataResponse, msg.request_id, response.encode());
}

Status Gateway::admit(const tangle::Transaction& tx, Ingress ingress,
                      const tangle::VerifiedToken* pre_verified) {
  const auto status = pipeline_->admit(tx, now(), ingress, pre_verified);
  // A newly attached transaction may be the parent some buffered
  // out-of-order gossip was waiting for.
  if (status.is_ok()) adopt_orphans(tx.id());
  return status;
}

std::vector<Status> Gateway::admit_many(
    const std::vector<tangle::Transaction>& txs, Ingress ingress) {
  const TimePoint arrival = now();
  std::vector<AdmissionBatchItem> items;
  items.reserve(txs.size());
  for (const auto& tx : txs)
    items.push_back(AdmissionBatchItem{&tx, arrival, nullptr});
  return admit_batch_items(items, ingress);
}

std::vector<Status> Gateway::admit_batch_items(
    const std::vector<AdmissionBatchItem>& items, Ingress ingress) {
  std::vector<Status> out;
  out.reserve(items.size());
  for (std::size_t begin = 0; begin < items.size();
       begin += config_.admission_max_batch) {
    const std::size_t end =
        std::min(items.size(), begin + config_.admission_max_batch);
    const std::vector<AdmissionBatchItem> slice(items.begin() + begin,
                                                items.begin() + end);
    auto statuses =
        pipeline_->admit_many(slice, ingress, *admission_executor_);
    // Orphan adoption after the slice committed, in slice order — the same
    // "newly attached tx may be a buffered child's parent" rule as the
    // serial path, just amortized to the batch boundary.
    for (std::size_t i = 0; i < statuses.size(); ++i)
      if (statuses[i].is_ok()) adopt_orphans(slice[i].tx->id());
    out.insert(out.end(), std::make_move_iterator(statuses.begin()),
               std::make_move_iterator(statuses.end()));
  }
  return out;
}

Status Gateway::submit(const tangle::Transaction& tx) {
  const auto status = admit(tx, Ingress::kService);
  if (status.is_ok()) {
    RpcMessage gossip;
    gossip.type = MsgType::kBroadcastTx;
    gossip.sender_key = identity_.public_identity().sign_key;
    gossip.body = tx.encode();
    const Bytes wire = gossip.encode();
    for (const auto peer : peers_) network_.send(id_, peer, wire);
  }
  return status;
}

void Gateway::handle_submit(sim::NodeId from, const RpcMessage& msg) {
  SubmitResult result;
  const auto tx = tangle::Transaction::decode(msg.body);
  if (!tx) {
    result.status = ErrorCode::kInvalidArgument;
    result.message = "undecodable transaction";
  } else if (tx.value().sender != msg.sender_key) {
    result.status = ErrorCode::kUnauthorized;
    result.message = "transaction sender differs from RPC sender";
  } else {
    const auto status = submit(tx.value());
    result.status = status.code();
    result.message = status.message();
    result.tx_id = tx.value().id();
  }
  reply(from, MsgType::kSubmitResult, msg.request_id, result.encode());
}

void Gateway::handle_attach(sim::NodeId from, const RpcMessage& msg) {
  // Offloaded PoW (the remote attachToTangle pattern): the device signed the
  // transaction but left the nonce to us. Grind it at the difficulty the
  // credit policy demands of the *device*, then run the normal admission
  // pipeline. The gateway is a server-class node, so this is cheap for it —
  // and the credit mechanism still prices the device's behaviour, because
  // the required difficulty follows the device's credit either way.
  SubmitResult result;
  auto tx = tangle::Transaction::decode(msg.body);
  if (!tx) {
    result.status = ErrorCode::kInvalidArgument;
    result.message = "undecodable transaction";
  } else if (tx.value().sender != msg.sender_key) {
    result.status = ErrorCode::kUnauthorized;
    result.message = "transaction sender differs from RPC sender";
  } else {
    auto& t = tx.value();
    // The declared difficulty is signed by the device, so it cannot be
    // adjusted here; if it fell behind the policy (credit moved since the
    // tips response), the device must refresh and re-sign.
    const int required = required_difficulty(t.sender);
    if (t.difficulty < required) {
      ++stats_.rejected_difficulty;
      result.status = ErrorCode::kPowInvalid;
      result.message = "declared difficulty below required";
    } else if (t.difficulty > config_.credit.max_difficulty) {
      // No honest device declares more than the policy ceiling; grinding a
      // corrupted/hostile 2^200 request would wedge the gateway (DoS).
      ++stats_.rejected_difficulty;
      result.status = ErrorCode::kPowInvalid;
      result.message = "declared difficulty above protocol maximum";
    } else {
      const obs::WallTimer grind;
      const auto mined =
          parallel_miner_
              ? parallel_miner_->mine(t.parent1, t.parent2, t.difficulty)
              : miner_.mine(t.parent1, t.parent2, t.difficulty);
      metrics_.pow_grind_wall_s.observe(grind.elapsed());
      if (!mined) {
        // Bounded miners (or an out-of-range difficulty) can exhaust the
        // nonce budget without a hit; report that instead of dereferencing
        // an empty result. This is gateway-side mining giving up, not a
        // client submitting an invalid proof, so it gets its own counter
        // rather than polluting rejected_pow.
        ++stats_.pow_offload_exhausted;
        result.status = ErrorCode::kPowInvalid;
        result.message = "nonce search exhausted without a valid proof";
      } else {
        t.nonce = mined->nonce;
        // decode() cached the id of the nonce-less wire; the nonce is part
        // of the id, so the cache must be dropped before anyone reads it.
        t.invalidate_id();
        const auto status = submit(t);
        result.status = status.code();
        result.message = status.message();
        result.tx_id = t.id();
      }
    }
  }
  reply(from, MsgType::kAttachResult, msg.request_id, result.encode());
}

void Gateway::handle_offline_drain(sim::NodeId from, const RpcMessage& msg) {
  ++stats_.drain_requests;
  const auto request = OfflineDrainRequest::decode(msg.body);
  if (!request) return;  // malformed chunk: drop, don't amplify
  const auto& txs = request.value().transactions;

  OfflineDrainResult result;
  result.items.resize(txs.size());
  std::vector<tangle::Transaction> to_admit;
  std::vector<std::size_t> admit_slot;  // result index per to_admit entry
  to_admit.reserve(txs.size());
  admit_slot.reserve(txs.size());

  for (std::size_t i = 0; i < txs.size(); ++i) {
    auto& item = result.items[i];
    item.tx_id = txs[i].id();
    if (txs[i].sender != msg.sender_key) {
      item.status = ErrorCode::kUnauthorized;
      continue;
    }
    // Explicit-duplicate pre-pass: a record whose (issuer, seq) already
    // settled — the witness's evidence copy landed first, or the device
    // crashed after a drain was admitted but before the verdict arrived —
    // is answered "already settled by <tx>" without any admission work.
    // Service-edge only: gossip/sync/replay of the settling transactions
    // themselves must stay byte-identical across replicas.
    if (!txs[i].payload_encrypted &&
        OfflineEnvelope::is_offline_payload(txs[i].payload)) {
      if (const auto envelope = OfflineEnvelope::decode(txs[i].payload)) {
        const OfflineKey key{envelope.value().record.issuer,
                             envelope.value().record.outbox_seq};
        if (const auto settled = offline_registry_.find(key)) {
          ++stats_.offline_duplicates;
          item.status = ErrorCode::kReplayDetected;
          item.tx_id = *settled;  // tell the device which tx settled it
          continue;
        }
      }
    }
    admit_slot.push_back(i);
    to_admit.push_back(txs[i]);
  }

  // The whole chunk goes through batch admission (one batched signature
  // verification, one attach batch) — never per-item admit() in a drain
  // loop, which is what the flash-crowd reconnect would wedge on.
  const auto statuses = admit_many(to_admit, Ingress::kService);
  for (std::size_t j = 0; j < statuses.size(); ++j) {
    auto& item = result.items[admit_slot[j]];
    item.status = statuses[j].code();
    if (statuses[j].is_ok()) {
      ++stats_.offline_drained;
      // Drained history reaches peers like any service submission.
      RpcMessage gossip;
      gossip.type = MsgType::kBroadcastTx;
      gossip.sender_key = identity_.public_identity().sign_key;
      gossip.body = to_admit[j].encode();
      const Bytes wire = gossip.encode();
      for (const auto peer : peers_) network_.send(id_, peer, wire);
    }
  }
  reply(from, MsgType::kOfflineDrainResult, msg.request_id, result.encode());
}

void Gateway::buffer_orphan(const tangle::TxId& missing_parent,
                            tangle::Transaction tx) {
  if (orphan_count_ >= config_.max_orphans) {  // bounded under attack
    ++stats_.orphans_dropped;
    return;
  }
  orphans_[missing_parent].push_back(std::move(tx));
  ++orphan_count_;
  ++stats_.orphans_buffered;
}

void Gateway::adopt_orphans(const tangle::TxId& arrived) {
  const auto it = orphans_.find(arrived);
  if (it == orphans_.end()) return;
  auto waiting = std::move(it->second);
  orphans_.erase(it);
  orphan_count_ -= waiting.size();
  for (auto& tx : waiting) {
    const auto status = admit(tx, Ingress::kOrphanRetry);
    if (status.is_ok()) {
      ++stats_.orphans_adopted;
    } else if (status.code() == ErrorCode::kNotFound) {
      // The OTHER parent is still missing: re-buffer on it rather than
      // dropping a transaction we already held.
      const auto missing =
          tangle_.contains(tx.parent1) ? tx.parent2 : tx.parent1;
      buffer_orphan(missing, std::move(tx));
    }
  }
}

void Gateway::handle_gossip(const RpcMessage& msg) {
  ++stats_.gossip_received;
  const auto tx = tangle::Transaction::decode(msg.body);
  if (!tx) return;
  const auto status = admit(tx.value(), Ingress::kGossip);
  if (status.is_ok()) {
    // Relay onward so the tangle converges across >2 gateways; duplicates
    // are rejected by the tangle, which stops the flood.
    RpcMessage relay = msg;
    const Bytes wire = relay.encode();
    for (const auto peer : peers_) network_.send(id_, peer, wire);
  } else if (status.code() == ErrorCode::kNotFound) {
    // Random per-message latency reorders gossip: hold the child until its
    // missing parent lands rather than dropping it.
    const auto& t = tx.value();
    const auto missing = tangle_.contains(t.parent1) ? t.parent2 : t.parent1;
    buffer_orphan(missing, t);
  }
}

void Gateway::reply(sim::NodeId to, MsgType type, std::uint64_t request_id,
                    const Bytes& body) {
  RpcMessage msg;
  msg.type = type;
  msg.request_id = request_id;
  msg.sender_key = identity_.public_identity().sign_key;
  msg.body = body;
  network_.send(id_, to, msg.encode());
}

}  // namespace biot::node
