#include "node/coordinator.h"

#include "common/log.h"

namespace biot::node {

namespace {
Logger logger("coordinator");
}

Coordinator::Coordinator(const crypto::Identity& identity, Gateway& gateway,
                         sim::Scheduler& sched, Duration interval)
    : identity_(identity),
      gateway_(gateway),
      sched_(sched),
      interval_(interval),
      miner_(0xc0c0ull << 32) {}

void Coordinator::start() {
  gateway_.set_coordinator(identity_.public_identity().sign_key);
  if (running_) return;
  running_ = true;
  sched_.after(interval_, [this] { tick(); });
}

void Coordinator::tick() {
  const auto status = issue_milestone();
  if (!status.is_ok())
    logger.warn() << "milestone rejected: " << status.to_string();
  sched_.after(interval_, [this] { tick(); });
}

Status Coordinator::issue_milestone() {
  tangle::Transaction tx;
  tx.type = tangle::TxType::kMilestone;
  tx.sender = identity_.public_identity().sign_key;
  tx.sequence = sequence_++;
  tx.timestamp = sched_.now();

  const auto [t1, t2] = gateway_.select_tips();
  tx.parent1 = t1;
  tx.parent2 = t2;
  tx.difficulty = static_cast<std::uint8_t>(
      gateway_.required_difficulty(tx.sender));
  tx.signature = identity_.sign(tx.signing_bytes());
  tx.nonce = miner_.mine(tx.parent1, tx.parent2, tx.difficulty)->nonce;

  const auto status = gateway_.submit(tx);
  if (status.is_ok()) ++issued_;
  return status;
}

}  // namespace biot::node
