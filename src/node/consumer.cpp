#include "node/consumer.h"

namespace biot::node {

Consumer::Consumer(sim::NodeId id, crypto::Identity identity,
                   sim::NodeId gateway, sim::Network& network)
    : id_(id),
      identity_(std::move(identity)),
      gateway_(gateway),
      network_(network) {}

void Consumer::attach() {
  network_.attach(id_, [this](sim::NodeId from, const Bytes& wire) {
    on_message(from, wire);
  });
}

void Consumer::query(const crypto::Ed25519PublicKey& sender, TimePoint since,
                     std::uint32_t max_results, Callback callback) {
  DataQuery body;
  body.sender = sender;
  body.since = since;
  body.max_results = max_results;

  RpcMessage msg;
  msg.type = MsgType::kDataQuery;
  msg.request_id = next_request_id_++;
  msg.sender_key = identity_.public_identity().sign_key;
  msg.body = body.encode();

  pending_.emplace(msg.request_id, std::move(callback));
  network_.send(id_, gateway_, msg.encode());
  ++queries_sent_;
}

void Consumer::on_message(sim::NodeId, const Bytes& wire) {
  const auto msg = RpcMessage::decode(wire);
  if (!msg || msg.value().type != MsgType::kDataResponse) return;

  const auto it = pending_.find(msg.value().request_id);
  if (it == pending_.end()) return;
  Callback callback = std::move(it->second);
  pending_.erase(it);

  const auto response = DataResponse::decode(msg.value().body);
  if (!response) return;

  std::vector<RecoveredReading> readings;
  readings.reserve(response.value().transactions.size());
  for (const auto& tx : response.value().transactions) {
    RecoveredReading r;
    r.tx = tx;
    const auto plain = protector_.recover(tx.payload, tx.payload_encrypted);
    if (plain) {
      r.plaintext = plain.value();
      r.decrypted = true;
    }
    readings.push_back(std::move(r));
  }
  callback(std::move(readings));
}

}  // namespace biot::node
