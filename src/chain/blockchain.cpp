#include "chain/blockchain.h"

#include <algorithm>
#include <unordered_set>

namespace biot::chain {

Block Blockchain::make_genesis(TimePoint timestamp) {
  Block g;
  g.height = 0;
  g.timestamp = timestamp;
  return g;
}

Blockchain::Blockchain(Block genesis) {
  genesis.height = 0;
  genesis_id_ = genesis.id();
  head_ = genesis_id_;
  blocks_.emplace(genesis_id_, Entry{std::move(genesis)});
}

Status Blockchain::add(const Block& block) {
  const BlockId id = block.id();
  if (blocks_.contains(id))
    return Status::error(ErrorCode::kRejected, "chain: duplicate block");

  const auto prev = blocks_.find(block.prev);
  if (prev == blocks_.end())
    return Status::error(ErrorCode::kNotFound, "chain: unknown previous block");
  if (block.height != prev->second.block.height + 1)
    return Status::error(ErrorCode::kInvalidArgument, "chain: wrong height");

  if (block.difficulty < min_difficulty_ || !block.pow_valid())
    return Status::error(ErrorCode::kPowInvalid, "chain: PoW invalid");

  for (const auto& tx : block.transactions) {
    if (!tx.signature_valid())
      return Status::error(ErrorCode::kVerifyFailed,
                           "chain: transaction signature invalid");
  }

  blocks_.emplace(id, Entry{block});
  if (block.height > blocks_.at(head_).block.height) head_ = id;
  return Status::ok();
}

const Block* Blockchain::find(const BlockId& id) const {
  const auto it = blocks_.find(id);
  return it == blocks_.end() ? nullptr : &it->second.block;
}

std::vector<BlockId> Blockchain::main_chain() const {
  std::vector<BlockId> out;
  BlockId cur = head_;
  for (;;) {
    out.push_back(cur);
    if (cur == genesis_id_) break;
    cur = blocks_.at(cur).block.prev;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::optional<std::uint64_t> Blockchain::containing_height(
    const tangle::TxId& tx) const {
  for (const auto& id : main_chain()) {
    const auto& block = blocks_.at(id).block;
    for (const auto& t : block.transactions) {
      if (t.id() == tx) return block.height;
    }
  }
  return std::nullopt;
}

bool Blockchain::is_confirmed(const tangle::TxId& tx, std::uint64_t k) const {
  const auto h = containing_height(tx);
  if (!h) return false;
  return height() >= *h + k;
}

std::size_t Blockchain::orphaned_blocks() const {
  std::unordered_set<BlockId, FixedBytesHash<32>> main(0);
  for (const auto& id : main_chain()) main.insert(id);
  return blocks_.size() - main.size();
}

}  // namespace biot::chain
