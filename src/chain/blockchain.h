// Longest-chain block store with fork resolution and k-deep confirmation.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/block.h"

namespace biot::chain {

class Blockchain {
 public:
  /// The genesis block is an axiom: not PoW-checked, height forced to 0.
  explicit Blockchain(Block genesis);

  static Block make_genesis(TimePoint timestamp = 0.0);

  /// Validates and stores a block:
  ///  - prev must exist, height must be prev.height + 1
  ///  - PoW must meet the declared difficulty and the chain's minimum
  ///  - transactions must carry valid signatures
  /// The longest chain (by height, first-seen tie-break) becomes the head.
  [[nodiscard]] Status add(const Block& block);

  const Block* find(const BlockId& id) const;
  bool contains(const BlockId& id) const { return blocks_.contains(id); }

  const BlockId& head() const { return head_; }
  std::uint64_t height() const { return blocks_.at(head_).block.height; }
  std::size_t size() const { return blocks_.size(); }

  /// Minimum difficulty accepted from miners.
  void set_min_difficulty(int d) { min_difficulty_ = d; }

  /// Blocks on the main chain, genesis first.
  std::vector<BlockId> main_chain() const;

  /// A transaction is confirmed when it sits in a main-chain block at least
  /// `k` blocks deep (paper's six-block-security analogue).
  bool is_confirmed(const tangle::TxId& tx, std::uint64_t k) const;

  /// Height of the main-chain block containing `tx`, if any.
  std::optional<std::uint64_t> containing_height(const tangle::TxId& tx) const;

  /// Number of blocks accepted but not on the main chain (orphaned forks —
  /// wasted work under the synchronous model).
  std::size_t orphaned_blocks() const;

 private:
  struct Entry {
    Block block;
  };

  std::unordered_map<BlockId, Entry, FixedBytesHash<32>> blocks_;
  BlockId genesis_id_;
  BlockId head_;
  int min_difficulty_ = 1;
};

}  // namespace biot::chain
