#include "chain/block.h"

#include "common/codec.h"

namespace biot::chain {

crypto::Sha256Digest Block::tx_root() const {
  crypto::Sha256 h;
  for (const auto& tx : transactions) h.update(tx.id().view());
  return h.finish();
}

Bytes Block::header_bytes() const {
  Writer w;
  w.raw(prev.view());
  w.u64(height);
  w.f64(timestamp);
  w.raw(miner.view());
  w.u8(difficulty);
  w.raw(tx_root().view());
  w.u64(nonce);
  return std::move(w).take();
}

BlockId Block::id() const { return crypto::Sha256::hash(header_bytes()); }

bool Block::pow_valid() const {
  return tangle::leading_zero_bits(id()) >= difficulty;
}

std::uint64_t mine_block(Block& block, std::uint64_t start_nonce) {
  std::uint64_t attempts = 0;
  block.nonce = start_nonce;
  for (;;) {
    ++attempts;
    if (block.pow_valid()) return attempts;
    ++block.nonce;
  }
}

}  // namespace biot::chain
