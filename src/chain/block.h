// Chain-structured (satoshi-style) blockchain baseline (paper Section II-A).
//
// The paper motivates its DAG design by contrasting it with the synchronous,
// single-main-chain model: blocks carry batches of transactions, PoW is per
// block, forks resolve to the longest chain, and a transaction is confirmed
// only k blocks deep ("six-block security"). The throughput benches pit this
// baseline against the tangle under identical workloads.
#pragma once

#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/sha256.h"
#include "tangle/transaction.h"

namespace biot::chain {

using BlockId = crypto::Sha256Digest;

struct Block {
  BlockId prev{};                 // all-zero for the genesis block
  std::uint64_t height = 0;
  TimePoint timestamp = 0.0;
  crypto::Ed25519PublicKey miner{};
  std::uint8_t difficulty = 0;    // leading zero bits required of the id
  std::uint64_t nonce = 0;
  std::vector<tangle::Transaction> transactions;

  /// Merkle-style commitment: hash over the ordered transaction ids.
  crypto::Sha256Digest tx_root() const;
  /// Header encoding (prev, height, timestamp, miner, difficulty, tx_root,
  /// nonce) — the PoW preimage.
  Bytes header_bytes() const;
  /// Block id = SHA-256 of the header; PoW requires `difficulty` zero bits.
  BlockId id() const;

  bool pow_valid() const;
};

/// Grinds the block nonce until its id meets the declared difficulty.
/// Returns attempts used (for cost accounting in simulations).
std::uint64_t mine_block(Block& block, std::uint64_t start_nonce = 0);

}  // namespace biot::chain
