// Link latency models for the simulated network. The smart-factory scenario
// uses LAN-ish latencies (sub-millisecond to a few milliseconds); the models
// are pluggable so benches can explore WAN regimes too.
#pragma once

#include <algorithm>

#include "common/clock.h"
#include "common/rng.h"

namespace biot::sim {

/// Samples per-message one-way delay.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual Duration sample(Rng& rng) const = 0;
};

/// Constant delay (useful for deterministic protocol tests).
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(Duration delay) : delay_(delay) {}
  Duration sample(Rng&) const override { return delay_; }

 private:
  Duration delay_;
};

/// Uniform in [lo, hi].
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(Duration lo, Duration hi) : lo_(lo), hi_(hi) {}
  Duration sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }

 private:
  Duration lo_, hi_;
};

/// base + Exp(mean_tail): heavy-ish tail typical of congested wireless links.
class ExponentialTailLatency final : public LatencyModel {
 public:
  ExponentialTailLatency(Duration base, Duration mean_tail)
      : base_(base), mean_tail_(mean_tail) {}
  Duration sample(Rng& rng) const override {
    return base_ + rng.exponential(mean_tail_);
  }

 private:
  Duration base_, mean_tail_;
};

}  // namespace biot::sim
