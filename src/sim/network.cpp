#include "sim/network.h"

#include <cmath>

namespace biot::sim {

void NetworkStats::attach_to(const obs::Scope& scope) const {
  scope.attach("sent", &sent);
  scope.attach("delivered", &delivered);
  scope.attach("dropped_loss", &dropped_loss);
  scope.attach("dropped_link", &dropped_link);
  scope.attach("dropped_detached", &dropped_detached);
  scope.attach("bytes_sent", &bytes_sent);
  scope.attach("duplicated", &duplicated);
  scope.attach("reordered", &reordered);
  scope.attach("corrupted", &corrupted);
  scope.attach("dropped_radio", &dropped_radio);
}

double Network::clamp_probability(double p) {
  if (!std::isfinite(p) || p < 0.0) return 0.0;
  return p > 1.0 ? 1.0 : p;
}

void Network::detach(NodeId id) {
  handlers_.erase(id);
  partitioned_.erase(id);
  radio_off_.erase(id);
  std::erase_if(down_links_, [id](std::uint64_t key) {
    return static_cast<NodeId>(key >> 32) == id ||
           static_cast<NodeId>(key & 0xffffffffu) == id;
  });
}

void Network::send(NodeId from, NodeId to, Bytes payload) {
  ++stats_.sent;
  stats_.bytes_sent += payload.size();

  if (radio_off_.contains(from) != radio_off_.contains(to)) {
    // A duty-cycled radio severs the node from everything except fellow
    // dark (co-located) devices — see set_radio().
    ++stats_.dropped_radio;
    return;
  }
  if (!link_up(from, to)) {
    ++stats_.dropped_link;
    return;
  }
  if (loss_rate_ > 0.0 && rng_.bernoulli(loss_rate_)) {
    ++stats_.dropped_loss;
    return;
  }
  if (duplication_rate_ > 0.0 && rng_.bernoulli(duplication_rate_)) {
    ++stats_.duplicated;
    deliver(from, to, payload);  // extra copy, independent latency
  }
  deliver(from, to, std::move(payload));
}

void Network::deliver(NodeId from, NodeId to, Bytes payload) {
  Duration delay = latency_->sample(rng_);
  if (bandwidth_ > 0.0)
    delay += static_cast<double>(payload.size()) / bandwidth_;
  if (reorder_rate_ > 0.0 && reorder_jitter_ > 0.0 &&
      rng_.bernoulli(reorder_rate_)) {
    ++stats_.reordered;
    delay += rng_.uniform(0.0, reorder_jitter_);
  }
  if (corruption_rate_ > 0.0 && !payload.empty() &&
      rng_.bernoulli(corruption_rate_)) {
    ++stats_.corrupted;
    const int flips = 1 + static_cast<int>(rng_.below(4));
    for (int f = 0; f < flips; ++f) {
      payload[rng_.index(payload.size())] ^=
          static_cast<std::uint8_t>(1 + rng_.below(255));
    }
  }
  sched_.after(delay, [this, from, to, payload = std::move(payload)] {
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++stats_.dropped_detached;
      return;
    }
    ++stats_.delivered;
    it->second(from, payload);
  });
}

void Network::broadcast(NodeId from, const Bytes& payload) {
  for (const auto& [id, handler] : handlers_) {
    if (id == from) continue;
    send(from, id, payload);
  }
}

void Network::set_link_down(NodeId a, NodeId b, bool down) {
  if (down)
    down_links_.insert(link_key(a, b));
  else
    down_links_.erase(link_key(a, b));
}

void Network::set_radio(NodeId id, bool on) {
  if (on)
    radio_off_.erase(id);
  else
    radio_off_.insert(id);
}

void Network::partition(const std::set<NodeId>& group, bool active) {
  if (active)
    partitioned_ = group;
  else
    partitioned_.clear();
}

bool Network::link_up(NodeId a, NodeId b) const {
  if (down_links_.contains(link_key(a, b))) return false;
  if (!partitioned_.empty() &&
      partitioned_.contains(a) != partitioned_.contains(b))
    return false;
  return true;
}

}  // namespace biot::sim
