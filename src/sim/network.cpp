#include "sim/network.h"

namespace biot::sim {

void Network::send(NodeId from, NodeId to, Bytes payload) {
  ++stats_.sent;
  stats_.bytes_sent += payload.size();

  if (!link_up(from, to)) {
    ++stats_.dropped_link;
    return;
  }
  if (loss_rate_ > 0.0 && rng_.bernoulli(loss_rate_)) {
    ++stats_.dropped_loss;
    return;
  }

  Duration delay = latency_->sample(rng_);
  if (bandwidth_ > 0.0)
    delay += static_cast<double>(payload.size()) / bandwidth_;
  sched_.after(delay, [this, from, to, payload = std::move(payload)] {
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++stats_.dropped_detached;
      return;
    }
    ++stats_.delivered;
    it->second(from, payload);
  });
}

void Network::broadcast(NodeId from, const Bytes& payload) {
  for (const auto& [id, handler] : handlers_) {
    if (id == from) continue;
    send(from, id, payload);
  }
}

void Network::set_link_down(NodeId a, NodeId b, bool down) {
  if (down)
    down_links_.insert(link_key(a, b));
  else
    down_links_.erase(link_key(a, b));
}

void Network::partition(const std::set<NodeId>& group, bool active) {
  if (active)
    partitioned_ = group;
  else
    partitioned_.clear();
}

bool Network::link_up(NodeId a, NodeId b) const {
  if (down_links_.contains(link_key(a, b))) return false;
  if (!partitioned_.empty() &&
      partitioned_.contains(a) != partitioned_.contains(b))
    return false;
  return true;
}

}  // namespace biot::sim
