// Chaos engine: deterministic, scripted fault injection for the simulated
// B-IoT deployment.
//
// A FaultPlan is a list of timed FaultEvents — node crash/restart,
// partition/heal, loss-rate and bandwidth windows, duplication/reordering/
// corruption rates, individual link cuts — either parsed from a compact
// textual spec (`biot_simulate --chaos`, grammar below) or generated from a
// seeded Rng (FaultPlan::random_soak, used by bench/chaos_soak). The
// ChaosEngine schedules every event on the discrete-event scheduler, so a
// chaos run is exactly as reproducible as any other simulation: same seed,
// same fault timeline, same outcome.
//
// Layering: the engine acts on sim::Network directly for network faults,
// but node lifecycle (what it means for a gateway to crash and later
// cold-restart from persisted state) belongs to the node/factory layers —
// the driver registers crash/restart handlers for that (SmartFactory::
// crash_gateway / restart_gateway are the canonical pair).
//
// Plan grammar (events joined by ';', fields by ':'):
//
//   TIME:crash:ID            crash node ID (driver-defined id space)
//   TIME:restart:ID          restart a previously crashed node
//   TIME:partition:ID[,ID]*  partition {IDs} from everyone else
//   TIME:heal                dissolve the partition
//   TIME:loss:P              set the loss probability to P
//   TIME:dup:P               set the duplication probability to P
//   TIME:reorder:P[:JITTER]  delay fraction P by uniform [0,JITTER) extra
//   TIME:corrupt:P           set the payload-corruption probability to P
//   TIME:bandwidth:BPS       set link bandwidth (0 = unconstrained)
//   TIME:linkdown:ID,ID      sever one bidirectional link
//   TIME:linkup:ID,ID        restore it
//   TIME:radiooff:ID[,ID]*   duty-cycle radios off ({IDs} go dark together;
//                            dark nodes can still reach each other — the
//                            co-located offline-exchange model)
//   TIME:radioon:ID[,ID]*    turn those radios back on (reconnect storm
//                            when the group is large)
//
// Example: "0:loss:0.05;0:dup:0.05;2:partition:2;4:heal;5:crash:1;9:restart:1"
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "sim/network.h"

namespace biot::sim {

enum class FaultKind : std::uint8_t {
  kCrash = 0,
  kRestart,
  kPartition,
  kHeal,
  kLoss,
  kDuplication,
  kReordering,
  kCorruption,
  kBandwidth,
  kLinkDown,
  kLinkUp,
  kRadioOff,
  kRadioOn,
};

std::string_view fault_kind_name(FaultKind kind) noexcept;

struct FaultEvent {
  TimePoint at = 0.0;
  FaultKind kind = FaultKind::kHeal;
  /// crash/restart: [node]; partition: the isolated group; link*: [a, b].
  std::vector<NodeId> nodes;
  double value = 0.0;   // rate / bytes-per-second
  double value2 = 0.0;  // reorder jitter seconds

  /// Renders the event in the spec grammar ("5:crash:1").
  std::string to_string() const;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Parses the spec grammar above. Rejects unknown actions, missing or
  /// malformed fields, probabilities outside [0,1] and negative times —
  /// a typo'd plan fails loudly instead of silently degrading (the network
  /// setters clamp as a second line of defence).
  static Result<FaultPlan> parse(std::string_view spec);

  /// Re-parsable spec string; printed alongside the seed so any chaos run
  /// can be reproduced verbatim.
  std::string to_string() const;

  /// Rewrites every node reference through `fn`. Specs use a driver-defined
  /// id space (biot_simulate: gateway indexes); the driver maps them to
  /// sim::NodeIds before scheduling.
  void map_ids(const std::function<NodeId(NodeId)>& fn);

  /// Time of the last scheduled event (0 for an empty plan).
  TimePoint end() const;

  struct SoakOptions {
    double horizon = 60.0;        // crash/restart cycles spread over this
    int crash_cycles = 2;         // crash→restart pairs across `nodes`
    double min_downtime = 1.0;    // seconds a crashed node stays down
    double max_downtime = 4.0;
    double loss = 0.05;
    double duplication = 0.02;
    double reorder = 0.2;
    double reorder_jitter = 0.05;
    double corruption = 0.01;
    double partition_at = 0.0;    // <= 0 disables the partition window
    double partition_for = 5.0;
  };

  /// Seeded randomized soak plan over `nodes` (the crash/partition
  /// candidates): constant adversarial rates from t=0, crash→restart
  /// cycles at rng-sampled times, and an optional partition window
  /// isolating a random single node. Same rng state, same plan.
  static FaultPlan random_soak(const std::vector<NodeId>& nodes, Rng& rng,
                               const SoakOptions& options);
};

struct ChaosStats {
  obs::Counter crashes;
  obs::Counter restarts;
  obs::Counter partitions;
  obs::Counter heals;
  obs::Counter rate_changes;  // loss/dup/reorder/corrupt/bandwidth
  obs::Counter link_changes;
  obs::Counter radio_changes;  // duty-cycle on/off transitions

  /// Registers every counter under `scope` (biot_simulate binds "chaos").
  void attach_to(const obs::Scope& scope) const;
};

/// Executes FaultPlans against a Network and its Scheduler.
class ChaosEngine {
 public:
  using LifecycleHandler = std::function<void(NodeId)>;

  /// `crash` / `restart` implement node lifecycle for the driver's id space
  /// (e.g. bound to SmartFactory::crash_gateway / restart_gateway). Either
  /// may be empty when the plan contains no lifecycle events.
  ChaosEngine(Network& network, LifecycleHandler crash = {},
              LifecycleHandler restart = {})
      : network_(network),
        crash_(std::move(crash)),
        restart_(std::move(restart)) {}

  /// Schedules every event of `plan` on the scheduler (events in the past
  /// relative to the scheduler clock fire immediately). May be called
  /// repeatedly to layer plans.
  void schedule(const FaultPlan& plan);

  /// Schedules the recovery finale at `at`: dissolves the partition, zeroes
  /// loss/duplication/reordering/corruption, lifts the bandwidth cap and
  /// restarts every node still crashed. After the finale the network is
  /// clean, which is the ConvergenceChecker's precondition — surviving
  /// replicas get an honest chance to anti-entropy their way back together.
  void schedule_finale(TimePoint at);

  const ChaosStats& stats() const { return stats_; }
  /// Nodes crashed by this engine and not yet restarted.
  const std::set<NodeId>& crashed() const { return crashed_; }
  /// Nodes whose radios this engine duty-cycled off and not yet back on.
  const std::set<NodeId>& radios_off() const { return radios_off_; }

 private:
  void apply(const FaultEvent& event);

  Network& network_;
  LifecycleHandler crash_;
  LifecycleHandler restart_;
  std::set<NodeId> crashed_;
  std::set<NodeId> radios_off_;
  ChaosStats stats_;
};

}  // namespace biot::sim
