// Compute-cost models for the device classes in the paper's testbed.
//
// The paper measures PoW and AES timings on a Raspberry Pi 3B. We reproduce
// those *seconds-scale* numbers inside the simulator by modelling each
// operation's cost analytically and calibrating constants against the paper's
// own measured points (see DESIGN.md §1 and EXPERIMENTS.md):
//
//  - PoW at difficulty D (leading zero bits): the nonce search is a sequence
//    of Bernoulli(2^-D) trials, so attempts ~ Geometric(2^-D) with mean 2^D,
//    and time = overhead + attempts / hash_rate.
//  - AES over n bytes: time = overhead + n / throughput (Fig 10 is linear).
//
// Note the paper's Fig 7 and Fig 9 imply *different* effective hash rates for
// the same Pi (245.3 s at D=14 vs 0.7 s average at D=11); each figure's bench
// therefore uses a profile calibrated against that figure's own baseline
// point, and EXPERIMENTS.md records the discrepancy.
#pragma once

#include <cmath>

#include "common/clock.h"
#include "common/rng.h"

namespace biot::sim {

struct DeviceProfile {
  double hash_rate_hz = 1.0e6;     // PoW hash attempts per second
  double pow_overhead_s = 0.0;     // fixed per-PoW setup cost
  double aes_rate_bps = 1.0e8;     // AES bytes per second
  double aes_overhead_s = 0.0;     // fixed per-message cost
  /// Active power draw while hashing (W). The Pi 3B pulls ~3.7 W under
  /// sustained CPU load; energy per PoW = pow_seconds * pow_power_w.
  double pow_power_w = 3.7;

  /// Expected PoW duration at difficulty D (leading-zero-bit target).
  Duration expected_pow_time(int difficulty) const {
    return pow_overhead_s + std::ldexp(1.0, difficulty) / hash_rate_hz;
  }

  /// Samples a PoW duration: geometric number of attempts at p = 2^-D.
  Duration sample_pow_time(int difficulty, Rng& rng) const {
    const double p = std::ldexp(1.0, -difficulty);
    const double attempts = static_cast<double>(rng.geometric(p));
    return pow_overhead_s + attempts / hash_rate_hz;
  }

  /// AES encryption duration for an n-byte message (linear, Fig 10).
  Duration aes_time(std::size_t n_bytes) const {
    return aes_overhead_s + static_cast<double>(n_bytes) / aes_rate_bps;
  }

  /// Raspberry Pi 3B calibrated against Fig 7 (245.3 s at D=14):
  /// hash_rate = 2^14 / (245.3 - overhead), overhead = the D=1 floor 0.162 s.
  static DeviceProfile pi3b_fig7() {
    DeviceProfile p;
    p.pow_overhead_s = 0.162;
    p.hash_rate_hz = std::ldexp(1.0, 14) / (245.3 - p.pow_overhead_s);  // ~66.8 H/s
    p.aes_rate_bps = 677000.0;   // Fig 10 linear fit (~677 KB/s)
    p.aes_overhead_s = 0.0001;
    return p;
  }

  /// Raspberry Pi 3B calibrated against Fig 9 (0.7 s average at D=11).
  static DeviceProfile pi3b_fig9() {
    DeviceProfile p;
    p.pow_overhead_s = 0.0;
    p.hash_rate_hz = std::ldexp(1.0, 11) / 0.7;  // ~2926 H/s
    p.aes_rate_bps = 677000.0;
    p.aes_overhead_s = 0.0001;
    return p;
  }

  /// Gateway/server-class full node (PC in the paper's Fig 5 testbed).
  static DeviceProfile server() {
    DeviceProfile p;
    p.hash_rate_hz = 5.0e6;
    p.aes_rate_bps = 2.0e8;
    return p;
  }
};

}  // namespace biot::sim
