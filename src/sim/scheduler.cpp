#include "sim/scheduler.h"

#include <stdexcept>
#include <utility>

namespace biot::sim {

void Scheduler::at(TimePoint t, Action action) {
  if (t < now()) throw std::logic_error("Scheduler::at: time in the past");
  queue_.push(Event{t, next_seq_++, std::move(action)});
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.pop_top();
  clock_.advance_to(ev.time);
  ++executed_;
  ev.action();
  return true;
}

std::size_t Scheduler::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Scheduler::run_until(TimePoint t) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    step();
    ++n;
  }
  clock_.advance_to(t);
  return n;
}

}  // namespace biot::sim
