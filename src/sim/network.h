// Simulated message network connecting B-IoT nodes. Substitutes for the
// paper's RESTful HTTP RPC between light nodes (PyOTA) and full nodes (IRI):
// unicast and broadcast of serialized messages with sampled latency, optional
// loss, and link/partition control for failure-injection tests.
//
// Beyond loss and partitions, the network models three adversarial link
// faults (driven by sim/chaos.h fault plans): probabilistic message
// DUPLICATION (an extra copy delivered with its own latency), REORDERING
// (extra sampled delay jitter on a fraction of messages, enough to overtake
// later sends) and payload CORRUPTION (random bit flips before delivery).
// Each has its own NetworkStats counter, and every probability setter is
// clamped to [0,1] through clamp_probability.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "sim/latency.h"
#include "sim/scheduler.h"

namespace biot::sim {

using NodeId = std::uint32_t;

struct NetworkStats {
  obs::Counter sent;
  obs::Counter delivered;
  obs::Counter dropped_loss;      // random loss
  obs::Counter dropped_link;      // severed link / partition
  obs::Counter dropped_detached;  // receiver not attached
  obs::Counter bytes_sent;
  obs::Counter duplicated;        // adversarial extra copies queued
  obs::Counter reordered;         // messages given extra delay jitter
  obs::Counter corrupted;         // payloads bit-flipped in transit
  obs::Counter dropped_radio;     // endpoint radio duty-cycled off

  /// Registers every counter under `scope` (the SmartFactory binds "net").
  void attach_to(const obs::Scope& scope) const;
};

class Network {
 public:
  /// Handler invoked at delivery time: (sender, payload).
  using Handler = std::function<void(NodeId, const Bytes&)>;

  Network(Scheduler& sched, std::unique_ptr<LatencyModel> latency, Rng rng)
      : sched_(sched), latency_(std::move(latency)), rng_(rng) {}

  /// Registers a node; replaces any previous handler for the id.
  void attach(NodeId id, Handler handler) { handlers_[id] = std::move(handler); }
  /// Removes a node (models crash / power-off; in-flight messages are lost).
  /// Per-node fault state (severed links, partition membership) is cleared
  /// too: a node that later re-attaches under the same id is a fresh boot
  /// and must not inherit ghost link failures from its previous life.
  void detach(NodeId id);
  bool is_attached(NodeId id) const { return handlers_.contains(id); }

  /// Queues a message for delivery after a sampled latency.
  void send(NodeId from, NodeId to, Bytes payload);

  /// Sends to every attached node except the sender.
  void broadcast(NodeId from, const Bytes& payload);

  /// Clamps a fault probability to [0,1]; non-finite values clamp to 0.
  /// Every probabilistic fault setter funnels through this, so a bad config
  /// (loss of 1.5, corruption of -0.1, NaN from a division) degrades to the
  /// nearest meaningful rate instead of skewing Bernoulli draws.
  static double clamp_probability(double p);

  /// Probability in [0,1] that any given message is silently dropped.
  void set_loss_rate(double p) { loss_rate_ = clamp_probability(p); }
  /// Probability in [0,1] that a message is delivered TWICE. The duplicate
  /// samples its own latency, so it usually also arrives out of order —
  /// exactly what an at-least-once wireless retransmit layer produces.
  void set_duplication_rate(double p) {
    duplication_rate_ = clamp_probability(p);
  }
  /// Fraction of messages in [0,1] delayed by an extra uniform jitter in
  /// [0, jitter) seconds on top of the sampled latency. With jitter larger
  /// than the typical latency, affected messages overtake later sends —
  /// adversarial reordering without changing the mean load.
  void set_reordering(double p, Duration jitter) {
    reorder_rate_ = clamp_probability(p);
    reorder_jitter_ = jitter > 0.0 ? jitter : 0.0;
  }
  /// Probability in [0,1] that a message's payload suffers 1-4 random bit
  /// flips in transit. Receivers must treat the result as garbage: decoders
  /// and signature/PoW checks are the only line of defence.
  void set_corruption_rate(double p) {
    corruption_rate_ = clamp_probability(p);
  }

  /// Link bandwidth in bytes/second; adds a size/bandwidth transmission
  /// delay on top of the sampled latency (0 = infinite bandwidth, the
  /// default). Models the constrained wireless links of the smart factory.
  void set_bandwidth(double bytes_per_second) { bandwidth_ = bytes_per_second; }

  /// Severs / restores the bidirectional link between two nodes.
  void set_link_down(NodeId a, NodeId b, bool down);
  /// Severs every link crossing the boundary of `group` (network partition).
  void partition(const std::set<NodeId>& group, bool active);
  /// Duty-cycles a node's wide-area radio. While off, the node cannot reach
  /// (or be reached by) any radio-ON node; two radio-OFF nodes can still
  /// talk — they are modelled as co-located dark devices exchanging over a
  /// short-range link, which is what the offline countersigning protocol
  /// rides on. Same boundary rule as partition(), applied per node.
  void set_radio(NodeId id, bool on);
  bool radio_on(NodeId id) const { return !radio_off_.contains(id); }

  const NetworkStats& stats() const { return stats_; }
  Scheduler& scheduler() { return sched_; }

 private:
  bool link_up(NodeId a, NodeId b) const;
  /// Queues one delivery of `payload` (latency + bandwidth + reorder jitter
  /// + corruption applied); send() calls this once, or twice on duplication.
  void deliver(NodeId from, NodeId to, Bytes payload);
  static std::uint64_t link_key(NodeId a, NodeId b) {
    const auto lo = std::min(a, b), hi = std::max(a, b);
    return (std::uint64_t{hi} << 32) | lo;
  }

  Scheduler& sched_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  double loss_rate_ = 0.0;
  double duplication_rate_ = 0.0;
  double reorder_rate_ = 0.0;
  Duration reorder_jitter_ = 0.0;
  double corruption_rate_ = 0.0;
  double bandwidth_ = 0.0;  // bytes/s; 0 = unconstrained
  std::unordered_map<NodeId, Handler> handlers_;
  std::set<std::uint64_t> down_links_;
  std::set<NodeId> partitioned_;
  std::set<NodeId> radio_off_;
  NetworkStats stats_;
};

}  // namespace biot::sim
