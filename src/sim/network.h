// Simulated message network connecting B-IoT nodes. Substitutes for the
// paper's RESTful HTTP RPC between light nodes (PyOTA) and full nodes (IRI):
// unicast and broadcast of serialized messages with sampled latency, optional
// loss, and link/partition control for failure-injection tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "sim/latency.h"
#include "sim/scheduler.h"

namespace biot::sim {

using NodeId = std::uint32_t;

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_loss = 0;      // random loss
  std::uint64_t dropped_link = 0;      // severed link / partition
  std::uint64_t dropped_detached = 0;  // receiver not attached
  std::uint64_t bytes_sent = 0;
};

class Network {
 public:
  /// Handler invoked at delivery time: (sender, payload).
  using Handler = std::function<void(NodeId, const Bytes&)>;

  Network(Scheduler& sched, std::unique_ptr<LatencyModel> latency, Rng rng)
      : sched_(sched), latency_(std::move(latency)), rng_(rng) {}

  /// Registers a node; replaces any previous handler for the id.
  void attach(NodeId id, Handler handler) { handlers_[id] = std::move(handler); }
  /// Removes a node (models crash / power-off; in-flight messages are lost).
  void detach(NodeId id) { handlers_.erase(id); }
  bool is_attached(NodeId id) const { return handlers_.contains(id); }

  /// Queues a message for delivery after a sampled latency.
  void send(NodeId from, NodeId to, Bytes payload);

  /// Sends to every attached node except the sender.
  void broadcast(NodeId from, const Bytes& payload);

  /// Probability in [0,1] that any given message is silently dropped.
  void set_loss_rate(double p) { loss_rate_ = p; }

  /// Link bandwidth in bytes/second; adds a size/bandwidth transmission
  /// delay on top of the sampled latency (0 = infinite bandwidth, the
  /// default). Models the constrained wireless links of the smart factory.
  void set_bandwidth(double bytes_per_second) { bandwidth_ = bytes_per_second; }

  /// Severs / restores the bidirectional link between two nodes.
  void set_link_down(NodeId a, NodeId b, bool down);
  /// Severs every link crossing the boundary of `group` (network partition).
  void partition(const std::set<NodeId>& group, bool active);

  const NetworkStats& stats() const { return stats_; }
  Scheduler& scheduler() { return sched_; }

 private:
  bool link_up(NodeId a, NodeId b) const;
  static std::uint64_t link_key(NodeId a, NodeId b) {
    const auto lo = std::min(a, b), hi = std::max(a, b);
    return (std::uint64_t{hi} << 32) | lo;
  }

  Scheduler& sched_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  double loss_rate_ = 0.0;
  double bandwidth_ = 0.0;  // bytes/s; 0 = unconstrained
  std::unordered_map<NodeId, Handler> handlers_;
  std::set<std::uint64_t> down_links_;
  std::set<NodeId> partitioned_;
  NetworkStats stats_;
};

}  // namespace biot::sim
