// Discrete-event scheduler: the substrate that stands in for the paper's
// physical testbed (Raspberry Pi + PC + network). Events run in strict
// (time, insertion-sequence) order, so every simulation is deterministic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace biot::sim {

class Scheduler {
 public:
  using Action = std::function<void()>;

  /// Current simulated time (seconds).
  TimePoint now() const { return clock_.now(); }
  const Clock& clock() const { return clock_; }

  /// Schedules `action` at absolute time `t` (>= now).
  void at(TimePoint t, Action action);
  /// Schedules `action` after `delay` seconds.
  void after(Duration delay, Action action) { at(now() + delay, std::move(action)); }

  /// Runs the next event; returns false when the queue is empty.
  bool step();
  /// Runs until the queue drains; returns the number of events executed.
  std::size_t run();
  /// Runs events with time <= t, then advances the clock to exactly t.
  std::size_t run_until(TimePoint t);

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // std::priority_queue::top() is const even though the queue owns the
  // element outright, so the standard interface forces a copy of the
  // std::function on every pop. This wrapper reaches the protected
  // container/comparator and re-heaps with std::pop_heap so the top
  // element can be moved out — no const_cast, no copy.
  struct EventQueue : std::priority_queue<Event, std::vector<Event>, Later> {
    Event pop_top() {
      std::pop_heap(c.begin(), c.end(), comp);
      Event top = std::move(c.back());
      c.pop_back();
      return top;
    }
  };

  SimClock clock_;
  EventQueue queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace biot::sim
