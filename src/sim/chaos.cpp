#include "sim/chaos.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace biot::sim {

void ChaosStats::attach_to(const obs::Scope& scope) const {
  scope.attach("crashes", &crashes);
  scope.attach("restarts", &restarts);
  scope.attach("partitions", &partitions);
  scope.attach("heals", &heals);
  scope.attach("rate_changes", &rate_changes);
  scope.attach("link_changes", &link_changes);
  scope.attach("radio_changes", &radio_changes);
}

namespace {

Status parse_error(std::size_t index, const std::string& what) {
  return Status::error(ErrorCode::kInvalidArgument,
                       "chaos plan event " + std::to_string(index) + ": " +
                           what);
}

bool parse_number(const std::string& token, double& out) {
  if (token.empty()) return false;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

bool parse_node(const std::string& token, NodeId& out) {
  double value = 0.0;
  if (!parse_number(token, value)) return false;
  if (value < 0.0 || value != static_cast<double>(static_cast<NodeId>(value)))
    return false;
  out = static_cast<NodeId>(value);
  return true;
}

bool parse_nodes(const std::string& token, std::vector<NodeId>& out) {
  std::size_t start = 0;
  while (start <= token.size()) {
    const auto comma = token.find(',', start);
    const auto part = token.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    NodeId id = 0;
    if (!parse_node(part, id)) return false;
    out.push_back(id);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out.empty();
}

std::string format_number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", value);
  return buf;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto pos = text.find(sep, start);
    const auto len = pos == std::string_view::npos ? text.size() - start
                                                   : pos - start;
    out.emplace_back(text.substr(start, len));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kLoss: return "loss";
    case FaultKind::kDuplication: return "dup";
    case FaultKind::kReordering: return "reorder";
    case FaultKind::kCorruption: return "corrupt";
    case FaultKind::kBandwidth: return "bandwidth";
    case FaultKind::kLinkDown: return "linkdown";
    case FaultKind::kLinkUp: return "linkup";
    case FaultKind::kRadioOff: return "radiooff";
    case FaultKind::kRadioOn: return "radioon";
  }
  return "unknown";
}

std::string FaultEvent::to_string() const {
  std::string out = format_number(at);
  out += ':';
  out += fault_kind_name(kind);
  switch (kind) {
    case FaultKind::kCrash:
    case FaultKind::kRestart:
    case FaultKind::kPartition:
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
    case FaultKind::kRadioOff:
    case FaultKind::kRadioOn: {
      char sep = ':';
      for (const auto id : nodes) {
        out += sep;
        out += std::to_string(id);
        sep = ',';
      }
      break;
    }
    case FaultKind::kHeal:
      break;
    case FaultKind::kLoss:
    case FaultKind::kDuplication:
    case FaultKind::kCorruption:
    case FaultKind::kBandwidth:
      out += ':';
      out += format_number(value);
      break;
    case FaultKind::kReordering:
      out += ':';
      out += format_number(value);
      out += ':';
      out += format_number(value2);
      break;
  }
  return out;
}

Result<FaultPlan> FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t index = 0;
  for (const auto& entry : split(spec, ';')) {
    ++index;
    if (entry.empty()) continue;  // tolerate trailing ';'
    const auto fields = split(entry, ':');
    if (fields.size() < 2)
      return parse_error(index, "expected TIME:action[...], got '" + entry + "'");

    FaultEvent event;
    if (!parse_number(fields[0], event.at) || event.at < 0.0)
      return parse_error(index, "bad time '" + fields[0] + "'");

    const auto& action = fields[1];
    const auto args = fields.size() - 2;
    auto need = [&](std::size_t n) { return args == n; };
    auto rate_arg = [&](FaultKind kind) -> Status {
      if (!need(1) || !parse_number(fields[2], event.value))
        return parse_error(index, std::string(fault_kind_name(kind)) +
                                      " needs one numeric rate");
      if (kind != FaultKind::kBandwidth &&
          (event.value < 0.0 || event.value > 1.0))
        return parse_error(index, "probability '" + fields[2] +
                                      "' outside [0,1]");
      if (kind == FaultKind::kBandwidth && event.value < 0.0)
        return parse_error(index, "negative bandwidth");
      event.kind = kind;
      return Status::ok();
    };

    if (action == "crash" || action == "restart") {
      NodeId id = 0;
      if (!need(1) || !parse_node(fields[2], id))
        return parse_error(index, action + " needs one node id");
      event.kind = action == "crash" ? FaultKind::kCrash : FaultKind::kRestart;
      event.nodes.push_back(id);
    } else if (action == "partition") {
      if (!need(1) || !parse_nodes(fields[2], event.nodes))
        return parse_error(index, "partition needs a node-id group");
      event.kind = FaultKind::kPartition;
    } else if (action == "heal") {
      if (!need(0)) return parse_error(index, "heal takes no arguments");
      event.kind = FaultKind::kHeal;
    } else if (action == "loss") {
      if (auto s = rate_arg(FaultKind::kLoss); !s) return s;
    } else if (action == "dup") {
      if (auto s = rate_arg(FaultKind::kDuplication); !s) return s;
    } else if (action == "corrupt") {
      if (auto s = rate_arg(FaultKind::kCorruption); !s) return s;
    } else if (action == "bandwidth") {
      if (auto s = rate_arg(FaultKind::kBandwidth); !s) return s;
    } else if (action == "reorder") {
      if ((args != 1 && args != 2) || !parse_number(fields[2], event.value))
        return parse_error(index, "reorder needs RATE[:JITTER]");
      if (event.value < 0.0 || event.value > 1.0)
        return parse_error(index, "probability '" + fields[2] +
                                      "' outside [0,1]");
      event.value2 = 0.05;  // default jitter: enough to overtake ~ms latency
      if (args == 2 &&
          (!parse_number(fields[3], event.value2) || event.value2 < 0.0))
        return parse_error(index, "bad reorder jitter '" + fields[3] + "'");
      event.kind = FaultKind::kReordering;
    } else if (action == "radiooff" || action == "radioon") {
      if (!need(1) || !parse_nodes(fields[2], event.nodes))
        return parse_error(index, action + " needs a node-id group");
      event.kind =
          action == "radiooff" ? FaultKind::kRadioOff : FaultKind::kRadioOn;
    } else if (action == "linkdown" || action == "linkup") {
      if (!need(1) || !parse_nodes(fields[2], event.nodes) ||
          event.nodes.size() != 2)
        return parse_error(index, action + " needs exactly two node ids");
      event.kind =
          action == "linkdown" ? FaultKind::kLinkDown : FaultKind::kLinkUp;
    } else {
      return parse_error(index, "unknown action '" + action + "'");
    }
    plan.events.push_back(std::move(event));
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& event : events) {
    if (!out.empty()) out += ';';
    out += event.to_string();
  }
  return out;
}

void FaultPlan::map_ids(const std::function<NodeId(NodeId)>& fn) {
  for (auto& event : events) {
    for (auto& id : event.nodes) id = fn(id);
  }
}

TimePoint FaultPlan::end() const {
  TimePoint last = 0.0;
  for (const auto& event : events) last = std::max(last, event.at);
  return last;
}

FaultPlan FaultPlan::random_soak(const std::vector<NodeId>& nodes, Rng& rng,
                                 const SoakOptions& options) {
  FaultPlan plan;
  auto rate = [&](FaultKind kind, double value) {
    plan.events.push_back(FaultEvent{0.0, kind, {}, value, 0.0});
  };
  rate(FaultKind::kLoss, options.loss);
  rate(FaultKind::kDuplication, options.duplication);
  rate(FaultKind::kCorruption, options.corruption);
  plan.events.push_back(FaultEvent{
      0.0, FaultKind::kReordering, {}, options.reorder,
      options.reorder_jitter});

  if (options.partition_at > 0.0 && !nodes.empty()) {
    const NodeId victim = nodes[rng.index(nodes.size())];
    plan.events.push_back(FaultEvent{
        options.partition_at, FaultKind::kPartition, {victim}, 0.0, 0.0});
    plan.events.push_back(FaultEvent{options.partition_at +
                                         options.partition_for,
                                     FaultKind::kHeal,
                                     {},
                                     0.0,
                                     0.0});
  }

  // Crash/restart cycles in disjoint time slots so a node is never crashed
  // twice before its restart fires.
  if (!nodes.empty() && options.crash_cycles > 0) {
    const double usable = options.horizon * 0.8;
    const double slot = usable / options.crash_cycles;
    for (int c = 0; c < options.crash_cycles; ++c) {
      const NodeId victim = nodes[rng.index(nodes.size())];
      const double slot_start = options.horizon * 0.1 + c * slot;
      const double headroom = std::max(slot - options.max_downtime, 0.0);
      const double crash_at = slot_start + rng.uniform(0.0, headroom);
      const double downtime =
          rng.uniform(options.min_downtime, options.max_downtime);
      plan.events.push_back(
          FaultEvent{crash_at, FaultKind::kCrash, {victim}, 0.0, 0.0});
      plan.events.push_back(FaultEvent{
          crash_at + downtime, FaultKind::kRestart, {victim}, 0.0, 0.0});
    }
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

void ChaosEngine::schedule(const FaultPlan& plan) {
  auto& sched = network_.scheduler();
  for (const auto& event : plan.events) {
    sched.at(std::max(event.at, sched.now()),
             [this, event] { apply(event); });
  }
}

void ChaosEngine::schedule_finale(TimePoint at) {
  auto& sched = network_.scheduler();
  sched.at(std::max(at, sched.now()), [this] {
    network_.partition({}, false);
    network_.set_loss_rate(0.0);
    network_.set_duplication_rate(0.0);
    network_.set_reordering(0.0, 0.0);
    network_.set_corruption_rate(0.0);
    network_.set_bandwidth(0.0);
    ++stats_.heals;
    ++stats_.rate_changes;
    // Restart leftovers (a plan may deliberately end with a node down).
    const auto leftover = crashed_;
    for (const auto id : leftover) {
      crashed_.erase(id);
      if (restart_) restart_(id);
      ++stats_.restarts;
    }
    // Wake every radio still duty-cycled off: the finale is the mass
    // reconnect moment the outbox drain path has to survive.
    const auto dark = radios_off_;
    for (const auto id : dark) {
      radios_off_.erase(id);
      network_.set_radio(id, true);
      ++stats_.radio_changes;
    }
  });
}

void ChaosEngine::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kCrash: {
      const NodeId id = event.nodes.front();
      if (!crashed_.insert(id).second) return;  // already down
      if (crash_)
        crash_(id);
      else
        network_.detach(id);
      ++stats_.crashes;
      return;
    }
    case FaultKind::kRestart: {
      const NodeId id = event.nodes.front();
      if (crashed_.erase(id) == 0) return;  // never crashed / already back
      if (restart_) restart_(id);
      ++stats_.restarts;
      return;
    }
    case FaultKind::kPartition:
      network_.partition(
          std::set<NodeId>(event.nodes.begin(), event.nodes.end()), true);
      ++stats_.partitions;
      return;
    case FaultKind::kHeal:
      network_.partition({}, false);
      ++stats_.heals;
      return;
    case FaultKind::kLoss:
      network_.set_loss_rate(event.value);
      ++stats_.rate_changes;
      return;
    case FaultKind::kDuplication:
      network_.set_duplication_rate(event.value);
      ++stats_.rate_changes;
      return;
    case FaultKind::kReordering:
      network_.set_reordering(event.value, event.value2);
      ++stats_.rate_changes;
      return;
    case FaultKind::kCorruption:
      network_.set_corruption_rate(event.value);
      ++stats_.rate_changes;
      return;
    case FaultKind::kBandwidth:
      network_.set_bandwidth(event.value);
      ++stats_.rate_changes;
      return;
    case FaultKind::kLinkDown:
      network_.set_link_down(event.nodes[0], event.nodes[1], true);
      ++stats_.link_changes;
      return;
    case FaultKind::kLinkUp:
      network_.set_link_down(event.nodes[0], event.nodes[1], false);
      ++stats_.link_changes;
      return;
    case FaultKind::kRadioOff:
      for (const auto id : event.nodes) {
        network_.set_radio(id, false);
        radios_off_.insert(id);
        ++stats_.radio_changes;
      }
      return;
    case FaultKind::kRadioOn:
      for (const auto id : event.nodes) {
        network_.set_radio(id, true);
        radios_off_.erase(id);
        ++stats_.radio_changes;
      }
      return;
  }
}

}  // namespace biot::sim
