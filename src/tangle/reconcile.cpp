#include "tangle/reconcile.h"

#include <deque>

#include "common/codec.h"

namespace biot::tangle {

namespace {

// Ids are SHA-256 outputs: any fixed byte window is an independent uniform
// value, so the three cell positions and the checksum come straight from
// the id instead of re-hashing it.
std::uint32_t chunk32(const TxId& id, std::size_t offset) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(id[offset + i]) << (8 * i);
  return v;
}

std::uint64_t checksum(const TxId& id) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(id[16 + i]) << (8 * i);
  return v;
}

std::size_t cell_position(const TxId& id, int hash_index) {
  return chunk32(id, 4 * static_cast<std::size_t>(hash_index)) %
         SetSketch::kCells;
}

}  // namespace

bool SetSketch::Cell::pure() const {
  return (count == 1 || count == -1) && check == checksum(id_xor);
}

bool SetSketch::Cell::empty() const {
  return count == 0 && check == 0 && id_xor == TxId{};
}

void SetSketch::apply(std::vector<Cell>& cells, const TxId& id,
                      int direction) const {
  const std::uint64_t chk = checksum(id);
  for (int h = 0; h < kHashes; ++h) {
    Cell& cell = cells[cell_position(id, h)];
    cell.count += direction;
    for (std::size_t i = 0; i < id.size(); ++i) cell.id_xor[i] ^= id[i];
    cell.check ^= chk;
  }
}

void SetSketch::toggle(const TxId& id) { apply(cells_, id, 1); }

SetSketch::Diff SetSketch::subtract_and_decode(const SetSketch& other) const {
  std::vector<Cell> work(kCells);
  for (std::size_t i = 0; i < kCells; ++i) {
    work[i].count = cells_[i].count - other.cells_[i].count;
    for (std::size_t b = 0; b < 32; ++b)
      work[i].id_xor[b] = cells_[i].id_xor[b] ^ other.cells_[i].id_xor[b];
    work[i].check = cells_[i].check ^ other.cells_[i].check;
  }

  // Peel: a pure cell pins down one difference element; removing it may
  // make its other cells pure in turn. Every removal strictly shrinks the
  // table content, so the loop is O(kCells + diff).
  Diff diff;
  std::deque<std::size_t> candidates;
  for (std::size_t i = 0; i < kCells; ++i)
    if (work[i].pure()) candidates.push_back(i);

  while (!candidates.empty()) {
    const std::size_t at = candidates.front();
    candidates.pop_front();
    if (!work[at].pure()) continue;  // invalidated by an earlier peel
    const TxId id = work[at].id_xor;
    const int direction = work[at].count;
    (direction > 0 ? diff.only_local : diff.only_remote).push_back(id);
    apply(work, id, -direction);
    for (int h = 0; h < kHashes; ++h) {
      const std::size_t pos = cell_position(id, h);
      if (work[pos].pure()) candidates.push_back(pos);
    }
  }

  for (const auto& cell : work) {
    if (!cell.empty()) return {};  // stuck: difference exceeded capacity
  }
  diff.decoded = true;
  return diff;
}

Bytes SetSketch::encode() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(kCells));
  for (const auto& cell : cells_) {
    w.u32(static_cast<std::uint32_t>(cell.count));
    w.raw(cell.id_xor.view());
    w.u64(cell.check);
  }
  return std::move(w).take();
}

Result<SetSketch> SetSketch::decode(ByteView wire) {
  Reader r(wire);
  const auto cells = r.u32();
  if (!cells || cells.value() != kCells)
    return Status::error(ErrorCode::kInvalidArgument,
                         "set sketch: unexpected cell count");
  SetSketch sketch;
  for (std::size_t i = 0; i < kCells; ++i) {
    const auto count = r.u32();
    const auto id = r.raw(32);
    const auto check = r.u64();
    if (!count || !id || !check)
      return Status::error(ErrorCode::kInvalidArgument,
                           "set sketch: truncated");
    sketch.cells_[i].count = static_cast<std::int32_t>(count.value());
    sketch.cells_[i].id_xor = TxId::from_view(id.value());
    sketch.cells_[i].check = check.value();
  }
  return sketch;
}

}  // namespace biot::tangle
