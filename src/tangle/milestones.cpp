#include "tangle/milestones.h"

#include <deque>

namespace biot::tangle {

std::size_t MilestoneTracker::observe_milestone(const Tangle& tangle,
                                                const TxId& milestone_id) {
  const auto* rec = tangle.find(milestone_id);
  if (rec == nullptr) return 0;
  // A replayed milestone (gossip echo, restore replay) confirms nothing new
  // and must not inflate the milestone count or regress liveness tracking.
  if (confirmed_.contains(milestone_id)) return 0;

  ++milestones_;
  last_milestone_at_ = rec->arrival;

  // Walk the past cone, pruning at already-confirmed transactions (their
  // ancestors are confirmed too, by induction).
  std::size_t newly = 0;
  std::deque<TxId> frontier{milestone_id};
  while (!frontier.empty()) {
    const TxId cur = frontier.front();
    frontier.pop_front();
    if (!confirmed_.insert(cur).second) continue;
    ++newly;
    const auto* cur_rec = tangle.find(cur);
    if (cur_rec == nullptr || cur_rec->tx.type == TxType::kGenesis) continue;
    if (!confirmed_.contains(cur_rec->tx.parent1))
      frontier.push_back(cur_rec->tx.parent1);
    if (cur_rec->tx.parent2 != cur_rec->tx.parent1 &&
        !confirmed_.contains(cur_rec->tx.parent2))
      frontier.push_back(cur_rec->tx.parent2);
  }
  return newly;
}

}  // namespace biot::tangle
