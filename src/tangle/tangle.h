// The tangle: a DAG of transactions where each new transaction approves two
// former ones. Maintains the approval graph, the tip set, per-transaction
// weights (number of direct + indirect validations, paper Section II-B) and
// confirmation state.
//
// Weight/depth bookkeeping is *incremental*: every `add` propagates +1
// cumulative weight through the new transaction's ancestor cone and relaxes
// the longest-path depth upward, so `cumulative_weight`, `is_confirmed` and
// `depth` are O(1) lookups instead of O(n) sweeps per call. The brute-force
// sweeps are kept (suffixed `_brute_force`) as the reference implementation
// for property tests and for the before/after bench.
//
// `add` additionally maintains secondary indexes (by sender, by type, by
// arrival time — see DESIGN.md section 9 for the atomicity invariants) plus
// the anti-entropy set summaries from reconcile.h, so data queries, sync
// diffing and snapshot account capture are O(results + log n) instead of
// full-DAG scans. Brute-force counterparts are kept here too.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "tangle/reconcile.h"
#include "tangle/transaction.h"

namespace biot::tangle {

/// Validation/bookkeeping record for one transaction in the graph.
struct TxRecord {
  Transaction tx;
  TimePoint arrival = 0.0;             // local time the tangle accepted it
  std::vector<TxId> approvers;         // transactions that directly approve it
  // Incrementally maintained consensus bookkeeping (see Tangle::add):
  std::size_t weight = 1;              // 1 + distinct indirect approvers
  std::size_t depth = 0;               // longest approval path from any tip
  // Resolved parent records (nullptr for genesis' zero-id sentinel parents).
  // unordered_map element addresses are stable across insert and move, and
  // Tangle is move-only, so these never dangle. They let the add-path cone
  // walk follow pointers instead of re-hashing 32-byte ids.
  TxRecord* parent1_rec = nullptr;
  TxRecord* parent2_rec = nullptr;
  std::uint64_t visit_mark = 0;        // add-path BFS stamp (internal)
  // Position in arrival_order(). Sorting any id subset by this ships
  // parents before children (a parent always attaches first).
  std::size_t order_pos = 0;
};

/// One secondary-index entry. Index vectors are sorted by arrival (ties keep
/// insertion order), so time-bounded queries binary-search their start.
struct IndexEntry {
  TxId id;
  TimePoint arrival = 0.0;
  TxType type = TxType::kData;
};

class Tangle {
 public:
  /// Builds the deterministic genesis transaction (self-parented, unsigned —
  /// its validity is an axiom, like the hard-coded genesis config in Fig 6).
  static Transaction make_genesis(TimePoint timestamp = 0.0);

  explicit Tangle(const Transaction& genesis);

  // Move-only: TxRecord caches pointers into the record map, which stay
  // valid across moves (node ownership transfers) but not across copies.
  Tangle(const Tangle&) = delete;
  Tangle& operator=(const Tangle&) = delete;
  Tangle(Tangle&&) = default;
  Tangle& operator=(Tangle&&) = default;

  /// Validates structure (duplicate, parents known, signature, PoW) and
  /// attaches the transaction. Does NOT check credit-difficulty policy or
  /// ledger conflicts — those belong to the gateway (node layer).
  [[nodiscard]] Status add(const Transaction& tx, TimePoint arrival);

  /// Single-verify attach: like add(), but the signature check is replaced by
  /// the token (kVerifyFailed if it does not cover tx.id()). Lets the
  /// admission pipeline verify each transaction exactly once.
  [[nodiscard]] Status add(const Transaction& tx, TimePoint arrival,
                           const VerifiedToken& token);

  /// Scoped single-writer attach batch. add() performs the full structural
  /// attach immediately — records, approvers, tips, arrival order, weight
  /// and depth propagation all stay live, so later batch members can parent
  /// on earlier ones and duplicate/lazy checks see the true DAG — but the
  /// secondary-index inserts, the XOR digest / SetSketch toggles and the
  /// generation bump are deferred to one commit() epilogue, amortizing
  /// their maintenance across the batch (one cache invalidation per batch
  /// instead of one per transaction). Mid-batch, readers of the DEFERRED
  /// state (data_since, arrival_index, id_digest/id_sketch, generation-
  /// keyed caches) see the pre-batch snapshot; the admission loop is the
  /// only writer and reads none of them, and commit() runs before control
  /// returns to anything that does.
  ///
  /// Failed add() calls leave no trace, exactly like Tangle::add. The
  /// destructor commits whatever attached, so a batch cannot be dropped
  /// half-indexed.
  class AttachBatch {
   public:
    explicit AttachBatch(Tangle& tangle) : tangle_(tangle) {}
    ~AttachBatch() { commit(); }

    AttachBatch(const AttachBatch&) = delete;
    AttachBatch& operator=(const AttachBatch&) = delete;

    /// Token-gated attach, same contract as Tangle::add(tx, arrival, token).
    [[nodiscard]] Status add(const Transaction& tx, TimePoint arrival,
                             const VerifiedToken& token);

    /// Applies the deferred index/digest/sketch updates and bumps the
    /// generation once. Idempotent; called by the destructor.
    void commit();

    /// Attaches not yet indexed (zero after commit()).
    std::size_t pending() const { return pending_.size(); }

   private:
    friend class Tangle;
    Tangle& tangle_;
    std::vector<const TxRecord*> pending_;
  };

  /// Convenience wrapper: attaches `items` in order inside one AttachBatch
  /// and returns one status per item. Equivalent to calling add() per item
  /// except the deferred maintenance is paid once.
  struct BatchAttachItem {
    const Transaction* tx = nullptr;
    TimePoint arrival = 0.0;
    const VerifiedToken* token = nullptr;
  };
  [[nodiscard]] std::vector<Status> attach_batch(
      const std::vector<BatchAttachItem>& items);

  /// The cheap structural subset of add(): genesis/duplicate/unknown-parent.
  /// kOk means add() would proceed to signature+PoW validation. Lets callers
  /// order checks cheapest-first (e.g. admission runs this BEFORE paying the
  /// Ed25519 verification, so duplicate or orphan gossip costs no verify).
  [[nodiscard]] Status attach_precheck(const Transaction& tx) const;

  bool contains(const TxId& id) const { return records_.contains(id); }
  /// Record access; nullptr when unknown.
  const TxRecord* find(const TxId& id) const;

  /// Transactions with no approvers yet.
  const std::set<TxId>& tips() const { return tips_; }
  bool is_tip(const TxId& id) const { return tips_.contains(id); }

  std::size_t size() const { return records_.size(); }
  const TxId& genesis_id() const { return genesis_id_; }
  /// Ids in arrival order (stable iteration for benches/metrics).
  const std::vector<TxId>& arrival_order() const { return order_; }

  /// Mutation stamp for generation-based cache invalidation. Stamps are
  /// drawn from a process-wide monotone counter, so two *different* tangle
  /// states never share a generation — even across move-assignment (e.g. a
  /// gateway swapping in a pruned replica at the same address). Equal
  /// generation therefore guarantees an identical DAG.
  std::uint64_t generation() const { return generation_; }

  std::size_t approver_count(const TxId& id) const;

  /// Exact cumulative weight: 1 + number of distinct transactions that
  /// directly or indirectly approve `id`. O(1) — maintained by `add`.
  std::size_t cumulative_weight(const TxId& id) const;

  /// Reference implementation of `cumulative_weight`: full BFS over the
  /// approver graph. Kept for property tests and benches only.
  std::size_t cumulative_weight_brute_force(const TxId& id) const;

  /// A transaction is confirmed once its cumulative weight reaches the
  /// threshold (the paper's analogue of bitcoin's six-block security).
  bool is_confirmed(const TxId& id, std::size_t weight_threshold) const;

  /// Depth of `id`: longest approval path from any tip down to it. Genesis
  /// has the largest depth. Used by lazy-tip detection heuristics.
  /// O(1) — maintained by `add`.
  std::size_t depth(const TxId& id) const;

  /// Reference implementation of `depth`: full reverse-topological sweep.
  /// Kept for property tests and benches only.
  std::size_t depth_brute_force(const TxId& id) const;

  // ---- Secondary indexes (maintained by `add`, O(1) amortized each) ------

  /// All transactions from `sender`, arrival order. Empty for unknown senders.
  const std::vector<IndexEntry>& sender_index(const AccountKey& sender) const;
  /// All transactions of `type`, arrival order.
  const std::vector<IndexEntry>& type_index(TxType type) const;
  /// Every transaction, sorted by arrival time.
  const std::vector<IndexEntry>& arrival_index() const { return by_arrival_; }
  /// Distinct senders in first-seen order (includes the genesis sender) —
  /// what snapshot capture enumerates instead of sweeping the DAG.
  const std::vector<AccountKey>& senders_first_seen() const {
    return senders_first_seen_;
  }

  /// Index of the first entry in `index` with arrival >= since (binary
  /// search — entries are arrival-sorted).
  static std::size_t first_at_or_after(const std::vector<IndexEntry>& index,
                                       TimePoint since);

  /// Data transactions with arrival >= `since`, optionally restricted to one
  /// sender (nullptr = any), arrival order, at most `max_results`. Served
  /// from the secondary indexes: O(log n + results), plus a skip per
  /// non-data transaction the sender interleaved in the range.
  std::vector<const TxRecord*> data_since(const AccountKey* sender,
                                          TimePoint since,
                                          std::size_t max_results) const;
  /// Reference implementation of `data_since`: full arrival-order scan.
  std::vector<const TxRecord*> data_since_brute_force(
      const AccountKey* sender, TimePoint since,
      std::size_t max_results) const;

  // ---- Anti-entropy summaries (maintained by `add`, O(1) each) -----------

  /// Order-independent XOR fold of every id: equal digest + equal size is
  /// the O(1) "replicas already converged" sync fast path.
  const IdDigest& id_digest() const { return id_digest_; }
  /// Constant-size invertible sketch of the id set; subtracting a peer's
  /// sketch recovers the exact inventory difference in O(diff).
  const SetSketch& id_sketch() const { return id_sketch_; }

 private:
  // Lets the auditor's negative tests corrupt internal state (weights,
  // index entries, digests) on a rebuilt tangle to prove tangle/audit.h
  // detects the damage. Defined only in tests — never in product code.
  friend struct TangleTestAccess;

  Status add_impl(const Transaction& tx, TimePoint arrival, bool pre_verified,
                  AttachBatch* batch = nullptr);
  void bump_generation();
  void index_tx(const Transaction& tx, const TxId& id, TimePoint arrival);
  static void insert_sorted(std::vector<IndexEntry>& index, IndexEntry entry);

  std::unordered_map<TxId, TxRecord, FixedBytesHash<32>> records_;
  std::set<TxId> tips_;
  std::vector<TxId> order_;
  TxId genesis_id_;
  std::uint64_t generation_ = 0;
  std::uint64_t visit_epoch_ = 0;       // stamps one add-path BFS
  std::vector<TxRecord*> cone_scratch_;  // reused BFS frontier (no allocs)

  std::unordered_map<AccountKey, std::vector<IndexEntry>, FixedBytesHash<32>>
      by_sender_;
  std::vector<AccountKey> senders_first_seen_;
  std::unordered_map<std::uint8_t, std::vector<IndexEntry>> by_type_;
  std::vector<IndexEntry> by_arrival_;
  IdDigest id_digest_;
  SetSketch id_sketch_;
};

using WeightMap = std::unordered_map<TxId, double, FixedBytesHash<32>>;

/// Approximate weights for every transaction (see Tangle::cumulative_weight
/// for the exact version): one reverse-topological pass, additive children
/// rule. Returned map is keyed by TxId.
WeightMap approximate_weights(const Tangle& tangle);

/// Memoizes `approximate_weights` keyed on the tangle's generation stamp:
/// `get` recomputes only when the tangle mutated (or a different tangle is
/// passed) since the last call. See DESIGN.md "Incremental weight engine"
/// for the invalidation contract.
class ApproxWeightCache {
 public:
  const WeightMap& get(const Tangle& tangle);

 private:
  const Tangle* tangle_ = nullptr;
  std::uint64_t generation_ = 0;
  WeightMap weights_;
};

}  // namespace biot::tangle
