// The tangle: a DAG of transactions where each new transaction approves two
// former ones. Maintains the approval graph, the tip set, per-transaction
// weights (number of direct + indirect validations, paper Section II-B) and
// confirmation state.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "tangle/transaction.h"

namespace biot::tangle {

/// Validation/bookkeeping record for one transaction in the graph.
struct TxRecord {
  Transaction tx;
  TimePoint arrival = 0.0;             // local time the tangle accepted it
  std::vector<TxId> approvers;         // transactions that directly approve it
};

class Tangle {
 public:
  /// Builds the deterministic genesis transaction (self-parented, unsigned —
  /// its validity is an axiom, like the hard-coded genesis config in Fig 6).
  static Transaction make_genesis(TimePoint timestamp = 0.0);

  explicit Tangle(const Transaction& genesis);

  /// Validates structure (duplicate, parents known, signature, PoW) and
  /// attaches the transaction. Does NOT check credit-difficulty policy or
  /// ledger conflicts — those belong to the gateway (node layer).
  Status add(const Transaction& tx, TimePoint arrival);

  bool contains(const TxId& id) const { return records_.contains(id); }
  /// Record access; nullptr when unknown.
  const TxRecord* find(const TxId& id) const;

  /// Transactions with no approvers yet.
  const std::set<TxId>& tips() const { return tips_; }
  bool is_tip(const TxId& id) const { return tips_.contains(id); }

  std::size_t size() const { return records_.size(); }
  const TxId& genesis_id() const { return genesis_id_; }
  /// Ids in arrival order (stable iteration for benches/metrics).
  const std::vector<TxId>& arrival_order() const { return order_; }

  std::size_t approver_count(const TxId& id) const;

  /// Exact cumulative weight: 1 + number of distinct transactions that
  /// directly or indirectly approve `id` (BFS over the approver graph).
  std::size_t cumulative_weight(const TxId& id) const;

  /// A transaction is confirmed once its cumulative weight reaches the
  /// threshold (the paper's analogue of bitcoin's six-block security).
  bool is_confirmed(const TxId& id, std::size_t weight_threshold) const;

  /// Depth of `id`: longest approval path from any tip down to it. Genesis
  /// has the largest depth. Used by lazy-tip detection heuristics.
  std::size_t depth(const TxId& id) const;

 private:
  std::unordered_map<TxId, TxRecord, FixedBytesHash<32>> records_;
  std::set<TxId> tips_;
  std::vector<TxId> order_;
  TxId genesis_id_;
};

/// Approximate weights for every transaction (see Tangle::cumulative_weight
/// for the exact version): one reverse-topological pass, additive children
/// rule. Returned map is keyed by TxId.
std::unordered_map<TxId, double, FixedBytesHash<32>> approximate_weights(
    const Tangle& tangle);

}  // namespace biot::tangle
