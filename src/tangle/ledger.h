// Account-based ledger state with double-spend / replay detection.
//
// Every transaction consumes a (sender, sequence) slot; seeing two distinct
// transactions claim the same slot is the tangle's double-spending event
// (threat model, Section III). Transfers additionally move token balance.
// Gateways consult the ledger before attaching transactions and report
// conflicts to the credit model (alpha_d penalty).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "common/status.h"
#include "tangle/transaction.h"

namespace biot::tangle {

class Ledger {
 public:
  /// Seeds an account with initial balance (genesis allocation).
  void credit(const AccountKey& account, std::uint64_t amount);

  /// Pure check: would `tx` be accepted right now?
  ///  - kConflict          a different tx already holds (sender, sequence)
  ///  - kRejected          sequence already applied by this very tx (replay)
  ///  - kInvalidArgument   transfer with insufficient balance
  [[nodiscard]] Status check(const Transaction& tx) const;

  /// check() then record the (sender, sequence) slot and move funds.
  [[nodiscard]] Status apply(const Transaction& tx);

  /// Replica-consistent application for gossiped/synced transactions.
  /// Two gateways may each accept one side of a double-spend before their
  /// gossip meets; first-seen order differs between replicas, so conflicts
  /// are resolved by a deterministic rule instead: the transaction with the
  /// lexicographically SMALLER id wins the slot. When the newcomer wins and
  /// the incumbent's effects can be safely reverted (the recipient still
  /// holds the funds), the incumbent is displaced; otherwise the incumbent
  /// is kept (conservation beats strict determinism in the pathological
  /// spent-downstream case).
  enum class ApplyOutcome {
    kApplied,                // slot was free
    kReplay,                 // identical transaction already applied
    kConflictKeptExisting,   // conflict; incumbent wins (or unsafe to revert)
    kConflictDisplaced,      // conflict; newcomer won, incumbent reverted
  };
  [[nodiscard]] ApplyOutcome apply_resolving(const Transaction& tx);

  std::uint64_t balance(const AccountKey& account) const;
  /// Sum of all account balances. Transfers move tokens without minting or
  /// burning, so this must always equal the total seeded via credit() —
  /// the conservation invariant tangle/audit.h checks.
  std::uint64_t total_balance() const;
  /// Next unused sequence number for an account (0 for unseen accounts).
  std::uint64_t next_sequence(const AccountKey& account) const;
  /// Number of conflicts detected so far (double-spend attempts observed).
  std::uint64_t conflicts_detected() const { return conflicts_; }

 private:
  struct Slot {
    TxId id{};
    std::optional<Transfer> transfer;  // retained so a loser can be reverted
  };
  struct Account {
    std::uint64_t balance = 0;
    // sequence -> the transaction that consumed the slot
    std::map<std::uint64_t, Slot> used_sequences;
  };

  std::unordered_map<AccountKey, Account, FixedBytesHash<32>> accounts_;
  mutable std::uint64_t conflicts_ = 0;
};

}  // namespace biot::tangle
