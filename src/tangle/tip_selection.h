// Tip selection strategies.
//
// Honest nodes pick two unverified tips (uniformly, or by the IOTA-style
// weighted MCMC walk that biases toward the heavy part of the tangle and
// starves lazy tips). The LazyTipSelector models the "lazy tips" attack from
// the paper's threat model: always approving a fixed pair of old
// transactions instead of contributing fresh validations.
#pragma once

#include <memory>
#include <utility>

#include "common/rng.h"
#include "tangle/tangle.h"

namespace biot::tangle {

using TipPair = std::pair<TxId, TxId>;

class TipSelector {
 public:
  virtual ~TipSelector() = default;
  virtual TipPair select(const Tangle& tangle, Rng& rng) const = 0;

  /// DAG edges traversed by the most recent select() call — the cost driver
  /// of walk-based strategies, exported as gateway.g<i>.tips.walk_steps.
  /// 0 for strategies that don't walk (uniform, lazy).
  virtual std::size_t last_walk_steps() const { return 0; }
};

/// Uniform random choice among current tips. The paper's two-tip approval
/// model wants two *distinct* validations, so when the pool has at least two
/// tips the pair is drawn without replacement; with a single tip both slots
/// return it (as in IOTA trunk == branch).
class UniformRandomTipSelector final : public TipSelector {
 public:
  TipPair select(const Tangle& tangle, Rng& rng) const override;
};

/// IOTA-style alpha-weighted Markov-chain walk from genesis toward the tips.
/// At each step the walker moves to approver `a` with probability
/// proportional to exp(alpha * w(a)), where w is the fast approximate
/// cumulative weight. alpha = 0 degenerates to an unweighted walk; larger
/// alpha concentrates on the main tangle and abandons lazy side-branches.
///
/// The weight map is cached across calls and recomputed only when the
/// tangle's generation stamp moves, so repeated selections on a quiescent
/// tangle are O(walk length), not O(n).
///
/// `max_walk_depth` bounds the walk length IOTA-style: when nonzero, each
/// walk starts from an *anchor* found by following parent1 links
/// `max_walk_depth` steps down from a random tip, instead of from genesis.
/// That caps a selection at O(max_walk_depth) regardless of tangle size,
/// while still biasing among the recent subtangle where tip competition
/// actually happens. 0 (the default) keeps the full genesis walk.
class WeightedWalkTipSelector final : public TipSelector {
 public:
  explicit WeightedWalkTipSelector(double alpha, std::size_t max_walk_depth = 0)
      : alpha_(alpha), max_walk_depth_(max_walk_depth) {}
  TipPair select(const Tangle& tangle, Rng& rng) const override;

  /// Edges traversed by both walks of the last select().
  std::size_t last_walk_steps() const override { return last_walk_steps_; }

  /// One walk from `start` toward the tips. Defensive against bad inputs:
  /// an id unknown to `tangle` (or a walk stepping onto one) falls back to
  /// an arbitrary current tip, and a transaction missing from `weights`
  /// counts as weight 0 instead of throwing.
  TxId walk(const Tangle& tangle, const TxId& start, const WeightMap& weights,
            Rng& rng) const;

 private:
  /// Walk start for the depth-windowed mode: a random tip, then parent1
  /// links down up to `max_walk_depth_` steps (stopping early at genesis).
  TxId anchor(const Tangle& tangle, Rng& rng) const;

  double alpha_;
  std::size_t max_walk_depth_;
  mutable ApproxWeightCache cache_;
  mutable std::size_t last_walk_steps_ = 0;
};

/// Malicious: always approves the same fixed (old) pair of transactions.
class LazyTipSelector final : public TipSelector {
 public:
  LazyTipSelector(TxId fixed1, TxId fixed2)
      : fixed_(std::move(fixed1), std::move(fixed2)) {}
  TipPair select(const Tangle&, Rng&) const override { return fixed_; }

 private:
  TipPair fixed_;
};

}  // namespace biot::tangle
