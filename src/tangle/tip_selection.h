// Tip selection strategies.
//
// Honest nodes pick two unverified tips (uniformly, or by the IOTA-style
// weighted MCMC walk that biases toward the heavy part of the tangle and
// starves lazy tips). The LazyTipSelector models the "lazy tips" attack from
// the paper's threat model: always approving a fixed pair of old
// transactions instead of contributing fresh validations.
#pragma once

#include <memory>
#include <utility>

#include "common/rng.h"
#include "tangle/tangle.h"

namespace biot::tangle {

using TipPair = std::pair<TxId, TxId>;

class TipSelector {
 public:
  virtual ~TipSelector() = default;
  virtual TipPair select(const Tangle& tangle, Rng& rng) const = 0;
};

/// Uniform random choice among current tips (two independent draws, so the
/// pair may repeat a tip — allowed, as in IOTA trunk == branch).
class UniformRandomTipSelector final : public TipSelector {
 public:
  TipPair select(const Tangle& tangle, Rng& rng) const override;
};

/// IOTA-style alpha-weighted Markov-chain walk from genesis toward the tips.
/// At each step the walker moves to approver `a` with probability
/// proportional to exp(alpha * w(a)), where w is the fast approximate
/// cumulative weight. alpha = 0 degenerates to an unweighted walk; larger
/// alpha concentrates on the main tangle and abandons lazy side-branches.
class WeightedWalkTipSelector final : public TipSelector {
 public:
  explicit WeightedWalkTipSelector(double alpha) : alpha_(alpha) {}
  TipPair select(const Tangle& tangle, Rng& rng) const override;

 private:
  TxId walk(const Tangle& tangle,
            const std::unordered_map<TxId, double, FixedBytesHash<32>>& weights,
            Rng& rng) const;
  double alpha_;
};

/// Malicious: always approves the same fixed (old) pair of transactions.
class LazyTipSelector final : public TipSelector {
 public:
  LazyTipSelector(TxId fixed1, TxId fixed2)
      : fixed_(std::move(fixed1), std::move(fixed2)) {}
  TipPair select(const Tangle&, Rng&) const override { return fixed_; }

 private:
  TipPair fixed_;
};

}  // namespace biot::tangle
