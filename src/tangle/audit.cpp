#include "tangle/audit.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "tangle/reconcile.h"

namespace biot::tangle {

namespace {

std::string short_id(const TxId& id) { return id.hex().substr(0, 12); }

std::string short_key(const AccountKey& key) {
  return key.hex().substr(0, 12);
}

class Auditor {
 public:
  explicit Auditor(const Tangle& tangle, const AuditInputs& inputs)
      : tangle_(tangle), inputs_(inputs) {}

  AuditReport run() {
    check_order();
    check_parents_and_approvers();
    check_tips();
    check_weights();
    check_depths();
    check_indexes();
    check_summaries();
    check_ledger();
    check_credit();
    return std::move(report_);
  }

 private:
  void fail(std::string check, std::string detail) {
    report_.violations.push_back({std::move(check), std::move(detail)});
  }
  void expect(bool ok, const char* check, const std::string& detail) {
    ++report_.checks_run;
    if (!ok) fail(check, detail);
  }

  // arrival_order() must enumerate every record exactly once, with
  // order_pos matching the position — the sync path ships "parents before
  // children" purely by sorting on order_pos.
  void check_order() {
    const auto& order = tangle_.arrival_order();
    expect(order.size() == tangle_.size(), "order.size",
           "arrival_order has " + std::to_string(order.size()) +
               " ids, record map has " + std::to_string(tangle_.size()));
    std::unordered_set<TxId, FixedBytesHash<32>> seen;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const auto& id = order[i];
      expect(seen.insert(id).second, "order.duplicate",
             "id " + short_id(id) + " appears twice in arrival_order");
      const TxRecord* rec = tangle_.find(id);
      expect(rec != nullptr, "order.unknown",
             "arrival_order[" + std::to_string(i) + "] = " + short_id(id) +
                 " is not in the record map");
      if (rec == nullptr) continue;
      expect(rec->order_pos == i, "order.pos",
             "tx " + short_id(id) + " order_pos " +
                 std::to_string(rec->order_pos) + " != position " +
                 std::to_string(i));
    }
  }

  // Parent pointers must resolve to the stored parent records (nullptr only
  // for genesis sentinels and the deduplicated parent2 == parent1 case),
  // and the approver lists must be the exact inverse of the parent edges.
  void check_parents_and_approvers() {
    std::unordered_map<TxId, std::vector<TxId>, FixedBytesHash<32>> approvers;
    for (const auto& id : tangle_.arrival_order()) {
      const TxRecord* rec = tangle_.find(id);
      if (rec == nullptr) continue;  // reported by check_order
      if (id == tangle_.genesis_id()) {
        expect(rec->parent1_rec == nullptr && rec->parent2_rec == nullptr,
               "parents.genesis",
               "genesis record has non-null parent pointers");
        continue;
      }
      expect(rec->parent1_rec == tangle_.find(rec->tx.parent1),
             "parents.pointer",
             "tx " + short_id(id) + " parent1 pointer does not match find()");
      const TxRecord* want_p2 = rec->tx.parent2 != rec->tx.parent1
                                    ? tangle_.find(rec->tx.parent2)
                                    : nullptr;
      expect(rec->parent2_rec == want_p2, "parents.pointer",
             "tx " + short_id(id) + " parent2 pointer does not match find()");
      approvers[rec->tx.parent1].push_back(id);
      if (rec->tx.parent2 != rec->tx.parent1)
        approvers[rec->tx.parent2].push_back(id);
    }
    for (const auto& id : tangle_.arrival_order()) {
      const TxRecord* rec = tangle_.find(id);
      if (rec == nullptr) continue;
      auto want = approvers[id];
      auto have = rec->approvers;
      std::sort(want.begin(), want.end());
      std::sort(have.begin(), have.end());
      expect(want == have, "approvers.mismatch",
             "tx " + short_id(id) + " approver list (" +
                 std::to_string(have.size()) +
                 ") != recomputed from parent edges (" +
                 std::to_string(want.size()) + ")");
    }
  }

  void check_tips() {
    std::set<TxId> want;
    for (const auto& id : tangle_.arrival_order()) {
      const TxRecord* rec = tangle_.find(id);
      if (rec != nullptr && rec->approvers.empty()) want.insert(id);
    }
    expect(tangle_.tips() == want, "tips.set",
           "tip set has " + std::to_string(tangle_.tips().size()) +
               " ids, recomputed approver-free set has " +
               std::to_string(want.size()));
  }

  void check_weights() {
    for (const auto& id : tangle_.arrival_order()) {
      const std::size_t fast = tangle_.cumulative_weight(id);
      const std::size_t brute = tangle_.cumulative_weight_brute_force(id);
      expect(fast == brute, "weight.incremental",
             "tx " + short_id(id) + " incremental weight " +
                 std::to_string(fast) + " != brute-force " +
                 std::to_string(brute));
    }
  }

  void check_depths() {
    // One reverse arrival-order sweep recomputes every depth (approvers
    // always arrive later, so this is a valid topological order) — the same
    // recurrence as Tangle::depth_brute_force without the per-id sweep.
    std::unordered_map<TxId, std::size_t, FixedBytesHash<32>> memo;
    const auto& order = tangle_.arrival_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const TxRecord* rec = tangle_.find(*it);
      if (rec == nullptr) continue;
      std::size_t best = 0;
      for (const auto& ap : rec->approvers) {
        const auto found = memo.find(ap);
        if (found != memo.end()) best = std::max(best, found->second + 1);
      }
      memo[*it] = best;
      expect(rec->depth == best, "depth.incremental",
             "tx " + short_id(*it) + " incremental depth " +
                 std::to_string(rec->depth) + " != brute-force " +
                 std::to_string(best));
    }
  }

  void check_index_vector(const std::vector<IndexEntry>& index,
                          const char* name) {
    for (std::size_t i = 1; i < index.size(); ++i)
      expect(index[i - 1].arrival <= index[i].arrival, "index.sorted",
             std::string(name) + " index out of arrival order at entry " +
                 std::to_string(i));
    for (const auto& entry : index) {
      const TxRecord* rec = tangle_.find(entry.id);
      expect(rec != nullptr, "index.unknown",
             std::string(name) + " index references unknown tx " +
                 short_id(entry.id));
      if (rec == nullptr) continue;
      expect(entry.arrival == rec->arrival && entry.type == rec->tx.type,
             "index.entry",
             std::string(name) + " index entry for " + short_id(entry.id) +
                 " disagrees with the record (arrival/type)");
    }
  }

  void check_indexes() {
    // Recompute the per-sender / per-type partition of the record map.
    std::unordered_map<AccountKey, std::size_t, FixedBytesHash<32>> by_sender;
    std::unordered_map<std::uint8_t, std::size_t> by_type;
    std::vector<AccountKey> first_seen;
    for (const auto& id : tangle_.arrival_order()) {
      const TxRecord* rec = tangle_.find(id);
      if (rec == nullptr) continue;
      if (by_sender[rec->tx.sender]++ == 0)
        first_seen.push_back(rec->tx.sender);
      ++by_type[static_cast<std::uint8_t>(rec->tx.type)];
    }

    expect(tangle_.senders_first_seen() == first_seen, "index.first_seen",
           "senders_first_seen (" +
               std::to_string(tangle_.senders_first_seen().size()) +
               ") != recomputed first-touch order (" +
               std::to_string(first_seen.size()) + ")");

    for (const auto& [sender, count] : by_sender) {
      const auto& index = tangle_.sender_index(sender);
      expect(index.size() == count, "index.sender",
             "sender " + short_key(sender) + " index has " +
                 std::to_string(index.size()) + " entries, record map has " +
                 std::to_string(count));
      check_index_vector(index, "sender");
      for (const auto& entry : index) {
        const TxRecord* rec = tangle_.find(entry.id);
        if (rec != nullptr)
          expect(rec->tx.sender == sender, "index.sender",
                 "sender index for " + short_key(sender) +
                     " contains foreign tx " + short_id(entry.id));
      }
    }

    for (const auto& [type, count] : by_type) {
      const auto& index = tangle_.type_index(static_cast<TxType>(type));
      expect(index.size() == count, "index.type",
             "type " + std::to_string(type) + " index has " +
                 std::to_string(index.size()) +
                 " entries, record map has " + std::to_string(count));
      check_index_vector(index, "type");
    }

    expect(tangle_.arrival_index().size() == tangle_.size(), "index.arrival",
           "arrival index has " +
               std::to_string(tangle_.arrival_index().size()) +
               " entries, record map has " + std::to_string(tangle_.size()));
    check_index_vector(tangle_.arrival_index(), "arrival");
  }

  // The anti-entropy summaries must be reproducible from the id set alone —
  // a replica whose digest/sketch drifted would silently stop syncing
  // (equal-digest fast path) or decode wrong diffs.
  void check_summaries() {
    IdDigest digest;
    SetSketch sketch;
    for (const auto& id : tangle_.arrival_order()) {
      digest.toggle(id);
      sketch.toggle(id);
    }
    expect(digest == tangle_.id_digest(), "summary.digest",
           "XOR id-digest does not reproduce from the id set");
    expect(sketch == tangle_.id_sketch(), "summary.sketch",
           "SetSketch does not reproduce from the id set");
  }

  void check_ledger() {
    if (inputs_.ledger == nullptr || !inputs_.expected_supply.has_value())
      return;
    const std::uint64_t total = inputs_.ledger->total_balance();
    expect(total == *inputs_.expected_supply, "ledger.conservation",
           "ledger total balance " + std::to_string(total) +
               " != seeded supply " +
               std::to_string(*inputs_.expected_supply));
  }

  void check_credit() {
    if (!inputs_.credit_valid_tx_count) return;
    for (const auto& sender : tangle_.senders_first_seen()) {
      const std::size_t recorded = inputs_.credit_valid_tx_count(sender);
      const std::size_t in_tangle = tangle_.sender_index(sender).size();
      expect(recorded <= in_tangle, "credit.activity",
             "account " + short_key(sender) + " has " +
                 std::to_string(recorded) +
                 " recorded valid txs but only " +
                 std::to_string(in_tangle) + " transactions in the tangle");
    }
  }

  const Tangle& tangle_;
  const AuditInputs& inputs_;
  AuditReport report_;
};

}  // namespace

std::string AuditReport::to_string() const {
  if (ok())
    return "audit ok (" + std::to_string(checks_run) + " checks)";
  std::string out = "audit FAILED: " + std::to_string(violations.size()) +
                    " violation(s) in " + std::to_string(checks_run) +
                    " checks";
  for (const auto& v : violations) out += "\n  [" + v.check + "] " + v.detail;
  return out;
}

AuditReport audit(const Tangle& tangle, const AuditInputs& inputs) {
  return Auditor(tangle, inputs).run();
}

}  // namespace biot::tangle
