// Anti-entropy set reconciliation for transaction-id inventories.
//
// The original sync protocol shipped a gateway's FULL id inventory every
// tick (32 B per transaction), and the receiver scanned its whole replica
// to compute the difference — O(n) wire and O(n) work per sync even when
// the replicas were already converged. At the ROADMAP's target scale that
// read amplification dominates the sync path.
//
// This header replaces the inventory with two constant-size summaries the
// tangle maintains incrementally (O(1) per add):
//
//  - an order-independent XOR fold of all transaction ids (`IdDigest`):
//    equal digests + equal counts ⇒ equal sets (w.h.p.), giving an O(1)
//    "already converged" fast path;
//  - an invertible Bloom lookup table (`SetSketch`, Eppstein et al.,
//    "What's the Difference?"): subtracting a peer's sketch from ours and
//    peeling recovers the EXACT symmetric difference in O(diff) time as
//    long as the difference fits the sketch capacity (~kCells / 1.3 ids).
//    Larger differences fail decodably and the caller falls back to the
//    full-inventory exchange, which is kept as the reference path.
//
// Transaction ids are SHA-256 digests, i.e. already uniformly random, so
// the sketch derives its cell positions and per-cell checksum directly
// from id bytes — no extra hashing on the hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tangle/transaction.h"

namespace biot::tangle {

/// Order-independent set digest: XOR fold of every member id.
struct IdDigest {
  TxId value{};

  void toggle(const TxId& id) {
    for (std::size_t i = 0; i < value.size(); ++i) value[i] ^= id[i];
  }
  friend bool operator==(const IdDigest&, const IdDigest&) = default;
};

/// Invertible Bloom lookup table over 32-byte transaction ids.
class SetSketch {
 public:
  /// Cells in the table. 512 cells decode symmetric differences up to
  /// roughly 400 ids with high probability (k=3 needs ~1.3 cells per
  /// difference element); the wire cost is kCells * 44 B ~= 22 KiB per
  /// summary — constant in the tangle size.
  static constexpr std::size_t kCells = 512;
  static constexpr int kHashes = 3;

  SetSketch() : cells_(kCells) {}

  /// Adds `id` to the summarized set. Tangles are append-only, so the
  /// sketch never needs removal; `toggle` is its own inverse regardless.
  void toggle(const TxId& id);

  /// Result of decoding `this - other`.
  struct Diff {
    bool decoded = false;            // false: difference exceeded capacity
    std::vector<TxId> only_local;    // in this sketch's set, not the other's
    std::vector<TxId> only_remote;   // in the other's set, not this one's
  };

  /// Cell-wise subtraction followed by peeling. O(kCells + diff). When the
  /// symmetric difference is too large to peel, returns decoded = false and
  /// no ids (partial peels are discarded — the caller must fall back).
  Diff subtract_and_decode(const SetSketch& other) const;

  Bytes encode() const;
  static Result<SetSketch> decode(ByteView wire);

  friend bool operator==(const SetSketch&, const SetSketch&) = default;

 private:
  struct Cell {
    std::int32_t count = 0;  // insertions minus deletions hashed here
    TxId id_xor{};           // XOR of those ids
    std::uint64_t check = 0; // XOR of their checksums (detects mixed cells)

    bool pure() const;       // exactly one id, in a known direction
    bool empty() const;
    friend bool operator==(const Cell&, const Cell&) = default;
  };

  void apply(std::vector<Cell>& cells, const TxId& id, int direction) const;

  std::vector<Cell> cells_;
};

}  // namespace biot::tangle
