#include "tangle/ledger.h"

namespace biot::tangle {

void Ledger::credit(const AccountKey& account, std::uint64_t amount) {
  accounts_[account].balance += amount;
}

Status Ledger::check(const Transaction& tx) const {
  const auto it = accounts_.find(tx.sender);
  if (it != accounts_.end()) {
    const auto used = it->second.used_sequences.find(tx.sequence);
    if (used != it->second.used_sequences.end()) {
      if (used->second.id == tx.id())
        return Status::error(ErrorCode::kRejected, "ledger: replayed transaction");
      ++conflicts_;
      return Status::error(ErrorCode::kConflict,
                           "ledger: double-spend on sequence slot");
    }
  }
  if (tx.transfer) {
    const std::uint64_t bal = it == accounts_.end() ? 0 : it->second.balance;
    if (bal < tx.transfer->amount)
      return Status::error(ErrorCode::kInvalidArgument,
                           "ledger: insufficient balance");
  }
  return Status::ok();
}

Status Ledger::apply(const Transaction& tx) {
  if (auto s = check(tx); !s) return s;
  auto& sender = accounts_[tx.sender];
  sender.used_sequences.emplace(tx.sequence, Slot{tx.id(), tx.transfer});
  if (tx.transfer) {
    sender.balance -= tx.transfer->amount;
    accounts_[tx.transfer->to].balance += tx.transfer->amount;
  }
  return Status::ok();
}

Ledger::ApplyOutcome Ledger::apply_resolving(const Transaction& tx) {
  auto& sender = accounts_[tx.sender];
  const auto existing = sender.used_sequences.find(tx.sequence);
  if (existing == sender.used_sequences.end()) {
    // Free slot; enforce funds for transfers exactly as apply() does.
    if (tx.transfer && sender.balance < tx.transfer->amount)
      return ApplyOutcome::kConflictKeptExisting;  // cannot take effect
    sender.used_sequences.emplace(tx.sequence, Slot{tx.id(), tx.transfer});
    if (tx.transfer) {
      sender.balance -= tx.transfer->amount;
      accounts_[tx.transfer->to].balance += tx.transfer->amount;
    }
    return ApplyOutcome::kApplied;
  }

  const TxId new_id = tx.id();
  if (existing->second.id == new_id) return ApplyOutcome::kReplay;
  ++conflicts_;

  // Deterministic winner: the smaller transaction id.
  if (!(new_id < existing->second.id))
    return ApplyOutcome::kConflictKeptExisting;

  // Revert the incumbent if that is safe (conservation first).
  if (const auto& old = existing->second.transfer; old.has_value()) {
    auto& recipient = accounts_[old->to];
    if (recipient.balance < old->amount)
      return ApplyOutcome::kConflictKeptExisting;  // funds moved on already
    if (tx.transfer &&
        sender.balance + old->amount < tx.transfer->amount)
      return ApplyOutcome::kConflictKeptExisting;  // newcomer can't be funded
    recipient.balance -= old->amount;
    sender.balance += old->amount;
  } else if (tx.transfer && sender.balance < tx.transfer->amount) {
    return ApplyOutcome::kConflictKeptExisting;
  }

  existing->second = Slot{new_id, tx.transfer};
  if (tx.transfer) {
    sender.balance -= tx.transfer->amount;
    accounts_[tx.transfer->to].balance += tx.transfer->amount;
  }
  return ApplyOutcome::kConflictDisplaced;
}

std::uint64_t Ledger::balance(const AccountKey& account) const {
  const auto it = accounts_.find(account);
  return it == accounts_.end() ? 0 : it->second.balance;
}

std::uint64_t Ledger::next_sequence(const AccountKey& account) const {
  const auto it = accounts_.find(account);
  if (it == accounts_.end() || it->second.used_sequences.empty()) return 0;
  return it->second.used_sequences.rbegin()->first + 1;
}

std::uint64_t Ledger::total_balance() const {
  std::uint64_t total = 0;
  for (const auto& [key, account] : accounts_) total += account.balance;
  return total;
}

}  // namespace biot::tangle
