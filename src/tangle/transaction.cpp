#include "tangle/transaction.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/codec.h"

namespace biot::tangle {

std::string_view tx_type_name(TxType t) noexcept {
  switch (t) {
    case TxType::kGenesis: return "genesis";
    case TxType::kData: return "data";
    case TxType::kTransfer: return "transfer";
    case TxType::kAuthorization: return "authorization";
    case TxType::kMilestone: return "milestone";
  }
  return "unknown";
}

Bytes Transaction::signing_bytes() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.raw(sender.view());
  w.raw(parent1.view());
  w.raw(parent2.view());
  w.u64(sequence);
  w.f64(timestamp);
  w.u8(difficulty);
  w.u8(transfer.has_value() ? 1 : 0);
  if (transfer) {
    w.raw(transfer->to.view());
    w.u64(transfer->amount);
  }
  w.u8(payload_encrypted ? 1 : 0);
  w.blob(payload);
  return std::move(w).take();
}

Bytes Transaction::encode() const {
  Writer w;
  w.raw(signing_bytes());
  w.u64(nonce);  // attachment field: outside the signature, inside the id
  w.raw(signature.view());
  return std::move(w).take();
}

Result<Transaction> Transaction::decode(ByteView wire) {
  Reader r(wire);
  Transaction tx;

  const auto type_byte = r.u8();
  if (!type_byte) return type_byte.status();
  if (type_byte.value() > static_cast<std::uint8_t>(TxType::kMilestone))
    return Status::error(ErrorCode::kInvalidArgument, "tx: bad type byte");
  tx.type = static_cast<TxType>(type_byte.value());

  auto read_fixed32 = [&r]() -> Result<crypto::Sha256Digest> {
    auto raw = r.raw(32);
    if (!raw) return raw.status();
    return crypto::Sha256Digest::from_view(raw.value());
  };

  auto sender = read_fixed32();
  if (!sender) return sender.status();
  tx.sender = sender.value();
  auto p1 = read_fixed32();
  if (!p1) return p1.status();
  tx.parent1 = p1.value();
  auto p2 = read_fixed32();
  if (!p2) return p2.status();
  tx.parent2 = p2.value();

  auto seq = r.u64();
  if (!seq) return seq.status();
  tx.sequence = seq.value();
  auto ts = r.f64();
  if (!ts) return ts.status();
  tx.timestamp = ts.value();
  auto diff = r.u8();
  if (!diff) return diff.status();
  tx.difficulty = diff.value();

  auto has_transfer = r.u8();
  if (!has_transfer) return has_transfer.status();
  if (has_transfer.value() > 1)
    return Status::error(ErrorCode::kInvalidArgument, "tx: bad transfer flag");
  if (has_transfer.value() == 1) {
    Transfer t;
    auto to = read_fixed32();
    if (!to) return to.status();
    t.to = to.value();
    auto amount = r.u64();
    if (!amount) return amount.status();
    t.amount = amount.value();
    tx.transfer = t;
  }

  auto enc_flag = r.u8();
  if (!enc_flag) return enc_flag.status();
  if (enc_flag.value() > 1)
    return Status::error(ErrorCode::kInvalidArgument, "tx: bad encrypted flag");
  tx.payload_encrypted = enc_flag.value() == 1;

  auto payload = r.blob();
  if (!payload) return payload.status();
  tx.payload = std::move(payload).take();

  auto nonce = r.u64();
  if (!nonce) return nonce.status();
  tx.nonce = nonce.value();

  auto sig = r.raw(64);
  if (!sig) return sig.status();
  tx.signature = crypto::Ed25519Signature::from_view(sig.value());

  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "tx: trailing bytes");

  // The wire bytes ARE the canonical encoding, so the id is free here — cache
  // it now instead of re-encoding on the first id() call.
  tx.id_cache_ = crypto::Sha256::hash(wire);
  tx.id_cached_ = true;
  ++tx_id_computes();
  return tx;
}

Transaction::Transaction(const Transaction& other)
    : type(other.type),
      sender(other.sender),
      parent1(other.parent1),
      parent2(other.parent2),
      sequence(other.sequence),
      timestamp(other.timestamp),
      difficulty(other.difficulty),
      nonce(other.nonce),
      transfer(other.transfer),
      payload(other.payload),
      payload_encrypted(other.payload_encrypted),
      signature(other.signature) {}

Transaction& Transaction::operator=(const Transaction& other) {
  if (this == &other) return *this;
  type = other.type;
  sender = other.sender;
  parent1 = other.parent1;
  parent2 = other.parent2;
  sequence = other.sequence;
  timestamp = other.timestamp;
  difficulty = other.difficulty;
  nonce = other.nonce;
  transfer = other.transfer;
  payload = other.payload;
  payload_encrypted = other.payload_encrypted;
  signature = other.signature;
  id_cached_ = false;
  return *this;
}

bool operator==(const Transaction& a, const Transaction& b) {
  return a.type == b.type && a.sender == b.sender && a.parent1 == b.parent1 &&
         a.parent2 == b.parent2 && a.sequence == b.sequence &&
         a.timestamp == b.timestamp && a.difficulty == b.difficulty &&
         a.nonce == b.nonce && a.transfer == b.transfer &&
         a.payload == b.payload && a.payload_encrypted == b.payload_encrypted &&
         a.signature == b.signature;
}

obs::Counter& tx_id_computes() {
  static obs::Counter counter;
  return counter;
}

TxId Transaction::id() const {
  // The cache is seeded ONLY by decode(), where the wire bytes are final;
  // a transaction assembled or mutated field-by-field always recomputes,
  // so direct edits (tests, builders) are reflected immediately. The one
  // post-decode mutation site (the gateway writing a mined nonce) calls
  // invalidate_id().
  if (id_cached_) return id_cache_;
  ++tx_id_computes();
  return crypto::Sha256::hash(encode());
}

bool Transaction::signature_valid() const {
  return crypto::ed25519_verify(sender, signing_bytes(), signature);
}

std::optional<VerifiedToken> VerifiedToken::check(const Transaction& tx) {
  if (!tx.signature_valid()) return std::nullopt;
  return VerifiedToken(tx.id());
}

VerifiedToken VerifiedToken::assume_valid(const Transaction& tx) {
  return VerifiedToken(tx.id());
}

crypto::Sha256Digest pow_output(const TxId& parent1, const TxId& parent2,
                                std::uint64_t nonce) {
  std::uint8_t nonce_bytes[8];
  for (int i = 0; i < 8; ++i)
    nonce_bytes[i] = static_cast<std::uint8_t>(nonce >> (8 * i));
  return crypto::Sha256::hash_concat(
      {parent1.view(), parent2.view(), ByteView{nonce_bytes, 8}});
}

namespace {
std::array<std::uint8_t, 64> pow_prefix(const TxId& parent1,
                                        const TxId& parent2) {
  std::array<std::uint8_t, 64> prefix;
  std::memcpy(prefix.data(), parent1.data.data(), 32);
  std::memcpy(prefix.data() + 32, parent2.data.data(), 32);
  return prefix;
}
}  // namespace

PowMidstate::PowMidstate(const TxId& parent1, const TxId& parent2)
    : mid_(ByteView{pow_prefix(parent1, parent2).data(), 64}) {}

crypto::Sha256Digest PowMidstate::output(std::uint64_t nonce) const {
  std::uint8_t nonce_bytes[8];
  for (int i = 0; i < 8; ++i)
    nonce_bytes[i] = static_cast<std::uint8_t>(nonce >> (8 * i));
  return mid_.finish(ByteView{nonce_bytes, 8});
}

void PowMidstate::output_many(std::uint64_t first_nonce, std::size_t count,
                              crypto::Sha256Digest* out) const {
  std::uint8_t tails[crypto::kSha256MaxLanes * 8];
  std::size_t done = 0;
  while (done < count) {
    const std::size_t chunk =
        std::min(count - done, crypto::kSha256MaxLanes);
    for (std::size_t i = 0; i < chunk; ++i) {
      const std::uint64_t nonce = first_nonce + done + i;
      for (int b = 0; b < 8; ++b)
        tails[i * 8 + b] = static_cast<std::uint8_t>(nonce >> (8 * b));
    }
    mid_.finish_many(tails, 8, chunk, out + done);
    done += chunk;
  }
}

int leading_zero_bits(const crypto::Sha256Digest& digest) {
  int bits = 0;
  for (auto byte : digest.data) {
    if (byte == 0) {
      bits += 8;
      continue;
    }
    for (int b = 7; b >= 0; --b) {
      if ((byte >> b) & 1) return bits;
      ++bits;
    }
  }
  return bits;
}

bool pow_valid(const Transaction& tx) {
  return leading_zero_bits(pow_output(tx.parent1, tx.parent2, tx.nonce)) >=
         tx.difficulty;
}

}  // namespace biot::tangle
