// Runtime invariant auditor for a tangle replica (DESIGN.md section 9).
//
// Every hot path in the tangle is incremental — cumulative weights and
// depths are maintained by `add`, secondary indexes and the anti-entropy
// summaries are folded in per transaction — and the brute-force reference
// implementations those fast paths must agree with are only exercised by
// property tests. `audit` turns that agreement into a runtime check that
// can be run against any live or restored replica: it cross-validates the
// incremental state against from-scratch recomputation and returns a
// structured report of every violation instead of asserting, so callers
// (tests, `biot_inspect --audit`, the BIOT_AUDIT=1 CI fixture) decide how
// to fail. The whole audit is read-only and uses only the public Tangle
// API; cost is O(n * E) dominated by the per-transaction weight BFS.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "tangle/ledger.h"
#include "tangle/tangle.h"

namespace biot::tangle {

/// One broken invariant. `check` is a stable machine-grepable id
/// ("weight.incremental", "index.sender", ...); `detail` names the exact
/// transaction / index slot so the report is actionable on its own.
struct AuditViolation {
  std::string check;
  std::string detail;
};

struct AuditReport {
  std::size_t checks_run = 0;  // individual comparisons performed
  std::vector<AuditViolation> violations;

  bool ok() const { return violations.empty(); }
  /// Multi-line human summary ("audit ok (N checks)" or one line per
  /// violation) for CLI output and test failure messages.
  std::string to_string() const;
};

/// Optional cross-subsystem inputs. The structural tangle checks always
/// run; these add the conservation checks that need state the tangle does
/// not own.
struct AuditInputs {
  /// When set, the ledger's total balance must equal `expected_supply`
  /// (transfers move tokens, they never mint or burn — so the sum of all
  /// balances must still be exactly what Ledger::credit seeded).
  const Ledger* ledger = nullptr;
  std::optional<std::uint64_t> expected_supply;

  /// When set, returns the number of *valid* transactions the credit model
  /// has recorded for an account. Credit only ever records transactions
  /// that attached, and windows only shrink the record, so the count can
  /// never exceed the account's transactions in the tangle. (Leave unset
  /// for pruned replicas — credit legitimately outlives archived history.)
  std::function<std::size_t(const AccountKey&)> credit_valid_tx_count;
};

/// Cross-validates every incremental structure of `tangle` (and, when
/// provided, ledger/credit conservation) against brute-force recomputation:
///   - order/order_pos: arrival_order covers each record exactly once and
///     positions match;
///   - parent resolution and approver lists agree with the stored txs;
///   - tip set == { transactions with no approvers };
///   - incremental cumulative weight / depth == the *_brute_force twins;
///   - secondary indexes (sender/type/arrival) are arrival-sorted and in
///     exact bijection with the transaction map; senders_first_seen is
///     duplicate-free and complete;
///   - XOR id-digest and SetSketch reproduce from scratch;
///   - ledger/credit conservation per AuditInputs.
AuditReport audit(const Tangle& tangle, const AuditInputs& inputs = {});

}  // namespace biot::tangle
