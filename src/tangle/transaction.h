// Transaction model for the DAG-structured blockchain ("tangle").
//
// Per the paper (Section II-B), each transaction is an individual DAG node
// that approves two former transactions (its parents) and carries a PoW nonce
// binding it to them (Eqn 6):
//
//     output = hash( hash(TX1) || hash(TX2) || nonce )
//
// The transaction body is signed by the sender's Ed25519 key; the id is the
// SHA-256 of the full canonical encoding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"
#include "crypto/ed25519.h"
#include "crypto/sha256.h"
#include "crypto/sha256_midstate.h"
#include "obs/metrics.h"

namespace biot::tangle {

using TxId = crypto::Sha256Digest;
using AccountKey = crypto::Ed25519PublicKey;

enum class TxType : std::uint8_t {
  kGenesis = 0,
  kData = 1,           // sensor readings (possibly AES-encrypted payload)
  kTransfer = 2,       // token movement between accounts
  kAuthorization = 3,  // manager-published device authorization list (Eqn 1)
  kMilestone = 4,      // coordinator checkpoint (milestone confirmation)
};

std::string_view tx_type_name(TxType t) noexcept;

/// Value-transfer portion of a transaction (absent for pure data txs).
struct Transfer {
  AccountKey to{};
  std::uint64_t amount = 0;

  friend bool operator==(const Transfer&, const Transfer&) = default;
};

struct Transaction {
  TxType type = TxType::kData;
  AccountKey sender{};
  TxId parent1{};            // "trunk" approval
  TxId parent2{};            // "branch" approval
  std::uint64_t sequence = 0;  // per-sender monotone counter (replay/conflict id)
  TimePoint timestamp = 0.0;
  std::uint8_t difficulty = 0;  // claimed PoW difficulty (leading zero bits)
  std::uint64_t nonce = 0;
  std::optional<Transfer> transfer;
  Bytes payload;             // application data; opaque to consensus
  bool payload_encrypted = false;
  crypto::Ed25519Signature signature{};

  Transaction() = default;
  // Copies DROP the id cache: the common idiom is copy-then-mutate (rebuild a
  // tx with a different nonce/field), and a stale cached id there would be a
  // silent correctness bug. Moves keep it — a moved tx is the same tx.
  Transaction(const Transaction& other);
  Transaction& operator=(const Transaction& other);
  Transaction(Transaction&&) = default;
  Transaction& operator=(Transaction&&) = default;

  /// Canonical encoding of the signed portion: everything except the
  /// signature and the PoW nonce. The nonce is an *attachment* field (as in
  /// IOTA): it can be ground after signing, which is what makes PoW
  /// offloading to a gateway possible for very constrained devices. The
  /// transaction id still commits to the nonce (it hashes the full wire
  /// encoding).
  Bytes signing_bytes() const;
  /// Full canonical wire encoding (signed portion + signature).
  Bytes encode() const;
  static Result<Transaction> decode(ByteView wire);

  /// Transaction id: SHA-256 of the full encoding, computed once and cached
  /// (decode() pre-fills the cache from the wire bytes it already has).
  TxId id() const;

  /// Drops the cached id. Must be called after mutating any field of a tx
  /// whose id() may already have been computed (e.g. re-grinding the nonce of
  /// a decoded tx in the PoW-offload path).
  void invalidate_id() { id_cached_ = false; }

  /// Checks the Ed25519 signature against `sender`.
  bool signature_valid() const;

  /// Logical equality: compares every wire field, ignores the id cache.
  friend bool operator==(const Transaction& a, const Transaction& b);

 private:
  mutable TxId id_cache_{};
  mutable bool id_cached_ = false;
};

/// Counts actual id computations (encode + SHA-256), not cache hits. Lets
/// tests pin "admission computes the id once per tx".
obs::Counter& tx_id_computes();

/// Capability token proving a Transaction's signature has been verified.
/// Produced by check() (which performs the one verification) or by
/// assume_valid() (for txs whose signatures were verified elsewhere, e.g. a
/// batch-verified sync burst or a replayed tangle whose members were verified
/// at first admission). Bound to the tx by id, so a token cannot be replayed
/// onto a different transaction.
class VerifiedToken {
 public:
  /// Verifies the signature; nullopt if invalid.
  static std::optional<VerifiedToken> check(const Transaction& tx);
  /// Asserts validity without verifying. Caller must have proof.
  static VerifiedToken assume_valid(const Transaction& tx);

  const TxId& id() const { return id_; }
  bool covers(const TxId& id) const { return id_ == id; }

 private:
  explicit VerifiedToken(TxId id) : id_(id) {}
  TxId id_;
};

/// Eqn 6 bundle hash: H( H-as-id(TX1) || H-as-id(TX2) || nonce ).
crypto::Sha256Digest pow_output(const TxId& parent1, const TxId& parent2,
                                std::uint64_t nonce);

/// Midstate-cached Eqn 6 hasher for mining sessions: the 64 parent bytes form
/// exactly one SHA-256 block, compressed once at construction; each attempt
/// then costs a single compression of the 8-byte nonce tail instead of two
/// full-message compressions. output() is byte-identical to pow_output();
/// output_many() grinds consecutive nonces through the multi-buffer lanes.
class PowMidstate {
 public:
  PowMidstate(const TxId& parent1, const TxId& parent2);

  crypto::Sha256Digest output(std::uint64_t nonce) const;
  /// Digests for nonces first_nonce, first_nonce+1, ..., first_nonce+count-1.
  void output_many(std::uint64_t first_nonce, std::size_t count,
                   crypto::Sha256Digest* out) const;

 private:
  crypto::Sha256Midstate mid_;
};

/// Number of leading zero bits in a digest (the PoW "difficulty met").
int leading_zero_bits(const crypto::Sha256Digest& digest);

/// True iff the nonce satisfies the claimed difficulty for these parents.
bool pow_valid(const Transaction& tx);

}  // namespace biot::tangle
