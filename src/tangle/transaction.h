// Transaction model for the DAG-structured blockchain ("tangle").
//
// Per the paper (Section II-B), each transaction is an individual DAG node
// that approves two former transactions (its parents) and carries a PoW nonce
// binding it to them (Eqn 6):
//
//     output = hash( hash(TX1) || hash(TX2) || nonce )
//
// The transaction body is signed by the sender's Ed25519 key; the id is the
// SHA-256 of the full canonical encoding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"
#include "crypto/ed25519.h"
#include "crypto/sha256.h"

namespace biot::tangle {

using TxId = crypto::Sha256Digest;
using AccountKey = crypto::Ed25519PublicKey;

enum class TxType : std::uint8_t {
  kGenesis = 0,
  kData = 1,           // sensor readings (possibly AES-encrypted payload)
  kTransfer = 2,       // token movement between accounts
  kAuthorization = 3,  // manager-published device authorization list (Eqn 1)
  kMilestone = 4,      // coordinator checkpoint (milestone confirmation)
};

std::string_view tx_type_name(TxType t) noexcept;

/// Value-transfer portion of a transaction (absent for pure data txs).
struct Transfer {
  AccountKey to{};
  std::uint64_t amount = 0;

  friend bool operator==(const Transfer&, const Transfer&) = default;
};

struct Transaction {
  TxType type = TxType::kData;
  AccountKey sender{};
  TxId parent1{};            // "trunk" approval
  TxId parent2{};            // "branch" approval
  std::uint64_t sequence = 0;  // per-sender monotone counter (replay/conflict id)
  TimePoint timestamp = 0.0;
  std::uint8_t difficulty = 0;  // claimed PoW difficulty (leading zero bits)
  std::uint64_t nonce = 0;
  std::optional<Transfer> transfer;
  Bytes payload;             // application data; opaque to consensus
  bool payload_encrypted = false;
  crypto::Ed25519Signature signature{};

  /// Canonical encoding of the signed portion: everything except the
  /// signature and the PoW nonce. The nonce is an *attachment* field (as in
  /// IOTA): it can be ground after signing, which is what makes PoW
  /// offloading to a gateway possible for very constrained devices. The
  /// transaction id still commits to the nonce (it hashes the full wire
  /// encoding).
  Bytes signing_bytes() const;
  /// Full canonical wire encoding (signed portion + signature).
  Bytes encode() const;
  static Result<Transaction> decode(ByteView wire);

  /// Transaction id: SHA-256 of the full encoding.
  TxId id() const;

  /// Checks the Ed25519 signature against `sender`.
  bool signature_valid() const;

  friend bool operator==(const Transaction&, const Transaction&) = default;
};

/// Eqn 6 bundle hash: H( H-as-id(TX1) || H-as-id(TX2) || nonce ).
crypto::Sha256Digest pow_output(const TxId& parent1, const TxId& parent2,
                                std::uint64_t nonce);

/// Number of leading zero bits in a digest (the PoW "difficulty met").
int leading_zero_bits(const crypto::Sha256Digest& digest);

/// True iff the nonce satisfies the claimed difficulty for these parents.
bool pow_valid(const Transaction& tx);

}  // namespace biot::tangle
