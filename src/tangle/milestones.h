// Milestone-based confirmation.
//
// The IOTA network the paper builds on did not rely on cumulative weight
// alone in 2019: a Coordinator issued periodic signed "milestone"
// transactions, and a transaction counted as confirmed once it lay in the
// past cone (ancestor set) of a milestone. We implement both confirmation
// rules — weight threshold (Tangle::is_confirmed) and milestones (this
// header) — and the bench suite compares them.
//
// The tracker is incremental: each observed milestone walks only the not-
// yet-confirmed part of its past cone, so total work over a run is O(V+E).
#pragma once

#include <unordered_set>

#include "tangle/tangle.h"

namespace biot::tangle {

class MilestoneTracker {
 public:
  /// Marks `milestone_id`'s whole past cone (including itself) confirmed.
  /// The id must already be attached to `tangle`. Returns the number of
  /// transactions newly confirmed by this milestone. Re-observing an
  /// already-confirmed milestone is a no-op (returns 0, counts nothing).
  std::size_t observe_milestone(const Tangle& tangle, const TxId& milestone_id);

  bool is_confirmed(const TxId& id) const { return confirmed_.contains(id); }
  std::size_t confirmed_count() const { return confirmed_.size(); }
  std::size_t milestone_count() const { return milestones_; }
  /// Time of the latest observed milestone (for liveness monitoring).
  TimePoint last_milestone_at() const { return last_milestone_at_; }

 private:
  std::unordered_set<TxId, FixedBytesHash<32>> confirmed_;
  std::size_t milestones_ = 0;
  TimePoint last_milestone_at_ = 0.0;
};

}  // namespace biot::tangle
