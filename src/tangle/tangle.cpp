#include "tangle/tangle.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <unordered_set>

namespace biot::tangle {

namespace {
// Process-wide generation source: every mutation of every tangle gets a
// unique stamp, so caches keyed on (tangle, generation) can never be fooled
// by a different tangle reusing the same address and count (see
// Tangle::generation()).
std::atomic<std::uint64_t> g_generation{0};
}  // namespace

Transaction Tangle::make_genesis(TimePoint timestamp) {
  Transaction g;
  g.type = TxType::kGenesis;
  g.timestamp = timestamp;
  // Self-parented sentinel: both parents are the all-zero id.
  return g;
}

Tangle::Tangle(const Transaction& genesis) {
  if (genesis.type != TxType::kGenesis)
    throw std::invalid_argument("Tangle: constructor requires a genesis tx");
  genesis_id_ = genesis.id();
  records_.emplace(genesis_id_, TxRecord{genesis, genesis.timestamp, {}});
  tips_.insert(genesis_id_);
  order_.push_back(genesis_id_);
  bump_generation();
}

void Tangle::bump_generation() {
  generation_ = ++g_generation;
}

Status Tangle::add(const Transaction& tx, TimePoint arrival) {
  if (tx.type == TxType::kGenesis)
    return Status::error(ErrorCode::kRejected, "tangle: duplicate genesis");

  const TxId id = tx.id();
  if (records_.contains(id))
    return Status::error(ErrorCode::kRejected, "tangle: duplicate transaction");

  const auto p1 = records_.find(tx.parent1);
  const auto p2 = records_.find(tx.parent2);
  if (p1 == records_.end() || p2 == records_.end())
    return Status::error(ErrorCode::kNotFound, "tangle: unknown parent");

  if (!tx.signature_valid())
    return Status::error(ErrorCode::kVerifyFailed, "tangle: bad signature");

  if (tx.difficulty == 0 || !pow_valid(tx))
    return Status::error(ErrorCode::kPowInvalid, "tangle: PoW does not meet difficulty");

  TxRecord& new_rec =
      records_.emplace(id, TxRecord{tx, arrival, {}}).first->second;
  new_rec.parent1_rec = &p1->second;
  new_rec.parent2_rec = tx.parent2 != tx.parent1 ? &p2->second : nullptr;
  p1->second.approvers.push_back(id);
  if (tx.parent2 != tx.parent1) p2->second.approvers.push_back(id);

  // Incremental cumulative weight: the new transaction indirectly approves
  // exactly its ancestor cone, so each distinct ancestor gains +1. One BFS
  // over the cone, deduplicated by visit stamps (what keeps diamonds from
  // double-counting), following the cached parent pointers — no hashing, no
  // allocation in steady state.
  {
    ++visit_epoch_;
    cone_scratch_.clear();
    auto visit = [&](TxRecord* p) {
      if (p == nullptr || p->visit_mark == visit_epoch_) return;
      p->visit_mark = visit_epoch_;
      p->weight += 1;
      cone_scratch_.push_back(p);
    };
    visit(new_rec.parent1_rec);
    visit(new_rec.parent2_rec);
    for (std::size_t i = 0; i < cone_scratch_.size(); ++i) {
      TxRecord* cur = cone_scratch_[i];
      visit(cur->parent1_rec);
      visit(cur->parent2_rec);
    }
  }

  // Incremental depth: the new tx is a fresh tip (depth 0); ancestors whose
  // longest tip-path now runs through it relax upward. Propagation stops as
  // soon as a longer path already dominates, so typical cost is the length
  // of the newly-extended path, not the cone.
  {
    cone_scratch_.clear();
    auto relax = [&](TxRecord* p, std::size_t candidate) {
      if (p == nullptr || p->depth >= candidate) return;
      p->depth = candidate;
      cone_scratch_.push_back(p);
    };
    relax(new_rec.parent1_rec, 1);
    relax(new_rec.parent2_rec, 1);
    for (std::size_t i = 0; i < cone_scratch_.size(); ++i) {
      TxRecord* cur = cone_scratch_[i];
      // cur->depth may have been raised again since it was queued; relaxing
      // from the live value keeps the propagation monotone and minimal.
      relax(cur->parent1_rec, cur->depth + 1);
      relax(cur->parent2_rec, cur->depth + 1);
    }
  }

  tips_.erase(tx.parent1);
  tips_.erase(tx.parent2);
  tips_.insert(id);
  order_.push_back(id);
  bump_generation();
  return Status::ok();
}

const TxRecord* Tangle::find(const TxId& id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

std::size_t Tangle::approver_count(const TxId& id) const {
  const auto* rec = find(id);
  return rec ? rec->approvers.size() : 0;
}

std::size_t Tangle::cumulative_weight(const TxId& id) const {
  const auto* rec = find(id);
  return rec == nullptr ? 0 : rec->weight;
}

std::size_t Tangle::cumulative_weight_brute_force(const TxId& id) const {
  const auto* rec = find(id);
  if (rec == nullptr) return 0;

  std::unordered_set<TxId, FixedBytesHash<32>> visited;
  std::deque<TxId> frontier{id};
  visited.insert(id);
  while (!frontier.empty()) {
    const TxId cur = frontier.front();
    frontier.pop_front();
    for (const auto& ap : records_.at(cur).approvers) {
      if (visited.insert(ap).second) frontier.push_back(ap);
    }
  }
  return visited.size();
}

bool Tangle::is_confirmed(const TxId& id, std::size_t weight_threshold) const {
  return contains(id) && cumulative_weight(id) >= weight_threshold;
}

std::size_t Tangle::depth(const TxId& id) const {
  const auto* rec = find(id);
  return rec == nullptr ? 0 : rec->depth;
}

std::size_t Tangle::depth_brute_force(const TxId& id) const {
  const auto* rec = find(id);
  if (rec == nullptr) return 0;
  // Longest path over the approver DAG via memoized DFS in arrival order:
  // approvers always arrive later, so a reverse arrival-order sweep is a
  // valid topological order.
  std::unordered_map<TxId, std::size_t, FixedBytesHash<32>> memo;
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    const auto& r = records_.at(*it);
    std::size_t best = 0;
    for (const auto& ap : r.approvers) best = std::max(best, memo[ap] + 1);
    memo[*it] = best;
  }
  return memo.at(id);
}

WeightMap approximate_weights(const Tangle& tangle) {
  WeightMap w;
  const auto& order = tangle.arrival_order();
  w.reserve(order.size());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto* rec = tangle.find(*it);
    double sum = 1.0;
    for (const auto& ap : rec->approvers) sum += w[ap];
    w[*it] = sum;
  }
  return w;
}

const WeightMap& ApproxWeightCache::get(const Tangle& tangle) {
  if (tangle_ != &tangle || generation_ != tangle.generation()) {
    weights_ = approximate_weights(tangle);
    tangle_ = &tangle;
    generation_ = tangle.generation();
  }
  return weights_;
}

}  // namespace biot::tangle
