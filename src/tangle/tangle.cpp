#include "tangle/tangle.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <unordered_set>

namespace biot::tangle {

namespace {
// Process-wide generation source: every mutation of every tangle gets a
// unique stamp, so caches keyed on (tangle, generation) can never be fooled
// by a different tangle reusing the same address and count (see
// Tangle::generation()).
std::atomic<std::uint64_t> g_generation{0};
}  // namespace

Transaction Tangle::make_genesis(TimePoint timestamp) {
  Transaction g;
  g.type = TxType::kGenesis;
  g.timestamp = timestamp;
  // Self-parented sentinel: both parents are the all-zero id.
  return g;
}

Tangle::Tangle(const Transaction& genesis) {
  if (genesis.type != TxType::kGenesis)
    throw std::invalid_argument("Tangle: constructor requires a genesis tx");
  genesis_id_ = genesis.id();
  records_.emplace(genesis_id_, TxRecord{genesis, genesis.timestamp, {}});
  tips_.insert(genesis_id_);
  order_.push_back(genesis_id_);
  index_tx(genesis, genesis_id_, genesis.timestamp);
  bump_generation();
}

void Tangle::bump_generation() {
  generation_ = ++g_generation;
}

Status Tangle::attach_precheck(const Transaction& tx) const {
  if (tx.type == TxType::kGenesis)
    return Status::error(ErrorCode::kRejected, "tangle: duplicate genesis");
  if (records_.contains(tx.id()))
    return Status::error(ErrorCode::kRejected, "tangle: duplicate transaction");
  if (!records_.contains(tx.parent1) || !records_.contains(tx.parent2))
    return Status::error(ErrorCode::kNotFound, "tangle: unknown parent");
  return Status::ok();
}

Status Tangle::add(const Transaction& tx, TimePoint arrival) {
  return add_impl(tx, arrival, /*pre_verified=*/false);
}

Status Tangle::add(const Transaction& tx, TimePoint arrival,
                   const VerifiedToken& token) {
  if (!token.covers(tx.id()))
    return Status::error(ErrorCode::kVerifyFailed,
                         "tangle: verified token does not cover this tx");
  return add_impl(tx, arrival, /*pre_verified=*/true);
}

Status Tangle::AttachBatch::add(const Transaction& tx, TimePoint arrival,
                                const VerifiedToken& token) {
  if (!token.covers(tx.id()))
    return Status::error(ErrorCode::kVerifyFailed,
                         "tangle: verified token does not cover this tx");
  return tangle_.add_impl(tx, arrival, /*pre_verified=*/true, this);
}

void Tangle::AttachBatch::commit() {
  if (pending_.empty()) return;
  for (const auto* rec : pending_)
    tangle_.index_tx(rec->tx, rec->tx.id(), rec->arrival);
  tangle_.bump_generation();
  pending_.clear();
}

std::vector<Status> Tangle::attach_batch(
    const std::vector<BatchAttachItem>& items) {
  std::vector<Status> out;
  out.reserve(items.size());
  AttachBatch batch(*this);
  for (const auto& item : items)
    out.push_back(batch.add(*item.tx, item.arrival, *item.token));
  batch.commit();
  return out;
}

Status Tangle::add_impl(const Transaction& tx, TimePoint arrival,
                        bool pre_verified, AttachBatch* batch) {
  if (tx.type == TxType::kGenesis)
    return Status::error(ErrorCode::kRejected, "tangle: duplicate genesis");

  const TxId id = tx.id();
  if (records_.contains(id))
    return Status::error(ErrorCode::kRejected, "tangle: duplicate transaction");

  const auto p1 = records_.find(tx.parent1);
  const auto p2 = records_.find(tx.parent2);
  if (p1 == records_.end() || p2 == records_.end())
    return Status::error(ErrorCode::kNotFound, "tangle: unknown parent");

  if (!pre_verified && !tx.signature_valid())
    return Status::error(ErrorCode::kVerifyFailed, "tangle: bad signature");

  if (tx.difficulty == 0 || !pow_valid(tx))
    return Status::error(ErrorCode::kPowInvalid, "tangle: PoW does not meet difficulty");

  TxRecord& new_rec =
      records_.emplace(id, TxRecord{tx, arrival, {}}).first->second;
  new_rec.order_pos = order_.size();
  new_rec.parent1_rec = &p1->second;
  new_rec.parent2_rec = tx.parent2 != tx.parent1 ? &p2->second : nullptr;
  p1->second.approvers.push_back(id);
  if (tx.parent2 != tx.parent1) p2->second.approvers.push_back(id);

  // Incremental cumulative weight: the new transaction indirectly approves
  // exactly its ancestor cone, so each distinct ancestor gains +1. One BFS
  // over the cone, deduplicated by visit stamps (what keeps diamonds from
  // double-counting), following the cached parent pointers — no hashing, no
  // allocation in steady state.
  {
    ++visit_epoch_;
    cone_scratch_.clear();
    auto visit = [&](TxRecord* p) {
      if (p == nullptr || p->visit_mark == visit_epoch_) return;
      p->visit_mark = visit_epoch_;
      p->weight += 1;
      cone_scratch_.push_back(p);
    };
    visit(new_rec.parent1_rec);
    visit(new_rec.parent2_rec);
    for (std::size_t i = 0; i < cone_scratch_.size(); ++i) {
      TxRecord* cur = cone_scratch_[i];
      visit(cur->parent1_rec);
      visit(cur->parent2_rec);
    }
  }

  // Incremental depth: the new tx is a fresh tip (depth 0); ancestors whose
  // longest tip-path now runs through it relax upward. Propagation stops as
  // soon as a longer path already dominates, so typical cost is the length
  // of the newly-extended path, not the cone.
  {
    cone_scratch_.clear();
    auto relax = [&](TxRecord* p, std::size_t candidate) {
      if (p == nullptr || p->depth >= candidate) return;
      p->depth = candidate;
      cone_scratch_.push_back(p);
    };
    relax(new_rec.parent1_rec, 1);
    relax(new_rec.parent2_rec, 1);
    for (std::size_t i = 0; i < cone_scratch_.size(); ++i) {
      TxRecord* cur = cone_scratch_[i];
      // cur->depth may have been raised again since it was queued; relaxing
      // from the live value keeps the propagation monotone and minimal.
      relax(cur->parent1_rec, cur->depth + 1);
      relax(cur->parent2_rec, cur->depth + 1);
    }
  }

  tips_.erase(tx.parent1);
  tips_.erase(tx.parent2);
  tips_.insert(id);
  order_.push_back(id);
  if (batch == nullptr) {
    index_tx(tx, id, arrival);
    bump_generation();
  } else {
    // Deferred maintenance: the index entries, summary toggles and the
    // generation bump land in AttachBatch::commit(), in this attach order —
    // the XOR digest/sketch folds are order-independent and insert_sorted
    // sees the same monotone arrivals, so the post-commit state is
    // identical to per-transaction indexing.
    batch->pending_.push_back(&new_rec);
  }
  return Status::ok();
}

void Tangle::insert_sorted(std::vector<IndexEntry>& index, IndexEntry entry) {
  // Arrivals are monotone in normal operation (gateway clock / replay
  // order), so this is an O(1) append; an out-of-order arrival falls back
  // to a positioned insert to keep the sorted-by-arrival invariant.
  if (index.empty() || index.back().arrival <= entry.arrival) {
    index.push_back(entry);
    return;
  }
  const auto at = std::upper_bound(
      index.begin(), index.end(), entry.arrival,
      [](TimePoint t, const IndexEntry& e) { return t < e.arrival; });
  index.insert(at, entry);
}

void Tangle::index_tx(const Transaction& tx, const TxId& id,
                      TimePoint arrival) {
  const IndexEntry entry{id, arrival, tx.type};
  auto [sender_it, first_seen] = by_sender_.try_emplace(tx.sender);
  if (first_seen) senders_first_seen_.push_back(tx.sender);
  insert_sorted(sender_it->second, entry);
  insert_sorted(by_type_[static_cast<std::uint8_t>(tx.type)], entry);
  insert_sorted(by_arrival_, entry);
  id_digest_.toggle(id);
  id_sketch_.toggle(id);
}

const std::vector<IndexEntry>& Tangle::sender_index(
    const AccountKey& sender) const {
  static const std::vector<IndexEntry> kEmpty;
  const auto it = by_sender_.find(sender);
  return it == by_sender_.end() ? kEmpty : it->second;
}

const std::vector<IndexEntry>& Tangle::type_index(TxType type) const {
  static const std::vector<IndexEntry> kEmpty;
  const auto it = by_type_.find(static_cast<std::uint8_t>(type));
  return it == by_type_.end() ? kEmpty : it->second;
}

std::size_t Tangle::first_at_or_after(const std::vector<IndexEntry>& index,
                                      TimePoint since) {
  const auto it = std::lower_bound(
      index.begin(), index.end(), since,
      [](const IndexEntry& e, TimePoint t) { return e.arrival < t; });
  return static_cast<std::size_t>(it - index.begin());
}

std::vector<const TxRecord*> Tangle::data_since(
    const AccountKey* sender, TimePoint since,
    std::size_t max_results) const {
  const auto& index =
      sender != nullptr ? sender_index(*sender) : type_index(TxType::kData);
  std::vector<const TxRecord*> out;
  for (std::size_t i = first_at_or_after(index, since);
       i < index.size() && out.size() < max_results; ++i) {
    if (index[i].type != TxType::kData) continue;  // sender-index skip
    out.push_back(&records_.at(index[i].id));
  }
  return out;
}

std::vector<const TxRecord*> Tangle::data_since_brute_force(
    const AccountKey* sender, TimePoint since,
    std::size_t max_results) const {
  std::vector<const TxRecord*> out;
  for (const auto& id : order_) {
    const auto& rec = records_.at(id);
    if (rec.tx.type != TxType::kData) continue;
    if (rec.arrival < since) continue;
    if (sender != nullptr && rec.tx.sender != *sender) continue;
    out.push_back(&rec);
  }
  // Insertion order and arrival order agree except for out-of-order adds;
  // a stable sort reconciles them (ties keep insertion order, matching the
  // index maintenance rule).
  std::stable_sort(out.begin(), out.end(),
                   [](const TxRecord* a, const TxRecord* b) {
                     return a->arrival < b->arrival;
                   });
  if (out.size() > max_results) out.resize(max_results);
  return out;
}

const TxRecord* Tangle::find(const TxId& id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

std::size_t Tangle::approver_count(const TxId& id) const {
  const auto* rec = find(id);
  return rec ? rec->approvers.size() : 0;
}

std::size_t Tangle::cumulative_weight(const TxId& id) const {
  const auto* rec = find(id);
  return rec == nullptr ? 0 : rec->weight;
}

std::size_t Tangle::cumulative_weight_brute_force(const TxId& id) const {
  const auto* rec = find(id);
  if (rec == nullptr) return 0;

  std::unordered_set<TxId, FixedBytesHash<32>> visited;
  std::deque<TxId> frontier{id};
  visited.insert(id);
  while (!frontier.empty()) {
    const TxId cur = frontier.front();
    frontier.pop_front();
    for (const auto& ap : records_.at(cur).approvers) {
      if (visited.insert(ap).second) frontier.push_back(ap);
    }
  }
  return visited.size();
}

bool Tangle::is_confirmed(const TxId& id, std::size_t weight_threshold) const {
  return contains(id) && cumulative_weight(id) >= weight_threshold;
}

std::size_t Tangle::depth(const TxId& id) const {
  const auto* rec = find(id);
  return rec == nullptr ? 0 : rec->depth;
}

std::size_t Tangle::depth_brute_force(const TxId& id) const {
  const auto* rec = find(id);
  if (rec == nullptr) return 0;
  // Longest path over the approver DAG via memoized DFS in arrival order:
  // approvers always arrive later, so a reverse arrival-order sweep is a
  // valid topological order.
  std::unordered_map<TxId, std::size_t, FixedBytesHash<32>> memo;
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    const auto& r = records_.at(*it);
    std::size_t best = 0;
    for (const auto& ap : r.approvers) best = std::max(best, memo[ap] + 1);
    memo[*it] = best;
  }
  return memo.at(id);
}

WeightMap approximate_weights(const Tangle& tangle) {
  WeightMap w;
  const auto& order = tangle.arrival_order();
  w.reserve(order.size());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto* rec = tangle.find(*it);
    double sum = 1.0;
    for (const auto& ap : rec->approvers) sum += w[ap];
    w[*it] = sum;
  }
  return w;
}

const WeightMap& ApproxWeightCache::get(const Tangle& tangle) {
  if (tangle_ != &tangle || generation_ != tangle.generation()) {
    weights_ = approximate_weights(tangle);
    tangle_ = &tangle;
    generation_ = tangle.generation();
  }
  return weights_;
}

}  // namespace biot::tangle
