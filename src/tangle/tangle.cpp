#include "tangle/tangle.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace biot::tangle {

Transaction Tangle::make_genesis(TimePoint timestamp) {
  Transaction g;
  g.type = TxType::kGenesis;
  g.timestamp = timestamp;
  // Self-parented sentinel: both parents are the all-zero id.
  return g;
}

Tangle::Tangle(const Transaction& genesis) {
  if (genesis.type != TxType::kGenesis)
    throw std::invalid_argument("Tangle: constructor requires a genesis tx");
  genesis_id_ = genesis.id();
  records_.emplace(genesis_id_, TxRecord{genesis, genesis.timestamp, {}});
  tips_.insert(genesis_id_);
  order_.push_back(genesis_id_);
}

Status Tangle::add(const Transaction& tx, TimePoint arrival) {
  if (tx.type == TxType::kGenesis)
    return Status::error(ErrorCode::kRejected, "tangle: duplicate genesis");

  const TxId id = tx.id();
  if (records_.contains(id))
    return Status::error(ErrorCode::kRejected, "tangle: duplicate transaction");

  const auto p1 = records_.find(tx.parent1);
  const auto p2 = records_.find(tx.parent2);
  if (p1 == records_.end() || p2 == records_.end())
    return Status::error(ErrorCode::kNotFound, "tangle: unknown parent");

  if (!tx.signature_valid())
    return Status::error(ErrorCode::kVerifyFailed, "tangle: bad signature");

  if (tx.difficulty == 0 || !pow_valid(tx))
    return Status::error(ErrorCode::kPowInvalid, "tangle: PoW does not meet difficulty");

  records_.emplace(id, TxRecord{tx, arrival, {}});
  p1->second.approvers.push_back(id);
  if (tx.parent2 != tx.parent1) p2->second.approvers.push_back(id);

  tips_.erase(tx.parent1);
  tips_.erase(tx.parent2);
  tips_.insert(id);
  order_.push_back(id);
  return Status::ok();
}

const TxRecord* Tangle::find(const TxId& id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

std::size_t Tangle::approver_count(const TxId& id) const {
  const auto* rec = find(id);
  return rec ? rec->approvers.size() : 0;
}

std::size_t Tangle::cumulative_weight(const TxId& id) const {
  const auto* rec = find(id);
  if (rec == nullptr) return 0;

  std::unordered_set<TxId, FixedBytesHash<32>> visited;
  std::deque<TxId> frontier{id};
  visited.insert(id);
  while (!frontier.empty()) {
    const TxId cur = frontier.front();
    frontier.pop_front();
    for (const auto& ap : records_.at(cur).approvers) {
      if (visited.insert(ap).second) frontier.push_back(ap);
    }
  }
  return visited.size();
}

bool Tangle::is_confirmed(const TxId& id, std::size_t weight_threshold) const {
  return contains(id) && cumulative_weight(id) >= weight_threshold;
}

std::size_t Tangle::depth(const TxId& id) const {
  const auto* rec = find(id);
  if (rec == nullptr) return 0;
  // Longest path over the approver DAG via memoized DFS in arrival order:
  // approvers always arrive later, so a reverse arrival-order sweep is a
  // valid topological order.
  std::unordered_map<TxId, std::size_t, FixedBytesHash<32>> memo;
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    const auto& r = records_.at(*it);
    std::size_t best = 0;
    for (const auto& ap : r.approvers) best = std::max(best, memo[ap] + 1);
    memo[*it] = best;
  }
  return memo.at(id);
}

std::unordered_map<TxId, double, FixedBytesHash<32>> approximate_weights(
    const Tangle& tangle) {
  std::unordered_map<TxId, double, FixedBytesHash<32>> w;
  const auto& order = tangle.arrival_order();
  w.reserve(order.size());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto* rec = tangle.find(*it);
    double sum = 1.0;
    for (const auto& ap : rec->approvers) sum += w[ap];
    w[*it] = sum;
  }
  return w;
}

}  // namespace biot::tangle
