#include "tangle/tip_selection.h"

#include <cmath>
#include <iterator>
#include <vector>

namespace biot::tangle {

TipPair UniformRandomTipSelector::select(const Tangle& tangle, Rng& rng) const {
  const auto& tips = tangle.tips();
  if (tips.empty()) throw std::logic_error("tip selection: tangle has no tips");

  std::vector<const TxId*> pool;
  pool.reserve(tips.size());
  for (const auto& t : tips) pool.push_back(&t);

  const std::size_t i = rng.index(pool.size());
  if (pool.size() == 1) return {*pool[i], *pool[i]};
  // Two distinct validations whenever the pool allows it: draw the second
  // index without replacement by skipping over the first.
  const std::size_t j = (i + 1 + rng.index(pool.size() - 1)) % pool.size();
  return {*pool[i], *pool[j]};
}

TxId WeightedWalkTipSelector::walk(const Tangle& tangle, const TxId& start,
                                   const WeightMap& weights, Rng& rng) const {
  const auto weight_of = [&weights](const TxId& id) {
    const auto it = weights.find(id);
    return it == weights.end() ? 0.0 : it->second;
  };

  TxId current = start;
  for (;;) {
    const auto* rec = tangle.find(current);
    if (rec == nullptr) {
      // Unknown id (foreign/pruned start, or a corrupted approver edge):
      // degrade to an arbitrary current tip rather than dereferencing null.
      const auto& tips = tangle.tips();
      return tips.empty() ? current : *tips.begin();
    }
    if (rec->approvers.empty()) return current;  // reached a tip

    // Transition probabilities proportional to exp(alpha * w); normalize by
    // the max exponent for numerical stability.
    double max_w = 0.0;
    for (const auto& ap : rec->approvers)
      max_w = std::max(max_w, weight_of(ap));

    std::vector<double> cumulative;
    cumulative.reserve(rec->approvers.size());
    double total = 0.0;
    for (const auto& ap : rec->approvers) {
      total += std::exp(alpha_ * (weight_of(ap) - max_w));
      cumulative.push_back(total);
    }

    const double pick = rng.uniform(0.0, total);
    std::size_t idx = 0;
    while (idx + 1 < cumulative.size() && cumulative[idx] <= pick) ++idx;
    current = rec->approvers[idx];
    ++last_walk_steps_;
  }
}

TxId WeightedWalkTipSelector::anchor(const Tangle& tangle, Rng& rng) const {
  const auto& tips = tangle.tips();
  if (tips.empty()) return tangle.genesis_id();

  auto it = tips.begin();
  std::advance(it, rng.index(tips.size()));
  const TxRecord* rec = tangle.find(*it);
  TxId current = *it;
  for (std::size_t step = 0;
       rec != nullptr && rec->parent1_rec != nullptr && step < max_walk_depth_;
       ++step) {
    current = rec->tx.parent1;
    rec = rec->parent1_rec;
  }
  return current;
}

TipPair WeightedWalkTipSelector::select(const Tangle& tangle, Rng& rng) const {
  last_walk_steps_ = 0;  // walk() accumulates across the two walks below
  const auto& weights = cache_.get(tangle);
  if (max_walk_depth_ == 0) {
    const auto& start = tangle.genesis_id();
    return {walk(tangle, start, weights, rng),
            walk(tangle, start, weights, rng)};
  }
  // Depth-windowed mode: independent anchors for the two walks so the pair
  // is not forced through one shared subtangle.
  return {walk(tangle, anchor(tangle, rng), weights, rng),
          walk(tangle, anchor(tangle, rng), weights, rng)};
}

}  // namespace biot::tangle
