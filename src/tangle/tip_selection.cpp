#include "tangle/tip_selection.h"

#include <cmath>
#include <vector>

namespace biot::tangle {

TipPair UniformRandomTipSelector::select(const Tangle& tangle, Rng& rng) const {
  const auto& tips = tangle.tips();
  if (tips.empty()) throw std::logic_error("tip selection: tangle has no tips");

  std::vector<const TxId*> pool;
  pool.reserve(tips.size());
  for (const auto& t : tips) pool.push_back(&t);

  const TxId& a = *pool[rng.index(pool.size())];
  const TxId& b = *pool[rng.index(pool.size())];
  return {a, b};
}

TxId WeightedWalkTipSelector::walk(
    const Tangle& tangle,
    const std::unordered_map<TxId, double, FixedBytesHash<32>>& weights,
    Rng& rng) const {
  TxId current = tangle.genesis_id();
  for (;;) {
    const auto* rec = tangle.find(current);
    if (rec->approvers.empty()) return current;  // reached a tip

    // Transition probabilities proportional to exp(alpha * w); normalize by
    // the max exponent for numerical stability.
    double max_w = 0.0;
    for (const auto& ap : rec->approvers)
      max_w = std::max(max_w, weights.at(ap));

    std::vector<double> cumulative;
    cumulative.reserve(rec->approvers.size());
    double total = 0.0;
    for (const auto& ap : rec->approvers) {
      total += std::exp(alpha_ * (weights.at(ap) - max_w));
      cumulative.push_back(total);
    }

    const double pick = rng.uniform(0.0, total);
    std::size_t idx = 0;
    while (idx + 1 < cumulative.size() && cumulative[idx] <= pick) ++idx;
    current = rec->approvers[idx];
  }
}

TipPair WeightedWalkTipSelector::select(const Tangle& tangle, Rng& rng) const {
  const auto weights = approximate_weights(tangle);
  return {walk(tangle, weights, rng), walk(tangle, weights, rng)};
}

}  // namespace biot::tangle
