// HMAC-SHA256 (RFC 2104) and HKDF-SHA256 (RFC 5869).
// Used for encrypt-then-MAC in ECIES and for session-key derivation in the
// Fig 4 key-distribution protocol.
#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace biot::crypto {

/// HMAC-SHA256 over `data` with `key` (any key length).
Sha256Digest hmac_sha256(ByteView key, ByteView data);

/// HMAC over the concatenation of several parts.
Sha256Digest hmac_sha256_concat(ByteView key, std::initializer_list<ByteView> parts);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Sha256Digest hkdf_extract(ByteView salt, ByteView ikm);

/// HKDF-Expand: derives `length` bytes (<= 255*32) of output keying material.
Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length);

/// Extract-then-expand convenience.
Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length);

}  // namespace biot::crypto
