// Arithmetic in GF(2^255 - 19), the base field of Curve25519/Ed25519.
// Representation: 5 unsigned 51-bit limbs (radix 2^51), products accumulated
// in unsigned __int128. This is the standard "fe51" construction.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace biot::crypto {

struct Fe {
  // limb i holds bits [51*i, 51*i+50]; values may exceed 51 bits transiently
  // between reductions but all public operations return carry-reduced form.
  std::uint64_t v[5] = {0, 0, 0, 0, 0};

  static Fe zero() { return Fe{}; }
  static Fe one() { return Fe{{1, 0, 0, 0, 0}}; }
  /// Small constant (< 2^51).
  static Fe from_u64(std::uint64_t x) { return Fe{{x, 0, 0, 0, 0}}; }

  /// Loads 32 little-endian bytes; the top bit (255) is ignored per convention.
  static Fe from_bytes(ByteView b);
  /// Canonical (frozen, < p) 32-byte little-endian encoding.
  FixedBytes<32> to_bytes() const;

  friend Fe operator+(const Fe& a, const Fe& b);
  friend Fe operator-(const Fe& a, const Fe& b);
  friend Fe operator*(const Fe& a, const Fe& b);

  Fe square() const;
  Fe mul_small(std::uint64_t c) const;  // c < 2^13 or so
  Fe negate() const;

  /// Multiplicative inverse via Fermat (x^(p-2)); inverse of 0 is 0.
  Fe invert() const;
  /// x^((p-5)/8), the core of the square-root computation.
  Fe pow_p58() const;

  bool is_zero() const;
  /// Least significant bit of the canonical encoding ("sign" of x).
  bool is_negative() const;

  /// Constant-time conditional swap of a and b when flag == 1.
  static void cswap(Fe& a, Fe& b, std::uint64_t flag);

  friend bool operator==(const Fe& a, const Fe& b);
};

/// sqrt(-1) mod p (precomputed constant).
const Fe& fe_sqrtm1();
/// Edwards curve constant d = -121665/121666 mod p.
const Fe& fe_edwards_d();

/// Computes sqrt(u/v) if it exists. Returns false when u/v is not a square.
/// On success `out` is the principal root (used by point decompression).
bool fe_sqrt_ratio(Fe& out, const Fe& u, const Fe& v);

}  // namespace biot::crypto
