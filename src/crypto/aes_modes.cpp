#include "crypto/aes_modes.h"

#include <cstring>
#include <stdexcept>

namespace biot::crypto {

Bytes pkcs7_pad(ByteView data) {
  const std::size_t pad = kAesBlockSize - (data.size() % kAesBlockSize);
  Bytes out(data.begin(), data.end());
  out.insert(out.end(), pad, static_cast<std::uint8_t>(pad));
  return out;
}

Result<Bytes> pkcs7_unpad(ByteView data) {
  if (data.empty() || data.size() % kAesBlockSize != 0)
    return Status::error(ErrorCode::kDecryptFailed, "pkcs7: bad length");
  const std::uint8_t pad = data.back();
  if (pad == 0 || pad > kAesBlockSize)
    return Status::error(ErrorCode::kDecryptFailed, "pkcs7: bad pad byte");
  // Constant-time-ish check of all pad bytes.
  std::uint8_t diff = 0;
  for (std::size_t i = data.size() - pad; i < data.size(); ++i) diff |= data[i] ^ pad;
  if (diff != 0)
    return Status::error(ErrorCode::kDecryptFailed, "pkcs7: inconsistent padding");
  return Bytes(data.begin(), data.end() - pad);
}

Bytes aes_cbc_encrypt(const Aes& aes, ByteView iv, ByteView plaintext) {
  if (iv.size() != kAesBlockSize)
    throw std::invalid_argument("aes_cbc_encrypt: iv must be 16 bytes");
  const Bytes padded = pkcs7_pad(plaintext);

  Bytes out(padded.size());
  std::uint8_t chain[kAesBlockSize];
  std::memcpy(chain, iv.data(), kAesBlockSize);

  for (std::size_t off = 0; off < padded.size(); off += kAesBlockSize) {
    std::uint8_t block[kAesBlockSize];
    for (std::size_t i = 0; i < kAesBlockSize; ++i) block[i] = padded[off + i] ^ chain[i];
    aes.encrypt_block(block, out.data() + off);
    std::memcpy(chain, out.data() + off, kAesBlockSize);
  }
  return out;
}

Result<Bytes> aes_cbc_decrypt(const Aes& aes, ByteView iv, ByteView ciphertext) {
  if (iv.size() != kAesBlockSize)
    throw std::invalid_argument("aes_cbc_decrypt: iv must be 16 bytes");
  if (ciphertext.empty() || ciphertext.size() % kAesBlockSize != 0)
    return Status::error(ErrorCode::kDecryptFailed, "cbc: ciphertext length");

  Bytes padded(ciphertext.size());
  std::uint8_t chain[kAesBlockSize];
  std::memcpy(chain, iv.data(), kAesBlockSize);

  for (std::size_t off = 0; off < ciphertext.size(); off += kAesBlockSize) {
    std::uint8_t block[kAesBlockSize];
    aes.decrypt_block(ciphertext.data() + off, block);
    for (std::size_t i = 0; i < kAesBlockSize; ++i) padded[off + i] = block[i] ^ chain[i];
    std::memcpy(chain, ciphertext.data() + off, kAesBlockSize);
  }
  return pkcs7_unpad(padded);
}

Bytes aes_ctr_xor(const Aes& aes, ByteView nonce, ByteView data) {
  if (nonce.size() != kAesBlockSize)
    throw std::invalid_argument("aes_ctr_xor: nonce must be 16 bytes");

  Bytes out(data.begin(), data.end());
  std::uint8_t counter[kAesBlockSize];
  std::memcpy(counter, nonce.data(), kAesBlockSize);
  std::uint8_t keystream[kAesBlockSize];

  for (std::size_t off = 0; off < out.size(); off += kAesBlockSize) {
    aes.encrypt_block(counter, keystream);
    const std::size_t n = std::min(kAesBlockSize, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
    // Increment the counter block (big-endian).
    for (int i = kAesBlockSize - 1; i >= 0; --i) {
      if (++counter[i] != 0) break;
    }
  }
  return out;
}

}  // namespace biot::crypto
