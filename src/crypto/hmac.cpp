#include "crypto/hmac.h"

#include <stdexcept>

namespace biot::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;

struct HmacKeys {
  std::uint8_t ipad[kBlockSize];
  std::uint8_t opad[kBlockSize];
};

HmacKeys prepare(ByteView key) {
  std::uint8_t k[kBlockSize] = {0};
  if (key.size() > kBlockSize) {
    const auto d = Sha256::hash(key);
    std::copy(d.begin(), d.end(), k);
  } else {
    std::copy(key.begin(), key.end(), k);
  }
  HmacKeys out;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    out.ipad[i] = k[i] ^ 0x36;
    out.opad[i] = k[i] ^ 0x5c;
  }
  return out;
}
}  // namespace

Sha256Digest hmac_sha256(ByteView key, ByteView data) {
  return hmac_sha256_concat(key, {data});
}

Sha256Digest hmac_sha256_concat(ByteView key, std::initializer_list<ByteView> parts) {
  const HmacKeys keys = prepare(key);
  Sha256 inner;
  inner.update(ByteView{keys.ipad, kBlockSize});
  for (const auto& p : parts) inner.update(p);
  const auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(ByteView{keys.opad, kBlockSize});
  outer.update(inner_digest.view());
  return outer.finish();
}

Sha256Digest hkdf_extract(ByteView salt, ByteView ikm) {
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length) {
  if (length > 255 * kSha256DigestSize)
    throw std::invalid_argument("hkdf_expand: length too large");
  Bytes out;
  out.reserve(length);
  Sha256Digest t{};
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    const std::uint8_t ctr_byte[1] = {counter};
    const auto block = hmac_sha256_concat(
        prk, {ByteView{t.data.data(), t_len}, info, ByteView{ctr_byte, 1}});
    t = block;
    t_len = kSha256DigestSize;
    const std::size_t take = std::min(length - out.size(), kSha256DigestSize);
    out.insert(out.end(), block.begin(), block.begin() + take);
    ++counter;
  }
  return out;
}

Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length) {
  const auto prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk.view(), info, length);
}

}  // namespace biot::crypto
